(* Minimal HTTP/1.0 exposition endpoint for the metrics registry: every
   connection gets one response and is closed. Only enough HTTP is spoken
   for a Prometheus-style scraper or curl: the request head is read (and
   discarded) up to the blank line, then a 200 with the text exposition
   is written. Malformed or oversized request heads get a 400. *)

module Sched = Ivdb_sched.Sched
module Transport = Ivdb_transport.Transport
module Metrics = Ivdb_util.Metrics

let max_head = 8192

(* Read until "\r\n\r\n" (or a lone "\n\n" from sloppy clients), EOF, or
   the size bound. Returns false if the head never terminated. *)
let read_head (conn : Transport.conn) =
  let buf = Bytes.create 512 in
  let acc = Buffer.create 256 in
  let terminated b =
    let s = Buffer.contents b in
    let has sub =
      let n = String.length sub and l = String.length s in
      l >= n && String.sub s (l - n) n = sub
    in
    has "\r\n\r\n" || has "\n\n"
  in
  let rec go () =
    if terminated acc then true
    else if Buffer.length acc > max_head then false
    else
      let n = conn.Transport.read buf 0 (Bytes.length buf) in
      if n = 0 then Buffer.length acc > 0 && terminated acc
      else begin
        Buffer.add_subbytes acc buf 0 n;
        go ()
      end
  in
  go ()

let respond (conn : Transport.conn) ~status ~body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: text/plain; version=0.0.4\r\n\
       Content-Length: %d\r\nConnection: close\r\n\r\n"
      status (String.length body)
  in
  conn.Transport.write (head ^ body)

let handle metrics (conn : Transport.conn) =
  (match read_head conn with
  | true -> respond conn ~status:"200 OK" ~body:(Metrics.to_prometheus metrics)
  | false -> respond conn ~status:"400 Bad Request" ~body:"bad request\n"
  | exception _ -> ());
  conn.Transport.close ()

let serve metrics (listener : Transport.listener) =
  ignore
    (Sched.spawn (fun () ->
         let rec loop () =
           match listener.Transport.accept () with
           | Some conn ->
               ignore (Sched.spawn (fun () -> handle metrics conn));
               loop ()
           | None ->
               if not (listener.Transport.stopped ()) then begin
                 Sched.yield ();
                 loop ()
               end
         in
         loop ()))
