(* Follower-side replication driver: dials the primary, subscribes from
   the follower's receive horizon, and pumps ReplRecords batches into
   Database.apply_replicated, acking each one at the applied (commit)
   horizon.

   Failure handling is uniform: anything that breaks the stream — EOF,
   corrupt frame, a torn batch (decode_frames returned a short dense
   prefix), a protocol violation — drops the connection, discards the
   buffered in-flight tail, and redials, resubscribing from whatever the
   follower has durably applied. The primary re-ships from the subscribe
   position, so the stream always restarts exactly where the follower
   left off. An Err frame from the primary is fatal (refused subscribe,
   draining): the driver stops rather than spin against a server that
   said no. *)

module Sched = Ivdb_sched.Sched
module Wire = Ivdb_wire.Wire
module Transport = Ivdb_transport.Transport
module Wal = Ivdb_wal.Wal
module Database = Ivdb.Database
module Metrics = Ivdb_util.Metrics
module Value = Ivdb_relation.Value
module Sql = Ivdb_sql.Sql
module Sys_tables = Ivdb_sql.Sys_tables

type status = Connecting | Streaming | Stopped

type t = {
  db : Database.t;
  mutable dialer : Transport.dialer; (* swapped by repoint on failover *)
  name : string;
  mutable status : status;
  mutable stop_requested : bool;
  mutable conn : Transport.conn option; (* live connection, closed by stop *)
  mutable primary_flushed : int; (* primary's last advertised stable horizon *)
  mutable primary_committed : int; (* primary's last advertised commit horizon *)
  mutable batches : int;
  mutable reconnects : int;
  mutable last_error : string option;
  mutable tick : int; (* tick of the last applied batch *)
  mutable delivered : bool; (* current session delivered >= 1 batch *)
  mutable backoff : int; (* ticks to wait before the next redial *)
  m_batches : Metrics.counter;
  m_records : Metrics.counter;
  m_reconnects : Metrics.counter;
}

let create ?(name = "replica") db dialer =
  if not (Database.is_follower db) then
    invalid_arg "Replica.create: database is not a follower";
  let m = Database.metrics db in
  {
    db;
    dialer;
    name;
    status = Connecting;
    stop_requested = false;
    conn = None;
    primary_flushed = Database.replicated_lsn db;
    primary_committed = Database.replicated_lsn db;
    batches = 0;
    reconnects = 0;
    last_error = None;
    tick = 0;
    delivered = false;
    backoff = 1;
    m_batches = Metrics.counter m "replica.batches";
    m_records = Metrics.counter m "replica.records";
    m_reconnects = Metrics.counter m "replica.reconnects";
  }

let status t = t.status
let batches t = t.batches
let reconnects t = t.reconnects
let last_error t = t.last_error
let primary_flushed t = t.primary_flushed
let primary_committed t = t.primary_committed
let backoff t = t.backoff

(* Lag is measured against the primary's *commit* horizon, not its raw
   flushed horizon: the gated applied position can never pass the last
   shipped commit boundary while a primary transaction is in flight, and
   a caught-up follower should read as lag 0, not as perpetually behind
   by the open transaction's tail. *)
let lag t = max 0 (t.primary_committed - Database.replicated_lsn t.db)

let stop t =
  t.stop_requested <- true;
  (* wake a fiber blocked in recv: close turns the pending read into EOF *)
  match t.conn with Some c -> c.Transport.close () | None -> ()

let repoint t dialer =
  t.dialer <- dialer;
  t.backoff <- 1;
  t.last_error <- None;
  (* drop the live session (if any): the redial loop picks up the new
     dialer and resubscribes from the applied horizon *)
  match t.conn with Some c -> c.Transport.close () | None -> ()

(* Apply one ReplRecords batch. decode_frames never raises: a torn or
   corrupt payload tail yields a short dense prefix, which is still
   safe to apply — the follower simply acks less than [upto] and the
   caller drops the connection to force a clean restart. *)
let apply_batch t ~first ~upto ~committed ~flushed payload =
  let expect = Database.received_lsn t.db + 1 in
  if first <> expect then
    `Protocol (Printf.sprintf "batch starts at LSN %d, expected %d" first expect)
  else begin
    let records = Wal.decode_frames ~first_lsn:first payload in
    (match records with [] -> () | _ -> Database.apply_replicated t.db records);
    t.primary_flushed <- max t.primary_flushed flushed;
    t.primary_committed <- max t.primary_committed committed;
    let n = List.length records in
    Metrics.inc t.m_batches;
    Metrics.inc_by t.m_records n;
    t.batches <- t.batches + 1;
    t.delivered <- true;
    t.tick <- Sched.now ();
    if first + n - 1 < upto then `Torn else `Ok
  end

(* One connection's lifetime: dial, handshake, subscribe, pump until the
   stream breaks or [stop] is requested. *)
let session t =
  let conn = t.dialer.Transport.dial () in
  t.conn <- Some conn;
  let io = Transport.Frame_io.create conn in
  Fun.protect
    ~finally:(fun () ->
      t.conn <- None;
      conn.Transport.close ();
      (* anything buffered past the commit horizon belongs to the broken
         session: the resubscribe below re-ships it *)
      ignore (Database.discard_pending_tail t.db))
    (fun () ->
      Transport.Frame_io.send io
        (Wire.Hello { version = Wire.version; client = t.name; resume = None });
      match Transport.Frame_io.recv io with
      | Some (Wire.Welcome _) ->
          Transport.Frame_io.send io
            (Wire.ReplSubscribe
               { from = Database.received_lsn t.db + 1; replica = t.name });
          t.status <- Streaming;
          let rec pump () =
            if not t.stop_requested then
              match Transport.Frame_io.recv io with
              | Some (Wire.ReplRecords { first; upto; committed; flushed; payload })
                -> (
                  match apply_batch t ~first ~upto ~committed ~flushed payload with
                  | `Ok ->
                      Transport.Frame_io.send io
                        (Wire.ReplAck { upto = Database.replicated_lsn t.db });
                      pump ()
                  | `Torn -> t.last_error <- Some "torn batch"
                  | `Protocol msg -> t.last_error <- Some msg)
              | Some (Wire.Err { text; _ }) ->
                  t.last_error <- Some text;
                  t.stop_requested <- true
              | Some Wire.Bye | None -> ()
              | Some f ->
                  t.last_error <-
                    Some ("unexpected frame " ^ Wire.frame_name f)
          in
          pump ()
      | Some (Wire.Err { text; _ }) ->
          t.last_error <- Some text;
          t.stop_requested <- true
      | Some (Wire.Busy _) -> t.last_error <- Some "primary busy"
      | Some _ | None -> t.last_error <- Some "handshake failed")

let run t =
  t.backoff <- 1;
  let rec go () =
    if not t.stop_requested then begin
      t.delivered <- false;
      (match session t with
      | () -> ()
      | exception Transport.Refused -> t.last_error <- Some "connection refused"
      | exception Transport.Corrupt m -> t.last_error <- Some m);
      if not t.stop_requested then begin
        t.reconnects <- t.reconnects + 1;
        Metrics.inc t.m_reconnects;
        t.status <- Connecting;
        (* a session that streamed real batches was healthy: restart the
           backoff clock instead of compounding every delay since boot
           (a replica that ran for a week and hiccuped once should redial
           in 1 tick, not 64) *)
        if t.delivered then t.backoff <- 1;
        for _ = 1 to t.backoff do
          Sched.yield ()
        done;
        t.backoff <- min (2 * t.backoff) 64;
        go ()
      end
    end
  in
  go ();
  t.status <- Stopped

let spawn t = ignore (Sched.spawn (fun () -> run t))

let replication_rows t () =
  let row =
    [|
      Value.Str "follower";
      Value.Str t.dialer.Transport.addr;
      Value.Str
        (match t.status with
        | Connecting -> "connecting"
        | Streaming -> "streaming"
        | Stopped -> "stopped");
      Value.Int (Database.replicated_lsn t.db);
      Value.Int t.primary_flushed;
      Value.Int t.primary_committed;
      Value.Int (lag t);
      Value.Int t.tick;
    |]
  in
  (Sys_tables.replication_header, [ row ])

let register_sys t session =
  Sql.add_sys_provider session "sys.replication" (replication_rows t)
