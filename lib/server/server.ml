module Sched = Ivdb_sched.Sched
module Wire = Ivdb_wire.Wire
module Transport = Ivdb_transport.Transport
module Sql = Ivdb_sql.Sql
module Sys_tables = Ivdb_sql.Sys_tables
module Database = Ivdb.Database
module Wal = Ivdb_wal.Wal
module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace
module Value = Ivdb_relation.Value

type config = {
  max_inflight : int;
  busy_retry_ticks : int;
  name : string;
  slow_query_ticks : int option;
}

let default_config =
  {
    max_inflight = 32;
    busy_retry_ticks = 100;
    name = "ivdb";
    slow_query_ticks = None;
  }

(* One row of sys.server_sessions: live per-connection accounting. *)
type sess = {
  se_id : int;
  se_conn : int;
  mutable se_state : string; (* "idle" | "exec" *)
  mutable se_statements : int;
  mutable se_last_rid : int;
  se_sql : Sql.session;
}

(* One row of sys.slow_queries. *)
type slow = {
  sq_rid : int;
  sq_session : int;
  sq_seq : int;
  sq_ticks : int;
  sq_tick : int; (* completion tick *)
  sq_sql : string;
}

let slow_cap = 128

(* One replication slot: the durable record of how far a named replica
   has applied our log. The slot outlives its connection — a detached
   replica still pins the WAL retain floor at its acked horizon, so the
   records it has yet to ship survive checkpoint truncation until it
   resubscribes. *)
type replica_state = {
  rp_name : string;
  mutable rp_connected : bool;
  mutable rp_acked : int; (* highest LSN the replica has applied *)
  mutable rp_tick : int; (* tick of the last subscribe or ack *)
}

(* Records shipped per ReplRecords frame. Small enough that a slow
   replica never holds a multi-megabyte payload in flight; large enough
   to amortize framing over a busy primary's append rate. *)
let repl_batch_limit = 128

type t = {
  db : Database.t;
  listener : Transport.listener;
  config : config;
  mutable inflight : int;
  mutable started : int;
  mutable next_session : int;
  sessions : (int, sess) Hashtbl.t;
  slow : slow Queue.t; (* bounded ring, oldest first *)
  replicas : (string, replica_state) Hashtbl.t; (* slots by replica name *)
  mutable attached : Replica.t option;
      (* on a follower's server: the local replication driver, so
         sys.replication shows the follower row before promotion and the
         Promote frame can stop the driver first *)
  mutable sys_ext : (Sql.session -> unit) list; (* extra sys.* installers *)
  (* metric handles resolved once at create *)
  m_accepted : Metrics.counter;
  m_shed : Metrics.counter;
  m_requests : Metrics.counter;
  m_closed : Metrics.counter;
  m_slow : Metrics.counter;
  m_repl_batches : Metrics.counter;
  m_repl_records : Metrics.counter;
  h_inflight : Metrics.hist;
  h_latency : Metrics.hist;
}

let create ?(config = default_config) db listener =
  let m = Database.metrics db in
  {
    db;
    listener;
    config;
    inflight = 0;
    started = 0;
    next_session = 1;
    sessions = Hashtbl.create 16;
    slow = Queue.create ();
    replicas = Hashtbl.create 4;
    attached = None;
    sys_ext = [];
    m_accepted = Metrics.counter m "server.accepted";
    m_shed = Metrics.counter m "server.shed";
    m_requests = Metrics.counter m "server.requests";
    m_closed = Metrics.counter m "server.sessions_closed";
    m_slow = Metrics.counter m "server.slow_queries";
    m_repl_batches = Metrics.counter m "server.repl.batches";
    m_repl_records = Metrics.counter m "server.repl.records";
    h_inflight = Metrics.hist m "server.inflight";
    h_latency = Metrics.hist m "server.request.ticks";
  }

let drain t = t.listener.stop ()
let draining t = t.listener.stopped ()
let inflight t = t.inflight
let sessions_started t = t.started

let slow_queries t = List.of_seq (Queue.to_seq t.slow)

let note_slow t entry =
  Metrics.inc t.m_slow;
  Queue.push entry t.slow;
  if Queue.length t.slow > slow_cap then ignore (Queue.pop t.slow)

let trace_emit t ev =
  let tr = Database.trace t.db in
  if Trace.enabled tr then Trace.emit tr ev

(* Live providers for the serving-layer sys.* tables, registered on every
   session's SQL state at handshake so SELECT over the wire (or a local
   admin session pointed at the same server) sees the whole registry. *)

let sessions_rows t () =
  let rows =
    Hashtbl.fold
      (fun _ se acc ->
        [|
          Value.Int se.se_id;
          Value.Int se.se_conn;
          Value.Str se.se_state;
          Value.Bool (Sql.in_transaction se.se_sql);
          Value.Int se.se_statements;
          Value.Int se.se_last_rid;
        |]
        :: acc)
      t.sessions []
    |> List.sort compare
  in
  (Sys_tables.server_sessions_header, rows)

let slow_rows t () =
  let rows =
    List.map
      (fun sq ->
        [|
          Value.Int sq.sq_rid;
          Value.Int sq.sq_session;
          Value.Int sq.sq_seq;
          Value.Int sq.sq_ticks;
          Value.Int sq.sq_tick;
          Value.Str sq.sq_sql;
        |])
      (slow_queries t)
  in
  (Sys_tables.slow_queries_header, rows)

let replication_rows t () =
  match t.attached with
  | Some r when Database.is_follower t.db ->
      (* still a follower: show the driver's row; after promote the slot
         rows below take over, making the role transition visible in
         sys.replication *)
      Replica.replication_rows r ()
  | _ ->
      let wal = Database.wal t.db in
      let flushed = Wal.flushed_lsn wal in
      let committed = Wal.commit_horizon wal in
      let rows =
        Hashtbl.fold
          (fun _ rp acc ->
            [|
              Value.Str "primary";
              Value.Str rp.rp_name;
              Value.Str (if rp.rp_connected then "streaming" else "detached");
              Value.Int rp.rp_acked;
              Value.Int flushed;
              Value.Int committed;
              Value.Int (flushed - rp.rp_acked);
              Value.Int rp.rp_tick;
            |]
            :: acc)
          t.replicas []
        |> List.sort compare
      in
      (Sys_tables.replication_header, rows)

let register_sys t session =
  Sql.add_sys_provider session "sys.server_sessions" (sessions_rows t);
  Sql.add_sys_provider session "sys.slow_queries" (slow_rows t);
  Sql.add_sys_provider session "sys.replication" (replication_rows t);
  List.iter (fun install -> install session) (List.rev t.sys_ext)

let add_sys t install = t.sys_ext <- install :: t.sys_ext
let attach_replica t r = t.attached <- Some r

let replicas t =
  Hashtbl.fold
    (fun _ rp acc -> (rp.rp_name, rp.rp_acked, rp.rp_connected) :: acc)
    t.replicas []
  |> List.sort compare

(* The WAL must retain every record some slot has yet to acknowledge:
   the floor is the minimum unacked LSN across all slots, detached ones
   included. With no slots the floor lifts and checkpoints truncate
   freely again. *)
let update_retain_floor t =
  let floor =
    Hashtbl.fold
      (fun _ rp acc ->
        match acc with
        | None -> Some (rp.rp_acked + 1)
        | Some f -> Some (min f (rp.rp_acked + 1)))
      t.replicas None
  in
  Wal.set_retain_floor (Database.wal t.db) floor

(* Map one statement's execution to its response frame. Exceptions here
   are user errors: the connection survives them all. A deadlock victim
   has already lost its transaction inside the engine, so the session's
   continuation is discarded via ROLLBACK before answering. *)
let exec_frame session ~seq sql =
  match Sql.exec session sql with
  | Sql.Rows { header; rows } -> Wire.Rows { seq; header; rows }
  | Sql.Affected n -> Wire.Affected { seq; n }
  | Sql.Message text -> Wire.Msg { seq; text }
  | exception Sql.Sql_error text ->
      Wire.Err
        { seq; code = E_sql; text; txn_open = Sql.in_transaction session }
  | exception Ivdb_sql.Sql_parser.Parse_error text ->
      Wire.Err
        { seq; code = E_parse; text; txn_open = Sql.in_transaction session }
  | exception Ivdb_sql.Sql_lexer.Lex_error text ->
      Wire.Err
        { seq; code = E_parse; text; txn_open = Sql.in_transaction session }
  | exception Database.Constraint_violation text ->
      Wire.Err
        {
          seq;
          code = E_constraint;
          text;
          txn_open = Sql.in_transaction session;
        }
  | exception Ivdb_txn.Txn.Conflict { reason; _ } ->
      if Sql.in_transaction session then ignore (Sql.exec session "ROLLBACK");
      Wire.Err { seq; code = E_deadlock; text = reason; txn_open = false }
  | exception Database.Read_only_replica ->
      Wire.Err
        {
          seq;
          code = E_read_only;
          text = "read-only replica: writes are not accepted";
          txn_open = Sql.in_transaction session;
        }

(* After ReplSubscribe the connection leaves request/response mode for
   good: the server pushes ReplRecords batches and blocks for a ReplAck
   after each one (stop-and-wait flow control), yielding while caught
   up. Returning closes the session; the slot — and with it the retain
   floor — survives for the replica's next connection. *)
let repl_stream t io ~from ~replica =
  let wal = Database.wal t.db in
  if from < Wal.first_lsn wal || from > Wal.flushed_lsn wal + 1 then begin
    Transport.Frame_io.send io
      (Wire.Err
         {
           seq = 0;
           code = E_repl;
           text =
             Printf.sprintf
               "cannot stream from LSN %d: retained log spans [%d, %d]" from
               (Wal.first_lsn wal) (Wal.flushed_lsn wal);
           txn_open = false;
         });
    Transport.Frame_io.send io Wire.Bye
  end
  else begin
    let rp =
      match Hashtbl.find_opt t.replicas replica with
      | Some rp -> rp
      | None ->
          let rp =
            {
              rp_name = replica;
              rp_connected = false;
              rp_acked = from - 1;
              rp_tick = Sched.now ();
            }
          in
          Hashtbl.replace t.replicas replica rp;
          rp
    in
    (* the replica is authoritative about what it has durably applied *)
    rp.rp_connected <- true;
    rp.rp_acked <- from - 1;
    rp.rp_tick <- Sched.now ();
    update_retain_floor t;
    (* the ship position is per-connection, not per-slot: a stale pump
       fiber on a dead connection must not advance the position a fresh
       subscription streams from *)
    let sent = ref (from - 1) in
    trace_emit t
      (Trace.Net_request
         {
           conn = (Transport.Frame_io.conn io).Transport.id;
           seq = 0;
           rid = 0;
           bytes = String.length replica;
         });
    let rec pump () =
      if draining t then Transport.Frame_io.send io Wire.Bye
      else begin
        let flushed = Wal.flushed_lsn wal in
        if flushed > !sent then begin
          let first = !sent + 1 in
          let upto = min flushed (!sent + repl_batch_limit) in
          let payload = Wal.serialize_range wal ~from:first ~upto in
          let committed = Wal.commit_horizon_upto wal ~upto in
          Transport.Frame_io.send io
            (Wire.ReplRecords { first; upto; committed; flushed; payload });
          sent := upto;
          Metrics.inc t.m_repl_batches;
          Metrics.inc_by t.m_repl_records (upto - first + 1);
          match Transport.Frame_io.recv io with
          | Some (Wire.ReplAck { upto = acked }) ->
              (* the ack is slot/retention progress only — with
                 commit-horizon gating the replica routinely acks below
                 [upto] (it buffers the tail of an in-flight transaction),
                 so the ship position keeps advancing; a replica that
                 actually dropped records closes the connection, and the
                 resubscribe renegotiates the position *)
              rp.rp_acked <- max rp.rp_acked acked;
              rp.rp_tick <- Sched.now ();
              update_retain_floor t;
              pump ()
          | Some Wire.Bye | None -> ()
          | Some _ ->
              Transport.Frame_io.send io
                (Wire.Err
                   {
                     seq = 0;
                     code = E_protocol;
                     text = "expected ReplAck";
                     txn_open = false;
                   })
          | exception Transport.Corrupt _ -> ()
        end
        else begin
          Sched.yield ();
          pump ()
        end
      end
    in
    (try pump () with Transport.Corrupt _ -> ());
    rp.rp_connected <- false
  end

let close_session t se conn =
  t.inflight <- t.inflight - 1;
  Hashtbl.remove t.sessions se.se_id;
  Metrics.inc t.m_closed;
  trace_emit t (Trace.Net_close { conn = conn.Transport.id });
  conn.Transport.close ()

(* Request/response loop after a successful handshake. Returns on Bye,
   EOF, protocol violation, or drain-with-no-open-txn. *)
let rec session_loop t io se =
  let session = se.se_sql in
  let conn = Transport.Frame_io.conn io in
  match Transport.Frame_io.recv io with
  | None | Some Wire.Bye | (exception Transport.Corrupt _) ->
      if Sql.in_transaction session then ignore (Sql.exec session "ROLLBACK")
  | Some (Wire.Metrics_req { seq }) ->
      Metrics.inc t.m_requests;
      Transport.Frame_io.send io
        (Wire.Msg { seq; text = Metrics.to_prometheus (Database.metrics t.db) });
      session_loop t io se
  | Some (Wire.ReplSubscribe { from; replica }) ->
      Metrics.inc t.m_requests;
      se.se_state <- "repl";
      repl_stream t io ~from ~replica
  | Some (Wire.Promote { seq }) ->
      Metrics.inc t.m_requests;
      let reply =
        if not (Database.is_follower t.db) then
          Wire.Err
            {
              seq;
              code = E_repl;
              text = "not a follower: nothing to promote";
              txn_open = false;
            }
        else begin
          (* promotion needs the engine quiescent: stop the replication
             driver and wait for its fiber to unwind before touching the
             transaction table *)
          (match t.attached with
          | Some r ->
              Replica.stop r;
              let rec wait () =
                if Replica.status r <> Replica.Stopped then begin
                  Sched.yield ();
                  wait ()
                end
              in
              wait ()
          | None -> ());
          match Database.promote t.db with
          | p ->
              Wire.Msg
                {
                  seq;
                  text =
                    Printf.sprintf
                      "promoted to primary: %d in-flight transaction(s) \
                       rolled back (%d undo record(s)), %d buffered \
                       record(s) applied"
                      p.Database.losers_undone p.Database.undo_records
                      p.Database.tail_records;
                }
          | exception e ->
              Wire.Err
                { seq; code = E_repl; text = Printexc.to_string e; txn_open = false }
        end
      in
      Transport.Frame_io.send io reply;
      session_loop t io se
  | Some (Wire.DropSlot { seq; name }) ->
      Metrics.inc t.m_requests;
      let reply =
        match Hashtbl.find_opt t.replicas name with
        | None ->
            Wire.Err
              {
                seq;
                code = E_repl;
                text = Printf.sprintf "no replication slot %S" name;
                txn_open = false;
              }
        | Some rp when rp.rp_connected ->
            Wire.Err
              {
                seq;
                code = E_repl;
                text =
                  Printf.sprintf "slot %S has a live subscription; stop the replica first"
                    name;
                txn_open = false;
              }
        | Some _ ->
            Hashtbl.remove t.replicas name;
            (* the dropped slot may have been the retention floor: recompute
               so the next checkpoint truncates again *)
            update_retain_floor t;
            Wire.Msg { seq; text = Printf.sprintf "dropped replication slot %S" name }
      in
      Transport.Frame_io.send io reply;
      session_loop t io se
  | Some (Wire.Prepare { seq; rid; gtxn; deltas }) ->
      Metrics.inc t.m_requests;
      let reply =
        (* idempotence first: a coordinator retransmit after reconnect must
           be answered from the dedupe tables, never re-executed *)
        match Database.gtxn_status t.db gtxn with
        | `Prepared -> Wire.Prepared { seq; gtxn }
        | `Decided committed -> Wire.Decided { seq; gtxn; committed }
        | `Unknown -> (
            try
              (* a delta-only participant has no statements of its own: open
                 the transaction the inbound deltas will be applied in *)
              if not (Sql.in_transaction session) then
                ignore (Sql.exec session "BEGIN");
              Sql.prepare_2pc session ~gtxn ~deltas;
              Wire.Prepared { seq; gtxn }
            with
            | Sql.Sql_error text ->
                if Sql.in_transaction session then
                  ignore (Sql.exec session "ROLLBACK");
                Wire.Err { seq; code = E_sql; text; txn_open = false }
            | Ivdb_txn.Txn.Conflict { reason; _ } ->
                if Sql.in_transaction session then
                  ignore (Sql.exec session "ROLLBACK");
                Wire.Err { seq; code = E_deadlock; text = reason; txn_open = false }
            | Invalid_argument text ->
                if Sql.in_transaction session then
                  ignore (Sql.exec session "ROLLBACK");
                Wire.Err { seq; code = E_sql; text; txn_open = false }
            | Database.Read_only_replica ->
                Wire.Err
                  {
                    seq;
                    code = E_read_only;
                    text = "read-only replica: cannot prepare";
                    txn_open = false;
                  })
      in
      (* gtxn-correlated participant event: the coordinator's rid joins
         this to its Coord_prepare on the other side of the wire *)
      (let outcome =
         match reply with
         | Wire.Prepared _ -> "prepared"
         | Wire.Decided _ -> "decided"
         | _ -> "no"
       in
       trace_emit t (Trace.Twopc_prepare { conn = conn.id; gtxn; rid; outcome }));
      Transport.Frame_io.send io reply;
      session_loop t io se
  | Some (Wire.Decide { seq; rid; gtxn; committed }) ->
      Metrics.inc t.m_requests;
      let reply =
        match Database.decide_2pc t.db ~gtxn ~committed with
        | (`Applied | `Duplicate | `Presumed_abort) as o ->
            let outcome =
              match o with
              | `Applied -> "applied"
              | `Duplicate -> "duplicate"
              | `Presumed_abort -> "presumed_abort"
            in
            trace_emit t
              (Trace.Twopc_decide { conn = conn.id; gtxn; rid; committed; outcome });
            Wire.Decided { seq; gtxn; committed }
        | exception Invalid_argument text ->
            Wire.Err { seq; code = E_protocol; text; txn_open = false }
      in
      Transport.Frame_io.send io reply;
      session_loop t io se
  | Some (Wire.Exec { seq; rid; sql }) ->
      if draining t && not (Sql.in_transaction session) then begin
        Transport.Frame_io.send io
          (Wire.Err
             {
               seq;
               code = E_draining;
               text = "server is draining";
               txn_open = false;
             });
        Transport.Frame_io.send io Wire.Bye
      end
      else begin
        Metrics.inc t.m_requests;
        se.se_state <- "exec";
        se.se_statements <- se.se_statements + 1;
        se.se_last_rid <- rid;
        trace_emit t
          (Trace.Net_request
             { conn = conn.id; seq; rid; bytes = String.length sql });
        let t0 = Sched.now () in
        let reply = exec_frame session ~seq sql in
        let ticks = Sched.now () - t0 in
        Metrics.record t.h_latency ticks;
        (match t.config.slow_query_ticks with
        | Some threshold when ticks >= threshold ->
            note_slow t
              {
                sq_rid = rid;
                sq_session = se.se_id;
                sq_seq = seq;
                sq_ticks = ticks;
                sq_tick = Sched.now ();
                sq_sql = sql;
              };
            trace_emit t
              (Trace.Slow_query { conn = conn.id; seq; rid; ticks; sql })
        | _ -> ());
        se.se_state <- "idle";
        Transport.Frame_io.send io reply;
        trace_emit t
          (Trace.Net_response
             { conn = conn.id; seq; rid; frame = Wire.frame_name reply; ticks });
        session_loop t io se
      end
  | Some _ ->
      (* a server-to-client frame from a client: protocol violation *)
      Transport.Frame_io.send io
        (Wire.Err
           {
             seq = 0;
             code = E_protocol;
             text = "unexpected frame";
             txn_open = Sql.in_transaction session;
           });
      if Sql.in_transaction session then ignore (Sql.exec session "ROLLBACK")

let handshake t io =
  let conn = Transport.Frame_io.conn io in
  match Transport.Frame_io.recv io with
  | Some (Wire.Hello { version; _ }) when version = Wire.version ->
      if draining t then begin
        Transport.Frame_io.send io
          (Wire.Err
             {
               seq = 0;
               code = E_draining;
               text = "server is draining";
               txn_open = false;
             });
        Transport.Frame_io.send io Wire.Bye;
        None
      end
      else begin
        (* resume is honoured as protocol only: disconnect rolled the old
           transaction back, so a fresh session id is always returned *)
        let session = t.next_session in
        t.next_session <- session + 1;
        Transport.Frame_io.send io
          (Wire.Welcome
             { version = Wire.version; server = t.config.name; session });
        let sql = Sql.session t.db in
        register_sys t sql;
        let se =
          {
            se_id = session;
            se_conn = conn.Transport.id;
            se_state = "idle";
            se_statements = 0;
            se_last_rid = 0;
            se_sql = sql;
          }
        in
        Hashtbl.replace t.sessions session se;
        Some se
      end
  | Some (Wire.Hello { version; _ }) ->
      Transport.Frame_io.send io
        (Wire.Err
           {
             seq = 0;
             code = E_protocol;
             text = Printf.sprintf "unsupported protocol version %d" version;
             txn_open = false;
           });
      None
  | None -> None
  | Some _ | (exception Transport.Corrupt _) ->
      Transport.Frame_io.send io
        (Wire.Err
           {
             seq = 0;
             code = E_protocol;
             text = "expected Hello";
             txn_open = false;
           });
      None

let session_fiber t conn =
  let io = Transport.Frame_io.create conn in
  match handshake t io with
  | Some se ->
      (try session_loop t io se
       with Transport.Corrupt _ -> ());
      close_session t se conn
  | None | (exception Transport.Corrupt _) ->
      t.inflight <- t.inflight - 1;
      Metrics.inc t.m_closed;
      trace_emit t (Trace.Net_close { conn = conn.Transport.id });
      conn.Transport.close ()

let admit t conn =
  if t.inflight >= t.config.max_inflight then begin
    Metrics.inc t.m_shed;
    trace_emit t (Trace.Net_shed { conn = conn.Transport.id });
    let io = Transport.Frame_io.create conn in
    Transport.Frame_io.send io
      (Wire.Busy { retry_ticks = t.config.busy_retry_ticks });
    conn.Transport.close ()
  end
  else begin
    t.inflight <- t.inflight + 1;
    t.started <- t.started + 1;
    Metrics.inc t.m_accepted;
    Metrics.record t.h_inflight t.inflight;
    trace_emit t (Trace.Net_accept { conn = conn.Transport.id });
    ignore (Sched.spawn (fun () -> session_fiber t conn))
  end

let serve t =
  ignore
    (Sched.spawn (fun () ->
         let rec loop () =
           match t.listener.accept () with
           | Some conn ->
               admit t conn;
               loop ()
           | None ->
               if not (t.listener.stopped ()) then begin
                 Sched.yield ();
                 loop ()
               end
         in
         loop ()))
