(** The ivdb network server: one {!Ivdb_sql.Sql.session} fiber per
    connection on the cooperative scheduler.

    [serve] spawns an accept fiber that polls the listener and spawns a
    session fiber per admitted connection. Admission control is a hard
    in-flight cap: a connection arriving above [max_inflight] is shed
    with a {!Ivdb_wire.Wire.Busy} frame and closed before any SQL runs.
    [drain] stops the listener and lets open sessions finish: a session
    holding an open transaction may still run statements through its
    [COMMIT]/[ROLLBACK]; one without gets [Err E_draining] + [Bye] on its
    next request. Once every session exits the scheduler run completes —
    a clean drain leaks no fibers.

    Per-request instrumentation lands in the database's {!Ivdb_util.Metrics}
    ([server.accepted], [server.shed], [server.requests],
    [server.sessions_closed], [server.slow_queries], [server.inflight] and
    [server.request.ticks] histograms) and {!Ivdb_util.Trace} ([net.accept],
    [net.shed], [net.request], [net.response], [net.slow_query],
    [net.close]). The client-assigned correlation id ([rid]) of each [Exec]
    frame is echoed into the request, response and slow-query events, so a
    statement can be joined across client logs, server trace, and
    [sys.slow_queries].

    Every session's SQL state is given live [sys.server_sessions] and
    [sys.slow_queries] providers (via {!Ivdb_sql.Sql.add_sys_provider}),
    so introspection queries over the wire see the whole registry. A
    [Metrics_req] frame is answered with a [Msg] carrying the Prometheus
    text exposition of the database's metrics. *)

type config = {
  max_inflight : int;  (** sessions served concurrently (default 32) *)
  busy_retry_ticks : int;
      (** backoff hint carried in the [Busy] shed frame (default 100) *)
  name : string;  (** server identity sent in [Welcome] (default "ivdb") *)
  slow_query_ticks : int option;
      (** statements taking at least this many simulated ticks are recorded
          in [sys.slow_queries] and emit a [net.slow_query] trace event
          (default [None]: disabled) *)
}

val default_config : config

type t

val create : ?config:config -> Ivdb.Database.t -> Transport.listener -> t

val serve : t -> unit
(** Spawn the accept fiber. Must be called inside a scheduler run; the
    fiber exits once the listener is stopped (see {!drain}). *)

val drain : t -> unit
(** Stop accepting, begin refusing new transactions. Idempotent. *)

val draining : t -> bool

val inflight : t -> int
(** Sessions currently admitted and not yet closed. *)

val sessions_started : t -> int
(** Total sessions ever admitted (shed connections excluded). *)

val register_sys : t -> Ivdb_sql.Sql.session -> unit
(** Attach this server's live [sys.server_sessions] / [sys.slow_queries]
    providers to an arbitrary SQL session — e.g. a local admin REPL
    sharing the server's database in-process. Wire sessions get this
    automatically at handshake. *)
