(** The ivdb network server: one {!Ivdb_sql.Sql.session} fiber per
    connection on the cooperative scheduler.

    [serve] spawns an accept fiber that polls the listener and spawns a
    session fiber per admitted connection. Admission control is a hard
    in-flight cap: a connection arriving above [max_inflight] is shed
    with a {!Ivdb_wire.Wire.Busy} frame and closed before any SQL runs.
    [drain] stops the listener and lets open sessions finish: a session
    holding an open transaction may still run statements through its
    [COMMIT]/[ROLLBACK]; one without gets [Err E_draining] + [Bye] on its
    next request. Once every session exits the scheduler run completes —
    a clean drain leaks no fibers.

    Per-request instrumentation lands in the database's {!Ivdb_util.Metrics}
    ([server.accepted], [server.shed], [server.requests],
    [server.sessions_closed], [server.slow_queries], [server.inflight] and
    [server.request.ticks] histograms) and {!Ivdb_util.Trace} ([net.accept],
    [net.shed], [net.request], [net.response], [net.slow_query],
    [net.close]). The client-assigned correlation id ([rid]) of each [Exec]
    frame is echoed into the request, response and slow-query events, so a
    statement can be joined across client logs, server trace, and
    [sys.slow_queries].

    Every session's SQL state is given live [sys.server_sessions],
    [sys.slow_queries] and [sys.replication] providers (via
    {!Ivdb_sql.Sql.add_sys_provider}), so introspection queries over the
    wire see the whole registry. A [Metrics_req] frame is answered with a
    [Msg] carrying the Prometheus text exposition of the database's
    metrics.

    {b Replication.} A session that sends [ReplSubscribe] leaves
    request/response mode permanently: the server streams the stable WAL
    tail to it in [ReplRecords] batches (at most 128 records each) under
    stop-and-wait flow control — one batch in flight, the next sent only
    after the replica's [ReplAck]. Subscribing registers a durable
    {e slot} under the replica's name; the slot's acknowledged horizon
    pins the WAL retain floor ({!Ivdb_wal.Wal.set_retain_floor}) so
    checkpoint truncation never discards records a known replica — even
    a disconnected one — has yet to apply. A subscribe below
    [first_lsn] (no slot pinned the log, e.g. a brand-new replica
    joining after heavy truncation with no prior slot) is refused with
    [Err E_repl]: that replica must be re-seeded. Shipping cost lands in
    [server.repl.batches] / [server.repl.records].

    Each [ReplRecords] batch carries the commit horizon
    ({!Ivdb_wal.Wal.commit_horizon_upto}) so the replica applies only
    transaction-consistent prefixes; its [ReplAck] may therefore trail
    the shipped position and is treated purely as slot/retention
    progress. Two admin frames complete the failover story: [Promote]
    (follower server only — stops the attached driver, calls
    {!Ivdb.Database.promote}, answers [Msg]) and [DropSlot] (forget a
    detached slot so it stops pinning WAL retention; refused with
    [Err E_repl] for an unknown or still-connected slot). *)

type config = {
  max_inflight : int;  (** sessions served concurrently (default 32) *)
  busy_retry_ticks : int;
      (** backoff hint carried in the [Busy] shed frame (default 100) *)
  name : string;  (** server identity sent in [Welcome] (default "ivdb") *)
  slow_query_ticks : int option;
      (** statements taking at least this many simulated ticks are recorded
          in [sys.slow_queries] and emit a [net.slow_query] trace event
          (default [None]: disabled) *)
}

val default_config : config

type t

val create :
  ?config:config -> Ivdb.Database.t -> Ivdb_transport.Transport.listener -> t

val serve : t -> unit
(** Spawn the accept fiber. Must be called inside a scheduler run; the
    fiber exits once the listener is stopped (see {!drain}). *)

val drain : t -> unit
(** Stop accepting, begin refusing new transactions. Idempotent. *)

val draining : t -> bool

val inflight : t -> int
(** Sessions currently admitted and not yet closed. *)

val sessions_started : t -> int
(** Total sessions ever admitted (shed connections excluded). *)

val register_sys : t -> Ivdb_sql.Sql.session -> unit
(** Attach this server's live [sys.server_sessions] / [sys.slow_queries] /
    [sys.replication] providers — plus any {!add_sys} extensions — to an
    arbitrary SQL session, e.g. a local admin REPL sharing the server's
    database in-process. Wire sessions get this automatically at
    handshake. *)

val add_sys : t -> (Ivdb_sql.Sql.session -> unit) -> unit
(** [add_sys t install] registers an extra per-session installer run on
    every subsequent handshake (and by {!register_sys}). Lets a binary
    override or extend the sys.* catalog. *)

val attach_replica : t -> Replica.t -> unit
(** On a follower's server: register the local replication driver. While
    the database is still a follower, [sys.replication] serves the
    driver's one follower row; after promotion it switches to the
    primary-shaped slot rows — the role transition is visible in the
    catalog. Attaching also lets the [Promote] wire frame stop the driver
    before calling {!Ivdb.Database.promote}. *)

val replicas : t -> (string * int * bool) list
(** Known replication slots as [(name, acked_lsn, connected)], sorted by
    name. Empty when nothing ever subscribed. *)
