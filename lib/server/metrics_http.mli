(** A scrape endpoint: one-shot HTTP/1.0 responses carrying the
    Prometheus text exposition of a {!Ivdb_util.Metrics} registry
    ({!Ivdb_util.Metrics.to_prometheus}).

    Any request — path and method are ignored — is answered with
    [200 OK] and [Content-Type: text/plain]; the connection is closed
    after one response. This is deliberately not a web server: just
    enough HTTP for [curl] or a Prometheus scraper against the
    [--metrics-port] listener of [ivdb_server]. *)

val serve : Ivdb_util.Metrics.t -> Ivdb_transport.Transport.listener -> unit
(** Spawn the accept fiber. Must be called inside a scheduler run; the
    fiber exits once the listener is stopped. *)

val handle : Ivdb_util.Metrics.t -> Ivdb_transport.Transport.conn -> unit
(** Serve a single already-accepted connection and close it. *)
