(** Follower-side replication driver.

    Connects a follower database ({!Ivdb.Database.create_follower}) to a
    primary's server over the wire protocol: dial, [Hello]/[Welcome],
    [ReplSubscribe] from the follower's durable horizon
    ([replicated_lsn + 1]), then a pump loop — receive [ReplRecords],
    decode ({!Ivdb_wal.Wal.decode_frames}), apply
    ({!Ivdb.Database.apply_replicated}), answer [ReplAck].

    Any stream break (EOF, corrupt frame, torn batch, protocol
    violation) drops the connection and redials with exponential
    backoff, resubscribing from whatever was durably applied — the
    primary's slot rewinds to the acked horizon, so no record is lost or
    applied twice. An [Err] frame from the primary (refused subscribe,
    draining) stops the driver for good.

    Progress lands in the follower's metrics: [replica.batches],
    [replica.records], [replica.reconnects] (alongside the engine's
    [repl.applied_records]). *)

type t

type status = Connecting | Streaming | Stopped

val create : ?name:string -> Ivdb.Database.t -> Ivdb_transport.Transport.dialer -> t
(** [create ?name db dialer] — [db] must be a follower
    ([Invalid_argument] otherwise). [name] (default ["replica"])
    identifies this replica's durable slot on the primary: keep it
    stable across restarts so the slot — and the WAL retention it pins —
    is reused rather than duplicated. *)

val spawn : t -> unit
(** Spawn the driver fiber. Must be called inside a scheduler run; the
    fiber exits only via {!stop} or a fatal [Err] from the primary. *)

val run : t -> unit
(** The driver loop itself, for callers managing their own fiber. *)

val stop : t -> unit
(** Request shutdown and close the live connection, waking the fiber if
    it is blocked in a read. Idempotent. *)

val status : t -> status

val lag : t -> int
(** Records between the primary's last advertised flushed horizon and
    what this follower has applied. Zero when caught up (or never
    connected). *)

val primary_flushed : t -> int
val batches : t -> int
val reconnects : t -> int
val last_error : t -> string option

val register_sys : t -> Ivdb_sql.Sql.session -> unit
(** Install this driver's live one-row [sys.replication] provider
    (role [follower], peer, state, horizons, lag) on a SQL session.
    Pass to {!Server.add_sys} on a follower's read-only server so wire
    clients can observe replication state. *)
