(** Follower-side replication driver.

    Connects a follower database ({!Ivdb.Database.create_follower}) to a
    primary's server over the wire protocol: dial, [Hello]/[Welcome],
    [ReplSubscribe] from the follower's durable horizon
    ([replicated_lsn + 1]), then a pump loop — receive [ReplRecords],
    decode ({!Ivdb_wal.Wal.decode_frames}), apply
    ({!Ivdb.Database.apply_replicated}), answer [ReplAck].

    Any stream break (EOF, corrupt frame, torn batch, protocol
    violation) drops the connection, discards the follower's buffered
    in-flight tail, and redials with exponential backoff (reset to 1
    after any session that delivered a batch), resubscribing from
    whatever was durably applied — so no record is lost or applied
    twice. An [Err] frame from the primary (refused subscribe, draining)
    stops the driver for good.

    Progress lands in the follower's metrics: [replica.batches],
    [replica.records], [replica.reconnects] (alongside the engine's
    [repl.applied_records]). *)

type t

type status = Connecting | Streaming | Stopped

val create : ?name:string -> Ivdb.Database.t -> Ivdb_transport.Transport.dialer -> t
(** [create ?name db dialer] — [db] must be a follower
    ([Invalid_argument] otherwise). [name] (default ["replica"])
    identifies this replica's durable slot on the primary: keep it
    stable across restarts so the slot — and the WAL retention it pins —
    is reused rather than duplicated. *)

val spawn : t -> unit
(** Spawn the driver fiber. Must be called inside a scheduler run; the
    fiber exits only via {!stop} or a fatal [Err] from the primary. *)

val run : t -> unit
(** The driver loop itself, for callers managing their own fiber. *)

val stop : t -> unit
(** Request shutdown and close the live connection, waking the fiber if
    it is blocked in a read. Idempotent. *)

val status : t -> status

val repoint : t -> Ivdb_transport.Transport.dialer -> unit
(** Failover: aim the driver at a different primary (one promoted from a
    fellow follower of the old one). Swaps the dialer, resets the redial
    backoff, and drops the live session so the loop reconnects and
    resubscribes from this follower's applied horizon — which the
    promoted primary retains, since its promotion checkpoint does not
    truncate. Only meaningful on a driver that has not stopped. *)

val lag : t -> int
(** Records between the primary's last advertised *commit* horizon and
    what this follower has applied. Zero when caught up (or never
    connected) — an open transaction on the primary does not count as
    lag, since its records are not readable anywhere yet. *)

val primary_flushed : t -> int
val primary_committed : t -> int

val backoff : t -> int
(** Current redial delay in scheduler ticks: doubles (capped at 64) after
    each session that delivered nothing, resets to 1 after a healthy
    session. Exposed for the reconnect regression test. *)

val batches : t -> int
val reconnects : t -> int
val last_error : t -> string option

val replication_rows :
  t -> unit -> string list * Ivdb_relation.Value.t array list
(** The driver's live one-row [sys.replication] content (role
    [follower], peer, state, horizons, lag). {!Server.attach_replica}
    serves this while the database is still a follower. *)

val register_sys : t -> Ivdb_sql.Sql.session -> unit
(** Install {!replication_rows} as a [sys.replication] provider on a SQL
    session — for local admin sessions on a follower; wire sessions get
    it via {!Server.attach_replica}. *)
