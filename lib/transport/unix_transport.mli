(** Real-socket transport: TCP behind a cooperative poll loop.

    Inside a {!Ivdb_sched.Sched.run}, sockets are non-blocking and a
    read that would block yields to the scheduler and retries, backing
    off to a sub-millisecond sleep after a burst of fruitless polls so
    an idle server does not spin a core. Outside a run (a standalone
    client such as the REPL), sockets block the calling thread
    directly. Unlike {!Transport.Loopback}, socket readiness comes from
    the kernel, so runs over this transport are not seed-deterministic. *)

val listen :
  ?backlog:int -> port:int -> unit -> Transport.listener * int
(** Bind and listen on [127.0.0.1:port] ([port] = 0 lets the kernel pick);
    returns the listener and the actual port. [backlog] is the kernel
    accept queue (default 64). *)

val dial : ?host:string -> port:int -> unit -> Transport.conn
(** Connect to [host] (default 127.0.0.1). Raises {!Transport.Refused}
    when the peer refuses. *)

val dialer : ?host:string -> port:int -> unit -> Transport.dialer
(** {!dial} packaged as a named {!Transport.dialer} ("host:port"). *)
