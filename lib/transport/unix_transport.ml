(* TCP transport. The cooperative scheduler has no notion of fd
   readiness, so in-run blocking is poll-and-yield: EAGAIN yields the
   fiber and retries. A global idle counter (reset by any successful
   I/O anywhere in the transport) escalates a long fruitless streak to
   a 0.2 ms sleep, bounding the idle-spin cost without a central
   poller; under load the counter never reaches the threshold, so the
   hot path stays syscall + yield. *)

module Sched = Ivdb_sched.Sched

(* consecutive would-block events across every socket of the process *)
let idle_polls = ref 0
let idle_threshold = 256

let idle_tick () =
  incr idle_polls;
  if !idle_polls >= idle_threshold then begin
    idle_polls := 0;
    Unix.sleepf 0.0002
  end

let would_block () =
  idle_tick ();
  Sched.yield ()

let progressed () = idle_polls := 0

let next_id = ref 0

let conn_of_fd fd =
  let id = !next_id in
  incr next_id;
  let closed = ref false in
  let in_run = Sched.in_run () in
  if in_run then Unix.set_nonblock fd;
  let rec read buf off len =
    match Unix.read fd buf off len with
    | n ->
        progressed ();
        n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        would_block ();
        if !closed then 0 else read buf off len
    | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> 0
  in
  let rec write_all s off =
    if off < String.length s then
      match Unix.write_substring fd s off (String.length s - off) with
      | n ->
          progressed ();
          write_all s (off + n)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          would_block ();
          if not !closed then write_all s off
      | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> ()
  in
  let close () =
    if not !closed then begin
      closed := true;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  { Transport.id; read; write = (fun s -> write_all s 0); close }

let listen ?(backlog = 64) ~port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd backlog;
  Unix.set_nonblock fd;
  let actual_port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> assert false
  in
  let stopped = ref false in
  let accept () =
    if !stopped then None
    else
      match Unix.accept fd with
      | client, _ ->
          progressed ();
          Some (conn_of_fd client)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          idle_tick ();
          None
      | exception Unix.Unix_error (EBADF, _, _) -> None
  in
  let stop () =
    if not !stopped then begin
      stopped := true;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  ( {
      Transport.accept;
      (* the kernel holds the queue; connections surface one per accept
         poll, so admission control sees them as they arrive *)
      pending = (fun () -> 0);
      stop;
      stopped = (fun () -> !stopped);
    },
    actual_port )

let dial ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  match Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port)) with
  | () -> conn_of_fd fd
  | exception Unix.Unix_error (ECONNREFUSED, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise Transport.Refused

let dialer ?(host = "127.0.0.1") ~port () =
  {
    Transport.addr = Printf.sprintf "%s:%d" host port;
    dial = (fun () -> dial ~host ~port ());
  }
