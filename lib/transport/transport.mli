(** Byte transports under the ivdb wire protocol.

    A {!conn} is a bidirectional byte stream with blocking reads:
    "blocking" means suspending the calling fiber under
    {!Ivdb_sched.Sched} (cooperative, deterministic) or blocking the
    calling thread outside a scheduler run, depending on the transport.
    A {!listener} hands out server-side connections; [accept] is a
    non-blocking poll so the server's accept fiber stays runnable and a
    quiet server never wedges the scheduler.

    Two implementations exist: the in-memory {!Loopback} (fully
    deterministic under a seeded scheduler run — the transport the test
    suite and crash/fault property tests use) and
    {!Unix_transport} (real sockets behind a cooperative poll loop). *)

exception Refused
(** Raised by a connect when the accept queue (listen backlog) is full
    or the listener has stopped — the transport-level load shed. *)

exception Corrupt of string
(** Raised by {!Frame_io.recv} when the stream violates the framing
    (bad checksum, impossible length, EOF inside a frame). The
    connection is unusable afterwards. *)

type conn = {
  id : int;  (** unique per transport instance; used in trace events *)
  read : bytes -> int -> int -> int;
      (** [read buf off len] blocks until at least one byte is
          available, returns the count copied, or 0 at EOF. *)
  write : string -> unit;
      (** Writes the whole string. Writing to a peer-closed connection
          is a silent no-op (the subsequent read observes EOF). *)
  close : unit -> unit;  (** idempotent *)
}

type listener = {
  accept : unit -> conn option;  (** non-blocking; [None] = nothing pending *)
  pending : unit -> int;  (** connections queued but not yet accepted *)
  stop : unit -> unit;
      (** refuse future connects; already-queued ones still accept *)
  stopped : unit -> bool;
}

type dialer = {
  addr : string;  (** human-readable peer address, for status/sys rows *)
  dial : unit -> conn;
      (** one connection attempt; raises {!Refused} when the peer
          refuses or the listener has stopped *)
}
(** A named connection factory — the single client-side interface: the
    SQL client, the REPL, and the replication stream all dial through
    one of these instead of each carrying an ad-hoc [unit -> conn]
    function. Build one with {!Loopback.dialer} or
    {!Unix_transport.dialer}. *)

(** Frame-granular I/O over a {!conn}: buffers the byte stream and
    yields only complete, checksum-verified {!Ivdb_wire.Wire} frames. *)
module Frame_io : sig
  type t

  val create : conn -> t
  val conn : t -> conn
  val send : t -> Ivdb_wire.Wire.frame -> unit

  val recv : t -> Ivdb_wire.Wire.frame option
  (** Blocks for a whole frame; [None] on clean EOF (no partial bytes
      buffered). Raises {!Corrupt} on a damaged stream. *)
end

(** Deterministic in-memory transport: connects and byte flow happen
    entirely inside one scheduler run, so a seed fully determines every
    interleaving — including server-side batching and shedding. *)
module Loopback : sig
  type net

  val create : ?backlog:int -> unit -> net
  (** [backlog] bounds the accept queue (default 16); a connect beyond
      it raises {!Refused}, like a kernel refusing a SYN. *)

  val listener : net -> listener

  val connect : net -> conn
  (** Client-side endpoint; the matching server-side conn is queued for
      [accept]. Raises {!Refused} when the backlog is full or the
      listener stopped. *)

  val dialer : net -> dialer
  (** [connect] packaged as a {!dialer} (addr ["loopback"]). *)
end
