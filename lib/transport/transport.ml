(* Transport substrate for the wire protocol: the conn/listener records
   every layer above programs against, frame-granular I/O on top of
   them, and the deterministic in-memory loopback implementation.

   Blocking discipline: a conn's [read] may suspend the calling fiber
   (loopback) or block the calling thread (unix sockets outside a
   scheduler run); it never spins without yielding. Everything else is
   non-blocking, so the server's accept loop and the scheduler's run
   queue stay live. *)

module Sched = Ivdb_sched.Sched
module Wire = Ivdb_wire.Wire

exception Refused
exception Corrupt of string

type conn = {
  id : int;
  read : bytes -> int -> int -> int;
  write : string -> unit;
  close : unit -> unit;
}

type listener = {
  accept : unit -> conn option;
  pending : unit -> int;
  stop : unit -> unit;
  stopped : unit -> bool;
}

type dialer = { addr : string; dial : unit -> conn }

(* --- frame-granular I/O ---------------------------------------------------- *)

module Frame_io = struct
  type t = {
    c : conn;
    chunk : bytes;
    mutable rbuf : string; (* unconsumed framed bytes, frame-aligned at 0 *)
  }

  let create c = { c; chunk = Bytes.create 4096; rbuf = "" }
  let conn t = t.c
  let send t f = t.c.write (Wire.to_framed f)

  let rec recv t =
    match Wire.decode_framed t.rbuf ~pos:0 with
    | Wire.Frame (f, next) ->
        t.rbuf <- String.sub t.rbuf next (String.length t.rbuf - next);
        Some f
    | Wire.Corrupt m -> raise (Corrupt m)
    | Wire.Partial ->
        let n = t.c.read t.chunk 0 (Bytes.length t.chunk) in
        if n = 0 then
          if t.rbuf = "" then None
          else raise (Corrupt "connection closed inside a frame")
        else begin
          t.rbuf <- t.rbuf ^ Bytes.sub_string t.chunk 0 n;
          recv t
        end
end

(* --- deterministic loopback ------------------------------------------------ *)

module Loopback = struct
  (* One direction of a connection: a growable byte queue with at most
     one blocked reader. The reader suspends on empty; writer and close
     wake it. All inside one Sched.run, so ordering is seed-driven. *)
  type pipe = {
    mutable data : Bytes.t;
    mutable rpos : int; (* consumed prefix *)
    mutable wpos : int; (* filled prefix *)
    mutable closed : bool;
    mutable waiter : (unit -> unit) option;
  }

  let pipe () =
    { data = Bytes.create 256; rpos = 0; wpos = 0; closed = false; waiter = None }

  let wake p =
    match p.waiter with
    | None -> ()
    | Some w ->
        p.waiter <- None;
        w ()

  let pipe_write p s =
    if not p.closed then begin
      let n = String.length s in
      let avail = Bytes.length p.data - p.wpos in
      if n > avail then begin
        let live = p.wpos - p.rpos in
        let cap = max (2 * Bytes.length p.data) (live + n) in
        let fresh = Bytes.create cap in
        Bytes.blit p.data p.rpos fresh 0 live;
        p.data <- fresh;
        p.rpos <- 0;
        p.wpos <- live
      end;
      Bytes.blit_string s 0 p.data p.wpos n;
      p.wpos <- p.wpos + n;
      wake p
    end

  let rec pipe_read p buf off len =
    let live = p.wpos - p.rpos in
    if live > 0 then begin
      let n = min live len in
      Bytes.blit p.data p.rpos buf off n;
      p.rpos <- p.rpos + n;
      if p.rpos = p.wpos then begin
        p.rpos <- 0;
        p.wpos <- 0
      end;
      n
    end
    else if p.closed then 0
    else begin
      (* loopback blocking only makes sense under the scheduler; outside
         a run Sched.suspend raises Stuck, which is the right error *)
      Sched.suspend (fun wake _cancel -> p.waiter <- Some wake);
      pipe_read p buf off len
    end

  let pipe_close p =
    p.closed <- true;
    wake p

  type net = {
    backlog : int;
    mutable queue : conn list; (* oldest first *)
    mutable next_id : int;
    mutable l_stopped : bool;
  }

  let create ?(backlog = 16) () =
    { backlog; queue = []; next_id = 0; l_stopped = false }

  let endpoints net =
    let c2s = pipe () and s2c = pipe () in
    let close_both () =
      pipe_close c2s;
      pipe_close s2c
    in
    let id = net.next_id in
    net.next_id <- id + 1;
    let client =
      {
        id;
        read = pipe_read s2c;
        write = pipe_write c2s;
        close = close_both;
      }
    in
    let server =
      {
        id;
        read = pipe_read c2s;
        write = pipe_write s2c;
        close = close_both;
      }
    in
    (client, server)

  let connect net =
    if net.l_stopped || List.length net.queue >= net.backlog then raise Refused;
    let client, server = endpoints net in
    net.queue <- net.queue @ [ server ];
    client

  let dialer net = { addr = "loopback"; dial = (fun () -> connect net) }

  let listener net =
    {
      accept =
        (fun () ->
          match net.queue with
          | [] -> None
          | c :: rest ->
              net.queue <- rest;
              Some c);
      pending = (fun () -> List.length net.queue);
      stop = (fun () -> net.l_stopped <- true);
      stopped = (fun () -> net.l_stopped);
    }
end
