module Metrics = Ivdb_util.Metrics

type resolution =
  | Committed of string option
  | Pending of string option
  | Current

type entry = { stamp : int; value : string option }

type chain = {
  mutable committed : entry list; (* newest (largest stamp) first *)
  mutable pending : (int * string option) list; (* (txn, before-image) *)
}

type t = {
  chains : (int * string, chain) Hashtbl.t; (* (obj, key) -> chain *)
  by_txn : (int, (int * string) list ref) Hashtbl.t; (* txn -> pending keys *)
  snapshots : (int, int) Hashtbl.t; (* stamp -> live snapshot count *)
  mutable n_snapshots : int;
  mutable last_stamp : int;
  m_live : Metrics.counter;
  m_pruned : Metrics.counter;
}

let create metrics =
  {
    chains = Hashtbl.create 64;
    by_txn = Hashtbl.create 16;
    snapshots = Hashtbl.create 8;
    n_snapshots = 0;
    last_stamp = 0;
    m_live = Metrics.counter metrics "mvcc.versions_live";
    m_pruned = Metrics.counter metrics "mvcc.versions_pruned";
  }

let last_stamp t = t.last_stamp
let snapshot_count t = t.n_snapshots
let live_versions t = Metrics.value t.m_live
let snapshot_active t = t.n_snapshots > 0

let min_snapshot t =
  if t.n_snapshots = 0 then None
  else
    Some
      (Hashtbl.fold
         (fun s _ acc -> match acc with None -> Some s | Some m -> Some (min m s))
         t.snapshots None
      |> Option.get)

let chain_of t ck =
  match Hashtbl.find_opt t.chains ck with
  | Some c -> c
  | None ->
      let c = { committed = []; pending = [] } in
      Hashtbl.replace t.chains ck c;
      c

let drop_if_empty t ck c =
  if c.committed = [] && c.pending = [] then Hashtbl.remove t.chains ck

let record_write t ~txn ~obj ~key ~before =
  let ck = (obj, key) in
  let c = chain_of t ck in
  if not (List.mem_assoc txn c.pending) then begin
    c.pending <- (txn, before) :: c.pending;
    let keys =
      match Hashtbl.find_opt t.by_txn txn with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.replace t.by_txn txn r;
          r
    in
    keys := ck :: !keys
  end

(* Install a committed entry unless one with this stamp is already at the
   head (the escrow push and a promoted before-image can race for a mixed
   escrow-then-exclusive key; first writer wins, both are the pre-commit
   value in every realizable schedule). *)
let install t c ~stamp value =
  match c.committed with
  | e :: _ when e.stamp = stamp -> ()
  | _ ->
      c.committed <- { stamp; value } :: c.committed;
      Metrics.inc t.m_live

let take_pending t ~txn f =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some keys ->
      Hashtbl.remove t.by_txn txn;
      List.iter
        (fun ck ->
          match Hashtbl.find_opt t.chains ck with
          | None -> ()
          | Some c ->
              (match List.assoc_opt txn c.pending with
              | None -> ()
              | Some before ->
                  c.pending <- List.remove_assoc txn c.pending;
                  f c before);
              drop_if_empty t ck c)
        !keys

let commit_txn t ~txn =
  t.last_stamp <- t.last_stamp + 1;
  let stamp = t.last_stamp in
  let live = snapshot_active t in
  take_pending t ~txn (fun c before -> if live then install t c ~stamp before);
  stamp

let abort_txn t ~txn = take_pending t ~txn (fun _ _ -> ())

let push_committed t ~obj ~key ~stamp value =
  if snapshot_active t then begin
    let c = chain_of t (obj, key) in
    install t c ~stamp value
  end

let begin_snapshot t =
  let s = t.last_stamp in
  Hashtbl.replace t.snapshots s
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.snapshots s));
  t.n_snapshots <- t.n_snapshots + 1;
  s

(* An entry at stamp [T] is readable only by a snapshot [S < T]: prune
   everything at or below the oldest live snapshot. *)
let prune t =
  let keep =
    match min_snapshot t with
    | None -> fun _ -> false
    | Some m -> fun e -> e.stamp > m
  in
  let pruned = ref 0 in
  let empty = ref [] in
  Hashtbl.iter
    (fun ck c ->
      let kept = List.filter keep c.committed in
      pruned := !pruned + (List.length c.committed - List.length kept);
      c.committed <- kept;
      if kept = [] && c.pending = [] then empty := ck :: !empty)
    t.chains;
  List.iter (Hashtbl.remove t.chains) !empty;
  Metrics.inc_by t.m_live (- !pruned);
  Metrics.inc_by t.m_pruned !pruned;
  !pruned

let gc t = prune t

let release_snapshot t s =
  (match Hashtbl.find_opt t.snapshots s with
  | Some 1 -> Hashtbl.remove t.snapshots s
  | Some n -> Hashtbl.replace t.snapshots s (n - 1)
  | None -> invalid_arg "Mvcc: releasing an unregistered snapshot");
  t.n_snapshots <- t.n_snapshots - 1;
  ignore (prune t)

let resolve t ~obj ~key ~snap =
  match Hashtbl.find_opt t.chains (obj, key) with
  | None -> Current
  | Some c -> (
      (* newest-first: entries with stamp > snap form a prefix; the last of
         that prefix — the oldest commit after the snapshot — carries the
         value that was current at the snapshot *)
      let rec oldest_after last = function
        | e :: rest when e.stamp > snap -> oldest_after (Some e) rest
        | _ -> last
      in
      match oldest_after None c.committed with
      | Some e -> Committed e.value
      | None -> (
          match c.pending with
          | (_, before) :: _ -> Pending before
          | [] -> Current))

let keys_of_obj t ~obj =
  Hashtbl.fold
    (fun (o, key) _ acc -> if o = obj then key :: acc else acc)
    t.chains []
