module Wal = Ivdb_wal.Wal
module Log_record = Ivdb_wal.Log_record
module Lock_mgr = Ivdb_lock.Lock_mgr
module Bufpool = Ivdb_storage.Bufpool
module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace

type status = Active | Committed | Aborted

type commit_mode = Group_commit.mode =
  | Sync
  | Group of { max_batch : int; max_wait_ticks : int }
  | Async

exception Conflict of { txn : int; reason : string }

type t = {
  tid : int;
  system : bool;
  tbegin_tick : int;
  tsnapshot : int option; (* Some stamp = lock-free read-only snapshot *)
  mutable tstatus : status;
  mutable tfirst_lsn : Log_record.lsn;
  mutable tlast_lsn : Log_record.lsn;
  mutable tdeltas : int; (* view maintenance deltas applied on its behalf *)
  mutable tabort_reason : string option;
  mutable tcommit_stamp : int option; (* MVCC stamp, set at commit *)
}

(* Point-in-time description of a transaction, for sys.transactions. *)
type info = {
  i_txn : int;
  i_system : bool;
  i_status : status;
  i_begin_tick : int;
  i_end_tick : int option; (* None while active *)
  i_deltas : int;
  i_locks : int; (* locks held now; 0 once finished *)
  i_snapshot : int option; (* Some stamp for snapshot transactions *)
  i_abort_reason : string option;
}

(* Finished transactions are remembered in a small ring so an operator can
   still see a recent abort (and its reason) after the fact. *)
let recent_cap = 64

type mgr = {
  mwal : Wal.t;
  mlocks : Lock_mgr.t;
  mpool : Bufpool.t;
  mmetrics : Metrics.t;
  mtrace : Trace.t;
  mgc : Group_commit.t;
  m_begin : Metrics.counter;
  m_system : Metrics.counter;
  m_commit : Metrics.counter;
  m_system_commit : Metrics.counter;
  m_ro_commit : Metrics.counter;
  m_abort : Metrics.counter;
  m_snap_begin : Metrics.counter;
  m_snap_commit : Metrics.counter;
  mmvcc : Mvcc.t;
  active : (int, t) Hashtbl.t;
  recent : info Queue.t; (* finished txns, oldest first, <= recent_cap *)
  mutable next_id : int;
  mutable undo_exec : t -> Log_record.logical_undo -> Log_record.page_diffs;
  mutable end_hooks : (t -> status -> unit) list;
}

let create_mgr ?(commit_mode = Sync) ?trace ~wal ~locks ~pool metrics =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  {
    mwal = wal;
    mlocks = locks;
    mpool = pool;
    mmetrics = metrics;
    mtrace = trace;
    mgc = Group_commit.create ~wal ~mode:commit_mode ~trace metrics;
    m_begin = Metrics.counter metrics "txn.begin";
    m_system = Metrics.counter metrics "txn.system";
    m_commit = Metrics.counter metrics "txn.commit";
    m_system_commit = Metrics.counter metrics "txn.system_commit";
    m_ro_commit = Metrics.counter metrics "txn.read_only_commit";
    m_abort = Metrics.counter metrics "txn.abort";
    m_snap_begin = Metrics.counter metrics "txn.snapshot_begin";
    m_snap_commit = Metrics.counter metrics "txn.snapshot_commit";
    mmvcc = Mvcc.create metrics;
    active = Hashtbl.create 32;
    recent = Queue.create ();
    next_id = 1;
    undo_exec = (fun _ _ -> failwith "Txn: undo executor not installed");
    end_hooks = [];
  }

let commit_mode mgr = Group_commit.mode mgr.mgc
let set_commit_mode mgr m = Group_commit.set_mode mgr.mgc m

let set_undo_exec mgr f = mgr.undo_exec <- f
let add_end_hook mgr f = mgr.end_hooks <- f :: mgr.end_hooks
let wal mgr = mgr.mwal
let locks mgr = mgr.mlocks
let pool mgr = mgr.mpool
let disk mgr = Bufpool.disk mgr.mpool
let metrics mgr = mgr.mmetrics
let trace mgr = mgr.mtrace
let mvcc mgr = mgr.mmvcc

let fresh mgr ~system =
  let tid = mgr.next_id in
  mgr.next_id <- tid + 1;
  let t =
    {
      tid;
      system;
      tbegin_tick = Ivdb_sched.Sched.now ();
      tsnapshot = None;
      tstatus = Active;
      tfirst_lsn = Log_record.nil_lsn;
      tlast_lsn = Log_record.nil_lsn;
      tdeltas = 0;
      tabort_reason = None;
      tcommit_stamp = None;
    }
  in
  Hashtbl.replace mgr.active tid t;
  t.tlast_lsn <- Wal.append mgr.mwal ~txn:tid ~prev:Log_record.nil_lsn (Log_record.Begin { system });
  t.tfirst_lsn <- t.tlast_lsn;
  Metrics.inc (if system then mgr.m_system else mgr.m_begin);
  if Trace.enabled mgr.mtrace then
    Trace.emit mgr.mtrace (Trace.Txn_begin { txn = tid; system });
  t

let begin_txn mgr = fresh mgr ~system:false
let begin_system mgr = fresh mgr ~system:true

(* A snapshot transaction touches neither the WAL (it can have no effects
   to log or undo) nor the lock manager — it is registered in the active
   table purely for introspection, and in the MVCC registry for its
   visibility cut and the version-GC horizon. *)
let begin_snapshot mgr =
  let tid = mgr.next_id in
  mgr.next_id <- tid + 1;
  let t =
    {
      tid;
      system = false;
      tbegin_tick = Ivdb_sched.Sched.now ();
      tsnapshot = Some (Mvcc.begin_snapshot mgr.mmvcc);
      tstatus = Active;
      tfirst_lsn = Log_record.nil_lsn;
      tlast_lsn = Log_record.nil_lsn;
      tdeltas = 0;
      tabort_reason = None;
      tcommit_stamp = None;
    }
  in
  Hashtbl.replace mgr.active tid t;
  Metrics.inc mgr.m_snap_begin;
  if Trace.enabled mgr.mtrace then
    Trace.emit mgr.mtrace (Trace.Txn_begin { txn = tid; system = false });
  t

let id t = t.tid
let status t = t.tstatus
let is_system t = t.system
let last_lsn t = t.tlast_lsn
let first_lsn t = t.tfirst_lsn
let snapshot_of t = t.tsnapshot
let commit_stamp t = t.tcommit_stamp

let check_active t =
  if t.tstatus <> Active then
    invalid_arg (Printf.sprintf "Txn: transaction %d is not active" t.tid)

(* Snapshot purity: a read-only snapshot transaction must generate zero
   lock-manager and zero WAL traffic; any attempt is a caller bug. *)
let check_not_snapshot t what =
  if t.tsnapshot <> None then
    invalid_arg
      (Printf.sprintf "Txn: snapshot transaction %d cannot %s" t.tid what)

let lock mgr t name mode =
  check_active t;
  check_not_snapshot t "lock";
  try Lock_mgr.acquire mgr.mlocks ~txn:t.tid name mode
  with Lock_mgr.Deadlock victim ->
    if victim = t.tid then t.tabort_reason <- Some "deadlock victim";
    raise (Conflict { txn = victim; reason = "deadlock victim" })

let lock_instant mgr t name mode =
  check_active t;
  check_not_snapshot t "lock";
  try Lock_mgr.acquire_instant mgr.mlocks ~txn:t.tid name mode
  with Lock_mgr.Deadlock victim ->
    if victim = t.tid then t.tabort_reason <- Some "deadlock victim";
    raise (Conflict { txn = victim; reason = "deadlock victim" })

let note_delta t = t.tdeltas <- t.tdeltas + 1
let set_abort_reason t reason = t.tabort_reason <- Some reason

let stamp_pages mgr lsn diffs =
  List.iter (fun (pid, _) -> Bufpool.stamp mgr.mpool pid (Int64.of_int lsn)) diffs

let log_update mgr t ~undo diffs =
  check_active t;
  check_not_snapshot t "log updates";
  let diffs =
    List.filter (fun (_, d) -> not (Ivdb_storage.Page_diff.is_empty d)) diffs
  in
  if diffs <> [] || undo <> Log_record.No_undo then begin
    let lsn =
      Wal.append mgr.mwal ~txn:t.tid ~prev:t.tlast_lsn
        (Log_record.Update { redo = diffs; undo })
    in
    t.tlast_lsn <- lsn;
    stamp_pages mgr lsn diffs
  end

let log_clr mgr t ~undo_next diffs =
  let diffs =
    List.filter (fun (_, d) -> not (Ivdb_storage.Page_diff.is_empty d)) diffs
  in
  let lsn =
    Wal.append mgr.mwal ~txn:t.tid ~prev:t.tlast_lsn
      (Log_record.Clr { redo = diffs; undo_next })
  in
  t.tlast_lsn <- lsn;
  stamp_pages mgr lsn diffs

let log_ddl mgr t payload =
  check_active t;
  check_not_snapshot t "log DDL";
  t.tlast_lsn <- Wal.append mgr.mwal ~txn:t.tid ~prev:t.tlast_lsn (Log_record.Ddl payload)

let info_of ?(locks = 0) ~end_tick t =
  {
    i_txn = t.tid;
    i_system = t.system;
    i_status = t.tstatus;
    i_begin_tick = t.tbegin_tick;
    i_end_tick = end_tick;
    i_deltas = t.tdeltas;
    i_locks = locks;
    i_snapshot = t.tsnapshot;
    i_abort_reason = t.tabort_reason;
  }

(* Commit stamping and pending-version promotion happen here — before the
   end hooks (which push escrow versions while the in-flight registry still
   holds the transaction's deltas) and before lock release. [finish] never
   yields, so the stamp order is the commit order other fibers observe. *)
let finish mgr t status =
  t.tstatus <- status;
  (match t.tsnapshot with
  | Some s -> Mvcc.release_snapshot mgr.mmvcc s
  | None -> (
      match status with
      | Committed -> t.tcommit_stamp <- Some (Mvcc.commit_txn mgr.mmvcc ~txn:t.tid)
      | Aborted -> Mvcc.abort_txn mgr.mmvcc ~txn:t.tid
      | Active -> ()));
  Hashtbl.remove mgr.active t.tid;
  if Queue.length mgr.recent >= recent_cap then ignore (Queue.pop mgr.recent);
  Queue.push (info_of ~end_tick:(Some (Ivdb_sched.Sched.now ())) t) mgr.recent;
  List.iter (fun f -> f t status) mgr.end_hooks;
  if t.tsnapshot = None then Lock_mgr.release_all mgr.mlocks ~txn:t.tid

let commit_snapshot mgr t =
  (* no WAL records, no force, no locks to release *)
  finish mgr t Committed;
  Metrics.inc mgr.m_snap_commit;
  if Trace.enabled mgr.mtrace then
    Trace.emit mgr.mtrace (Trace.Txn_commit { txn = t.tid; system = false })

let commit_rw mgr t =
  (* a transaction that logged nothing beyond its Begin record has no
     effects to make durable: skip the commit force *)
  let read_only = t.tlast_lsn = t.tfirst_lsn in
  let lsn = Wal.append mgr.mwal ~txn:t.tid ~prev:t.tlast_lsn Log_record.Commit in
  t.tlast_lsn <- lsn;
  (* Under group commit the fiber suspends here until the coordinator's
     batched force covers [lsn]; the transaction stays active and keeps its
     locks, so strictness is preserved. The stable-but-End-less window this
     opens (a checkpoint can record the committing transaction in its ATT)
     is handled by recovery: a transaction with a stable Commit record is
     never a loser. *)
  if not (t.system || read_only) then Group_commit.commit_durable mgr.mgc ~lsn;
  ignore (Wal.append mgr.mwal ~txn:t.tid ~prev:lsn Log_record.End);
  finish mgr t Committed;
  Metrics.inc (if t.system then mgr.m_system_commit else mgr.m_commit);
  if read_only && not t.system then Metrics.inc mgr.m_ro_commit;
  if Trace.enabled mgr.mtrace then
    Trace.emit mgr.mtrace (Trace.Txn_commit { txn = t.tid; system = t.system })

let commit mgr t =
  check_active t;
  if t.tsnapshot <> None then commit_snapshot mgr t else commit_rw mgr t


(* Walk the undo chain from [cursor], executing logical undo and logging a
   CLR per undone update. CLRs are skipped over via their undo_next pointer,
   so a rollback interrupted by a crash resumes where it stopped. *)
let undo_chain mgr t ~cursor =
  let rec go lsn =
    if lsn <> Log_record.nil_lsn then begin
      let r = Wal.get mgr.mwal lsn in
      match r.Log_record.body with
      | Log_record.Update { undo; _ } ->
          let diffs = mgr.undo_exec t undo in
          log_clr mgr t ~undo_next:r.Log_record.prev diffs;
          go r.Log_record.prev
      | Log_record.Clr { undo_next; _ } -> go undo_next
      | Log_record.Begin _ -> ()
      | Log_record.Commit | Log_record.End ->
          invalid_arg "Txn: undo reached a commit record"
      | Log_record.Abort | Log_record.Checkpoint _ | Log_record.Ddl _
      | Log_record.Prepare _ | Log_record.Decision _ ->
          go r.Log_record.prev
    end
  in
  go cursor

type savepoint = Log_record.lsn

let savepoint t =
  check_active t;
  t.tlast_lsn

(* Undo records newer than the savepoint, writing CLRs; the transaction
   stays active. The CLRs' undo-next pointers make a later full abort (or
   crash recovery) skip the already-compensated section. *)
let rollback_to mgr t sp =
  check_active t;
  let rec go lsn =
    if lsn > sp && lsn <> Log_record.nil_lsn then begin
      let r = Wal.get mgr.mwal lsn in
      match r.Log_record.body with
      | Log_record.Update { undo; _ } ->
          let diffs = mgr.undo_exec t undo in
          log_clr mgr t ~undo_next:r.Log_record.prev diffs;
          go r.Log_record.prev
      | Log_record.Clr { undo_next; _ } -> go undo_next
      | Log_record.Begin _ -> ()
      | Log_record.Commit | Log_record.End ->
          invalid_arg "Txn: rollback_to reached a commit record"
      | Log_record.Abort | Log_record.Checkpoint _ | Log_record.Ddl _
      | Log_record.Prepare _ | Log_record.Decision _ ->
          go r.Log_record.prev
    end
  in
  go t.tlast_lsn;
  Metrics.incr mgr.mmetrics "txn.partial_rollback"

let abort_rw mgr t =
  t.tlast_lsn <- Wal.append mgr.mwal ~txn:t.tid ~prev:t.tlast_lsn Log_record.Abort;
  undo_chain mgr t ~cursor:t.tlast_lsn;
  ignore (Wal.append mgr.mwal ~txn:t.tid ~prev:t.tlast_lsn Log_record.End);
  finish mgr t Aborted;
  Metrics.inc mgr.m_abort;
  if Trace.enabled mgr.mtrace then
    Trace.emit mgr.mtrace (Trace.Txn_abort { txn = t.tid })

(* 2PC phase 1: append a Prepare record and force it stable. The
   transaction stays Active and keeps every lock — its fate now belongs to
   the coordinator, and recovery classifies it as in-doubt rather than a
   loser until a Decision record settles it. *)
let prepare mgr t ~gtxn ~deltas =
  check_active t;
  check_not_snapshot t "prepare";
  let lsn =
    Wal.append mgr.mwal ~txn:t.tid ~prev:t.tlast_lsn
      (Log_record.Prepare { gtxn; deltas })
  in
  t.tlast_lsn <- lsn;
  Group_commit.commit_durable mgr.mgc ~lsn;
  Metrics.incr mgr.mmetrics "txn.prepare"

let log_decision mgr t ~gtxn ~committed =
  check_active t;
  t.tlast_lsn <-
    Wal.append mgr.mwal ~txn:t.tid ~prev:t.tlast_lsn
      (Log_record.Decision { gtxn; committed })

let abort mgr t =
  if t.tstatus = Active then
    if t.tsnapshot <> None then begin
      finish mgr t Aborted;
      if Trace.enabled mgr.mtrace then
        Trace.emit mgr.mtrace (Trace.Txn_abort { txn = t.tid })
    end
    else abort_rw mgr t

let rollback_tail mgr t ~from =
  check_active t;
  t.tlast_lsn <- max t.tlast_lsn from;
  undo_chain mgr t ~cursor:from;
  ignore (Wal.append mgr.mwal ~txn:t.tid ~prev:t.tlast_lsn Log_record.End);
  finish mgr t Aborted;
  Metrics.incr mgr.mmetrics "txn.recovery_undo"

let resurrect mgr ?(first_lsn = Log_record.nil_lsn) ~id ~last_lsn () =
  let t =
    {
      tid = id;
      system = false;
      tbegin_tick = Ivdb_sched.Sched.now ();
      tsnapshot = None;
      tstatus = Active;
      tfirst_lsn = first_lsn;
      tlast_lsn = last_lsn;
      tdeltas = 0;
      tabort_reason = None;
      tcommit_stamp = None;
    }
  in
  Hashtbl.replace mgr.active id t;
  if id >= mgr.next_id then mgr.next_id <- id + 1;
  t

(* Snapshot transactions have no WAL presence: they are excluded from the
   checkpoint's transaction table (recovery would treat a nil-LSN entry as
   a loser) and from the log-truncation bound. *)
let active_first_lsns mgr =
  Hashtbl.fold
    (fun _ t acc -> if t.tsnapshot = None then t.tfirst_lsn :: acc else acc)
    mgr.active []

let active_txns mgr =
  Hashtbl.fold
    (fun tid t acc ->
      if t.tsnapshot = None then (tid, t.tlast_lsn) :: acc else acc)
    mgr.active []
  |> List.sort compare

let active_info mgr =
  Hashtbl.fold
    (fun _ t acc ->
      info_of ~locks:(Lock_mgr.lock_count mgr.mlocks ~txn:t.tid) ~end_tick:None t
      :: acc)
    mgr.active []
  |> List.sort (fun a b -> compare a.i_txn b.i_txn)

let recent_info mgr = List.of_seq (Queue.to_seq mgr.recent)

let checkpoint mgr ~catalog =
  let body =
    Log_record.Checkpoint
      {
        active = active_txns mgr;
        dpt =
          List.map
            (fun (pid, recl) -> (pid, Int64.to_int recl))
            (Bufpool.dirty_page_table mgr.mpool);
        catalog;
      }
  in
  let lsn = Wal.append mgr.mwal ~txn:0 ~prev:Log_record.nil_lsn body in
  Wal.force mgr.mwal lsn;
  Metrics.incr mgr.mmetrics "txn.checkpoint"

let bump_txn_id mgr n = if n >= mgr.next_id then mgr.next_id <- n + 1
