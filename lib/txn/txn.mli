(** Transactions: strict two-phase locking, write-ahead logging, rollback
    by logical undo, and system transactions.

    A *system transaction* (Graefe's nested top-level action) performs a
    change that must commit independently of the invoking user transaction:
    B-tree structure modifications, creation of a missing view group row,
    garbage collection of zero-count rows. System transactions commit
    without forcing the log, hold no long-duration locks (the cooperative
    scheduler makes their body atomic), and are never rolled back by the
    user transaction's abort. *)

type mgr
type t

type status = Active | Committed | Aborted

type commit_mode = Group_commit.mode =
  | Sync  (** one private log force per commit *)
  | Group of { max_batch : int; max_wait_ticks : int }
      (** batched forces behind the commit coordinator fiber *)
  | Async  (** acknowledge before the force; weakest durability *)
(** How a user transaction's commit record is made durable; see
    {!Group_commit}. *)

exception Conflict of { txn : int; reason : string }
(** Raised out of a transaction body when the transaction has been chosen
    as a deadlock victim (or explicitly killed); the caller must run
    {!abort} and may then retry. *)

val create_mgr :
  ?commit_mode:commit_mode ->
  ?trace:Ivdb_util.Trace.t ->
  wal:Ivdb_wal.Wal.t ->
  locks:Ivdb_lock.Lock_mgr.t ->
  pool:Ivdb_storage.Bufpool.t ->
  Ivdb_util.Metrics.t ->
  mgr
(** [commit_mode] defaults to {!Sync}; [trace] to a fresh disabled trace.
    Transaction begin/commit/abort and batched commit flushes emit trace
    events when enabled. *)

val commit_mode : mgr -> commit_mode
val set_commit_mode : mgr -> commit_mode -> unit

val set_undo_exec : mgr -> (t -> Ivdb_wal.Log_record.logical_undo -> Ivdb_wal.Log_record.page_diffs) -> unit
(** Install the logical-undo executor (supplied by the access layer). It
    performs the inverse operation and returns the page diffs it produced;
    the rollback driver wraps them in a compensation record. *)

val add_end_hook : mgr -> (t -> status -> unit) -> unit
(** Register a callback invoked whenever a transaction finishes (commit or
    abort), before its locks are released. Used e.g. to retire a
    transaction's in-flight escrow deltas from the bounds registry. *)

val wal : mgr -> Ivdb_wal.Wal.t
val locks : mgr -> Ivdb_lock.Lock_mgr.t
val pool : mgr -> Ivdb_storage.Bufpool.t
val disk : mgr -> Ivdb_storage.Disk.t
val metrics : mgr -> Ivdb_util.Metrics.t
val trace : mgr -> Ivdb_util.Trace.t

val begin_txn : mgr -> t
val begin_system : mgr -> t

val begin_snapshot : mgr -> t
(** A lock-free read-only transaction: records the current MVCC commit
    stamp as its visibility cut and resolves every read against version
    chains (see {!Mvcc}) — it never touches the lock manager or the WAL.
    {!lock}, {!lock_instant} and {!log_update} raise [Invalid_argument] on
    it; {!commit} / {!abort} just unregister it (releasing its GC
    horizon). *)

val mvcc : mgr -> Mvcc.t
(** The manager's version-chain registry. *)

val id : t -> int
val status : t -> status
val is_system : t -> bool
val last_lsn : t -> Ivdb_wal.Log_record.lsn
val first_lsn : t -> Ivdb_wal.Log_record.lsn

val snapshot_of : t -> int option
(** [Some stamp] iff the transaction is a {!begin_snapshot} reader. *)

val commit_stamp : t -> int option
(** The MVCC commit stamp, set during commit before the end hooks run —
    the escrow version-push hook reads it. [None] while active. *)

val lock : mgr -> t -> Ivdb_lock.Lock_name.t -> Ivdb_lock.Lock_mode.t -> unit
(** Blocking acquisition; converts a deadlock-victim verdict into
    {!Conflict}. *)

val lock_instant : mgr -> t -> Ivdb_lock.Lock_name.t -> Ivdb_lock.Lock_mode.t -> unit

val log_update :
  mgr -> t -> undo:Ivdb_wal.Log_record.logical_undo -> Ivdb_wal.Log_record.page_diffs -> unit
(** Append an update record and stamp the touched pages. Empty diff lists
    are skipped entirely. *)

val log_ddl : mgr -> t -> string -> unit

val commit : mgr -> t -> unit
(** User transactions make the log stable up to their commit record before
    being acknowledged — with a private force in {!Sync} mode, via the
    coordinator's batched force in {!Group} mode (the fiber suspends, still
    holding its locks, until the batch is flushed), or not at all in
    {!Async} mode. System and read-only transactions never force (their
    effects are redone from the log if needed and required no force for
    correctness). *)

val abort : mgr -> t -> unit
(** Roll back by walking the undo chain, logging compensation records;
    idempotent on already-finished transactions. *)

val prepare : mgr -> t -> gtxn:string -> deltas:string -> unit
(** 2PC phase 1: append a [Prepare] record (carrying the coordinator's
    global id and the opaque remote-delta payload applied on this shard)
    and force the log through it. The transaction stays active and keeps
    all its locks; recovery classifies it as in-doubt, not a loser, until
    a decision settles it. *)

val log_decision : mgr -> t -> gtxn:string -> committed:bool -> unit
(** Append a [Decision] record into the transaction's chain. The caller
    then runs {!commit} (committed) or {!abort} (rolled back); the
    decision record makes the outcome recoverable even if the crash lands
    between it and the Commit/End records. *)

type savepoint

val savepoint : t -> savepoint
(** Mark the current point in the transaction's undo chain. *)

val rollback_to : mgr -> t -> savepoint -> unit
(** Undo the transaction's work back to the savepoint (compensation
    records as in a full abort), keeping the transaction active and its
    locks held. Work undone includes escrow increments (inverse deltas).
    Raises [Invalid_argument] if the transaction is not active. *)

val rollback_tail : mgr -> t -> from:Ivdb_wal.Log_record.lsn -> unit
(** Recovery entry point: undo the transaction's chain starting at [from]
    (its last known LSN), writing CLRs, then log End. Used for loser
    transactions whose in-memory handle was rebuilt from the log. *)

val resurrect :
  mgr ->
  ?first_lsn:Ivdb_wal.Log_record.lsn ->
  id:int ->
  last_lsn:Ivdb_wal.Log_record.lsn ->
  unit ->
  t
(** Rebuild a transaction handle from the analysis pass. [first_lsn]
    (default [nil_lsn]) pins the log-truncation bound for a resurrected
    in-doubt transaction that may survive across checkpoints. *)

val checkpoint : mgr -> catalog:string -> unit
(** Fuzzy checkpoint: logs the transaction table, the dirty-page table, and
    the catalog snapshot, then forces the log. *)

val active_txns : mgr -> (int * Ivdb_wal.Log_record.lsn) list

(** {1 Introspection}

    Point-in-time transaction descriptions for [sys.transactions]. Active
    transactions are listed live; finished ones are remembered in a small
    bounded ring so a recent abort (and its reason) stays visible. *)

type info = {
  i_txn : int;
  i_system : bool;
  i_status : status;
  i_begin_tick : int;  (** scheduler tick at begin *)
  i_end_tick : int option;  (** [None] while active *)
  i_deltas : int;  (** view-maintenance deltas applied on its behalf *)
  i_locks : int;  (** locks held at snapshot time; 0 once finished *)
  i_snapshot : int option;
      (** the visibility stamp of a snapshot reader; [None] for
          read-write and system transactions *)
  i_abort_reason : string option;
}

val active_info : mgr -> info list
(** Sorted by txn id. Pure read — takes no locks. *)

val recent_info : mgr -> info list
(** Recently finished transactions, oldest first (bounded ring). *)

val note_delta : t -> unit
(** Count one view-maintenance delta against the transaction (called by
    the maintenance layer). *)

val set_abort_reason : t -> string -> unit
(** Record why the transaction is being aborted, surfaced in
    [sys.transactions]. Deadlock victims get this set automatically. *)

(** First LSN of every active transaction — a lower bound on how far undo
    may have to walk, hence on log truncation. *)
val active_first_lsns : mgr -> Ivdb_wal.Log_record.lsn list
val bump_txn_id : mgr -> int -> unit
