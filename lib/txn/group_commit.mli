(** Group commit: batch the WAL forces of concurrently committing
    transactions behind a commit coordinator fiber.

    In [Group] mode a committing transaction appends its Commit record,
    enqueues here, and suspends; the coordinator collects waiters until
    [max_batch] of them are pending or [max_wait_ticks] simulated ticks
    have passed, issues one {!Ivdb_wal.Wal.force} up to the highest pending
    LSN, and wakes the whole batch. The force cost is amortized across the
    batch while the durability contract is unchanged: a transaction is
    acknowledged only after its commit record is stable.

    [Async] acknowledges immediately and flushes in the background — a
    crash may lose transactions whose commit already returned (bounded by
    the background flush window inside a scheduler run; unbounded outside
    one, where no coordinator can exist).

    Instrumented via {!Ivdb_util.Metrics}: [commit.batch] (batch-size
    histogram), [commit.group_force], [commit.batched_txns],
    [commit.forces_avoided], [commit.stall_ticks], [commit.sync_fallback],
    [commit.force_elided], [commit.async]. *)

type mode =
  | Sync  (** one private force per commit (the classic WAL rule) *)
  | Group of { max_batch : int; max_wait_ticks : int }
      (** batch until [max_batch] waiters or [max_wait_ticks] ticks.
          [max_batch] is a flush trigger, not a hard cap: commits that
          enqueue before the coordinator fiber gets scheduled ride the
          same force, so observed batches can exceed it. *)
  | Async  (** acknowledge before the force; weakest durability *)

type t

val create :
  wal:Ivdb_wal.Wal.t -> mode:mode -> ?trace:Ivdb_util.Trace.t -> Ivdb_util.Metrics.t -> t
(** [trace] defaults to a fresh disabled trace; when enabled each batched
    force emits one [commit.batch_flush] event. *)

val mode : t -> mode
val set_mode : t -> mode -> unit
val mode_to_string : mode -> string

val commit_durable : t -> lsn:Ivdb_wal.Log_record.lsn -> unit
(** Make the log stable up to [lsn] according to the configured mode. In
    [Group] mode inside a scheduler run this suspends the calling fiber
    until the coordinator's batched force covers [lsn]; outside a run it
    degrades to a synchronous force (fibers cannot suspend there). In
    [Async] mode it returns immediately. *)
