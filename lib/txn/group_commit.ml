(* Group commit: amortize the WAL force across concurrently committing
   transactions.

   Committers append their Commit record, enqueue here, and suspend; a
   coordinator fiber (spawned lazily on the first waiter — fibers only
   exist inside a Sched.run, so a permanent fiber would wedge the scheduler
   at exit) collects waiters until the batch is full or a tick deadline
   passes, issues ONE force up to the highest pending LSN, and wakes every
   waiter. A transaction is acknowledged committed (its commit call
   returns) only after its LSN is flushed, so durability semantics match
   per-commit forcing exactly; only latency is traded for throughput.

   Async weakens that: the committer is acknowledged immediately and the
   coordinator flushes in the background, so a crash can lose transactions
   whose commit call already returned. *)

module Wal = Ivdb_wal.Wal
module Sched = Ivdb_sched.Sched
module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace

type mode =
  | Sync
  | Group of { max_batch : int; max_wait_ticks : int }
  | Async

(* background flush window for Async mode: one force cost's worth of ticks *)
let async_wait_ticks = 100

type t = {
  wal : Wal.t;
  metrics : Metrics.t;
  trace : Trace.t;
  m_force_elided : Metrics.counter;
  m_group_force : Metrics.counter;
  m_batched_txns : Metrics.counter;
  m_forces_avoided : Metrics.counter;
  m_stall_ticks : Metrics.counter;
  h_batch : Metrics.hist;
  mutable mode : mode;
  mutable waiters : (unit -> unit) list; (* wake callbacks, newest first *)
  mutable n_pending : int; (* commits (waiting or async) since last force *)
  mutable pending_hi : Ivdb_wal.Log_record.lsn; (* highest LSN awaiting flush *)
  mutable coordinator_active : bool;
}

let create ~wal ~mode ?trace metrics =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  {
    wal;
    metrics;
    trace;
    m_force_elided = Metrics.counter metrics "commit.force_elided";
    m_group_force = Metrics.counter metrics "commit.group_force";
    m_batched_txns = Metrics.counter metrics "commit.batched_txns";
    m_forces_avoided = Metrics.counter metrics "commit.forces_avoided";
    m_stall_ticks = Metrics.counter metrics "commit.stall_ticks";
    h_batch = Metrics.hist metrics "commit.batch";
    mode;
    waiters = [];
    n_pending = 0;
    pending_hi = 0;
    coordinator_active = false;
  }

let mode t = t.mode
let set_mode t m = t.mode <- m

let mode_to_string = function
  | Sync -> "sync"
  | Group _ -> "group"
  | Async -> "async"

(* Force once up to the highest pending LSN and wake the whole batch. Runs
   inside the coordinator fiber; nothing yields between draining the queue
   and waking, so a batch is a consistent snapshot of the waiters. *)
let flush_batch t =
  let batch = t.n_pending in
  let hi = t.pending_hi in
  let waiters = List.rev t.waiters in
  t.waiters <- [];
  t.n_pending <- 0;
  if batch > 0 then begin
    (* a checkpoint or page writeback may have forced past us already *)
    if Wal.flushed_lsn t.wal < hi then Wal.force t.wal hi
    else Metrics.inc t.m_force_elided;
    Metrics.inc t.m_group_force;
    Metrics.inc_by t.m_batched_txns batch;
    Metrics.inc_by t.m_forces_avoided (batch - 1);
    Metrics.record t.h_batch batch;
    if Trace.enabled t.trace then
      Trace.emit t.trace (Trace.Batch_flush { batch; hi_lsn = hi });
    List.iter (fun wake -> wake ()) waiters
  end

let batch_params t =
  match t.mode with
  | Group { max_batch; max_wait_ticks } -> (max 1 max_batch, max 0 max_wait_ticks)
  | Async -> (max_int, async_wait_ticks)
  | Sync -> (1, 0)

let rec coordinator t =
  let max_batch, max_wait = batch_params t in
  let deadline = Sched.now () + max_wait in
  let rec collect () =
    if t.n_pending < max_batch && Sched.now () < deadline then begin
      Sched.yield ();
      collect ()
    end
  in
  collect ();
  flush_batch t;
  (* commits enqueued while we were collecting are already in the batch;
     the queue can only be non-empty here if a waker ran a new commit,
     which cannot happen without a yield — but be safe and loop *)
  if t.n_pending > 0 then coordinator t else t.coordinator_active <- false

let ensure_coordinator t =
  if not t.coordinator_active then begin
    t.coordinator_active <- true;
    ignore (Sched.spawn (fun () -> coordinator t))
  end

let enqueue t lsn =
  t.pending_hi <- max t.pending_hi lsn;
  t.n_pending <- t.n_pending + 1

let commit_durable t ~lsn =
  match t.mode with
  | Sync -> Wal.force t.wal lsn
  | Group _ ->
      if Wal.flushed_lsn t.wal < lsn then
        if not (Sched.in_run ()) then begin
          (* no fibers outside a scheduler run: degrade to a private force *)
          Metrics.incr t.metrics "commit.sync_fallback";
          Wal.force t.wal lsn
        end
        else begin
          enqueue t lsn;
          (* spawn before suspending: the register callback runs on the
             scheduler's own stack, where effects cannot be performed *)
          ensure_coordinator t;
          let t0 = Sched.now () in
          Sched.suspend (fun wake _cancel -> t.waiters <- wake :: t.waiters);
          Metrics.inc_by t.m_stall_ticks (Sched.now () - t0)
        end
  | Async ->
      Metrics.incr t.metrics "commit.async";
      if Wal.flushed_lsn t.wal < lsn then begin
        enqueue t lsn;
        (* acknowledged before the flush: a crash from here until the
           background force loses this transaction; outside a scheduler run
           nothing flushes at all until a checkpoint or page writeback *)
        if Sched.in_run () then ensure_coordinator t
      end
