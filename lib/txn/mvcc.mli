(** Multi-version concurrency for read-only snapshot transactions.

    Version chains hang off logical object keys — [(obj, key)] where [obj]
    is a catalog id (table or index) and [key] is the heap rid payload or
    B-tree key — never off physical pages, so splits and slot reuse are
    invisible. Each committed entry [(stamp, value)] records the value that
    was current {e until} the commit with that stamp; a snapshot at stamp
    [S] therefore resolves a key to the entry with the {e smallest stamp
    greater than} [S], falling back to an in-flight writer's before-image,
    and finally to current storage.

    Commit stamps are a dedicated monotonic counter (not scheduler ticks):
    every committing transaction draws a fresh stamp, so two commits can
    never be simultaneous and a snapshot's visibility cut is unambiguous.

    Memory is bounded by installing committed entries {e only while at
    least one snapshot is live}: a fresh stamp exceeds every live snapshot,
    and an entry is only ever read by a snapshot older than it, so with no
    snapshots active the chains stay empty. Pending before-images exist
    only for in-flight writers and die with the transaction. *)

type t

(** How a snapshot read of [(obj, key)] resolves. *)
type resolution =
  | Committed of string option
      (** the value as of the snapshot, from a committed version;
          [None] = logically absent *)
  | Pending of string option
      (** before-image of the sole in-flight (lock-holding) writer — i.e.
          the committed value (escrow writers never record these) *)
  | Current  (** storage holds the snapshot value; caller reads it *)

val create : Ivdb_util.Metrics.t -> t
(** Registers [mvcc.versions_live] / [mvcc.versions_pruned]. *)

(** {1 Writer side} *)

val record_write : t -> txn:int -> obj:int -> key:string -> before:string option -> unit
(** Note an in-flight writer's before-image at its {e first} write of
    [(obj, key)] — later writes by the same transaction keep the original
    image. Escrow increments must not be recorded (their storage value
    includes other transactions' uncommitted deltas). *)

val commit_txn : t -> txn:int -> int
(** Allocate the transaction's commit stamp and promote its pending
    before-images to committed entries (only while a snapshot is live).
    Returns the stamp. *)

val abort_txn : t -> txn:int -> unit
(** Discard the transaction's pending before-images (storage was already
    restored by undo). *)

val push_committed : t -> obj:int -> key:string -> stamp:int -> string option -> unit
(** Install a committed entry directly — the escrow commit path, which
    reconstructs the pre-commit value from the in-flight delta registry.
    No-op while no snapshot is live, or if an entry with this stamp is
    already installed for the key. *)

(** {1 Reader side} *)

val begin_snapshot : t -> int
(** Register a snapshot at the current last-issued stamp and return it:
    commits with stamp [<=] the result are visible. *)

val release_snapshot : t -> int -> unit
(** Unregister (multiset semantics) and prune entries no snapshot can
    still read — all of them once the last snapshot drains. *)

val resolve : t -> obj:int -> key:string -> snap:int -> resolution

val keys_of_obj : t -> obj:int -> string list
(** Keys of [obj] that have a chain (committed entries or pending images)
    — snapshot scans union these with the keys physically present, so
    rows/groups deleted and reclaimed after the snapshot began are still
    seen. Unsorted. *)

(** {1 Maintenance / introspection} *)

val gc : t -> int
(** Prune every entry below the oldest live snapshot's horizon (all
    entries when no snapshot is live); returns entries pruned. Also runs
    automatically on {!release_snapshot}. *)

val last_stamp : t -> int
val snapshot_count : t -> int
val live_versions : t -> int
