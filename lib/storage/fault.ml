module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace
module Rng = Ivdb_util.Rng

exception Crash_point of string
exception Io_error of string

type config = {
  fault_seed : int;
  read_error_p : float;
  write_error_p : float;
  max_consecutive_errors : int;
  crash_at_write : int option;
  crash_at_force : int option;
  torn_writes : bool;
  torn_tail : bool;
}

let no_faults =
  {
    fault_seed = 0;
    read_error_p = 0.;
    write_error_p = 0.;
    max_consecutive_errors = 3;
    crash_at_write = None;
    crash_at_force = None;
    torn_writes = false;
    torn_tail = false;
  }

let enabled_in c =
  c.read_error_p > 0. || c.write_error_p > 0. || c.crash_at_write <> None
  || c.crash_at_force <> None

type plan = {
  cfg : config;
  rng : Rng.t;
  trace : Trace.t;
  mutable p_writes : int;
  mutable p_forces : int;
  mutable consecutive : int; (* injected errors in a row, across streams *)
  mutable p_frozen : bool;
  mutable p_injected : int;
  m_err_read : Metrics.counter;
  m_err_write : Metrics.counter;
  m_crash_write : Metrics.counter;
  m_crash_force : Metrics.counter;
  m_torn_write : Metrics.counter;
  m_torn_tail : Metrics.counter;
}

type t = Off | On of plan

let none = Off

let create ?trace metrics cfg =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  On
    {
      cfg;
      rng = Rng.create cfg.fault_seed;
      trace;
      p_writes = 0;
      p_forces = 0;
      consecutive = 0;
      p_frozen = false;
      p_injected = 0;
      m_err_read = Metrics.counter metrics "fault.io_error_read";
      m_err_write = Metrics.counter metrics "fault.io_error_write";
      m_crash_write = Metrics.counter metrics "fault.crash_write";
      m_crash_force = Metrics.counter metrics "fault.crash_force";
      m_torn_write = Metrics.counter metrics "fault.torn_write";
      m_torn_tail = Metrics.counter metrics "fault.torn_tail";
    }

let active = function Off -> false | On _ -> true

let tears_writes = function
  | Off -> false
  | On p -> p.cfg.torn_writes && p.cfg.crash_at_write <> None

let frozen = function Off -> false | On p -> p.p_frozen
let writes_seen = function Off -> 0 | On p -> p.p_writes
let forces_seen = function Off -> 0 | On p -> p.p_forces
let injected = function Off -> 0 | On p -> p.p_injected

type write_action = Write_ok | Write_crash | Write_torn of int
type force_action = Force_ok | Force_crash | Force_torn of int

let note p kind arg =
  p.p_injected <- p.p_injected + 1;
  if Trace.enabled p.trace then
    Trace.emit p.trace (Trace.Fault_inject { kind; arg })

(* Decide one transient error. The consecutive cap is global across reads
   and writes: at most [max_consecutive_errors] injected errors in a row,
   so any retry loop with a larger attempt budget terminates. *)
let transient p prob m kind arg =
  if
    prob > 0.
    && p.consecutive < p.cfg.max_consecutive_errors
    && Rng.float p.rng < prob
  then begin
    p.consecutive <- p.consecutive + 1;
    Metrics.inc m;
    note p kind arg;
    raise (Io_error (Printf.sprintf "%s (page %d)" kind arg))
  end
  else p.consecutive <- 0

let on_read t ~page =
  match t with
  | Off -> ()
  | On p ->
      if not p.p_frozen then
        transient p p.cfg.read_error_p p.m_err_read "io_error.read" page

let on_write t ~page =
  match t with
  | Off -> Write_ok
  | On p ->
      if p.p_frozen then Write_ok
      else begin
        transient p p.cfg.write_error_p p.m_err_write "io_error.write" page;
        p.p_writes <- p.p_writes + 1;
        match p.cfg.crash_at_write with
        | Some n when p.p_writes = n ->
            p.p_frozen <- true;
            if p.cfg.torn_writes then begin
              let keep = 1 + Rng.int p.rng (Page.size - 1) in
              Metrics.inc p.m_torn_write;
              note p "torn.write" keep;
              Write_torn keep
            end
            else begin
              Metrics.inc p.m_crash_write;
              note p "crash.write" page;
              Write_crash
            end
        | _ -> Write_ok
      end

let on_force t ~bytes_new =
  match t with
  | Off -> Force_ok
  | On p ->
      if p.p_frozen then Force_ok
      else begin
        p.p_forces <- p.p_forces + 1;
        match p.cfg.crash_at_force with
        | Some n when p.p_forces = n ->
            p.p_frozen <- true;
            if p.cfg.torn_tail && bytes_new > 1 then begin
              let keep = 1 + Rng.int p.rng (bytes_new - 1) in
              Metrics.inc p.m_torn_tail;
              note p "torn.tail" keep;
              Force_torn keep
            end
            else begin
              Metrics.inc p.m_crash_force;
              note p "crash.force" p.p_forces;
              Force_crash
            end
        | _ -> Force_ok
      end

let crash site = raise (Crash_point site)
