(** Fixed-size page frames and the common page header.

    Every on-disk page starts with the same header:
    {v
      offset 0..7   pageLSN (i64, big-endian)
      offset 8      page type
      offset 9..12  checksum (u32, FNV-1a over the rest of the page)
    v}
    Layout beyond offset 13 belongs to the page's owner (heap page, B-tree
    node).

    The checksum field is only meaningful on the disk's stable image: the
    disk stamps it on write and verifies it on read, and it reads back as
    zero into the buffer pool. In-pool frames therefore always carry zero
    there, which keeps page diffs and pre-images free of checksum noise. *)

val size : int
(** 8192 bytes. *)

val header_size : int
(** 13: first byte available to owners. *)

type ty = Free | Heap | Bt_leaf | Bt_interior

val alloc : unit -> bytes
(** Fresh zeroed page ([Free], LSN 0). *)

val get_lsn : bytes -> int64
val set_lsn : bytes -> int64 -> unit

val get_ty : bytes -> ty
val set_ty : bytes -> ty -> unit

val get_checksum : bytes -> int
val set_checksum : bytes -> int -> unit

val checksum : bytes -> int
(** FNV-1a over the whole page except the checksum field itself (so any
    torn or corrupted byte, pageLSN included, is detected). *)

val verifies : bytes -> bool
(** [get_checksum p = checksum p] — true for an image whose stamped
    checksum matches its contents. *)
