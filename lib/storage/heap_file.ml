type rid = { rpage : int; rslot : int }

let pp_rid ppf r = Format.fprintf ppf "(%d,%d)" r.rpage r.rslot
let rid_compare a b = Stdlib.compare (a.rpage, a.rslot) (b.rpage, b.rslot)

type t = {
  pool : Bufpool.t;
  disk : Disk.t;
  first : int;
  mutable pages : int list; (* chain, first..last *)
  mutable tail : int;
}

type diffs = (int * Page_diff.t) list

let create pool disk =
  let pid = Disk.alloc_page disk in
  let (), diff = Bufpool.update pool pid (fun p -> Heap_page.init p) in
  ({ pool; disk; first = pid; pages = [ pid ]; tail = pid }, [ (pid, diff) ])

let attach pool disk ~first_page =
  let rec walk pid acc =
    let next = Bufpool.read pool pid (fun p -> Heap_page.get_next p) in
    if next = 0 then (List.rev (pid :: acc), pid)
    else walk next (pid :: acc)
  in
  let pages, tail = walk first_page [] in
  { pool; disk; first = first_page; pages; tail }

let first_page t = t.first

let grow t =
  let pid = Disk.alloc_page t.disk in
  let (), d_new = Bufpool.update t.pool pid (fun p -> Heap_page.init p) in
  let (), d_tail = Bufpool.update t.pool t.tail (fun p -> Heap_page.set_next p pid) in
  let old_tail = t.tail in
  t.tail <- pid;
  t.pages <- t.pages @ [ pid ];
  (pid, [ (pid, d_new); (old_tail, d_tail) ])

(* First-fit over the chain from the tail backwards: recent pages are the
   likeliest to have space, and the chain stays short in the workloads in
   play. A real engine would keep a free-space map; the behaviourally
   relevant property (records placed, rids stable) is the same. *)
let insert t record =
  let try_page pid =
    let slot_opt, diff =
      Bufpool.update t.pool pid (fun p -> Heap_page.insert p record)
    in
    match slot_opt with
    | Some slot -> Some ({ rpage = pid; rslot = slot }, [ (pid, diff) ])
    | None -> None
  in
  let rec try_pages = function
    | [] -> None
    | pid :: rest -> ( match try_page pid with Some r -> Some r | None -> try_pages rest)
  in
  match try_page t.tail with
  | Some r -> r
  | None -> (
      match try_pages (List.rev t.pages) with
      | Some r -> r
      | None ->
          let pid, grow_diffs = grow t in
          let rid_diffs =
            match try_page pid with
            | Some (rid, ds) -> (rid, ds)
            | None -> invalid_arg "Heap_file.insert: record too large"
          in
          let rid, ds = rid_diffs in
          (rid, grow_diffs @ ds))

let delete t rid =
  let ok, diff =
    Bufpool.update t.pool rid.rpage (fun p -> Heap_page.delete p rid.rslot)
  in
  if not ok then raise Not_found;
  [ (rid.rpage, diff) ]

let revive t rid =
  let ok, diff =
    Bufpool.update t.pool rid.rpage (fun p -> Heap_page.revive p rid.rslot)
  in
  if not ok then raise Not_found;
  [ (rid.rpage, diff) ]

let free_ghost t rid =
  let ok, diff =
    Bufpool.update t.pool rid.rpage (fun p -> Heap_page.free_ghost p rid.rslot)
  in
  if ok then [ (rid.rpage, diff) ] else []

let update t rid record =
  let status, diff =
    Bufpool.update t.pool rid.rpage (fun p ->
        match Heap_page.get p rid.rslot with
        | None -> `Missing
        | Some old ->
            if String.length old <> String.length record then `Size_change
            else begin
              ignore (Heap_page.set p rid.rslot record);
              `Ok
            end)
  in
  match status with
  | `Ok -> [ (rid.rpage, diff) ]
  | `Missing -> raise Not_found
  | `Size_change -> invalid_arg "Heap_file.update: size change"

let get t rid =
  Bufpool.read t.pool rid.rpage (fun p -> Heap_page.get p rid.rslot)

let iter t f =
  List.iter
    (fun pid ->
      let records =
        Bufpool.read t.pool pid (fun p ->
            let acc = ref [] in
            Heap_page.iter p (fun slot r -> acc := (slot, r) :: !acc);
            List.rev !acc)
      in
      List.iter (fun (slot, r) -> f { rpage = pid; rslot = slot } r) records)
    t.pages

let iter_all t f =
  List.iter
    (fun pid ->
      let records =
        Bufpool.read t.pool pid (fun p ->
            let acc = ref [] in
            Heap_page.iter p (fun slot r -> acc := (slot, r, false) :: !acc);
            Heap_page.iter_ghosts p (fun slot -> acc := (slot, "", true) :: !acc);
            List.sort (fun (a, _, _) (b, _, _) -> compare a b) !acc)
      in
      List.iter
        (fun (slot, r, ghost) -> f { rpage = pid; rslot = slot } r ~ghost)
        records)
    t.pages

let page_ids t = t.pages

(* Adopt pages that appeared past the cached tail. Physical redo (a
   follower applying replicated diffs) grows the on-disk chain without
   going through [grow], so the in-memory pages/tail cache goes stale;
   re-walking the next pointers from the old tail repairs it. *)
let refresh t =
  let rec adopt pid =
    let next = Bufpool.read t.pool pid (fun p -> Heap_page.get_next p) in
    if next <> 0 then begin
      t.pages <- t.pages @ [ next ];
      t.tail <- next;
      adopt next
    end
  in
  adopt t.tail
