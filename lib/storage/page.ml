module B = Ivdb_util.Bytes_util

let size = 8192
let off_checksum = 9
let header_size = 13

type ty = Free | Heap | Bt_leaf | Bt_interior

let alloc () = Bytes.make size '\000'
let get_lsn p = Bytes.get_int64_be p 0
let set_lsn p lsn = Bytes.set_int64_be p 0 lsn

let ty_code = function Free -> 0 | Heap -> 1 | Bt_leaf -> 2 | Bt_interior -> 3

let get_ty p =
  match Bytes.get_uint8 p 8 with
  | 0 -> Free
  | 1 -> Heap
  | 2 -> Bt_leaf
  | 3 -> Bt_interior
  | n -> invalid_arg (Printf.sprintf "Page.get_ty: corrupt type byte %d" n)

let set_ty p ty = Bytes.set_uint8 p 8 (ty_code ty)

let get_checksum p = B.get_u32 p off_checksum
let set_checksum p v = B.set_u32 p off_checksum v

(* Covers every byte except the checksum field itself, so a torn write that
   changes anything — including the pageLSN — fails verification. *)
let checksum p =
  let h = B.fnv1a32 p 0 off_checksum in
  B.fnv1a32 ~h p header_size (size - header_size)

let verifies p = get_checksum p = checksum p
