type t = {
  pages : (int, bytes) Hashtbl.t;
  m_read : Ivdb_util.Metrics.counter;
  m_write : Ivdb_util.Metrics.counter;
  read_cost : int;
  write_cost : int;
  mutable next_id : int;
}

let create ?(read_cost = 100) ?(write_cost = 100) metrics =
  {
    pages = Hashtbl.create 256;
    m_read = Ivdb_util.Metrics.counter metrics "disk.read";
    m_write = Ivdb_util.Metrics.counter metrics "disk.write";
    read_cost;
    write_cost;
    next_id = 1;
  }

let alloc_page t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let read t id =
  Ivdb_util.Metrics.inc t.m_read;
  Ivdb_sched.Sched.advance t.read_cost;
  match Hashtbl.find_opt t.pages id with
  | Some p -> Bytes.copy p
  | None -> Page.alloc ()

let write t id p =
  Ivdb_util.Metrics.inc t.m_write;
  Ivdb_sched.Sched.advance t.write_cost;
  Hashtbl.replace t.pages id (Bytes.copy p);
  if id >= t.next_id then t.next_id <- id + 1

let page_count t = Hashtbl.length t.pages
let max_page_id t = Hashtbl.fold (fun id _ acc -> max id acc) t.pages 0
let bump_alloc t id = if id >= t.next_id then t.next_id <- id + 1
