module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace

exception Torn_page of int

type t = {
  pages : (int, bytes) Hashtbl.t;
  trace : Trace.t;
  m_read : Metrics.counter;
  m_write : Metrics.counter;
  m_unwritten : Metrics.counter;
  m_bogus : Metrics.counter;
  read_cost : int;
  write_cost : int;
  mutable next_id : int;
  mutable strict : bool;
  mutable fault : Fault.t;
}

let create ?(read_cost = 100) ?(write_cost = 100) ?(strict = true) ?trace
    metrics =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  {
    pages = Hashtbl.create 256;
    trace;
    m_read = Metrics.counter metrics "disk.read";
    m_write = Metrics.counter metrics "disk.write";
    m_unwritten = Metrics.counter metrics "disk.read_unwritten";
    m_bogus = Metrics.counter metrics "disk.read_bogus";
    read_cost;
    write_cost;
    next_id = 1;
    strict;
    fault = Fault.none;
  }

let set_fault t f = t.fault <- f
let fault t = t.fault
let set_strict t on = t.strict <- on
let strict t = t.strict

let alloc_page t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

(* Stamp the checksum into a private stable copy. The pool-facing image
   always carries zero in the checksum field (see [read]), so the field
   never shows up in page diffs or pre-images. *)
let stamped p =
  let s = Bytes.copy p in
  Page.set_checksum s 0;
  Page.set_checksum s (Page.checksum s);
  s

let read t id =
  Metrics.inc t.m_read;
  Ivdb_sched.Sched.advance t.read_cost;
  Fault.on_read t.fault ~page:id;
  match Hashtbl.find_opt t.pages id with
  | Some p ->
      if not (Page.verifies p) then raise (Torn_page id);
      let c = Bytes.copy p in
      Page.set_checksum c 0;
      c
  | None ->
      if id < t.next_id then begin
        (* allocated but never flushed — legitimate after a crash that beat
           the first write-back; reads as a fresh page *)
        Metrics.inc t.m_unwritten;
        Page.alloc ()
      end
      else begin
        (* an id the allocator never handed out: a dangling reference *)
        Metrics.inc t.m_bogus;
        if Trace.enabled t.trace then
          Trace.emit t.trace (Trace.Fault_inject { kind = "disk.read_bogus"; arg = id });
        if t.strict then
          invalid_arg
            (Printf.sprintf "Disk.read: page %d was never allocated" id)
        else Page.alloc ()
      end

let write t id p =
  if not (Fault.frozen t.fault) then begin
    Metrics.inc t.m_write;
    Ivdb_sched.Sched.advance t.write_cost;
    match Fault.on_write t.fault ~page:id with
    | Fault.Write_ok ->
        Hashtbl.replace t.pages id (stamped p);
        if id >= t.next_id then t.next_id <- id + 1
    | Fault.Write_crash -> Fault.crash "disk.write"
    | Fault.Write_torn keep ->
        let old =
          match Hashtbl.find_opt t.pages id with
          | Some o -> Bytes.copy o
          | None -> Bytes.make Page.size '\000'
        in
        Bytes.blit (stamped p) 0 old 0 keep;
        Hashtbl.replace t.pages id old;
        if id >= t.next_id then t.next_id <- id + 1;
        Fault.crash "disk.write.torn"
  end

let is_torn t id =
  match Hashtbl.find_opt t.pages id with
  | None -> false
  | Some p -> not (Page.verifies p)

let reset_page t id =
  Hashtbl.replace t.pages id (stamped (Page.alloc ()))

let page_count t = Hashtbl.length t.pages
let max_page_id t = Hashtbl.fold (fun id _ acc -> max id acc) t.pages 0
let bump_alloc t id = if id >= t.next_id then t.next_id <- id + 1
