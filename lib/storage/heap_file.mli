(** Heap files: unordered record storage, a chain of heap pages.

    Mutating operations return the [(page_id, diff)] list they produced; the
    transaction layer logs these diffs and stamps the pages. The heap itself
    holds no volatile state that cannot be rebuilt from the page chain, so
    {!attach} after a crash recovers it by walking the chain. *)

type rid = { rpage : int; rslot : int }

val pp_rid : Format.formatter -> rid -> unit
val rid_compare : rid -> rid -> int

type t

type diffs = (int * Page_diff.t) list

val create : Bufpool.t -> Disk.t -> t * diffs
(** Allocates and formats the first page. *)

val attach : Bufpool.t -> Disk.t -> first_page:int -> t
(** Open an existing heap by its first page (from the catalog). *)

val first_page : t -> int

val insert : t -> string -> rid * diffs

val delete : t -> rid -> diffs
(** Ghost-marks the record: readers no longer see it, but the slot and
    bytes remain so rollback can {!revive} the same rid. Raises [Not_found]
    if the rid is not live. *)

val revive : t -> rid -> diffs
(** Undo of {!delete}. Raises [Not_found] if the rid is not a ghost. *)

val free_ghost : t -> rid -> diffs
(** Physically reclaim a ghost slot (post-commit system transaction).
    Empty diffs if the rid is not a ghost (already cleaned). *)

val update : t -> rid -> string -> diffs
(** In-place when sizes match; raises [Not_found] if not live and
    [Invalid_argument] on size change (callers use delete + insert). *)

val get : t -> rid -> string option
val iter : t -> (rid -> string -> unit) -> unit
(** Live records, ascending rid order. *)

val iter_all : t -> (rid -> string -> ghost:bool -> unit) -> unit
(** Live and ghost records; ghosts are reported with an empty payload.
    Serializable scans use this so an uncommitted delete still blocks the
    reader (via the row lock) instead of being silently invisible. *)

val page_ids : t -> int list

val refresh : t -> unit
(** Re-walk the next-pointer chain from the cached tail and adopt any
    pages appended to the on-disk chain behind this handle's back — as
    physical redo does on a replication follower, where page diffs grow
    the heap without calling {!grow}. A no-op (one page read) when
    nothing grew. *)
