(** Simulated stable storage for pages.

    A page store with I/O accounting, a logical-time cost model, per-page
    checksums, and a fault-injection hook. Contents survive a simulated
    crash (the buffer pool does not), which is what the crash-recovery
    tests exploit.

    Every stored image is stamped with a checksum ({!Page.checksum}) on
    write and verified on read, so a torn write — injected via a
    {!Fault.t} plan — is detected the moment anyone reads the page.
    Recovery sweeps {!is_torn} / {!reset_page} before redo. *)

exception Torn_page of int
(** Raised by {!read} when the stored image fails checksum verification.
    Only recovery should ever see this: during normal operation every
    stored page was written whole. *)

type t

val create :
  ?read_cost:int ->
  ?write_cost:int ->
  ?strict:bool ->
  ?trace:Ivdb_util.Trace.t ->
  Ivdb_util.Metrics.t ->
  t
(** Costs are logical ticks charged to the scheduler clock per I/O
    (defaults 100/100, the classic 100:1 I/O-to-CPU-step ratio).
    [strict] (default true) makes reading a page id that was never
    allocated an error — see {!read}. *)

val set_fault : t -> Fault.t -> unit
(** Install a fault plan consulted on every read and write. *)

val fault : t -> Fault.t

val set_strict : t -> bool -> unit
val strict : t -> bool

val alloc_page : t -> int
(** Fresh page id (ids start at 1; 0 is "nil"). Allocation itself performs
    no I/O. *)

val read : t -> int -> bytes
(** Copy of the page's stable image, checksum field zeroed. An allocated
    but never-written page reads as zeroes and counts
    [disk.read_unwritten] (legitimate after a crash that beat the first
    write-back). A page id the allocator never handed out is a dangling
    reference: counts [disk.read_bogus] and, in strict mode, raises
    [Invalid_argument]. Raises {!Torn_page} on checksum mismatch. Counts
    [disk.read]; may raise {!Fault.Io_error} under an installed plan. *)

val write : t -> int -> bytes -> unit
(** Stores a checksum-stamped copy. Counts [disk.write]. Under an
    installed plan this is the torn-write / crash-at-write injection
    point; after the plan freezes, writes are silent no-ops (the machine
    is dead). *)

val is_torn : t -> int -> bool
(** The stored image fails verification (torn write at crash). *)

val reset_page : t -> int -> unit
(** Replace the stored image with a fresh zeroed page — recovery's
    torn-page policy, sound because the retained log replays the page's
    full diff history. *)

val page_count : t -> int
(** Number of pages ever written. *)

val max_page_id : t -> int

val bump_alloc : t -> int -> unit
(** Raise the allocation cursor to at least [id + 1]; recovery calls this
    with the largest page id seen in the log so redo never collides with
    fresh allocations. *)
