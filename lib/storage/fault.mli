(** Deterministic, seeded fault injection for the storage / WAL stack.

    A fault {e plan} is created from a pure-data {!config} and installed
    into the simulated disk ({!Disk.set_fault}) and the WAL. The disk and
    the log consult it on every I/O; the plan decides — from its own seeded
    RNG and explicit triggers, never from wall-clock state — whether the
    operation succeeds, fails transiently, or is the crash point.

    Crash semantics: when a trigger fires the plan {e freezes} — from that
    instant nothing further reaches stable storage (disk writes and log
    forces become silent no-ops) — and {!Crash_point} is raised. Under the
    cooperative scheduler an uncaught exception halts the whole run
    immediately, so the raise models power loss: every fiber stops
    mid-step and only the stable state written {e before} the trigger
    survives into recovery.

    Every injected fault bumps a [fault.*] metric and, when tracing is
    enabled, emits a [fault.inject] event — same observability contract as
    the rest of the engine. *)

exception Crash_point of string
(** The machine died here. [string] names the trigger site
    (e.g. ["disk.write"], ["wal.force.torn"]). *)

exception Io_error of string
(** A transient I/O error; the buffer pool retries with bounded backoff. *)

type config = {
  fault_seed : int;  (** seeds the plan's private RNG *)
  read_error_p : float;  (** per-read transient-error probability *)
  write_error_p : float;  (** per-write transient-error probability *)
  max_consecutive_errors : int;
      (** hard cap on back-to-back injected errors; keep it below the
          buffer pool's retry limit and retries always converge *)
  crash_at_write : int option;  (** crash on the n-th disk write (1-based) *)
  crash_at_force : int option;  (** crash on the n-th WAL force (1-based) *)
  torn_writes : bool;
      (** the crashing disk write persists a random prefix of the page *)
  torn_tail : bool;
      (** the crashing WAL force persists a random byte prefix of the
          newly-flushed framed region *)
}

val no_faults : config
(** Seed 0, zero probabilities, no triggers. *)

val enabled_in : config -> bool
(** True iff the config can inject anything. *)

type t
(** A live plan, or the inert {!none}. *)

val none : t
(** Injects nothing, costs one branch per I/O. *)

val create : ?trace:Ivdb_util.Trace.t -> Ivdb_util.Metrics.t -> config -> t

val active : t -> bool
val tears_writes : t -> bool
(** True for a live plan armed with [torn_writes] — the database retains
    the full log (skips checkpoint truncation) while this holds, so a
    torn page can always be rebuilt from scratch. *)

val frozen : t -> bool
(** The crash trigger has fired: stable storage is dead. *)

val writes_seen : t -> int
val forces_seen : t -> int
(** Injection-point counters — run a workload under a trigger-less plan to
    learn how many crash points it has, then sweep them. *)

val injected : t -> int
(** Total faults injected (errors + crashes + tears). *)

type write_action =
  | Write_ok
  | Write_crash  (** persist nothing, then raise {!Crash_point} *)
  | Write_torn of int
      (** persist only the first [n] bytes over the old image, then raise *)

type force_action =
  | Force_ok
  | Force_crash  (** nothing new reaches the log, then raise *)
  | Force_torn of int
      (** only the first [n] bytes of the new framed region persist *)

val on_read : t -> page:int -> unit
(** May raise {!Io_error}. *)

val on_write : t -> page:int -> write_action
(** May raise {!Io_error}. A crash action freezes the plan; the caller
    persists accordingly and then raises {!Crash_point}. *)

val on_force : t -> bytes_new:int -> force_action
(** [bytes_new] is the framed byte size about to be flushed; a torn
    verdict picks a cut strictly inside it. *)

val crash : string -> 'a
(** [raise (Crash_point site)]. *)
