type frame = {
  page_id : int;
  data : bytes;
  mutable dirty : bool;
  mutable rec_lsn : int64; (* meaningful when dirty *)
  mutable pins : int;
  mutable referenced : bool; (* clock hand hint *)
  mutable no_steal : bool;
      (* modified but the log record is not yet appended: unevictable *)
  mutable ring_pos : int; (* index into the clock ring *)
}

type t = {
  disk : Disk.t;
  cap : int;
  trace : Ivdb_util.Trace.t;
  m_hit : Ivdb_util.Metrics.counter;
  m_miss : Ivdb_util.Metrics.counter;
  m_evict : Ivdb_util.Metrics.counter;
  m_writeback : Ivdb_util.Metrics.counter;
  m_overflow : Ivdb_util.Metrics.counter;
  m_io_retry : Ivdb_util.Metrics.counter;
  frames : (int, frame) Hashtbl.t;
  (* Clock ring: dense array prefix [0, ring_len) with a persistent hand.
     Insert and remove are O(1) (remove swaps the last frame into the
     hole), replacing the former list with its O(n) append and O(n)
     filter per miss/evict. *)
  mutable ring : frame array;
  mutable ring_len : int;
  mutable hand : int;
  mutable wal_force : int64 -> unit;
}

let create disk ~capacity ?trace metrics =
  let trace =
    match trace with Some tr -> tr | None -> Ivdb_util.Trace.create ()
  in
  {
    disk;
    cap = capacity;
    trace;
    m_hit = Ivdb_util.Metrics.counter metrics "buffer.hit";
    m_miss = Ivdb_util.Metrics.counter metrics "buffer.miss";
    m_evict = Ivdb_util.Metrics.counter metrics "buffer.evict";
    m_writeback = Ivdb_util.Metrics.counter metrics "buffer.writeback";
    m_overflow = Ivdb_util.Metrics.counter metrics "buffer.overflow";
    m_io_retry = Ivdb_util.Metrics.counter metrics "buffer.io_retry";
    frames = Hashtbl.create capacity;
    ring = [||];
    ring_len = 0;
    hand = 0;
    wal_force = (fun _ -> failwith "Bufpool: wal_force not set");
  }

let set_wal_force t f = t.wal_force <- f
let capacity t = t.cap
let resident t = Hashtbl.length t.frames
let disk t = t.disk

let ring_add t fr =
  if t.ring_len = Array.length t.ring then begin
    let cap = max 16 (2 * Array.length t.ring) in
    let bigger = Array.make cap fr in
    Array.blit t.ring 0 bigger 0 t.ring_len;
    t.ring <- bigger
  end;
  fr.ring_pos <- t.ring_len;
  t.ring.(t.ring_len) <- fr;
  t.ring_len <- t.ring_len + 1

let ring_remove t fr =
  let p = fr.ring_pos in
  let last = t.ring_len - 1 in
  let moved = t.ring.(last) in
  t.ring.(p) <- moved;
  moved.ring_pos <- p;
  t.ring_len <- last;
  if t.hand >= t.ring_len then t.hand <- 0

(* Transient injected I/O errors are retried with a bounded, tick-based
   backoff (linear: 20, 40, 60… ticks of simulated time). The fault plan
   caps consecutive injections below this attempt budget, so the loop
   terminates; a genuinely persistent error still escapes after the last
   attempt. Crash points and torn-page detections are not retriable and
   pass straight through. *)
let io_retry_limit = 5
let io_backoff_ticks = 20

let with_io_retry t ~page f =
  let rec go attempt =
    try f ()
    with Fault.Io_error _ when attempt < io_retry_limit ->
      Ivdb_util.Metrics.inc t.m_io_retry;
      if Ivdb_util.Trace.enabled t.trace then
        Ivdb_util.Trace.emit t.trace (Ivdb_util.Trace.Io_retry { page; attempt });
      Ivdb_sched.Sched.advance (io_backoff_ticks * attempt);
      go (attempt + 1)
  in
  go 1

let write_back t fr =
  if fr.dirty then begin
    t.wal_force (Page.get_lsn fr.data);
    with_io_retry t ~page:fr.page_id (fun () ->
        Disk.write t.disk fr.page_id fr.data);
    fr.dirty <- false;
    fr.rec_lsn <- 0L;
    Ivdb_util.Metrics.inc t.m_writeback
  end

(* Clock eviction: advance the hand around the ring, clearing reference
   bits; evict the first unpinned, unreferenced frame. Two revolutions
   suffice; if every frame is pinned we overflow rather than deadlock the
   cooperative scheduler. *)
let evict_one t =
  (* an empty ring (capacity 0, or every frame already removed) has
     nothing to evict — and the clock arithmetic below divides by
     [ring_len], so guard explicitly rather than trust the loop bound *)
  if t.ring_len = 0 then Ivdb_util.Metrics.inc t.m_overflow
  else begin
  let victim = ref None in
  let steps = ref (2 * t.ring_len) in
  while !victim = None && !steps > 0 do
    decr steps;
    if t.hand >= t.ring_len then t.hand <- 0;
    let fr = t.ring.(t.hand) in
    if fr.pins > 0 || fr.no_steal then t.hand <- (t.hand + 1) mod t.ring_len
    else if fr.referenced then begin
      fr.referenced <- false;
      t.hand <- (t.hand + 1) mod t.ring_len
    end
    else victim := Some fr
  done;
  match !victim with
  | None -> Ivdb_util.Metrics.inc t.m_overflow
  | Some fr ->
      write_back t fr;
      Hashtbl.remove t.frames fr.page_id;
      ring_remove t fr;
      Ivdb_util.Metrics.inc t.m_evict;
      if Ivdb_util.Trace.enabled t.trace then
        Ivdb_util.Trace.emit t.trace
          (Ivdb_util.Trace.Buf_evict { page = fr.page_id })
  end

let get_frame t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some fr ->
      fr.referenced <- true;
      Ivdb_util.Metrics.inc t.m_hit;
      fr
  | None ->
      Ivdb_util.Metrics.inc t.m_miss;
      if Ivdb_util.Trace.enabled t.trace then
        Ivdb_util.Trace.emit t.trace (Ivdb_util.Trace.Buf_miss { page = page_id });
      if Hashtbl.length t.frames >= t.cap then evict_one t;
      let data = with_io_retry t ~page:page_id (fun () -> Disk.read t.disk page_id) in
      let fr =
        {
          page_id;
          data;
          dirty = false;
          rec_lsn = 0L;
          pins = 0;
          referenced = true;
          no_steal = false;
          ring_pos = -1;
        }
      in
      Hashtbl.add t.frames page_id fr;
      ring_add t fr;
      fr

let with_pin t page_id f =
  let fr = get_frame t page_id in
  fr.pins <- fr.pins + 1;
  Fun.protect ~finally:(fun () -> fr.pins <- fr.pins - 1) (fun () -> f fr)

let read t page_id f = with_pin t page_id (fun fr -> f fr.data)

let update t page_id f =
  with_pin t page_id (fun fr ->
      let before = Bytes.copy fr.data in
      let result =
        try f fr.data
        with e ->
          (* the mutation callback died partway: restore the pre-image, or
             the frame would keep unlogged bytes while looking clean
             (dirty = false, no no-steal window) — evictable to disk with
             no covering log record, violating the WAL rule *)
          Bytes.blit before 0 fr.data 0 Page.size;
          raise e
      in
      let diff = Page_diff.compute ~before ~after:fr.data in
      (* a real change opens a no-steal window until the caller logs the
         diff and stamps the page; an empty diff leaves the frame as-is *)
      if not (Page_diff.is_empty diff) then begin
        fr.dirty <- true;
        fr.no_steal <- true
      end;
      (result, diff))

let stamp t page_id lsn =
  match Hashtbl.find_opt t.frames page_id with
  | None -> invalid_arg "Bufpool.stamp: page not resident"
  | Some fr ->
      Page.set_lsn fr.data lsn;
      fr.no_steal <- false;
      if fr.rec_lsn = 0L then fr.rec_lsn <- lsn

let flush_page t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | None -> ()
  | Some fr -> write_back t fr

let flush_all t =
  for i = 0 to t.ring_len - 1 do
    write_back t t.ring.(i)
  done

let dirty_page_table t =
  let acc = ref [] in
  for i = t.ring_len - 1 downto 0 do
    let fr = t.ring.(i) in
    if fr.dirty then acc := (fr.page_id, fr.rec_lsn) :: !acc
  done;
  !acc

let drop_all t =
  Hashtbl.reset t.frames;
  t.ring <- [||];
  t.ring_len <- 0;
  t.hand <- 0
