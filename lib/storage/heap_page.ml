module B = Ivdb_util.Bytes_util

let off_next = Page.header_size
let off_nslots = off_next + 4
let off_free_end = off_nslots + 2
let off_slots = off_free_end + 2
let ghost_bit = 0x8000

let init p =
  Page.set_ty p Page.Heap;
  B.set_u32 p off_next 0;
  B.set_u16 p off_nslots 0;
  B.set_u16 p off_free_end Page.size

let get_next p = B.get_u32 p off_next
let set_next p v = B.set_u32 p off_next v
let nslots p = B.get_u16 p off_nslots
let free_end p = B.get_u16 p off_free_end
let raw_slot p i = B.get_u16 p (off_slots + (2 * i))
let set_slot p i v = B.set_u16 p (off_slots + (2 * i)) v
let max_record = Page.size - off_slots - 2 - 2

let slot_state p i =
  if i >= nslots p then `Empty
  else
    let v = raw_slot p i in
    if v = 0 then `Empty
    else if v land ghost_bit <> 0 then `Ghost (v land lnot ghost_bit)
    else `Live v

let read_cell p off =
  let len = B.get_u16 p off in
  Bytes.sub_string p (off + 2) len

let get p i = match slot_state p i with `Live off -> Some (read_cell p off) | _ -> None

let get_any p i =
  match slot_state p i with
  | `Live off | `Ghost off -> Some (read_cell p off)
  | `Empty -> None

let is_ghost p i = match slot_state p i with `Ghost _ -> true | _ -> false

let cell_bytes p i =
  match slot_state p i with
  | `Live off | `Ghost off -> 2 + B.get_u16 p off
  | `Empty -> 0

let live_bytes p =
  let total = ref 0 in
  for i = 0 to nslots p - 1 do
    total := !total + cell_bytes p i
  done;
  !total

let contiguous p = free_end p - (off_slots + (2 * nslots p))

let free_space p =
  let region = Page.size - free_end p in
  contiguous p + (region - live_bytes p)

let compact p =
  let n = nslots p in
  let cells =
    List.filter_map
      (fun i ->
        match slot_state p i with
        | `Live off -> Some (i, false, read_cell p off)
        | `Ghost off -> Some (i, true, read_cell p off)
        | `Empty -> None)
      (List.init n Fun.id)
  in
  let free = ref Page.size in
  List.iter
    (fun (i, ghost, r) ->
      let len = String.length r in
      free := !free - (2 + len);
      B.set_u16 p !free len;
      Bytes.blit_string r 0 p (!free + 2) len;
      set_slot p i (if ghost then !free lor ghost_bit else !free))
    cells;
  B.set_u16 p off_free_end !free

let find_empty_slot p =
  let n = nslots p in
  let rec go i =
    if i >= n then None else if raw_slot p i = 0 then Some i else go (i + 1)
  in
  go 0

let insert p record =
  let len = String.length record in
  if len > max_record then invalid_arg "Heap_page.insert: record too large";
  let slot, slot_cost =
    match find_empty_slot p with Some s -> (s, 0) | None -> (nslots p, 2)
  in
  let need = 2 + len + slot_cost in
  if free_space p < need then None
  else begin
    if contiguous p < need then compact p;
    if slot = nslots p then B.set_u16 p off_nslots (slot + 1);
    let off = free_end p - (2 + len) in
    B.set_u16 p off_free_end off;
    B.set_u16 p off len;
    Bytes.blit_string record 0 p (off + 2) len;
    set_slot p slot off;
    Some slot
  end

let delete p i =
  match slot_state p i with
  | `Live off ->
      set_slot p i (off lor ghost_bit);
      true
  | `Ghost _ | `Empty -> false

let revive p i =
  match slot_state p i with
  | `Ghost off ->
      set_slot p i off;
      true
  | `Live _ | `Empty -> false

let free_ghost p i =
  match slot_state p i with
  | `Ghost _ ->
      set_slot p i 0;
      true
  | `Live _ | `Empty -> false

let set p i record =
  match slot_state p i with
  | `Live off when B.get_u16 p off = String.length record ->
      Bytes.blit_string record 0 p (off + 2) (String.length record);
      true
  | `Live _ | `Ghost _ | `Empty -> false

let iter p f =
  for i = 0 to nslots p - 1 do
    match slot_state p i with `Live off -> f i (read_cell p off) | `Ghost _ | `Empty -> ()
  done

let iter_ghosts p f =
  for i = 0 to nslots p - 1 do
    match slot_state p i with `Ghost _ -> f i | `Live _ | `Empty -> ()
  done
