(** Buffer pool: the volatile page cache between the engine and the
    simulated disk.

    Enforces the write-ahead rule: before a dirty page is written back, the
    registered WAL-force callback is invoked with the page's LSN. A
    simulated crash ({!drop_all}) discards the pool, so only flushed pages
    and the forced log survive — exactly the state ARIES recovery expects. *)

type t

val create : Disk.t -> capacity:int -> ?trace:Ivdb_util.Trace.t -> Ivdb_util.Metrics.t -> t
(** [trace] defaults to a fresh disabled trace; when enabled, misses and
    evictions emit [buf.miss] / [buf.evict] events. *)

val set_wal_force : t -> (int64 -> unit) -> unit
(** Must be set before any dirty page can be evicted or flushed. *)

val read : t -> int -> (bytes -> 'a) -> 'a
(** Pins the page for the duration of the callback. The callback must not
    mutate the page. *)

val update : t -> int -> (bytes -> 'a) -> 'a * Page_diff.t
(** Mutate the page in place; returns the callback result and the byte diff
    against the pre-image. The caller is responsible for logging the diff
    and then calling {!stamp} — the page is dirty-in-pool but carries its
    old LSN until stamped. If the callback raises, the frame is restored to
    its pre-image before the exception escapes (a half-mutated frame with
    no covering log record must never reach disk).

    Disk I/O performed on a frame miss or eviction retries transient
    {!Fault.Io_error}s with bounded tick-based backoff (counts
    [buffer.io_retry], traces [buf.io_retry]); the last failure
    propagates. *)

val stamp : t -> int -> int64 -> unit
(** Set the pageLSN after logging; records the frame's recLSN (first LSN to
    dirty it since it was last clean) for checkpointing. *)

val flush_page : t -> int -> unit
val flush_all : t -> unit

val dirty_page_table : t -> (int * int64) list
(** [(page_id, recLSN)] of dirty frames — the DPT written by checkpoints. *)

val drop_all : t -> unit
(** Simulated crash: discard every frame, clean or dirty. *)

val capacity : t -> int

val resident : t -> int
(** Pages currently held in frames (clean or dirty). *)

val disk : t -> Disk.t
