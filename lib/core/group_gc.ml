module Txn = Ivdb_txn.Txn
module Btree = Ivdb_btree.Btree
module Row = Ivdb_relation.Row
module Lock_name = Ivdb_lock.Lock_name
module Lock_mgr = Ivdb_lock.Lock_mgr

let zero_keys rt =
  let acc = ref [] in
  Btree.iter rt.Maintain.tree (fun key value ->
      if Aggregate.count_of (Row.decode value) = 0 then acc := key :: !acc);
  List.rev !acc

let zero_count_rows rt = List.length (zero_keys rt)

let run mgr rt =
  let locks = Txn.locks mgr in
  let removed = ref 0 in
  List.iter
    (fun key ->
      (* reclaim only rows no transaction is touching or awaiting; the
         cooperative scheduler makes the probe + delete atomic *)
      if Lock_mgr.unlocked locks (Lock_name.Key (rt.Maintain.vid, key)) then begin
        match Btree.search rt.Maintain.tree key with
        | Some value when Aggregate.count_of (Row.decode value) = 0 ->
            let stx = Txn.begin_system mgr in
            Btree.delete stx rt.Maintain.tree ~key;
            Txn.commit mgr stx;
            incr removed;
            rt.Maintain.vstats.Maintain.v_gc_zero <-
              rt.Maintain.vstats.Maintain.v_gc_zero + 1;
            rt.Maintain.vstats.Maintain.v_system_txns <-
              rt.Maintain.vstats.Maintain.v_system_txns + 1;
            Ivdb_util.Metrics.incr (Txn.metrics mgr) "view.gc_removed";
            let tr = Txn.trace mgr in
            if Ivdb_util.Trace.enabled tr then
              Ivdb_util.Trace.emit tr
                (Ivdb_util.Trace.Group_gc { view = rt.Maintain.vid; key })
        | Some _ | None -> ()
      end)
    (zero_keys rt);
  !removed
