(** Registry of in-flight (uncommitted) escrow deltas.

    The escrow literature's second dividend: because every uncommitted
    change to an aggregate row is a known additive delta, a reader that
    does not want to block behind [E] locks can still obtain {e bounds} —
    the interval of values the aggregate can take across every
    commit/abort outcome of the in-flight transactions. The registry
    records each escrow update as it is applied and retires a
    transaction's deltas when it finishes (either way — commit keeps the
    stored value, abort's compensation restores it; in both cases the
    entry stops being "in flight"). *)

type t

val create : unit -> t

val record : t -> txn:int -> vid:int -> key:string -> Aggregate.delta -> unit
val drop_txn : t -> txn:int -> unit

val pending : t -> vid:int -> key:string -> Aggregate.delta list
(** Deltas of still-active transactions on this group. *)

val keys_of_txn : t -> txn:int -> (int * string) list
(** Distinct (view id, key) pairs the transaction has escrow deltas on —
    the MVCC commit hook pushes a committed version per pair. *)

val pending_count : t -> int
(** Total registered deltas (diagnostics). *)

val bounds :
  View_def.t ->
  Ivdb_relation.Row.t ->
  Aggregate.delta list ->
  Ivdb_relation.Row.t * Ivdb_relation.Row.t
(** [bounds def stored pending] is the (low, high) pair of aggregate rows:
    the stored row already includes every pending delta, so each cell's
    interval is [stored - Σ max(d,0), stored - Σ min(d,0)] — the extremes
    over all subsets of pending transactions aborting. Only valid for
    escrow-compatible (additive) views. *)
