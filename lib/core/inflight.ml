module Value = Ivdb_relation.Value

type entry = { e_txn : int; e_vid : int; e_key : string; e_delta : Aggregate.delta }

type t = {
  by_txn : (int, entry list ref) Hashtbl.t;
  by_key : (int * string, entry list ref) Hashtbl.t;
}

let create () = { by_txn = Hashtbl.create 32; by_key = Hashtbl.create 64 }

let push tbl k e =
  match Hashtbl.find_opt tbl k with
  | Some l -> l := e :: !l
  | None -> Hashtbl.replace tbl k (ref [ e ])

let record t ~txn ~vid ~key delta =
  let e = { e_txn = txn; e_vid = vid; e_key = key; e_delta = delta } in
  push t.by_txn txn e;
  push t.by_key (vid, key) e

let drop_txn t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some l ->
      Hashtbl.remove t.by_txn txn;
      List.iter
        (fun e ->
          match Hashtbl.find_opt t.by_key (e.e_vid, e.e_key) with
          | None -> ()
          | Some kl ->
              kl := List.filter (fun e' -> e'.e_txn <> txn) !kl;
              if !kl = [] then Hashtbl.remove t.by_key (e.e_vid, e.e_key))
        !l

let keys_of_txn t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> []
  | Some l ->
      List.fold_left
        (fun acc e ->
          if List.mem (e.e_vid, e.e_key) acc then acc
          else (e.e_vid, e.e_key) :: acc)
        [] !l

let pending t ~vid ~key =
  match Hashtbl.find_opt t.by_key (vid, key) with
  | None -> []
  | Some l -> List.map (fun e -> e.e_delta) !l

let pending_count t =
  Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.by_txn 0

let vmax a b = if Value.compare a b >= 0 then a else b
let vmin a b = if Value.compare a b <= 0 then a else b

let bounds _def stored pending =
  let lo = Array.copy stored and hi = Array.copy stored in
  List.iter
    (fun (d : Aggregate.delta) ->
      (* cell 0 is the row count: delta d.dcount *)
      let apply_cell i dv =
        let zero = Value.Int 0 in
        (* an aborting transaction subtracts its delta *)
        lo.(i) <- Value.add lo.(i) (Value.neg (vmax dv zero));
        hi.(i) <- Value.add hi.(i) (Value.neg (vmin dv zero))
      in
      apply_cell 0 (Value.Int d.Aggregate.dcount);
      Array.iteri
        (fun j ad ->
          match ad with
          | Aggregate.Add v -> apply_cell (j + 1) v
          | Aggregate.Consider _ | Aggregate.Retire _ ->
              invalid_arg "Inflight.bounds: non-additive delta")
        d.Aggregate.daggs)
    pending;
  (lo, hi)
