module Txn = Ivdb_txn.Txn
module Btree = Ivdb_btree.Btree
module Row = Ivdb_relation.Row
module Log_record = Ivdb_wal.Log_record
module Lock_name = Ivdb_lock.Lock_name
module Lock_mode = Ivdb_lock.Lock_mode
module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace

type strategy = Exclusive | Escrow | Deferred

let strategy_to_string = function
  | Exclusive -> "exclusive"
  | Escrow -> "escrow"
  | Deferred -> "deferred"

type create_mode = System_txn | User_txn

(* Per-view typed counter handles, resolved once at registration: the
   maintenance path runs once per base-table write and must not pay a
   hashtable lookup per counter bump. *)
type stats = {
  s_delta : Metrics.counter;
  s_exclusive : Metrics.counter;
  s_escrow : Metrics.counter;
  s_recompute : Metrics.counter;
  s_group_delete : Metrics.counter;
  s_group_create : Metrics.counter;
  s_group_create_user : Metrics.counter;
  s_deferred_append : Metrics.counter;
}

let make_stats m =
  {
    s_delta = Metrics.counter m "view.delta";
    s_exclusive = Metrics.counter m "view.exclusive_update";
    s_escrow = Metrics.counter m "view.escrow_update";
    s_recompute = Metrics.counter m "view.recompute";
    s_group_delete = Metrics.counter m "view.group_delete";
    s_group_create = Metrics.counter m "view.group_create";
    s_group_create_user = Metrics.counter m "view.group_create_user";
    s_deferred_append = Metrics.counter m "view.deferred_append";
  }

(* Per-view plain counters for sys.views: the typed handles above all land
   in engine-global cells, so each view additionally keeps its own tallies
   (one int bump on paths that already bump a global counter). *)
type vstats = {
  mutable v_deltas : int;
  mutable v_exclusive : int;
  mutable v_escrow : int;
  mutable v_deferred : int;
  mutable v_recomputes : int;
  mutable v_group_creates : int;
  mutable v_group_deletes : int;
  mutable v_gc_zero : int;
  mutable v_system_txns : int;
}

let make_vstats () =
  {
    v_deltas = 0;
    v_exclusive = 0;
    v_escrow = 0;
    v_deferred = 0;
    v_recomputes = 0;
    v_group_creates = 0;
    v_group_deletes = 0;
    v_gc_zero = 0;
    v_system_txns = 0;
  }

type runtime = {
  vid : int;
  def : View_def.t;
  tree : Btree.t;
  strategy : strategy;
  create_mode : create_mode;
  inflight : Inflight.t;
  deferred : Deferred.t option;
  recompute_group : Txn.t -> string -> Row.t;
  stats : stats;
  vstats : vstats;
}

let key_name rt key = Lock_name.Key (rt.vid, key)

(* The lock name guarding the gap a new key falls into: the next existing
   key, or the index's +infinity when inserting past the end. *)
let gap_name rt key =
  match Btree.next_key rt.tree key with
  | Some (nk, _) -> Lock_name.Key (rt.vid, nk)
  | None -> Lock_name.Eof rt.vid

(* Create the group row empty (count 0) in a system transaction that
   commits immediately: the row becomes physically present — and visible to
   the lock protocol — without the user transaction holding any X lock.
   The instant RangeI_N on the gap keeps serializable scans phantom-safe. *)
let create_zero_group mgr txn rt ~key =
  Txn.lock_instant mgr txn (gap_name rt key) Lock_mode.RangeI_N;
  let stx = Txn.begin_system mgr in
  (match
     Btree.insert stx rt.tree ~key ~value:(Row.encode (Aggregate.zero_row rt.def))
   with
  | () -> Txn.commit mgr stx
  | exception Btree.Duplicate_key _ ->
      (* another transaction created it first: fine, it exists *)
      Txn.commit mgr stx);
  Metrics.inc rt.stats.s_group_create;
  rt.vstats.v_group_creates <- rt.vstats.v_group_creates + 1;
  rt.vstats.v_system_txns <- rt.vstats.v_system_txns + 1;
  let tr = Txn.trace mgr in
  if Trace.enabled tr then
    Trace.emit tr (Trace.Group_create { view = rt.vid; key; system = true })

(* D3 ablation: create the group inside the user transaction instead,
   holding an X key lock until commit. Every other transaction touching the
   newborn group — escrow writers included — then blocks behind the
   creator, which is precisely the contention the system-transaction
   protocol avoids. *)
let create_group_user mgr txn rt ~key =
  Txn.lock_instant mgr txn (gap_name rt key) Lock_mode.RangeI_N;
  Txn.lock mgr txn (key_name rt key) Lock_mode.X;
  (try
     Btree.insert txn rt.tree ~key ~value:(Row.encode (Aggregate.zero_row rt.def))
   with Btree.Duplicate_key _ -> ());
  Metrics.inc rt.stats.s_group_create_user;
  rt.vstats.v_group_creates <- rt.vstats.v_group_creates + 1;
  let tr = Txn.trace mgr in
  if Trace.enabled tr then
    Trace.emit tr (Trace.Group_create { view = rt.vid; key; system = false })

let create_group mgr txn rt ~key =
  match rt.create_mode with
  | System_txn -> create_zero_group mgr txn rt ~key
  | User_txn -> create_group_user mgr txn rt ~key

let update_row mgr txn rt ~key ~undo row' =
  Btree.update ?undo txn rt.tree ~key ~value:(Row.encode row');
  ignore mgr

(* --- exclusive ----------------------------------------------------------- *)

let rec exclusive mgr txn rt ~key delta =
  Txn.lock mgr txn (Lock_name.Table rt.vid) Lock_mode.IX;
  Txn.lock mgr txn (key_name rt key) Lock_mode.X;
  match Btree.search rt.tree key with
  | None ->
      create_group mgr txn rt ~key;
      exclusive mgr txn rt ~key delta
  | Some stored ->
      Metrics.inc rt.stats.s_exclusive;
      rt.vstats.v_exclusive <- rt.vstats.v_exclusive + 1;
      let row = Row.decode stored in
      let row' =
        match Aggregate.apply rt.def row delta with
        | `Ok r -> r
        | `Recompute ->
            Metrics.inc rt.stats.s_recompute;
            rt.vstats.v_recomputes <- rt.vstats.v_recomputes + 1;
            (* the retiring row is already gone from the base, so a fresh
               fold gives the post-delete aggregates *)
            rt.recompute_group txn key
      in
      if Aggregate.count_of row' = 0 then begin
        (* physically remove, keeping the gap protected until commit *)
        Txn.lock mgr txn (gap_name rt key) Lock_mode.RangeX_X;
        Btree.delete txn rt.tree ~key;
        Metrics.inc rt.stats.s_group_delete;
        rt.vstats.v_group_deletes <- rt.vstats.v_group_deletes + 1
      end
      else update_row mgr txn rt ~key ~undo:None row'

(* --- escrow --------------------------------------------------------------- *)

let rec escrow mgr txn rt ~key delta =
  assert (Aggregate.is_additive delta);
  Txn.lock mgr txn (Lock_name.Table rt.vid) Lock_mode.IX;
  Txn.lock mgr txn (key_name rt key) Lock_mode.E;
  match Btree.search rt.tree key with
  | None ->
      create_group mgr txn rt ~key;
      escrow mgr txn rt ~key delta
  | Some stored ->
      Metrics.inc rt.stats.s_escrow;
      rt.vstats.v_escrow <- rt.vstats.v_escrow + 1;
      let row = Row.decode stored in
      let row' =
        match Aggregate.apply rt.def row delta with
        | `Ok r -> r
        | `Recompute -> assert false (* additive deltas never recompute *)
      in
      let inverse = Aggregate.encode (Aggregate.negate delta) in
      update_row mgr txn rt ~key
        ~undo:(Some (Log_record.Undo_escrow { view = rt.vid; key; inverse }))
        row';
      Inflight.record rt.inflight ~txn:(Txn.id txn) ~vid:rt.vid ~key delta
      (* count 0 rows are left in place: logically absent, reclaimed later
         by the garbage-collection system transaction *)

(* --- dispatch -------------------------------------------------------------- *)

let apply_delta_exclusive mgr txn rt ~key delta = exclusive mgr txn rt ~key delta

let apply_delta mgr txn rt ~key delta =
  Metrics.inc rt.stats.s_delta;
  rt.vstats.v_deltas <- rt.vstats.v_deltas + 1;
  Txn.note_delta txn;
  let tr = Txn.trace mgr in
  if Trace.enabled tr then
    Trace.emit tr
      (Trace.View_delta
         { view = rt.vid; key; strategy = strategy_to_string rt.strategy });
  match rt.strategy with
  | Exclusive -> exclusive mgr txn rt ~key delta
  | Escrow ->
      if Aggregate.is_additive delta then escrow mgr txn rt ~key delta
      else exclusive mgr txn rt ~key delta
  | Deferred -> (
      match rt.deferred with
      | None -> invalid_arg "Maintain: deferred strategy without a queue"
      | Some q ->
          Metrics.inc rt.stats.s_deferred_append;
          rt.vstats.v_deferred <- rt.vstats.v_deferred + 1;
          Deferred.append txn q ~key delta)

(* --- reads ------------------------------------------------------------------ *)

let read_group mgr txn rt ~key =
  (match txn with
  | Some tx ->
      Txn.lock mgr tx (Lock_name.Table rt.vid) Lock_mode.IS;
      Txn.lock mgr tx (key_name rt key) Lock_mode.S
  | None -> ());
  match Btree.search rt.tree key with
  | None -> None
  | Some stored ->
      let row = Row.decode stored in
      if Aggregate.count_of row = 0 then None else Some row

(* --- logical undo ------------------------------------------------------------ *)

let undo_escrow _mgr rt ~key ~inverse =
  let delta = Aggregate.decode inverse in
  match Btree.search rt.tree key with
  | None ->
      invalid_arg
        "Maintain.undo_escrow: group row vanished under an escrow lock"
  | Some stored ->
      let row = Row.decode stored in
      let row' =
        match Aggregate.apply rt.def row delta with
        | `Ok r -> r
        | `Recompute -> assert false
      in
      Btree.update_raw rt.tree ~key ~value:(Row.encode row')
