(** Transactional maintenance of an indexed view — the paper's core.

    Three strategies, compared throughout the benchmark suite:

    - {b Exclusive}: the textbook protocol. The writer takes an [X] key
      lock on the group's view row and read-modify-writes it. Correct, but
      every writer touching a hot group serializes behind that lock.

    - {b Escrow}: COUNT/SUM deltas commute, so the writer takes an [E]
      (increment) lock — compatible with other [E] locks — and applies the
      delta in place. Undo is logical (the inverse delta), because other
      transactions may have changed the same bytes since. Group creation
      and removal are delegated to system transactions: a missing group row
      is created empty (COUNT 0) by an immediately-committing system
      transaction, and rows whose count returns to 0 are left in place —
      logically absent — until {!Group_gc} reclaims them. This keeps the
      escrow path free of X locks entirely.

    - {b Deferred}: the delta is appended to the view's queue
      ({!Deferred}); the view itself is not touched. Readers either accept
      staleness or drain the queue first.

    Phantom protection: group creation under either immediate strategy
    takes an instant-duration [RangeI_N] on the next key, so it conflicts
    with serializable range scans ([RangeS_S]) but not with other
    inserts. *)

type strategy = Exclusive | Escrow | Deferred

val strategy_to_string : strategy -> string

type create_mode =
  | System_txn
      (** missing group rows are created empty by an immediately-committing
          system transaction (the paper's protocol) *)
  | User_txn
      (** ablation: create inside the user transaction under an X key lock *)

type stats
(** Typed handles to the [view.*] counters, resolved once per view: the
    maintenance hot path bumps refs instead of doing per-event hashtable
    lookups. Build with {!make_stats} against the database's metrics. *)

val make_stats : Ivdb_util.Metrics.t -> stats

type vstats = {
  mutable v_deltas : int;
  mutable v_exclusive : int;
  mutable v_escrow : int;
  mutable v_deferred : int;
  mutable v_recomputes : int;
  mutable v_group_creates : int;
  mutable v_group_deletes : int;
  mutable v_gc_zero : int;  (** zero-count rows reclaimed by {!Group_gc} *)
  mutable v_system_txns : int;
      (** system transactions run for this view (group creates + GC) *)
}
(** Per-view maintenance tallies behind [sys.views]. The typed {!stats}
    handles all land in engine-global counters; these are the same bumps
    kept per view. *)

val make_vstats : unit -> vstats

type runtime = {
  vid : int;  (** catalog id: lock namespace and undo-log view id *)
  def : View_def.t;
  tree : Ivdb_btree.Btree.t;
  strategy : strategy;
  create_mode : create_mode;
  inflight : Inflight.t;
      (** shared per-database registry of uncommitted escrow deltas,
          feeding bounds reads *)
  deferred : Deferred.t option;  (** present iff strategy is Deferred *)
  recompute_group : Ivdb_txn.Txn.t -> string -> Ivdb_relation.Row.t;
      (** recompute a group's aggregate row from base data (MIN/MAX
          retirement); supplied by the database layer *)
  stats : stats;  (** from {!make_stats} on the owning database's metrics *)
  vstats : vstats;  (** per-view tallies, from {!make_vstats} *)
}

val apply_delta :
  Ivdb_txn.Txn.mgr -> Ivdb_txn.Txn.t -> runtime -> key:string -> Aggregate.delta -> unit
(** Fold one group delta into the view under the runtime's strategy, with
    all locking and logging. Counts [view.delta], and per-strategy
    [view.escrow_update] / [view.exclusive_update] / [view.deferred_append];
    group creations count [view.group_create]. *)

val apply_delta_exclusive :
  Ivdb_txn.Txn.mgr -> Ivdb_txn.Txn.t -> runtime -> key:string -> Aggregate.delta -> unit
(** The exclusive protocol regardless of the runtime's strategy — used by
    the refresh transaction that drains a deferred queue. *)

val read_group :
  Ivdb_txn.Txn.mgr ->
  Ivdb_txn.Txn.t option ->
  runtime ->
  key:string ->
  Ivdb_relation.Row.t option
(** The group's stored aggregate row; [None] for absent or zero-count
    (logically absent) groups. With a transaction, takes an [S] key lock —
    blocking behind in-flight escrow updates, as it must. *)

val undo_escrow :
  Ivdb_txn.Txn.mgr -> runtime -> key:string -> inverse:string -> Ivdb_wal.Log_record.page_diffs
(** Logical undo executor for escrow updates: apply the encoded inverse
    delta to the group row, unlogged (the caller wraps the diffs in a
    compensation record). *)
