open Effect
open Effect.Deep

exception Stuck of int

type policy = Fifo | Random

type _ Effect.t +=
  | Yield : unit Effect.t
  | Self : int Effect.t
  | Spawn : (unit -> unit) -> int Effect.t
  | Suspend : ((unit -> unit) -> (exn -> unit) -> unit) -> unit Effect.t
  | Now : int Effect.t
  | Advance : int -> unit Effect.t
  | Alive : int Effect.t
  | Running : bool Effect.t

(* Growable circular buffer used as the run queue; random policy
   swap-removes, which is order-destroying but deterministic under a fixed
   seed. Logical index i lives at physical (head + i) mod capacity, so the
   FIFO pop is an O(1) head advance rather than an O(n) shift. *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable head : int; mutable len : int }

  let create () = { data = [||]; head = 0; len = 0 }
  let length v = v.len
  let slot v i = (v.head + i) mod Array.length v.data
  let get v i = v.data.(slot v i)

  let push v x =
    if v.len = Array.length v.data then begin
      (* grow, realigning to head = 0 *)
      let cap = max 8 (2 * Array.length v.data) in
      let data = Array.make cap x in
      for i = 0 to v.len - 1 do
        data.(i) <- get v i
      done;
      v.data <- data;
      v.head <- 0
    end;
    v.data.(slot v v.len) <- x;
    v.len <- v.len + 1

  (* remove logical index i by moving the logical last element into it *)
  let take v i =
    assert (i < v.len);
    let x = get v i in
    v.len <- v.len - 1;
    v.data.(slot v i) <- get v v.len;
    x

  (* FIFO pop: O(1) head-index advance. *)
  let take_front v =
    assert (v.len > 0);
    let x = v.data.(v.head) in
    v.head <- (v.head + 1) mod Array.length v.data;
    v.len <- v.len - 1;
    x
end

type state = {
  runq : (unit -> unit) Vec.t;
  rng : Ivdb_util.Rng.t;
  policy : policy;
  mutable clock : int;
  mutable next_fid : int;
  mutable live : int;
  mutable failure : exn option;
}

let run ?(seed = 0) ?(policy = Random) main =
  let st =
    {
      runq = Vec.create ();
      rng = Ivdb_util.Rng.create seed;
      policy;
      clock = 0;
      next_fid = 1;
      live = 0;
      failure = None;
    }
  in
  let result = ref None in
  let rec exec : type a. int -> (unit -> a) -> (a -> unit) -> unit =
   fun fid body on_return ->
    match_with body ()
      {
        retc = (fun x -> st.live <- st.live - 1; on_return x);
        exnc =
          (fun e ->
            st.live <- st.live - 1;
            if st.failure = None then st.failure <- Some e);
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Yield ->
                Some
                  (fun (k : (b, _) continuation) ->
                    Vec.push st.runq (fun () -> continue k ()))
            | Self -> Some (fun k -> continue k fid)
            | Now -> Some (fun k -> continue k st.clock)
            | Alive -> Some (fun k -> continue k st.live)
            | Running -> Some (fun k -> continue k true)
            | Advance n ->
                Some
                  (fun k ->
                    st.clock <- st.clock + n;
                    continue k ())
            | Spawn fbody ->
                Some
                  (fun k ->
                    let fid = st.next_fid in
                    st.next_fid <- fid + 1;
                    st.live <- st.live + 1;
                    Vec.push st.runq (fun () -> exec fid fbody (fun () -> ()));
                    continue k fid)
            | Suspend register ->
                Some
                  (fun k ->
                    let fired = ref false in
                    let wake () =
                      if not !fired then begin
                        fired := true;
                        Vec.push st.runq (fun () -> continue k ())
                      end
                    in
                    let cancel e =
                      if not !fired then begin
                        fired := true;
                        Vec.push st.runq (fun () -> discontinue k e)
                      end
                    in
                    register wake cancel)
            | _ -> None);
      }
  in
  st.live <- 1;
  Vec.push st.runq (fun () -> exec 0 main (fun x -> result := Some x));
  while Vec.length st.runq > 0 && st.failure = None do
    let step =
      match st.policy with
      | Fifo -> Vec.take_front st.runq
      | Random -> Vec.take st.runq (Ivdb_util.Rng.int st.rng (Vec.length st.runq))
    in
    st.clock <- st.clock + 1;
    step ()
  done;
  (match st.failure with Some e -> raise e | None -> ());
  if st.live > 0 then raise (Stuck st.live);
  match !result with
  | Some x -> x
  | None -> assert false (* main finished without failure => result set *)

let outside_run : type a. a Effect.t -> exn -> a =
 fun eff e ->
  match eff with
  | Yield -> ()
  | Self -> 0
  | Now -> 0
  | Alive -> 1
  | Running -> false
  | Advance _ -> ()
  | Suspend _ -> raise (Stuck 1)
  | Spawn _ -> raise (Stuck 1)
  | _ -> raise e

let with_fallback : type a. a Effect.t -> a =
 fun eff -> try perform eff with Effect.Unhandled _ as e -> outside_run eff e

let spawn f = with_fallback (Spawn f)
let yield () = with_fallback Yield
let self () = with_fallback Self
let suspend register = with_fallback (Suspend register)
let now () = with_fallback Now
let advance n = with_fallback (Advance n)
let fibers_alive () = with_fallback Alive

(* true iff the caller executes inside a scheduler run (so spawn/suspend are
   available); single-threaded callers outside any run get false *)
let in_run () = with_fallback Running
