(** Deterministic cooperative fiber scheduler.

    Stands in for the multi-threaded server of the original system: lock
    conflicts, waits, deadlocks and escrow commutativity are properties of
    the *interleaving*, which this scheduler makes reproducible. Fibers are
    one-shot delimited continuations (OCaml 5 effect handlers); a seeded RNG
    chooses the next runnable fiber, so a seed fully determines a run.

    All operations are usable from *outside* a [run] as well: they degrade
    to sensible sequential behaviour ([yield] is a no-op, [self] is 0), so
    single-threaded engine use needs no scheduler. [suspend] outside a run
    raises {!Stuck} — blocking is meaningless without a scheduler. *)

exception Stuck of int
(** Raised by [run] when no fiber is runnable but [n] fibers are still
    suspended — an undetected deadlock in client code — or by [suspend]
    outside a run. *)

type policy =
  | Fifo  (** round-robin; first-in first-out run queue *)
  | Random  (** seeded uniform choice among runnable fibers *)

val run : ?seed:int -> ?policy:policy -> (unit -> 'a) -> 'a
(** [run main] executes [main] as fiber 0 and schedules fibers spawned by it
    until all finish; returns [main]'s result. Nested runs are not
    supported. *)

val spawn : (unit -> unit) -> int
(** Start a new fiber; returns its id. A fiber's uncaught exception aborts
    the whole [run]. *)

val yield : unit -> unit
(** Let the scheduler pick the next fiber (possibly this one again). *)

val self : unit -> int
(** Current fiber id (0 for the main fiber and outside a run). *)

val suspend : ((unit -> unit) -> (exn -> unit) -> unit) -> unit
(** [suspend register] blocks the current fiber. [register wake cancel] is
    called immediately; the fiber resumes when some other fiber calls
    [wake ()], or raises [e] at the suspension point when [cancel e] is
    called. Exactly one of the two may fire, once; later calls are
    ignored. *)

val now : unit -> int
(** Logical clock: number of scheduling steps plus explicit advances. *)

val advance : int -> unit
(** Charge [n] ticks of simulated time (e.g. a simulated disk I/O). *)

val fibers_alive : unit -> int
(** Number of unfinished fibers, including the caller (1 outside a run). *)

val in_run : unit -> bool
(** [true] iff the caller executes inside a [run] — i.e. [spawn] and
    [suspend] are available. Lets blocking protocols (e.g. group commit)
    degrade to a synchronous path for single-threaded callers. *)
