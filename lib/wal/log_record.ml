type lsn = int

let nil_lsn = 0

type rid = Ivdb_storage.Heap_file.rid

type logical_undo =
  | No_undo
  | Undo_heap_insert of { table : int; rid : rid }
  | Undo_heap_delete of { table : int; rid : rid }
  | Undo_heap_update of { table : int; rid : rid; before : string }
  | Undo_bt_insert of { index : int; key : string }
  | Undo_bt_delete of { index : int; key : string; value : string }
  | Undo_bt_update of { index : int; key : string; before : string }
  | Undo_escrow of { view : int; key : string; inverse : string }

type page_diffs = (int * Ivdb_storage.Page_diff.t) list

type body =
  | Begin of { system : bool }
  | Commit
  | Abort
  | End
  | Update of { redo : page_diffs; undo : logical_undo }
  | Clr of { redo : page_diffs; undo_next : lsn }
  | Checkpoint of {
      active : (int * lsn) list;
      dpt : (int * lsn) list;
      catalog : string;
    }
  | Ddl of string
  | Prepare of { gtxn : string; deltas : string }
  | Decision of { gtxn : string; committed : bool }

type t = { lsn : lsn; txn : int; prev : lsn; body : body }

(* --- binary serialization ----------------------------------------------

   Layout: i32 lsn | i32 txn | i32 prev | u8 body tag | body. Strings are
   u32-length-framed; integers big-endian. The same writer functions drive
   both [encode] (emitting into a Buffer) and [byte_size] (summing), so the
   accounting is exact by construction. *)

let add_i32 buf v =
  let b = Bytes.create 4 in
  Ivdb_util.Bytes_util.set_u32 b 0 v;
  Buffer.add_bytes buf b

let add_str buf s =
  add_i32 buf (String.length s);
  Buffer.add_string buf s

let add_rid buf (rid : rid) =
  add_i32 buf rid.Ivdb_storage.Heap_file.rpage;
  add_i32 buf rid.Ivdb_storage.Heap_file.rslot

let add_undo buf = function
  | No_undo -> Buffer.add_char buf '\000'
  | Undo_heap_insert u ->
      Buffer.add_char buf '\001';
      add_i32 buf u.table;
      add_rid buf u.rid
  | Undo_heap_delete u ->
      Buffer.add_char buf '\002';
      add_i32 buf u.table;
      add_rid buf u.rid
  | Undo_heap_update u ->
      Buffer.add_char buf '\003';
      add_i32 buf u.table;
      add_rid buf u.rid;
      add_str buf u.before
  | Undo_bt_insert u ->
      Buffer.add_char buf '\004';
      add_i32 buf u.index;
      add_str buf u.key
  | Undo_bt_delete u ->
      Buffer.add_char buf '\005';
      add_i32 buf u.index;
      add_str buf u.key;
      add_str buf u.value
  | Undo_bt_update u ->
      Buffer.add_char buf '\006';
      add_i32 buf u.index;
      add_str buf u.key;
      add_str buf u.before
  | Undo_escrow u ->
      Buffer.add_char buf '\007';
      add_i32 buf u.view;
      add_str buf u.key;
      add_str buf u.inverse

let add_redo buf redo =
  add_i32 buf (List.length redo);
  List.iter
    (fun (pid, diff) ->
      add_i32 buf pid;
      add_str buf (Ivdb_storage.Page_diff.encode diff))
    redo

let add_pairs buf pairs =
  add_i32 buf (List.length pairs);
  List.iter
    (fun (a, b) ->
      add_i32 buf a;
      add_i32 buf b)
    pairs

let add_body buf = function
  | Begin b ->
      Buffer.add_char buf 'B';
      Buffer.add_char buf (if b.system then '\001' else '\000')
  | Commit -> Buffer.add_char buf 'C'
  | Abort -> Buffer.add_char buf 'A'
  | End -> Buffer.add_char buf 'E'
  | Update u ->
      Buffer.add_char buf 'U';
      add_redo buf u.redo;
      add_undo buf u.undo
  | Clr c ->
      Buffer.add_char buf 'R';
      add_redo buf c.redo;
      add_i32 buf c.undo_next
  | Checkpoint c ->
      Buffer.add_char buf 'K';
      add_pairs buf c.active;
      add_pairs buf c.dpt;
      add_str buf c.catalog
  | Ddl s ->
      Buffer.add_char buf 'D';
      add_str buf s
  | Prepare p ->
      Buffer.add_char buf 'P';
      add_str buf p.gtxn;
      add_str buf p.deltas
  | Decision d ->
      Buffer.add_char buf 'V';
      add_str buf d.gtxn;
      Buffer.add_char buf (if d.committed then '\001' else '\000')

let encode t =
  let buf = Buffer.create 64 in
  add_i32 buf t.lsn;
  add_i32 buf t.txn;
  add_i32 buf t.prev;
  add_body buf t.body;
  Buffer.contents buf

let byte_size t = String.length (encode t)

(* decoding *)

type reader = { src : string; mutable pos : int }

let fail () = invalid_arg "Log_record.decode: malformed record"

let rd_u8 r =
  if r.pos >= String.length r.src then fail ();
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let rd_i32 r =
  if r.pos + 4 > String.length r.src then fail ();
  let v =
    (Char.code r.src.[r.pos] lsl 24)
    lor (Char.code r.src.[r.pos + 1] lsl 16)
    lor (Char.code r.src.[r.pos + 2] lsl 8)
    lor Char.code r.src.[r.pos + 3]
  in
  r.pos <- r.pos + 4;
  v

let rd_str r =
  let len = rd_i32 r in
  if r.pos + len > String.length r.src then fail ();
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let rd_rid r =
  let rpage = rd_i32 r in
  let rslot = rd_i32 r in
  { Ivdb_storage.Heap_file.rpage; rslot }

let rd_undo r =
  match rd_u8 r with
  | 0 -> No_undo
  | 1 ->
      let table = rd_i32 r in
      Undo_heap_insert { table; rid = rd_rid r }
  | 2 ->
      let table = rd_i32 r in
      Undo_heap_delete { table; rid = rd_rid r }
  | 3 ->
      let table = rd_i32 r in
      let rid = rd_rid r in
      Undo_heap_update { table; rid; before = rd_str r }
  | 4 ->
      let index = rd_i32 r in
      Undo_bt_insert { index; key = rd_str r }
  | 5 ->
      let index = rd_i32 r in
      let key = rd_str r in
      Undo_bt_delete { index; key; value = rd_str r }
  | 6 ->
      let index = rd_i32 r in
      let key = rd_str r in
      Undo_bt_update { index; key; before = rd_str r }
  | 7 ->
      let view = rd_i32 r in
      let key = rd_str r in
      Undo_escrow { view; key; inverse = rd_str r }
  | _ -> fail ()

let rd_redo r =
  let n = rd_i32 r in
  List.init n (fun _ ->
      let pid = rd_i32 r in
      (pid, Ivdb_storage.Page_diff.decode (rd_str r)))

let rd_pairs r =
  let n = rd_i32 r in
  List.init n (fun _ ->
      let a = rd_i32 r in
      let b = rd_i32 r in
      (a, b))

let rd_body r =
  match Char.chr (rd_u8 r) with
  | 'B' -> Begin { system = rd_u8 r = 1 }
  | 'C' -> Commit
  | 'A' -> Abort
  | 'E' -> End
  | 'U' ->
      let redo = rd_redo r in
      Update { redo; undo = rd_undo r }
  | 'R' ->
      let redo = rd_redo r in
      Clr { redo; undo_next = rd_i32 r }
  | 'K' ->
      let active = rd_pairs r in
      let dpt = rd_pairs r in
      Checkpoint { active; dpt; catalog = rd_str r }
  | 'D' -> Ddl (rd_str r)
  | 'P' ->
      let gtxn = rd_str r in
      Prepare { gtxn; deltas = rd_str r }
  | 'V' ->
      let gtxn = rd_str r in
      Decision { gtxn; committed = rd_u8 r = 1 }
  | _ -> fail ()

let decode s =
  let r = { src = s; pos = 0 } in
  let lsn = rd_i32 r in
  let txn = rd_i32 r in
  let prev = rd_i32 r in
  let body = rd_body r in
  if r.pos <> String.length s then fail ();
  { lsn; txn; prev; body }

let pages_touched t =
  match t.body with
  | Update { redo; _ } | Clr { redo; _ } -> List.map fst redo
  | Begin _ | Commit | Abort | End | Checkpoint _ | Ddl _ | Prepare _
  | Decision _ ->
      []

let pp_undo ppf = function
  | No_undo -> Format.fprintf ppf "none"
  | Undo_heap_insert u -> Format.fprintf ppf "heap-del t%d %a" u.table Ivdb_storage.Heap_file.pp_rid u.rid
  | Undo_heap_delete u ->
      Format.fprintf ppf "heap-rev t%d %a" u.table Ivdb_storage.Heap_file.pp_rid u.rid
  | Undo_heap_update u -> Format.fprintf ppf "heap-upd t%d %a" u.table Ivdb_storage.Heap_file.pp_rid u.rid
  | Undo_bt_insert u -> Format.fprintf ppf "bt-del i%d" u.index
  | Undo_bt_delete u -> Format.fprintf ppf "bt-ins i%d" u.index
  | Undo_bt_update u -> Format.fprintf ppf "bt-upd i%d" u.index
  | Undo_escrow u -> Format.fprintf ppf "escrow v%d" u.view

let pp ppf t =
  let body ppf = function
    | Begin b -> Format.fprintf ppf "BEGIN%s" (if b.system then "(sys)" else "")
    | Commit -> Format.fprintf ppf "COMMIT"
    | Abort -> Format.fprintf ppf "ABORT"
    | End -> Format.fprintf ppf "END"
    | Update u ->
        Format.fprintf ppf "UPDATE pages=%a undo=%a"
          (Format.pp_print_list Format.pp_print_int)
          (List.map fst u.redo) pp_undo u.undo
    | Clr c ->
        Format.fprintf ppf "CLR pages=%a undoNext=%d"
          (Format.pp_print_list Format.pp_print_int)
          (List.map fst c.redo) c.undo_next
    | Checkpoint c ->
        Format.fprintf ppf "CHECKPOINT att=%d dpt=%d" (List.length c.active)
          (List.length c.dpt)
    | Ddl _ -> Format.fprintf ppf "DDL"
    | Prepare p -> Format.fprintf ppf "PREPARE %s" p.gtxn
    | Decision d ->
        Format.fprintf ppf "DECISION %s %s" d.gtxn
          (if d.committed then "commit" else "abort")
  in
  Format.fprintf ppf "[%d] txn=%d prev=%d %a" t.lsn t.txn t.prev body t.body
