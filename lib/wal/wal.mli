(** The write-ahead log: an append-only record sequence with a stable
    (forced) prefix.

    LSNs are dense indices into the log, starting at 1. A simulated crash
    keeps only the forced prefix — records past [flushed_lsn] are lost,
    which is exactly the WAL contract: the buffer pool forces the log up to
    a page's LSN before writing that page back, and commit forces up to the
    commit record. *)

type t

val create : ?trace:Ivdb_util.Trace.t -> Ivdb_util.Metrics.t -> t
(** [trace] defaults to a fresh disabled trace (no events observable). *)

val append : t -> txn:int -> prev:Log_record.lsn -> Log_record.body -> Log_record.lsn
(** Counts [log.append] and [log.bytes]; traces [wal.append]. *)

val get : t -> Log_record.lsn -> Log_record.t
(** Raises [Invalid_argument] for LSN 0 or beyond the end. *)

val last_lsn : t -> Log_record.lsn
(** 0 when empty. *)

val flushed_lsn : t -> Log_record.lsn

val force : t -> Log_record.lsn -> unit
(** Make the prefix up to [lsn] stable. A no-op if already flushed (group
    commit); otherwise counts [log.force], traces [wal.force] and charges
    one I/O of simulated time. Under an installed fault plan this is the
    crash-at-force injection point (may raise {!Ivdb_storage.Fault.Crash_point},
    optionally recording a byte-granularity tear of the new region for
    {!crash} to apply); once the plan is frozen, forces are silent no-ops. *)

val set_fault : t -> Ivdb_storage.Fault.t -> unit
(** Install a fault plan consulted on every force. *)

val iter_stable : t -> (Log_record.t -> unit) -> unit
(** The records a post-crash recovery can see, in LSN order.
    Equivalent to [iter_from t ~from:(first_lsn t)]. *)

(** {2 Incremental tail reads}

    The cursor surface WAL shipping is built on. Every position below is
    an absolute {!Log_record.lsn}; the valid window is
    [[first_lsn t, flushed_lsn t]] — LSNs below [first_lsn] have been
    truncated away ({!truncate_before}), LSNs above [flushed_lsn] are
    appended but not yet stable and must never leave this process. A
    caller streaming the log holds its own resume position (the next LSN
    it wants) and re-reads from there after any interruption; the log
    itself keeps no cursor state. *)

val iter_from : t -> from:Log_record.lsn -> (Log_record.t -> unit) -> unit
(** Stable records with [from <= lsn <= flushed_lsn t], in LSN order; an
    empty iteration when [from > flushed_lsn t]. Raises
    [Invalid_argument] when [from < first_lsn t]: that history is gone,
    and the caller (e.g. a replica resuming below the primary's
    retention) must bootstrap some other way. *)

val serialize_range : t -> from:Log_record.lsn -> upto:Log_record.lsn -> string
(** The stable records in [[from, upto]] as a framed byte stream — each
    record [u32 length | u32 FNV-1a checksum | payload]
    (payload = {!Log_record.encode}), exactly the on-device format of
    {!serialize_stable}. Empty when [from > upto]. Raises
    [Invalid_argument] when [from < first_lsn t] or
    [upto > flushed_lsn t]. *)

val decode_frames : first_lsn:Log_record.lsn -> string -> Log_record.t list
(** Decode a framed stream produced by {!serialize_range}, expecting the
    first record at [first_lsn]. Never raises: returns the longest
    prefix of complete, checksum-valid frames whose LSNs chain densely
    from [first_lsn] — a torn or corrupt tail (and everything after it)
    is silently dropped, mirroring what {!crash} tolerates. Receivers
    detect a short batch by comparing [List.length] against the range
    the sender advertised. *)

val ingest : t -> Log_record.t -> unit
(** Replica-side append: install a record shipped from a primary,
    keeping its LSN. The record must extend the dense chain
    ([lsn = last_lsn t + 1]; raises [Invalid_argument] otherwise) and
    becomes stable immediately — a follower only acknowledges what it
    has applied, so its acked prefix must survive its own crashes
    without a force. Counts [log.ingested] and [log.bytes]; updates
    {!last_checkpoint_lsn} when a checkpoint record flows through. *)

val set_retain_floor : t -> Log_record.lsn option -> unit
(** Replication slot: with [Some lsn], {!truncate_before} keeps every
    record with LSN >= [lsn] regardless of the requested cut, so a
    replica acked up to [lsn - 1] can always resume. [None] (the
    default, and the state after {!crash}) restores unrestricted
    truncation. *)

val retain_floor : t -> Log_record.lsn option

val last_checkpoint_lsn : t -> Log_record.lsn
(** LSN of the most recent *stable* checkpoint record; 0 if none. *)

val commit_horizon_upto : t -> upto:Log_record.lsn -> Log_record.lsn
(** Greatest commit boundary <= [upto]: the largest LSN [b <= upto] such
    that applying the log prefix [[.., b]] leaves no transaction in
    flight — a Commit retires its transaction, an aborted transaction
    stays open until the End record that closes its compensation, and
    checkpoint records are transparent. The prefix up to a boundary is
    transaction-consistent, which is what lets a replica apply shipped
    records only up to the horizon and never expose a split transaction.
    Returns 0 when no boundary lies in the retained window. *)

val commit_horizon : t -> Log_record.lsn
(** [commit_horizon_upto t ~upto:(flushed_lsn t)]: the newest stable
    transaction-consistent prefix end — what a primary advertises to
    followers as the last-committed LSN. *)

val crash : t -> ?trace:Ivdb_util.Trace.t -> Ivdb_util.Metrics.t -> t
(** The log as found after a crash: the stable prefix, round-tripped
    through the binary codec. The stable records are serialized with
    length+checksum framing ({!serialize_stable}), a pending tear (from a
    torn force or {!set_torn_tail}) cuts the stream at byte granularity,
    and deserialization keeps only the longest prefix of complete,
    checksum-valid, densely-chained frames — a partial record and
    everything after it are discarded (counted as
    [wal.torn_tail_dropped]). The copy reports into the given
    metrics/trace (the pre-crash instances are dead). *)

val serialize_stable : t -> string
(** The stable prefix as the byte stream a device would hold: each record
    framed as [u32 length | u32 FNV-1a checksum | payload]
    (payload = {!Log_record.encode}). *)

val set_torn_tail : t -> int -> unit
(** Declare that the device stopped after the first [n] bytes of
    {!serialize_stable}'s stream; the next {!crash} applies the cut.
    Test hook — fault plans set this themselves on a torn force. *)

val truncate_before : t -> Log_record.lsn -> unit
(** Discard records with LSN < the argument. The caller guarantees they
    will never be needed again: nothing earlier than the safe point
    min(checkpoint LSN, min DPT recLSN, min first-LSN of active
    transactions) — further clamped by {!set_retain_floor}. Reading a
    truncated LSN raises [Invalid_argument]. Counts
    [log.truncated_records]. *)

val first_lsn : t -> Log_record.lsn
(** Smallest retained LSN ([last_lsn t + 1] when empty or fully
    truncated). *)

val record_count : t -> int
(** Retained records. *)

val stable_byte_size : t -> int
