module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace

type t = {
  mutable records : Log_record.t array; (* records.(lsn - base - 1) *)
  mutable base : int; (* number of truncated leading records *)
  mutable len : int; (* retained records *)
  mutable flushed : Log_record.lsn;
  mutable last_ckpt : Log_record.lsn; (* of flushed checkpoints *)
  mutable bytes_flushed : int;
  metrics : Metrics.t;
  trace : Trace.t;
  m_append : Metrics.counter;
  m_bytes : Metrics.counter;
  m_force : Metrics.counter;
  force_cost : int;
}

let create ?trace metrics =
  let trace =
    match trace with Some tr -> tr | None -> Trace.create ()
  in
  {
    records = [||];
    base = 0;
    len = 0;
    flushed = 0;
    last_ckpt = 0;
    bytes_flushed = 0;
    metrics;
    trace;
    m_append = Metrics.counter metrics "log.append";
    m_bytes = Metrics.counter metrics "log.bytes";
    m_force = Metrics.counter metrics "log.force";
    force_cost = 100;
  }

let append t ~txn ~prev body =
  let lsn = t.base + t.len + 1 in
  let r = { Log_record.lsn; txn; prev; body } in
  if t.len = Array.length t.records then begin
    let cap = max 64 (2 * Array.length t.records) in
    let bigger = Array.make cap r in
    Array.blit t.records 0 bigger 0 t.len;
    t.records <- bigger
  end;
  t.records.(t.len) <- r;
  t.len <- t.len + 1;
  Metrics.inc t.m_append;
  Metrics.inc_by t.m_bytes (Log_record.byte_size r);
  if Trace.enabled t.trace then
    Trace.emit t.trace
      (Trace.Wal_append { lsn; txn; bytes = Log_record.byte_size r });
  lsn

let get t lsn =
  if lsn <= t.base || lsn > t.base + t.len then
    invalid_arg "Wal.get: LSN out of range";
  t.records.(lsn - t.base - 1)

let last_lsn t = t.base + t.len
let first_lsn t = t.base + 1
let record_count t = t.len
let flushed_lsn t = t.flushed

let force t lsn =
  let lsn = min lsn (t.base + t.len) in
  if lsn > t.flushed then begin
    Metrics.inc t.m_force;
    if Trace.enabled t.trace then Trace.emit t.trace (Trace.Wal_force { lsn });
    Ivdb_sched.Sched.advance t.force_cost;
    for i = max (t.base + 1) (t.flushed + 1) to lsn do
      let r = t.records.(i - t.base - 1) in
      t.bytes_flushed <- t.bytes_flushed + Log_record.byte_size r;
      match r.Log_record.body with
      | Log_record.Checkpoint _ -> t.last_ckpt <- r.Log_record.lsn
      | _ -> ()
    done;
    t.flushed <- lsn
  end

let iter_stable t f =
  for i = t.base + 1 to t.flushed do
    f t.records.(i - t.base - 1)
  done

let last_checkpoint_lsn t = t.last_ckpt

let crash t ?trace metrics =
  let copy = create ?trace metrics in
  let stable_retained = max 0 (t.flushed - t.base) in
  copy.records <- Array.sub t.records 0 stable_retained;
  copy.base <- t.base;
  copy.len <- stable_retained;
  copy.flushed <- t.flushed;
  copy.last_ckpt <- t.last_ckpt;
  copy.bytes_flushed <- t.bytes_flushed;
  copy

let truncate_before t lsn =
  let lsn = min lsn (t.flushed + 1) in
  let drop = lsn - 1 - t.base in
  if drop > 0 then begin
    t.records <- Array.sub t.records drop (t.len - drop);
    t.base <- t.base + drop;
    t.len <- t.len - drop;
    Metrics.add t.metrics "log.truncated_records" drop
  end

let stable_byte_size t = t.bytes_flushed
