module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace
module B = Ivdb_util.Bytes_util
module Fault = Ivdb_storage.Fault

type t = {
  mutable records : Log_record.t array; (* records.(lsn - base - 1) *)
  mutable base : int; (* number of truncated leading records *)
  mutable len : int; (* retained records *)
  mutable flushed : Log_record.lsn;
  mutable last_ckpt : Log_record.lsn; (* of flushed checkpoints *)
  mutable bytes_flushed : int;
  mutable fault : Fault.t;
  mutable pending_tear : int option;
      (* byte offset into the serialized stable stream at which the device
         stopped mid-force; consumed by [crash] *)
  mutable retain_floor : Log_record.lsn option;
      (* replication slot: truncate_before never discards records with
         LSN >= the floor, so a subscribed (or disconnected-but-known)
         replica can always resume from its acked position *)
  open_txns : (int, unit) Hashtbl.t;
      (* transactions with a record in the log but no Commit/End yet *)
  mutable boundaries : Log_record.lsn list;
      (* commit boundaries, newest first: LSNs after whose record no
         transaction is in flight — the prefix up to one is
         transaction-consistent *)
  metrics : Metrics.t;
  trace : Trace.t;
  m_append : Metrics.counter;
  m_bytes : Metrics.counter;
  m_force : Metrics.counter;
  force_cost : int;
}

let create ?trace metrics =
  let trace =
    match trace with Some tr -> tr | None -> Trace.create ()
  in
  {
    records = [||];
    base = 0;
    len = 0;
    flushed = 0;
    last_ckpt = 0;
    bytes_flushed = 0;
    fault = Fault.none;
    pending_tear = None;
    retain_floor = None;
    open_txns = Hashtbl.create 16;
    boundaries = [];
    metrics;
    trace;
    m_append = Metrics.counter metrics "log.append";
    m_bytes = Metrics.counter metrics "log.bytes";
    m_force = Metrics.counter metrics "log.force";
    force_cost = 100;
  }

(* Commit-boundary tracking: an LSN is a boundary when no transaction is
   in flight once its record is applied. A Commit or End retires its
   transaction (a committed transaction is complete at its Commit record;
   an aborted one only once its compensation finishes at End), any other
   transaction-stamped record opens one, and checkpoints are transparent.
   The prefix up to a boundary is transaction-consistent — the property a
   replica needs to serve reads at the commit horizon. *)
let track_boundary t (r : Log_record.t) =
  (match r.Log_record.body with
  | Log_record.Commit | Log_record.End ->
      Hashtbl.remove t.open_txns r.Log_record.txn
  | Log_record.Checkpoint _ -> ()
  | _ ->
      if r.Log_record.txn <> 0 then Hashtbl.replace t.open_txns r.Log_record.txn ());
  if Hashtbl.length t.open_txns = 0 then
    t.boundaries <- r.Log_record.lsn :: t.boundaries

let commit_horizon_upto t ~upto =
  let rec find = function
    | [] -> 0
    | b :: rest -> if b <= upto then b else find rest
  in
  find t.boundaries

let commit_horizon t = commit_horizon_upto t ~upto:t.flushed

let append t ~txn ~prev body =
  let lsn = t.base + t.len + 1 in
  let r = { Log_record.lsn; txn; prev; body } in
  if t.len = Array.length t.records then begin
    let cap = max 64 (2 * Array.length t.records) in
    let bigger = Array.make cap r in
    Array.blit t.records 0 bigger 0 t.len;
    t.records <- bigger
  end;
  t.records.(t.len) <- r;
  t.len <- t.len + 1;
  track_boundary t r;
  Metrics.inc t.m_append;
  Metrics.inc_by t.m_bytes (Log_record.byte_size r);
  if Trace.enabled t.trace then
    Trace.emit t.trace
      (Trace.Wal_append { lsn; txn; bytes = Log_record.byte_size r });
  lsn

let get t lsn =
  if lsn <= t.base || lsn > t.base + t.len then
    invalid_arg "Wal.get: LSN out of range";
  t.records.(lsn - t.base - 1)

let last_lsn t = t.base + t.len
let first_lsn t = t.base + 1
let record_count t = t.len
let flushed_lsn t = t.flushed

let set_fault t f = t.fault <- f

(* framed byte size of the record range [lo, hi]: each record is encoded
   as [u32 length | u32 checksum | payload] *)
let framed_bytes t lo hi =
  let acc = ref 0 in
  for i = max lo (t.base + 1) to hi do
    acc := !acc + 8 + Log_record.byte_size t.records.(i - t.base - 1)
  done;
  !acc

let flush_range t lsn =
  for i = max (t.base + 1) (t.flushed + 1) to lsn do
    let r = t.records.(i - t.base - 1) in
    t.bytes_flushed <- t.bytes_flushed + Log_record.byte_size r;
    match r.Log_record.body with
    | Log_record.Checkpoint _ -> t.last_ckpt <- r.Log_record.lsn
    | _ -> ()
  done;
  t.flushed <- lsn

let force t lsn =
  (* after a crash point fires, the device is gone: forces are silent
     no-ops so nothing else can reach stable storage before the test
     observes the crash *)
  if not (Fault.frozen t.fault) then begin
    let lsn = min lsn (t.base + t.len) in
    if lsn > t.flushed then begin
      Metrics.inc t.m_force;
      if Trace.enabled t.trace then Trace.emit t.trace (Trace.Wal_force { lsn });
      Ivdb_sched.Sched.advance t.force_cost;
      let action =
        if Fault.active t.fault then
          Fault.on_force t.fault ~bytes_new:(framed_bytes t (t.flushed + 1) lsn)
        else Fault.Force_ok
      in
      match action with
      | Fault.Force_ok -> flush_range t lsn
      | Fault.Force_crash ->
          (* nothing of this force reached the device *)
          Fault.crash "wal.force"
      | Fault.Force_torn keep ->
          (* the device stopped [keep] bytes into the new region: record
             the absolute tear offset for [crash] to apply *)
          let prefix = framed_bytes t (t.base + 1) t.flushed in
          flush_range t lsn;
          t.pending_tear <- Some (prefix + keep);
          Fault.crash "wal.force.torn"
    end
  end

(* Incremental tail reads: the cursor surface replication is built on.
   All positions are absolute LSNs; the valid window is
   [first_lsn t, flushed_lsn t] — below it the history has been
   truncated away, above it the records are not yet stable. *)

let iter_from t ~from f =
  if from < t.base + 1 then
    invalid_arg "Wal.iter_from: LSN below first_lsn (truncated)";
  for i = from to t.flushed do
    f t.records.(i - t.base - 1)
  done

let iter_stable t f = iter_from t ~from:(t.base + 1) f

let last_checkpoint_lsn t = t.last_ckpt

(* --- binary image of the stable prefix ----------------------------------

   What a crash can see is not the typed in-memory array but the byte
   stream a real device would hold, so the crash path always round-trips
   the stable prefix through [Log_record.encode]/[decode] with
   length+checksum framing. A torn tail is a byte-granularity prefix of
   that stream; deserialization stops at the first incomplete or corrupt
   frame and discards everything from there on — a partial record is never
   resurrected. *)

let serialize_range t ~from ~upto =
  if from < t.base + 1 then
    invalid_arg "Wal.serialize_range: LSN below first_lsn (truncated)";
  if upto > t.flushed then
    invalid_arg "Wal.serialize_range: LSN above flushed_lsn (not stable)";
  let buf = Buffer.create 256 in
  for i = from to upto do
    let r = t.records.(i - t.base - 1) in
    let payload = Log_record.encode r in
    let hdr = Bytes.create 8 in
    B.set_u32 hdr 0 (String.length payload);
    B.set_u32 hdr 4 (B.fnv1a32_string payload 0 (String.length payload));
    Buffer.add_bytes buf hdr;
    Buffer.add_string buf payload
  done;
  Buffer.contents buf

let serialize_stable t = serialize_range t ~from:(t.base + 1) ~upto:t.flushed

(* decode frames until the stream runs dry or a frame fails (short header,
   short payload, checksum mismatch, malformed record, or an LSN that
   breaks the dense chain) *)
let decode_frames ~first_lsn s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let out = ref [] in
  let pos = ref 0 in
  let next = ref first_lsn in
  let stop = ref false in
  while not !stop do
    if n - !pos < 8 then stop := true
    else begin
      let len = B.get_u32 b !pos in
      let ck = B.get_u32 b (!pos + 4) in
      if len = 0 || n - !pos - 8 < len then stop := true
      else if B.fnv1a32_string s (!pos + 8) len <> ck then stop := true
      else
        match Log_record.decode (String.sub s (!pos + 8) len) with
        | r when r.Log_record.lsn = !next ->
            out := r :: !out;
            incr next;
            pos := !pos + 8 + len
        | _ -> stop := true
        | exception Invalid_argument _ -> stop := true
    end
  done;
  List.rev !out

let set_torn_tail t cut = t.pending_tear <- Some cut

let crash t ?trace metrics =
  let stream = serialize_stable t in
  let stream =
    match t.pending_tear with
    | Some cut when cut < String.length stream -> String.sub stream 0 cut
    | Some _ | None -> stream
  in
  let recs = decode_frames ~first_lsn:(t.base + 1) stream in
  let copy = create ?trace metrics in
  copy.records <- Array.of_list recs;
  copy.base <- t.base;
  copy.len <- Array.length copy.records;
  copy.flushed <- t.base + copy.len;
  Array.iter
    (fun r ->
      copy.bytes_flushed <- copy.bytes_flushed + Log_record.byte_size r;
      track_boundary copy r;
      match r.Log_record.body with
      | Log_record.Checkpoint _ -> copy.last_ckpt <- r.Log_record.lsn
      | _ -> ())
    copy.records;
  let dropped = t.flushed - t.base - copy.len in
  if dropped > 0 then Metrics.add metrics "wal.torn_tail_dropped" dropped;
  copy

(* Replica ingestion: install an already-sequenced record shipped from a
   primary. The follower's log is a byte-for-byte replay of the
   primary's, so the record must extend the dense chain, and it is
   immediately stable — the follower only acknowledges applied batches,
   and what it acked must survive its own crashes. *)
let ingest t r =
  let expect = t.base + t.len + 1 in
  if r.Log_record.lsn <> expect then
    invalid_arg
      (Printf.sprintf "Wal.ingest: LSN %d breaks the chain (expected %d)"
         r.Log_record.lsn expect);
  if t.len = Array.length t.records then begin
    let cap = max 64 (2 * Array.length t.records) in
    let bigger = Array.make cap r in
    Array.blit t.records 0 bigger 0 t.len;
    t.records <- bigger
  end;
  t.records.(t.len) <- r;
  t.len <- t.len + 1;
  track_boundary t r;
  Metrics.add t.metrics "log.ingested" 1;
  Metrics.inc_by t.m_bytes (Log_record.byte_size r);
  flush_range t r.Log_record.lsn

let set_retain_floor t floor = t.retain_floor <- floor
let retain_floor t = t.retain_floor

let truncate_before t lsn =
  let lsn = min lsn (t.flushed + 1) in
  let lsn = match t.retain_floor with Some f -> min lsn f | None -> lsn in
  let drop = lsn - 1 - t.base in
  if drop > 0 then begin
    t.records <- Array.sub t.records drop (t.len - drop);
    t.base <- t.base + drop;
    t.len <- t.len - drop;
    t.boundaries <- List.filter (fun b -> b > t.base) t.boundaries;
    Metrics.add t.metrics "log.truncated_records" drop
  end

let stable_byte_size t = t.bytes_flushed
