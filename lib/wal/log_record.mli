(** Write-ahead log records.

    The logging discipline is ARIES-style *physiological*: redo information
    is physical (byte diffs against pages, applied by LSN comparison), undo
    information is logical (the inverse operation, re-executed through the
    access layer). Logical undo is what makes escrow locking sound: a loser
    transaction's increment of an aggregate must be compensated by a
    decrement, because other transactions may have since changed the same
    bytes under their own (compatible) increment locks. *)

type lsn = int

val nil_lsn : lsn
(** 0; valid LSNs start at 1. *)

type rid = Ivdb_storage.Heap_file.rid

(** Inverse operation recorded for undo. Table/index/view ids refer to the
    catalog; the owner of those ids supplies the undo executor. *)
type logical_undo =
  | No_undo  (** redo-only (system transactions, structure changes) *)
  | Undo_heap_insert of { table : int; rid : rid }
  | Undo_heap_delete of { table : int; rid : rid }
      (** deletion ghost-marks the record; undo revives the same rid *)
  | Undo_heap_update of { table : int; rid : rid; before : string }
  | Undo_bt_insert of { index : int; key : string }
  | Undo_bt_delete of { index : int; key : string; value : string }
  | Undo_bt_update of { index : int; key : string; before : string }
  | Undo_escrow of { view : int; key : string; inverse : string }
      (** [inverse] is the encoded delta that compensates the original. *)

type page_diffs = (int * Ivdb_storage.Page_diff.t) list

type body =
  | Begin of { system : bool }
  | Commit
  | Abort  (** rollback is starting; End follows when it completes *)
  | End
  | Update of { redo : page_diffs; undo : logical_undo }
  | Clr of { redo : page_diffs; undo_next : lsn }
      (** compensation: redo-only, chains rollback past the undone record *)
  | Checkpoint of {
      active : (int * lsn) list;  (** transaction table: (txn, lastLSN) *)
      dpt : (int * lsn) list;  (** dirty page table: (page, recLSN) *)
      catalog : string;  (** opaque catalog snapshot, restored by the owner *)
    }
  | Ddl of string  (** opaque catalog delta, replayed by the owner in order *)
  | Prepare of { gtxn : string; deltas : string }
      (** 2PC phase 1: the transaction is fully forced and holds its locks
          until a [Decision] arrives. [gtxn] is the coordinator's global id;
          [deltas] is an opaque payload of remote escrow view deltas applied
          on this shard as part of the prepared work. *)
  | Decision of { gtxn : string; committed : bool }
      (** 2PC phase 2 outcome for a previously prepared transaction. *)

type t = { lsn : lsn; txn : int; prev : lsn; body : body }

val encode : t -> string
(** Binary serialization: length-framed fields, big-endian integers. *)

val decode : string -> t
(** Inverse of [encode]; raises [Invalid_argument] on malformed input. *)

val byte_size : t -> int
(** Exact size of {!encode}'s output (computed without materializing it). *)

val pages_touched : t -> int list
val pp : Format.formatter -> t -> unit
