(** The lock manager: granted groups, FIFO wait queues, conversion, and
    waits-for deadlock detection.

    Integration with the fiber scheduler: an incompatible request suspends
    the calling fiber; grants wake it. Deadlocks are detected at block time
    by cycle search over the waits-for graph; the youngest transaction in
    the cycle is the victim. If the victim is the requester, {!Deadlock} is
    raised here; otherwise the victim's pending wait is cancelled, raising
    {!Deadlock} at *its* suspension point, and the requester keeps
    waiting. *)

exception Deadlock of int
(** Argument: the victim transaction's id. *)

type t

val create : ?trace:Ivdb_util.Trace.t -> Ivdb_util.Metrics.t -> t
(** [trace] defaults to a fresh disabled trace. When enabled, requests
    emit [lock.acquire], blocking requests [lock.wait], grants of blocked
    requests [lock.grant], and deadlock resolution [lock.deadlock_victim]
    (one event per victim, carrying the victim's txn id). *)

val acquire : t -> txn:int -> Lock_name.t -> Lock_mode.t -> unit
(** Blocks until granted. Re-entrant: a held mode that covers the request
    is a no-op; otherwise the request converts the held lock to
    [sup held req]. Counts [lock.acquire]; waits count [lock.wait];
    deadlocks count [lock.deadlock]. *)

val acquire_instant : t -> txn:int -> Lock_name.t -> Lock_mode.t -> unit
(** Instant-duration acquisition (the RangeI_N protocol): waits until the
    mode could be granted, but does not retain it. *)

val try_acquire : t -> txn:int -> Lock_name.t -> Lock_mode.t -> bool
(** Non-blocking variant: [false] instead of waiting. *)

val release_all : t -> txn:int -> unit
(** End-of-transaction release (strict two-phase locking releases nothing
    earlier, except instant-duration locks). *)

val unlocked : t -> Lock_name.t -> bool
(** True if no transaction holds or awaits any lock on the name — used by
    the garbage-collection system transaction before physically removing a
    zero-count view row. *)

val held_mode : t -> txn:int -> Lock_name.t -> Lock_mode.t option
(** Mode this transaction currently holds on the name, if any. *)

val held : t -> txn:int -> (Lock_name.t * Lock_mode.t) list
val holders : t -> Lock_name.t -> (int * Lock_mode.t) list
val waiters : t -> Lock_name.t -> int list
val lock_count : t -> txn:int -> int

type wait_info = {
  w_name : Lock_name.t;  (** resource being waited on *)
  w_txn : int;  (** waiting transaction *)
  w_mode : Lock_mode.t;  (** mode it wants to hold once granted *)
  w_convert : bool;  (** conversion of an already-held lock *)
  w_blockers : int list;  (** transactions it is blocked by, sorted *)
  w_since : int;  (** tick the wait started *)
}

val waits : t -> wait_info list
(** Snapshot of every blocked request, sorted by waiter txn id — the
    blocked/blocker join behind [sys.lock_waits]. Pure read: acquires
    nothing, wakes nobody. Blocked-request wait times also land in the
    ["lock.wait_ticks"] histogram when the wait resolves. *)

val dump :
  t ->
  (Lock_name.t * (int * Lock_mode.t) list * (int * Lock_mode.t * bool * bool) list) list
(** Every lock with holders and waiters (txn, target mode, is-conversion,
    is-instant) — diagnostics. *)
