exception Deadlock of int

module Sched = Ivdb_sched.Sched
module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace

type owner = { otxn : int; mutable mode : Lock_mode.t; mutable count : int }

type req = {
  rtxn : int;
  target : Lock_mode.t; (* mode the txn will hold once granted *)
  grant_mode : Lock_mode.t; (* mode whose compatibility gates the grant *)
  convert : bool;
  instant : bool;
  mutable since : int; (* tick the request started waiting, for sys.lock_waits *)
  mutable wake : (unit -> unit) option;
  mutable cancel : (exn -> unit) option;
}

type lock = {
  lname : Lock_name.t;
  mutable owners : owner list;
  mutable queue : req list; (* FIFO; conversions are kept at the front *)
}

module Name_map = Map.Make (Lock_name)

type t = {
  trace : Trace.t;
  m_acquire : Metrics.counter;
  m_wait : Metrics.counter;
  m_deadlock : Metrics.counter;
  m_instant : Metrics.counter;
  h_wait_ticks : Metrics.hist;
  mutable locks : lock Name_map.t;
  txn_locks : (int, (Lock_name.t, unit) Hashtbl.t) Hashtbl.t;
  blocked : (int, lock * req) Hashtbl.t; (* txn -> what it waits on *)
}

let create ?trace metrics =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  {
    trace;
    m_acquire = Metrics.counter metrics "lock.acquire";
    m_wait = Metrics.counter metrics "lock.wait";
    m_deadlock = Metrics.counter metrics "lock.deadlock";
    m_instant = Metrics.counter metrics "lock.instant";
    h_wait_ticks = Metrics.hist metrics "lock.wait_ticks";
    locks = Name_map.empty;
    txn_locks = Hashtbl.create 64;
    blocked = Hashtbl.create 16;
  }

let name_str name = Format.asprintf "%a" Lock_name.pp name

let trace_lock t ev txn lk req =
  if Trace.enabled t.trace then
    Trace.emit t.trace
      (ev ~txn ~name:(name_str lk.lname) ~mode:(Lock_mode.to_string req.target))

let ev_wait ~txn ~name ~mode = Trace.Lock_wait { txn; name; mode }
let ev_grant ~txn ~name ~mode = Trace.Lock_grant { txn; name; mode }

let find_lock t name = Name_map.find_opt name t.locks

let get_lock t name =
  match find_lock t name with
  | Some lk -> lk
  | None ->
      let lk = { lname = name; owners = []; queue = [] } in
      t.locks <- Name_map.add name lk t.locks;
      lk

let drop_if_idle t lk =
  if lk.owners = [] && lk.queue = [] then t.locks <- Name_map.remove lk.lname t.locks

let owner_of lk txn = List.find_opt (fun o -> o.otxn = txn) lk.owners

let note_held t txn name =
  let tbl =
    match Hashtbl.find_opt t.txn_locks txn with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 16 in
        Hashtbl.add t.txn_locks txn tbl;
        tbl
  in
  Hashtbl.replace tbl name ()

(* A fresh request is grantable when compatible with every other owner and
   nothing waits ahead of it (FIFO fairness); a conversion ignores the
   queue and checks other owners only. *)
let compatible_with_owners lk txn mode =
  List.for_all
    (fun o -> o.otxn = txn || Lock_mode.compat ~requested:mode ~granted:o.mode)
    lk.owners

let conflicts_with a b =
  a.rtxn <> b.rtxn
  && (not (Lock_mode.compat ~requested:a.grant_mode ~granted:b.target)
     || not (Lock_mode.compat ~requested:b.grant_mode ~granted:a.target))

(* Granting is by arrival order with skip-ahead: a request may be granted
   past earlier waiters it does not conflict with (so e.g. an instant gap
   lock never queues behind an unrelated exclusive request), but never past
   a conflicting one — that still guarantees no starvation, and it makes
   the waits-for edges (owners + conflicting earlier waiters) exactly the
   conditions for remaining blocked. *)
let grantable lk req = compatible_with_owners lk req.rtxn req.grant_mode

let grantable_fresh lk req =
  grantable lk req
  && (req.convert || not (List.exists (fun r -> conflicts_with req r) lk.queue))

(* Apply a grant to the lock state. Instant-duration requests retain
   nothing. *)
let apply_grant t lk req =
  if not req.instant then begin
    (match owner_of lk req.rtxn with
    | Some o ->
        o.mode <- req.target;
        o.count <- o.count + 1
    | None ->
        lk.owners <- { otxn = req.rtxn; mode = req.target; count = 1 } :: lk.owners);
    note_held t req.rtxn lk.lname
  end

(* Wake every queued request that has become grantable. Conversions may be
   granted out of order; regular requests are granted strictly from the
   front so that an incompatible head blocks everything behind it. *)
let sweep t lk =
  (* pass 1: conversions anywhere in the queue *)
  let converts, others = List.partition (fun r -> r.convert) lk.queue in
  let still_waiting_converts =
    List.filter
      (fun r ->
        if grantable lk r then begin
          apply_grant t lk r;
          Hashtbl.remove t.blocked r.rtxn;
          trace_lock t ev_grant r.rtxn lk r;
          (match r.wake with Some w -> w () | None -> ());
          false
        end
        else true)
      converts
  in
  lk.queue <- still_waiting_converts @ others;
  (* pass 2: arrival order with skip-ahead, unless a conversion still
     waits (conversions have absolute priority) *)
  if still_waiting_converts = [] then begin
    let rec pass kept = function
      | [] -> List.rev kept
      | r :: rest ->
          if grantable lk r && not (List.exists (fun ahead -> conflicts_with r ahead) kept)
          then begin
            apply_grant t lk r;
            Hashtbl.remove t.blocked r.rtxn;
            trace_lock t ev_grant r.rtxn lk r;
            (match r.wake with Some w -> w () | None -> ());
            pass kept rest
          end
          else pass (r :: kept) rest
    in
    lk.queue <- pass [] lk.queue
  end;
  drop_if_idle t lk

(* --- deadlock detection ------------------------------------------------ *)

(* Transactions a waiting request is blocked by: incompatible owners, plus
   incompatible requests queued ahead of it (FIFO blocking). *)
let blockers lk req =
  let from_owners =
    List.filter_map
      (fun o ->
        if o.otxn <> req.rtxn
           && not (Lock_mode.compat ~requested:req.grant_mode ~granted:o.mode)
        then Some o.otxn
        else None)
      lk.owners
  in
  let rec ahead acc = function
    | [] -> acc
    | r :: _ when r == req -> acc
    | r :: rest -> if conflicts_with req r then ahead (r.rtxn :: acc) rest else ahead acc rest
  in
  let from_queue = if req.convert then [] else ahead [] lk.queue in
  List.sort_uniq compare (from_owners @ from_queue)

(* Find a waits-for cycle through [start]; returns its members. *)
let find_cycle t start =
  let visited = Hashtbl.create 16 in
  let rec dfs path txn =
    if txn = start && path <> [] then Some path
    else if Hashtbl.mem visited txn then None
    else begin
      Hashtbl.add visited txn ();
      match Hashtbl.find_opt t.blocked txn with
      | None -> None
      | Some (lk, req) ->
          let next = blockers lk req in
          List.fold_left
            (fun acc n -> match acc with Some _ -> acc | None -> dfs (txn :: path) n)
            None next
    end
  in
  dfs [] start

let remove_from_queue lk req = lk.queue <- List.filter (fun r -> r != req) lk.queue

(* Break every cycle through [txn] (whose request is already queued and
   registered in [blocked]). Victim: youngest (largest id) member. *)
let resolve_deadlocks t txn my_lk my_req =
  let rec loop () =
    match find_cycle t txn with
    | None -> ()
    | Some cycle ->
        Metrics.inc t.m_deadlock;
        let victim = List.fold_left max txn cycle in
        if Trace.enabled t.trace then
          Trace.emit t.trace (Trace.Deadlock_victim { txn = victim });
        if victim = txn then begin
          remove_from_queue my_lk my_req;
          Hashtbl.remove t.blocked txn;
          (* removing a queued request can unblock compatible requests
             behind it: re-sweep before giving up the lock record *)
          sweep t my_lk;
          raise (Deadlock txn)
        end
        else begin
          match Hashtbl.find_opt t.blocked victim with
          | None -> () (* already resumed; graph changed, re-check *)
          | Some (vlk, vreq) ->
              remove_from_queue vlk vreq;
              Hashtbl.remove t.blocked victim;
              (match vreq.cancel with
              | Some c -> c (Deadlock victim)
              | None -> ());
              sweep t vlk;
              loop ()
        end
  in
  loop ()

(* --- public operations -------------------------------------------------- *)

let wait t lk req =
  Metrics.inc t.m_wait;
  trace_lock t ev_wait req.rtxn lk req;
  req.since <- Sched.now ();
  if req.convert then lk.queue <- req :: lk.queue
  else lk.queue <- lk.queue @ [ req ];
  Hashtbl.replace t.blocked req.rtxn (lk, req);
  resolve_deadlocks t req.rtxn lk req;
  (* if we were granted while cancelling victims, blocked was cleared and
     wake was not yet set: check before suspending *)
  if Hashtbl.mem t.blocked req.rtxn then
    Sched.suspend (fun wake cancel ->
        (* the sweep may already have granted us between registration and
           suspension; in the cooperative scheduler this cannot happen
           because no yield occurs, so registering here is safe *)
        req.wake <- Some wake;
        req.cancel <- Some cancel);
  Metrics.record t.h_wait_ticks (Sched.now () - req.since)

let request t ~txn name mode ~instant ~block =
  Metrics.inc t.m_acquire;
  if Trace.enabled t.trace then
    Trace.emit t.trace
      (Trace.Lock_acquire
         { txn; name = name_str name; mode = Lock_mode.to_string mode });
  let lk = get_lock t name in
  match owner_of lk txn with
  | Some o when Lock_mode.covers ~held:o.mode ~req:mode ->
      if not instant then o.count <- o.count + 1;
      true
  | existing -> (
      let convert = existing <> None in
      let target =
        match existing with
        | Some o -> Lock_mode.sup o.mode mode
        | None -> mode
      in
      let req =
        {
          rtxn = txn;
          target;
          grant_mode = target;
          convert;
          instant;
          since = 0;
          wake = None;
          cancel = None;
        }
      in
      if grantable_fresh lk req then begin
        apply_grant t lk req;
        drop_if_idle t lk;
        true
      end
      else if not block then begin
        drop_if_idle t lk;
        false
      end
      else begin
        wait t lk req;
        true
      end)

let acquire t ~txn name mode = ignore (request t ~txn name mode ~instant:false ~block:true)

let acquire_instant t ~txn name mode =
  Metrics.inc t.m_instant;
  ignore (request t ~txn name mode ~instant:true ~block:true)

let try_acquire t ~txn name mode = request t ~txn name mode ~instant:false ~block:false

let release_all t ~txn =
  (match Hashtbl.find_opt t.blocked txn with
  | Some (lk, req) ->
      remove_from_queue lk req;
      Hashtbl.remove t.blocked txn;
      sweep t lk
  | None -> ());
  match Hashtbl.find_opt t.txn_locks txn with
  | None -> ()
  | Some tbl ->
      Hashtbl.remove t.txn_locks txn;
      Hashtbl.iter
        (fun name () ->
          match find_lock t name with
          | None -> ()
          | Some lk ->
              lk.owners <- List.filter (fun o -> o.otxn <> txn) lk.owners;
              sweep t lk)
        tbl

let unlocked t name =
  match find_lock t name with
  | None -> true
  | Some lk -> lk.owners = [] && lk.queue = []

let held_mode t ~txn name =
  match find_lock t name with
  | None -> None
  | Some lk -> Option.map (fun o -> o.mode) (owner_of lk txn)

let held t ~txn =
  match Hashtbl.find_opt t.txn_locks txn with
  | None -> []
  | Some tbl ->
      Hashtbl.fold
        (fun name () acc ->
          match find_lock t name with
          | None -> acc
          | Some lk -> (
              match owner_of lk txn with
              | Some o -> (name, o.mode) :: acc
              | None -> acc))
        tbl []

let holders t name =
  match find_lock t name with
  | None -> []
  | Some lk -> List.map (fun o -> (o.otxn, o.mode)) lk.owners

let waiters t name =
  match find_lock t name with
  | None -> []
  | Some lk -> List.map (fun r -> r.rtxn) lk.queue

let lock_count t ~txn =
  match Hashtbl.find_opt t.txn_locks txn with
  | None -> 0
  | Some tbl -> Hashtbl.length tbl

(* Live wait-queue snapshot for sys.lock_waits: one entry per blocked
   request, with the transactions it is blocked by (owners plus
   conflicting earlier waiters — the same edge set deadlock detection
   walks). Pure read: takes no locks and wakes nobody. *)
type wait_info = {
  w_name : Lock_name.t;
  w_txn : int;
  w_mode : Lock_mode.t;
  w_convert : bool;
  w_blockers : int list;
  w_since : int;
}

let waits t =
  Hashtbl.fold
    (fun txn (lk, req) acc ->
      {
        w_name = lk.lname;
        w_txn = txn;
        w_mode = req.target;
        w_convert = req.convert;
        w_blockers = blockers lk req;
        w_since = req.since;
      }
      :: acc)
    t.blocked []
  |> List.sort (fun a b -> compare a.w_txn b.w_txn)

let dump t =
  Name_map.fold
    (fun name lk acc ->
      ( name,
        List.map (fun o -> (o.otxn, o.mode)) lk.owners,
        List.map
          (fun r ->
            (r.rtxn, r.target, r.convert, r.instant))
          lk.queue )
      :: acc)
    t.locks []
