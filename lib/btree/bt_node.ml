module B = Ivdb_util.Bytes_util
module Page = Ivdb_storage.Page

let off_aux = Page.header_size
let off_nkeys = off_aux + 4
let off_free_end = off_nkeys + 2
let off_slots = off_free_end + 2
let max_entry = (Page.size - off_slots) / 4

let init kind p =
  Page.set_ty p kind;
  B.set_u32 p off_aux 0;
  B.set_u16 p off_nkeys 0;
  B.set_u16 p off_free_end Page.size

let init_leaf p = init Page.Bt_leaf p
let init_interior p = init Page.Bt_interior p
let is_leaf p = Page.get_ty p = Page.Bt_leaf
let nkeys p = B.get_u16 p off_nkeys
let get_aux p = B.get_u32 p off_aux
let set_aux p v = B.set_u32 p off_aux v
let free_end p = B.get_u16 p off_free_end
let slot_off p i = B.get_u16 p (off_slots + (2 * i))
let set_slot p i v = B.set_u16 p (off_slots + (2 * i)) v

(* cell accessors -------------------------------------------------------- *)

let key_at p i =
  let off = slot_off p i in
  let klen = B.get_u16 p off in
  if is_leaf p then Bytes.sub_string p (off + 4) klen
  else Bytes.sub_string p (off + 6) klen

let leaf_value_at p i =
  let off = slot_off p i in
  let klen = B.get_u16 p off in
  let vlen = B.get_u16 p (off + 2) in
  Bytes.sub_string p (off + 4 + klen) vlen

let cell_child p i =
  let off = slot_off p i in
  B.get_u32 p (off + 2)

let child_at p i = if i = 0 then get_aux p else cell_child p (i - 1)

let cell_size p i =
  let off = slot_off p i in
  let klen = B.get_u16 p off in
  if is_leaf p then 4 + klen + B.get_u16 p (off + 2) else 6 + klen

(* search ---------------------------------------------------------------- *)

let compare_key p i key =
  let off = slot_off p i in
  let klen = B.get_u16 p off in
  let kpos = if is_leaf p then off + 4 else off + 6 in
  B.compare_sub p kpos klen (Bytes.unsafe_of_string key) 0 (String.length key)

let search p key =
  let n = nkeys p in
  let rec go lo hi =
    (* invariant: keys below lo are < key, keys at/above hi are > key *)
    if lo >= hi then `Gap lo
    else
      let mid = (lo + hi) / 2 in
      let c = compare_key p mid key in
      if c = 0 then `Found mid else if c < 0 then go (mid + 1) hi else go lo mid
  in
  go 0 n

let child_for p key =
  match search p key with
  | `Found i -> child_at p (i + 1)
  | `Gap i -> child_at p i

(* space management ------------------------------------------------------ *)

let contiguous p = free_end p - (off_slots + (2 * nkeys p))

let live_bytes p =
  let total = ref 0 in
  for i = 0 to nkeys p - 1 do
    total := !total + cell_size p i
  done;
  !total

let free_space p =
  let region = Page.size - free_end p in
  contiguous p + (region - live_bytes p)

let raw_cell p i =
  let off = slot_off p i in
  Bytes.sub_string p off (cell_size p i)

let compact p =
  let n = nkeys p in
  let cells = List.init n (fun i -> raw_cell p i) in
  let free = ref Page.size in
  List.iteri
    (fun i c ->
      let len = String.length c in
      free := !free - len;
      Bytes.blit_string c 0 p !free len;
      set_slot p i !free)
    cells;
  B.set_u16 p off_free_end !free

let shift_slots_right p i =
  let n = nkeys p in
  for j = n downto i + 1 do
    set_slot p j (slot_off p (j - 1))
  done

let shift_slots_left p i =
  let n = nkeys p in
  for j = i to n - 2 do
    set_slot p j (slot_off p (j + 1))
  done

let insert_cell p i cell =
  let len = String.length cell in
  if free_space p < len + 2 then false
  else begin
    if contiguous p < len + 2 then compact p;
    shift_slots_right p i;
    B.set_u16 p off_nkeys (nkeys p + 1);
    let off = free_end p - len in
    B.set_u16 p off_free_end off;
    Bytes.blit_string cell 0 p off len;
    set_slot p i off;
    true
  end

let leaf_cell key value =
  let klen = String.length key and vlen = String.length value in
  let b = Bytes.create (4 + klen + vlen) in
  B.set_u16 b 0 klen;
  B.set_u16 b 2 vlen;
  Bytes.blit_string key 0 b 4 klen;
  Bytes.blit_string value 0 b (4 + klen) vlen;
  Bytes.to_string b

let interior_cell key child =
  let klen = String.length key in
  let b = Bytes.create (6 + klen) in
  B.set_u16 b 0 klen;
  B.set_u32 b 2 child;
  Bytes.blit_string key 0 b 6 klen;
  Bytes.to_string b

let leaf_insert p i key value = insert_cell p i (leaf_cell key value)
let interior_insert p i key child = insert_cell p i (interior_cell key child)

let delete_at p i =
  shift_slots_left p i;
  B.set_u16 p off_nkeys (nkeys p - 1)

let leaf_delete p i = delete_at p i

let leaf_replace p i value =
  let off = slot_off p i in
  let klen = B.get_u16 p off in
  let vlen = B.get_u16 p (off + 2) in
  if String.length value = vlen then begin
    Bytes.blit_string value 0 p (off + 4 + klen) (String.length value);
    true
  end
  else begin
    (* precheck so that failure leaves the node untouched: deleting the old
       cell reclaims its bytes and frees a slot for the reinsertion *)
    let reclaimed = 4 + klen + vlen + 2 in
    let need = 4 + klen + String.length value + 2 in
    if free_space p + reclaimed < need then false
    else begin
      let key = key_at p i in
      delete_at p i;
      let ok = insert_cell p i (leaf_cell key value) in
      assert ok;
      true
    end
  end

(* wholesale rebuilds (splits) ------------------------------------------- *)

let leaf_cells p = List.init (nkeys p) (fun i -> (key_at p i, leaf_value_at p i))

let leaf_rebuild p cells ~next =
  init_leaf p;
  set_aux p next;
  List.iteri
    (fun i (k, v) ->
      if not (leaf_insert p i k v) then
        invalid_arg "Bt_node.leaf_rebuild: does not fit")
    cells

let interior_cells p =
  (get_aux p, List.init (nkeys p) (fun i -> (key_at p i, cell_child p i)))

let interior_rebuild p child0 seps =
  init_interior p;
  set_aux p child0;
  List.iteri
    (fun i (k, c) ->
      if not (interior_insert p i k c) then
        invalid_arg "Bt_node.interior_rebuild: does not fit")
    seps

let interior_delete p i = delete_at p i
