module Bufpool = Ivdb_storage.Bufpool
module Page = Ivdb_storage.Page
module Disk = Ivdb_storage.Disk
module Txn = Ivdb_txn.Txn
module Log_record = Ivdb_wal.Log_record

exception Duplicate_key of string

type t = { mgr : Txn.mgr; idx : int; root_pid : int }

let root t = t.root_pid
let index_id t = t.idx
let pool t = Txn.pool t.mgr

(* Interior nodes are considered full when they might not accommodate one
   more worst-case separator; splitting preemptively on the way down
   guarantees parents always have room for the separator a child split
   promotes. *)
let interior_full p = Bt_node.free_space p < Bt_node.max_entry + 8 + 2

let create mgr ~index_id =
  let stx = Txn.begin_system mgr in
  let pid = Disk.alloc_page (Txn.disk mgr) in
  let (), d = Bufpool.update (Txn.pool mgr) pid (fun p -> Bt_node.init_leaf p) in
  Txn.log_update mgr stx ~undo:Log_record.No_undo [ (pid, d) ];
  Txn.commit mgr stx;
  { mgr; idx = index_id; root_pid = pid }

let attach mgr ~index_id ~root = { mgr; idx = index_id; root_pid = root }

(* --- descent ------------------------------------------------------------ *)

let rec find_leaf t pid key =
  let next =
    Bufpool.read (pool t) pid (fun p ->
        if Bt_node.is_leaf p then None else Some (Bt_node.child_for p key))
  in
  match next with None -> pid | Some child -> find_leaf t child key

let leaf_for t key = find_leaf t t.root_pid key

(* --- structure modifications (system transactions) ---------------------- *)

(* Split point by accumulated cell bytes, clamped so both halves are
   non-empty. *)
let split_point sizes =
  let total = List.fold_left ( + ) 0 sizes in
  let n = List.length sizes in
  let rec go i acc = function
    | [] -> i
    | s :: rest -> if acc + s >= total / 2 then i else go (i + 1) (acc + s) rest
  in
  max 1 (min (n - 1) (go 0 0 sizes))

let split_leaf t stx ~parent ~pid =
  let pl = pool t in
  let disk = Txn.disk t.mgr in
  let cells, next = Bufpool.read pl pid (fun p -> (Bt_node.leaf_cells p, Bt_node.get_aux p)) in
  let sizes = List.map (fun (k, v) -> 4 + String.length k + String.length v) cells in
  let m = split_point sizes in
  let left = List.filteri (fun i _ -> i < m) cells in
  let right = List.filteri (fun i _ -> i >= m) cells in
  let sep = fst (List.nth cells m) in
  let rpid = Disk.alloc_page disk in
  let (), d_right =
    Bufpool.update pl rpid (fun p -> Bt_node.leaf_rebuild p right ~next)
  in
  let (), d_left =
    Bufpool.update pl pid (fun p -> Bt_node.leaf_rebuild p left ~next:rpid)
  in
  let (), d_parent =
    Bufpool.update pl parent (fun p ->
        match Bt_node.search p sep with
        | `Found _ -> invalid_arg "Btree.split_leaf: separator already present"
        | `Gap i ->
            if not (Bt_node.interior_insert p i sep rpid) then
              invalid_arg "Btree.split_leaf: parent full")
  in
  Txn.log_update t.mgr stx ~undo:Log_record.No_undo
    [ (rpid, d_right); (pid, d_left); (parent, d_parent) ]

let split_interior t stx ~parent ~pid =
  let pl = pool t in
  let disk = Txn.disk t.mgr in
  let child0, seps = Bufpool.read pl pid (fun p -> Bt_node.interior_cells p) in
  let sizes = List.map (fun (k, _) -> 6 + String.length k) seps in
  let m = split_point sizes in
  let sep_up, right_child0 = List.nth seps m in
  let left = List.filteri (fun i _ -> i < m) seps in
  let right = List.filteri (fun i _ -> i > m) seps in
  let rpid = Disk.alloc_page disk in
  let (), d_right =
    Bufpool.update pl rpid (fun p -> Bt_node.interior_rebuild p right_child0 right)
  in
  let (), d_left =
    Bufpool.update pl pid (fun p -> Bt_node.interior_rebuild p child0 left)
  in
  let (), d_parent =
    Bufpool.update pl parent (fun p ->
        match Bt_node.search p sep_up with
        | `Found _ -> invalid_arg "Btree.split_interior: separator already present"
        | `Gap i ->
            if not (Bt_node.interior_insert p i sep_up rpid) then
              invalid_arg "Btree.split_interior: parent full")
  in
  Txn.log_update t.mgr stx ~undo:Log_record.No_undo
    [ (rpid, d_right); (pid, d_left); (parent, d_parent) ]

(* The root's page id is pinned: splitting it moves both halves into fresh
   children and turns the root into a one-separator interior node. *)
let split_root t stx =
  let pl = pool t in
  let disk = Txn.disk t.mgr in
  let is_leaf = Bufpool.read pl t.root_pid (fun p -> Bt_node.is_leaf p) in
  let lpid = Disk.alloc_page disk in
  let rpid = Disk.alloc_page disk in
  if is_leaf then begin
    let cells, next =
      Bufpool.read pl t.root_pid (fun p -> (Bt_node.leaf_cells p, Bt_node.get_aux p))
    in
    let sizes = List.map (fun (k, v) -> 4 + String.length k + String.length v) cells in
    let m = split_point sizes in
    let left = List.filteri (fun i _ -> i < m) cells in
    let right = List.filteri (fun i _ -> i >= m) cells in
    let sep = fst (List.nth cells m) in
    let (), d_l = Bufpool.update pl lpid (fun p -> Bt_node.leaf_rebuild p left ~next:rpid) in
    let (), d_r = Bufpool.update pl rpid (fun p -> Bt_node.leaf_rebuild p right ~next) in
    let (), d_root =
      Bufpool.update pl t.root_pid (fun p -> Bt_node.interior_rebuild p lpid [ (sep, rpid) ])
    in
    Txn.log_update t.mgr stx ~undo:Log_record.No_undo
      [ (lpid, d_l); (rpid, d_r); (t.root_pid, d_root) ]
  end
  else begin
    let child0, seps = Bufpool.read pl t.root_pid (fun p -> Bt_node.interior_cells p) in
    let sizes = List.map (fun (k, _) -> 6 + String.length k) seps in
    let m = split_point sizes in
    let sep_up, right_child0 = List.nth seps m in
    let left = List.filteri (fun i _ -> i < m) seps in
    let right = List.filteri (fun i _ -> i > m) seps in
    let (), d_l = Bufpool.update pl lpid (fun p -> Bt_node.interior_rebuild p child0 left) in
    let (), d_r =
      Bufpool.update pl rpid (fun p -> Bt_node.interior_rebuild p right_child0 right)
    in
    let (), d_root =
      Bufpool.update pl t.root_pid (fun p -> Bt_node.interior_rebuild p lpid [ (sep_up, rpid) ])
    in
    Txn.log_update t.mgr stx ~undo:Log_record.No_undo
      [ (lpid, d_l); (rpid, d_r); (t.root_pid, d_root) ]
  end

(* Make room on the path to [key] so that a leaf entry of [need] bytes can
   be inserted: one system transaction, splitting top-down. *)
let make_room t ~key ~need =
  let pl = pool t in
  let stx = Txn.begin_system t.mgr in
  let root_needs_split =
    Bufpool.read pl t.root_pid (fun p ->
        if Bt_node.is_leaf p then Bt_node.free_space p < need + 2
        else interior_full p)
  in
  if root_needs_split then split_root t stx;
  let rec descend pid =
    let action =
      Bufpool.read pl pid (fun p ->
          if Bt_node.is_leaf p then `Done
          else
            let child = Bt_node.child_for p key in
            let child_full =
              Bufpool.read pl child (fun c ->
                  if Bt_node.is_leaf c then Bt_node.free_space c < need + 2
                  else interior_full c)
            in
            let child_is_leaf = Bufpool.read pl child (fun c -> Bt_node.is_leaf c) in
            if child_full then `Split (child, child_is_leaf) else `Descend child)
    in
    match action with
    | `Done -> ()
    | `Descend child -> descend child
    | `Split (child, child_is_leaf) ->
        if child_is_leaf then split_leaf t stx ~parent:pid ~pid:child
        else split_interior t stx ~parent:pid ~pid:child;
        (* re-route: the child for [key] may now be the new sibling *)
        let child' = Bufpool.read pl pid (fun p -> Bt_node.child_for p key) in
        descend child'
  in
  descend t.root_pid;
  Txn.commit t.mgr stx;
  Ivdb_util.Metrics.incr (Txn.metrics t.mgr) "btree.split"

(* --- point operations ---------------------------------------------------- *)

let entry_size key value = 4 + String.length key + String.length value

let check_entry key value =
  if entry_size key value > Bt_node.max_entry then
    invalid_arg "Btree: entry exceeds max size"

let rec insert_apply t ~key ~value =
  let leaf = leaf_for t key in
  let status, diff =
    Bufpool.update (pool t) leaf (fun p ->
        match Bt_node.search p key with
        | `Found _ -> `Dup
        | `Gap i -> if Bt_node.leaf_insert p i key value then `Ok else `Full)
  in
  match status with
  | `Ok -> [ (leaf, diff) ]
  | `Dup -> raise (Duplicate_key key)
  | `Full ->
      make_room t ~key ~need:(entry_size key value);
      insert_apply t ~key ~value

(* MVCC: every logged (transactional) entry mutation records the key's
   before-image against the transaction, so snapshot readers can resolve
   the key to its value as of their begin stamp. The _raw variants (undo
   execution, structure modifications) deliberately do not — undo restores
   storage to exactly the before-image already recorded. *)
let record_version txn t ~key before =
  Ivdb_txn.Mvcc.record_write (Txn.mvcc t.mgr) ~txn:(Txn.id txn) ~obj:t.idx ~key
    ~before

let insert txn t ~key ~value =
  check_entry key value;
  let diffs = insert_apply t ~key ~value in
  record_version txn t ~key None;
  Txn.log_update t.mgr txn
    ~undo:(Log_record.Undo_bt_insert { index = t.idx; key })
    diffs

let insert_raw t ~key ~value =
  check_entry key value;
  insert_apply t ~key ~value

let delete_apply t ~key =
  let leaf = leaf_for t key in
  let status, diff =
    Bufpool.update (pool t) leaf (fun p ->
        match Bt_node.search p key with
        | `Found i ->
            let v = Bt_node.leaf_value_at p i in
            Bt_node.leaf_delete p i;
            `Deleted v
        | `Gap _ -> `Missing)
  in
  match status with
  | `Deleted v -> (v, [ (leaf, diff) ])
  | `Missing -> raise Not_found

let delete txn t ~key =
  let value, diffs = delete_apply t ~key in
  record_version txn t ~key (Some value);
  Txn.log_update t.mgr txn
    ~undo:(Log_record.Undo_bt_delete { index = t.idx; key; value })
    diffs

let delete_raw t ~key = snd (delete_apply t ~key)

let rec update_apply t ~key ~value =
  let leaf = leaf_for t key in
  let status, diff =
    Bufpool.update (pool t) leaf (fun p ->
        match Bt_node.search p key with
        | `Found i ->
            let before = Bt_node.leaf_value_at p i in
            if Bt_node.leaf_replace p i value then `Ok before else `Full
        | `Gap _ -> `Missing)
  in
  match status with
  | `Ok before -> (before, [ (leaf, diff) ])
  | `Missing -> raise Not_found
  | `Full ->
      make_room t ~key ~need:(entry_size key value);
      update_apply t ~key ~value

let update ?undo txn t ~key ~value =
  check_entry key value;
  let before, diffs = update_apply t ~key ~value in
  (* An escrow increment's stored before-image includes *other* in-flight
     transactions' uncommitted deltas, so it is not a committed value and
     must not enter a version chain; the committed pre-image is instead
     reconstructed from the in-flight registry when the increment commits
     (Database's end hook). *)
  (match undo with
  | Some (Log_record.Undo_escrow _) -> ()
  | Some _ | None -> record_version txn t ~key (Some before));
  let undo =
    match undo with
    | Some u -> u
    | None -> Log_record.Undo_bt_update { index = t.idx; key; before }
  in
  Txn.log_update t.mgr txn ~undo diffs

let update_raw t ~key ~value =
  check_entry key value;
  snd (update_apply t ~key ~value)

let search t key =
  let leaf = leaf_for t key in
  Bufpool.read (pool t) leaf (fun p ->
      match Bt_node.search p key with
      | `Found i -> Some (Bt_node.leaf_value_at p i)
      | `Gap _ -> None)

(* --- ordered access ------------------------------------------------------ *)

type cursor = { cpid : int; cslot : int; clsn : int64; clast : string }

let entry_at t pid slot =
  Bufpool.read (pool t) pid (fun p ->
      (Bt_node.key_at p slot, Bt_node.leaf_value_at p slot, Page.get_lsn p))

(* Position at the first entry >= key, walking right past empty leaves. *)
let rec position t pid key =
  let outcome =
    Bufpool.read (pool t) pid (fun p ->
        let n = Bt_node.nkeys p in
        let i = match Bt_node.search p key with `Found i -> i | `Gap i -> i in
        if i < n then `Here i else `Chain (Bt_node.get_aux p))
  in
  match outcome with
  | `Here i -> Some (pid, i)
  | `Chain 0 -> None
  | `Chain next -> position t next key

let seek t key =
  match position t (leaf_for t key) key with
  | None -> None
  | Some (pid, slot) ->
      let k, v, lsn = entry_at t pid slot in
      Some (k, v, { cpid = pid; cslot = slot; clsn = lsn; clast = k })

(* Strictly-greater variant used by next-key probes and cursor restarts. *)
let succ_of t key =
  let leaf = leaf_for t key in
  let rec from pid idx_opt =
    let outcome =
      Bufpool.read (pool t) pid (fun p ->
          let n = Bt_node.nkeys p in
          let i =
            match idx_opt with
            | Some i -> i
            | None -> (
                match Bt_node.search p key with `Found i -> i + 1 | `Gap i -> i)
          in
          if i < n then `Here i else `Chain (Bt_node.get_aux p))
    in
    match outcome with
    | `Here i -> Some (pid, i)
    | `Chain 0 -> None
    | `Chain next -> from next (Some 0)
  in
  from leaf None

let next_key t key =
  match succ_of t key with
  | None -> None
  | Some (pid, slot) ->
      let k, v, _ = entry_at t pid slot in
      Some (k, v)

let min_entry t =
  match seek t "" with Some (k, v, _) -> Some (k, v) | None -> None

let cursor_next t c =
  (* fast path: same unmodified leaf *)
  let fast =
    Bufpool.read (pool t) c.cpid (fun p ->
        if Page.get_lsn p = c.clsn && c.cslot + 1 < Bt_node.nkeys p then
          Some (Bt_node.key_at p (c.cslot + 1), Bt_node.leaf_value_at p (c.cslot + 1))
        else None)
  in
  match fast with
  | Some (k, v) ->
      Some (k, v, { cpid = c.cpid; cslot = c.cslot + 1; clsn = c.clsn; clast = k })
  | None -> (
      (* the leaf changed (or is exhausted): reposition by key *)
      match succ_of t c.clast with
      | None -> None
      | Some (pid, slot) ->
          let k, v, lsn = entry_at t pid slot in
          Some (k, v, { cpid = pid; cslot = slot; clsn = lsn; clast = k }))

let iter t f =
  let rec go = function
    | None -> ()
    | Some (k, v, c) ->
        f k v;
        go (cursor_next t c)
  in
  go (seek t "")

let height t =
  let rec go pid acc =
    let next =
      Bufpool.read (pool t) pid (fun p ->
          if Bt_node.is_leaf p then None else Some (Bt_node.child_at p 0))
    in
    match next with None -> acc | Some c -> go c (acc + 1)
  in
  go t.root_pid 1

let entry_count t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

(* --- vacuum: reclaim the debris of lazy deletion -------------------------- *)

(* One system transaction per pass. A pass walks every interior node and
   drops child pointers to empty leaves and to separator-less interior
   nodes (replacing the latter by their only child); freed pages are
   re-typed Free. Afterwards the leaf chain is re-linked in key order and a
   separator-less root is collapsed into its single child (the root's page
   id is pinned, so the child's contents move up). Passes repeat until a
   fixpoint, which bounds to the tree height. *)
let vacuum t =
  let pl = pool t in
  let freed = ref 0 in
  let read_node pid f = Bufpool.read pl pid f in
  let is_removable pid =
    read_node pid (fun p ->
        if Bt_node.is_leaf p then
          if Bt_node.nkeys p = 0 then `Empty_leaf else `Keep
        else if Bt_node.nkeys p = 0 then `Forward (Bt_node.get_aux p)
        else `Keep)
  in
  let pass stx =
    let changed = ref false in
    let free_page pid =
      let (), d = Bufpool.update pl pid (fun p -> Page.set_ty p Page.Free) in
      Txn.log_update t.mgr stx ~undo:Log_record.No_undo [ (pid, d) ];
      incr freed;
      changed := true
    in
    let rec walk pid =
      let is_interior = read_node pid (fun p -> not (Bt_node.is_leaf p)) in
      if is_interior then begin
        let child0, seps = read_node pid (fun p -> Bt_node.interior_cells p) in
        (* children first, so collapses propagate bottom-up across passes *)
        List.iter walk (child0 :: List.map snd seps);
        let keep_or_forward c =
          match is_removable c with
          | `Keep -> `Keep c
          | `Empty_leaf -> `Drop
          | `Forward c' -> `Forward c'
        in
        let (), d =
          Bufpool.update pl pid (fun p ->
              (* separators right-to-left so slot indexes stay valid *)
              let n = Bt_node.nkeys p in
              for i = n - 1 downto 0 do
                let c = Bt_node.child_at p (i + 1) in
                match keep_or_forward c with
                | `Keep _ -> ()
                | `Drop ->
                    Bt_node.interior_delete p i;
                    free_page c
                | `Forward c' ->
                    (* replace the pointer in place: rebuild the separator *)
                    let k = Bt_node.key_at p i in
                    Bt_node.interior_delete p i;
                    ignore (Bt_node.interior_insert p i k c');
                    free_page c
              done;
              (* the aux (leftmost) child *)
              let c0 = Bt_node.get_aux p in
              match keep_or_forward c0 with
              | `Keep _ -> ()
              | `Forward c' ->
                  Bt_node.set_aux p c';
                  free_page c0
              | `Drop ->
                  if Bt_node.nkeys p > 0 then begin
                    (* promote the first separator's child to aux *)
                    let c1 = Bt_node.child_at p 1 in
                    Bt_node.interior_delete p 0;
                    Bt_node.set_aux p c1;
                    free_page c0
                  end
                  (* a node whose only child is an empty leaf keeps it: the
                     tree retains at least one leaf *))
        in
        Txn.log_update t.mgr stx ~undo:Log_record.No_undo [ (pid, d) ]
      end
    in
    walk t.root_pid;
    (* root collapse: a separator-less interior root absorbs its only child
       (the root page id is pinned) *)
    let collapse =
      read_node t.root_pid (fun p ->
          if (not (Bt_node.is_leaf p)) && Bt_node.nkeys p = 0 then
            Some (Bt_node.get_aux p)
          else None)
    in
    (match collapse with
    | Some child ->
        let child_is_leaf, cells, caux, cseps =
          read_node child (fun p ->
              if Bt_node.is_leaf p then (true, Bt_node.leaf_cells p, Bt_node.get_aux p, (0, []))
              else (false, [], 0, Bt_node.interior_cells p))
        in
        let (), d_root =
          Bufpool.update pl t.root_pid (fun p ->
              if child_is_leaf then Bt_node.leaf_rebuild p cells ~next:caux
              else
                let c0, seps = cseps in
                Bt_node.interior_rebuild p c0 seps)
        in
        Txn.log_update t.mgr stx ~undo:Log_record.No_undo [ (t.root_pid, d_root) ];
        free_page child
    | None -> ());
    !changed
  in
  let relink_chain stx =
    (* collect remaining leaves in key order by structural descent *)
    let rec leaves pid =
      read_node pid (fun p ->
          if Bt_node.is_leaf p then [ pid ]
          else
            List.concat_map leaves
              (let c0, seps = Bt_node.interior_cells p in
               c0 :: List.map snd seps))
    in
    let ordered = leaves t.root_pid in
    let rec relink = function
      | [] -> ()
      | [ last ] ->
          let (), d = Bufpool.update pl last (fun p -> Bt_node.set_aux p 0) in
          Txn.log_update t.mgr stx ~undo:Log_record.No_undo [ (last, d) ]
      | a :: (b :: _ as rest) ->
          let (), d = Bufpool.update pl a (fun p -> Bt_node.set_aux p b) in
          Txn.log_update t.mgr stx ~undo:Log_record.No_undo [ (a, d) ];
          relink rest
    in
    relink ordered
  in
  let stx = Txn.begin_system t.mgr in
  let rec fixpoint n = if n > 0 && pass stx then fixpoint (n - 1) in
  fixpoint 32;
  relink_chain stx;
  Txn.commit t.mgr stx;
  if !freed > 0 then
    Ivdb_util.Metrics.add (Txn.metrics t.mgr) "btree.vacuum_freed" !freed;
  !freed
