(* Wire front-end for the shard coordinator: the same handshake and
   request/response protocol as Ivdb_server.Server, but every Exec is
   answered by routing the statement through Coord.exec instead of a
   local engine. This is what puts the coordinator-resident catalogs
   (sys.gtxns, sys.coord_shards, sys.cluster_metrics) and the
   cluster-wide fan-out behind an ordinary client connection.

   One deliberate simplification: the coordinator owns a single
   distributed-transaction session (one BEGIN/COMMIT state spanning the
   shards), and every wire session shares it. Concurrent clients are
   accepted, but their transactions interleave on that shared state —
   the front-end is an operator console and test surface, not a
   multi-tenant endpoint. *)

module Wire = Ivdb_wire.Wire
module Transport = Ivdb_transport.Transport
module Client = Ivdb_client.Client
module Sql = Ivdb_sql.Sql
module Metrics = Ivdb_util.Metrics
module Sched = Ivdb_sched.Sched

type t = {
  name : string;
  coord : Coord.t;
  listener : Transport.listener;
  mutable next_session : int;
}

let create ?(name = "ivdb-coord") coord listener =
  { name; coord; listener; next_session = 1 }

let drain t = t.listener.Transport.stop ()
let draining t = t.listener.Transport.stopped ()

(* Map one routed statement to its response frame. The incoming Exec's
   client rid is ignored: the coordinator assigns its own correlation id
   per statement (Coord.last_rid) and stamps it onto every frame it
   fans out, so the shard-side records join to the coordinator
   statement, not to the console client's numbering. *)
let exec_frame coord ~seq sql =
  let txn_open () = Coord.in_transaction coord in
  match Coord.exec coord sql with
  | Sql.Rows { header; rows } -> Wire.Rows { seq; header; rows }
  | Sql.Affected n -> Wire.Affected { seq; n }
  | Sql.Message text -> Wire.Msg { seq; text }
  | exception Coord.Coord_error text ->
      Wire.Err { seq; code = E_sql; text; txn_open = txn_open () }
  | exception Sql.Sql_error text ->
      Wire.Err { seq; code = E_sql; text; txn_open = txn_open () }
  | exception Ivdb_sql.Sql_parser.Parse_error text ->
      Wire.Err { seq; code = E_parse; text; txn_open = txn_open () }
  | exception Ivdb_sql.Sql_lexer.Lex_error text ->
      Wire.Err { seq; code = E_parse; text; txn_open = txn_open () }
  | exception Client.Server_error { code; text; _ } ->
      (* a shard refused the routed statement: relay its code verbatim,
         but report the coordinator's transaction state, not the
         shard's *)
      Wire.Err { seq; code; text; txn_open = txn_open () }
  | exception Client.Disconnected text ->
      Wire.Err
        {
          seq;
          code = E_sql;
          text = "shard unreachable: " ^ text;
          txn_open = txn_open ();
        }
  | exception Client.Server_busy { retry_ticks } ->
      Wire.Busy { retry_ticks }

let session_loop t io =
  let rec loop () =
    match Transport.Frame_io.recv io with
    | None | Some Wire.Bye -> ()
    | Some (Wire.Exec { seq; rid = _; sql }) ->
        Transport.Frame_io.send io (exec_frame t.coord ~seq sql);
        loop ()
    | Some (Wire.Metrics_req { seq }) ->
        Transport.Frame_io.send io
          (Wire.Msg { seq; text = Metrics.to_prometheus (Coord.metrics t.coord) });
        loop ()
    | Some _ ->
        Transport.Frame_io.send io
          (Wire.Err
             {
               seq = 0;
               code = E_protocol;
               text = "unexpected frame";
               txn_open = Coord.in_transaction t.coord;
             });
        loop ()
  in
  loop ()

let handshake t io =
  match Transport.Frame_io.recv io with
  | Some (Wire.Hello { version; _ }) when version = Wire.version ->
      if draining t then begin
        Transport.Frame_io.send io
          (Wire.Err
             {
               seq = 0;
               code = E_draining;
               text = "coordinator is draining";
               txn_open = false;
             });
        Transport.Frame_io.send io Wire.Bye;
        false
      end
      else begin
        let session = t.next_session in
        t.next_session <- session + 1;
        Transport.Frame_io.send io
          (Wire.Welcome { version = Wire.version; server = t.name; session });
        true
      end
  | Some (Wire.Hello { version; _ }) ->
      Transport.Frame_io.send io
        (Wire.Err
           {
             seq = 0;
             code = E_protocol;
             text = Printf.sprintf "unsupported protocol version %d" version;
             txn_open = false;
           });
      false
  | None -> false
  | Some _ | (exception Transport.Corrupt _) ->
      Transport.Frame_io.send io
        (Wire.Err
           {
             seq = 0;
             code = E_protocol;
             text = "expected Hello";
             txn_open = false;
           });
      false

let session_fiber t conn =
  let io = Transport.Frame_io.create conn in
  (match handshake t io with
  | true -> ( try session_loop t io with Transport.Corrupt _ -> ())
  | false | (exception Transport.Corrupt _) -> ());
  conn.Transport.close ()

let serve t =
  ignore
    (Sched.spawn (fun () ->
         let rec loop () =
           match t.listener.Transport.accept () with
           | Some conn ->
               ignore (Sched.spawn (fun () -> session_fiber t conn));
               loop ()
           | None ->
               if not (t.listener.Transport.stopped ()) then begin
                 Sched.yield ();
                 loop ()
               end
         in
         loop ()))
