(* The sharding coordinator: hash-partitions base tables by their first
   column ("the primary key") over N engine instances and drives
   two-phase commit for transactions that touch more than one of them.

   The coordinator owns no data. It parses each statement just far
   enough to route it: DDL broadcasts, an INSERT splits its VALUES rows
   by partition, a WHERE pk = lit pins DML/SELECT to the owning shard,
   everything else fans out. Escrow view deltas whose group lives on a
   different shard than the base row are diverted by the owning engine
   into a per-transaction outbound buffer (Database.route_remote); at
   commit the coordinator collects them over sys.outbound and ships each
   batch inside the Prepare of the shard that owns the group, so the
   remote delta commits or dies atomically with the global decision.

   Durability follows presumed abort with a forced begin record: before
   the first Prepare message the participant set is forced to the
   coordinator's own WAL (a Log_record.Prepare with the ids in the
   payload), and the decision is forced before the first Decide message.
   Recovery therefore re-delivers the logged decision for every started
   transaction and presumed-aborts the rest; participants answer
   retransmits idempotently from their dedupe tables, which is also what
   makes the coordinator's reconnect-and-resend retry safe. *)

module A = Ivdb_sql.Sql_ast
module Sql = Ivdb_sql.Sql
module Sql_parser = Ivdb_sql.Sql_parser
module Sys_tables = Ivdb_sql.Sys_tables
module Client = Ivdb_client.Client
module Database = Ivdb.Database
module Transport = Ivdb_transport.Transport
module Wal = Ivdb_wal.Wal
module Log_record = Ivdb_wal.Log_record
module Fault = Ivdb_storage.Fault
module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace
module Sched = Ivdb_sched.Sched
module Value = Ivdb_relation.Value
module Row = Ivdb_relation.Row
module B = Ivdb_util.Bytes_util

exception Coord_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Coord_error s)) fmt

(* --- routing ---------------------------------------------------------- *)

let hash_string s = B.fnv1a32_string s 0 (String.length s)
let route_key ~shards key = hash_string key mod shards
let route_value ~shards v = route_key ~shards (Value.to_string v)

(* View groups route by their encoded group key — a different key space
   than base-row primary keys, but all that matters is that every engine
   and the coordinator agree on the owner of a group. *)
let route_group ~shards ~view:_ ~key = route_key ~shards key

let configure_shard db ~shard ~shards =
  Database.set_shard db ~shard ~shards;
  Database.set_delta_router db (fun ~view ~key -> route_group ~shards ~view ~key)

(* --- coordinator state ------------------------------------------------ *)

type stats = {
  single_shard_commits : int;
  cross_shard_commits : int;
  aborts : int;
  prepares_sent : int;
  decides_sent : int;
}

(* One global transaction as sys.gtxns sees it: live entries sit in a
   table keyed by gtxn, terminal ones move to a bounded recent list.
   Pure bookkeeping — never gated, so it cannot shift the crash-sweep
   action numbering. *)
type ginfo = {
  gi_gtxn : string;
  gi_participants : int list;
  mutable gi_phase : string; (* preparing | deciding | committed | aborted *)
  mutable gi_votes : (int * string) list; (* shard -> yes / no / dead *)
  mutable gi_phase_tick : int; (* tick the current phase was entered *)
}

let recent_cap = 32

(* Per-shard health as seen from the coordinator (sys.coord_shards). *)
type shard_health = {
  mutable sh_last_contact : int; (* tick of the last successful round trip *)
  mutable sh_prepares : int;
  mutable sh_decides : int;
  mutable sh_dedupe_hits : int; (* Prepare answered from the dedupe tables *)
}

type t = {
  cname : string;
  clients : Client.t array;
  cwal : Wal.t;
  metrics : Metrics.t;
  ctrace : Trace.t;
  mutable next_gid : int;
  (* coordinator-assigned correlation id: one per routed statement,
     stamped on every shard-bound frame that statement causes *)
  mutable next_rid : int;
  mutable cur_rid : int;
  started : (string, int list) Hashtbl.t; (* gtxn -> participant shards *)
  decided : (string, bool) Hashtbl.t;
  pending : (string, int list) Hashtbl.t; (* decided, but shards still owed it *)
  live : (string, ginfo) Hashtbl.t; (* in-flight gtxns, for sys.gtxns *)
  mutable recent : ginfo list; (* newest first, capped at recent_cap *)
  health : shard_health array;
  pk_cols : (string, string) Hashtbl.t; (* table -> partition column *)
  views : (string, unit) Hashtbl.t; (* view names seen in DDL *)
  mutable in_txn : bool;
  mutable open_on : int list; (* shards holding this txn's server session txn *)
  (* a shard connection died mid-statement inside this transaction: the
     shard's session transaction was rolled back by the disconnect, so
     the global transaction can only abort *)
  mutable poisoned : bool;
  (* deterministic crash injection: every 2PC protocol action (log force,
     Prepare send, Decide send) bumps the counter; reaching the armed
     value raises Fault.Crash_point before the action happens *)
  mutable actions : int;
  mutable crash_at : int option;
  mutable s_single : int;
  mutable s_cross : int;
  mutable s_aborts : int;
  mutable s_prepares : int;
  mutable s_decides : int;
  (* typed per-phase 2PC metric handles, resolved once at create *)
  m_votes_yes : Metrics.counter;
  m_votes_no : Metrics.counter;
  m_votes_dead : Metrics.counter;
  m_fast : Metrics.counter;
  m_2pc : Metrics.counter;
  m_abort_vote : Metrics.counter;
  m_abort_dead : Metrics.counter;
  m_abort_poisoned : Metrics.counter;
  m_redeliver : Metrics.counter;
  m_indoubt : Metrics.counter; (* gauge: gtxns with undelivered decisions *)
  h_prepare : Metrics.hist; (* prepare fan-out ticks per 2PC round *)
  h_force : Metrics.hist; (* decision WAL-force ticks *)
  h_decide : Metrics.hist; (* decide fan-out ticks per 2PC round *)
}

let parse_gid cname gtxn =
  let p = cname ^ ":" in
  let pl = String.length p in
  if String.length gtxn > pl && String.sub gtxn 0 pl = p then
    int_of_string_opt (String.sub gtxn pl (String.length gtxn - pl))
  else None

(* Routing metadata is derived from DDL; the statements themselves are
   logged to the coordinator's WAL so a restarted coordinator re-derives
   it (the pk-column guard and pinning must survive a crash, see
   [scan_wal]). Anything unparseable is ignored — the log is ours. *)
let register_ddl c sql =
  match Sql_parser.parse sql with
  | A.Create_table { t_name; cols } -> (
      match cols with
      | first :: _ -> Hashtbl.replace c.pk_cols t_name first.A.cd_name
      | [] -> ())
  | A.Create_view { v_name; _ } -> Hashtbl.replace c.views v_name ()
  | _ -> ()
  | exception _ -> ()

(* --- sys.gtxns bookkeeping -------------------------------------------- *)

let gtxn_begin c ~gtxn ~participants =
  let gi =
    {
      gi_gtxn = gtxn;
      gi_participants = participants;
      gi_phase = "preparing";
      gi_votes = [];
      gi_phase_tick = Sched.now ();
    }
  in
  Hashtbl.replace c.live gtxn gi;
  gi

let gtxn_phase gi phase =
  gi.gi_phase <- phase;
  gi.gi_phase_tick <- Sched.now ()

let gtxn_vote gi shard vote = gi.gi_votes <- gi.gi_votes @ [ (shard, vote) ]

let gtxn_done c gtxn committed =
  match Hashtbl.find_opt c.live gtxn with
  | None -> ()
  | Some gi ->
      gtxn_phase gi (if committed then "committed" else "aborted");
      Hashtbl.remove c.live gtxn;
      c.recent <-
        gi :: (if List.length c.recent >= recent_cap then
                 List.filteri (fun i _ -> i < recent_cap - 1) c.recent
               else c.recent)

let scan_wal c =
  Wal.iter_stable c.cwal (fun r ->
      match r.Log_record.body with
      | Log_record.Ddl sql -> register_ddl c sql
      | Log_record.Prepare { gtxn; deltas } ->
          let participants =
            try List.map int_of_string (String.split_on_char ',' deltas)
            with Failure _ -> fail "corrupt participant list for %s" gtxn
          in
          Hashtbl.replace c.started gtxn participants;
          (* rebuild the sys.gtxns view of the log: started and (until a
             Decision record follows) in-doubt *)
          ignore (gtxn_begin c ~gtxn ~participants);
          (match parse_gid c.cname gtxn with
          | Some n -> c.next_gid <- max c.next_gid (n + 1)
          | None -> ())
      | Log_record.Decision { gtxn; committed } ->
          Hashtbl.replace c.decided gtxn committed;
          gtxn_done c gtxn committed
      | _ -> ())

let create ?(name = "coord") ?wal ?metrics ?trace dialers =
  if Array.length dialers = 0 then invalid_arg "Coord.create: no shards";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let ctrace =
    match trace with
    | Some tr -> tr
    | None -> Trace.create ~clock:Sched.now ~fiber:Sched.self ()
  in
  (* the decision log shares the coordinator's registry (and trace), so
     its force/append counters are visible instead of vanishing into a
     private throwaway registry *)
  let cwal =
    match wal with Some w -> w | None -> Wal.create ~trace:ctrace metrics
  in
  let c =
    {
      cname = name;
      clients =
        Array.map (fun d -> Client.connect ~client:("coord:" ^ name) d) dialers;
      cwal;
      metrics;
      ctrace;
      next_gid = 1;
      next_rid = 1;
      cur_rid = 0;
      started = Hashtbl.create 32;
      decided = Hashtbl.create 32;
      pending = Hashtbl.create 8;
      live = Hashtbl.create 8;
      recent = [];
      health =
        Array.map
          (fun _ ->
            { sh_last_contact = 0; sh_prepares = 0; sh_decides = 0;
              sh_dedupe_hits = 0 })
          dialers;
      pk_cols = Hashtbl.create 8;
      views = Hashtbl.create 8;
      in_txn = false;
      open_on = [];
      poisoned = false;
      actions = 0;
      crash_at = None;
      s_single = 0;
      s_cross = 0;
      s_aborts = 0;
      s_prepares = 0;
      s_decides = 0;
      m_votes_yes = Metrics.counter metrics "coord.votes.yes";
      m_votes_no = Metrics.counter metrics "coord.votes.no";
      m_votes_dead = Metrics.counter metrics "coord.votes.dead_line";
      m_fast = Metrics.counter metrics "coord.commit.fast_path";
      m_2pc = Metrics.counter metrics "coord.commit.2pc";
      m_abort_vote = Metrics.counter metrics "coord.abort.vote_no";
      m_abort_dead = Metrics.counter metrics "coord.abort.dead_line";
      m_abort_poisoned = Metrics.counter metrics "coord.abort.poisoned";
      m_redeliver = Metrics.counter metrics "coord.redeliver.attempts";
      m_indoubt = Metrics.counter metrics "coord.indoubt";
      h_prepare = Metrics.hist metrics "coord.prepare.ticks";
      h_force = Metrics.hist metrics "coord.decision_force.ticks";
      h_decide = Metrics.hist metrics "coord.decide.ticks";
    }
  in
  scan_wal c;
  c

let wal c = c.cwal
let metrics c = c.metrics
let trace c = c.ctrace
let last_rid c = c.cur_rid
let shard_count c = Array.length c.clients
let in_transaction c = c.in_txn

let temit c ev = if Trace.enabled c.ctrace then Trace.emit c.ctrace ev
let touch c i = c.health.(i).sh_last_contact <- Sched.now ()

(* the in-doubt gauge tracks |pending| through a counter handle *)
let sync_indoubt c =
  Metrics.inc_by c.m_indoubt (Hashtbl.length c.pending - Metrics.value c.m_indoubt)

let stats c =
  {
    single_shard_commits = c.s_single;
    cross_shard_commits = c.s_cross;
    aborts = c.s_aborts;
    prepares_sent = c.s_prepares;
    decides_sent = c.s_decides;
  }

let set_crash_at_action c n = c.crash_at <- n
let actions c = c.actions

let gate c site =
  c.actions <- c.actions + 1;
  match c.crash_at with
  | Some n when c.actions >= n ->
      raise (Fault.Crash_point (Printf.sprintf "coord.%s.%d" site c.actions))
  | _ -> ()

let close c =
  Array.iter (fun cl -> try Client.close cl with _ -> ()) c.clients

(* --- 2PC message plumbing --------------------------------------------- *)

(* A dead connection is retried exactly once after the client's automatic
   re-dial; safe only for prepare/decide, which the participant dedupes
   by gtxn — never used for statement execution. *)
let retrying f = try f () with Client.Disconnected _ -> f ()

let log_force c body =
  let lsn = Wal.append c.cwal ~txn:0 ~prev:Log_record.nil_lsn body in
  Wal.force c.cwal lsn

let unhex s =
  let n = String.length s in
  if n mod 2 <> 0 then fail "odd hex payload";
  String.init (n / 2) (fun i ->
      let d k =
        match s.[(2 * i) + k] with
        | '0' .. '9' as ch -> Char.code ch - Char.code '0'
        | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
        | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
        | ch -> fail "bad hex digit %C" ch
      in
      Char.chr ((d 0 * 16) + d 1))

(* One statement to one shard, stamped with the coordinator's current
   correlation id; a successful round trip refreshes the shard's
   last-contact tick. Every shard-bound statement goes through here. *)
let shard_exec c i sql =
  let r = Client.exec ~rid:c.cur_rid c.clients.(i) sql in
  touch c i;
  r

(* The shard session's diverted deltas, read back over the wire. *)
let outbound_of c i =
  match shard_exec c i "SELECT * FROM sys.outbound" with
  | Sql.Rows { rows; _ } ->
      List.map
        (fun r ->
          match r with
          | [| Value.Int dest; Value.Int vid; Value.Str key; Value.Str hx |] ->
              (dest, (vid, key, unhex hx))
          | _ -> fail "malformed sys.outbound row")
        rows
  | _ -> fail "unexpected reply to sys.outbound"

let deltas_for outbound i =
  Database.Deltas.encode
    (List.filter_map (fun (d, entry) -> if d = i then Some entry else None) outbound)

let deliver_decision ?(gated = true) c ~gtxn ~committed ~participants =
  let failed = ref [] in
  List.iter
    (fun i ->
      if gated then gate c "decide";
      temit c
        (Trace.Coord_decide { gtxn; rid = c.cur_rid; shard = i; committed });
      try
        retrying (fun () ->
            Client.decide_2pc ~rid:c.cur_rid c.clients.(i) ~gtxn ~committed);
        c.s_decides <- c.s_decides + 1;
        c.health.(i).sh_decides <- c.health.(i).sh_decides + 1;
        touch c i
      with Client.Disconnected _ | Client.Server_error _ ->
        (* the decision is durable in our log; an unreachable shard stays
           in-doubt (locks held) until a re-delivery reaches it *)
        failed := i :: !failed)
    participants;
  (match !failed with
  | [] -> Hashtbl.remove c.pending gtxn
  | fs -> Hashtbl.replace c.pending gtxn (List.rev fs));
  sync_indoubt c

(* A shard that missed its decision keeps the in-doubt transaction's
   locks, blocking conflicting work there; rather than waiting for an
   operator's [recover], retry the logged outcome before the next commit.
   Ungated: re-delivery is not a protocol action of the current
   transaction, so it must not shift the crash-sweep numbering. *)
let redeliver_pending c =
  if Hashtbl.length c.pending > 0 then
    Hashtbl.fold (fun g ps acc -> (g, ps) :: acc) c.pending []
    |> List.sort compare
    |> List.iter (fun (gtxn, participants) ->
           match Hashtbl.find_opt c.decided gtxn with
           | Some committed ->
               Metrics.inc c.m_redeliver;
               deliver_decision ~gated:false c ~gtxn ~committed ~participants
           | None -> Hashtbl.remove c.pending gtxn)

let two_phase c ~gtxn ~participants ~outbound ~ops =
  let gi = gtxn_begin c ~gtxn ~participants in
  gate c "log_start";
  log_force c
    (Log_record.Prepare
       { gtxn; deltas = String.concat "," (List.map string_of_int participants) });
  Hashtbl.replace c.started gtxn participants;
  let prepared = ref [] in
  (* shards whose line died around a Prepare: their vote is unknown — the
     frame (or only its ack) may have been lost, so they may hold a
     prepared transaction we never heard about *)
  let suspects = ref [] in
  let rec prep = function
    | [] -> None
    | i :: rest -> (
        gate c "prepare";
        temit c (Trace.Coord_prepare { gtxn; rid = c.cur_rid; shard = i });
        (* An op shard's vote rides the session that ran its statements:
           if that connection dies, the server rolls the session
           transaction back on disconnect, and a blind resend on a fresh
           session would prepare a brand-new EMPTY transaction — voting
           yes while the shard's DML is gone. So an op shard's Prepare is
           never retried; a dead line is a No vote (presumed abort keeps
           an actually-prepared shard safe: it stays in-doubt and the
           abort reaches it below, or via re-delivery). A delta-only
           destination has no session state — its whole transaction is
           the delta batch inside the frame — so the dedupe-backed
           reconnect-and-resend is safe there. *)
        let send () =
          Client.prepare_2pc ~rid:c.cur_rid c.clients.(i) ~gtxn
            ~deltas:(deltas_for outbound i)
        in
        match
          (try `Vote (if List.mem i ops then send () else retrying send) with
          | Client.Server_error { text; _ } -> `No text
          | Client.Disconnected m ->
              suspects := i :: !suspects;
              `Dead m)
        with
        | `Vote v ->
            (match v with
            | `Already_decided _ ->
                c.health.(i).sh_dedupe_hits <- c.health.(i).sh_dedupe_hits + 1
            | `Prepared -> ());
            c.s_prepares <- c.s_prepares + 1;
            c.health.(i).sh_prepares <- c.health.(i).sh_prepares + 1;
            touch c i;
            Metrics.inc c.m_votes_yes;
            gtxn_vote gi i "yes";
            temit c (Trace.Coord_vote { gtxn; shard = i; vote = "yes" });
            prepared := i :: !prepared;
            prep rest
        | `No reason ->
            Metrics.inc c.m_votes_no;
            gtxn_vote gi i "no";
            temit c (Trace.Coord_vote { gtxn; shard = i; vote = "no" });
            Some (reason, c.m_abort_vote)
        | `Dead reason ->
            Metrics.inc c.m_votes_dead;
            gtxn_vote gi i "dead";
            temit c (Trace.Coord_vote { gtxn; shard = i; vote = "dead" });
            Some (reason, c.m_abort_dead))
  in
  let t_prep = Sched.now () in
  let outcome = prep participants in
  Metrics.record c.h_prepare (Sched.now () - t_prep);
  match outcome with
  | None ->
      gtxn_phase gi "deciding";
      gate c "log_decision";
      let t_force = Sched.now () in
      log_force c (Log_record.Decision { gtxn; committed = true });
      Metrics.record c.h_force (Sched.now () - t_force);
      temit c (Trace.Coord_decision { gtxn; committed = true });
      Hashtbl.replace c.decided gtxn true;
      let t_dec = Sched.now () in
      deliver_decision c ~gtxn ~committed:true ~participants;
      Metrics.record c.h_decide (Sched.now () - t_dec);
      gtxn_done c gtxn true;
      c.s_cross <- c.s_cross + 1;
      Metrics.inc c.m_2pc;
      Sql.Message
        (Printf.sprintf "committed (%s, %d participants)" gtxn
           (List.length participants))
  | Some (reason, abort_cause) ->
      gtxn_phase gi "deciding";
      gate c "log_decision";
      let t_force = Sched.now () in
      log_force c (Log_record.Decision { gtxn; committed = false });
      Metrics.record c.h_force (Sched.now () - t_force);
      temit c (Trace.Coord_decision { gtxn; committed = false });
      Hashtbl.replace c.decided gtxn false;
      (* prepared shards get the abort decision now, and so does every
         suspect — it may have prepared without us seeing the ack, and a
         shard that never saw the Prepare answers presumed-abort; an op
         shard that never prepared still holds an ordinary session
         transaction, rolled back explicitly *)
      let informed = List.sort_uniq compare (!prepared @ !suspects) in
      let t_dec = Sched.now () in
      deliver_decision c ~gtxn ~committed:false ~participants:informed;
      Metrics.record c.h_decide (Sched.now () - t_dec);
      List.iter
        (fun i ->
          if not (List.mem i informed) then
            try ignore (shard_exec c i "ROLLBACK")
            with Client.Disconnected _ | Client.Server_error _ -> ())
        ops;
      gtxn_done c gtxn false;
      c.s_aborts <- c.s_aborts + 1;
      Metrics.inc abort_cause;
      fail "transaction %s aborted: %s" gtxn reason

let rollback_ops c ops =
  List.iter
    (fun i ->
      try ignore (shard_exec c i "ROLLBACK")
      with Client.Disconnected _ | Client.Server_error _ -> ())
    ops

let commit_txn c =
  if not c.in_txn then fail "no open transaction";
  redeliver_pending c;
  let ops = c.open_on in
  let poisoned = c.poisoned in
  c.in_txn <- false;
  c.open_on <- [];
  c.poisoned <- false;
  if poisoned then begin
    rollback_ops c ops;
    c.s_aborts <- c.s_aborts + 1;
    Metrics.inc c.m_abort_poisoned;
    fail "transaction aborted: a shard connection died mid-statement"
  end;
  match ops with
  | [] -> Sql.Message "committed"
  | _ -> (
      (* Failing before any Prepare is sent leaves plain session
         transactions holding locks on the op shards: roll them back
         best-effort before re-raising. A simulated coordinator crash is
         exempt — a dead process sends nothing. *)
      let guarded f =
        try f () with
        | Fault.Crash_point _ as e -> raise e
        | e ->
            rollback_ops c ops;
            raise e
      in
      let outbound =
        guarded (fun () -> List.concat_map (fun i -> outbound_of c i) ops)
      in
      let dests = List.sort_uniq compare (List.map fst outbound) in
      let participants = List.sort_uniq compare (ops @ dests) in
      match (participants, outbound) with
      | [ i ], [] ->
          (* single shard, no remote deltas: plain local commit *)
          (match guarded (fun () -> shard_exec c i "COMMIT") with
          | Sql.Message _ -> ()
          | _ -> fail "unexpected reply to COMMIT");
          c.s_single <- c.s_single + 1;
          Metrics.inc c.m_fast;
          temit c (Trace.Coord_fast_path { rid = c.cur_rid; shard = i });
          Sql.Message "committed"
      | _ ->
          let gtxn = Printf.sprintf "%s:%d" c.cname c.next_gid in
          c.next_gid <- c.next_gid + 1;
          two_phase c ~gtxn ~participants ~outbound ~ops)

let abort_txn c =
  if not c.in_txn then fail "no open transaction";
  let ops = c.open_on in
  c.in_txn <- false;
  c.open_on <- [];
  c.poisoned <- false;
  rollback_ops c ops;
  Sql.Message "rolled back"

(* --- recovery --------------------------------------------------------- *)

let recover c =
  let entries =
    Hashtbl.fold (fun g ps acc -> (g, ps) :: acc) c.started [] |> List.sort compare
  in
  List.iter
    (fun (gtxn, participants) ->
      let committed =
        match Hashtbl.find_opt c.decided gtxn with
        | Some d -> d
        | None ->
            (* started but never decided: presumed abort, made explicit
               so the next recovery needn't re-derive it *)
            log_force c (Log_record.Decision { gtxn; committed = false });
            Hashtbl.replace c.decided gtxn false;
            false
      in
      deliver_decision c ~gtxn ~committed ~participants;
      gtxn_done c gtxn committed)
    entries;
  (* live entries never logged (crashed before the begin-record force):
     no shard ever heard of them, so they abort locally *)
  Hashtbl.fold
    (fun g _ acc -> if not (Hashtbl.mem c.started g) then g :: acc else acc)
    c.live []
  |> List.sort compare
  |> List.iter (fun g -> gtxn_done c g false);
  List.length entries

(* --- statement routing ------------------------------------------------ *)

let render_lit = function
  | A.L_int i -> string_of_int i
  | A.L_float f ->
      let s = Printf.sprintf "%.17g" f in
      if String.contains s 'e' || String.contains s 'n' then
        Printf.sprintf "%f" f
      else if String.contains s '.' then s
      else s ^ ".0"
  | A.L_string s ->
      let b = Buffer.create (String.length s + 2) in
      Buffer.add_char b '\'';
      String.iter
        (fun ch ->
          if ch = '\'' then Buffer.add_string b "''" else Buffer.add_char b ch)
        s;
      Buffer.add_char b '\'';
      Buffer.contents b
  | A.L_bool b -> if b then "TRUE" else "FALSE"
  | A.L_null -> "NULL"

let render_row lits = "(" ^ String.concat ", " (List.map render_lit lits) ^ ")"

let value_of_lit = function
  | A.L_int i -> Value.Int i
  | A.L_float f -> Value.Float f
  | A.L_string s -> Value.Str s
  | A.L_bool b -> Value.Bool b
  | A.L_null -> Value.Null

let route_lit c l = route_value ~shards:(shard_count c) (value_of_lit l)

let ensure_open c i =
  if not (List.mem i c.open_on) then begin
    ignore (shard_exec c i "BEGIN");
    c.open_on <- c.open_on @ [ i ]
  end

let exec_shard ?(kind = "pin") c i sql =
  temit c (Trace.Coord_route { rid = c.cur_rid; shard = i; kind });
  if c.in_txn then (
    try
      ensure_open c i;
      shard_exec c i sql
    with Client.Disconnected _ as e ->
      (* the disconnect rolled that shard's session transaction back on
         the server: whatever this transaction already did there is gone,
         so it is marked abort-only — COMMIT will refuse *)
      c.poisoned <- true;
      raise e)
  else shard_exec c i sql

let all_shards c = List.init (shard_count c) Fun.id

let affected = function
  | Sql.Affected n -> n
  | Sql.Rows { rows; _ } -> List.length rows
  | Sql.Message _ -> 0

let rec conjuncts = function
  | A.Binop (A.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* WHERE pins the statement to one shard iff it has a top-level
   pk = literal conjunct for the table's partition column. *)
let pk_eq c table where =
  match (Hashtbl.find_opt c.pk_cols table, where) with
  | Some pk, Some w ->
      List.find_map
        (function
          | A.Binop (A.Eq, A.Column col, A.Lit l)
          | A.Binop (A.Eq, A.Lit l, A.Column col)
            when col = pk ->
              Some l
          | _ -> None)
        (conjuncts w)
  | _ -> None

let merge_rows (q : A.select) replies =
  let header = match replies with (h, _) :: _ -> h | [] -> [] in
  let rows = List.concat_map snd replies in
  let rows =
    match q.A.order with
    | Some { A.ob_col; ob_desc } -> (
        match List.find_index (fun h -> h = ob_col) header with
        | Some idx ->
            List.stable_sort
              (fun (a : Row.t) (b : Row.t) ->
                let cmp = Value.compare a.(idx) b.(idx) in
                if ob_desc then -cmp else cmp)
              rows
        | None -> rows)
    | None -> rows
  in
  let rows =
    match q.A.limit with
    | Some n -> List.filteri (fun i _ -> i < n) rows
    | None -> rows
  in
  Sql.Rows { header; rows }

let rows_of = function
  | Sql.Rows { header; rows } -> (header, rows)
  | _ -> fail "expected rows"

let broadcast_rows c q sql targets =
  merge_rows q
    (List.map (fun i -> rows_of (exec_shard ~kind:"broadcast" c i sql)) targets)

let is_sys_name from =
  String.length from > 4 && String.sub from 0 4 = "sys."

(* --- coordinator-resident sys.* catalogs ------------------------------ *)

let gtxns_rows c =
  let now = Sched.now () in
  let row gi =
    let undelivered =
      match Hashtbl.find_opt c.pending gi.gi_gtxn with
      | Some shards -> List.length shards
      | None -> 0
    in
    [|
      Value.Str gi.gi_gtxn;
      Value.Str gi.gi_phase;
      Value.Str
        (String.concat "," (List.map string_of_int gi.gi_participants));
      Value.Str
        (String.concat ","
           (List.map
              (fun (s, v) -> Printf.sprintf "%d:%s" s v)
              (List.sort compare gi.gi_votes)));
      Value.Int (now - gi.gi_phase_tick);
      Value.Int undelivered;
    |]
  in
  let live =
    Hashtbl.fold (fun _ gi acc -> gi :: acc) c.live []
    |> List.sort (fun a b -> compare a.gi_gtxn b.gi_gtxn)
  in
  (Sys_tables.gtxns_header, List.map row live @ List.map row c.recent)

let coord_shards_rows c =
  let outstanding i =
    Hashtbl.fold
      (fun _ shards acc -> if List.mem i shards then acc + 1 else acc)
      c.pending 0
  in
  let row i h =
    [|
      Value.Int i;
      Value.Str (Client.peer_addr c.clients.(i));
      Value.Int h.sh_last_contact;
      Value.Int h.sh_prepares;
      Value.Int h.sh_decides;
      Value.Int (outstanding i);
      Value.Int h.sh_dedupe_hits;
      Value.Int (Client.reconnects c.clients.(i));
    |]
  in
  (Sys_tables.coord_shards_header, Array.to_list (Array.mapi row c.health))

(* The cluster rollup: this registry's counters tagged "coord", then each
   reachable shard's sys.metrics tagged "shard<i>". A dead shard is
   skipped rather than failing the whole query — sys.coord_shards is the
   place that reports it. *)
let cluster_metrics_rows c =
  let own =
    List.map
      (fun (k, v) -> [| Value.Str "coord"; Value.Str k; Value.Int v |])
      (Metrics.snapshot c.metrics)
  in
  let shard i =
    let node = Printf.sprintf "shard%d" i in
    match exec_shard ~kind:"sys" c i "SELECT * FROM sys.metrics" with
    | Sql.Rows { rows; _ } ->
        List.map (fun r -> Array.append [| Value.Str node |] r) rows
    | _ -> []
    | exception (Client.Disconnected _ | Client.Server_error _) -> []
  in
  ( Sys_tables.cluster_metrics_header,
    own @ List.concat_map shard (all_shards c) )

let coord_sys c name =
  match name with
  | "sys.gtxns" -> Some (fun () -> gtxns_rows c)
  | "sys.coord_shards" -> Some (fun () -> coord_shards_rows c)
  | "sys.cluster_metrics" -> Some (fun () -> cluster_metrics_rows c)
  | _ -> None

let route_select c (q : A.select) sql =
  if is_sys_name q.A.from then (
    match coord_sys c q.A.from with
    | Some rows -> Sql.select_over q (rows ())
    | None ->
        if q.A.from = "sys.shards" then broadcast_rows c q sql (all_shards c)
        else exec_shard ~kind:"sys" c 0 sql)
  else if Hashtbl.mem c.views q.A.from then
    (* view groups are partitioned by group-key hash: every group lives
       wholly on its owner, so concatenation is the full view *)
    broadcast_rows c q sql (all_shards c)
  else
    match pk_eq c q.A.from q.A.where with
    | Some l -> exec_shard c (route_lit c l) sql
    | None ->
        let grouped =
          q.A.group_by <> []
          || List.exists
               (function A.Agg_item _ -> true | A.Star | A.Col_item _ -> false)
               q.A.items
        in
        if grouped then
          fail
            "cross-shard aggregation over %s is not supported: create an \
             indexed view (its groups are partitioned) or pin the query \
             with %s = <literal>"
            q.A.from
            (match Hashtbl.find_opt c.pk_cols q.A.from with
            | Some pk -> pk
            | None -> "<pk>")
        else broadcast_rows c q sql (all_shards c)

let route_insert c into rows =
  let n = shard_count c in
  let buckets = Array.make n [] in
  List.iter
    (fun lits ->
      match lits with
      | [] -> fail "empty VALUES row"
      | first :: _ ->
          let i = route_lit c first in
          buckets.(i) <- lits :: buckets.(i))
    rows;
  let total = ref 0 in
  Array.iteri
    (fun i bucket ->
      if bucket <> [] then
        let sql =
          Printf.sprintf "INSERT INTO %s VALUES %s" into
            (String.concat ", " (List.rev_map render_row bucket))
        in
        total := !total + affected (exec_shard ~kind:"split" c i sql))
    buckets;
  Sql.Affected !total

let route_modify c table where sql =
  match pk_eq c table where with
  | Some l -> exec_shard c (route_lit c l) sql
  | None ->
      Sql.Affected
        (List.fold_left
           (fun acc i -> acc + affected (exec_shard ~kind:"broadcast" c i sql))
           0 (all_shards c))

(* A write outside an open transaction still runs under the coordinator's
   transaction machinery: its escrow deltas may belong to another shard,
   and only the commit path ships them. *)
let with_write c f =
  if c.in_txn then f ()
  else begin
    c.in_txn <- true;
    match f () with
    | r ->
        ignore (commit_txn c);
        r
    | exception e ->
        (if c.in_txn then try ignore (abort_txn c) with _ -> ());
        raise e
  end

let broadcast_ddl c sql =
  let last = ref (Sql.Message "ok") in
  List.iter
    (fun i ->
      temit c (Trace.Coord_route { rid = c.cur_rid; shard = i; kind = "ddl" });
      last := shard_exec c i sql)
    (all_shards c);
  !last

let exec c sql =
  let stmt = Sql_parser.parse sql in
  (* one correlation id per routed statement: every shard-bound frame this
     statement causes (Exec, Prepare, Decide) carries it *)
  c.cur_rid <- c.next_rid;
  c.next_rid <- c.next_rid + 1;
  match stmt with
  | A.Begin _ ->
      if c.in_txn then fail "transaction already open";
      c.in_txn <- true;
      c.poisoned <- false;
      Sql.Message "distributed transaction started"
  | A.Commit -> commit_txn c
  | A.Rollback -> abort_txn c
  | A.Savepoint _ | A.Rollback_to _ ->
      fail "savepoints are not supported through the coordinator"
  | A.Create_table _ | A.Create_view _ ->
      (* routing metadata (partition column, view names) must survive a
         coordinator restart: force the DDL to our log before acting on
         it, and re-derive the tables from the statement text — the same
         path scan_wal replays *)
      log_force c (Log_record.Ddl sql);
      register_ddl c sql;
      broadcast_ddl c sql
  | A.Create_index _ | A.Checkpoint -> broadcast_ddl c sql
  | A.Show _ -> exec_shard c 0 sql
  | A.Insert { into; rows } -> with_write c (fun () -> route_insert c into rows)
  | A.Delete { from_t; where } ->
      with_write c (fun () -> route_modify c from_t where sql)
  | A.Update { table; sets; where } ->
      (match Hashtbl.find_opt c.pk_cols table with
      | Some pk when List.mem_assoc pk sets ->
          fail "cannot UPDATE partition column %s through the coordinator" pk
      | _ -> ());
      with_write c (fun () -> route_modify c table where sql)
  | A.Select q -> route_select c q sql
  | A.Explain q | A.Explain_analyze q -> (
      (* a plan is per-shard: pin it when the query pins, else shard 0 *)
      match pk_eq c q.A.from q.A.where with
      | Some l -> exec_shard c (route_lit c l) sql
      | None -> exec_shard c 0 sql)
