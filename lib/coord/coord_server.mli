(** Wire front-end for the shard {!Coord}inator: serves the
    {!Ivdb_wire.Wire} request/response protocol over any
    {!Ivdb_transport.Transport.listener}, answering every [Exec] by
    routing the statement through {!Coord.exec}. An ordinary
    {!Ivdb_client.Client} connected here sees the whole cluster —
    including the coordinator-resident catalogs [sys.gtxns],
    [sys.coord_shards] and [sys.cluster_metrics] — and a [Metrics_req]
    returns the coordinator registry's Prometheus exposition (the 2PC
    phase histograms and vote/abort counters).

    The coordinator owns a single distributed-transaction session;
    every wire session shares it. Concurrent clients are accepted but
    their [BEGIN]/[COMMIT] interleave on that shared state — this is an
    operator console and test surface, not a multi-tenant endpoint.

    Errors map like the engine server's: {!Coord.Coord_error} and
    {!Ivdb_sql.Sql.Sql_error} → [E_sql] (transaction kept open),
    parse/lex rejections → [E_parse], a shard's own [Err] is relayed
    with its original code, and a dead shard line surfaces as [E_sql]
    ["shard unreachable: …"] rather than killing the console
    connection. *)

type t

val create : ?name:string -> Coord.t -> Ivdb_transport.Transport.listener -> t
(** [name] is the server string sent in [Welcome] (default
    ["ivdb-coord"]). *)

val serve : t -> unit
(** Spawn the accept fiber; must be called inside a scheduler run. The
    fiber exits once the listener is stopped and drained. *)

val drain : t -> unit
(** Stop accepting new connections (existing sessions finish). *)
