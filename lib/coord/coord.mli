(** The sharding coordinator: hash-partitioned base tables over N engine
    instances with two-phase commit for cross-shard transactions.

    Base rows are partitioned by the hash of their first column (the
    table's "primary key"); escrow view groups by the hash of their
    encoded group key. The partition maps are pure functions shared by
    the coordinator and every shard ({!configure_shard} installs them
    into an engine), so any party can compute an owner without a
    directory service. Shards are reached through
    {!Ivdb_client.Client} over any transport — deterministic loopback
    fibers in one scheduler run, or TCP to [ivdb_server --shard i/N]
    processes.

    A coordinator transaction opens an ordinary server-side transaction
    on each shard a statement lands on. At [COMMIT], deltas the shards
    diverted toward remote view groups are collected over
    [sys.outbound]; a transaction with one participant and no remote
    deltas commits locally (no 2PC), anything else runs presumed-abort
    two-phase commit: participant set forced to the coordinator's WAL,
    Prepare (carrying each shard's inbound deltas) to every participant,
    decision forced, Decide fanned out. {!recover} re-delivers logged
    decisions after a coordinator crash and presumed-aborts every
    started-but-undecided transaction; participants dedupe retransmits
    by global transaction id, which makes Decide (and delta-only
    Prepare) reconnect-and-resend retries safe. A Prepare to a shard
    whose session ran this transaction's statements is never retried —
    the disconnect rolled that session's transaction back, so a dead
    line is a No vote and the transaction aborts everywhere.
    Undeliverable decisions are re-delivered before the next commit. *)

exception Coord_error of string
(** Statement-level failure: routing restriction, a shard voting no (the
    global transaction was aborted), malformed replies. The coordinator
    session survives it. *)

(** {1 Partition maps} *)

val route_key : shards:int -> string -> int
(** Owner shard of an opaque key string (FNV-1a mod [shards]). *)

val route_value : shards:int -> Ivdb_relation.Value.t -> int
(** Owner shard of a base row, from its first-column value. *)

val route_group : shards:int -> view:int -> key:string -> int
(** Owner shard of a view group, from its encoded group key. *)

val configure_shard : Ivdb.Database.t -> shard:int -> shards:int -> unit
(** Make an engine shard [shard] of [shards]: sets its identity
    ({!Ivdb.Database.set_shard}) and installs {!route_group} as its
    delta router, so view maintenance diverts remote groups' deltas into
    the transaction's outbound buffer. *)

(** {1 Coordinator} *)

type t

val create :
  ?name:string ->
  ?wal:Ivdb_wal.Wal.t ->
  ?metrics:Ivdb_util.Metrics.t ->
  ?trace:Ivdb_util.Trace.t ->
  Ivdb_transport.Transport.dialer array ->
  t
(** Connect one client per shard (the array index is the shard id — it
    must match each engine's {!configure_shard} slot). [name] prefixes
    global transaction ids ([name:n]). [wal] is the coordinator's
    decision log; pass the previous incarnation's log (round-tripped
    through {!Ivdb_wal.Wal.crash}) to restart after a crash — the
    started/decided tables, the gtxn counter and the routing metadata
    (partition columns and view names, logged as DDL records) are
    rebuilt by scanning it; follow with {!recover} to re-deliver
    outcomes. [metrics] is the coordinator's registry (fresh by
    default): the typed per-phase 2PC counters and histograms live
    there, and — when no [wal] is passed — so do the decision log's
    own append/force counters instead of a private throwaway registry.
    [trace] receives the coordinator-side trace events
    ([coord.route] / [coord.fast_path] / [coord.prepare] /
    [coord.vote] / [coord.decision] / [coord.decide]); defaults to a
    fresh disabled trace wired to the deterministic scheduler's clock
    and fiber id, so an enabled stream is byte-identical per seed. *)

val exec : t -> string -> Ivdb_sql.Sql.result
(** Route one SQL statement: DDL broadcasts (recording partition
    columns), INSERT splits its rows by partition, DML/SELECT with a
    top-level [pk = literal] conjunct pins to the owner, other DML and
    plain SELECTs fan out (rows concatenated, ORDER BY/LIMIT re-applied),
    SELECT over a view fans out (each group lives wholly on its owner).
    [BEGIN]/[COMMIT]/[ROLLBACK] drive the distributed transaction; a
    write outside a transaction autocommits through the same machinery
    so its remote deltas still ship. Raises {!Coord_error} (and
    {!Ivdb_client.Client} exceptions for dead shards).

    Coordinator-resident catalogs are answered locally, with full
    [sys.*] query semantics (WHERE / projection / ORDER BY / LIMIT):
    - [sys.gtxns] — live and recent global transactions: phase
      ([preparing] / [deciding] / [committed] / [aborted]), participant
      set, per-shard votes ([yes] / [no] / [dead]), ticks in the current
      phase, undelivered-decision count;
    - [sys.coord_shards] — per-shard health: address, last-contact tick,
      prepare/decide traffic, outstanding decisions, dedupe hits,
      reconnects;
    - [sys.cluster_metrics] — the coordinator registry's counters tagged
      [coord] plus every reachable shard's [sys.metrics] rows tagged
      [shard<i>] (unreachable shards are skipped, not errors).

    Every routed statement is stamped with a coordinator-assigned
    correlation id (see {!last_rid}) carried on the Exec, Prepare and
    Decide frames it causes, so shard-side trace events and
    [sys.slow_queries] rows join back to the coordinator statement. *)

val last_rid : t -> int
(** Correlation id assigned to the most recent {!exec} statement. *)

val metrics : t -> Ivdb_util.Metrics.t
(** The coordinator's metrics registry (2PC phase histograms
    [coord.prepare.ticks] / [coord.decision_force.ticks] /
    [coord.decide.ticks], vote and abort-cause counters, fast-path vs
    2PC commits, in-doubt gauge, re-delivery attempts — plus the
    decision log's counters when the WAL was created here). Feed it to
    {!Ivdb_util.Metrics.to_prometheus} or serve it with
    [Ivdb_server.Metrics_http]. *)

val trace : t -> Ivdb_util.Trace.t
(** The coordinator's trace (enable + attach sinks to observe the 2PC
    event stream). *)

val recover : t -> int
(** Resolve every started transaction found in the WAL: re-deliver the
    logged decision, or log-and-deliver an abort for the undecided
    (presumed abort). Returns the number of transactions resolved.
    Idempotent — participants answer retransmits from their dedupe
    tables. *)

val in_transaction : t -> bool

val shard_count : t -> int

val wal : t -> Ivdb_wal.Wal.t
(** The coordinator's decision log (for crash simulation:
    [Wal.crash (Coord.wal c) metrics] is the log a restarted coordinator
    sees). *)

type stats = {
  single_shard_commits : int;  (** commits that skipped 2PC *)
  cross_shard_commits : int;
  aborts : int;
  prepares_sent : int;  (** prepare round-trips, retransmits included *)
  decides_sent : int;
}

val stats : t -> stats

val close : t -> unit

(** {1 Deterministic crash injection}

    Every 2PC protocol action — the begin-record force, each Prepare
    send, the decision force, each Decide send — bumps a counter. Arming
    {!set_crash_at_action} [n] makes the [n]-th action raise
    {!Ivdb_storage.Fault.Crash_point} instead of happening, so a sweep
    over [n] crashes the coordinator at every message boundary of a
    workload. *)

val set_crash_at_action : t -> int option -> unit

val actions : t -> int
(** Actions performed so far (run once unarmed to size a sweep). *)
