module Txn = Ivdb_txn.Txn
module Lock_name = Ivdb_lock.Lock_name
module Lock_mode = Ivdb_lock.Lock_mode
module Btree = Ivdb_btree.Btree
module Row = Ivdb_relation.Row
module Key_codec = Ivdb_relation.Key_codec
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Aggregate = Ivdb_core.Aggregate
module Maintain = Ivdb_core.Maintain
module Deferred = Ivdb_core.Deferred
module Mvcc = Ivdb_txn.Mvcc
module I = Database.Internal

type locking = Serializable | Read_committed | Dirty

let table_scan db txn tbl ?where locking =
  let rows =
    match (locking, txn) with
    (* snapshot readers resolve against version chains regardless of the
       requested locking level — heap_scan_rows dispatches on the txn *)
    | _, Some tx when Txn.snapshot_of tx <> None ->
        Seq.map snd (I.heap_scan_rows db txn tbl)
    | Serializable, Some _ -> Seq.map snd (I.heap_scan_rows db txn tbl)
    | Read_committed, Some tx ->
        (* block behind uncommitted writers, retain nothing: instant S per
           row, then read *)
        let heap = I.rt_heap (I.table_rt db (I.table_id tbl)) in
        Seq.filter_map
          (fun (rid, _) ->
            Txn.lock_instant (Database.mgr db) tx (Lock_name.Row (I.table_id tbl, rid))
              Lock_mode.S;
            Option.map Row.decode (Ivdb_storage.Heap_file.get heap rid))
          (I.heap_scan_rows db None tbl)
    | (Serializable | Read_committed | Dirty), _ ->
        Seq.map snd (I.heap_scan_rows db None tbl)
  in
  match where with None -> rows | Some pred -> Seq.filter (Expr.eval_bool pred) rows

let lock_view_key db txn vid key locking =
  match (txn, locking) with
  | Some tx, Serializable ->
      Txn.lock (Database.mgr db) tx (Lock_name.Table vid) Lock_mode.IS;
      Txn.lock (Database.mgr db) tx (Lock_name.Key (vid, key)) Lock_mode.RangeS_S
  | Some tx, Read_committed ->
      Txn.lock (Database.mgr db) tx (Lock_name.Table vid) Lock_mode.IS;
      Txn.lock_instant (Database.mgr db) tx (Lock_name.Key (vid, key)) Lock_mode.S
  | _, _ -> ()

(* deferred views with a refresh threshold: a transactional reader drains
   the queue first once staleness exceeds the bound (it pays the refresh,
   later readers get it for free) *)
let maybe_auto_refresh db txn v rt =
  match (txn, rt.Maintain.deferred) with
  (* snapshot readers must not mutate the view (and could not: draining
     takes locks) — they read the stored state as of their stamp *)
  | Some tx, Some q when Txn.snapshot_of tx = None -> (
      match Database.view_refresh_threshold db v with
      | Some threshold when Deferred.pending q > threshold ->
          Ivdb_util.Metrics.incr (Database.metrics db) "view.auto_refresh";
          let n =
            Deferred.drain tx q ~apply:(fun ~key delta ->
                Maintain.apply_delta_exclusive (Database.mgr db) tx rt ~key delta)
          in
          Ivdb_util.Metrics.add (Database.metrics db) "view.refresh_deltas" n
      | Some _ | None -> ())
  | _ -> ()

(* The view row for [key] as of snapshot stamp [snap], or [None] if the
   group did not exist then. A committed version entry (the value current
   until the first commit after the snapshot) is the answer outright; a
   pending before-image likewise — it was captured under the writer's X
   lock, before any in-flight escrow delta could touch the key. [Current]
   means no commit after the snapshot touched the key, so the stored row
   minus every in-flight escrow delta (escrow applies uncommitted
   increments in place) is the committed — hence at-snapshot — value. *)
let snapshot_view_row db rt vid key snap =
  match Mvcc.resolve (Txn.mvcc (Database.mgr db)) ~obj:vid ~key ~snap with
  | Mvcc.Committed v | Mvcc.Pending v -> Option.map Row.decode v
  | Mvcc.Current -> (
      match Btree.search rt.Maintain.tree key with
      | None -> None
      | Some stored ->
          Some
            (List.fold_left
               (fun r d ->
                 match Aggregate.apply rt.Maintain.def r (Aggregate.negate d) with
                 | `Ok r' -> r'
                 | `Recompute -> r)
               (Row.decode stored)
               (Ivdb_core.Inflight.pending (I.inflight db) ~vid ~key)))

(* Group keys visible to a snapshot scan: the tree's current keys plus any
   chain-only keys (rows physically reclaimed after the snapshot began). *)
let snapshot_view_keys db rt vid =
  let tree = rt.Maintain.tree in
  let rec collect acc = function
    | None -> acc
    | Some (key, _, c) -> collect (key :: acc) (Btree.cursor_next tree c)
  in
  List.sort_uniq String.compare
    (collect
       (Mvcc.keys_of_obj (Txn.mvcc (Database.mgr db)) ~obj:vid)
       (Btree.seek tree ""))

let snapshot_view_scan db tx rt vid ?lo ?hi () =
  let snap = Option.get (Txn.snapshot_of tx) in
  snapshot_view_keys db rt vid
  |> List.filter (fun k ->
         (match lo with None -> true | Some l -> String.compare k l >= 0)
         && match hi with None -> true | Some h -> String.compare k h < 0)
  |> List.filter_map (fun key ->
         match snapshot_view_row db rt vid key snap with
         | Some row when Aggregate.count_of row > 0 ->
             Some (Key_codec.decode key, row)
         | _ -> None)
  |> List.to_seq

let view_lookup db txn v group =
  let vid = I.view_id v in
  let rt = I.view_rt db vid in
  maybe_auto_refresh db txn v rt;
  let key = Key_codec.encode group in
  match txn with
  | Some tx when Txn.snapshot_of tx <> None -> (
      match
        snapshot_view_row db rt vid key (Option.get (Txn.snapshot_of tx))
      with
      | Some row when Aggregate.count_of row > 0 -> Some row
      | _ -> None)
  | _ -> (
      (match txn with
      | Some tx ->
          Txn.lock (Database.mgr db) tx (Lock_name.Table vid) Lock_mode.IS;
          Txn.lock (Database.mgr db) tx (Lock_name.Key (vid, key)) Lock_mode.S
      | None -> ());
      match Btree.search rt.Maintain.tree key with
      | None -> None
      | Some stored ->
          let row = Row.decode stored in
          if Aggregate.count_of row = 0 then None else Some row)

let view_scan_locked db txn v locking =
  let vid = I.view_id v in
  let rt = I.view_rt db vid in
  let tree = rt.Maintain.tree in
  let lock_eof () =
    match (txn, locking) with
    | Some tx, Serializable ->
        Txn.lock (Database.mgr db) tx (Lock_name.Eof vid) Lock_mode.RangeS_S
    | _, _ -> ()
  in
  let rec step cursor () =
    match cursor with
    | None ->
        lock_eof ();
        Seq.Nil
    | Some (key, value, c) ->
        lock_view_key db txn vid key locking;
        (* the key was locked before the value is trusted: re-read so a
           writer that committed while we waited is observed *)
        let value =
          match Btree.search tree key with Some v -> v | None -> value
        in
        let row = Row.decode value in
        let next = Btree.cursor_next tree c in
        if Aggregate.count_of row = 0 then step next ()
        else Seq.Cons ((Key_codec.decode key, row), step next)
  in
  fun () -> step (Btree.seek tree "") ()

let view_scan db txn v locking =
  let vid = I.view_id v in
  let rt = I.view_rt db vid in
  maybe_auto_refresh db txn v rt;
  match txn with
  | Some tx when Txn.snapshot_of tx <> None -> snapshot_view_scan db tx rt vid ()
  | _ -> view_scan_locked db txn v locking

let view_scan_range_locked db txn v ~lo ~hi locking =
  let vid = I.view_id v in
  let rt = I.view_rt db vid in
  let tree = rt.Maintain.tree in
  let lo_key = Key_codec.encode lo and hi_key = Key_codec.encode hi in
  let seal key =
    (* the first key at-or-past hi (or EOF) guards the final gap *)
    match (txn, locking) with
    | Some tx, Serializable ->
        let name =
          match key with
          | Some k -> Lock_name.Key (vid, k)
          | None -> Lock_name.Eof vid
        in
        Txn.lock (Database.mgr db) tx name Lock_mode.RangeS_S
    | _, _ -> ()
  in
  let rec step cursor () =
    match cursor with
    | None ->
        seal None;
        Seq.Nil
    | Some (key, value, c) ->
        if String.compare key hi_key >= 0 then begin
          seal (Some key);
          Seq.Nil
        end
        else begin
          lock_view_key db txn vid key locking;
          let value =
            match Btree.search tree key with Some v -> v | None -> value
          in
          let row = Row.decode value in
          let next = Btree.cursor_next tree c in
          if Aggregate.count_of row = 0 then step next ()
          else Seq.Cons ((Key_codec.decode key, row), step next)
        end
  in
  fun () -> step (Btree.seek tree lo_key) ()

let view_scan_range db txn v ~lo ~hi locking =
  let vid = I.view_id v in
  let rt = I.view_rt db vid in
  maybe_auto_refresh db txn v rt;
  match txn with
  | Some tx when Txn.snapshot_of tx <> None ->
      snapshot_view_scan db tx rt vid ~lo:(Key_codec.encode lo)
        ~hi:(Key_codec.encode hi) ()
  | _ -> view_scan_range_locked db txn v ~lo ~hi locking

let view_count db v =
  let n = ref 0 in
  Seq.iter (fun _ -> incr n) (view_scan db None v Dirty);
  !n

let on_demand_aggregate db txn def =
  Ivdb_util.Metrics.incr (Database.metrics db) "query.on_demand_aggregate";
  let groups : (string, Row.t) Hashtbl.t = Hashtbl.create 64 in
  Seq.iter
    (fun row ->
      match Aggregate.delta_of_row def ~sign:1 row with
      | None -> ()
      | Some (key, delta) ->
          let cur =
            match Hashtbl.find_opt groups key with
            | Some r -> r
            | None -> Aggregate.zero_row def
          in
          let next =
            match Aggregate.apply def cur delta with
            | `Ok r -> r
            | `Recompute -> assert false
          in
          Hashtbl.replace groups key next)
    (I.source_rows db txn def);
  Hashtbl.fold
    (fun key row acc ->
      if Aggregate.count_of row > 0 then (key, row) :: acc else acc)
    groups []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (key, row) -> (Key_codec.decode key, row))

let refresh db tx v =
  let rt = I.view_rt db (I.view_id v) in
  match rt.Maintain.deferred with
  | None -> invalid_arg "Query.refresh: not a deferred view"
  | Some q ->
      let n =
        Deferred.drain tx q ~apply:(fun ~key delta ->
            Maintain.apply_delta_exclusive (Database.mgr db) tx rt ~key delta)
      in
      Ivdb_util.Metrics.add (Database.metrics db) "view.refresh_deltas" n;
      n

let staleness db v =
  let rt = I.view_rt db (I.view_id v) in
  match rt.Maintain.deferred with None -> 0 | Some q -> Deferred.pending q

let view_lookup_bounds db v group =
  let vid = I.view_id v in
  let rt = I.view_rt db vid in
  let key = Key_codec.encode group in
  match Btree.search rt.Maintain.tree key with
  | None -> None
  | Some stored ->
      let row = Row.decode stored in
      let pending = Ivdb_core.Inflight.pending (I.inflight db) ~vid ~key in
      Some (Ivdb_core.Inflight.bounds rt.Maintain.def row pending)
