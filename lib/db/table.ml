module Txn = Ivdb_txn.Txn
module Heap_file = Ivdb_storage.Heap_file
module Log_record = Ivdb_wal.Log_record
module Lock_name = Ivdb_lock.Lock_name
module Lock_mode = Ivdb_lock.Lock_mode
module Btree = Ivdb_btree.Btree
module Row = Ivdb_relation.Row
module Value = Ivdb_relation.Value
module Key_codec = Ivdb_relation.Key_codec
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Aggregate = Ivdb_core.Aggregate
module Maintain = Ivdb_core.Maintain
module Mvcc = Ivdb_txn.Mvcc
module I = Database.Internal

(* Record the heap row's before-image on the writer's first touch so a
   concurrent snapshot reader can resolve the rid to its pre-transaction
   value (chains are keyed by (table id, encoded rid)). *)
let record_heap_version db tx tid rid before =
  Mvcc.record_write
    (Txn.mvcc (Database.mgr db))
    ~txn:(Txn.id tx) ~obj:tid ~key:(I.encode_rid_payload rid) ~before

(* Index maintenance. Ordinary indexes key on (value, rid): inserts guard
   the gap with an instant RangeI_N, then hold X on the new key; deletes
   ghost-mark the entry under an X key lock so probing readers conflict
   with the uncommitted delete instead of reading around it. Unique indexes
   key on the value alone, with the rid as the entry payload: an insert
   colliding with an in-flight delete of the same value blocks on the key
   lock, then either revives the ghost with its own rid (deleter committed)
   or reports a constraint violation (deleter aborted / value present). *)
let index_insert db tx ix v rid =
  let ixid = I.ix_id ix in
  let unique = I.ix_unique ix in
  let key = I.index_key ~unique v rid in
  let tree = I.ix_tree ix in
  Txn.lock (Database.mgr db) tx (Lock_name.Key (ixid, key)) Lock_mode.X;
  let payload = if unique then I.encode_rid_payload rid else "" in
  let fresh_insert () =
    let gap =
      match Btree.next_key tree key with
      | Some (nk, _) -> Lock_name.Key (ixid, nk)
      | None -> Lock_name.Eof ixid
    in
    Txn.lock_instant (Database.mgr db) tx gap Lock_mode.RangeI_N;
    Btree.insert tx tree ~key ~value:(I.index_entry_live payload)
  in
  match Btree.search tree key with
  | None -> fresh_insert ()
  | Some entry when I.index_entry_is_ghost entry ->
      (* a reclaimable ghost: revive it carrying our rid *)
      Btree.update tx tree ~key ~value:(I.index_entry_live payload)
  | Some _ ->
      if unique then
        raise
          (Database.Constraint_violation
             (Printf.sprintf "unique index %d: duplicate value %s" ixid
                (Ivdb_relation.Value.to_string v)))
      else
        (* same (value, rid) should be impossible for live entries *)
        raise (Btree.Duplicate_key key)

let index_delete db tx ix v rid =
  let ixid = I.ix_id ix in
  let unique = I.ix_unique ix in
  let key = I.index_key ~unique v rid in
  Txn.lock (Database.mgr db) tx (Lock_name.Key (ixid, key)) Lock_mode.X;
  let tree = I.ix_tree ix in
  (match Btree.search tree key with
  | Some entry when not (I.index_entry_is_ghost entry) ->
      Btree.update tx tree ~key ~value:(I.index_entry_ghost_of entry)
  | Some _ | None -> raise Not_found);
  I.note_index_ghost db tx ixid key

(* Deltas a base-row change contributes to one dependent view. For join
   views, the changed row is joined against the other table through its
   join-column index (key-range locked), so the delta set is phantom-safe. *)
let view_deltas db tx (rt : Maintain.runtime) tid sign row =
  let def = rt.Maintain.def in
  match def.View_def.source with
  | View_def.Single { table; _ } ->
      if table = tid then Option.to_list (Aggregate.delta_of_row def ~sign row)
      else []
  | View_def.Join { left; right; left_col; right_col; _ } ->
      let joined =
        if tid = left then
          Database.Internal.index_probe db (Some tx) ~table:right ~col:right_col
            row.(left_col)
          |> Seq.map (fun rrow -> Array.append row rrow)
        else if tid = right then
          Database.Internal.index_probe db (Some tx) ~table:left ~col:left_col
            row.(right_col)
          |> Seq.map (fun lrow -> Array.append lrow row)
        else Seq.empty
      in
      List.of_seq (Seq.filter_map (Aggregate.delta_of_row def ~sign) joined)

let propagate db tx tid sign row =
  let rt = I.table_rt db tid in
  List.iter
    (fun vid ->
      let vrt = I.view_rt db vid in
      List.iter
        (fun (key, delta) ->
          (* on a sharded engine a delta whose group lives on another
             shard is diverted into the transaction's outbound buffer to
             ride the 2PC prepare there, not applied locally *)
          if not (I.route_remote db tx ~vid ~key delta) then
            Maintain.apply_delta (Database.mgr db) tx vrt ~key delta)
        (view_deltas db tx vrt tid sign row))
    (I.rt_dep_views rt)

let validate_row db tbl row =
  match
    Ivdb_relation.Schema.validate (I.rt_schema (I.table_rt db (I.table_id tbl))) row
  with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Table.insert: " ^ msg)

let insert db tx tbl row =
  validate_row db tbl row;
  let tid = I.table_id tbl in
  let mgr = Database.mgr db in
  let rt = I.table_rt db tid in
  Txn.lock mgr tx (Lock_name.Table tid) Lock_mode.IX;
  let rid, diffs = Heap_file.insert (I.rt_heap rt) (Row.encode row) in
  I.lock_row db tx tid rid Lock_mode.X;
  Txn.log_update mgr tx ~undo:(Log_record.Undo_heap_insert { table = tid; rid }) diffs;
  record_heap_version db tx tid rid None;
  List.iter (fun ix -> index_insert db tx ix row.(I.ix_col ix) rid) (I.rt_indexes rt);
  propagate db tx tid 1 row;
  Ivdb_util.Metrics.incr (Database.metrics db) "table.insert";
  rid

let delete db tx tbl rid =
  let tid = I.table_id tbl in
  let mgr = Database.mgr db in
  let rt = I.table_rt db tid in
  Txn.lock mgr tx (Lock_name.Table tid) Lock_mode.IX;
  I.lock_row db tx tid rid Lock_mode.X;
  let encoded =
    match Heap_file.get (I.rt_heap rt) rid with
    | Some r -> r
    | None -> raise Not_found
  in
  let row = Row.decode encoded in
  let diffs = Heap_file.delete (I.rt_heap rt) rid in
  Txn.log_update mgr tx ~undo:(Log_record.Undo_heap_delete { table = tid; rid }) diffs;
  record_heap_version db tx tid rid (Some encoded);
  I.note_ghost db tx tid rid;
  List.iter (fun ix -> index_delete db tx ix row.(I.ix_col ix) rid) (I.rt_indexes rt);
  propagate db tx tid (-1) row;
  Ivdb_util.Metrics.incr (Database.metrics db) "table.delete"

let update db tx tbl rid row' =
  delete db tx tbl rid;
  insert db tx tbl row'

let get db txn tbl rid =
  let tid = I.table_id tbl in
  let mgr = Database.mgr db in
  let stored () =
    Option.map Row.decode (Heap_file.get (I.rt_heap (I.table_rt db tid)) rid)
  in
  match txn with
  | Some tx when Txn.snapshot_of tx <> None ->
      let snap = Option.get (Txn.snapshot_of tx) in
      (match
         Mvcc.resolve (Txn.mvcc mgr) ~obj:tid
           ~key:(I.encode_rid_payload rid) ~snap
       with
      | Mvcc.Committed v | Mvcc.Pending v -> Option.map Row.decode v
      | Mvcc.Current -> stored ())
  | Some tx ->
      Txn.lock mgr tx (Lock_name.Table tid) Lock_mode.IS;
      Txn.lock mgr tx (Lock_name.Row (tid, rid)) Lock_mode.S;
      stored ()
  | None -> stored ()

let delete_where db tx tbl pred =
  let victims =
    I.heap_scan_rows db (Some tx) tbl
    |> Seq.filter (fun (_, row) -> Expr.eval_bool pred row)
    |> List.of_seq
  in
  List.iter (fun (rid, _) -> delete db tx tbl rid) victims;
  List.length victims

let row_count db tbl =
  let n = ref 0 in
  Heap_file.iter (I.rt_heap (I.table_rt db (I.table_id tbl))) (fun _ _ -> incr n);
  !n

let find db txn tbl ~col v =
  let tid = I.table_id tbl in
  let col_pos =
    Ivdb_relation.Schema.index_of (I.rt_schema (I.table_rt db tid)) col
  in
  List.of_seq (I.index_probe_rids db txn ~table:tid ~col:col_pos v)
