module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace
module Disk = Ivdb_storage.Disk
module Fault = Ivdb_storage.Fault
module Bufpool = Ivdb_storage.Bufpool
module Heap_file = Ivdb_storage.Heap_file
module Heap_page = Ivdb_storage.Heap_page
module Wal = Ivdb_wal.Wal
module Log_record = Ivdb_wal.Log_record
module Lock_mgr = Ivdb_lock.Lock_mgr
module Lock_name = Ivdb_lock.Lock_name
module Lock_mode = Ivdb_lock.Lock_mode
module Txn = Ivdb_txn.Txn
module Btree = Ivdb_btree.Btree
module Recovery = Ivdb_recovery.Recovery
module Schema = Ivdb_relation.Schema
module Row = Ivdb_relation.Row
module Value = Ivdb_relation.Value
module Key_codec = Ivdb_relation.Key_codec
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Aggregate = Ivdb_core.Aggregate
module Maintain = Ivdb_core.Maintain
module Deferred = Ivdb_core.Deferred
module Group_gc = Ivdb_core.Group_gc
module Sched = Ivdb_sched.Sched

type config = {
  pool_capacity : int;
  read_cost : int;
  write_cost : int;
  txn_retries : int;
  auto_ghost_gc : bool;
  escalation_threshold : int option;
  commit_mode : Txn.commit_mode;
  fault : Fault.config;
}

let default_config =
  {
    pool_capacity = 512;
    read_cost = 100;
    write_cost = 100;
    txn_retries = 10;
    auto_ghost_gc = true;
    escalation_threshold = None;
    commit_mode = Txn.Sync;
    fault = Fault.no_faults;
  }

type role = Primary | Follower

exception Read_only_replica

type table = int
type view = int

type table_rt = {
  meta : Catalog.table_meta;
  tschema : Schema.t;
  heap : Heap_file.t;
  mutable indexes : index_rt list;
  mutable dep_views : int list;
}

and index_rt = { imeta : Catalog.index_meta; itree : Btree.t }

type t = {
  cfg : config;
  mutable role : role; (* flips Follower -> Primary on [promote] *)
  mutable redo_state : Recovery.Redo.t option; (* Some iff role = Follower *)
  (* Commit-horizon gating (follower only): shipped records past the last
     commit boundary sit in [pending_tail] — received but not ingested —
     until the records that close every open transaction arrive, so the
     applied log prefix is always transaction-consistent and snapshot
     reads never observe a split transaction. [pending_open] tracks the
     transactions left open by the buffered suffix; [received] is the
     LSN of the last record accepted (applied or buffered). *)
  pending_tail : Log_record.t Queue.t;
  pending_open : (int, unit) Hashtbl.t;
  mutable received : Log_record.lsn;
  mutable fplan : Fault.t;
  dmetrics : Metrics.t;
  dtrace : Trace.t;
  m_retry : Metrics.counter;
  m_give_up : Metrics.counter;
  disk : Disk.t;
  dpool : Bufpool.t;
  dwal : Wal.t;
  dlocks : Lock_mgr.t;
  tmgr : Txn.mgr;
  catalog : Catalog.t;
  dtables : (int, table_rt) Hashtbl.t;
  heaps : (int, Heap_file.t) Hashtbl.t; (* tables and deferred queues *)
  trees : (int, Btree.t) Hashtbl.t; (* secondary indexes and views *)
  views_rt : (int, Maintain.runtime) Hashtbl.t;
  views_meta : (int, Catalog.view_meta) Hashtbl.t;
  ghosts : (int, ghost_entry list ref) Hashtbl.t; (* per txn *)
  inflight : Ivdb_core.Inflight.t;
  row_lock_counts : (int * int, int ref) Hashtbl.t; (* (txn, table) -> rows *)
  (* --- sharding / 2PC participant state ---
     [shard] identifies this engine inside a hash-partitioned cluster;
     [delta_router] maps a view group to its owning shard so escrow deltas
     for remote groups are diverted into [outbound] (per txn) instead of
     applied locally. [indoubt_2pc] holds prepared transactions (still
     owning their locks) keyed by the coordinator's global id until a
     decision arrives; [decided_2pc] dedupes decision/prepare retransmits. *)
  mutable shard : (int * int) option; (* (shard id, shard count) *)
  mutable delta_router : (view:int -> key:string -> int) option;
  outbound : (int, (int * int * string * string) list ref) Hashtbl.t;
      (* txn -> (dest shard, view, group key, encoded delta), newest first *)
  indoubt_2pc : (string, Txn.t) Hashtbl.t;
  decided_2pc : (string, bool) Hashtbl.t;
  mutable last_decided : string option;
}

and ghost_entry =
  | Ghost_row of int * Heap_file.rid
  | Ghost_index_entry of int * string

(* Secondary-index entries are ghosted rather than removed on delete, so a
   probing reader conflicts with the deleter's key lock instead of reading
   around an uncommitted delete. Entry values are a one-byte liveness flag
   followed by a payload: empty for ordinary indexes (the rid lives in the
   key), the rid for unique indexes (whose key is the column value alone). *)
let index_entry_live payload = "\000" ^ payload
let index_entry_ghost_of v = "\001" ^ String.sub v 1 (String.length v - 1)
let index_entry_is_ghost v = String.length v > 0 && v.[0] = '\001'
let index_entry_payload v = String.sub v 1 (String.length v - 1)

let encode_rid_payload (rid : Heap_file.rid) =
  let b = Bytes.create 8 in
  Ivdb_util.Bytes_util.set_u32 b 0 rid.Heap_file.rpage;
  Ivdb_util.Bytes_util.set_u32 b 4 rid.Heap_file.rslot;
  Bytes.to_string b

let decode_rid_payload s =
  {
    Heap_file.rpage = Ivdb_util.Bytes_util.get_u32 (Bytes.of_string s) 0;
    rslot = Ivdb_util.Bytes_util.get_u32 (Bytes.of_string s) 4;
  }

let metrics t = t.dmetrics
let trace t = t.dtrace
let mgr t = t.tmgr
let locks t = t.dlocks
let wal t = t.dwal
let pool t = t.dpool

let heap_of t id =
  match Hashtbl.find_opt t.heaps id with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Database: unknown heap %d" id)

let tree_of t id =
  match Hashtbl.find_opt t.trees id with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Database: unknown index %d" id)

let table_rt t id =
  match Hashtbl.find_opt t.dtables id with
  | Some rt -> rt
  | None -> invalid_arg (Printf.sprintf "Database: unknown table %d" id)

let view_rt t id =
  match Hashtbl.find_opt t.views_rt id with
  | Some rt -> rt
  | None -> invalid_arg (Printf.sprintf "Database: unknown view %d" id)

let view_meta_of t id = Hashtbl.find t.views_meta id

(* Acquire a row lock, escalating to a table lock once the transaction has
   accumulated [escalation_threshold] row locks on that table. A held table
   lock that covers the request makes the row lock unnecessary. *)
let lock_row t tx tid rid mode =
  let table_covers =
    match Lock_mgr.held_mode t.dlocks ~txn:(Txn.id tx) (Lock_name.Table tid) with
    | Some held -> Lock_mode.covers ~held ~req:mode
    | None -> false
  in
  if not table_covers then begin
    Txn.lock t.tmgr tx (Lock_name.Row (tid, rid)) mode;
    match t.cfg.escalation_threshold with
    | None -> ()
    | Some threshold ->
        let key = (Txn.id tx, tid) in
        let c =
          match Hashtbl.find_opt t.row_lock_counts key with
          | Some c -> c
          | None ->
              let c = ref 0 in
              Hashtbl.replace t.row_lock_counts key c;
              c
        in
        incr c;
        if !c = threshold then begin
          Metrics.incr t.dmetrics "lock.escalation";
          let table_mode =
            match mode with
            | Lock_mode.X | Lock_mode.U -> Lock_mode.X
            | _ -> Lock_mode.S
          in
          Txn.lock t.tmgr tx (Lock_name.Table tid) table_mode
        end
  end

(* --- row sources ---------------------------------------------------------- *)

let mvcc t = Txn.mvcc t.tmgr

let is_snapshot = function
  | Some tx -> Txn.snapshot_of tx <> None
  | None -> false

let snap_of tx =
  match Txn.snapshot_of tx with
  | Some s -> s
  | None -> invalid_arg "Database: not a snapshot transaction"

(* Snapshot heap scan: no locks at all. Every slot — live and ghost — is
   resolved through the version chains; chain-only rids (rows whose ghost
   slot was physically reclaimed after the snapshot began) are unioned in.
   A ghost with no visible version was deleted before the snapshot; a live
   slot whose chain says [None] was inserted after it. *)
let snapshot_heap_rows t ~snap tid =
  let rt = table_rt t tid in
  let mv = mvcc t in
  let out = ref [] in
  let seen = Hashtbl.create 64 in
  let emit rid bytes = out := (rid, Row.decode bytes) :: !out in
  Heap_file.iter_all rt.heap (fun rid payload ~ghost ->
      let key = encode_rid_payload rid in
      Hashtbl.replace seen key ();
      match Ivdb_txn.Mvcc.resolve mv ~obj:tid ~key ~snap with
      | Ivdb_txn.Mvcc.Committed v | Ivdb_txn.Mvcc.Pending v -> (
          match v with Some bytes -> emit rid bytes | None -> ())
      | Ivdb_txn.Mvcc.Current -> if not ghost then emit rid payload);
  List.iter
    (fun key ->
      if not (Hashtbl.mem seen key) then
        match Ivdb_txn.Mvcc.resolve mv ~obj:tid ~key ~snap with
        | Ivdb_txn.Mvcc.Committed (Some bytes) | Ivdb_txn.Mvcc.Pending (Some bytes)
          ->
            emit (decode_rid_payload key) bytes
        | _ -> ())
    (Ivdb_txn.Mvcc.keys_of_obj mv ~obj:tid);
  List.sort (fun (a, _) (b, _) -> Heap_file.rid_compare a b) !out

(* Snapshot the rid list, then (re)read each record lazily; with a
   transaction each row is S-locked before it is read, so in-flight writers
   block the scan as serializability requires. Snapshot transactions take
   the lock-free MVCC path instead. *)
let heap_scan_rows_locked t txn tid =
  let rt = table_rt t tid in
  let rids = ref [] in
  (* transactional scans visit ghosts too: an uncommitted delete must block
     the reader on its row lock, not be silently invisible *)
  (match txn with
  | Some _ -> Heap_file.iter_all rt.heap (fun rid _ ~ghost:_ -> rids := rid :: !rids)
  | None -> Heap_file.iter rt.heap (fun rid _ -> rids := rid :: !rids));
  let rids = List.rev !rids in
  (match txn with
  | Some tx -> Txn.lock t.tmgr tx (Lock_name.Table tid) Lock_mode.IS
  | None -> ());
  List.to_seq rids
  |> Seq.filter_map (fun rid ->
         (match txn with
         | Some tx -> lock_row t tx tid rid Lock_mode.S
         | None -> ());
         Option.map (fun r -> (rid, Row.decode r)) (Heap_file.get rt.heap rid))

let heap_scan_rows t txn tid =
  match txn with
  | Some tx when Txn.snapshot_of tx <> None ->
      List.to_seq (snapshot_heap_rows t ~snap:(snap_of tx) tid)
  | _ -> heap_scan_rows_locked t txn tid

let heap_scan_seq t txn tid = Seq.map snd (heap_scan_rows t txn tid)

(* Probe [table]'s rows with [col] = [v] through an index when one exists.
   Index keys are (value, rpage, rslot); the value prefix bounds the scan.
   With a transaction the protocol is key-range locking: RangeS_S on every
   entry in range and on the terminating key (or EOF), then S on each rid. *)
(* Key-space range walk under key-range locking, shared by point probes and
   range scans. [lo_key] inclusive, [hi_key] exclusive; the fixpoint logic
   is as for point probes (see below). *)
let index_keyspace_rids t txn (ix : index_rt) ~table:tid ~lo_key ~hi_key =
  let rt = table_rt t tid in
  let ixid = ix.imeta.Catalog.ix_id in
  let lock_key k m =
    match txn with
    | Some tx -> Txn.lock t.tmgr tx (Lock_name.Key (ixid, k)) m
    | None -> ()
  in
  let lock_eof () =
    match txn with
    | Some tx -> Txn.lock t.tmgr tx (Lock_name.Eof ixid) Lock_mode.RangeS_S
    | None -> ()
  in
  (* One pass walks the range, range-locking every key and the terminator.
     Acquiring a lock can block, and while blocked the key set in range may
     change under us (a waited-for writer commits a delete + reinsert). So
     iterate to a fixpoint: once a pass sees exactly the keys of the
     previous pass, every key and gap is locked and the set can no longer
     move. *)
  let one_pass () =
    let keys = ref [] in
    let rec walk cursor =
      match cursor with
      | None -> lock_eof ()
      | Some (k, _, c) ->
          if String.compare k hi_key < 0 then begin
            lock_key k Lock_mode.RangeS_S;
            keys := k :: !keys;
            walk (Btree.cursor_next ix.itree c)
          end
          else
            (* the first key past the range seals the gap *)
            lock_key k Lock_mode.RangeS_S
    in
    walk (Btree.seek ix.itree lo_key);
    List.rev !keys
  in
  let rec stable prev =
    let keys = one_pass () in
    if keys = prev then keys else stable keys
  in
  let keys = match txn with Some _ -> stable (one_pass ()) | None -> one_pass () in
  (* re-read each entry after its lock was granted: a ghost flag means the
     deleter committed while we waited — skip it *)
  let rids =
    List.filter_map
      (fun k ->
        match Btree.search ix.itree k with
        | Some v when index_entry_is_ghost v -> None
        | Some v when ix.imeta.Catalog.ix_unique ->
            Some (decode_rid_payload (index_entry_payload v))
        | Some _ | None -> (
            match Key_codec.decode k with
            | [| _; Value.Int rpage; Value.Int rslot |] ->
                Some { Heap_file.rpage; rslot }
            | _ -> invalid_arg "Database: corrupt index key"))
      keys
  in
  List.to_seq rids
  |> Seq.filter_map (fun rid ->
         (match txn with
         | Some tx -> lock_row t tx tid rid Lock_mode.S
         | None -> ());
         Option.map (fun r -> (rid, Row.decode r)) (Heap_file.get rt.heap rid))

let find_index_on t tid col =
  List.find_opt
    (fun ix -> ix.imeta.Catalog.ix_col = col)
    (table_rt t tid).indexes

(* Index entries are not versioned (ghost reclaim is not horizon-gated), so
   snapshot transactions answer probes and range scans from filtered
   snapshot heap scans instead of the index. *)
let index_probe_rids t txn ~table:tid ~col v =
  match (if is_snapshot txn then None else find_index_on t tid col) with
  | None ->
      Metrics.incr t.dmetrics "view.join_scan_fallback";
      heap_scan_rows t txn tid
      |> Seq.filter (fun (_, row) -> Value.equal row.(col) v)
  | Some ix ->
      let lo_key = Key_codec.encode_one v in
      let hi_key = Key_codec.successor lo_key in
      index_keyspace_rids t txn ix ~table:tid ~lo_key ~hi_key

(* Rows with [col] in the half-open / closed interval; bounds are (value,
   inclusive?) pairs. Falls back to a filtered scan without an index. *)
let index_range_rids t txn ~table:tid ~col ~lo ~hi =
  let in_range row =
    let v = row.(col) in
    (match lo with
    | None -> true
    | Some (l, incl) ->
        let c = Value.compare v l in
        if incl then c >= 0 else c > 0)
    && (match hi with
       | None -> true
       | Some (h, incl) ->
           let c = Value.compare v h in
           if incl then c <= 0 else c < 0)
  in
  match (if is_snapshot txn then None else find_index_on t tid col) with
  | None ->
      Metrics.incr t.dmetrics "view.join_scan_fallback";
      heap_scan_rows t txn tid |> Seq.filter (fun (_, row) -> in_range row)
  | Some ix ->
      let lo_key =
        match lo with
        | None -> ""
        | Some (l, incl) ->
            let k = Key_codec.encode_one l in
            if incl then k else Key_codec.successor k
      in
      let hi_key =
        match hi with
        | None -> "\255\255\255\255\255\255\255\255\255\255"
        | Some (h, incl) ->
            let k = Key_codec.encode_one h in
            if incl then Key_codec.successor k else k
      in
      index_keyspace_rids t txn ix ~table:tid ~lo_key ~hi_key

let index_probe t txn ~table ~col v = Seq.map snd (index_probe_rids t txn ~table ~col v)

let source_rows t txn (def : View_def.t) =
  match def.View_def.source with
  | View_def.Single { table; _ } -> heap_scan_seq t txn table
  | View_def.Join { left; right; left_col; right_col; _ } -> (
      match txn with
      | None ->
          Ivdb_exec.Iter.hash_join ~left_key:[| left_col |]
            ~right_key:[| right_col |] (heap_scan_seq t None left)
            (heap_scan_seq t None right)
      | Some tx when Txn.snapshot_of tx <> None ->
          (* both sides read lock-free at the snapshot; no index probing *)
          Ivdb_exec.Iter.hash_join ~left_key:[| left_col |]
            ~right_key:[| right_col |] (heap_scan_seq t txn left)
            (heap_scan_seq t txn right)
      | Some _ ->
          heap_scan_seq t txn left
          |> Seq.concat_map (fun lrow ->
                 index_probe t txn ~table:right ~col:right_col lrow.(left_col)
                 |> Seq.map (fun rrow -> Array.append lrow rrow)))

(* --- runtime registration -------------------------------------------------- *)

let register_table t (meta : Catalog.table_meta) ~heap =
  let heap =
    match heap with
    | Some h -> h
    | None -> Heap_file.attach t.dpool t.disk ~first_page:meta.Catalog.tb_first_page
  in
  let rt =
    { meta; tschema = Catalog.schema_of meta; heap; indexes = []; dep_views = [] }
  in
  Hashtbl.replace t.dtables meta.Catalog.tb_id rt;
  Hashtbl.replace t.heaps meta.Catalog.tb_id heap

let register_index t (meta : Catalog.index_meta) ~tree =
  let tree =
    match tree with
    | Some b -> b
    | None -> Btree.attach t.tmgr ~index_id:meta.Catalog.ix_id ~root:meta.Catalog.ix_root
  in
  let rt = table_rt t meta.Catalog.ix_table in
  rt.indexes <- rt.indexes @ [ { imeta = meta; itree = tree } ];
  Hashtbl.replace t.trees meta.Catalog.ix_id tree

let register_view t (meta : Catalog.view_meta) ~tree ~queue =
  let tree =
    match tree with
    | Some b -> b
    | None -> Btree.attach t.tmgr ~index_id:meta.Catalog.vw_id ~root:meta.Catalog.vw_root
  in
  let queue =
    match (queue, meta.Catalog.vw_queue) with
    | Some q, _ -> Some q
    | None, Some (qid, first_page) ->
        Some (Deferred.attach t.tmgr ~queue_id:qid ~first_page)
    | None, None -> None
  in
  (match queue with
  | Some q -> Hashtbl.replace t.heaps (Deferred.queue_id q) (Deferred.heap q)
  | None -> ());
  let def = meta.Catalog.vw_def in
  let rt =
    {
      Maintain.vid = meta.Catalog.vw_id;
      def;
      tree;
      strategy = meta.Catalog.vw_strategy;
      create_mode = meta.Catalog.vw_create_mode;
      inflight = t.inflight;
      deferred = queue;
      recompute_group =
        (fun txn key ->
          Aggregate.fold_rows def
            (Seq.filter
               (fun row -> View_def.group_key def row = key)
               (source_rows t (Some txn) def)));
      stats = Maintain.make_stats t.dmetrics;
      vstats = Maintain.make_vstats ();
    }
  in
  Hashtbl.replace t.views_rt meta.Catalog.vw_id rt;
  Hashtbl.replace t.views_meta meta.Catalog.vw_id meta;
  Hashtbl.replace t.trees meta.Catalog.vw_id tree;
  List.iter
    (fun tid -> let trt = table_rt t tid in
      if not (List.mem meta.Catalog.vw_id trt.dep_views) then
        trt.dep_views <- trt.dep_views @ [ meta.Catalog.vw_id ])
    (View_def.tables_of def)

let install_undo t =
  Txn.set_undo_exec t.tmgr (fun _txn undo ->
      match undo with
      | Log_record.No_undo -> []
      | Log_record.Undo_heap_insert { table; rid } -> Heap_file.delete (heap_of t table) rid
      | Log_record.Undo_heap_delete { table; rid } -> Heap_file.revive (heap_of t table) rid
      | Log_record.Undo_heap_update { table; rid; before } ->
          Heap_file.update (heap_of t table) rid before
      | Log_record.Undo_bt_insert { index; key } -> Btree.delete_raw (tree_of t index) ~key
      | Log_record.Undo_bt_delete { index; key; value } ->
          Btree.insert_raw (tree_of t index) ~key ~value
      | Log_record.Undo_bt_update { index; key; before } ->
          Btree.update_raw (tree_of t index) ~key ~value:before
      | Log_record.Undo_escrow { view; key; inverse } ->
          Maintain.undo_escrow t.tmgr (view_rt t view) ~key ~inverse)

(* The trace is wired to the deterministic scheduler's clock and fiber id,
   so under Sched.run the same seed yields a byte-identical event stream. *)
let make_trace () = Trace.create ~clock:Sched.now ~fiber:Sched.self ()

let bare ?(config = default_config) ?(role = Primary) ?trace ~metrics ~disk ~wal () =
  let trace = match trace with Some tr -> tr | None -> make_trace () in
  let fplan =
    if Fault.enabled_in config.fault then Fault.create ~trace metrics config.fault
    else Fault.none
  in
  Disk.set_fault disk fplan;
  Wal.set_fault wal fplan;
  let dpool =
    Bufpool.create disk ~capacity:config.pool_capacity ~trace metrics
  in
  Bufpool.set_wal_force dpool (fun lsn -> Wal.force wal (Int64.to_int lsn));
  let dlocks = Lock_mgr.create ~trace metrics in
  let tmgr =
    Txn.create_mgr ~commit_mode:config.commit_mode ~trace ~wal ~locks:dlocks
      ~pool:dpool metrics
  in
  let t =
    {
      cfg = config;
      role;
      (* a follower's replay position: the next LSN after whatever the log
         already holds (1 for a fresh follower; after a restart, recovery
         redo re-applies the retained prefix and streaming resumes here) *)
      redo_state =
        (match role with
        | Primary -> None
        | Follower ->
            Some (Recovery.Redo.create dpool ~next:(Wal.flushed_lsn wal + 1)));
      pending_tail = Queue.create ();
      pending_open = Hashtbl.create 16;
      received = Wal.flushed_lsn wal;
      fplan;
      dmetrics = metrics;
      dtrace = trace;
      m_retry = Metrics.counter metrics "txn.retry";
      m_give_up = Metrics.counter metrics "txn.give_up";
      disk;
      dpool;
      dwal = wal;
      dlocks;
      tmgr;
      catalog = Catalog.create ();
      dtables = Hashtbl.create 16;
      heaps = Hashtbl.create 16;
      trees = Hashtbl.create 16;
      views_rt = Hashtbl.create 16;
      views_meta = Hashtbl.create 16;
      ghosts = Hashtbl.create 16;
      inflight = Ivdb_core.Inflight.create ();
      row_lock_counts = Hashtbl.create 32;
      shard = None;
      delta_router = None;
      outbound = Hashtbl.create 8;
      indoubt_2pc = Hashtbl.create 8;
      decided_2pc = Hashtbl.create 32;
      last_decided = None;
    }
  in
  install_undo t;
  Txn.add_end_hook tmgr (fun txn status ->
      (* Escrow increments never record MVCC before-images (their stored
         before includes other transactions' uncommitted deltas), so a
         committing escrow writer pushes its versions here instead — the
         in-flight registry still holds every pending delta, this
         transaction's included, making [stored ⊖ Σ pending] the last
         fully-committed value: exactly the before-image of this commit's
         stamp. Runs before [drop_txn] and before lock release. *)
      (match (status, Txn.commit_stamp txn) with
      | Txn.Committed, Some stamp
        when Ivdb_txn.Mvcc.snapshot_count (Txn.mvcc tmgr) > 0 ->
          List.iter
            (fun (vid, key) ->
              let rt = view_rt t vid in
              match Btree.search rt.Maintain.tree key with
              | None -> ()
              | Some stored ->
                  let before =
                    List.fold_left
                      (fun r d ->
                        match
                          Aggregate.apply rt.Maintain.def r (Aggregate.negate d)
                        with
                        | `Ok r' -> r'
                        | `Recompute -> r)
                      (Row.decode stored)
                      (Ivdb_core.Inflight.pending t.inflight ~vid ~key)
                  in
                  Ivdb_txn.Mvcc.push_committed (Txn.mvcc tmgr) ~obj:vid ~key
                    ~stamp
                    (Some (Row.encode before)))
            (Ivdb_core.Inflight.keys_of_txn t.inflight ~txn:(Txn.id txn))
      | _ -> ());
      Ivdb_core.Inflight.drop_txn t.inflight ~txn:(Txn.id txn);
      Hashtbl.remove t.outbound (Txn.id txn);
      Hashtbl.filter_map_inplace
        (fun (tid, _) v -> if tid = Txn.id txn then None else Some v)
        t.row_lock_counts);
  t

let create ?(config = default_config) () =
  let metrics = Metrics.create () in
  let trace = make_trace () in
  let disk =
    Disk.create ~read_cost:config.read_cost ~write_cost:config.write_cost
      ~trace metrics
  in
  let wal = Wal.create ~trace metrics in
  bare ~config ~trace ~metrics ~disk ~wal ()

let create_follower ?(config = default_config) () =
  let metrics = Metrics.create () in
  let trace = make_trace () in
  let disk =
    Disk.create ~read_cost:config.read_cost ~write_cost:config.write_cost
      ~trace metrics
  in
  let wal = Wal.create ~trace metrics in
  bare ~config ~role:Follower ~trace ~metrics ~disk ~wal ()

let role t = t.role
let is_follower t = t.role = Follower
let reject_writes t = if t.role = Follower then raise Read_only_replica

(* Arm (or replace) the fault plan mid-life — the crash-point sweep tests
   set up the schema fault-free, then install the trigger before the
   measured workload so every injection ordinal lands inside it. *)
let install_fault t fcfg =
  let fplan = Fault.create ~trace:t.dtrace t.dmetrics fcfg in
  t.fplan <- fplan;
  Disk.set_fault t.disk fplan;
  Wal.set_fault t.dwal fplan

let fault_plan t = t.fplan

(* --- DDL -------------------------------------------------------------------- *)

let log_ddl_op t stx op = Txn.log_ddl t.tmgr stx (Catalog.encode_op op)

let create_table t ~name ~cols =
  reject_writes t;
  (match Catalog.table_named t.catalog name with
  | Some _ -> invalid_arg ("Database.create_table: duplicate table " ^ name)
  | None -> ());
  let id = Catalog.fresh_id t.catalog in
  let stx = Txn.begin_system t.tmgr in
  let heap, diffs = Heap_file.create t.dpool t.disk in
  Txn.log_update t.tmgr stx ~undo:Log_record.No_undo diffs;
  let meta =
    {
      Catalog.tb_id = id;
      tb_name = name;
      tb_cols =
        Array.of_list
          (List.map (fun c -> (c.Schema.name, c.Schema.ty, c.Schema.nullable)) cols);
      tb_first_page = Heap_file.first_page heap;
    }
  in
  log_ddl_op t stx (Catalog.Add_table meta);
  Txn.commit t.tmgr stx;
  Catalog.apply_op t.catalog (Catalog.Add_table meta);
  register_table t meta ~heap:(Some heap);
  id

let index_key ~unique v (rid : Heap_file.rid) =
  if unique then Key_codec.encode [| v |]
  else
    Key_codec.encode [| v; Value.Int rid.Heap_file.rpage; Value.Int rid.Heap_file.rslot |]

exception Constraint_violation of string

let create_index t ?(unique = false) tid ~col ~name =
  reject_writes t;
  let rt = table_rt t tid in
  let col_pos = Schema.index_of rt.tschema col in
  let id = Catalog.fresh_id t.catalog in
  let tree = Btree.create t.tmgr ~index_id:id in
  (* backfill in a system transaction *)
  let stx = Txn.begin_system t.tmgr in
  Heap_file.iter rt.heap (fun rid record ->
      let row = Row.decode record in
      let payload = if unique then encode_rid_payload rid else "" in
      try
        Btree.insert stx tree
          ~key:(index_key ~unique row.(col_pos) rid)
          ~value:(index_entry_live payload)
      with Btree.Duplicate_key _ ->
        raise
          (Constraint_violation
             (Printf.sprintf "unique index %s: duplicate value in column %s" name col)));
  let meta =
    {
      Catalog.ix_id = id;
      ix_name = name;
      ix_table = tid;
      ix_col = col_pos;
      ix_unique = unique;
      ix_root = Btree.root tree;
    }
  in
  log_ddl_op t stx (Catalog.Add_index meta);
  Txn.commit t.tmgr stx;
  Catalog.apply_op t.catalog (Catalog.Add_index meta);
  register_index t meta ~tree:(Some tree)

type view_source =
  | From of table * Expr.t option
  | From_join of {
      left : table;
      right : table;
      left_col : string;
      right_col : string;
      where : Expr.t option;
    }

let schema t tid = (table_rt t tid).tschema

let join_schema t left right =
  Schema.concat (schema t left) (schema t right)

let create_view t ?(create_mode = Maintain.System_txn) ?refresh_threshold ~name
    ~group_by ~aggs ~source ~strategy () =
  reject_writes t;
  (match Catalog.view_named t.catalog name with
  | Some _ -> invalid_arg ("Database.create_view: duplicate view " ^ name)
  | None -> ());
  let src, src_schema =
    match source with
    | From (tid, where) -> (View_def.Single { table = tid; where }, schema t tid)
    | From_join { left; right; left_col; right_col; where } ->
        ( View_def.Join
            {
              left;
              right;
              left_col = Schema.index_of (schema t left) left_col;
              right_col = Schema.index_of (schema t right) right_col;
              where;
            },
          join_schema t left right )
  in
  let def =
    {
      View_def.name;
      group_cols =
        Array.of_list (List.map (fun c -> Schema.index_of src_schema c) group_by);
      aggs = Array.of_list aggs;
      source = src;
    }
  in
  (match strategy with
  | Maintain.Escrow | Maintain.Deferred ->
      if not (View_def.escrow_compatible def) then
        invalid_arg
          "Database.create_view: escrow/deferred strategies require \
           COUNT/SUM-only views (MIN/MAX needs exclusive maintenance)"
  | Maintain.Exclusive -> ());
  let id = Catalog.fresh_id t.catalog in
  let tree = Btree.create t.tmgr ~index_id:id in
  let stx = Txn.begin_system t.tmgr in
  let queue, vw_queue =
    match strategy with
    | Maintain.Deferred ->
        let qid = Catalog.fresh_id t.catalog in
        let q, diffs = Deferred.create t.tmgr ~queue_id:qid in
        Txn.log_update t.tmgr stx ~undo:Log_record.No_undo diffs;
        (Some q, Some (qid, Deferred.first_page q))
    | Maintain.Exclusive | Maintain.Escrow -> (None, None)
  in
  (* initial materialization *)
  let groups : (string, Row.t) Hashtbl.t = Hashtbl.create 64 in
  Seq.iter
    (fun row ->
      match Aggregate.delta_of_row def ~sign:1 row with
      | None -> ()
      | Some (key, delta) ->
          let cur =
            match Hashtbl.find_opt groups key with
            | Some r -> r
            | None -> Aggregate.zero_row def
          in
          let next =
            match Aggregate.apply def cur delta with
            | `Ok r -> r
            | `Recompute -> assert false
          in
          Hashtbl.replace groups key next)
    (source_rows t None def);
  Hashtbl.iter
    (fun key row ->
      if Aggregate.count_of row > 0 then
        Btree.insert stx tree ~key ~value:(Row.encode row))
    groups;
  let meta =
    {
      Catalog.vw_id = id;
      vw_name = name;
      vw_def = def;
      vw_root = Btree.root tree;
      vw_strategy = strategy;
      vw_create_mode = create_mode;
      vw_refresh_threshold = refresh_threshold;
      vw_queue;
    }
  in
  log_ddl_op t stx (Catalog.Add_view meta);
  Txn.commit t.tmgr stx;
  Catalog.apply_op t.catalog (Catalog.Add_view meta);
  register_view t meta ~tree:(Some tree) ~queue;
  id

(* --- handles ------------------------------------------------------------------ *)

let table t name =
  match Catalog.table_named t.catalog name with
  | Some m -> m.Catalog.tb_id
  | None -> raise Not_found

let view t name =
  match Catalog.view_named t.catalog name with
  | Some m -> m.Catalog.vw_id
  | None -> raise Not_found

let table_name t tid = (table_rt t tid).meta.Catalog.tb_name

let list_tables t =
  List.map (fun (m : Catalog.table_meta) -> m.Catalog.tb_name) (Catalog.tables t.catalog)

let indexed_columns t tid =
  List.map
    (fun (m : Catalog.index_meta) ->
      ((Schema.col_at (table_rt t tid).tschema m.Catalog.ix_col).Schema.name,
        m.Catalog.ix_name))
    (Catalog.indexes_of_table t.catalog tid)

let list_views t =
  List.map
    (fun (m : Catalog.view_meta) ->
      (m.Catalog.vw_name, Maintain.strategy_to_string m.Catalog.vw_strategy))
    (Catalog.views t.catalog)
let view_name t vid = (view_meta_of t vid).Catalog.vw_name
let view_def t vid = (view_meta_of t vid).Catalog.vw_def
let view_strategy t vid = (view_meta_of t vid).Catalog.vw_strategy
let view_refresh_threshold t vid = (view_meta_of t vid).Catalog.vw_refresh_threshold

(* --- transactions ---------------------------------------------------------------- *)

let note_ghost_entry t txn entry =
  match Hashtbl.find_opt t.ghosts (Txn.id txn) with
  | Some l -> l := entry :: !l
  | None -> Hashtbl.replace t.ghosts (Txn.id txn) (ref [ entry ])

let note_ghost t txn tid rid = note_ghost_entry t txn (Ghost_row (tid, rid))
let note_index_ghost t txn ixid key = note_ghost_entry t txn (Ghost_index_entry (ixid, key))

let reclaim_ghosts t entries =
  if entries <> [] then begin
    let stx = Txn.begin_system t.tmgr in
    List.iter
      (fun entry ->
        match entry with
        | Ghost_row (tid, rid) -> (
            match Heap_file.free_ghost (heap_of t tid) rid with
            | [] -> ()
            | diffs -> Txn.log_update t.tmgr stx ~undo:Log_record.No_undo diffs)
        | Ghost_index_entry (ixid, key) -> (
            (* remove only if still a ghost and no reader still speaks for
               the key; otherwise the gc sweep picks it up later *)
            let tree = tree_of t ixid in
            match Btree.search tree key with
            | Some v
              when index_entry_is_ghost v
                   && Lock_mgr.unlocked t.dlocks (Lock_name.Key (ixid, key)) ->
                Btree.delete stx tree ~key
            | Some _ | None -> ()))
      entries;
    Txn.commit t.tmgr stx
  end

type abort_reason =
  | Deadlock_victim
  | Lock_timeout
  | User_abort of exn

(* Retry loop returning the terminal exception (if any) unconsumed, so
   [transact] can re-raise the original and [transact_result] can classify
   it without losing the payload. *)
let transact_exn t ?retries f =
  reject_writes t;
  let retries = match retries with Some r -> r | None -> t.cfg.txn_retries in
  let rec go attempts_left =
    let tx = Txn.begin_txn t.tmgr in
    let finish_ghosts committed =
      match Hashtbl.find_opt t.ghosts (Txn.id tx) with
      | None -> ()
      | Some l ->
          Hashtbl.remove t.ghosts (Txn.id tx);
          if committed && t.cfg.auto_ghost_gc then reclaim_ghosts t !l
    in
    match f tx with
    | v ->
        Txn.commit t.tmgr tx;
        finish_ghosts true;
        Ok v
    | exception Txn.Conflict _ when attempts_left > 0 ->
        Txn.abort t.tmgr tx;
        finish_ghosts false;
        Metrics.inc t.m_retry;
        Sched.yield ();
        go (attempts_left - 1)
    | exception (Fault.Crash_point _ as e) ->
        (* power loss, not an abort: nothing runs after the crash point —
           the rollback happens in recovery, from the stable log *)
        raise e
    | exception e ->
        Txn.abort t.tmgr tx;
        finish_ghosts false;
        (match e with Txn.Conflict _ -> Metrics.inc t.m_give_up | _ -> ());
        Error e
  in
  go retries

(* A snapshot transaction can neither conflict nor deadlock, so there is no
   retry loop: begin, run, commit (abort on exception just unregisters). *)
let transact_snapshot t f =
  let tx = Txn.begin_snapshot t.tmgr in
  match f tx with
  | v ->
      Txn.commit t.tmgr tx;
      v
  | exception e ->
      Txn.abort t.tmgr tx;
      raise e

let transact t ?retries ?(read_only = false) f =
  if read_only then transact_snapshot t f
  else match transact_exn t ?retries f with Ok v -> v | Error e -> raise e

(* No lock acquisition in the engine times out today (deadlocks are
   detected, not waited out), so [Lock_timeout] never currently arises; it
   completes the vocabulary for callers that pattern-match exhaustively. *)
let transact_result t ?retries f =
  match transact_exn t ?retries f with
  | Ok v -> Ok v
  | Error (Txn.Conflict _) -> Error Deadlock_victim
  | Error e -> Error (User_abort e)

(* Sharp checkpoint: flush the pool so the dirty-page table is empty, then
   discard the log prefix nothing can need anymore — redo starts at the
   checkpoint, and undo of any active transaction reaches back at most to
   its first record. *)
let checkpoint_gen t ~truncate =
  (* a follower must never append its own records: its log is a verbatim
     copy of the primary's LSN space *)
  reject_writes t;
  Bufpool.flush_all t.dpool;
  Txn.checkpoint t.tmgr ~catalog:(Catalog.encode_snapshot t.catalog);
  let ckpt = Wal.last_checkpoint_lsn t.dwal in
  if ckpt > 0 && truncate then begin
    if Fault.tears_writes t.fplan then
      (* torn-write injection is armed: retain the full log so a torn page
         can be reset to fresh and rebuilt from its complete diff history
         (the same trade as PostgreSQL's full_page_writes — pay log volume
         for torn-page recoverability) *)
      Metrics.incr t.dmetrics "fault.truncation_skipped"
    else begin
      let safe =
        List.fold_left min ckpt
          (List.map (fun (_, recl) -> Int64.to_int recl) (Bufpool.dirty_page_table t.dpool)
          @ Txn.active_first_lsns t.tmgr)
      in
      Wal.truncate_before t.dwal safe
    end
  end

let checkpoint t = checkpoint_gen t ~truncate:true

(* --- sharding / two-phase commit (participant side) -------------------------------- *)

(* Remote escrow deltas ride the prepare payload as an opaque byte string;
   this codec is shared by the coordinator (packing per-shard payloads),
   the wire (which treats it as bytes), and recovery (the payload is
   logged verbatim inside the Prepare record). Layout: u32 count, then per
   entry u32 view id | u32-framed group key | u32-framed encoded delta. *)
module Deltas = struct
  let encode entries =
    let buf = Buffer.create 64 in
    let add_u32 v =
      let b = Bytes.create 4 in
      Ivdb_util.Bytes_util.set_u32 b 0 v;
      Buffer.add_bytes buf b
    in
    let add_str s =
      add_u32 (String.length s);
      Buffer.add_string buf s
    in
    add_u32 (List.length entries);
    List.iter
      (fun (vid, key, delta) ->
        add_u32 vid;
        add_str key;
        add_str delta)
      entries;
    Buffer.contents buf

  let decode s =
    let pos = ref 0 in
    let fail () = invalid_arg "Database.Deltas.decode: malformed payload" in
    let rd_u32 () =
      if !pos + 4 > String.length s then fail ();
      let v =
        (Char.code s.[!pos] lsl 24)
        lor (Char.code s.[!pos + 1] lsl 16)
        lor (Char.code s.[!pos + 2] lsl 8)
        lor Char.code s.[!pos + 3]
      in
      pos := !pos + 4;
      v
    in
    let rd_str () =
      let len = rd_u32 () in
      if !pos + len > String.length s then fail ();
      let v = String.sub s !pos len in
      pos := !pos + len;
      v
    in
    let n = rd_u32 () in
    let entries =
      List.init n (fun _ ->
          let vid = rd_u32 () in
          let key = rd_str () in
          (vid, key, rd_str ()))
    in
    if !pos <> String.length s then fail ();
    entries
end

let set_shard t ~shard ~shards =
  if shard < 0 || shard >= shards then
    invalid_arg "Database.set_shard: shard id out of range";
  t.shard <- Some (shard, shards)

let shard_info t = t.shard
let set_delta_router t f = t.delta_router <- Some f

(* Called from [Table.propagate] per produced view delta: [true] means the
   delta's group lives on another shard — it has been stashed in the
   transaction's outbound buffer (to ride a Prepare over there) and must
   NOT be applied locally. Only additive (escrow) deltas can travel;
   anything else landing on a remote group is a partitioning error. *)
let route_remote t tx ~vid ~key delta =
  match (t.delta_router, t.shard) with
  | Some f, Some (self, _) ->
      let dest = f ~view:vid ~key in
      if dest = self then false
      else begin
        let bytes =
          try Aggregate.encode delta
          with Invalid_argument _ ->
            invalid_arg
              (Printf.sprintf
                 "Database: non-additive delta for view %d cannot be routed \
                  to remote shard %d"
                 vid dest)
        in
        let txid = Txn.id tx in
        let l =
          match Hashtbl.find_opt t.outbound txid with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace t.outbound txid l;
              l
        in
        l := (dest, vid, key, bytes) :: !l;
        Txn.note_delta tx;
        Metrics.incr t.dmetrics "shard.outbound_delta";
        true
      end
  | _ -> false

let outbound_deltas t tx =
  match Hashtbl.find_opt t.outbound (Txn.id tx) with
  | Some l -> List.rev !l
  | None -> []

let gtxn_status t gtxn =
  if Hashtbl.mem t.indoubt_2pc gtxn then `Prepared
  else
    match Hashtbl.find_opt t.decided_2pc gtxn with
    | Some c -> `Decided c
    | None -> `Unknown

(* 2PC phase 1 on a participant: apply the inbound remote deltas through
   the ordinary escrow path *inside* the preparing transaction — they are
   logged with escrow undo and covered by E locks, so they commit or die
   atomically with the decision — then force a Prepare record carrying
   the payload. The transaction keeps all its locks; its handle moves
   from the session into the in-doubt table, where it survives until a
   decision arrives (possibly after a crash, via recovery's in-doubt
   resurrection). *)
let prepare_2pc t tx ~gtxn ~deltas =
  reject_writes t;
  (match gtxn_status t gtxn with
  | `Unknown -> ()
  | `Prepared | `Decided _ ->
      invalid_arg ("Database.prepare_2pc: duplicate gtxn " ^ gtxn));
  List.iter
    (fun (vid, key, bytes) ->
      let rt = view_rt t vid in
      Maintain.apply_delta t.tmgr tx rt ~key (Aggregate.decode bytes))
    (Deltas.decode deltas);
  Txn.prepare t.tmgr tx ~gtxn ~deltas;
  Hashtbl.replace t.indoubt_2pc gtxn tx;
  Metrics.incr t.dmetrics "shard.prepared"

(* 2PC phase 2: idempotent against retransmits. An unknown gtxn with an
   abort decision is presumed-abort (this shard never prepared it, or its
   dedupe memory outlived the decision); an unknown commit is a protocol
   violation — a coordinator never decides commit without every vote. *)
let decide_2pc t ~gtxn ~committed =
  match Hashtbl.find_opt t.indoubt_2pc gtxn with
  | Some tx ->
      Hashtbl.remove t.indoubt_2pc gtxn;
      Txn.log_decision t.tmgr tx ~gtxn ~committed;
      if committed then Txn.commit t.tmgr tx else Txn.abort t.tmgr tx;
      Hashtbl.replace t.decided_2pc gtxn committed;
      t.last_decided <- Some gtxn;
      Metrics.incr t.dmetrics "shard.decided";
      `Applied
  | None -> (
      match Hashtbl.find_opt t.decided_2pc gtxn with
      | Some _ -> `Duplicate
      | None ->
          if committed then
            invalid_arg
              ("Database.decide_2pc: commit decision for unknown gtxn " ^ gtxn)
          else `Presumed_abort)

let indoubt_gtxns t =
  Hashtbl.fold (fun g tx acc -> (g, Txn.id tx) :: acc) t.indoubt_2pc []
  |> List.sort compare

let indoubt_count t = Hashtbl.length t.indoubt_2pc
let last_decided t = t.last_decided

(* Re-acquire an in-doubt transaction's write locks from its log chain —
   the logical-undo information in each Update record names every object
   it touched — and re-record its escrow deltas in the in-flight registry
   so escrow bounds checks and the commit-time MVCC push see them again.
   CLR sections are skipped via undo_next: their work is already undone,
   so nothing conflicts on it. *)
let relock_indoubt t tx =
  let lock name mode = Txn.lock t.tmgr tx name mode in
  let rec go lsn =
    if lsn <> Log_record.nil_lsn then begin
      let r = Wal.get t.dwal lsn in
      match r.Log_record.body with
      | Log_record.Update { undo; _ } ->
          (match undo with
          | Log_record.No_undo -> ()
          | Log_record.Undo_heap_insert { table; rid }
          | Log_record.Undo_heap_delete { table; rid }
          | Log_record.Undo_heap_update { table; rid; _ } ->
              lock (Lock_name.Table table) Lock_mode.IX;
              lock (Lock_name.Row (table, rid)) Lock_mode.X
          | Log_record.Undo_bt_insert { index; key }
          | Log_record.Undo_bt_delete { index; key; _ }
          | Log_record.Undo_bt_update { index; key; _ } ->
              lock (Lock_name.Key (index, key)) Lock_mode.X
          | Log_record.Undo_escrow { view; key; inverse } ->
              lock (Lock_name.Table view) Lock_mode.IX;
              lock (Lock_name.Key (view, key)) Lock_mode.E;
              let delta = Aggregate.negate (Aggregate.decode inverse) in
              Ivdb_core.Inflight.record t.inflight ~txn:(Txn.id tx) ~vid:view
                ~key delta);
          go r.Log_record.prev
      | Log_record.Clr { undo_next; _ } -> go undo_next
      | Log_record.Begin _ | Log_record.Commit | Log_record.End -> ()
      | Log_record.Abort | Log_record.Checkpoint _ | Log_record.Ddl _
      | Log_record.Prepare _ | Log_record.Decision _ ->
          go r.Log_record.prev
    end
  in
  go (Txn.last_lsn tx)

(* --- crash / recovery ------------------------------------------------------------- *)

let rebuild_runtime t =
  List.iter (fun m -> register_table t m ~heap:None) (Catalog.tables t.catalog);
  List.iter (fun m -> register_index t m ~tree:None) (Catalog.indexes t.catalog);
  List.iter (fun m -> register_view t m ~tree:None ~queue:None) (Catalog.views t.catalog)

let crash old =
  let metrics = Metrics.create () in
  let trace = make_trace () in
  let wal = Wal.crash old.dwal ~trace metrics in
  (* replication slots are durable state (as in any real system): carry
     the retain floor across the restart so a subscribed replica can still
     resume below the recovery checkpoint's truncation point — the CLRs
     recovery is about to append are records the replica has yet to see *)
  Wal.set_retain_floor wal (Wal.retain_floor old.dwal);
  Bufpool.drop_all old.dpool;
  (* the new incarnation boots on healthy hardware: the old plan (frozen
     or not) must not fire again during or after recovery *)
  Disk.set_fault old.disk Fault.none;
  let config = { old.cfg with fault = Fault.no_faults } in
  let t = bare ~config ~role:old.role ~trace ~metrics ~disk:old.disk ~wal () in
  let analysis = Recovery.analyze wal in
  let analysis =
    (* A restarting follower redoes its whole retained log: the governing
       checkpoint is the *primary's*, so its dirty-page recLSNs describe
       the primary's disk at checkpoint time, not this replica's (whose
       pool was never flushed at that point). The pageLSN gate makes the
       wider replay cheap and idempotent. *)
    if t.role = Follower then
      { analysis with Recovery.redo_start = Wal.first_lsn wal }
    else analysis
  in
  let redo = Recovery.redo wal t.dpool analysis in
  Metrics.add metrics "recovery.redo_applied" redo.Recovery.applied;
  Metrics.add metrics "recovery.torn_pages" (List.length redo.Recovery.torn_pages);
  Metrics.add metrics "recovery.losers" (List.length analysis.Recovery.losers);
  Metrics.add metrics "recovery.stable_records" analysis.Recovery.stable_records;
  Txn.bump_txn_id t.tmgr analysis.Recovery.max_txn_id;
  (match analysis.Recovery.catalog with
  | Some snap ->
      let c = Catalog.decode_snapshot snap in
      List.iter (fun m -> Catalog.apply_op t.catalog (Catalog.Add_table m)) (Catalog.tables c);
      List.iter (fun m -> Catalog.apply_op t.catalog (Catalog.Add_index m)) (Catalog.indexes c);
      List.iter (fun m -> Catalog.apply_op t.catalog (Catalog.Add_view m)) (Catalog.views c)
  | None -> ());
  List.iter (fun payload -> Catalog.apply_op t.catalog (Catalog.decode_op payload))
    analysis.Recovery.ddl;
  rebuild_runtime t;
  (match t.role with
  | Primary ->
      List.iter
        (fun (tid, last) ->
          let loser = Txn.resurrect t.tmgr ~id:tid ~last_lsn:last () in
          Txn.rollback_tail t.tmgr loser ~from:last)
        analysis.Recovery.losers;
      (* Resurrect in-doubt (prepared) transactions with their locks and
         in-flight escrow state: they block conflicting access until the
         coordinator re-delivers its decision. [first_lsn] pins the log-
         truncation bound so their undo chains survive checkpoints. *)
      List.iter
        (fun (d : Recovery.indoubt_txn) ->
          let tx =
            Txn.resurrect t.tmgr ~first_lsn:d.Recovery.id_first_lsn
              ~id:d.Recovery.id_txn ~last_lsn:d.Recovery.id_last_lsn ()
          in
          relock_indoubt t tx;
          Hashtbl.replace t.indoubt_2pc d.Recovery.id_gtxn tx)
        analysis.Recovery.indoubt;
      Metrics.add metrics "recovery.indoubt"
        (List.length analysis.Recovery.indoubt);
      (* Stable Decision records rebuild the retransmit-dedupe memory, and
         settle right away any in-doubt transaction whose decision was
         logged but whose Commit/End never went stable. Commit mode is
         pinned to Sync for the replay: recovery runs outside the
         scheduler, so a batched group-commit force has no fiber to ride. *)
      let saved_mode = Txn.commit_mode t.tmgr in
      Txn.set_commit_mode t.tmgr Txn.Sync;
      List.iter
        (fun (gtxn, committed) ->
          if Hashtbl.mem t.indoubt_2pc gtxn then
            ignore (decide_2pc t ~gtxn ~committed)
          else Hashtbl.replace t.decided_2pc gtxn committed)
        analysis.Recovery.decisions;
      Txn.set_commit_mode t.tmgr saved_mode;
      checkpoint t
  | Follower ->
      (* "losers" here are the primary's transactions still in flight at
         the end of the shipped prefix — their CLRs (or commits) arrive
         later in the stream, so rolling them back locally would diverge.
         No checkpoint either: a follower appends nothing. *)
      ());
  t

(* --- replication (follower side) --------------------------------------------------- *)

let register_op t = function
  | Catalog.Add_table m -> register_table t m ~heap:None
  | Catalog.Add_index m -> register_index t m ~tree:None
  | Catalog.Add_view m -> register_view t m ~tree:None ~queue:None

(* Install one shipped batch: each record is ingested into the local log
   (keeping the primary's LSN), its page diffs are replayed through the
   persistent redo state, and DDL payloads are folded into the catalog so
   the runtime (heaps, trees, view machinery) grows in step with the
   stream. Checkpoint records flow through untouched — their catalog
   snapshot and dirty-page table describe the primary, and the follower
   only ever consults them during its own restart recovery. The records
   the system transaction logged *before* its Ddl record (page formats,
   backfills) are replayed first because LSN order says so, which is what
   makes the attach-from-meta in [register_op] always find formatted
   pages. *)
let apply_one t redo (r : Log_record.t) =
  Wal.ingest t.dwal r;
  Recovery.Redo.apply redo r;
  match r.Log_record.body with
  | Log_record.Ddl payload ->
      let op = Catalog.decode_op payload in
      Catalog.apply_op t.catalog op;
      register_op t op
  | _ -> ()

let drain_pending t redo =
  let n = Queue.length t.pending_tail in
  while not (Queue.is_empty t.pending_tail) do
    apply_one t redo (Queue.pop t.pending_tail)
  done;
  n

let apply_replicated t records =
  let redo =
    match t.redo_state with
    | Some s -> s
    | None -> invalid_arg "Database.apply_replicated: not a follower"
  in
  let applied = ref 0 in
  List.iter
    (fun (r : Log_record.t) ->
      if r.Log_record.lsn <> t.received + 1 then
        invalid_arg
          (Printf.sprintf
             "Database.apply_replicated: LSN %d breaks the chain (expected %d)"
             r.Log_record.lsn (t.received + 1));
      t.received <- r.Log_record.lsn;
      Queue.push r t.pending_tail;
      (* the same boundary rule as Wal.commit_horizon: Commit/End retire a
         transaction, checkpoints are transparent, anything else stamped
         with a transaction opens one *)
      (match r.Log_record.body with
      | Log_record.Commit | Log_record.End ->
          Hashtbl.remove t.pending_open r.Log_record.txn
      | Log_record.Checkpoint _ -> ()
      | _ ->
          if r.Log_record.txn <> 0 then
            Hashtbl.replace t.pending_open r.Log_record.txn ());
      (* a commit boundary: everything buffered forms a transaction-
         consistent extension of the applied prefix — install it *)
      if Hashtbl.length t.pending_open = 0 then
        applied := !applied + drain_pending t redo)
    records;
  if !applied > 0 then begin
    (* physical redo grows heap chains on disk without going through the
       Heap_file handle: adopt any pages appended behind the caches so
       scans and digests see the full chain *)
    Hashtbl.iter (fun _ heap -> Heap_file.refresh heap) t.heaps;
    Metrics.add t.dmetrics "repl.applied_records" !applied
  end

(* On a follower every *applied* record is stable (ingest forces nothing
   but marks immediately), so the flushed horizon *is* the replication
   position — and with commit-horizon gating it is always a commit
   boundary of the primary's log; on a primary the same expression is
   simply its durable horizon. *)
let replicated_lsn t = Wal.flushed_lsn t.dwal

let received_lsn t = if t.role = Follower then t.received else Wal.flushed_lsn t.dwal

let discard_pending_tail t =
  let n = Queue.length t.pending_tail in
  Queue.clear t.pending_tail;
  Hashtbl.reset t.pending_open;
  t.received <- Wal.flushed_lsn t.dwal;
  n

(* --- promotion (follower -> primary) ----------------------------------------------- *)

type promotion = {
  tail_records : int;
  losers_undone : int;
  undo_records : int;
}

(* Failover: turn this follower into a primary. The caller has stopped the
   replication driver (the old primary is dead or demoted), so nothing
   else touches the engine concurrently.

   1. Install the buffered tail unconditionally: a transaction whose
      Commit record sits past the last commit boundary IS committed on
      the primary's durable log, and losing it would violate zero-loss.
      The in-flight suffix this exposes is cleaned up by undo below —
      exactly what single-node recovery does with its own stable tail.
   2. Reconstruct the in-flight transaction table by running recovery
      analysis over the retained log (a follower never truncates, so the
      governing checkpoint — the primary's — is always present if one was
      ever shipped).
   3. Open the write paths (the undo pass appends CLRs to our own log,
      which Read_only_replica would otherwise veto) and roll back every
      loser through the logical-undo executor, oldest first, mirroring
      the crash path.
   4. Checkpoint — without truncating: existing replicas of the old
      primary repoint here and resume from their applied horizon, so the
      full log must stay until they resubscribe and pin slots of their
      own. The next ordinary checkpoint resumes truncation. *)
let promote t =
  (match t.role with
  | Follower -> ()
  | Primary -> invalid_arg "Database.promote: already a primary");
  let redo = match t.redo_state with Some s -> s | None -> assert false in
  let tail = drain_pending t redo in
  Hashtbl.reset t.pending_open;
  if tail > 0 then Hashtbl.iter (fun _ heap -> Heap_file.refresh heap) t.heaps;
  let analysis = Recovery.analyze t.dwal in
  t.role <- Primary;
  t.redo_state <- None;
  t.received <- Wal.flushed_lsn t.dwal;
  Txn.bump_txn_id t.tmgr analysis.Recovery.max_txn_id;
  let undo_before = Metrics.get t.dmetrics "txn.recovery_undo" in
  List.iter
    (fun (tid, last) ->
      let loser = Txn.resurrect t.tmgr ~id:tid ~last_lsn:last () in
      Txn.rollback_tail t.tmgr loser ~from:last)
    analysis.Recovery.losers;
  checkpoint_gen t ~truncate:false;
  Metrics.incr t.dmetrics "repl.promotions";
  {
    tail_records = tail;
    losers_undone = List.length analysis.Recovery.losers;
    undo_records = Metrics.get t.dmetrics "txn.recovery_undo" - undo_before;
  }

(* Logical content digest: live rows of every table (sorted, so heap
   placement is irrelevant) and every view's b-tree entries in key order,
   all length-prefixed to keep the concatenation unambiguous. Two engines
   that applied the same log prefix digest identically — the divergence
   check the replication tests and the runtest smoke lean on. *)
let state_digest t =
  let buf = Buffer.create 4096 in
  let add_str s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  let sorted_ids tbl = Hashtbl.fold (fun id _ acc -> id :: acc) tbl [] |> List.sort compare in
  List.iter
    (fun tid ->
      let rt = table_rt t tid in
      Buffer.add_string buf (Printf.sprintf "T%d|" tid);
      let rows = ref [] in
      Heap_file.iter rt.heap (fun _ payload -> rows := payload :: !rows);
      List.iter add_str (List.sort compare !rows))
    (sorted_ids t.dtables);
  List.iter
    (fun vid ->
      let rt = view_rt t vid in
      Buffer.add_string buf (Printf.sprintf "V%d|" vid);
      Btree.iter rt.Maintain.tree (fun k v ->
          add_str k;
          add_str v))
    (sorted_ids t.views_rt);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- maintenance -------------------------------------------------------------------- *)

let gc t =
  if t.role = Follower then 0
  else begin
  let reclaimed = ref 0 in
  (* MVCC version chains whose entries no live snapshot can still see *)
  reclaimed := !reclaimed + Ivdb_txn.Mvcc.gc (Txn.mvcc t.tmgr);
  Hashtbl.iter
    (fun _ rt ->
      reclaimed := !reclaimed + Group_gc.run t.tmgr rt;
      reclaimed := !reclaimed + Btree.vacuum rt.Maintain.tree;
      match rt.Maintain.deferred with
      | Some q -> reclaimed := !reclaimed + Deferred.vacuum q
      | None -> ())
    t.views_rt;
  (* index-entry ghosts left by a crash or skipped reclaims *)
  Hashtbl.iter
    (fun _ rt ->
      List.iter
        (fun ix ->
          let ixid = ix.imeta.Catalog.ix_id in
          let ghost_keys = ref [] in
          Btree.iter ix.itree (fun k v ->
              if index_entry_is_ghost v then ghost_keys := k :: !ghost_keys);
          let free =
            List.filter
              (fun k -> Lock_mgr.unlocked t.dlocks (Lock_name.Key (ixid, k)))
              !ghost_keys
          in
          if free <> [] then begin
            let stx = Txn.begin_system t.tmgr in
            List.iter
              (fun k ->
                match Btree.search ix.itree k with
                | Some v when index_entry_is_ghost v ->
                    Btree.delete stx ix.itree ~key:k;
                    incr reclaimed
                | Some _ | None -> ())
              free;
            Txn.commit t.tmgr stx
          end;
          reclaimed := !reclaimed + Btree.vacuum ix.itree)
        rt.indexes)
    t.dtables;
  (* base-table ghosts left by a crash (normal commits reclaim their own) *)
  Hashtbl.iter
    (fun tid rt ->
      let ghost_rids = ref [] in
      List.iter
        (fun pid ->
          Bufpool.read t.dpool pid (fun p ->
              Heap_page.iter_ghosts p (fun slot ->
                  ghost_rids := { Heap_file.rpage = pid; rslot = slot } :: !ghost_rids)))
        (Heap_file.page_ids rt.heap);
      let free =
        List.filter
          (fun rid -> Lock_mgr.unlocked t.dlocks (Lock_name.Row (tid, rid)))
          !ghost_rids
      in
      if free <> [] then begin
        let stx = Txn.begin_system t.tmgr in
        List.iter
          (fun rid ->
            match Heap_file.free_ghost rt.heap rid with
            | [] -> ()
            | diffs ->
                incr reclaimed;
                Txn.log_update t.tmgr stx ~undo:Log_record.No_undo diffs)
          free;
        Txn.commit t.tmgr stx
      end)
    t.dtables;
  !reclaimed
  end

module Internal = struct
  type nonrec table_rt = table_rt
  type nonrec index_rt = index_rt

  let table_id tid = tid
  let view_id vid = vid
  let of_table_id tid = tid
  let table_rt = table_rt
  let rt_schema rt = rt.tschema
  let rt_heap rt = rt.heap
  let rt_indexes rt = rt.indexes
  let rt_dep_views rt = rt.dep_views
  let ix_id ix = ix.imeta.Catalog.ix_id
  let ix_col ix = ix.imeta.Catalog.ix_col
  let ix_unique ix = ix.imeta.Catalog.ix_unique
  let ix_tree ix = ix.itree
  let view_rt = view_rt
  let view_rts t = Hashtbl.fold (fun _ rt acc -> rt :: acc) t.views_rt []
  let note_ghost = note_ghost
  let note_index_ghost = note_index_ghost
  let index_entry_live = index_entry_live
  let index_entry_ghost_of = index_entry_ghost_of
  let index_entry_is_ghost = index_entry_is_ghost
  let index_entry_payload = index_entry_payload
  let encode_rid_payload = encode_rid_payload
  let index_key = index_key
  let inflight t = t.inflight
  let lock_row = lock_row
  let route_remote = route_remote
  let heap_scan_rows = heap_scan_rows
  let index_probe = index_probe
  let index_probe_rids = index_probe_rids
  let index_range_rids = index_range_rids
  let source_rows = source_rows
end
