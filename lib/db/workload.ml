module Rng = Ivdb_util.Rng
module Zipf = Ivdb_util.Zipf
module Metrics = Ivdb_util.Metrics
module Sched = Ivdb_sched.Sched
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain
module Txn = Ivdb_txn.Txn

type reader_locking = Key_range | Coarse_table | Snapshot

type spec = {
  seed : int;
  n_groups : int;
  theta : float;
  mpl : int;
  txns_per_worker : int;
  ops_per_txn : int;
  delete_fraction : float;
  read_fraction : float;
  reader_scan : bool;
  reader_locking : reader_locking;
  strategy : Maintain.strategy;
  create_mode : Maintain.create_mode;
  n_views : int;
  initial_rows : int;
  gc_every : int option;
  checkpoint_every : int option;
  stats_interval : int option;
  config : Database.config;
}

let default =
  {
    seed = 42;
    n_groups = 20;
    theta = 0.99;
    mpl = 8;
    txns_per_worker = 50;
    ops_per_txn = 4;
    delete_fraction = 0.1;
    read_fraction = 0.;
    reader_scan = false;
    reader_locking = Key_range;
    strategy = Maintain.Escrow;
    create_mode = Maintain.System_txn;
    n_views = 1;
    initial_rows = 200;
    gc_every = None;
    checkpoint_every = None;
    stats_interval = None;
    config = { Database.default_config with read_cost = 0; write_cost = 0 };
  }

type result = {
  committed : int;
  crashed : bool;
  committed_readers : int;
  given_up : int;
  retries : int;
  deadlocks : int;
  lock_waits : int;
  ticks : int;
  wall_s : float;
  throughput : float;
  mean_latency : float;
  p95_latency : float;
  forces : int;
  mean_batch : float;
  batch_hist : (int * int) list;
  metrics : (string * int) list;
}

let sales_cols =
  [
    { Schema.name = "id"; ty = Value.TInt; nullable = false };
    { Schema.name = "product"; ty = Value.TInt; nullable = false };
    { Schema.name = "qty"; ty = Value.TInt; nullable = false };
    { Schema.name = "amount"; ty = Value.TFloat; nullable = false };
  ]

let sales_row ~id ~product ~qty ~amount =
  [| Value.Int id; Value.Int product; Value.Int qty; Value.Float amount |]

let setup spec =
  let db = Database.create ~config:spec.config () in
  let sales = Database.create_table db ~name:"sales" ~cols:sales_cols in
  let schema = Database.schema db sales in
  let views =
    List.init spec.n_views (fun i ->
        Database.create_view db ~create_mode:spec.create_mode
          ~name:(Printf.sprintf "sales_by_product_%d" i)
          ~group_by:[ "product" ]
          ~aggs:
            [
              View_def.Count_star;
              View_def.Sum (Expr.col schema "qty");
              View_def.Sum (Expr.col schema "amount");
            ]
          ~source:(Database.From (sales, None))
          ~strategy:spec.strategy ())
  in
  (* preload outside the measured window *)
  let rng = Rng.create spec.seed in
  let zipf = Zipf.create ~n:spec.n_groups ~theta:spec.theta in
  for i = 1 to spec.initial_rows do
    Database.transact db (fun tx ->
        ignore
          (Table.insert db tx sales
             (sales_row ~id:(-i) ~product:(Zipf.draw zipf rng)
                ~qty:(1 + Rng.int rng 10)
                ~amount:(Rng.float rng *. 100.))))
  done;
  (db, sales, views)

(* A measured phase: the metrics bracketing and result assembly shared by
   [run_on] (in-process fibers) and the network closed-loop driver (client
   fibers talking to a server over a transport). The driver owns the fibers;
   the phase owns the bookkeeping. *)
type phase = {
  p_db : Database.t;
  p_before : (string * int) list;
  p_hist_before : (int * int) list;
  p_t0 : float;
  p_lat : Ivdb_util.Stats.t;
  p_commit_hist : Metrics.hist;
  mutable p_committed : int;
  mutable p_readers : int;
  mutable p_given_up : int;
}

let phase_start db =
  let metrics = Database.metrics db in
  {
    p_db = db;
    p_before = Metrics.snapshot metrics;
    p_hist_before = Metrics.hist_snapshot metrics "commit.batch";
    p_t0 = Unix.gettimeofday ();
    p_lat = Ivdb_util.Stats.create ();
    p_commit_hist = Metrics.hist metrics "txn.commit_ticks";
    p_committed = 0;
    p_readers = 0;
    p_given_up = 0;
  }

let phase_commit p ?(reader = false) ~latency () =
  p.p_committed <- p.p_committed + 1;
  if reader then p.p_readers <- p.p_readers + 1;
  (* the histogram feeds the live stats reporter and sys.metrics_hist;
     the Stats accumulator stays the source of the end-of-run figures *)
  Metrics.record p.p_commit_hist (int_of_float latency);
  Ivdb_util.Stats.add p.p_lat latency

let phase_give_up p = p.p_given_up <- p.p_given_up + 1
let phase_committed p = p.p_committed

let phase_finish p ?(crashed = false) ~ticks () =
  let wall_s = Unix.gettimeofday () -. p.p_t0 in
  let metrics = Database.metrics p.p_db in
  let after = Metrics.snapshot metrics in
  let diff = Metrics.diff ~before:p.p_before ~after in
  let get name = match List.assoc_opt name diff with Some v -> v | None -> 0 in
  let ticks = max 1 ticks in
  let batch_hist =
    Metrics.hist_diff ~before:p.p_hist_before
      ~after:(Metrics.hist_snapshot metrics "commit.batch")
  in
  let batch_count = List.fold_left (fun acc (_, c) -> acc + c) 0 batch_hist in
  let batch_total =
    List.fold_left (fun acc (v, c) -> acc + (v * c)) 0 batch_hist
  in
  {
    committed = p.p_committed;
    crashed;
    committed_readers = p.p_readers;
    given_up = p.p_given_up;
    retries = get "txn.retry";
    deadlocks = get "lock.deadlock";
    lock_waits = get "lock.wait";
    ticks;
    wall_s;
    throughput = float_of_int p.p_committed *. 1000. /. float_of_int ticks;
    mean_latency = Ivdb_util.Stats.mean p.p_lat;
    p95_latency =
      (if Ivdb_util.Stats.count p.p_lat = 0 then 0.
       else Ivdb_util.Stats.percentile p.p_lat 95.);
    forces = get "log.force";
    mean_batch =
      (if batch_count = 0 then 0.
       else float_of_int batch_total /. float_of_int batch_count);
    batch_hist;
    metrics = diff;
  }

(* --- live stats reporting ---------------------------------------------------

   A periodic one-line summary of the last interval, computed purely from
   Metrics.diff between registry snapshots — the same data sys.metrics
   exposes — so the reporter works identically for in-process fibers and
   network clients. *)

type stats_probe = {
  sp_db : Database.t;
  mutable sp_counters : (string * int) list;
  mutable sp_commit : (int * int) list;
  mutable sp_wait : (int * int) list;
  mutable sp_tick : int;
}

let probe_start db =
  let m = Database.metrics db in
  {
    sp_db = db;
    sp_counters = Metrics.snapshot m;
    sp_commit = Metrics.hist_snapshot m "txn.commit_ticks";
    sp_wait = Metrics.hist_snapshot m "lock.wait_ticks";
    sp_tick = Sched.now ();
  }

let probe_line p =
  let m = Database.metrics p.sp_db in
  let now = Sched.now () in
  let counters = Metrics.snapshot m in
  let commit = Metrics.hist_snapshot m "txn.commit_ticks" in
  let wait = Metrics.hist_snapshot m "lock.wait_ticks" in
  let dc = Metrics.diff ~before:p.sp_counters ~after:counters in
  let dcommit = Metrics.hist_diff ~before:p.sp_commit ~after:commit in
  let dwait = Metrics.hist_diff ~before:p.sp_wait ~after:wait in
  let dticks = max 1 (now - p.sp_tick) in
  let get name =
    match List.assoc_opt name dc with Some v -> v | None -> 0
  in
  let commits = get "txn.commit" in
  p.sp_counters <- counters;
  p.sp_commit <- commit;
  p.sp_wait <- wait;
  p.sp_tick <- now;
  Printf.sprintf
    "[stats] tick=%d commits=%d txn/ktick=%.1f commit_p95=%d lock_waits=%d \
     wait_p95=%d deadlocks=%d"
    now commits
    (float_of_int commits *. 1000. /. float_of_int dticks)
    (Metrics.percentile_cells dcommit 95.)
    (get "lock.wait")
    (Metrics.percentile_cells dwait 95.)
    (get "lock.deadlock")

(* Spawn the reporter fiber: prints a line every [interval] ticks while
   [running ()] holds, and a final line for any partial last interval. *)
let spawn_reporter db ~interval ~running =
  ignore
    (Sched.spawn (fun () ->
         let probe = probe_start db in
         let rec loop () =
           if running () then begin
             Sched.yield ();
             if Sched.now () - probe.sp_tick >= interval then
               print_endline (probe_line probe);
             loop ()
           end
           else if Sched.now () > probe.sp_tick then
             print_endline (probe_line probe)
         in
         loop ()))

let run_on db sales views spec =
  let phase = phase_start db in
  let next_id = ref 0 in
  let start_ticks = ref 0 in
  let end_ticks = ref 0 in
  let crashed = ref false in
  (try
  Sched.run ~seed:spec.seed (fun () ->
      start_ticks := Sched.now ();
      let worker widx =
        let rng = Rng.create ((spec.seed * 7919) + widx) in
        let zipf = Zipf.create ~n:spec.n_groups ~theta:spec.theta in
        let my_rows = ref [] in
        for _ = 1 to spec.txns_per_worker do
          let is_reader = Rng.float rng < spec.read_fraction && views <> [] in
          let t_begin = Sched.now () in
          let read_view tx v =
            if spec.reader_scan then begin
              Seq.iter
                (fun _ -> ())
                (Query.view_scan db (Some tx) v Query.Serializable);
              Sched.yield ()
            end
            else
              for _ = 1 to 3 do
                ignore
                  (Query.view_lookup db (Some tx) v
                     [| Value.Int (Zipf.draw zipf rng) |]);
                Sched.yield ()
              done
          in
          (try
             (if is_reader && spec.reader_locking = Snapshot then
                (* lock-free MVCC reader: same statements, no Lock_mgr or
                   WAL traffic at all *)
                Database.transact db ~read_only:true (fun tx ->
                    read_view tx (List.hd views))
              else
             Database.transact db (fun tx ->
                 if is_reader then begin
                   let v = List.hd views in
                   match spec.reader_locking with
                   | Snapshot -> assert false (* handled above *)
                   | Coarse_table ->
                       Txn.lock (Database.mgr db) tx
                         (Ivdb_lock.Lock_name.Table
                            (Database.Internal.view_id v))
                         Ivdb_lock.Lock_mode.S;
                       if spec.reader_scan then begin
                         Seq.iter (fun _ -> ()) (Query.view_scan db None v Query.Dirty);
                         Sched.yield ()
                       end
                       else
                         for _ = 1 to 3 do
                           ignore
                             (Query.view_lookup db None v
                                [| Value.Int (Zipf.draw zipf rng) |]);
                           Sched.yield ()
                         done
                   | Key_range -> read_view tx v
                 end
                 else
                   for _ = 1 to spec.ops_per_txn do
                     let do_delete =
                       Rng.float rng < spec.delete_fraction && !my_rows <> []
                     in
                     (if do_delete then begin
                        match !my_rows with
                        | rid :: rest ->
                            my_rows := rest;
                            (try Table.delete db tx sales rid with Not_found -> ())
                        | [] -> ()
                      end
                      else begin
                        incr next_id;
                        let rid =
                          Table.insert db tx sales
                            (sales_row ~id:!next_id ~product:(Zipf.draw zipf rng)
                               ~qty:(1 + Rng.int rng 10)
                               ~amount:(Rng.float rng *. 100.))
                        in
                        my_rows := rid :: !my_rows
                      end);
                     (* yield at every statement boundary so lock lifetimes
                        of concurrent transactions overlap, as they would
                        under preemptive threads *)
                     Sched.yield ()
                   done));
             phase_commit phase ~reader:is_reader
               ~latency:(float_of_int (Sched.now () - t_begin))
               ();
             (match spec.gc_every with
             | Some n when phase.p_committed mod n = 0 ->
                 ignore (Database.gc db)
             | Some _ | None -> ());
             (match spec.checkpoint_every with
             | Some n when phase.p_committed mod n = 0 -> Database.checkpoint db
             | Some _ | None -> ())
           with Txn.Conflict _ -> phase_give_up phase);
          Sched.yield ()
        done
      in
      let remaining = ref spec.mpl in
      let wake_main = ref (fun () -> ()) in
      for w = 1 to spec.mpl do
        ignore
          (Sched.spawn (fun () ->
               Fun.protect
                 ~finally:(fun () ->
                   decr remaining;
                   if !remaining = 0 then !wake_main ())
                 (fun () -> worker w)))
      done;
      (match spec.stats_interval with
      | Some n when n > 0 ->
          spawn_reporter db ~interval:n ~running:(fun () -> !remaining > 0)
      | Some _ | None -> ());
      (* block until the last worker finishes: if the workers deadlock in a
         way the lock manager missed, the run fails with Sched.Stuck rather
         than spinning silently *)
      if !remaining > 0 then
        Sched.suspend (fun wake _cancel -> wake_main := wake);
      end_ticks := Sched.now ())
  with Ivdb_storage.Fault.Crash_point _ ->
    (* an injected crash point fired: the whole run stopped mid-step, as a
       power loss would. The caller recovers with [Database.crash]. *)
    crashed := true);
  phase_finish phase ~crashed:!crashed ~ticks:(!end_ticks - !start_ticks) ()

let run spec =
  let db, sales, views = setup spec in
  run_on db sales views spec

(* Incremental maintenance and the from-scratch fold add floats in different
   orders, so SUM(float) may differ in the last ulps; compare with a relative
   tolerance. *)
let value_close a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
      let scale = Float.max 1. (Float.max (Float.abs x) (Float.abs y)) in
      Float.abs (x -. y) <= 1e-9 *. scale
  | _ -> Value.equal a b

let row_close r1 r2 =
  Array.length r1 = Array.length r2 && Array.for_all2 value_close r1 r2

let check_consistency db v =
  let def = Database.view_def db v in
  let expect = Query.on_demand_aggregate db None def in
  let actual = List.of_seq (Query.view_scan db None v Query.Dirty) in
  List.length expect = List.length actual
  && List.for_all2
       (fun (g1, r1) (g2, r2) ->
         Ivdb_relation.Row.equal g1 g2 && row_close r1 r2)
       expect actual
