(** The embedded database engine: catalog, DDL, transactions, recovery.

    A [Database.t] owns a simulated disk, a buffer pool, a write-ahead log,
    a lock manager, and a transaction manager, wired together. Concurrent
    use happens inside {!Ivdb_sched.Sched.run}, with one fiber per session;
    single-threaded use needs no scheduler at all.

    {1 Typical use}
    {[
      let db = Database.create () in
      let sales =
        Database.create_table db ~name:"sales"
          ~cols:[ col "product" TInt; col "qty" TInt ]
      in
      let by_product =
        Database.create_view db ~name:"sales_by_product"
          ~group_by:[ "product" ]
          ~aggs:[ Count_star; Sum (Expr.col schema "qty") ]
          ~source:(Database.From (sales, None))
          ~strategy:Escrow
      in
      Database.transact db (fun tx ->
          ignore (Table.insert db tx sales [| Int 7; Int 3 |]));
      ...
    ]} *)

type t

type config = {
  pool_capacity : int;  (** buffer pool frames (default 512) *)
  read_cost : int;  (** simulated ticks per disk read (default 100) *)
  write_cost : int;  (** simulated ticks per disk write (default 100) *)
  txn_retries : int;  (** automatic retries after deadlock (default 10) *)
  auto_ghost_gc : bool;  (** reclaim ghosts after commit (default true) *)
  escalation_threshold : int option;
      (** escalate a transaction's row locks on a table to one table lock
          after this many (default [None]: never) *)
  commit_mode : Ivdb_txn.Txn.commit_mode;
      (** how commits are made durable: per-commit force ([Sync], the
          default), batched forces behind the commit coordinator fiber
          ([Group]), or acknowledged-before-force ([Async]) *)
  fault : Ivdb_storage.Fault.config;
      (** deterministic fault injection armed at creation (default
          {!Ivdb_storage.Fault.no_faults}): transient I/O errors, torn
          writes, crash-at-the-n-th write/force *)
}

val default_config : config

type table
type view

val create : ?config:config -> unit -> t

(** {1 Replication roles}

    An engine is either a [Primary] — the ordinary read-write database —
    or a [Follower]: a read replica whose entire state is built by
    replaying the primary's stable log, shipped to it in batches. A
    follower appends nothing to its own log (its LSN space is a verbatim
    copy of the primary's), so every local write path is closed off. *)

type role = Primary | Follower

exception Read_only_replica
(** Raised by the write paths — read-write {!transact} /
    {!transact_result}, DDL, {!checkpoint} — when the engine is a
    [Follower]. Snapshot reads ({!transact} with [~read_only:true]) are
    always allowed. *)

val create_follower : ?config:config -> unit -> t
(** An empty engine in [Follower] role. It catches up by
    {!apply_replicated}-ing the primary's records from LSN 1 and serves
    lock-free snapshot reads at its applied horizon. *)

val role : t -> role
val is_follower : t -> bool

val apply_replicated : t -> Ivdb_wal.Log_record.t list -> unit
(** Accept one shipped batch on a follower. Records are *applied* —
    ingested into the local log under the primary's LSN, page diffs
    replayed through the persistent {!Ivdb_recovery.Recovery.Redo} state,
    DDL folded into the catalog and runtime — only up to the last commit
    boundary in the accepted stream; records past it are buffered in
    memory until the boundary-closing records arrive. The applied prefix
    is therefore always transaction-consistent: a concurrent snapshot
    reader on this follower never observes a split primary transaction
    (commit-horizon reads). Records must chain densely from
    [{!received_lsn} + 1] — [Invalid_argument] otherwise, and on a
    [Primary]. *)

val replicated_lsn : t -> Ivdb_wal.Log_record.lsn
(** The follower's applied (and durable) horizon: the LSN of the last
    record it ingested, always a commit boundary of the primary's log;
    0 when empty. On a primary, its flushed LSN. *)

val received_lsn : t -> Ivdb_wal.Log_record.lsn
(** The follower's receive horizon: the last record accepted by
    {!apply_replicated}, applied or still buffered
    ([received_lsn >= replicated_lsn]; the gap is the buffered tail of
    in-flight primary transactions). The resume position for the next
    batch. Equals {!replicated_lsn} on a primary. *)

val discard_pending_tail : t -> int
(** Drop the buffered (received-but-unapplied) tail and rewind
    {!received_lsn} to the applied horizon, returning the number of
    records discarded. Called when a replication session breaks: the
    driver renegotiates from the applied horizon, so the primary re-ships
    what the buffer held. The buffer is volatile anyway — a follower
    restart loses it harmlessly for the same reason. *)

type promotion = {
  tail_records : int;  (** buffered records installed before undo *)
  losers_undone : int;  (** in-flight primary transactions rolled back *)
  undo_records : int;  (** undo operations (CLRs) the rollbacks executed *)
}

val promote : t -> promotion
(** Failover: turn this follower into a primary, in place. Installs the
    buffered tail (a Commit past the horizon is durable on the dead
    primary and must not be lost), reconstructs the in-flight transaction
    table by recovery analysis over the retained log, flips the role so
    write paths open, rolls every loser back through the logical-undo
    executor (appending CLRs to what is now this engine's own log), and
    takes a checkpoint — deliberately without truncating, so surviving
    replicas of the old primary can repoint here and resume from their
    applied horizons; the next ordinary {!checkpoint} resumes truncation.
    After return the engine is an ordinary [Primary]: {!transact} writes,
    DDL and {!checkpoint} all work, and new transaction ids are bumped
    past everything in the log. Raises [Invalid_argument] on a primary.
    The caller must have stopped the replication driver first. Counts
    [repl.promotions]; the undo work rides the usual [txn.recovery_undo]
    metric. *)

val state_digest : t -> string
(** Hex digest of the logical engine content: every table's live rows
    (order-independent) and every view's b-tree entries. A primary and a
    follower that have applied the same log prefix — equal
    {!replicated_lsn}, all records forced — digest identically; the
    replication property suite asserts exactly that. *)

val install_fault : t -> Ivdb_storage.Fault.config -> unit
(** Arm (or replace) the fault plan mid-life — lets tests set up the
    schema fault-free and inject only into the measured workload. A plan
    that fires freezes stable storage and raises
    {!Ivdb_storage.Fault.Crash_point}; follow with {!crash} to recover.
    While torn-write injection is armed, {!checkpoint} retains the full
    log (skips truncation) so a torn page can be rebuilt from scratch. *)

val fault_plan : t -> Ivdb_storage.Fault.t

(** {1 DDL}

    DDL statements are autocommitted (logged as redo-only system
    transactions plus catalog records); they are not safe to run
    concurrently with DML. *)

val create_table :
  t -> name:string -> cols:Ivdb_relation.Schema.col list -> table

exception Constraint_violation of string
(** A uniqueness violation. Raised from DML (and from [create_index
    ~unique:true] when existing rows already collide); since it is a user
    error, {!transact} does not retry it. *)

val create_index : t -> ?unique:bool -> table -> col:string -> name:string -> unit
(** Secondary B-tree index on one column; backfills existing rows. Ordinary
    indexes key on (column value, rid); unique indexes key on the value
    alone and enforce uniqueness transactionally: an insert colliding with
    an uncommitted delete of the same value blocks until that transaction
    finishes, then either reuses the entry (deleter committed) or raises
    {!Constraint_violation} (deleter aborted). *)

type view_source =
  | From of table * Ivdb_relation.Expr.t option
      (** single table, optional WHERE *)
  | From_join of {
      left : table;
      right : table;
      left_col : string;
      right_col : string;
      where : Ivdb_relation.Expr.t option;
          (** residual predicate over the concatenated row; resolve columns
              against {!join_schema} *)
    }

val create_view :
  t ->
  ?create_mode:Ivdb_core.Maintain.create_mode ->
  ?refresh_threshold:int ->
  name:string ->
  group_by:string list ->
  aggs:Ivdb_core.View_def.agg list ->
  source:view_source ->
  strategy:Ivdb_core.Maintain.strategy ->
  unit ->
  view
(** Materializes the initial contents. Escrow and Deferred strategies
    require escrow-compatible aggregates (no MIN/MAX) — [Invalid_argument]
    otherwise. Join-view maintenance probes the other table through an
    index on its join column when one exists, falling back to a scan. *)

(** {1 Handles and schemas} *)

val table : t -> string -> table
val view : t -> string -> view
(** Raise [Not_found]. *)

val schema : t -> table -> Ivdb_relation.Schema.t

val join_schema : t -> table -> table -> Ivdb_relation.Schema.t
(** Concatenated schema used by join-view expressions (right-side duplicate
    names get an ["r."] prefix). *)

val table_name : t -> table -> string
val list_tables : t -> string list

val indexed_columns : t -> table -> (string * string) list
(** (column name, index name) for each secondary index on the table. *)

(** (name, strategy) pairs. *)
val list_views : t -> (string * string) list
val view_name : t -> view -> string
val view_def : t -> view -> Ivdb_core.View_def.t
val view_strategy : t -> view -> Ivdb_core.Maintain.strategy
val view_refresh_threshold : t -> view -> int option

(** {1 Transactions} *)

type abort_reason =
  | Deadlock_victim
      (** chosen as a deadlock victim (a {!Ivdb_txn.Txn.Conflict}) and out
          of retries *)
  | Lock_timeout
      (** reserved: no lock wait in the engine times out today — deadlocks
          are detected at block time rather than waited out *)
  | User_abort of exn
      (** the transaction body raised; the exception is preserved *)
(** Why a {!transact_result} transaction ultimately failed (after all
    automatic retries). *)

val transact : t -> ?retries:int -> ?read_only:bool -> (Ivdb_txn.Txn.t -> 'a) -> 'a
(** Begin / run / commit, aborting on exception. A deadlock-victim
    {!Ivdb_txn.Txn.Conflict} aborts, yields, and retries (up to
    [config.txn_retries]); other exceptions abort and re-raise. After a
    commit that deleted rows, ghost slots are reclaimed by a system
    transaction. Counts [txn.retry]; exhausted retries count
    [txn.give_up]. Implemented on {!transact_result}'s retry loop — the
    terminal exception is re-raised unchanged.

    With [~read_only:true] the body runs in a lock-free snapshot
    transaction ({!Ivdb_txn.Txn.begin_snapshot}): every read resolves
    against MVCC version chains as of the begin stamp, no lock-manager or
    WAL traffic occurs, and any write attempt raises [Invalid_argument].
    Snapshot transactions never deadlock, so there is no retry loop. *)

val transact_result :
  t -> ?retries:int -> (Ivdb_txn.Txn.t -> 'a) -> ('a, abort_reason) result
(** Like {!transact}, but the terminal outcome is a value: [Error
    Deadlock_victim] when retries are exhausted by deadlock aborts, [Error
    (User_abort e)] when the body raised [e]. Never raises from the
    transaction machinery itself. *)

val checkpoint : t -> unit

(** {1 Sharding and two-phase commit (participant side)}

    A [Database.t] can act as one shard of a hash-partitioned cluster
    driven by {!Ivdb_coord.Coord}: {!set_shard} names its slot,
    {!set_delta_router} installs the group-to-shard map, and escrow view
    deltas whose group lives on another shard are diverted into a per-
    transaction outbound buffer ({!outbound_deltas}) instead of applied
    locally — the coordinator ships them to the owning shard inside its
    Prepare. {!prepare_2pc} / {!decide_2pc} implement the participant
    half of 2PC: a prepared transaction's handle moves into an in-doubt
    table where it keeps every lock (across crashes, via recovery's
    in-doubt resurrection) until the coordinator's decision arrives. *)

(** Codec for the opaque remote-delta payload carried by [Prepare] wire
    frames and WAL records: a list of (view id, group key, encoded
    additive delta). *)
module Deltas : sig
  val encode : (int * string * string) list -> string
  val decode : string -> (int * string * string) list
  (** Raises [Invalid_argument] on malformed input. *)
end

val set_shard : t -> shard:int -> shards:int -> unit
(** Declare this engine shard [shard] of [shards]. [Invalid_argument] if
    out of range. *)

val shard_info : t -> (int * int) option
(** [(shard id, shard count)] once {!set_shard} ran; [None] on an
    unsharded engine. *)

val set_delta_router : t -> (view:int -> key:string -> int) -> unit
(** Install the group-to-shard map. Once set (together with
    {!set_shard}), view maintenance routes deltas for remote groups into
    the outbound buffer; non-additive deltas for remote groups raise
    [Invalid_argument] (only escrow increments commute enough to travel). *)

val outbound_deltas : t -> Ivdb_txn.Txn.t -> (int * int * string * string) list
(** The transaction's diverted deltas, oldest first:
    (destination shard, view id, group key, encoded delta). Cleared
    automatically when the transaction finishes. *)

val prepare_2pc : t -> Ivdb_txn.Txn.t -> gtxn:string -> deltas:string -> unit
(** 2PC phase 1: apply the inbound {!Deltas} payload through the escrow
    maintenance path inside the transaction, force a [Prepare] WAL
    record, and move the transaction into the in-doubt table (it keeps
    all its locks; the caller must stop using the handle). Raises
    [Invalid_argument] on a duplicate gtxn — callers dedupe with
    {!gtxn_status} first. *)

val gtxn_status : t -> string -> [ `Unknown | `Prepared | `Decided of bool ]

val decide_2pc :
  t -> gtxn:string -> committed:bool -> [ `Applied | `Duplicate | `Presumed_abort ]
(** 2PC phase 2: log a [Decision] record and commit or roll back the
    prepared transaction. Idempotent: a retransmit for an already-decided
    gtxn returns [`Duplicate]; an unknown gtxn with an abort decision is
    [`Presumed_abort] (no-op); an unknown commit raises
    [Invalid_argument]. *)

val indoubt_gtxns : t -> (string * int) list
(** Prepared-but-undecided transactions: (gtxn, local txn id), sorted. *)

val indoubt_count : t -> int

val last_decided : t -> string option
(** The most recently decided gtxn on this shard (for [sys.shards]). *)

(** {1 Crash and recovery} *)

val crash : t -> t
(** Simulate a crash and recover: volatile state (buffer pool, locks,
    unforced log tail) is lost; the returned instance is rebuilt from the
    stable log and disk — catalog restored, history repeated, losers rolled
    back — and ends with a checkpoint. The old handle must not be used
    again.

    On a [Follower] the recovery differs in three role-specific ways: redo
    restarts from the replica's own first retained LSN (the governing
    checkpoint's dirty-page table describes the {e primary's} disk, not
    this one's), in-flight primary transactions are {e not} rolled back
    (their CLRs or commits arrive later in the stream), and no final
    checkpoint is taken (a follower appends nothing). The recovered
    follower resumes streaming at [{!replicated_lsn} + 1].

    On either role the WAL's replication retain floor
    ({!Ivdb_wal.Wal.set_retain_floor}) survives the restart — slots are
    durable state, so a primary's recovery checkpoint never truncates
    records a subscribed replica still needs. *)

(** {1 Maintenance} *)

val gc : t -> int
(** Run the garbage-collection system transactions: zero-count view rows,
    deferred-queue ghosts, base-table ghosts; also prunes MVCC version
    chains no live snapshot can still see. Returns items reclaimed.
    On a [Follower] this is a no-op returning 0 — gc runs system
    transactions, and reclamation replicates from the primary instead. *)

val metrics : t -> Ivdb_util.Metrics.t

val trace : t -> Ivdb_util.Trace.t
(** The engine-wide trace, shared by every subsystem of this instance and
    wired to the deterministic scheduler's clock and fiber ids. Disabled
    (and sink-less) by default: call {!Ivdb_util.Trace.add_sink} and
    {!Ivdb_util.Trace.set_enabled} to observe events. *)

val mgr : t -> Ivdb_txn.Txn.mgr
val locks : t -> Ivdb_lock.Lock_mgr.t
val wal : t -> Ivdb_wal.Wal.t
val pool : t -> Ivdb_storage.Bufpool.t

(** {1 Internal access — for the Table/Query modules and tests} *)

module Internal : sig
  type table_rt
  type index_rt

  val table_id : table -> int
  val view_id : view -> int
  val of_table_id : int -> table
  val table_rt : t -> int -> table_rt
  val rt_schema : table_rt -> Ivdb_relation.Schema.t
  val rt_heap : table_rt -> Ivdb_storage.Heap_file.t
  val rt_indexes : table_rt -> index_rt list
  val rt_dep_views : table_rt -> int list
  val ix_id : index_rt -> int
  val ix_col : index_rt -> int
  val ix_unique : index_rt -> bool
  val ix_tree : index_rt -> Ivdb_btree.Btree.t
  val view_rt : t -> int -> Ivdb_core.Maintain.runtime
  val inflight : t -> Ivdb_core.Inflight.t

  (** Row lock with escalation accounting; a covering table lock makes it
      a no-op. *)
  val lock_row :
    t -> Ivdb_txn.Txn.t -> int -> Ivdb_storage.Heap_file.rid -> Ivdb_lock.Lock_mode.t -> unit

  (** [true] iff the delta's group is owned by another shard and was
      stashed in the transaction's outbound buffer (the caller must not
      apply it locally). *)
  val route_remote :
    t -> Ivdb_txn.Txn.t -> vid:int -> key:string -> Ivdb_core.Aggregate.delta -> bool

  val view_rts : t -> Ivdb_core.Maintain.runtime list
  val note_ghost : t -> Ivdb_txn.Txn.t -> int -> Ivdb_storage.Heap_file.rid -> unit
  val note_index_ghost : t -> Ivdb_txn.Txn.t -> int -> string -> unit

  val index_entry_live : string -> string
  val index_entry_ghost_of : string -> string
  val index_entry_is_ghost : string -> bool
  val index_entry_payload : string -> string
  val encode_rid_payload : Ivdb_storage.Heap_file.rid -> string

  val index_key :
    unique:bool -> Ivdb_relation.Value.t -> Ivdb_storage.Heap_file.rid -> string

  val heap_scan_rows :
    t ->
    Ivdb_txn.Txn.t option ->
    table ->
    (Ivdb_storage.Heap_file.rid * Ivdb_relation.Row.t) Seq.t
  (** Rows of a table with their rids; with a transaction, IS on the table
      and [S] per row. *)

  val index_probe :
    t ->
    Ivdb_txn.Txn.t option ->
    table:int ->
    col:int ->
    Ivdb_relation.Value.t ->
    Ivdb_relation.Row.t Seq.t
  (** Rows with [col = value], via the column's index under key-range
      locking when one exists (scan fallback otherwise). *)

  val index_probe_rids :
    t ->
    Ivdb_txn.Txn.t option ->
    table:int ->
    col:int ->
    Ivdb_relation.Value.t ->
    (Ivdb_storage.Heap_file.rid * Ivdb_relation.Row.t) Seq.t
  (** Like {!index_probe} but also yields each row's rid. *)

  val index_range_rids :
    t ->
    Ivdb_txn.Txn.t option ->
    table:int ->
    col:int ->
    lo:(Ivdb_relation.Value.t * bool) option ->
    hi:(Ivdb_relation.Value.t * bool) option ->
    (Ivdb_storage.Heap_file.rid * Ivdb_relation.Row.t) Seq.t
  (** Rows with [col] in the interval (bounds are (value, inclusive)
      pairs), via the column's index under key-range locking when one
      exists; filtered scan otherwise. *)

  val source_rows :
    t ->
    Ivdb_txn.Txn.t option ->
    Ivdb_core.View_def.t ->
    Ivdb_relation.Row.t Seq.t
  (** The rows the view's defining query ranges over (concatenated rows for
      a join), WHERE not applied. With a transaction, rows are read under
      [S] row locks. *)
end
