(** The synthetic order-entry workload used by the benchmark suite and the
    examples: an append-heavy sales table whose product column follows a
    Zipf distribution, with one or more grouped indexed views on top.

    This reproduces the contention structure that motivates escrow locking:
    under skew, most transactions update the aggregates of a few hot
    product groups. *)

type reader_locking = Key_range | Coarse_table | Snapshot
(** How reader transactions read a view: per-key RangeS_S (the paper's
    protocol), one S lock on the whole view (the D4 ablation), or a
    lock-free MVCC snapshot transaction ([Database.transact
    ~read_only:true]) resolving against version chains. *)

type spec = {
  seed : int;
  n_groups : int;  (** distinct products *)
  theta : float;  (** Zipf skew; 0. = uniform *)
  mpl : int;  (** concurrent worker fibers *)
  txns_per_worker : int;
  ops_per_txn : int;
  delete_fraction : float;  (** per-op probability of deleting an own row *)
  read_fraction : float;  (** per-txn probability of being a view reader *)
  reader_scan : bool;  (** readers scan the whole view (vs 3 point lookups) *)
  reader_locking : reader_locking;
  strategy : Ivdb_core.Maintain.strategy;
  create_mode : Ivdb_core.Maintain.create_mode;
  n_views : int;  (** dependent views on the sales table (0 = none) *)
  initial_rows : int;  (** preloaded before measurement *)
  gc_every : int option;  (** run Database.gc every n committed txns *)
  checkpoint_every : int option;
      (** sharp checkpoint (and log truncation) every n committed txns *)
  stats_interval : int option;
      (** print a one-line throughput/latency summary every n simulated
          ticks (see {!probe_line}); [None] = silent *)
  config : Database.config;
}

val default : spec
(** 20 groups, theta 0.99, mpl 8, 50 txns x 4 ops, 10% deletes, no readers,
    escrow, 1 view, 200 preloaded rows, zero I/O cost. *)

type result = {
  committed : int;
  crashed : bool;
      (** an injected {!Ivdb_storage.Fault} crash point fired mid-run;
          tick/latency figures cover the truncated run *)
  committed_readers : int;  (** of which reader transactions *)
  given_up : int;  (** transactions that exhausted their deadlock retries *)
  retries : int;
  deadlocks : int;
  lock_waits : int;
  ticks : int;  (** simulated time consumed by the measured phase *)
  wall_s : float;
  throughput : float;  (** committed transactions per 1000 ticks *)
  mean_latency : float;  (** ticks from transaction start to commit *)
  p95_latency : float;
  forces : int;  (** log forces during the measured phase *)
  mean_batch : float;
      (** mean commits per group-commit force (0 outside [Group]/[Async]) *)
  batch_hist : (int * int) list;
      (** (batch size, occurrences) for the measured phase — deterministic
          for a fixed seed, which the determinism tests rely on *)
  metrics : (string * int) list;  (** full counter diff of the run *)
}

val setup : spec -> Database.t * Database.table * Database.view list
(** Create the schema and preload [initial_rows] (not measured). *)

(** {1 Phase bracketing}

    The measurement machinery of {!run_on}, reusable by drivers that own
    their own fibers (the network closed-loop driver): snapshot metrics
    and the commit-batch histogram at the start, accumulate per-transaction
    outcomes during the run, assemble a full {!result} at the end.
    Counter diffing is robust to counters first registered mid-phase
    (e.g. [server.*], created when the first server starts). *)

type phase

val phase_start : Database.t -> phase

val phase_commit : phase -> ?reader:bool -> latency:float -> unit -> unit
(** One committed transaction; [latency] in ticks. *)

val phase_give_up : phase -> unit
(** One transaction abandoned after exhausting its retries. *)

val phase_committed : phase -> int

val phase_finish : phase -> ?crashed:bool -> ticks:int -> unit -> result
(** [ticks] is the simulated span of the measured window (clamped to 1). *)

(** {1 Live stats reporting}

    Interval summaries computed from {!Ivdb_util.Metrics.diff} between
    registry snapshots — the same counters and histograms [sys.metrics]
    and [sys.metrics_hist] expose — so the reporter is driver-agnostic:
    {!run_on} and the network closed loop both use it via
    [stats_interval]. *)

type stats_probe

val probe_start : Database.t -> stats_probe
(** Snapshot the registry (counters, [txn.commit_ticks] and
    [lock.wait_ticks] histograms) and the clock. *)

val probe_line : stats_probe -> string
(** One-line summary of the interval since the last call (or
    {!probe_start}): commits, throughput per 1000 ticks, commit p95,
    lock waits and wait p95, deadlocks. Advances the probe. *)

val spawn_reporter : Database.t -> interval:int -> running:(unit -> bool) -> unit
(** Spawn a fiber printing {!probe_line} every [interval] ticks while
    [running ()] holds, plus a final partial-interval line. Must be
    called inside a scheduler run. *)

val run_on : Database.t -> Database.table -> Database.view list -> spec -> result
(** Execute the measured phase under {!Ivdb_sched.Sched.run}. *)

val run : spec -> result
(** [setup] + [run_on]. *)

val check_consistency : Database.t -> Database.view -> bool
(** Invariant V1: the view's visible contents equal a from-scratch
    aggregation of its base tables (deferred views are drained first by
    the caller if exactness is wanted). *)
