(** Built-in [sys.*] virtual tables: read-only, eagerly-materialized
    projections of live engine state (transactions, locks and waits,
    per-view maintenance counters, buffer pool, WAL, metrics registry).

    Every provider is a pure read with snapshot-at-a-tick semantics: rows
    are built in one step of the cooperative scheduler, no locks are
    taken, and no maintenance (e.g. deferred-view refresh) is triggered. *)

val names : string list
(** Every built-in table name, sorted — for error messages. *)

val server_sessions_header : string list
(** Column names of [sys.server_sessions]; the built-in resolution returns
    this schema with zero rows (a local session has no server), and the
    serving layer overrides the table per session via
    {!Sql.add_sys_provider}. *)

val slow_queries_header : string list
(** Likewise for [sys.slow_queries]. *)

val shards_header : string list
(** Column names of [sys.shards]. An unsharded engine resolves to zero
    rows; a participant shard reports its own slot, in-doubt count and
    last decided gtxn; the coordinator overrides the table per session
    with one row per shard of the cluster. *)

val outbound_header : string list
(** Column names of [sys.outbound] — the open transaction's escrow deltas
    diverted toward other shards. The built-in resolution is always zero
    rows; {!Sql} resolves it against the session's transaction. *)

val replication_header : string list
(** Column names of [sys.replication]. A standalone database is not
    replicating, so the built-in resolution returns zero rows; the
    serving layer (primary: one row per known replica slot) and the
    replica driver (follower: one row for its upstream link) override
    the table per session. *)

val gtxns_header : string list
(** Column names of [sys.gtxns] — live and recently-finished global
    transactions. A plain engine resolves to zero rows; the shard
    coordinator answers it from its 2PC state (phase, participant set,
    per-shard votes, ticks in the current phase, undelivered
    decisions). *)

val coord_shards_header : string list
(** Column names of [sys.coord_shards] — per-shard health as seen from
    the coordinator (last contact tick, prepare/decide traffic,
    outstanding decisions, dedupe hits, reconnects). Zero rows on a
    plain engine. *)

val cluster_metrics_header : string list
(** Column names of [sys.cluster_metrics] — every shard's [sys.metrics]
    rows tagged with the reporting node ("coord", "shard0", …). Zero
    rows on a plain engine; the coordinator fans the query out. *)

val builtin :
  Ivdb.Database.t ->
  self_txn:int option ->
  string ->
  (string list * Ivdb_relation.Row.t list) option
(** [builtin db ~self_txn name] resolves a built-in table to its header
    and rows, or [None] for unknown names. [self_txn] is the calling
    session's open transaction id, surfaced as the [self] column of
    [sys.transactions]. *)
