(** Abstract syntax of the SQL dialect.

    The dialect covers what the engine implements: table/index/view DDL,
    single-table DML, SELECT over tables (with WHERE / ORDER BY / LIMIT),
    SELECT over indexed views, and on-the-fly GROUP BY aggregation.
    Indexed views are created with [CREATE VIEW ... USING ESCROW|
    EXCLUSIVE|DEFERRED]. *)

type lit =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool
  | L_null

type expr =
  | Lit of lit
  | Column of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Is_null of expr
  | Agg_ref of agg_expr
      (* aggregate used as a value — only meaningful in HAVING *)

and binop = Add | Sub | Mul | Div | Eq | Ne | Lt | Le | Gt | Ge | And | Or

and unop = Neg | Not

and agg_expr =
  | Count_star
  | Count of expr
  | Sum of expr
  | Min of expr
  | Max of expr
  | Avg of expr

type select_item = Star | Col_item of string | Agg_item of agg_expr

type order_by = { ob_col : string; ob_desc : bool }

type select = {
  items : select_item list;
  from : string;
  join : (string * string * string) option;  (** table2, left col, right col *)
  where : expr option;
  group_by : string list;
  having : expr option;
  order : order_by option;
  limit : int option;
}

type col_def = { cd_name : string; cd_ty : Ivdb_relation.Value.ty; cd_nullable : bool }

type strategy = S_exclusive | S_escrow | S_deferred of int option
    (** deferred carries an optional refresh threshold *)

type stmt =
  | Create_table of { t_name : string; cols : col_def list }
  | Create_index of { i_name : string; on_table : string; col : string; unique : bool }
  | Create_view of { v_name : string; query : select; strat : strategy }
  | Insert of { into : string; rows : lit list list }
  | Delete of { from_t : string; where : expr option }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Select of select
  | Explain of select
  | Explain_analyze of select
  | Begin of { read_only : bool }
  | Commit
  | Rollback
  | Savepoint of string
  | Rollback_to of string
  | Checkpoint
  | Show of [ `Tables | `Views | `Metrics ]

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
