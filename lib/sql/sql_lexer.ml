type token =
  | Kw of string
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Sym of string
  | Eof

exception Lex_error of string

let keywords =
  [
    "CREATE"; "TABLE"; "INDEX"; "VIEW"; "ON"; "AS"; "SELECT"; "FROM"; "WHERE";
    "GROUP"; "BY"; "ORDER"; "LIMIT"; "DESC"; "ASC"; "JOIN"; "INSERT"; "INTO";
    "VALUES"; "DELETE"; "UPDATE"; "SET"; "AND"; "OR"; "NOT"; "NULL"; "IS";
    "TRUE"; "FALSE"; "COUNT"; "SUM"; "MIN"; "MAX"; "INT"; "FLOAT"; "TEXT";
    "BOOL"; "USING"; "ESCROW"; "EXCLUSIVE"; "DEFERRED"; "REFRESH"; "THRESHOLD";
    "BEGIN"; "COMMIT"; "ROLLBACK"; "CHECKPOINT"; "SHOW"; "TABLES"; "VIEWS";
    "METRICS"; "EXPLAIN"; "ANALYZE"; "AVG"; "HAVING"; "SAVEPOINT"; "TO";
    "UNIQUE"; "READ"; "ONLY";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = ';' then incr pos
    else if c = '-' && !pos + 1 < n && src.[!pos + 1] = '-' then begin
      (* line comment *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then push (Kw upper)
      else push (Ident (String.lowercase_ascii word))
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && (is_digit src.[!pos] || src.[!pos] = '.') do
        incr pos
      done;
      let num = String.sub src start (!pos - start) in
      if String.contains num '.' then push (Float (float_of_string num))
      else push (Int (int_of_string num))
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Lex_error "unterminated string literal")
        else if src.[!pos] = '\'' then
          if !pos + 1 < n && src.[!pos + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2;
            go ()
          end
          else incr pos
        else begin
          Buffer.add_char buf src.[!pos];
          incr pos;
          go ()
        end
      in
      go ();
      push (String (Buffer.contents buf))
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      match two with
      | "<>" | "<=" | ">=" | "!=" ->
          push (Sym (if two = "!=" then "<>" else two));
          pos := !pos + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | '*' | '=' | '<' | '>' | '+' | '-' | '.' | '/' ->
              push (Sym (String.make 1 c));
              incr pos
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c)))
    end
  done;
  List.rev (Eof :: !toks)

let pp_token ppf = function
  | Kw k -> Format.fprintf ppf "%s" k
  | Ident i -> Format.fprintf ppf "ident:%s" i
  | Int i -> Format.fprintf ppf "int:%d" i
  | Float f -> Format.fprintf ppf "float:%g" f
  | String s -> Format.fprintf ppf "str:%S" s
  | Sym s -> Format.fprintf ppf "sym:%s" s
  | Eof -> Format.fprintf ppf "<eof>"
