(* Built-in sys.* virtual tables: read-only projections of live engine
   state, resolved by name in the SQL layer before ordinary catalog
   lookup.

   Snapshot-at-a-tick semantics: each provider materializes its rows
   eagerly, in one scheduler step of the cooperative fiber model, so the
   result is a self-consistent picture of the engine at a single logical
   tick. No provider takes a lock, joins a wait queue, or triggers
   maintenance (deferred-view auto-refresh included) — introspection must
   be able to observe a contended or wedged engine without becoming a
   participant in the contention it is reporting. *)

module Database = Ivdb.Database
module Txn = Ivdb_txn.Txn
module Lock_mgr = Ivdb_lock.Lock_mgr
module Lock_name = Ivdb_lock.Lock_name
module Lock_mode = Ivdb_lock.Lock_mode
module Wal = Ivdb_wal.Wal
module Bufpool = Ivdb_storage.Bufpool
module Btree = Ivdb_btree.Btree
module Maintain = Ivdb_core.Maintain
module Aggregate = Ivdb_core.Aggregate
module Metrics = Ivdb_util.Metrics
module Value = Ivdb_relation.Value
module Row = Ivdb_relation.Row
module Sched = Ivdb_sched.Sched

let vint i = Value.Int i
let vstr s = Value.Str s
let vbool b = Value.Bool b
let vopt_str = function None -> Value.Null | Some s -> Value.Str s

let name_str name = Format.asprintf "%a" Lock_name.pp name

let status_str = function
  | Txn.Active -> "active"
  | Txn.Committed -> "committed"
  | Txn.Aborted -> "aborted"

(* --- providers ------------------------------------------------------------- *)

let transactions db ~self_txn =
  let now = Sched.now () in
  let row (i : Txn.info) =
    let ticks =
      match i.Txn.i_end_tick with
      | Some e -> e - i.Txn.i_begin_tick
      | None -> now - i.Txn.i_begin_tick
    in
    let mode =
      if i.Txn.i_snapshot <> None then "snapshot"
      else if i.Txn.i_system then "system"
      else "rw"
    in
    [|
      vint i.Txn.i_txn;
      vbool i.Txn.i_system;
      vstr mode;
      vstr (status_str i.Txn.i_status);
      vbool (self_txn = Some i.Txn.i_txn);
      vint i.Txn.i_begin_tick;
      vint ticks;
      vint i.Txn.i_locks;
      vint i.Txn.i_deltas;
      (match i.Txn.i_snapshot with Some s -> vint s | None -> Value.Null);
      vopt_str i.Txn.i_abort_reason;
    |]
  in
  let mgr = Database.mgr db in
  ( [
      "txn"; "system"; "mode"; "state"; "self"; "begin_tick"; "ticks"; "locks";
      "deltas"; "snapshot_tick"; "abort_reason";
    ],
    List.map row (Txn.active_info mgr) @ List.map row (Txn.recent_info mgr) )

let locks db =
  let rows =
    List.concat_map
      (fun (name, owners, _queue) ->
        List.map
          (fun (txn, mode) ->
            [| vstr (name_str name); vint txn; vstr (Lock_mode.to_string mode) |])
          owners)
      (Lock_mgr.dump (Database.locks db))
    |> List.sort compare
  in
  ([ "resource"; "txn"; "mode" ], rows)

let lock_waits db =
  let now = Sched.now () in
  let rows =
    List.map
      (fun (w : Lock_mgr.wait_info) ->
        let holder =
          match w.Lock_mgr.w_blockers with [] -> Value.Null | h :: _ -> vint h
        in
        [|
          vstr (name_str w.Lock_mgr.w_name);
          vint w.Lock_mgr.w_txn;
          vstr (Lock_mode.to_string w.Lock_mgr.w_mode);
          vbool w.Lock_mgr.w_convert;
          holder;
          vstr
            (String.concat ","
               (List.map string_of_int w.Lock_mgr.w_blockers));
          vint (now - w.Lock_mgr.w_since);
        |])
      (Lock_mgr.waits (Database.locks db))
  in
  ( [ "resource"; "waiter"; "mode"; "convert"; "holder"; "holders"; "wait_ticks" ],
    rows )

let views db =
  let rows =
    List.map
      (fun (name, strategy) ->
        let v = Database.view db name in
        let vid = Database.Internal.view_id v in
        let rt = Database.Internal.view_rt db vid in
        let total = ref 0 and zeros = ref 0 in
        Btree.iter rt.Maintain.tree (fun _ value ->
            incr total;
            if Aggregate.count_of (Row.decode value) = 0 then incr zeros);
        let s = rt.Maintain.vstats in
        [|
          vstr name;
          vint vid;
          vstr strategy;
          vint (!total - !zeros);
          vint !zeros;
          vint s.Maintain.v_deltas;
          vint s.Maintain.v_escrow;
          vint s.Maintain.v_exclusive;
          vint s.Maintain.v_deferred;
          vint s.Maintain.v_recomputes;
          vint s.Maintain.v_group_creates;
          vint s.Maintain.v_group_deletes;
          vint s.Maintain.v_gc_zero;
          vint s.Maintain.v_system_txns;
        |])
      (Database.list_views db)
  in
  ( [
      "view"; "id"; "strategy"; "groups"; "zero_groups"; "deltas"; "escrow";
      "exclusive"; "deferred"; "recomputes"; "group_creates"; "group_deletes";
      "gc_zero_groups"; "system_txns";
    ],
    rows )

let bufpool db =
  let pool = Database.pool db in
  let m = Database.metrics db in
  ( [
      "capacity"; "resident"; "dirty"; "hits"; "misses"; "evictions";
      "writebacks"; "overflows"; "io_retries";
    ],
    [
      [|
        vint (Bufpool.capacity pool);
        vint (Bufpool.resident pool);
        vint (List.length (Bufpool.dirty_page_table pool));
        vint (Metrics.get m "buffer.hit");
        vint (Metrics.get m "buffer.miss");
        vint (Metrics.get m "buffer.evict");
        vint (Metrics.get m "buffer.writeback");
        vint (Metrics.get m "buffer.overflow");
        vint (Metrics.get m "buffer.io_retry");
      |];
    ] )

let wal db =
  let w = Database.wal db in
  let m = Database.metrics db in
  ( [
      "first_lsn"; "last_lsn"; "flushed_lsn"; "records"; "stable_bytes";
      "appends"; "forces";
    ],
    [
      [|
        vint (Wal.first_lsn w);
        vint (Wal.last_lsn w);
        vint (Wal.flushed_lsn w);
        vint (Wal.record_count w);
        vint (Wal.stable_byte_size w);
        vint (Metrics.get m "log.append");
        vint (Metrics.get m "log.force");
      |];
    ] )

let metrics db =
  ( [ "counter"; "value" ],
    List.map
      (fun (k, v) -> [| vstr k; vint v |])
      (Metrics.snapshot (Database.metrics db)) )

let metrics_hist db =
  ( [ "hist"; "count"; "total"; "mean"; "p50"; "p95"; "max" ],
    List.map
      (fun (name, cells) ->
        let count = List.fold_left (fun a (_, c) -> a + c) 0 cells in
        let total = List.fold_left (fun a (v, c) -> a + (v * c)) 0 cells in
        let mean =
          if count = 0 then 0. else float_of_int total /. float_of_int count
        in
        let vmax = List.fold_left (fun a (v, _) -> max a v) 0 cells in
        [|
          vstr name;
          vint count;
          vint total;
          Value.Float mean;
          vint (Metrics.percentile_cells cells 50.);
          vint (Metrics.percentile_cells cells 95.);
          vint vmax;
        |])
      (Metrics.hists (Database.metrics db)) )

(* One row describing this engine's slot in a hash-partitioned cluster;
   empty on an unsharded engine. The coordinator overrides the table per
   session with a cluster-wide view (one row per shard). *)
let shards_header =
  [ "shard"; "shards"; "role"; "partition"; "indoubt"; "last_decided" ]

let shards db =
  let rows =
    match Database.shard_info db with
    | None -> []
    | Some (self, n) ->
        [
          [|
            vint self;
            vint n;
            vstr "participant";
            vstr (Printf.sprintf "hash(pk) mod %d = %d" n self);
            vint (Database.indoubt_count db);
            vopt_str (Database.last_decided db);
          |];
        ]
  in
  (shards_header, rows)

(* The session's diverted escrow deltas waiting to ride a 2PC prepare to
   their owning shard; resolved in the SQL layer (it needs the session's
   open transaction), this is just the schema for the zero-row default. *)
let outbound_header = [ "dest_shard"; "view"; "key"; "delta_hex" ]

(* Placeholders for the serving layer's tables: a local (non-networked)
   session has no server, so these resolve to their schema with zero rows;
   the server overrides them per session with live providers. *)
let server_sessions_header =
  [ "session"; "conn"; "state"; "in_txn"; "statements"; "last_rid" ]

let slow_queries_header = [ "rid"; "session"; "seq"; "ticks"; "tick"; "sql" ]

let replication_header =
  [
    "role";
    "peer";
    "state";
    "replicated_lsn";
    "flushed_lsn";
    "committed_lsn";
    "lag_records";
    "tick";
  ]

(* Coordinator-resident catalogs: a plain engine answers them with zero
   rows (it runs no global transactions of its own); the shard
   coordinator answers them locally from its 2PC state and fans
   sys.cluster_metrics out to every shard. *)
let gtxns_header =
  [ "gtxn"; "phase"; "participants"; "votes"; "ticks_in_phase"; "undelivered" ]

let coord_shards_header =
  [
    "shard";
    "addr";
    "last_contact";
    "prepares";
    "decides";
    "outstanding";
    "dedupe_hits";
    "reconnects";
  ]

let cluster_metrics_header = [ "node"; "counter"; "value" ]

let names =
  [
    "sys.bufpool";
    "sys.cluster_metrics";
    "sys.coord_shards";
    "sys.gtxns";
    "sys.lock_waits";
    "sys.locks";
    "sys.metrics";
    "sys.metrics_hist";
    "sys.outbound";
    "sys.replication";
    "sys.server_sessions";
    "sys.shards";
    "sys.slow_queries";
    "sys.transactions";
    "sys.views";
    "sys.wal";
  ]

let builtin db ~self_txn name =
  match name with
  | "sys.transactions" -> Some (transactions db ~self_txn)
  | "sys.locks" -> Some (locks db)
  | "sys.lock_waits" -> Some (lock_waits db)
  | "sys.views" -> Some (views db)
  | "sys.bufpool" -> Some (bufpool db)
  | "sys.wal" -> Some (wal db)
  | "sys.metrics" -> Some (metrics db)
  | "sys.metrics_hist" -> Some (metrics_hist db)
  | "sys.server_sessions" -> Some (server_sessions_header, [])
  | "sys.slow_queries" -> Some (slow_queries_header, [])
  | "sys.replication" -> Some (replication_header, [])
  | "sys.shards" -> Some (shards db)
  | "sys.outbound" -> Some (outbound_header, [])
  | "sys.gtxns" -> Some (gtxns_header, [])
  | "sys.coord_shards" -> Some (coord_shards_header, [])
  | "sys.cluster_metrics" -> Some (cluster_metrics_header, [])
  | _ -> None
