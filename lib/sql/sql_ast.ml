type lit =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool
  | L_null

type expr =
  | Lit of lit
  | Column of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Is_null of expr
  | Agg_ref of agg_expr
      (* aggregate used as a value — only meaningful in HAVING *)

and binop = Add | Sub | Mul | Div | Eq | Ne | Lt | Le | Gt | Ge | And | Or

and unop = Neg | Not

and agg_expr =
  | Count_star
  | Count of expr
  | Sum of expr
  | Min of expr
  | Max of expr
  | Avg of expr

type select_item = Star | Col_item of string | Agg_item of agg_expr

type order_by = { ob_col : string; ob_desc : bool }

type select = {
  items : select_item list;
  from : string;
  join : (string * string * string) option;
  where : expr option;
  group_by : string list;
  having : expr option;
  order : order_by option;
  limit : int option;
}

type col_def = { cd_name : string; cd_ty : Ivdb_relation.Value.ty; cd_nullable : bool }

type strategy = S_exclusive | S_escrow | S_deferred of int option

type stmt =
  | Create_table of { t_name : string; cols : col_def list }
  | Create_index of { i_name : string; on_table : string; col : string; unique : bool }
  | Create_view of { v_name : string; query : select; strat : strategy }
  | Insert of { into : string; rows : lit list list }
  | Delete of { from_t : string; where : expr option }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Select of select
  | Explain of select
  | Explain_analyze of select
  | Begin of { read_only : bool }
  | Commit
  | Rollback
  | Savepoint of string
  | Rollback_to of string
  | Checkpoint
  | Show of [ `Tables | `Views | `Metrics ]

let pp_lit ppf = function
  | L_int i -> Format.fprintf ppf "%d" i
  | L_float f -> Format.fprintf ppf "%g" f
  | L_string s -> Format.fprintf ppf "'%s'" s
  | L_bool b -> Format.fprintf ppf "%b" b
  | L_null -> Format.fprintf ppf "NULL"

let rec pp_expr ppf = function
  | Lit l -> pp_lit ppf l
  | Column c -> Format.pp_print_string ppf c
  | Binop (op, a, b) ->
      let s =
        match op with
        | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Eq -> "=" | Ne -> "<>"
        | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | And -> "AND" | Or -> "OR"
      in
      Format.fprintf ppf "(%a %s %a)" pp_expr a s pp_expr b
  | Unop (Neg, a) -> Format.fprintf ppf "(-%a)" pp_expr a
  | Unop (Not, a) -> Format.fprintf ppf "(NOT %a)" pp_expr a
  | Is_null a -> Format.fprintf ppf "(%a IS NULL)" pp_expr a
  | Agg_ref a -> pp_agg ppf a

and pp_agg ppf = function
  | Count_star -> Format.fprintf ppf "COUNT(all)"
  | Count e -> Format.fprintf ppf "COUNT(%a)" pp_expr e
  | Sum e -> Format.fprintf ppf "SUM(%a)" pp_expr e
  | Min e -> Format.fprintf ppf "MIN(%a)" pp_expr e
  | Max e -> Format.fprintf ppf "MAX(%a)" pp_expr e
  | Avg e -> Format.fprintf ppf "AVG(%a)" pp_expr e

let pp_stmt ppf = function
  | Create_table { t_name; cols } ->
      Format.fprintf ppf "CREATE TABLE %s (%d cols)" t_name (List.length cols)
  | Create_index { i_name; on_table; col; unique } ->
      Format.fprintf ppf "CREATE %sINDEX %s ON %s(%s)"
        (if unique then "UNIQUE " else "")
        i_name on_table col
  | Create_view { v_name; _ } -> Format.fprintf ppf "CREATE VIEW %s" v_name
  | Insert { into; rows } ->
      Format.fprintf ppf "INSERT INTO %s (%d rows)" into (List.length rows)
  | Delete { from_t; _ } -> Format.fprintf ppf "DELETE FROM %s" from_t
  | Update { table; _ } -> Format.fprintf ppf "UPDATE %s" table
  | Select s -> Format.fprintf ppf "SELECT ... FROM %s" s.from
  | Explain s -> Format.fprintf ppf "EXPLAIN SELECT ... FROM %s" s.from
  | Explain_analyze s ->
      Format.fprintf ppf "EXPLAIN ANALYZE SELECT ... FROM %s" s.from
  | Begin { read_only } ->
      Format.fprintf ppf "BEGIN%s" (if read_only then " READ ONLY" else "")
  | Commit -> Format.fprintf ppf "COMMIT"
  | Rollback -> Format.fprintf ppf "ROLLBACK"
  | Savepoint n -> Format.fprintf ppf "SAVEPOINT %s" n
  | Rollback_to n -> Format.fprintf ppf "ROLLBACK TO %s" n
  | Checkpoint -> Format.fprintf ppf "CHECKPOINT"
  | Show `Tables -> Format.fprintf ppf "SHOW TABLES"
  | Show `Views -> Format.fprintf ppf "SHOW VIEWS"
  | Show `Metrics -> Format.fprintf ppf "SHOW METRICS"
