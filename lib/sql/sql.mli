(** Execute SQL against an {!Ivdb.Database}.

    A {!session} wraps a database plus an optional open transaction
    (driven by [BEGIN] / [COMMIT] / [ROLLBACK]). Statements outside an open
    transaction autocommit; reads inside a transaction are serializable,
    autocommitted reads are unlocked snapshots of the committed state.

    The dialect (see {!Sql_ast}):
    {v
      CREATE TABLE t (a INT NOT NULL, b TEXT, c FLOAT)
      CREATE [UNIQUE] INDEX ix ON t (a)
      CREATE VIEW v AS
        SELECT a, COUNT( * ), SUM(c) FROM t [JOIN u ON a = d]
        [WHERE ...] GROUP BY a
        [USING ESCROW | EXCLUSIVE | DEFERRED [REFRESH THRESHOLD n]]
      INSERT INTO t VALUES (1, 'x', 2.5), (2, NULL, 0.0)
      DELETE FROM t WHERE a = 1
      UPDATE t SET c = c + 1 WHERE b = 'x'
      SELECT a, b FROM t WHERE c > 2 ORDER BY a DESC LIMIT 10
      SELECT * FROM v                         -- an indexed view, instantly
      SELECT b, COUNT( * ), AVG(c) FROM t
        GROUP BY b HAVING SUM(c) > 10         -- on-demand aggregation; a
                                              -- matching view is used
                                              -- automatically
      EXPLAIN SELECT ...                      -- access-path and view plans
      EXPLAIN ANALYZE SELECT ...              -- runs the query: per-operator
                                              -- row counts, index probes,
                                              -- lock waits, buffer traffic,
                                              -- simulated ticks
      BEGIN / COMMIT / ROLLBACK
      SAVEPOINT name / ROLLBACK TO name
      CHECKPOINT / SHOW TABLES / SHOW VIEWS / SHOW METRICS
      SELECT * FROM sys.transactions          -- live engine introspection:
                                              -- sys.locks, sys.lock_waits,
                                              -- sys.views, sys.bufpool,
                                              -- sys.wal, sys.metrics, ...
    v} *)

exception Sql_error of string

type session

val session : Ivdb.Database.t -> session
val db : session -> Ivdb.Database.t
val in_transaction : session -> bool

val current_txn : session -> Ivdb_txn.Txn.t option
(** The session's open transaction, if any (for coordinator-side
    inspection of its outbound delta buffer). *)

val prepare_2pc : session -> gtxn:string -> deltas:string -> unit
(** 2PC phase 1 on the session's open transaction (see
    {!Ivdb.Database.prepare_2pc}): applies the inbound delta payload,
    force-writes the Prepare record, and detaches the transaction from
    the session — after this the handle lives in the engine's in-doubt
    table and only a decision (possibly after crash recovery) finishes
    it; a session disconnect no longer rolls it back. Raises {!Sql_error}
    if no read-write transaction is open. *)

val decide_2pc :
  session -> gtxn:string -> committed:bool -> [ `Applied | `Duplicate | `Presumed_abort ]
(** 2PC phase 2, idempotent ({!Ivdb.Database.decide_2pc}). *)

val add_sys_provider :
  session -> string -> (unit -> string list * Ivdb_relation.Row.t list) -> unit
(** [add_sys_provider s name f] registers (or replaces) an
    environment-supplied [sys.*] table on this session: [f ()] returns the
    header and rows, materialized fresh per query. Registered providers
    shadow the built-ins of {!Sys_tables}; the serving layer uses this to
    inject live [sys.server_sessions] and [sys.slow_queries]. *)

type result =
  | Rows of { header : string list; rows : Ivdb_relation.Row.t list }
  | Affected of int
  | Message of string

val select_over :
  Sql_ast.select -> string list * Ivdb_relation.Row.t list -> result
(** [select_over q (header, rows)] evaluates a parsed SELECT against an
    already-materialized relation with [sys.*] semantics: WHERE filtering
    bound by column name, projection by name, ORDER BY / LIMIT; joins,
    GROUP BY and aggregates are refused with {!Sql_error}. This is the
    evaluation half of the [sys.*] path, exported so the shard
    coordinator can answer coordinator-resident catalogs ([sys.gtxns],
    [sys.coord_shards], [sys.cluster_metrics]) without a database. *)

val exec : session -> string -> result
(** Parse and execute one statement. Raises {!Sql_error} (or
    {!Sql_parser.Parse_error} / {!Sql_lexer.Lex_error}) on bad input; an
    error inside an open transaction leaves the transaction open. *)

val render : result -> string
(** Plain-text table, for REPLs and tests. *)
