open Sql_ast
module L = Sql_lexer

exception Parse_error of string

type state = { mutable toks : L.token list }

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.toks with [] -> L.Eof | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let eat st t =
  if peek st = t then advance st
  else fail "expected %a, found %a" L.pp_token t L.pp_token (peek st)

let eat_kw st k = eat st (L.Kw k)

let accept st t =
  if peek st = t then begin
    advance st;
    true
  end
  else false

let ident st =
  match peek st with
  | L.Ident i ->
      advance st;
      i
  | t -> fail "expected identifier, found %a" L.pp_token t

let int_lit st =
  match peek st with
  | L.Int i ->
      advance st;
      i
  | t -> fail "expected integer, found %a" L.pp_token t

(* --- expressions: precedence OR < AND < NOT < cmp < add < mul < unary --- *)

let rec expr st = or_expr st

and or_expr st =
  let a = and_expr st in
  if accept st (L.Kw "OR") then Binop (Or, a, or_expr st) else a

and and_expr st =
  let a = not_expr st in
  if accept st (L.Kw "AND") then Binop (And, a, and_expr st) else a

and not_expr st =
  if accept st (L.Kw "NOT") then Unop (Not, not_expr st) else cmp_expr st

and cmp_expr st =
  let a = add_expr st in
  let op =
    match peek st with
    | L.Sym "=" -> Some Eq
    | L.Sym "<>" -> Some Ne
    | L.Sym "<" -> Some Lt
    | L.Sym "<=" -> Some Le
    | L.Sym ">" -> Some Gt
    | L.Sym ">=" -> Some Ge
    | L.Kw "IS" -> None (* handled below *)
    | _ -> None
  in
  match op with
  | Some op ->
      advance st;
      Binop (op, a, add_expr st)
  | None ->
      if peek st = L.Kw "IS" then begin
        advance st;
        let negated = accept st (L.Kw "NOT") in
        eat_kw st "NULL";
        if negated then Unop (Not, Is_null a) else Is_null a
      end
      else a

and add_expr st =
  let rec go a =
    match peek st with
    | L.Sym "+" ->
        advance st;
        go (Binop (Add, a, mul_expr st))
    | L.Sym "-" ->
        advance st;
        go (Binop (Sub, a, mul_expr st))
    | _ -> a
  in
  go (mul_expr st)

and mul_expr st =
  let rec go a =
    match peek st with
    | L.Sym "*" ->
        advance st;
        go (Binop (Mul, a, unary_expr st))
    | L.Sym "/" ->
        advance st;
        go (Binop (Div, a, unary_expr st))
    | _ -> a
  in
  go (unary_expr st)

and unary_expr st =
  match peek st with
  | L.Sym "-" ->
      advance st;
      Unop (Neg, unary_expr st)
  | _ -> atom st

and atom st =
  match peek st with
  | L.Int i ->
      advance st;
      Lit (L_int i)
  | L.Float f ->
      advance st;
      Lit (L_float f)
  | L.String s ->
      advance st;
      Lit (L_string s)
  | L.Kw "TRUE" ->
      advance st;
      Lit (L_bool true)
  | L.Kw "FALSE" ->
      advance st;
      Lit (L_bool false)
  | L.Kw "NULL" ->
      advance st;
      Lit L_null
  | L.Ident i ->
      advance st;
      Column i
  | L.Sym "(" ->
      advance st;
      let e = expr st in
      eat st (L.Sym ")");
      e
  | L.Kw ("COUNT" | "SUM" | "MIN" | "MAX" | "AVG") -> Agg_ref (agg_atom st)
  | t -> fail "expected expression, found %a" L.pp_token t

and agg_atom st =
  match peek st with
  | L.Kw "COUNT" ->
      advance st;
      eat st (L.Sym "(");
      if accept st (L.Sym "*") then begin
        eat st (L.Sym ")");
        Count_star
      end
      else begin
        let e = expr st in
        eat st (L.Sym ")");
        Count e
      end
  | L.Kw "SUM" ->
      advance st;
      eat st (L.Sym "(");
      let e = expr st in
      eat st (L.Sym ")");
      Sum e
  | L.Kw "MIN" ->
      advance st;
      eat st (L.Sym "(");
      let e = expr st in
      eat st (L.Sym ")");
      Min e
  | L.Kw "MAX" ->
      advance st;
      eat st (L.Sym "(");
      let e = expr st in
      eat st (L.Sym ")");
      Max e
  | L.Kw "AVG" ->
      advance st;
      eat st (L.Sym "(");
      let e = expr st in
      eat st (L.Sym ")");
      Avg e
  | t -> fail "expected aggregate, found %a" L.pp_token t

(* --- literals (INSERT VALUES) ------------------------------------------- *)

let literal st =
  match peek st with
  | L.Int i ->
      advance st;
      L_int i
  | L.Float f ->
      advance st;
      L_float f
  | L.String s ->
      advance st;
      L_string s
  | L.Kw "TRUE" ->
      advance st;
      L_bool true
  | L.Kw "FALSE" ->
      advance st;
      L_bool false
  | L.Kw "NULL" ->
      advance st;
      L_null
  | L.Sym "-" -> (
      advance st;
      match peek st with
      | L.Int i ->
          advance st;
          L_int (-i)
      | L.Float f ->
          advance st;
          L_float (-.f)
      | t -> fail "expected number after -, found %a" L.pp_token t)
  | t -> fail "expected literal, found %a" L.pp_token t

let comma_sep st f =
  let rec go acc =
    let x = f st in
    if accept st (L.Sym ",") then go (x :: acc) else List.rev (x :: acc)
  in
  go []

(* --- SELECT --------------------------------------------------------------- *)

let select_item st =
  match peek st with
  | L.Sym "*" ->
      advance st;
      Star
  | L.Kw ("COUNT" | "SUM" | "MIN" | "MAX" | "AVG") -> Agg_item (agg_atom st)
  | _ -> Col_item (ident st)

let select_body st =
  let items = comma_sep st select_item in
  eat_kw st "FROM";
  let from = ident st in
  (* dotted source names (sys.transactions, ...) fold into one string; the
     tail may collide with a keyword (sys.views, sys.metrics), which the
     lexer uppercased — fold it back *)
  let from =
    if accept st (L.Sym ".") then
      let tail =
        match peek st with
        | L.Ident i ->
            advance st;
            i
        | L.Kw k ->
            advance st;
            String.lowercase_ascii k
        | t -> fail "expected identifier, found %a" L.pp_token t
      in
      from ^ "." ^ tail
    else from
  in
  let join =
    if accept st (L.Kw "JOIN") then begin
      let t2 = ident st in
      eat_kw st "ON";
      let a = ident st in
      eat st (L.Sym "=");
      let b = ident st in
      Some (t2, a, b)
    end
    else None
  in
  let where = if accept st (L.Kw "WHERE") then Some (expr st) else None in
  let group_by =
    if accept st (L.Kw "GROUP") then begin
      eat_kw st "BY";
      comma_sep st ident
    end
    else []
  in
  let having = if accept st (L.Kw "HAVING") then Some (expr st) else None in
  let order =
    if accept st (L.Kw "ORDER") then begin
      eat_kw st "BY";
      let c = ident st in
      let desc = accept st (L.Kw "DESC") in
      if not desc then ignore (accept st (L.Kw "ASC"));
      Some { ob_col = c; ob_desc = desc }
    end
    else None
  in
  let limit = if accept st (L.Kw "LIMIT") then Some (int_lit st) else None in
  { items; from; join; where; group_by; having; order; limit }

(* --- statements ------------------------------------------------------------ *)

let col_type st =
  match peek st with
  | L.Kw "INT" ->
      advance st;
      Ivdb_relation.Value.TInt
  | L.Kw "FLOAT" ->
      advance st;
      Ivdb_relation.Value.TFloat
  | L.Kw "TEXT" ->
      advance st;
      Ivdb_relation.Value.TStr
  | L.Kw "BOOL" ->
      advance st;
      Ivdb_relation.Value.TBool
  | t -> fail "expected a type (INT | FLOAT | TEXT | BOOL), found %a" L.pp_token t

let col_def st =
  let cd_name = ident st in
  let cd_ty = col_type st in
  let cd_nullable =
    match peek st with
    | L.Kw "NOT" ->
        advance st;
        eat_kw st "NULL";
        false
    | L.Kw "NULL" ->
        advance st;
        true
    | _ -> true
  in
  { cd_name; cd_ty; cd_nullable }

let strategy st =
  if accept st (L.Kw "USING") then
    if accept st (L.Kw "ESCROW") then S_escrow
    else if accept st (L.Kw "EXCLUSIVE") then S_exclusive
    else if accept st (L.Kw "DEFERRED") then begin
      if accept st (L.Kw "REFRESH") then begin
        eat_kw st "THRESHOLD";
        S_deferred (Some (int_lit st))
      end
      else S_deferred None
    end
    else fail "expected ESCROW | EXCLUSIVE | DEFERRED after USING"
  else S_escrow

let statement st =
  match peek st with
  | L.Kw "CREATE" -> (
      advance st;
      match peek st with
      | L.Kw "TABLE" ->
          advance st;
          let t_name = ident st in
          eat st (L.Sym "(");
          let cols = comma_sep st col_def in
          eat st (L.Sym ")");
          Create_table { t_name; cols }
      | L.Kw "INDEX" | L.Kw "UNIQUE" ->
          let unique = accept st (L.Kw "UNIQUE") in
          eat_kw st "INDEX";
          let i_name = ident st in
          eat_kw st "ON";
          let on_table = ident st in
          eat st (L.Sym "(");
          let col = ident st in
          eat st (L.Sym ")");
          Create_index { i_name; on_table; col; unique }
      | L.Kw "VIEW" ->
          advance st;
          let v_name = ident st in
          eat_kw st "AS";
          eat_kw st "SELECT";
          let query = select_body st in
          let strat = strategy st in
          Create_view { v_name; query; strat }
      | t -> fail "expected TABLE, INDEX or VIEW after CREATE, found %a" L.pp_token t)
  | L.Kw "INSERT" ->
      advance st;
      eat_kw st "INTO";
      let into = ident st in
      eat_kw st "VALUES";
      let row st =
        eat st (L.Sym "(");
        let vs = comma_sep st literal in
        eat st (L.Sym ")");
        vs
      in
      let rows = comma_sep st row in
      Insert { into; rows }
  | L.Kw "DELETE" ->
      advance st;
      eat_kw st "FROM";
      let from_t = ident st in
      let where = if accept st (L.Kw "WHERE") then Some (expr st) else None in
      Delete { from_t; where }
  | L.Kw "UPDATE" ->
      advance st;
      let table = ident st in
      eat_kw st "SET";
      let set st =
        let c = ident st in
        eat st (L.Sym "=");
        let e = expr st in
        (c, e)
      in
      let sets = comma_sep st set in
      let where = if accept st (L.Kw "WHERE") then Some (expr st) else None in
      Update { table; sets; where }
  | L.Kw "SELECT" ->
      advance st;
      Select (select_body st)
  | L.Kw "EXPLAIN" ->
      advance st;
      if accept st (L.Kw "ANALYZE") then begin
        eat_kw st "SELECT";
        Explain_analyze (select_body st)
      end
      else begin
        eat_kw st "SELECT";
        Explain (select_body st)
      end
  | L.Kw "BEGIN" ->
      advance st;
      if accept st (L.Kw "READ") then begin
        eat_kw st "ONLY";
        Begin { read_only = true }
      end
      else Begin { read_only = false }
  | L.Kw "COMMIT" ->
      advance st;
      Commit
  | L.Kw "ROLLBACK" ->
      advance st;
      if accept st (L.Kw "TO") then Rollback_to (ident st) else Rollback
  | L.Kw "SAVEPOINT" ->
      advance st;
      Savepoint (ident st)
  | L.Kw "CHECKPOINT" ->
      advance st;
      Checkpoint
  | L.Kw "SHOW" -> (
      advance st;
      match peek st with
      | L.Kw "TABLES" ->
          advance st;
          Show `Tables
      | L.Kw "VIEWS" ->
          advance st;
          Show `Views
      | L.Kw "METRICS" ->
          advance st;
          Show `Metrics
      | t -> fail "expected TABLES, VIEWS or METRICS, found %a" L.pp_token t)
  | t -> fail "expected a statement, found %a" L.pp_token t

let parse src =
  let st = { toks = L.tokenize src } in
  let s = statement st in
  (match peek st with
  | L.Eof -> ()
  | t -> fail "trailing input: %a" L.pp_token t);
  s

let parse_expr src =
  let st = { toks = L.tokenize src } in
  let e = expr st in
  (match peek st with
  | L.Eof -> ()
  | t -> fail "trailing input: %a" L.pp_token t);
  e
