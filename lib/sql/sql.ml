module A = Sql_ast
module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Txn = Ivdb_txn.Txn
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Row = Ivdb_relation.Row
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain
module Sched = Ivdb_sched.Sched

exception Sql_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

type sys_provider = unit -> string list * Row.t list

type session = {
  sdb : Database.t;
  mutable txn : Txn.t option;
  mutable savepoints : (string * Txn.savepoint) list;
  mutable sys_ext : (string * sys_provider) list;
      (* environment-supplied sys.* tables (the server registers
         sys.server_sessions / sys.slow_queries here), shadowing the
         built-in resolution *)
}

let session sdb = { sdb; txn = None; savepoints = []; sys_ext = [] }
let db s = s.sdb
let in_transaction s = s.txn <> None

let add_sys_provider s name f =
  s.sys_ext <- (name, f) :: List.remove_assoc name s.sys_ext

let current_txn s = s.txn

(* 2PC participant hooks, driven by the server's Prepare/Decide frame
   handlers (and the coordinator's loopback shards). Preparing detaches
   the transaction handle from the session: it now belongs to the
   engine's in-doubt table, so a session death's rollback must not touch
   it — only the coordinator's decision (possibly after a crash and
   recovery) finishes it. *)
let prepare_2pc s ~gtxn ~deltas =
  match s.txn with
  | None -> fail "prepare: no open transaction"
  | Some tx when Txn.snapshot_of tx <> None ->
      fail "prepare: cannot prepare a READ ONLY transaction"
  | Some tx ->
      Database.prepare_2pc s.sdb tx ~gtxn ~deltas;
      s.txn <- None;
      s.savepoints <- []

let decide_2pc s ~gtxn ~committed = Database.decide_2pc s.sdb ~gtxn ~committed

type result =
  | Rows of { header : string list; rows : Row.t list }
  | Affected of int
  | Message of string

(* --- binding ----------------------------------------------------------------- *)

let value_of_lit = function
  | A.L_int i -> Value.Int i
  | A.L_float f -> Value.Float f
  | A.L_string s -> Value.Str s
  | A.L_bool b -> Value.Bool b
  | A.L_null -> Value.Null

let rec bind_expr schema (e : A.expr) : Expr.t =
  match e with
  | A.Lit l -> Expr.Const (value_of_lit l)
  | A.Column c -> (
      try Expr.col schema c with Not_found -> fail "unknown column %s" c)
  | A.Binop (op, a, b) -> (
      let a = bind_expr schema a and b = bind_expr schema b in
      match op with
      | A.Add -> Expr.Add (a, b)
      | A.Sub -> Expr.Sub (a, b)
      | A.Mul -> Expr.Mul (a, b)
      | A.Div -> Expr.Div (a, b)
      | A.Eq -> Expr.Cmp (Expr.Eq, a, b)
      | A.Ne -> Expr.Cmp (Expr.Ne, a, b)
      | A.Lt -> Expr.Cmp (Expr.Lt, a, b)
      | A.Le -> Expr.Cmp (Expr.Le, a, b)
      | A.Gt -> Expr.Cmp (Expr.Gt, a, b)
      | A.Ge -> Expr.Cmp (Expr.Ge, a, b)
      | A.And -> Expr.And (a, b)
      | A.Or -> Expr.Or (a, b))
  | A.Unop (A.Neg, a) -> Expr.Neg (bind_expr schema a)
  | A.Unop (A.Not, a) -> Expr.Not (bind_expr schema a)
  | A.Is_null a -> Expr.Is_null (bind_expr schema a)
  | A.Agg_ref _ -> fail "aggregates are only allowed in the select list and HAVING"

let bind_agg schema = function
  | A.Count_star -> View_def.Count_star
  | A.Count e -> View_def.Count (bind_expr schema e)
  | A.Sum e -> View_def.Sum (bind_expr schema e)
  | A.Min e -> View_def.Min (bind_expr schema e)
  | A.Max e -> View_def.Max (bind_expr schema e)
  | A.Avg _ ->
      fail
        "AVG cannot be stored in an indexed view: store SUM and COUNT instead          (AVG works in ad-hoc GROUP BY queries)"

let agg_label = function
  | A.Count_star -> "count(*)"
  | A.Count _ -> "count"
  | A.Sum _ -> "sum"
  | A.Min _ -> "min"
  | A.Max _ -> "max"
  | A.Avg _ -> "avg"

let find_table s name =
  try Some (Database.table s.sdb name) with Not_found -> None

let find_view s name = try Some (Database.view s.sdb name) with Not_found -> None

(* Resolve the source of a select: table, join, or view. *)
type source =
  | Src_table of Database.table * Schema.t
  | Src_join of Database.table * Database.table * string * string * Schema.t
  | Src_view of Database.view

let resolve_source s (q : A.select) =
  match q.A.join with
  | Some (t2, lcol, rcol) -> (
      match (find_table s q.A.from, find_table s t2) with
      | Some left, Some right ->
          Src_join (left, right, lcol, rcol, Database.join_schema s.sdb left right)
      | _ -> fail "unknown table in join: %s / %s" q.A.from t2)
  | None -> (
      match find_table s q.A.from with
      | Some t -> Src_table (t, Database.schema s.sdb t)
      | None -> (
          match find_view s q.A.from with
          | Some v -> Src_view v
          | None -> fail "unknown table or view %s" q.A.from))

(* --- access planning ----------------------------------------------------------- *)

let rec conjuncts = function
  | A.Binop (A.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rebuild_conjunction = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc c -> A.Binop (A.And, acc, c)) e rest)

type access_plan =
  | Plan_scan of A.expr option
  | Plan_index_probe of {
      p_col : string;
      p_index : string;
      p_value : Value.t;
      p_residual : A.expr option;
    }
  | Plan_index_range of {
      r_col : string;
      r_index : string;
      r_lo : (Value.t * bool) option;
      r_hi : (Value.t * bool) option;
      r_residual : A.expr option;
    }

(* A conjunct of the form [col = literal] over an indexed column turns the
   scan into an index probe; everything else stays as a residual filter. *)
let plan_table_access s t (where : A.expr option) =
  match where with
  | None -> Plan_scan None
  | Some w -> (
      let cs = conjuncts w in
      let indexed = Database.indexed_columns s.sdb t in
      let probe =
        List.find_map
          (fun e ->
            match e with
            | A.Binop (A.Eq, A.Column c, A.Lit l)
            | A.Binop (A.Eq, A.Lit l, A.Column c)
              when List.mem_assoc c indexed ->
                Some (e, c, List.assoc c indexed, value_of_lit l)
            | _ -> None)
          cs
      in
      match probe with
      | Some (chosen, col, ix, v) ->
          Plan_index_probe
            {
              p_col = col;
              p_index = ix;
              p_value = v;
              p_residual = rebuild_conjunction (List.filter (fun e -> e != chosen) cs);
            }
      | None -> (
          (* inequality conjuncts over one indexed column become a range *)
          let bound_of e =
            match e with
            | A.Binop (op, A.Column c, A.Lit l) when List.mem_assoc c indexed ->
                let v = value_of_lit l in
                (match op with
                | A.Gt -> Some (e, c, `Lo (v, false))
                | A.Ge -> Some (e, c, `Lo (v, true))
                | A.Lt -> Some (e, c, `Hi (v, false))
                | A.Le -> Some (e, c, `Hi (v, true))
                | _ -> None)
            | A.Binop (op, A.Lit l, A.Column c) when List.mem_assoc c indexed ->
                let v = value_of_lit l in
                (match op with
                | A.Gt -> Some (e, c, `Hi (v, false)) (* lit > col == col < lit *)
                | A.Ge -> Some (e, c, `Hi (v, true))
                | A.Lt -> Some (e, c, `Lo (v, false))
                | A.Le -> Some (e, c, `Lo (v, true))
                | _ -> None)
            | _ -> None
          in
          let bounds = List.filter_map bound_of cs in
          match bounds with
          | [] -> Plan_scan (Some w)
          | (_, col, _) :: _ ->
              let mine, _ = List.partition (fun (_, c, _) -> c = col) bounds in
              let used = List.map (fun (e, _, _) -> e) mine in
              let lo =
                List.fold_left
                  (fun acc (_, _, b) ->
                    match b with
                    | `Lo (v, i) -> (
                        match acc with
                        | None -> Some (v, i)
                        | Some (v', _) when Value.compare v v' > 0 -> Some (v, i)
                        | acc -> acc)
                    | `Hi _ -> acc)
                  None mine
              in
              let hi =
                List.fold_left
                  (fun acc (_, _, b) ->
                    match b with
                    | `Hi (v, i) -> (
                        match acc with
                        | None -> Some (v, i)
                        | Some (v', _) when Value.compare v v' < 0 -> Some (v, i)
                        | acc -> acc)
                    | `Lo _ -> acc)
                  None mine
              in
              Plan_index_range
                {
                  r_col = col;
                  r_index = List.assoc col indexed;
                  r_lo = lo;
                  r_hi = hi;
                  r_residual =
                    rebuild_conjunction
                      (List.filter (fun e -> not (List.memq e used)) cs);
                }))

(* --- SELECT execution --------------------------------------------------------- *)

(* EXPLAIN ANALYZE accounting: operators append (label, counter) cells in
   execution order; [None] (the plain-SELECT case) makes both helpers free. *)
type op_stats = (string * int ref) list ref

let op_count (stats : op_stats option) label seq =
  match stats with
  | None -> seq
  | Some st ->
      let r = ref 0 in
      st := !st @ [ (label, r) ];
      Seq.map
        (fun x ->
          incr r;
          x)
        seq

let op_note (stats : op_stats option) label n =
  match stats with None -> () | Some st -> st := !st @ [ (label, ref n) ]

let apply_order_limit ?(already_ordered_by = None) (q : A.select) header rows =
  let rows =
    match q.A.order with
    | Some { A.ob_col; ob_desc = false } when already_ordered_by = Some ob_col -> rows
    | None -> rows
    | Some { A.ob_col; ob_desc } -> (
        match List.find_index (fun h -> h = ob_col) header with
        | None -> fail "ORDER BY column %s is not in the select list" ob_col
        | Some idx ->
            List.stable_sort
              (fun (a : Row.t) (b : Row.t) ->
                let c = Value.compare a.(idx) b.(idx) in
                if ob_desc then -c else c)
              rows)
  in
  match q.A.limit with
  | None -> rows
  | Some n -> List.filteri (fun i _ -> i < n) rows

(* Bind a WHERE expression against a materialized row set whose columns
   are identified only by header name (view output, sys.* tables). *)
let bind_by_header ~what header (w : A.expr) : Expr.t =
  let positions = List.mapi (fun i n -> (n, i)) header in
  let rec rewrite (e : A.expr) : Expr.t =
    match e with
    | A.Lit l -> Expr.Const (value_of_lit l)
    | A.Column c -> (
        match List.assoc_opt c positions with
        | Some i -> Expr.Col i
        | None -> fail "unknown %s column %s" what c)
    | A.Agg_ref _ -> fail "aggregates are not allowed in a %s WHERE" what
    | A.Binop (op, a, b) -> (
        let a = rewrite a and b = rewrite b in
        match op with
        | A.Add -> Expr.Add (a, b)
        | A.Sub -> Expr.Sub (a, b)
        | A.Mul -> Expr.Mul (a, b)
        | A.Div -> Expr.Div (a, b)
        | A.Eq -> Expr.Cmp (Expr.Eq, a, b)
        | A.Ne -> Expr.Cmp (Expr.Ne, a, b)
        | A.Lt -> Expr.Cmp (Expr.Lt, a, b)
        | A.Le -> Expr.Cmp (Expr.Le, a, b)
        | A.Gt -> Expr.Cmp (Expr.Gt, a, b)
        | A.Ge -> Expr.Cmp (Expr.Ge, a, b)
        | A.And -> Expr.And (a, b)
        | A.Or -> Expr.Or (a, b))
    | A.Unop (A.Neg, a) -> Expr.Neg (rewrite a)
    | A.Unop (A.Not, a) -> Expr.Not (rewrite a)
    | A.Is_null a -> Expr.Is_null (rewrite a)
  in
  rewrite w

(* plain row select over a table (or join), no grouping *)
let select_rows ?stats s txn (q : A.select) src =
  let schema, seq =
    match src with
    | Src_table (t, schema) -> (
        match plan_table_access s t q.A.where with
        | Plan_index_probe { p_col; p_value; p_residual; _ } ->
            Ivdb_util.Metrics.incr (Database.metrics s.sdb) "sql.index_probe";
            let rows =
              List.to_seq (Table.find s.sdb txn t ~col:p_col p_value) |> Seq.map snd
            in
            let rows = op_count stats "index probe rows" rows in
            let rows =
              match p_residual with
              | None -> rows
              | Some w ->
                  op_count stats "rows after residual filter"
                    (Seq.filter (Expr.eval_bool (bind_expr schema w)) rows)
            in
            (* residual + probe already applied: hand back a no-op where *)
            (schema, rows)
        | Plan_index_range { r_col; r_lo; r_hi; r_residual; _ } ->
            Ivdb_util.Metrics.incr (Database.metrics s.sdb) "sql.index_range";
            let col_pos = Schema.index_of schema r_col in
            let rows =
              Database.Internal.index_range_rids s.sdb txn
                ~table:(Database.Internal.table_id t) ~col:col_pos ~lo:r_lo ~hi:r_hi
              |> Seq.map snd
            in
            let rows = op_count stats "index range rows" rows in
            let rows =
              match r_residual with
              | None -> rows
              | Some w ->
                  op_count stats "rows after residual filter"
                    (Seq.filter (Expr.eval_bool (bind_expr schema w)) rows)
            in
            (schema, rows)
        | Plan_scan _ ->
            let locking = if txn = None then Query.Dirty else Query.Serializable in
            (schema, op_count stats "seq scan rows" (Query.table_scan s.sdb txn t locking)))
    | Src_join (l, r, lcol, rcol, schema) ->
        let lc = Schema.index_of (Database.schema s.sdb l) lcol in
        let rc =
          Schema.index_of (Database.schema s.sdb r) rcol
        in
        let def =
          {
            View_def.name = "join";
            group_cols = [||];
            aggs = [||];
            source =
              View_def.Join
                {
                  left = Database.Internal.table_id l;
                  right = Database.Internal.table_id r;
                  left_col = lc;
                  right_col = rc;
                  where = None;
                };
          }
        in
        (schema, op_count stats "join rows" (Database.Internal.source_rows s.sdb txn def))
    | Src_view _ -> assert false
  in
  let probe_consumed_where =
    match src with
    | Src_table (t, _) -> (
        match plan_table_access s t q.A.where with
        | Plan_index_probe _ | Plan_index_range _ -> true
        | Plan_scan _ -> false)
    | Src_join _ | Src_view _ -> false
  in
  let seq =
    match q.A.where with
    | Some w when not probe_consumed_where ->
        let pred = bind_expr schema w in
        op_count stats "rows after filter" (Seq.filter (Expr.eval_bool pred) seq)
    | Some _ | None -> seq
  in
  let positions, header =
    let cols = Schema.cols schema in
    let all = Array.to_list (Array.mapi (fun i c -> (i, c.Schema.name)) cols) in
    let of_item = function
      | A.Star -> all
      | A.Col_item c -> (
          try [ (Schema.index_of schema c, c) ]
          with Not_found -> fail "unknown column %s" c)
      | A.Agg_item _ -> fail "aggregates require GROUP BY"
    in
    let pairs = List.concat_map of_item q.A.items in
    (Array.of_list (List.map fst pairs), List.map snd pairs)
  in
  let rows = List.of_seq (Seq.map (fun r -> Row.project r positions) seq) in
  let rows = apply_order_limit q header rows in
  op_note stats "rows returned" (List.length rows);
  Rows { header; rows }

(* View matching: a grouped query whose source, WHERE and GROUP BY equal
   an existing immediate-maintenance indexed view — and whose aggregates
   are all derivable from the view's stored cells — is answered from the
   view instead of scanning the base tables. Returns, per requested stored
   aggregate, a function from the view's stored row to the cell. *)
let find_matching_view s (def : View_def.t) =
  List.find_map
    (fun (vname, _) ->
      let v = Database.view s.sdb vname in
      if Database.view_strategy s.sdb v = Maintain.Deferred then None
      else
        let vd = Database.view_def s.sdb v in
        if
          vd.View_def.source = def.View_def.source
          && vd.View_def.group_cols = def.View_def.group_cols
        then begin
          (* map each needed agg onto a stored cell of the view *)
          let stored = Array.to_list vd.View_def.aggs in
          let cell_of (a : View_def.agg) =
            match a with
            | View_def.Count_star -> Some 0 (* the implicit count *)
            | _ ->
                List.find_index (fun sa -> sa = a) stored
                |> Option.map (fun i -> i + 1)
          in
          let mapping = Array.map cell_of def.View_def.aggs in
          if Array.for_all Option.is_some mapping then
            Some (vname, v, Array.map Option.get mapping)
          else None
        end
        else None)
    (Database.list_views s.sdb)

(* grouped select over base data: build a view definition on the fly and
   aggregate on demand. AVG is computed at read time from SUM and COUNT
   (exactly the restriction real indexed views have); HAVING filters the
   grouped result and may mention aggregates not in the select list. *)
let plan_grouped s (q : A.select) src =
  let schema, source =
    match src with
    | Src_table (t, schema) ->
        (schema, View_def.Single { table = Database.Internal.table_id t; where = None })
    | Src_join (l, r, lcol, rcol, schema) ->
        ( schema,
          View_def.Join
            {
              left = Database.Internal.table_id l;
              right = Database.Internal.table_id r;
              left_col = Schema.index_of (Database.schema s.sdb l) lcol;
              right_col = Schema.index_of (Database.schema s.sdb r) rcol;
              where = None;
            } )
    | Src_view _ -> assert false
  in
  let where = Option.map (bind_expr schema) q.A.where in
  let source =
    match (source, where) with
    | View_def.Single x, w -> View_def.Single { x with where = w }
    | View_def.Join x, w -> View_def.Join { x with where = w }
  in
  (* aggregates needed: those in the select list plus those HAVING uses *)
  let select_aggs =
    List.filter_map
      (function A.Agg_item a -> Some a | A.Star | A.Col_item _ -> None)
      q.A.items
  in
  let rec having_aggs (e : A.expr) =
    match e with
    | A.Agg_ref a -> [ a ]
    | A.Binop (_, a, b) -> having_aggs a @ having_aggs b
    | A.Unop (_, a) | A.Is_null a -> having_aggs a
    | A.Lit _ | A.Column _ -> []
  in
  let needed =
    let all = select_aggs @ Option.fold ~none:[] ~some:having_aggs q.A.having in
    List.fold_left (fun acc a -> if List.mem a acc then acc else acc @ [ a ]) [] all
  in
  (* expand each requested aggregate into stored slots and an evaluator over
     the stored row ([| count; slots... |]) *)
  let internal = ref [] in
  let alloc agg_def =
    internal := !internal @ [ agg_def ];
    List.length !internal (* 1-based cell position after the implicit count *)
  in
  let evals =
    List.map
      (fun (a : A.agg_expr) ->
        let eval =
          match a with
          | A.Count_star -> fun (stored : Row.t) -> stored.(0)
          | A.Count e ->
              let i = alloc (View_def.Count (bind_expr schema e)) in
              fun stored -> stored.(i)
          | A.Sum e ->
              let i = alloc (View_def.Sum (bind_expr schema e)) in
              fun stored -> stored.(i)
          | A.Min e ->
              let i = alloc (View_def.Min (bind_expr schema e)) in
              fun stored -> stored.(i)
          | A.Max e ->
              let i = alloc (View_def.Max (bind_expr schema e)) in
              fun stored -> stored.(i)
          | A.Avg e ->
              let be = bind_expr schema e in
              let si = alloc (View_def.Sum be) in
              let ci = alloc (View_def.Count be) in
              fun stored -> Value.div stored.(si) stored.(ci)
        in
        (a, eval))
      needed
  in
  let eval_of a =
    match List.assoc_opt a evals with Some f -> f | None -> assert false
  in
  let def =
    {
      View_def.name = "adhoc";
      group_cols =
        Array.of_list
          (List.map
             (fun c ->
               try Schema.index_of schema c
               with Not_found -> fail "unknown GROUP BY column %s" c)
             q.A.group_by);
      aggs = Array.of_list !internal;
      source;
    }
  in
  (schema, def, select_aggs, eval_of)

let select_grouped ?stats s txn (q : A.select) src =
  let _schema, def, select_aggs, eval_of = plan_grouped s q src in
  let results =
    match find_matching_view s def with
    | Some (_, v, mapping) ->
        Ivdb_util.Metrics.incr (Database.metrics s.sdb) "sql.view_match";
        let locking = if txn = None then Query.Dirty else Query.Serializable in
        Query.view_scan s.sdb txn v locking
        |> op_count stats "stored groups read"
        |> Seq.map (fun (group, stored) ->
               ( group,
                 Array.append [| stored.(0) |]
                   (Array.map (fun i -> stored.(i)) mapping) ))
        |> List.of_seq
    | None ->
        let results = Query.on_demand_aggregate s.sdb txn def in
        op_note stats "groups aggregated" (List.length results);
        results
  in
  let group_index c =
    match List.find_index (fun g -> g = c) q.A.group_by with
    | Some i -> i
    | None -> fail "column %s is not in GROUP BY" c
  in
  (* HAVING over (group, stored) *)
  let results =
    match q.A.having with
    | None -> results
    | Some h ->
        let rec heval (e : A.expr) group stored : Value.t =
          match e with
          | A.Lit l -> value_of_lit l
          | A.Column c -> group.(group_index c)
          | A.Agg_ref a -> eval_of a stored
          | A.Is_null a -> Value.Bool (heval a group stored = Value.Null)
          | A.Unop (A.Neg, a) -> Value.neg (heval a group stored)
          | A.Unop (A.Not, a) -> (
              match heval a group stored with
              | Value.Bool b -> Value.Bool (not b)
              | v -> v)
          | A.Binop (op, a, b) -> (
              let va = heval a group stored and vb = heval b group stored in
              let cmp c = Value.Bool c in
              match op with
              | A.Add -> Value.add va vb
              | A.Sub -> Value.add va (Value.neg vb)
              | A.Mul -> (
                  match (va, vb) with
                  | Value.Null, _ | _, Value.Null -> Value.Null
                  | _ -> Value.Float (Value.to_float va *. Value.to_float vb))
              | A.Div -> Value.div va vb
              | A.Eq -> cmp (Value.compare va vb = 0)
              | A.Ne -> cmp (Value.compare va vb <> 0)
              | A.Lt -> cmp (Value.compare va vb < 0)
              | A.Le -> cmp (Value.compare va vb <= 0)
              | A.Gt -> cmp (Value.compare va vb > 0)
              | A.Ge -> cmp (Value.compare va vb >= 0)
              | A.And -> (
                  match (va, vb) with
                  | Value.Bool x, Value.Bool y -> Value.Bool (x && y)
                  | _ -> Value.Null)
              | A.Or -> (
                  match (va, vb) with
                  | Value.Bool x, Value.Bool y -> Value.Bool (x || y)
                  | _ -> Value.Null))
        in
        List.filter
          (fun (group, stored) -> heval h group stored = Value.Bool true)
          results
  in
  let items =
    match q.A.items with
    | [ A.Star ] ->
        List.map (fun c -> A.Col_item c) q.A.group_by
        @ List.map (fun a -> A.Agg_item a) select_aggs
    | items -> items
  in
  let header =
    List.map
      (function
        | A.Star -> fail "SELECT * mixed with other items is not supported"
        | A.Col_item c -> c
        | A.Agg_item a -> agg_label a)
      items
  in
  let rows =
    List.map
      (fun (group, stored) ->
        Array.of_list
          (List.map
             (function
               | A.Star -> assert false
               | A.Col_item c -> group.(group_index c)
               | A.Agg_item a -> eval_of a stored)
             items))
      results
  in
  let rows = apply_order_limit q header rows in
  op_note stats "rows returned" (List.length rows);
  Rows { header; rows }

let is_sys_name from =
  String.length from > 4 && String.sub from 0 4 = "sys."

let describe_plan s (q : A.select) =
  let b = Buffer.create 128 in
  let line fmt = Format.kasprintf (fun str -> Buffer.add_string b (str ^ "\n")) fmt in
  if is_sys_name q.A.from then begin
    let line_sys =
      Printf.sprintf "system table scan on %s (engine state snapshot, no locks)"
        q.A.from
    in
    Buffer.add_string b (line_sys ^ "\n");
    (match q.A.order with
    | Some o ->
        Buffer.add_string b
          (Printf.sprintf "sort by %s%s\n" o.A.ob_col
             (if o.A.ob_desc then " desc" else ""))
    | None -> ());
    (match q.A.limit with
    | Some n -> Buffer.add_string b (Printf.sprintf "limit %d\n" n)
    | None -> ())
  end
  else begin
  (match resolve_source s q with
  | Src_view _ -> line "view scan on %s (stored groups, no recomputation)" q.A.from
  | Src_join (_, _, lcol, rcol, _) ->
      let has_aggs =
        q.A.group_by <> []
        || List.exists (function A.Agg_item _ -> true | _ -> false) q.A.items
      in
      if has_aggs then
        match find_matching_view s (let _, d, _, _ = plan_grouped s q (resolve_source s q) in d) with
        | Some (vname, _, _) ->
            line "answered from indexed view %s (stored groups)" vname
        | None ->
            line "on-demand aggregation over %s JOIN %s ON %s = %s" q.A.from
              (match q.A.join with Some (t2, _, _) -> t2 | None -> "?")
              lcol rcol
      else
        line "hash join %s JOIN %s ON %s = %s" q.A.from
          (match q.A.join with Some (t2, _, _) -> t2 | None -> "?")
          lcol rcol
  | Src_table (t, _) ->
      let has_aggs =
        q.A.group_by <> []
        || List.exists (function A.Agg_item _ -> true | _ -> false) q.A.items
      in
      if has_aggs then (
        match find_matching_view s (let _, d, _, _ = plan_grouped s q (resolve_source s q) in d) with
        | Some (vname, _, _) ->
            line "answered from indexed view %s (stored groups)" vname
        | None -> line "on-demand aggregation over seq scan on %s" q.A.from)
      else (
        match plan_table_access s t q.A.where with
        | Plan_scan None -> line "seq scan on %s" q.A.from
        | Plan_scan (Some _) -> line "seq scan on %s with filter" q.A.from
        | Plan_index_probe { p_col; p_index; p_value; p_residual } ->
            line "index probe on %s.%s via %s (= %s)%s" q.A.from p_col p_index
              (Value.to_string p_value)
              (match p_residual with None -> "" | Some _ -> " with residual filter")
        | Plan_index_range { r_col; r_index; r_lo; r_hi; r_residual } ->
            let bound side = function
              | None -> "unbounded"
              | Some (v, incl) ->
                  Printf.sprintf "%s%s" (Value.to_string v)
                    (if incl then " inclusive" else
                     if side = `Lo then " exclusive" else " exclusive")
            in
            line "index range scan on %s.%s via %s [%s .. %s]%s" q.A.from r_col
              r_index (bound `Lo r_lo) (bound `Hi r_hi)
              (match r_residual with None -> "" | Some _ -> " with residual filter")));
  (match q.A.order with
  | Some o ->
      let preserved =
        (not o.A.ob_desc)
        && (match resolve_source s q with
           | Src_table (t, _) -> (
               match plan_table_access s t q.A.where with
               | Plan_index_range { r_col; _ } -> r_col = o.A.ob_col
               | Plan_index_probe _ | Plan_scan _ -> false)
           | Src_join _ | Src_view _ -> false)
      in
      if preserved then line "order by %s satisfied by index order" o.A.ob_col
      else line "sort by %s%s" o.A.ob_col (if o.A.ob_desc then " desc" else "")
  | None -> ());
  (match q.A.limit with Some n -> line "limit %d" n | None -> ())
  end;
  String.trim (Buffer.contents b)

(* select over an indexed view: the stored groups and aggregates *)
let select_view ?stats s txn (q : A.select) v =
  if q.A.group_by <> [] then fail "GROUP BY over a view is not supported";
  let def = Database.view_def s.sdb v in
  let src_schema =
    match def.View_def.source with
    | View_def.Single { table; _ } ->
        Database.schema s.sdb (Database.Internal.of_table_id table)
    | View_def.Join { left; right; _ } ->
        Database.join_schema s.sdb
          (Database.Internal.of_table_id left)
          (Database.Internal.of_table_id right)
  in
  let group_names =
    Array.to_list
      (Array.map
         (fun pos -> (Schema.col_at src_schema pos).Schema.name)
         def.View_def.group_cols)
  in
  (* the implicit COUNT( * ) column is shown unless the definition already
     lists it explicitly *)
  let explicit_count =
    Array.exists (function View_def.Count_star -> true | _ -> false) def.View_def.aggs
  in
  let agg_names =
    (if explicit_count then [] else [ "count(*)" ])
    @ Array.to_list
        (Array.map
           (fun (a : View_def.agg) ->
             match a with
             | View_def.Count_star -> "count(*)"
             | View_def.Count _ -> "count"
             | View_def.Sum _ -> "sum"
             | View_def.Min _ -> "min"
             | View_def.Max _ -> "max")
           def.View_def.aggs)
  in
  let project_aggs stored =
    if explicit_count then Array.sub stored 1 (Array.length stored - 1) else stored
  in
  (match q.A.items with
  | [ A.Star ] -> ()
  | _ -> fail "only SELECT * FROM <view> is supported (views are pre-projected)");
  let locking = if txn = None then Query.Dirty else Query.Serializable in
  let scan = op_count stats "stored groups read" (Query.view_scan s.sdb txn v locking) in
  let header = group_names @ agg_names in
  let rows =
    List.of_seq (Seq.map (fun (g, a) -> Array.append g (project_aggs a)) scan)
  in
  let rows =
    match q.A.where with
    | None -> rows
    | Some w ->
        let pred = bind_by_header ~what:"view" header w in
        List.filter (Expr.eval_bool pred) rows
  in
  let rows = apply_order_limit q header rows in
  op_note stats "rows returned" (List.length rows);
  Rows { header; rows }

(* --- sys.* virtual tables ----------------------------------------------------- *)

(* Resolve a sys.* name to its header and (already materialized) rows:
   session-registered providers first (the server injects live
   sys.server_sessions / sys.slow_queries per connection), then the
   built-ins over the session's database. *)
let hex bytes =
  let b = Buffer.create (2 * String.length bytes) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) bytes;
  Buffer.contents b

(* sys.outbound needs the session's open transaction, so it cannot live in
   Sys_tables: the open txn's diverted escrow deltas, in routing order. *)
let outbound_rows s =
  match s.txn with
  | None -> []
  | Some tx ->
      List.map
        (fun (dest, vid, key, bytes) ->
          [| Value.Int dest; Value.Int vid; Value.Str key; Value.Str (hex bytes) |])
        (Database.outbound_deltas s.sdb tx)

let resolve_sys s name =
  match List.assoc_opt name s.sys_ext with
  | Some f -> Some (f ())
  | None when name = "sys.outbound" ->
      Some (Sys_tables.outbound_header, outbound_rows s)
  | None ->
      Sys_tables.builtin s.sdb ~self_txn:(Option.map Txn.id s.txn) name

let sys_restrictions (q : A.select) =
  if q.A.join <> None then fail "joins over sys.* tables are not supported";
  if q.A.group_by <> [] then fail "GROUP BY over sys.* tables is not supported";
  if List.exists (function A.Agg_item _ -> true | _ -> false) q.A.items then
    fail "aggregates over sys.* tables are not supported"

(* Evaluate a SELECT over an already-materialized (header, rows) relation:
   WHERE, projection by column name, ORDER BY / LIMIT. This is the whole
   post-resolution half of select_sys, exported so the shard coordinator
   can answer its own sys.* catalogs (sys.gtxns, sys.coord_shards,
   sys.cluster_metrics) with the exact same query semantics. *)
let select_over (q : A.select) (header, rows) =
  sys_restrictions q;
  let rows =
    match q.A.where with
    | None -> rows
    | Some w ->
        let pred = bind_by_header ~what:"system table" header w in
        List.filter (Expr.eval_bool pred) rows
  in
  (* project by column name *)
  let header, rows =
    match q.A.items with
    | [ A.Star ] -> (header, rows)
    | items ->
        let positions = List.mapi (fun i n -> (n, i)) header in
        let cols =
          List.map
            (function
              | A.Star -> fail "SELECT * mixed with other items is not supported"
              | A.Agg_item _ -> assert false
              | A.Col_item c -> (
                  match List.assoc_opt c positions with
                  | Some i -> (c, i)
                  | None -> fail "unknown system table column %s" c))
            items
        in
        ( List.map fst cols,
          List.map
            (fun r -> Array.of_list (List.map (fun (_, i) -> r.(i)) cols))
            rows )
  in
  let rows = apply_order_limit q header rows in
  Rows { header; rows }

let select_sys ?stats s (q : A.select) =
  sys_restrictions q;
  match resolve_sys s q.A.from with
  | None ->
      fail "unknown system table %s (available: %s)" q.A.from
        (String.concat ", " Sys_tables.names)
  | Some (header, rows) ->
      op_note stats "sys rows materialized" (List.length rows);
      let r = select_over q (header, rows) in
      (match r with
      | Rows { rows; _ } -> op_note stats "rows returned" (List.length rows)
      | _ -> ());
      r

let run_select ?stats s txn q =
  if is_sys_name q.A.from then select_sys ?stats s q
  else
    let src = resolve_source s q in
    match src with
    | Src_view v -> select_view ?stats s txn q v
    | Src_table _ | Src_join _ ->
        let has_aggs =
          List.exists (function A.Agg_item _ -> true | _ -> false) q.A.items
        in
        if q.A.group_by <> [] || has_aggs then select_grouped ?stats s txn q src
        else select_rows ?stats s txn q src

(* A bare SELECT outside a transaction runs as an auto-snapshot: a
   lock-free read-only transaction resolving against version chains, so it
   sees a commit-consistent state at zero locking cost (it used to read
   dirty). Results are materialized lists, safe to return after the
   snapshot is released. sys.* tables read engine state directly. *)
let run_select_auto ?stats s q =
  if is_sys_name q.A.from then select_sys ?stats s q
  else
    match s.txn with
    | Some _ as txn -> run_select ?stats s txn q
    | None ->
        Database.transact s.sdb ~read_only:true (fun tx ->
            run_select ?stats s (Some tx) q)

(* EXPLAIN ANALYZE: the plan describe_plan would print, then actually run
   the query, reporting per-operator row counts plus the engine-level costs
   (index probes, lock waits, buffer traffic, simulated ticks) the execution
   incurred. Inside an open transaction it reads serializably — and takes
   the same locks the bare SELECT would. *)
let explain_analyze s (q : A.select) =
  let metrics = Database.metrics s.sdb in
  let plan = describe_plan s q in
  let before = Ivdb_util.Metrics.snapshot metrics in
  let t0 = Sched.now () in
  let stats : op_stats = ref [] in
  ignore (run_select_auto ~stats s q);
  let ticks = Sched.now () - t0 in
  let diff = Ivdb_util.Metrics.diff ~before ~after:(Ivdb_util.Metrics.snapshot metrics) in
  let get n = match List.assoc_opt n diff with Some v -> v | None -> 0 in
  let b = Buffer.create 256 in
  let line fmt = Format.kasprintf (fun str -> Buffer.add_string b (str ^ "\n")) fmt in
  Buffer.add_string b plan;
  Buffer.add_char b '\n';
  List.iter (fun (label, r) -> line "%s: %d" label !r) !stats;
  line "index probes: %d point, %d range" (get "sql.index_probe")
    (get "sql.index_range");
  line "lock waits: %d" (get "lock.wait");
  line "buffer: %d hits, %d misses" (get "buffer.hit") (get "buffer.miss");
  line "ticks: %d" ticks;
  Message (String.trim (Buffer.contents b))

(* --- DML --------------------------------------------------------------------- *)

let with_txn s f =
  match s.txn with
  | Some tx when Txn.snapshot_of tx <> None ->
      fail "cannot write in a READ ONLY transaction"
  | Some tx -> f (Some tx)
  | None -> Database.transact s.sdb (fun tx -> f (Some tx))

let run_insert s ~into ~rows =
  match find_table s into with
  | None -> fail "unknown table %s" into
  | Some t ->
      with_txn s (fun txn ->
          let tx = Option.get txn in
          List.iter
            (fun lits ->
              let row = Array.of_list (List.map value_of_lit lits) in
              try ignore (Table.insert s.sdb tx t row)
              with Invalid_argument m -> fail "%s" m)
            rows);
      Affected (List.length rows)

let run_delete s ~from_t ~where =
  match find_table s from_t with
  | None -> fail "unknown table %s" from_t
  | Some t ->
      let schema = Database.schema s.sdb t in
      let pred =
        match where with
        | Some w -> bind_expr schema w
        | None -> Expr.bool true
      in
      let n = with_txn s (fun txn -> Table.delete_where s.sdb (Option.get txn) t pred) in
      Affected n

let run_update s ~table ~sets ~where =
  match find_table s table with
  | None -> fail "unknown table %s" table
  | Some t ->
      let schema = Database.schema s.sdb t in
      let pred =
        match where with Some w -> bind_expr schema w | None -> Expr.bool true
      in
      let sets =
        List.map
          (fun (c, e) ->
            let pos =
              try Schema.index_of schema c with Not_found -> fail "unknown column %s" c
            in
            (pos, bind_expr schema e))
          sets
      in
      let n =
        with_txn s (fun txn ->
            let tx = Option.get txn in
            let victims =
              Database.Internal.heap_scan_rows s.sdb txn t
              |> Seq.filter (fun (_, row) -> Expr.eval_bool pred row)
              |> List.of_seq
            in
            List.iter
              (fun (rid, row) ->
                let row' = Array.copy row in
                List.iter (fun (pos, e) -> row'.(pos) <- Expr.eval e row) sets;
                ignore (Table.update s.sdb tx t rid row'))
              victims;
            List.length victims)
      in
      Affected n

(* --- DDL --------------------------------------------------------------------- *)

let run_create_view s ~v_name ~(query : A.select) ~strat =
  let strategy, threshold =
    match strat with
    | A.S_exclusive -> (Maintain.Exclusive, None)
    | A.S_escrow -> (Maintain.Escrow, None)
    | A.S_deferred t -> (Maintain.Deferred, t)
  in
  if query.A.group_by = [] then fail "CREATE VIEW requires GROUP BY";
  let aggs_ast =
    List.filter_map
      (function
        | A.Agg_item a -> Some a
        | A.Col_item _ -> None
        | A.Star -> fail "SELECT * is not allowed in CREATE VIEW")
      query.A.items
  in
  (* selected plain columns must be the group columns *)
  List.iter
    (function
      | A.Col_item c when not (List.mem c query.A.group_by) ->
          fail "view column %s must appear in GROUP BY" c
      | _ -> ())
    query.A.items;
  let source, schema =
    match query.A.join with
    | None -> (
        match find_table s query.A.from with
        | Some t -> (Database.From (t, None), Database.schema s.sdb t)
        | None -> fail "unknown table %s" query.A.from)
    | Some (t2, lcol, rcol) -> (
        match (find_table s query.A.from, find_table s t2) with
        | Some l, Some r ->
            ( Database.From_join
                { left = l; right = r; left_col = lcol; right_col = rcol; where = None },
              Database.join_schema s.sdb l r )
        | _ -> fail "unknown table in join")
  in
  let source =
    match (source, query.A.where) with
    | Database.From (t, None), Some w -> Database.From (t, Some (bind_expr schema w))
    | Database.From_join j, Some w ->
        Database.From_join { j with where = Some (bind_expr schema w) }
    | src, _ -> src
  in
  let v =
    try
      Database.create_view s.sdb ?refresh_threshold:threshold ~name:v_name
        ~group_by:query.A.group_by
        ~aggs:(List.map (bind_agg schema) aggs_ast)
        ~source ~strategy ()
    with Invalid_argument m -> fail "%s" m
  in
  ignore v;
  Message (Printf.sprintf "view %s created (%s)" v_name
             (Maintain.strategy_to_string strategy))

(* --- driver ------------------------------------------------------------------- *)

let exec s input =
  let stmt = Sql_parser.parse input in
  match stmt with
  | A.Create_table { t_name; cols } ->
      let cols =
        List.map
          (fun (c : A.col_def) ->
            { Schema.name = c.A.cd_name; ty = c.A.cd_ty; nullable = c.A.cd_nullable })
          cols
      in
      let t =
        try Database.create_table s.sdb ~name:t_name ~cols
        with Invalid_argument m -> fail "%s" m
      in
      ignore t;
      Message (Printf.sprintf "table %s created" t_name)
  | A.Create_index { i_name; on_table; col; unique } -> (
      match find_table s on_table with
      | None -> fail "unknown table %s" on_table
      | Some t ->
          (try Database.create_index s.sdb ~unique t ~col ~name:i_name with
          | Not_found -> fail "unknown column %s" col
          | Database.Constraint_violation m -> fail "%s" m);
          Message
            (Printf.sprintf "%sindex %s created"
               (if unique then "unique " else "")
               i_name))
  | A.Create_view { v_name; query; strat } -> run_create_view s ~v_name ~query ~strat
  | A.Insert { into; rows } -> run_insert s ~into ~rows
  | A.Delete { from_t; where } -> run_delete s ~from_t ~where
  | A.Update { table; sets; where } -> run_update s ~table ~sets ~where
  | A.Select q -> run_select_auto s q
  | A.Explain q -> Message (describe_plan s q)
  | A.Explain_analyze q -> explain_analyze s q
  | A.Begin { read_only } ->
      if s.txn <> None then fail "transaction already open";
      if read_only then begin
        s.txn <- Some (Txn.begin_snapshot (Database.mgr s.sdb));
        Message "read-only transaction started (snapshot)"
      end
      else begin
        (* a read-write BEGIN allocates a txn directly from the manager,
           bypassing Database.transact — re-assert the replica guard here
           so a follower never opens a transaction that could write *)
        if Database.is_follower s.sdb then raise Database.Read_only_replica;
        s.txn <- Some (Txn.begin_txn (Database.mgr s.sdb));
        Message "transaction started"
      end
  | A.Commit -> (
      match s.txn with
      | None -> fail "no open transaction"
      | Some tx ->
          Txn.commit (Database.mgr s.sdb) tx;
          s.txn <- None;
          s.savepoints <- [];
          Message "committed")
  | A.Rollback -> (
      match s.txn with
      | None -> fail "no open transaction"
      | Some tx ->
          Txn.abort (Database.mgr s.sdb) tx;
          s.txn <- None;
          s.savepoints <- [];
          Message "rolled back")
  | A.Savepoint name -> (
      match s.txn with
      | None -> fail "SAVEPOINT requires an open transaction"
      | Some tx when Txn.snapshot_of tx <> None ->
          fail "SAVEPOINT is meaningless in a READ ONLY transaction"
      | Some tx ->
          s.savepoints <- (name, Txn.savepoint tx) :: s.savepoints;
          Message (Printf.sprintf "savepoint %s" name))
  | A.Rollback_to name -> (
      match s.txn with
      | None -> fail "ROLLBACK TO requires an open transaction"
      | Some tx -> (
          match List.assoc_opt name s.savepoints with
          | None -> fail "unknown savepoint %s" name
          | Some sp ->
              Txn.rollback_to (Database.mgr s.sdb) tx sp;
              (* savepoints taken after the target are gone *)
              let rec keep = function
                | [] -> []
                | (n, p) :: rest -> if n = name then (n, p) :: rest else keep rest
              in
              s.savepoints <- keep s.savepoints;
              Message (Printf.sprintf "rolled back to %s" name)))
  | A.Checkpoint ->
      Database.checkpoint s.sdb;
      Message "checkpoint complete"
  | A.Show `Tables ->
      Rows
        {
          header = [ "table" ];
          rows = List.map (fun n -> [| Value.Str n |]) (Database.list_tables s.sdb);
        }
  | A.Show `Views ->
      Rows
        {
          header = [ "view"; "strategy" ];
          rows =
            List.map
              (fun (n, strat) -> [| Value.Str n; Value.Str strat |])
              (Database.list_views s.sdb);
        }
  | A.Show `Metrics ->
      Rows
        {
          header = [ "counter"; "value" ];
          rows =
            List.map
              (fun (k, v) -> [| Value.Str k; Value.Int v |])
              (Ivdb_util.Metrics.snapshot (Database.metrics s.sdb));
        }

let render = function
  | Affected n -> Printf.sprintf "%d row(s) affected" n
  | Message m -> m
  | Rows { header; rows } ->
      let cells =
        header :: List.map (fun r -> Array.to_list (Array.map Value.to_string r)) rows
      in
      let ncols = List.length header in
      let width c =
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 cells
      in
      let widths = List.init ncols width in
      let line row =
        String.concat " | "
          (List.mapi (fun i cell -> Printf.sprintf "%-*s" (List.nth widths i) cell) row)
      in
      let sep = String.concat "-+-" (List.map (fun w -> String.make w '-') widths) in
      String.concat "\n"
        ((line header :: sep :: List.map line (List.tl cells))
        @ [ Printf.sprintf "(%d rows)" (List.length rows) ])
