(** ARIES-style restart recovery.

    Three phases:
    + {b analysis} — scan from the last stable checkpoint: rebuild the
      transaction table (losers), the dirty-page table, the latest catalog
      snapshot plus subsequent DDL, and the id high-water marks;
    + {b redo} — repeat history from the redo point: every logged page diff
      whose LSN exceeds the page's LSN is re-applied, winners and losers
      alike (escrow increments included);
    + {b undo} — driven by the caller ({!Ivdb_txn.Txn.rollback_tail} per
      loser), because logical undo needs the access layer (heaps, B-trees,
      view maintenance) which is itself rebuilt from the recovered catalog
      between redo and undo.

    The caller orchestrates: [analyze] → [redo] → rebuild catalog → install
    undo executor → [undo each loser] → checkpoint.

    Redo itself is resumable: the one-shot {!redo} is a thin driver over
    {!Redo}, a persistent replay state a replication follower keeps for
    its whole life, feeding it each shipped batch as it arrives instead
    of re-running analysis+redo per batch. *)

type indoubt_txn = {
  id_txn : int;  (** local transaction id *)
  id_gtxn : string;  (** coordinator's global transaction id *)
  id_first_lsn : Ivdb_wal.Log_record.lsn;  (** Begin LSN (truncation bound) *)
  id_last_lsn : Ivdb_wal.Log_record.lsn;
  id_deltas : string;  (** remote escrow deltas carried by the Prepare *)
}

type analysis = {
  losers : (int * Ivdb_wal.Log_record.lsn) list;
      (** active, uncommitted, unprepared transactions: (txn id, last LSN) *)
  dirty_pages : (int * Ivdb_wal.Log_record.lsn) list;  (** (page, recLSN) *)
  redo_start : Ivdb_wal.Log_record.lsn;
  catalog : string option;  (** snapshot from the governing checkpoint *)
  ddl : string list;  (** DDL payloads after the snapshot, in log order *)
  max_page_id : int;
  max_txn_id : int;
  stable_records : int;
  indoubt : indoubt_txn list;
      (** stable Prepare, no stable local Commit: these hold their locks
          across restart until a coordinator decision is (re-)delivered.
          A stable [Decision] for the same gtxn may already settle one —
          see [decisions]. *)
  decisions : (string * bool) list;
      (** stable Decision records, in log order: (gtxn, committed) *)
}

val analyze : Ivdb_wal.Wal.t -> analysis

type redo_result = {
  applied : int;  (** page diffs applied *)
  torn_pages : int list;  (** pages found torn, reset to fresh and replayed *)
}

(** Resumable redo state: repeat history one record at a time, in LSN
    order, across any number of batches. Holds only a resume position
    and a counter — idempotence comes from the pageLSN gate, so a
    follower that restarts simply re-creates the state at the end of its
    own recovery redo pass and continues. *)
module Redo : sig
  type t

  val create : Ivdb_storage.Bufpool.t -> next:Ivdb_wal.Log_record.lsn -> t
  (** [next] is the first LSN {!apply} will accept — for a fresh
      follower 1 ([Wal.first_lsn] of an empty log), after a restart
      [last_lsn + 1] of the recovered log. *)

  val apply : t -> Ivdb_wal.Log_record.t -> unit
  (** Apply one record: page diffs of [Update]/[Clr] records whose LSN
      exceeds the page's LSN are applied and stamped; other bodies only
      advance the position. Allocates pages the local disk has never
      seen. Raises [Invalid_argument] if the record's LSN is not exactly
      {!next_lsn} — shipped batches must be dense and in order. *)

  val next_lsn : t -> Ivdb_wal.Log_record.lsn
  (** The LSN {!apply} expects next (= 1 + the last applied LSN). *)

  val applied : t -> int
  (** Page diffs applied through this state since [create]. *)
end

val redo : Ivdb_wal.Wal.t -> Ivdb_storage.Bufpool.t -> analysis -> redo_result
(** Repeat history. First sweeps the disk for torn pages (checksum
    mismatch from a write interrupted by the crash): each is reset to a
    fresh page, and replay then starts from the first retained LSN so the
    torn page's entire diff history is reapplied — sound because the
    database retains the full log while torn-write injection is armed.
    Also bumps the disk's allocation cursor past every page seen in the
    log. *)
