(** ARIES-style restart recovery.

    Three phases:
    + {b analysis} — scan from the last stable checkpoint: rebuild the
      transaction table (losers), the dirty-page table, the latest catalog
      snapshot plus subsequent DDL, and the id high-water marks;
    + {b redo} — repeat history from the redo point: every logged page diff
      whose LSN exceeds the page's LSN is re-applied, winners and losers
      alike (escrow increments included);
    + {b undo} — driven by the caller ({!Ivdb_txn.Txn.rollback_tail} per
      loser), because logical undo needs the access layer (heaps, B-trees,
      view maintenance) which is itself rebuilt from the recovered catalog
      between redo and undo.

    The caller orchestrates: [analyze] → [redo] → rebuild catalog → install
    undo executor → [undo each loser] → checkpoint. *)

type analysis = {
  losers : (int * Ivdb_wal.Log_record.lsn) list;
      (** active, uncommitted transactions: (txn id, last LSN) *)
  dirty_pages : (int * Ivdb_wal.Log_record.lsn) list;  (** (page, recLSN) *)
  redo_start : Ivdb_wal.Log_record.lsn;
  catalog : string option;  (** snapshot from the governing checkpoint *)
  ddl : string list;  (** DDL payloads after the snapshot, in log order *)
  max_page_id : int;
  max_txn_id : int;
  stable_records : int;
}

val analyze : Ivdb_wal.Wal.t -> analysis

type redo_result = {
  applied : int;  (** page diffs applied *)
  torn_pages : int list;  (** pages found torn, reset to fresh and replayed *)
}

val redo : Ivdb_wal.Wal.t -> Ivdb_storage.Bufpool.t -> analysis -> redo_result
(** Repeat history. First sweeps the disk for torn pages (checksum
    mismatch from a write interrupted by the crash): each is reset to a
    fresh page, and replay then starts from the first retained LSN so the
    torn page's entire diff history is reapplied — sound because the
    database retains the full log while torn-write injection is armed.
    Also bumps the disk's allocation cursor past every page seen in the
    log. *)
