module Wal = Ivdb_wal.Wal
module Log_record = Ivdb_wal.Log_record
module Bufpool = Ivdb_storage.Bufpool
module Page = Ivdb_storage.Page

type indoubt_txn = {
  id_txn : int;
  id_gtxn : string;
  id_first_lsn : Log_record.lsn;
  id_last_lsn : Log_record.lsn;
  id_deltas : string;
}

type analysis = {
  losers : (int * Log_record.lsn) list;
  dirty_pages : (int * Log_record.lsn) list;
  redo_start : Log_record.lsn;
  catalog : string option;
  ddl : string list;
  max_page_id : int;
  max_txn_id : int;
  stable_records : int;
  indoubt : indoubt_txn list;
  decisions : (string * bool) list;
}

let analyze wal =
  let ckpt_lsn = Wal.last_checkpoint_lsn wal in
  let att : (int, Log_record.lsn) Hashtbl.t = Hashtbl.create 16 in
  let dpt : (int, Log_record.lsn) Hashtbl.t = Hashtbl.create 64 in
  let catalog = ref None in
  let ddl = ref [] in
  let max_page = ref 0 in
  let max_txn = ref 0 in
  let nrec = ref 0 in
  (* Transactions with a stable Commit record are committed no matter what
     the ATT says: under group commit a transaction can sit between its
     Commit append and its End append (waiting for the batched force) while
     a checkpoint records it as active, and the checkpoint-seeded ATT entry
     would otherwise turn it into a loser. *)
  let committed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* 2PC bookkeeping, tracked over the full scan like [committed]: a
     stable Prepare means the transaction's fate belongs to the
     coordinator — it is in-doubt (locks held across restart) rather
     than a loser, unless a stable local Commit/End or a stable
     Decision already settles it. *)
  let prepared : (int, string * string * Log_record.lsn) Hashtbl.t =
    Hashtbl.create 8
  in
  let first_lsn : (int, Log_record.lsn) Hashtbl.t = Hashtbl.create 16 in
  let decisions = ref [] in
  (* seed from the governing checkpoint *)
  if ckpt_lsn <> Log_record.nil_lsn then begin
    match (Wal.get wal ckpt_lsn).Log_record.body with
    | Log_record.Checkpoint c ->
        List.iter (fun (txn, lsn) -> Hashtbl.replace att txn lsn) c.active;
        List.iter (fun (pid, lsn) -> Hashtbl.replace dpt pid lsn) c.dpt;
        catalog := Some c.catalog
    | _ -> invalid_arg "Recovery.analyze: checkpoint LSN does not hold a checkpoint"
  end;
  Wal.iter_stable wal (fun r ->
      incr nrec;
      let lsn = r.Log_record.lsn in
      let txn = r.Log_record.txn in
      if txn > !max_txn then max_txn := txn;
      (match r.Log_record.body with
      | Log_record.Commit -> Hashtbl.replace committed txn ()
      | Log_record.Begin _ ->
          if not (Hashtbl.mem first_lsn txn) then
            Hashtbl.replace first_lsn txn lsn
      | Log_record.Prepare p ->
          Hashtbl.replace prepared txn (p.gtxn, p.deltas, lsn)
      | Log_record.Decision d -> decisions := (d.gtxn, d.committed) :: !decisions
      | _ -> ());
      List.iter
        (fun pid -> if pid > !max_page then max_page := pid)
        (Log_record.pages_touched r);
      if lsn > ckpt_lsn then begin
        (match r.Log_record.body with
        | Log_record.Begin _ | Log_record.Update _ | Log_record.Clr _
        | Log_record.Abort | Log_record.Prepare _ | Log_record.Decision _ ->
            Hashtbl.replace att txn lsn
        | Log_record.Commit | Log_record.End -> Hashtbl.remove att txn
        | Log_record.Ddl payload -> ddl := payload :: !ddl
        | Log_record.Checkpoint _ -> ());
        List.iter
          (fun pid -> if not (Hashtbl.mem dpt pid) then Hashtbl.replace dpt pid lsn)
          (Log_record.pages_touched r)
      end);
  let dirty_pages =
    Hashtbl.fold (fun pid lsn acc -> (pid, lsn) :: acc) dpt [] |> List.sort compare
  in
  let losers =
    Hashtbl.fold
      (fun txn lsn acc ->
        if Hashtbl.mem committed txn || Hashtbl.mem prepared txn then acc
        else (txn, lsn) :: acc)
      att []
    |> List.sort compare
  in
  let indoubt =
    Hashtbl.fold
      (fun txn last acc ->
        if Hashtbl.mem committed txn then acc
        else
          match Hashtbl.find_opt prepared txn with
          | None -> acc
          | Some (gtxn, deltas, plsn) ->
              {
                id_txn = txn;
                id_gtxn = gtxn;
                id_first_lsn =
                  (match Hashtbl.find_opt first_lsn txn with
                  | Some l -> l
                  | None -> plsn);
                id_last_lsn = last;
                id_deltas = deltas;
              }
              :: acc)
      att []
    |> List.sort compare
  in
  let redo_start =
    List.fold_left (fun acc (_, lsn) -> min acc lsn) (ckpt_lsn + 1) dirty_pages
  in
  {
    losers;
    dirty_pages;
    redo_start = max 1 redo_start;
    catalog = !catalog;
    ddl = List.rev !ddl;
    max_page_id = !max_page;
    max_txn_id = !max_txn;
    stable_records = !nrec;
    indoubt;
    decisions = List.rev !decisions;
  }

type redo_result = { applied : int; torn_pages : int list }

(* Resumable redo: the page-diff replay loop factored out of the one-shot
   startup path so a replication follower can hold one [Redo.t] for its
   whole life and feed it each shipped batch as it arrives. The state is
   just a resume position and a counter — all real idempotence comes from
   the pageLSN gate, so re-creating the state after a follower restart
   (with [next] = end of its own redo pass) is always safe. *)
module Redo = struct
  type t = {
    pool : Bufpool.t;
    mutable next : Log_record.lsn; (* the LSN [apply] expects next *)
    mutable applied : int; (* page diffs applied since [create] *)
  }

  let create pool ~next = { pool; next; applied = 0 }
  let next_lsn t = t.next
  let applied t = t.applied

  let apply t r =
    let lsn = r.Log_record.lsn in
    if lsn <> t.next then
      invalid_arg
        (Printf.sprintf "Recovery.Redo.apply: LSN %d breaks the chain (expected %d)"
           lsn t.next);
    t.next <- lsn + 1;
    match r.Log_record.body with
    | Log_record.Update { redo = diffs; _ } | Log_record.Clr { redo = diffs; _ }
      ->
        (* a streamed record may touch pages this engine has never
           allocated (the primary formatted them after our bootstrap) *)
        let disk = Bufpool.disk t.pool in
        List.iter
          (fun pid ->
            if pid > Ivdb_storage.Disk.max_page_id disk then
              Ivdb_storage.Disk.bump_alloc disk pid)
          (Log_record.pages_touched r);
        (* One record may carry several diffs for the same page (e.g. a
           heap page formatted and then filled). The LSN test gates the
           page once per record; subsequent diffs of the same record
           must still be applied. *)
        let applied_here = Hashtbl.create 4 in
        List.iter
          (fun (pid, diff) ->
            let did_apply, _ =
              Bufpool.update t.pool pid (fun p ->
                  if
                    Hashtbl.mem applied_here pid
                    || Int64.to_int (Page.get_lsn p) < lsn
                  then begin
                    Ivdb_storage.Page_diff.apply p diff;
                    true
                  end
                  else false)
            in
            if did_apply then begin
              Hashtbl.replace applied_here pid ();
              Bufpool.stamp t.pool pid (Int64.of_int lsn);
              t.applied <- t.applied + 1
            end)
          diffs
    | Log_record.Begin _ | Log_record.Commit | Log_record.Abort
    | Log_record.End | Log_record.Checkpoint _ | Log_record.Ddl _
    | Log_record.Prepare _ | Log_record.Decision _ ->
        ()
end

(* Torn-page policy: a stored image that fails checksum verification is
   reset to a fresh zeroed page (LSN 0) *before* any buffer-pool fetch can
   trip over it, and redo then replays from the start of the retained log
   rather than the analysis redo point — with the full diff history
   retained (the database suspends log truncation while torn-write
   injection is armed), LSN-gated replay rebuilds the page byte-for-byte.
   Intact pages are unaffected: their pageLSN gates skip already-applied
   diffs as usual. *)
let repair_torn disk =
  let torn = ref [] in
  for pid = Ivdb_storage.Disk.max_page_id disk downto 1 do
    if Ivdb_storage.Disk.is_torn disk pid then begin
      Ivdb_storage.Disk.reset_page disk pid;
      torn := pid :: !torn
    end
  done;
  !torn

let redo wal pool analysis =
  let disk = Bufpool.disk pool in
  Ivdb_storage.Disk.bump_alloc disk analysis.max_page_id;
  let torn_pages = repair_torn disk in
  let redo_start =
    if torn_pages = [] then analysis.redo_start
    else min analysis.redo_start (Wal.first_lsn wal)
  in
  (* iter_stable starts at first_lsn, so the effective start is never
     below the retained log *)
  let redo_start = max redo_start (Wal.first_lsn wal) in
  let state = Redo.create pool ~next:redo_start in
  Wal.iter_from wal ~from:redo_start (Redo.apply state);
  { applied = Redo.applied state; torn_pages }
