(** Fixed-width integer (de)serialization helpers shared by the page,
    row-codec, and log layers. All multi-byte values are big-endian so that
    byte-wise comparison of encoded keys matches numeric order where the
    encoding is order-preserving. *)

val set_u16 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int

val set_u32 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int

val set_i64 : bytes -> int -> int64 -> unit
val get_i64 : bytes -> int -> int64

val fnv1a32 : ?h:int -> bytes -> int -> int -> int
(** [fnv1a32 b pos len] FNV-1a hash of the byte range, 32-bit. Pass the
    previous result as [?h] to chain discontiguous ranges into one digest.
    Deterministic (unkeyed) — used for page and log-record checksums. *)

val fnv1a32_string : ?h:int -> string -> int -> int -> int

val compare_sub : bytes -> int -> int -> bytes -> int -> int -> int
(** [compare_sub a apos alen b bpos blen] lexicographic comparison of the two
    byte ranges (shorter prefix sorts first). *)

val hex : string -> string
(** Hex dump, for error messages and tests. *)
