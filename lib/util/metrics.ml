(* Counters plus integer-valued histograms. Counters are the original
   name -> int map; histograms record a count per observed value (exact,
   not bucketed) and back e.g. the group-commit batch-size distribution.

   Hot paths resolve a typed handle once at subsystem-create time and
   bump it directly, so the steady-state cost is a ref increment instead
   of a hashtable lookup per event. Handles stay valid across [reset]:
   reset zeroes the registered cells in place rather than emptying the
   tables, so a handle can never end up counting into an orphaned cell. *)

type counter = int ref
type hist = (int, int ref) Hashtbl.t

type t = {
  counters : (string, counter) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 64; hists = Hashtbl.create 8 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let inc c = Stdlib.incr c
let inc_by c n = c := !c + n
let value c = !c

let add t name n = inc_by (counter t name) n
let incr t name = add t name 1

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let reset t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.iter (fun _ h -> Hashtbl.reset h) t.hists

let snapshot t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Sorted merge over the two snapshots. Counters registered after the
   [before] snapshot was taken (a --net run creates the first server
   counters mid-run) appear only on the [after] side and must still
   report their full value; symmetrically a counter absent from [after]
   (instance swapped out) counts down to zero. Inputs from [snapshot]
   are name-sorted; sort defensively in case a caller hand-builds one. *)
let diff ~before ~after =
  let sorted l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  let rec merge acc before after =
    match (before, after) with
    | [], [] -> List.rev acc
    | (n, v) :: rest, [] -> merge ((n, -v) :: acc) rest []
    | [], (n, v) :: rest -> merge ((n, v) :: acc) [] rest
    | (nb, vb) :: rb, (na, va) :: ra -> (
        match String.compare nb na with
        | 0 -> merge ((nb, va - vb) :: acc) rb ra
        | c when c < 0 -> merge ((nb, -vb) :: acc) rb after
        | _ -> merge ((na, va) :: acc) before ra)
  in
  merge [] (sorted before) (sorted after)

(* --- histograms ---------------------------------------------------------- *)

let hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 16 in
      Hashtbl.add t.hists name h;
      h

let record h v =
  match Hashtbl.find_opt h v with
  | Some r -> Stdlib.incr r
  | None -> Hashtbl.add h v (ref 1)

let observe t name v = record (hist t name) v

let sorted_cells h =
  Hashtbl.fold (fun v r acc -> (v, !r) :: acc) h []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let hist_snapshot t name =
  match Hashtbl.find_opt t.hists name with None -> [] | Some h -> sorted_cells h

let hists t =
  Hashtbl.fold (fun name h acc -> (name, sorted_cells h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_diff ~before ~after =
  let values =
    List.sort_uniq compare (List.map fst before @ List.map fst after)
  in
  let find l v = match List.assoc_opt v l with Some c -> c | None -> 0 in
  List.filter_map
    (fun v ->
      let d = find after v - find before v in
      if d = 0 then None else Some (v, d))
    values

let hist_count t name =
  List.fold_left (fun acc (_, c) -> acc + c) 0 (hist_snapshot t name)

let hist_total t name =
  List.fold_left (fun acc (v, c) -> acc + (v * c)) 0 (hist_snapshot t name)

let hist_mean t name =
  let n = hist_count t name in
  if n = 0 then 0. else float_of_int (hist_total t name) /. float_of_int n

let hist_max t name =
  List.fold_left (fun acc (v, _) -> max acc v) 0 (hist_snapshot t name)

let percentile_cells cells p =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 cells in
  if total = 0 then 0
  else
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int total)) in
      max 1 (min total r)
    in
    let rec go seen = function
      | [] -> 0
      | (v, c) :: rest -> if seen + c >= rank then v else go (seen + c) rest
    in
    go 0 (List.sort (fun (a, _) (b, _) -> compare a b) cells)

(* Prometheus text exposition (version 0.0.4). Exact-value histograms
   render as cumulative buckets: one le="v" bucket per distinct observed
   value plus the mandatory le="+Inf", then _sum and _count. Counter and
   histogram names are sanitized to [a-zA-Z0-9_] and namespaced, so
   "txn.commit" becomes e.g. ivdb_txn_commit. *)
let prom_name ~namespace name =
  let b = Buffer.create (String.length namespace + String.length name + 1) in
  Buffer.add_string b namespace;
  Buffer.add_char b '_';
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let to_prometheus ?(namespace = "ivdb") t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = prom_name ~namespace name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    (snapshot t);
  List.iter
    (fun (name, cells) ->
      let n = prom_name ~namespace name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      let sum = ref 0 in
      List.iter
        (fun (v, c) ->
          cum := !cum + c;
          sum := !sum + (v * c);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n v !cum))
        cells;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n !cum);
      Buffer.add_string b (Printf.sprintf "%s_sum %d\n" n !sum);
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n !cum))
    (hists t);
  Buffer.contents b

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s=%d@ " k v) (snapshot t);
  List.iter
    (fun (name, cells) ->
      Format.fprintf ppf "%s={" name;
      List.iter (fun (v, c) -> Format.fprintf ppf "%d:%d " v c) cells;
      Format.fprintf ppf "}@ ")
    (hists t)
