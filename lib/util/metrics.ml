(* Counters plus integer-valued histograms. Counters are the original
   name -> int map; histograms record a count per observed value (exact,
   not bucketed) and back e.g. the group-commit batch-size distribution. *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, (int, int ref) Hashtbl.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 64; hists = Hashtbl.create 8 }

let cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let add t name n = cell t name := !(cell t name) + n
let incr t name = add t name 1

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.hists

let snapshot t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~before ~after =
  let names =
    List.sort_uniq String.compare (List.map fst before @ List.map fst after)
  in
  let find l n = match List.assoc_opt n l with Some v -> v | None -> 0 in
  List.map (fun n -> (n, find after n - find before n)) names

(* --- histograms ---------------------------------------------------------- *)

let observe t name v =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 16 in
        Hashtbl.add t.hists name h;
        h
  in
  match Hashtbl.find_opt h v with
  | Some r -> Stdlib.incr r
  | None -> Hashtbl.add h v (ref 1)

let hist_snapshot t name =
  match Hashtbl.find_opt t.hists name with
  | None -> []
  | Some h ->
      Hashtbl.fold (fun v r acc -> (v, !r) :: acc) h []
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let hist_count t name =
  List.fold_left (fun acc (_, c) -> acc + c) 0 (hist_snapshot t name)

let hist_total t name =
  List.fold_left (fun acc (v, c) -> acc + (v * c)) 0 (hist_snapshot t name)

let hist_mean t name =
  let n = hist_count t name in
  if n = 0 then 0. else float_of_int (hist_total t name) /. float_of_int n

let hist_max t name =
  List.fold_left (fun acc (v, _) -> max acc v) 0 (hist_snapshot t name)

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s=%d@ " k v) (snapshot t);
  Hashtbl.iter
    (fun name _ ->
      Format.fprintf ppf "%s={" name;
      List.iter (fun (v, c) -> Format.fprintf ppf "%d:%d " v c) (hist_snapshot t name);
      Format.fprintf ppf "}@ ")
    t.hists
