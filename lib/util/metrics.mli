(** Named event counters and integer-valued histograms.

    Every subsystem reports into a [Metrics.t] owned by the database
    instance (no global state, so concurrent engines in one process —
    e.g. the crash-recovery tests — do not interfere). Histograms record
    exact value counts (no bucketing); they back distribution-shaped
    telemetry such as the group-commit batch-size histogram.

    Hot paths should resolve a typed {!counter} or {!hist} handle once at
    subsystem-create time and bump it with {!inc} / {!record}: the
    steady-state cost is then a ref increment, not a per-event hashtable
    lookup. The stringly [incr]/[add]/[observe] API remains for cold call
    sites and ad-hoc reporting; both routes land in the same cells, and
    the name→value snapshot API sees them identically. *)

type t

type counter
(** Pre-resolved handle to one named counter. Survives {!reset} (the cell
    is zeroed in place, never replaced). *)

type hist
(** Pre-resolved handle to one named histogram. Survives {!reset}. *)

val create : unit -> t

(** {1 Typed handles (hot paths)} *)

val counter : t -> string -> counter
(** Resolve (registering if new) the counter for [name]. *)

val inc : counter -> unit
val inc_by : counter -> int -> unit
val value : counter -> int

val hist : t -> string -> hist
(** Resolve (registering if new) the histogram for [name]. *)

val record : hist -> int -> unit
(** Record one occurrence of an integer value. *)

(** {1 Stringly API (cold paths)} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 for counters never bumped. *)

val reset : t -> unit
(** Zero every counter and empty every histogram, in place: typed handles
    resolved before the reset keep working. *)

val snapshot : t -> (string * int) list
(** Sorted by counter name. *)

val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter [after - before]; counters absent on one side count as 0. *)

(** {1 Histograms} *)

val observe : t -> string -> int -> unit
(** Record one occurrence of an integer value under a histogram name. *)

val hist_snapshot : t -> string -> (int * int) list
(** (value, occurrences), sorted by value; [] for unknown names. *)

val hists : t -> (string * (int * int) list) list
(** Every histogram's snapshot, sorted by histogram name. *)

val hist_diff :
  before:(int * int) list -> after:(int * int) list -> (int * int) list
(** Per-value count delta between two [hist_snapshot]s; zero-delta values
    are dropped. *)

val hist_count : t -> string -> int
(** Total observations. *)

val hist_total : t -> string -> int
(** Sum of observed values. *)

val hist_mean : t -> string -> float
(** 0. when empty. *)

val hist_max : t -> string -> int
(** Largest observed value; 0 when empty. *)

val percentile_cells : (int * int) list -> float -> int
(** Nearest-rank percentile over (value, count) cells, e.g. from
    {!hist_snapshot} or {!hist_diff}. [percentile_cells cells 95.] is the
    smallest value whose cumulative count covers 95% of observations;
    0 when the cells are empty. Cells need not be sorted. *)

val to_prometheus : ?namespace:string -> t -> string
(** Prometheus text exposition (format 0.0.4). Counters render as
    [# TYPE ns_name counter] plus a value line; histograms render with
    cumulative [_bucket{le="v"}] lines (one per distinct observed value,
    plus [le="+Inf"]), [_sum], and [_count]. Metric names are sanitized
    to [A-Za-z0-9_] and prefixed with [namespace] (default ["ivdb"]).
    Deterministic: families and buckets are sorted. *)

val pp : Format.formatter -> t -> unit
(** Counters then histograms, each sorted by name — deterministic output. *)
