(** Named event counters and integer-valued histograms.

    Every subsystem reports into a [Metrics.t] owned by the database
    instance (no global state, so concurrent engines in one process —
    e.g. the crash-recovery tests — do not interfere). Histograms record
    exact value counts (no bucketing); they back distribution-shaped
    telemetry such as the group-commit batch-size histogram. *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 for counters never bumped. *)

val reset : t -> unit
val snapshot : t -> (string * int) list
(** Sorted by counter name. *)

val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter [after - before]; counters absent on one side count as 0. *)

(** {1 Histograms} *)

val observe : t -> string -> int -> unit
(** Record one occurrence of an integer value under a histogram name. *)

val hist_snapshot : t -> string -> (int * int) list
(** (value, occurrences), sorted by value; [] for unknown names. *)

val hist_count : t -> string -> int
(** Total observations. *)

val hist_total : t -> string -> int
(** Sum of observed values. *)

val hist_mean : t -> string -> float
(** 0. when empty. *)

val hist_max : t -> string -> int
(** Largest observed value; 0 when empty. *)

val pp : Format.formatter -> t -> unit
