let set_u16 b pos v =
  assert (v >= 0 && v < 0x10000);
  Bytes.set_uint8 b pos (v lsr 8);
  Bytes.set_uint8 b (pos + 1) (v land 0xFF)

let get_u16 b pos = (Bytes.get_uint8 b pos lsl 8) lor Bytes.get_uint8 b (pos + 1)

let set_u32 b pos v =
  assert (v >= 0 && v < 0x100000000);
  Bytes.set_uint8 b pos ((v lsr 24) land 0xFF);
  Bytes.set_uint8 b (pos + 1) ((v lsr 16) land 0xFF);
  Bytes.set_uint8 b (pos + 2) ((v lsr 8) land 0xFF);
  Bytes.set_uint8 b (pos + 3) (v land 0xFF)

let get_u32 b pos =
  (Bytes.get_uint8 b pos lsl 24)
  lor (Bytes.get_uint8 b (pos + 1) lsl 16)
  lor (Bytes.get_uint8 b (pos + 2) lsl 8)
  lor Bytes.get_uint8 b (pos + 3)

let set_i64 b pos v = Bytes.set_int64_be b pos v
let get_i64 b pos = Bytes.get_int64_be b pos

(* FNV-1a, 32-bit. Not cryptographic — it only has to make a torn or
   corrupted image fail verification with overwhelming probability, and it
   must be deterministic across runs (no keyed hashing). *)
let fnv_basis = 0x811c9dc5
let fnv_prime = 0x01000193

let fnv1a32 ?(h = fnv_basis) b pos len =
  let h = ref h in
  for i = pos to pos + len - 1 do
    h := (!h lxor Bytes.get_uint8 b i) * fnv_prime land 0xFFFFFFFF
  done;
  !h

let fnv1a32_string ?h s pos len = fnv1a32 ?h (Bytes.unsafe_of_string s) pos len

let compare_sub a apos alen b bpos blen =
  let n = min alen blen in
  let rec go i =
    if i = n then compare alen blen
    else
      let ca = Char.code (Bytes.get a (apos + i))
      and cb = Char.code (Bytes.get b (bpos + i)) in
      if ca <> cb then compare ca cb else go (i + 1)
  in
  go 0

let hex s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf
