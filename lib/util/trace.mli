(** Structured engine trace events.

    Every significant engine transition (transaction lifecycle, lock
    traffic, WAL activity, buffer-pool churn, view maintenance, commit
    batching) can emit a tick-stamped, fiber-attributed {!record} to a set
    of pluggable sinks. Emission sits behind a single [enabled] boolean so
    the disabled cost on hot paths is one load and branch; call sites
    guard event construction with {!enabled} to avoid even the allocation.

    The clock and fiber-id providers are injected at {!create} time
    (the database wires them to the deterministic scheduler), so under a
    seeded run the event stream — including the JSONL rendering — is
    byte-identical across runs with the same seed. *)

type event =
  | Txn_begin of { txn : int; system : bool }
  | Txn_commit of { txn : int; system : bool }
  | Txn_abort of { txn : int }
  | Lock_acquire of { txn : int; name : string; mode : string }
  | Lock_wait of { txn : int; name : string; mode : string }
  | Lock_grant of { txn : int; name : string; mode : string }
  | Deadlock_victim of { txn : int }
  | Wal_append of { lsn : int; txn : int; bytes : int }
  | Wal_force of { lsn : int }
  | Buf_miss of { page : int }
  | Buf_evict of { page : int }
  | View_delta of { view : int; key : string; strategy : string }
  | Group_create of { view : int; key : string; system : bool }
  | Group_gc of { view : int; key : string }
  | Batch_flush of { batch : int; hi_lsn : int }
  | Fault_inject of { kind : string; arg : int }
      (** injected fault: [kind] names it (["io_error.read"],
          ["crash.write"], ["torn.write"], …), [arg] is the page id, force
          ordinal, or torn byte count as appropriate *)
  | Io_retry of { page : int; attempt : int }
      (** buffer pool retrying an I/O after a transient injected error *)
  | Net_accept of { conn : int }  (** server admitted a connection *)
  | Net_shed of { conn : int }
      (** admission control refused a connection with a [Busy] frame *)
  | Net_request of { conn : int; seq : int; rid : int; bytes : int }
      (** one wire request frame arrived ([bytes] = payload size; [rid] is
          the client-assigned correlation id carried in the Exec frame) *)
  | Net_response of { conn : int; seq : int; rid : int; frame : string; ticks : int }
      (** response sent; [frame] names the frame type, [ticks] the
          request's servicing time on the logical clock; [rid] matches the
          request's correlation id *)
  | Slow_query of { conn : int; seq : int; rid : int; ticks : int; sql : string }
      (** a statement exceeded the server's slow-query tick threshold;
          joins to the client call via [rid] *)
  | Net_close of { conn : int }  (** connection finished (either side) *)
  | Coord_route of { rid : int; shard : int; kind : string }
      (** coordinator dispatched one statement to [shard]; [kind] is the
          routing decision (["pin"], ["broadcast"], ["split"], ["sys"]);
          [rid] is the coordinator-assigned correlation id stamped on the
          forwarded Exec frame, so the shard-side [Net_request] /
          [Slow_query] events join back to this dispatch *)
  | Coord_fast_path of { rid : int; shard : int }
      (** single-participant commit with no remote deltas: committed
          locally on [shard], skipping 2PC *)
  | Coord_prepare of { gtxn : string; rid : int; shard : int }
      (** Prepare sent to [shard] for global transaction [gtxn] *)
  | Coord_vote of { gtxn : string; shard : int; vote : string }
      (** [shard]'s prepare outcome: ["yes"], ["no"] (shard voted to
          abort), or ["dead"] (line down — presumed No) *)
  | Coord_decision of { gtxn : string; committed : bool }
      (** decision record forced to the coordinator WAL *)
  | Coord_decide of { gtxn : string; rid : int; shard : int; committed : bool }
      (** Decide delivered to [shard] *)
  | Twopc_prepare of { conn : int; gtxn : string; rid : int; outcome : string }
      (** participant side of Prepare: [outcome] is ["prepared"],
          ["duplicate"] (dedupe hit), ["decided"] (already decided), or
          ["no"]; [rid] is the coordinator correlation id off the frame *)
  | Twopc_decide of {
      conn : int;
      gtxn : string;
      rid : int;
      committed : bool;
      outcome : string;
    }
      (** participant side of Decide: [outcome] is ["applied"],
          ["duplicate"], or ["presumed_abort"] (unknown gtxn) *)

type record = {
  seq : int;  (** emission order, dense from 0 *)
  tick : int;  (** logical scheduler clock at emission *)
  fiber : int;  (** emitting fiber id (0 outside a scheduler run) *)
  event : event;
}

type sink = record -> unit

type t

val create : ?clock:(unit -> int) -> ?fiber:(unit -> int) -> unit -> t
(** Both providers default to [fun () -> 0]; traces start disabled with no
    sinks attached. *)

val enabled : t -> bool
(** Cheap guard for hot call sites:
    [if Trace.enabled tr then Trace.emit tr (...)]. *)

val set_enabled : t -> bool -> unit
val add_sink : t -> sink -> unit
val clear_sinks : t -> unit

val emit : t -> event -> unit
(** No-op when disabled; otherwise stamps and fans out to every sink in
    attachment order. *)

val event_name : event -> string
(** Stable dotted identifier, e.g. ["lock.wait"]. *)

val to_json : record -> string
(** One JSON object (no trailing newline), pure 7-bit ASCII: binary lock
    and group keys are [\uXXXX]-escaped, so the rendering is deterministic
    byte-for-byte. *)

val pp_record : Format.formatter -> record -> unit

(** Bounded in-memory sink: keeps the most recent [capacity] records,
    counting everything it ever saw. *)
module Ring : sig
  type ring

  val create : capacity:int -> ring
  (** Raises [Invalid_argument] if [capacity <= 0]. *)

  val sink : ring -> sink
  val seen : ring -> int
  (** Total records pushed, including overwritten ones. *)

  val length : ring -> int
  (** Records currently retained ([<= capacity]). *)

  val contents : ring -> record list
  (** Retained records, oldest first. *)
end

(** Streaming aggregation sink: per-lock wait latency, per-view
    maintenance counts, commit-path batching. Feed it as a sink during a
    run, then {!render} a deterministic text report. *)
module Profile : sig
  type p

  val create : unit -> p
  val sink : p -> sink
  val render : p -> string
end
