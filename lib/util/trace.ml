(* Structured engine trace: tick-stamped, fiber-attributed events behind a
   near-zero-cost enabled check.

   The module lives below the scheduler in the dependency order, so it
   cannot read the logical clock or the current fiber id itself; both are
   injected as callbacks when the trace is created (the database wires them
   to [Sched.now] / [Sched.self]). Events never carry wall-clock time or
   any other nondeterministic payload: under the seeded cooperative
   scheduler the whole stream is a pure function of the seed, which makes a
   JSONL trace a replayable artifact — byte-identical across runs. *)

type event =
  | Txn_begin of { txn : int; system : bool }
  | Txn_commit of { txn : int; system : bool }
  | Txn_abort of { txn : int }
  | Lock_acquire of { txn : int; name : string; mode : string }
  | Lock_wait of { txn : int; name : string; mode : string }
  | Lock_grant of { txn : int; name : string; mode : string }
  | Deadlock_victim of { txn : int }
  | Wal_append of { lsn : int; txn : int; bytes : int }
  | Wal_force of { lsn : int }
  | Buf_miss of { page : int }
  | Buf_evict of { page : int }
  | View_delta of { view : int; key : string; strategy : string }
  | Group_create of { view : int; key : string; system : bool }
  | Group_gc of { view : int; key : string }
  | Batch_flush of { batch : int; hi_lsn : int }
  | Fault_inject of { kind : string; arg : int }
  | Io_retry of { page : int; attempt : int }
  | Net_accept of { conn : int }
  | Net_shed of { conn : int }
  | Net_request of { conn : int; seq : int; rid : int; bytes : int }
  | Net_response of { conn : int; seq : int; rid : int; frame : string; ticks : int }
  | Slow_query of { conn : int; seq : int; rid : int; ticks : int; sql : string }
  | Net_close of { conn : int }
  | Coord_route of { rid : int; shard : int; kind : string }
  | Coord_fast_path of { rid : int; shard : int }
  | Coord_prepare of { gtxn : string; rid : int; shard : int }
  | Coord_vote of { gtxn : string; shard : int; vote : string }
  | Coord_decision of { gtxn : string; committed : bool }
  | Coord_decide of { gtxn : string; rid : int; shard : int; committed : bool }
  | Twopc_prepare of { conn : int; gtxn : string; rid : int; outcome : string }
  | Twopc_decide of {
      conn : int;
      gtxn : string;
      rid : int;
      committed : bool;
      outcome : string;
    }

type record = { seq : int; tick : int; fiber : int; event : event }

type sink = record -> unit

type t = {
  mutable enabled : bool;
  clock : unit -> int;
  fiber : unit -> int;
  mutable sinks : sink list; (* in attachment order *)
  mutable next_seq : int;
}

let create ?(clock = fun () -> 0) ?(fiber = fun () -> 0) () =
  { enabled = false; clock; fiber; sinks = []; next_seq = 0 }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let add_sink t s = t.sinks <- t.sinks @ [ s ]
let clear_sinks t = t.sinks <- []

let emit t event =
  if t.enabled then begin
    let r = { seq = t.next_seq; tick = t.clock (); fiber = t.fiber (); event } in
    t.next_seq <- t.next_seq + 1;
    List.iter (fun s -> s r) t.sinks
  end

(* --- event rendering ----------------------------------------------------- *)

let event_name = function
  | Txn_begin _ -> "txn.begin"
  | Txn_commit _ -> "txn.commit"
  | Txn_abort _ -> "txn.abort"
  | Lock_acquire _ -> "lock.acquire"
  | Lock_wait _ -> "lock.wait"
  | Lock_grant _ -> "lock.grant"
  | Deadlock_victim _ -> "lock.deadlock_victim"
  | Wal_append _ -> "wal.append"
  | Wal_force _ -> "wal.force"
  | Buf_miss _ -> "buf.miss"
  | Buf_evict _ -> "buf.evict"
  | View_delta _ -> "view.delta"
  | Group_create _ -> "view.group_create"
  | Group_gc _ -> "view.group_gc"
  | Batch_flush _ -> "commit.batch_flush"
  | Fault_inject _ -> "fault.inject"
  | Io_retry _ -> "buf.io_retry"
  | Net_accept _ -> "net.accept"
  | Net_shed _ -> "net.shed"
  | Net_request _ -> "net.request"
  | Net_response _ -> "net.response"
  | Slow_query _ -> "net.slow_query"
  | Net_close _ -> "net.close"
  | Coord_route _ -> "coord.route"
  | Coord_fast_path _ -> "coord.fast_path"
  | Coord_prepare _ -> "coord.prepare"
  | Coord_vote _ -> "coord.vote"
  | Coord_decision _ -> "coord.decision"
  | Coord_decide _ -> "coord.decide"
  | Twopc_prepare _ -> "2pc.prepare"
  | Twopc_decide _ -> "2pc.decide"

(* Keys are binary (order-preserving codec output); escape everything
   outside printable ASCII so the JSONL stream is valid, deterministic
   7-bit text. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\x20' .. '\x7e' -> Buffer.add_char b c
      | c -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c)))
    s;
  Buffer.contents b

let event_fields = function
  | Txn_begin { txn; system } ->
      Printf.sprintf {|"txn": %d, "system": %b|} txn system
  | Txn_commit { txn; system } ->
      Printf.sprintf {|"txn": %d, "system": %b|} txn system
  | Txn_abort { txn } -> Printf.sprintf {|"txn": %d|} txn
  | Lock_acquire { txn; name; mode }
  | Lock_wait { txn; name; mode }
  | Lock_grant { txn; name; mode } ->
      Printf.sprintf {|"txn": %d, "lock": "%s", "mode": "%s"|} txn
        (json_escape name) mode
  | Deadlock_victim { txn } -> Printf.sprintf {|"txn": %d|} txn
  | Wal_append { lsn; txn; bytes } ->
      Printf.sprintf {|"lsn": %d, "txn": %d, "bytes": %d|} lsn txn bytes
  | Wal_force { lsn } -> Printf.sprintf {|"lsn": %d|} lsn
  | Buf_miss { page } | Buf_evict { page } -> Printf.sprintf {|"page": %d|} page
  | View_delta { view; key; strategy } ->
      Printf.sprintf {|"view": %d, "key": "%s", "strategy": "%s"|} view
        (json_escape key) strategy
  | Group_create { view; key; system } ->
      Printf.sprintf {|"view": %d, "key": "%s", "system": %b|} view
        (json_escape key) system
  | Group_gc { view; key } ->
      Printf.sprintf {|"view": %d, "key": "%s"|} view (json_escape key)
  | Batch_flush { batch; hi_lsn } ->
      Printf.sprintf {|"batch": %d, "hi_lsn": %d|} batch hi_lsn
  | Fault_inject { kind; arg } ->
      Printf.sprintf {|"kind": "%s", "arg": %d|} (json_escape kind) arg
  | Io_retry { page; attempt } ->
      Printf.sprintf {|"page": %d, "attempt": %d|} page attempt
  | Net_accept { conn } | Net_close { conn } | Net_shed { conn } ->
      Printf.sprintf {|"conn": %d|} conn
  | Net_request { conn; seq; rid; bytes } ->
      Printf.sprintf {|"conn": %d, "req": %d, "rid": %d, "bytes": %d|} conn seq
        rid bytes
  | Net_response { conn; seq; rid; frame; ticks } ->
      Printf.sprintf
        {|"conn": %d, "req": %d, "rid": %d, "frame": "%s", "ticks": %d|} conn
        seq rid (json_escape frame) ticks
  | Slow_query { conn; seq; rid; ticks; sql } ->
      Printf.sprintf
        {|"conn": %d, "req": %d, "rid": %d, "ticks": %d, "sql": "%s"|} conn seq
        rid ticks (json_escape sql)
  | Coord_route { rid; shard; kind } ->
      Printf.sprintf {|"rid": %d, "shard": %d, "kind": "%s"|} rid shard
        (json_escape kind)
  | Coord_fast_path { rid; shard } ->
      Printf.sprintf {|"rid": %d, "shard": %d|} rid shard
  | Coord_prepare { gtxn; rid; shard } ->
      Printf.sprintf {|"gtxn": "%s", "rid": %d, "shard": %d|} (json_escape gtxn)
        rid shard
  | Coord_vote { gtxn; shard; vote } ->
      Printf.sprintf {|"gtxn": "%s", "shard": %d, "vote": "%s"|}
        (json_escape gtxn) shard (json_escape vote)
  | Coord_decision { gtxn; committed } ->
      Printf.sprintf {|"gtxn": "%s", "committed": %b|} (json_escape gtxn)
        committed
  | Coord_decide { gtxn; rid; shard; committed } ->
      Printf.sprintf {|"gtxn": "%s", "rid": %d, "shard": %d, "committed": %b|}
        (json_escape gtxn) rid shard committed
  | Twopc_prepare { conn; gtxn; rid; outcome } ->
      Printf.sprintf {|"conn": %d, "gtxn": "%s", "rid": %d, "outcome": "%s"|}
        conn (json_escape gtxn) rid (json_escape outcome)
  | Twopc_decide { conn; gtxn; rid; committed; outcome } ->
      Printf.sprintf
        {|"conn": %d, "gtxn": "%s", "rid": %d, "committed": %b, "outcome": "%s"|}
        conn (json_escape gtxn) rid committed (json_escape outcome)

let to_json r =
  Printf.sprintf {|{"seq": %d, "tick": %d, "fiber": %d, "ev": "%s", %s}|} r.seq
    r.tick r.fiber (event_name r.event) (event_fields r.event)

let pp_record ppf r =
  Format.fprintf ppf "[%6d] t=%-6d f=%-3d %-20s %s" r.seq r.tick r.fiber
    (event_name r.event) (event_fields r.event)

(* --- ring-buffer sink ----------------------------------------------------- *)

module Ring = struct
  type ring = {
    cap : int;
    slots : record option array;
    mutable seen : int; (* total records ever pushed *)
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity must be > 0";
    { cap = capacity; slots = Array.make capacity None; seen = 0 }

  let sink r rec_ =
    r.slots.(r.seen mod r.cap) <- Some rec_;
    r.seen <- r.seen + 1

  let seen r = r.seen
  let length r = min r.seen r.cap

  (* oldest retained first *)
  let contents r =
    let n = length r in
    let first = r.seen - n in
    List.init n (fun i ->
        match r.slots.((first + i) mod r.cap) with
        | Some x -> x
        | None -> assert false)
end

(* --- lock-wait / maintenance profile -------------------------------------- *)

module Profile = struct
  type entry = { mutable waits : int; mutable wait_ticks : int }

  type p = {
    pending : (int * string, int) Hashtbl.t; (* (txn, lock) -> wait tick *)
    locks : (string, entry) Hashtbl.t;
    deltas : (int, int ref) Hashtbl.t; (* view -> delta count *)
    mutable creates : int;
    mutable gcs : int;
    mutable forces : int;
    mutable flushes : int;
    mutable flushed_txns : int;
    mutable deadlocks : int;
  }

  let create () =
    {
      pending = Hashtbl.create 64;
      locks = Hashtbl.create 64;
      deltas = Hashtbl.create 16;
      creates = 0;
      gcs = 0;
      forces = 0;
      flushes = 0;
      flushed_txns = 0;
      deadlocks = 0;
    }

  let lock_entry p name =
    match Hashtbl.find_opt p.locks name with
    | Some e -> e
    | None ->
        let e = { waits = 0; wait_ticks = 0 } in
        Hashtbl.add p.locks name e;
        e

  let sink p r =
    match r.event with
    | Lock_wait { txn; name; _ } -> Hashtbl.replace p.pending (txn, name) r.tick
    | Lock_grant { txn; name; _ } -> (
        match Hashtbl.find_opt p.pending (txn, name) with
        | None -> ()
        | Some t0 ->
            Hashtbl.remove p.pending (txn, name);
            let e = lock_entry p name in
            e.waits <- e.waits + 1;
            e.wait_ticks <- e.wait_ticks + (r.tick - t0))
    | Deadlock_victim _ -> p.deadlocks <- p.deadlocks + 1
    | View_delta { view; _ } -> (
        match Hashtbl.find_opt p.deltas view with
        | Some c -> incr c
        | None -> Hashtbl.add p.deltas view (ref 1))
    | Group_create _ -> p.creates <- p.creates + 1
    | Group_gc _ -> p.gcs <- p.gcs + 1
    | Wal_force _ -> p.forces <- p.forces + 1
    | Batch_flush { batch; _ } ->
        p.flushes <- p.flushes + 1;
        p.flushed_txns <- p.flushed_txns + batch
    | _ -> ()

  let render p =
    let b = Buffer.create 256 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
    let waits =
      Hashtbl.fold (fun name e acc -> (name, e) :: acc) p.locks []
      |> List.sort (fun (n1, e1) (n2, e2) ->
             match compare e2.wait_ticks e1.wait_ticks with
             | 0 -> String.compare n1 n2
             | c -> c)
    in
    line "lock-wait profile (top 10 by ticks waited):";
    if waits = [] then line "  (no lock waits)"
    else
      List.iteri
        (fun i (name, e) ->
          if i < 10 then
            line "  %-28s %5d wait(s)  %8d tick(s)  %7.1f avg" name e.waits
              e.wait_ticks
              (float_of_int e.wait_ticks /. float_of_int (max 1 e.waits)))
        waits;
    line "maintenance:";
    let deltas =
      Hashtbl.fold (fun v c acc -> (v, !c) :: acc) p.deltas []
      |> List.sort compare
    in
    List.iter (fun (v, c) -> line "  view %-4d %6d delta(s)" v c) deltas;
    line "  group creates %d, group gcs %d, deadlock victims %d" p.creates p.gcs
      p.deadlocks;
    line "commit path:";
    line "  wal forces %d, batch flushes %d (%.2f txns/flush)" p.forces p.flushes
      (float_of_int p.flushed_txns /. float_of_int (max 1 p.flushes));
    Buffer.contents b
end
