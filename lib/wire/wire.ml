(* Binary wire frames for the ivdb client/server boundary.

   Layout mirrors Log_record: a one-byte tag then big-endian fixed-width
   integers and u32-length-framed strings. Rows travel as Row.encode
   payloads, so the wire needs no schema knowledge. The framed stream
   wraps each payload in [u32 length | u32 fnv1a32 checksum | payload];
   decode_framed accepts a frame only when the whole envelope is present
   and the checksum matches, which is what keeps a cut or flipped byte
   from ever surfacing as a phantom frame. *)

module B = Ivdb_util.Bytes_util
module Row = Ivdb_relation.Row
module Log_record = Ivdb_wal.Log_record

let version = 6

(* A length prefix beyond this is corruption, not a real frame: it caps
   the allocation a hostile or damaged stream can request. *)
let max_frame_bytes = 16 * 1024 * 1024

type error_code =
  | E_sql
  | E_parse
  | E_constraint
  | E_deadlock
  | E_draining
  | E_protocol
  | E_read_only
  | E_repl

type frame =
  | Hello of { version : int; client : string; resume : int option }
  | Welcome of { version : int; server : string; session : int }
  | Exec of { seq : int; rid : int; sql : string }
  | Rows of { seq : int; header : string list; rows : Row.t list }
  | Affected of { seq : int; n : int }
  | Msg of { seq : int; text : string }
  | Err of { seq : int; code : error_code; text : string; txn_open : bool }
  | Busy of { retry_ticks : int }
  | Metrics_req of { seq : int }
  | ReplSubscribe of { from : Log_record.lsn; replica : string }
  | ReplRecords of {
      first : Log_record.lsn;
      upto : Log_record.lsn;
      committed : Log_record.lsn;
          (* greatest commit boundary <= upto: the follower may expose
             reads at this horizon even though it buffers up to [upto] *)
      flushed : Log_record.lsn;
      payload : string;
    }
  | ReplAck of { upto : Log_record.lsn }
  | Promote of { seq : int }
  | DropSlot of { seq : int; name : string }
  | Prepare of { seq : int; rid : int; gtxn : string; deltas : string }
  | Prepared of { seq : int; gtxn : string }
  | Decide of { seq : int; rid : int; gtxn : string; committed : bool }
  | Decided of { seq : int; gtxn : string; committed : bool }
  | Bye

let frame_name = function
  | Hello _ -> "hello"
  | Welcome _ -> "welcome"
  | Exec _ -> "exec"
  | Rows _ -> "rows"
  | Affected _ -> "affected"
  | Msg _ -> "msg"
  | Err _ -> "err"
  | Busy _ -> "busy"
  | Metrics_req _ -> "metrics_req"
  | ReplSubscribe _ -> "repl_subscribe"
  | ReplRecords _ -> "repl_records"
  | ReplAck _ -> "repl_ack"
  | Promote _ -> "promote"
  | DropSlot _ -> "drop_slot"
  | Prepare _ -> "prepare"
  | Prepared _ -> "prepared"
  | Decide _ -> "decide"
  | Decided _ -> "decided"
  | Bye -> "bye"

let error_code_name = function
  | E_sql -> "sql"
  | E_parse -> "parse"
  | E_constraint -> "constraint"
  | E_deadlock -> "deadlock"
  | E_draining -> "draining"
  | E_protocol -> "protocol"
  | E_read_only -> "read_only"
  | E_repl -> "repl"

let pp ppf f =
  match f with
  | Hello { version; client; resume } ->
      Format.fprintf ppf "Hello{v%d %S resume=%s}" version client
        (match resume with None -> "-" | Some s -> string_of_int s)
  | Welcome { version; server; session } ->
      Format.fprintf ppf "Welcome{v%d %S session=%d}" version server session
  | Exec { seq; rid; sql } -> Format.fprintf ppf "Exec{#%d r%d %S}" seq rid sql
  | Rows { seq; header; rows } ->
      Format.fprintf ppf "Rows{#%d cols=%d rows=%d}" seq (List.length header)
        (List.length rows)
  | Affected { seq; n } -> Format.fprintf ppf "Affected{#%d %d}" seq n
  | Msg { seq; text } -> Format.fprintf ppf "Msg{#%d %S}" seq text
  | Err { seq; code; text; txn_open } ->
      Format.fprintf ppf "Err{#%d %s %S txn_open=%b}" seq
        (error_code_name code) text txn_open
  | Busy { retry_ticks } -> Format.fprintf ppf "Busy{retry=%d}" retry_ticks
  | Metrics_req { seq } -> Format.fprintf ppf "Metrics_req{#%d}" seq
  | ReplSubscribe { from; replica } ->
      Format.fprintf ppf "ReplSubscribe{from=%d %S}" from replica
  | ReplRecords { first; upto; committed; flushed; payload } ->
      Format.fprintf ppf "ReplRecords{[%d,%d] committed=%d flushed=%d bytes=%d}"
        first upto committed flushed (String.length payload)
  | ReplAck { upto } -> Format.fprintf ppf "ReplAck{upto=%d}" upto
  | Promote { seq } -> Format.fprintf ppf "Promote{#%d}" seq
  | DropSlot { seq; name } -> Format.fprintf ppf "DropSlot{#%d %S}" seq name
  | Prepare { seq; rid; gtxn; deltas } ->
      Format.fprintf ppf "Prepare{#%d r%d %s delta_bytes=%d}" seq rid gtxn
        (String.length deltas)
  | Prepared { seq; gtxn } -> Format.fprintf ppf "Prepared{#%d %s}" seq gtxn
  | Decide { seq; rid; gtxn; committed } ->
      Format.fprintf ppf "Decide{#%d r%d %s %s}" seq rid gtxn
        (if committed then "commit" else "abort")
  | Decided { seq; gtxn; committed } ->
      Format.fprintf ppf "Decided{#%d %s %s}" seq gtxn
        (if committed then "commit" else "abort")
  | Bye -> Format.fprintf ppf "Bye"

(* --- payload writer -------------------------------------------------------- *)

let add_u32 buf v =
  let b = Bytes.create 4 in
  B.set_u32 b 0 v;
  Buffer.add_bytes buf b

let add_str buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_str_list buf l =
  add_u32 buf (List.length l);
  List.iter (add_str buf) l

let code_byte = function
  | E_sql -> '\001'
  | E_parse -> '\002'
  | E_constraint -> '\003'
  | E_deadlock -> '\004'
  | E_draining -> '\005'
  | E_protocol -> '\006'
  | E_read_only -> '\007'
  | E_repl -> '\008'

let encode f =
  let buf = Buffer.create 64 in
  (match f with
  | Hello { version; client; resume } ->
      Buffer.add_char buf 'H';
      add_u32 buf version;
      add_str buf client;
      (match resume with
      | None -> Buffer.add_char buf '\000'
      | Some s ->
          Buffer.add_char buf '\001';
          add_u32 buf s)
  | Welcome { version; server; session } ->
      Buffer.add_char buf 'W';
      add_u32 buf version;
      add_str buf server;
      add_u32 buf session
  | Exec { seq; rid; sql } ->
      Buffer.add_char buf 'Q';
      add_u32 buf seq;
      add_u32 buf rid;
      add_str buf sql
  | Rows { seq; header; rows } ->
      Buffer.add_char buf 'R';
      add_u32 buf seq;
      add_str_list buf header;
      add_u32 buf (List.length rows);
      List.iter (fun r -> add_str buf (Row.encode r)) rows
  | Affected { seq; n } ->
      Buffer.add_char buf 'A';
      add_u32 buf seq;
      add_u32 buf n
  | Msg { seq; text } ->
      Buffer.add_char buf 'M';
      add_u32 buf seq;
      add_str buf text
  | Err { seq; code; text; txn_open } ->
      Buffer.add_char buf 'E';
      add_u32 buf seq;
      Buffer.add_char buf (code_byte code);
      add_str buf text;
      Buffer.add_char buf (if txn_open then '\001' else '\000')
  | Busy { retry_ticks } ->
      Buffer.add_char buf 'B';
      add_u32 buf retry_ticks
  | Metrics_req { seq } ->
      Buffer.add_char buf 'X';
      add_u32 buf seq
  | ReplSubscribe { from; replica } ->
      Buffer.add_char buf 'S';
      add_u32 buf from;
      add_str buf replica
  | ReplRecords { first; upto; committed; flushed; payload } ->
      Buffer.add_char buf 'L';
      add_u32 buf first;
      add_u32 buf upto;
      add_u32 buf committed;
      add_u32 buf flushed;
      add_str buf payload
  | ReplAck { upto } ->
      Buffer.add_char buf 'K';
      add_u32 buf upto
  | Promote { seq } ->
      Buffer.add_char buf 'P';
      add_u32 buf seq
  | DropSlot { seq; name } ->
      Buffer.add_char buf 'D';
      add_u32 buf seq;
      add_str buf name
  | Prepare { seq; rid; gtxn; deltas } ->
      Buffer.add_char buf '1';
      add_u32 buf seq;
      add_u32 buf rid;
      add_str buf gtxn;
      add_str buf deltas
  | Prepared { seq; gtxn } ->
      Buffer.add_char buf '2';
      add_u32 buf seq;
      add_str buf gtxn
  | Decide { seq; rid; gtxn; committed } ->
      Buffer.add_char buf '3';
      add_u32 buf seq;
      add_u32 buf rid;
      add_str buf gtxn;
      Buffer.add_char buf (if committed then '\001' else '\000')
  | Decided { seq; gtxn; committed } ->
      Buffer.add_char buf '4';
      add_u32 buf seq;
      add_str buf gtxn;
      Buffer.add_char buf (if committed then '\001' else '\000')
  | Bye -> Buffer.add_char buf 'Z');
  Buffer.contents buf

(* --- payload reader -------------------------------------------------------- *)

type reader = { src : string; mutable pos : int }

let fail () = invalid_arg "Wire.decode: malformed frame"

let rd_u8 r =
  if r.pos >= String.length r.src then fail ();
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let rd_u32 r =
  if r.pos + 4 > String.length r.src then fail ();
  let v =
    (Char.code r.src.[r.pos] lsl 24)
    lor (Char.code r.src.[r.pos + 1] lsl 16)
    lor (Char.code r.src.[r.pos + 2] lsl 8)
    lor Char.code r.src.[r.pos + 3]
  in
  r.pos <- r.pos + 4;
  v

let rd_str r =
  let len = rd_u32 r in
  if r.pos + len > String.length r.src then fail ();
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let rd_str_list r =
  let n = rd_u32 r in
  List.init n (fun _ -> rd_str r)

let rd_code r =
  match rd_u8 r with
  | 1 -> E_sql
  | 2 -> E_parse
  | 3 -> E_constraint
  | 4 -> E_deadlock
  | 5 -> E_draining
  | 6 -> E_protocol
  | 7 -> E_read_only
  | 8 -> E_repl
  | _ -> fail ()

let rd_bool r = match rd_u8 r with 0 -> false | 1 -> true | _ -> fail ()

let decode s =
  let r = { src = s; pos = 0 } in
  let f =
    match Char.chr (rd_u8 r) with
    | 'H' ->
        let version = rd_u32 r in
        let client = rd_str r in
        let resume = if rd_bool r then Some (rd_u32 r) else None in
        Hello { version; client; resume }
    | 'W' ->
        let version = rd_u32 r in
        let server = rd_str r in
        Welcome { version; server; session = rd_u32 r }
    | 'Q' ->
        let seq = rd_u32 r in
        let rid = rd_u32 r in
        Exec { seq; rid; sql = rd_str r }
    | 'R' ->
        let seq = rd_u32 r in
        let header = rd_str_list r in
        let n = rd_u32 r in
        let rows =
          List.init n (fun _ ->
              let s = rd_str r in
              try Row.decode s with _ -> fail ())
        in
        Rows { seq; header; rows }
    | 'A' ->
        let seq = rd_u32 r in
        Affected { seq; n = rd_u32 r }
    | 'M' ->
        let seq = rd_u32 r in
        Msg { seq; text = rd_str r }
    | 'E' ->
        let seq = rd_u32 r in
        let code = rd_code r in
        let text = rd_str r in
        Err { seq; code; text; txn_open = rd_bool r }
    | 'B' -> Busy { retry_ticks = rd_u32 r }
    | 'X' -> Metrics_req { seq = rd_u32 r }
    | 'S' ->
        let from = rd_u32 r in
        ReplSubscribe { from; replica = rd_str r }
    | 'L' ->
        let first = rd_u32 r in
        let upto = rd_u32 r in
        let committed = rd_u32 r in
        let flushed = rd_u32 r in
        ReplRecords { first; upto; committed; flushed; payload = rd_str r }
    | 'K' -> ReplAck { upto = rd_u32 r }
    | 'P' -> Promote { seq = rd_u32 r }
    | 'D' ->
        let seq = rd_u32 r in
        DropSlot { seq; name = rd_str r }
    | '1' ->
        let seq = rd_u32 r in
        let rid = rd_u32 r in
        let gtxn = rd_str r in
        Prepare { seq; rid; gtxn; deltas = rd_str r }
    | '2' ->
        let seq = rd_u32 r in
        Prepared { seq; gtxn = rd_str r }
    | '3' ->
        let seq = rd_u32 r in
        let rid = rd_u32 r in
        let gtxn = rd_str r in
        Decide { seq; rid; gtxn; committed = rd_bool r }
    | '4' ->
        let seq = rd_u32 r in
        let gtxn = rd_str r in
        Decided { seq; gtxn; committed = rd_bool r }
    | 'Z' -> Bye
    | _ -> fail ()
  in
  if r.pos <> String.length s then fail ();
  f

(* --- framing --------------------------------------------------------------- *)

let checksum s = B.fnv1a32_string s 0 (String.length s)

let write_framed buf f =
  let payload = encode f in
  add_u32 buf (String.length payload);
  add_u32 buf (checksum payload);
  Buffer.add_string buf payload

let to_framed f =
  let buf = Buffer.create 64 in
  write_framed buf f;
  Buffer.contents buf

type decode_result = Frame of frame * int | Partial | Corrupt of string

let u32_at s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let decode_framed s ~pos =
  let avail = String.length s - pos in
  if avail < 8 then Partial
  else begin
    let len = u32_at s pos in
    if len > max_frame_bytes then Corrupt "frame length out of range"
    else if avail < 8 + len then Partial
    else begin
      let sum = u32_at s (pos + 4) in
      let payload = String.sub s (pos + 8) len in
      if checksum payload <> sum then Corrupt "frame checksum mismatch"
      else
        match decode payload with
        | f -> Frame (f, pos + 8 + len)
        | exception Invalid_argument m -> Corrupt m
    end
  end
