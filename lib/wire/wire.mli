(** The ivdb client/server wire protocol: a versioned, length-prefixed
    binary frame codec.

    Every frame on the wire is [u32 length | u32 checksum | payload]
    (big-endian, like the WAL's {!Ivdb_wal.Log_record} framing); the
    checksum is FNV-1a over the payload bytes, so a torn or corrupted
    frame is detected before it is interpreted. The incremental decoder
    {!decode_frame} never yields a frame from a partial or damaged
    buffer — a property the truncation-sweep tests enforce at byte
    granularity.

    The protocol is a strict request/response alternation after a
    handshake:
    {v
      client                         server
      Hello {version; client; resume} ->
                                     <- Welcome {version; server; session}
                                        (or Err, or Busy on load shed)
      Exec {seq; sql}                ->
                                     <- Rows | Affected | Msg | Err  (same seq)
      ...
      Bye                            ->   (connection closes)
    v}

    An open transaction is per-connection state on the server (the
    [BEGIN]/[COMMIT] of the SQL dialect); [Hello.resume] optionally names
    a previous session id so a reconnecting client can ask for its
    transactional continuation — a server that no longer holds that
    session simply hands out a fresh one. *)

val version : int
(** Current protocol version, negotiated in the handshake. *)

val max_frame_bytes : int
(** Upper bound on a payload length the decoder will accept; a larger
    length prefix is treated as corruption, not as an allocation
    request. *)

type error_code =
  | E_sql  (** {!Ivdb_sql.Sql.Sql_error}: semantic error, txn kept open *)
  | E_parse  (** lexer/parser rejection *)
  | E_constraint  (** uniqueness violation *)
  | E_deadlock  (** deadlock victim; an open transaction was rolled back *)
  | E_draining  (** server is draining: no new transactions *)
  | E_protocol  (** handshake/framing violation; connection closes *)
  | E_read_only  (** the engine is a replication follower; writes rejected *)
  | E_repl
      (** replication request the primary cannot serve (e.g. subscribe
          below its retained log) *)

type frame =
  | Hello of { version : int; client : string; resume : int option }
  | Welcome of { version : int; server : string; session : int }
  | Exec of { seq : int; rid : int; sql : string }
      (** [rid] is an opaque client-assigned correlation id (u32) echoed
          into server trace events and the slow-query log, so a server-side
          record can be joined back to the client call that caused it *)
  | Rows of {
      seq : int;
      header : string list;
      rows : Ivdb_relation.Row.t list;
    }
  | Affected of { seq : int; n : int }
  | Msg of { seq : int; text : string }
  | Err of { seq : int; code : error_code; text : string; txn_open : bool }
      (** [txn_open] tells the client whether its server-side transaction
          survived the error (true for SQL errors, false after a
          deadlock rollback) *)
  | Busy of { retry_ticks : int }
      (** load shed: admission control refused the connection or request;
          retry after a backoff *)
  | Metrics_req of { seq : int }
      (** ask the server for a Prometheus text rendering of its metrics
          registry; answered with a [Msg] carrying the exposition body *)
  | ReplSubscribe of { from : Ivdb_wal.Log_record.lsn; replica : string }
      (** switch this session into a replication stream: the follower
          named [replica] wants stable WAL records starting at [from]
          (its next unapplied LSN; 1 for an empty follower). The session
          leaves request/response mode — the primary answers with a
          [ReplRecords] per available batch, each acknowledged by a
          [ReplAck], until either side closes. Subscribing below the
          primary's retained log gets [Err E_repl]. *)
  | ReplRecords of {
      first : Ivdb_wal.Log_record.lsn;  (** LSN of the first record *)
      upto : Ivdb_wal.Log_record.lsn;  (** LSN of the last record *)
      committed : Ivdb_wal.Log_record.lsn;
          (** greatest commit boundary <= [upto]
              ({!Ivdb_wal.Wal.commit_horizon_upto}): the prefix through
              this LSN is transaction-consistent, so the follower applies
              records up to it and buffers the rest — reads at the commit
              horizon never observe a split transaction *)
      flushed : Ivdb_wal.Log_record.lsn;
          (** primary's stable horizon when the batch was cut — lets the
              follower compute its lag without another round trip *)
      payload : string;
          (** records [first..upto] as {!Ivdb_wal.Wal.serialize_range}
              framed bytes: each [u32 len | u32 fnv1a32 | record], the
              same length+checksum framing the WAL itself persists, so
              the follower validates with {!Ivdb_wal.Wal.decode_frames} *)
    }
  | ReplAck of { upto : Ivdb_wal.Log_record.lsn }
      (** follower → primary: everything up to [upto] is ingested and
          applied. With commit-horizon gating [upto] routinely trails the
          last shipped record (the tail of an in-flight transaction stays
          buffered), so the primary treats the ack as slot/retention
          progress only — it never rewinds its ship position, which is
          renegotiated at subscribe time. *)
  | Promote of { seq : int }
      (** admin request: promote a follower to primary — stop ingesting,
          roll back the replayed in-flight suffix, open writes. Answered
          with a [Msg] describing the promotion, or [Err E_repl] if the
          server is not a follower. *)
  | DropSlot of { seq : int; name : string }
      (** admin request: forget a detached replication slot so its acked
          horizon stops pinning the WAL retention floor. Answered with a
          [Msg], or [Err E_repl] if the slot is unknown or still
          connected. *)
  | Prepare of { seq : int; rid : int; gtxn : string; deltas : string }
      (** 2PC phase 1, coordinator → participant: force-prepare the
          session's open transaction under global id [gtxn]. [rid] is the
          coordinator's correlation id for the commit statement driving
          this round, echoed into the participant's [Twopc_prepare] trace
          event so shard-side activity joins the coordinator's stream.
          [deltas] is an opaque {!Ivdb.Database.Deltas} payload of escrow
          view deltas whose groups live on this shard but were produced
          elsewhere; they are applied inside the preparing transaction, so
          they commit or die atomically with the decision. Answered with
          [Prepared] (vote yes) or [Err] (vote no — the transaction was
          rolled back). Re-sending a [Prepare] for a gtxn the shard has
          already prepared or decided is answered idempotently from the
          participant's dedupe tables, never re-executed. *)
  | Prepared of { seq : int; gtxn : string }
  | Decide of { seq : int; rid : int; gtxn : string; committed : bool }
      (** 2PC phase 2: the coordinator's logged decision. Idempotent —
          a retransmit for an already-decided gtxn just re-acks; an
          unknown gtxn with [committed = false] is presumed-abort. [rid]
          correlates like [Prepare.rid] (0 on recovery re-delivery). *)
  | Decided of { seq : int; gtxn : string; committed : bool }
  | Bye

val frame_name : frame -> string
(** Stable dotted identifier (["hello"], ["rows"], …) for metrics and
    trace labels. *)

val error_code_name : error_code -> string

val pp : Format.formatter -> frame -> unit

(** {1 Payload codec} *)

val encode : frame -> string
(** Payload bytes only (no length/checksum framing). *)

val decode : string -> frame
(** Inverse of {!encode}. Raises [Invalid_argument] on malformed input,
    including trailing bytes. *)

(** {1 Framing} *)

val write_framed : Buffer.t -> frame -> unit
(** Append [u32 length | u32 checksum | payload]. *)

val to_framed : frame -> string

type decode_result =
  | Frame of frame * int
      (** a complete, checksum-valid frame and the offset just past it *)
  | Partial  (** not enough bytes yet: read more and retry *)
  | Corrupt of string  (** framing violation; the connection is unusable *)

val decode_framed : string -> pos:int -> decode_result
(** Try to decode one framed frame starting at [pos]. Never raises; never
    returns [Frame] unless length, checksum and payload all verify. *)
