module Sched = Ivdb_sched.Sched
module Wire = Ivdb_wire.Wire
module Transport = Ivdb_transport.Transport
module Frame_io = Ivdb_transport.Transport.Frame_io
module Sql = Ivdb_sql.Sql

exception Server_busy of { retry_ticks : int }

exception
  Server_error of {
    code : Wire.error_code;
    text : string;
    txn_open : bool;
  }

exception Disconnected of string

type t = {
  mutable dialer : Transport.dialer; (* swapped by repoint on failover *)
  client : string;
  attempts : int;
  mutable io : Frame_io.t option;
  mutable session : int;
  mutable server : string;
  mutable seq : int;
  mutable last_rid : int;
  mutable reconnects : int;
  mutable closed : bool;
}

(* Correlation id for one statement: session id in the high half, request
   seq in the low 16 bits — unique across a run's sessions, stable across
   the wire (u32), and greppable in both client-side logs and the
   server's trace / slow-query log. *)
let rid_of ~session ~seq = (session * 65536) + (seq land 0xffff)

(* Doubling backoff, capped: yields under the scheduler (each yield is a
   logical tick and lets the server run), a short sleep outside it. *)
let backoff n =
  if Sched.in_run () then
    for _ = 1 to n do
      Sched.yield ()
    done
  else Unix.sleepf (float_of_int n *. 0.0005)

let next_delay n = min (2 * n) 64

(* One dial + handshake. Raises on every failure mode; [connect] and the
   reconnect path wrap it with retries. *)
let dial_once t =
  let conn = t.dialer.Transport.dial () in
  let io = Frame_io.create conn in
  Frame_io.send io
    (Wire.Hello
       {
         version = Wire.version;
         client = t.client;
         resume = (if t.session = 0 then None else Some t.session);
       });
  match Frame_io.recv io with
  | Some (Wire.Welcome { session; server; _ }) ->
      t.session <- session;
      t.server <- server;
      t.io <- Some io
  | Some (Wire.Busy { retry_ticks }) ->
      conn.Transport.close ();
      raise (Server_busy { retry_ticks })
  | Some (Wire.Err { code; text; txn_open; _ }) ->
      conn.Transport.close ();
      raise (Server_error { code; text; txn_open })
  | Some _ | None ->
      conn.Transport.close ();
      raise (Disconnected "handshake failed")
  | exception Transport.Corrupt m ->
      conn.Transport.close ();
      raise (Disconnected m)

let establish t =
  let rec go attempt delay =
    try dial_once t
    with (Transport.Refused | Server_busy _ | Disconnected _) as e ->
      if attempt >= t.attempts then raise e
      else begin
        backoff delay;
        go (attempt + 1) (next_delay delay)
      end
  in
  go 1 1

let connect ?(client = "ivdb-client") ?(attempts = 8) dialer =
  let t =
    {
      dialer;
      client;
      attempts;
      io = None;
      session = 0;
      server = "";
      seq = 0;
      last_rid = 0;
      reconnects = 0;
      closed = false;
    }
  in
  establish t;
  t

let peer_addr t = t.dialer.Transport.addr
let session_id t = t.session
let server_name t = t.server
let reconnects t = t.reconnects
let last_rid t = t.last_rid

let drop t =
  (match t.io with
  | Some io -> (Frame_io.conn io).Transport.close ()
  | None -> ());
  t.io <- None

(* The connection died under us: re-dial (best effort) so the next exec
   finds a live session, then tell the caller what happened. *)
let broken t msg =
  drop t;
  (try
     establish t;
     t.reconnects <- t.reconnects + 1
   with _ -> ());
  raise (Disconnected msg)

let exec ?rid t sql =
  if t.closed then raise (Disconnected "client closed");
  match t.io with
  | None -> broken t "not connected"
  | Some io -> (
      t.seq <- t.seq + 1;
      let seq = t.seq in
      let rid =
        match rid with
        | Some r -> r
        | None -> rid_of ~session:t.session ~seq
      in
      t.last_rid <- rid;
      Frame_io.send io (Wire.Exec { seq; rid; sql });
      match Frame_io.recv io with
      | Some (Wire.Rows { header; rows; _ }) -> Sql.Rows { header; rows }
      | Some (Wire.Affected { n; _ }) -> Sql.Affected n
      | Some (Wire.Msg { text; _ }) -> Sql.Message text
      | Some (Wire.Err { code; text; txn_open; _ }) ->
          raise (Server_error { code; text; txn_open })
      | Some (Wire.Busy { retry_ticks }) -> raise (Server_busy { retry_ticks })
      | Some Wire.Bye -> broken t "server closed the session"
      | Some _ -> broken t "protocol violation from server"
      | None -> broken t "connection closed"
      | exception Transport.Corrupt m -> broken t m)

(* Admin round trips answered with a Msg frame (metrics, promote,
   drop_slot) share one request shape. *)
let msg_request t mk =
  if t.closed then raise (Disconnected "client closed");
  match t.io with
  | None -> broken t "not connected"
  | Some io -> (
      t.seq <- t.seq + 1;
      let seq = t.seq in
      Frame_io.send io (mk seq);
      match Frame_io.recv io with
      | Some (Wire.Msg { text; _ }) -> text
      | Some (Wire.Err { code; text; txn_open; _ }) ->
          raise (Server_error { code; text; txn_open })
      | Some Wire.Bye -> broken t "server closed the session"
      | Some _ -> broken t "protocol violation from server"
      | None -> broken t "connection closed"
      | exception Transport.Corrupt m -> broken t m)

(* 2PC round trips for the coordinator. Deliberately no transparent
   retry: after a Disconnected the coordinator itself re-sends, and the
   server answers retransmits idempotently from its dedupe tables — a
   blind client-side resend could otherwise re-prepare a transaction the
   coordinator has already decided. *)
let prepare_2pc ?(rid = 0) t ~gtxn ~deltas =
  if t.closed then raise (Disconnected "client closed");
  match t.io with
  | None -> broken t "not connected"
  | Some io -> (
      t.seq <- t.seq + 1;
      let seq = t.seq in
      Frame_io.send io (Wire.Prepare { seq; rid; gtxn; deltas });
      match Frame_io.recv io with
      | Some (Wire.Prepared _) -> `Prepared
      | Some (Wire.Decided { committed; _ }) -> `Already_decided committed
      | Some (Wire.Err { code; text; txn_open; _ }) ->
          raise (Server_error { code; text; txn_open })
      | Some (Wire.Busy { retry_ticks }) -> raise (Server_busy { retry_ticks })
      | Some Wire.Bye -> broken t "server closed the session"
      | Some _ -> broken t "protocol violation from server"
      | None -> broken t "connection closed"
      | exception Transport.Corrupt m -> broken t m)

let decide_2pc ?(rid = 0) t ~gtxn ~committed =
  if t.closed then raise (Disconnected "client closed");
  match t.io with
  | None -> broken t "not connected"
  | Some io -> (
      t.seq <- t.seq + 1;
      let seq = t.seq in
      Frame_io.send io (Wire.Decide { seq; rid; gtxn; committed });
      match Frame_io.recv io with
      | Some (Wire.Decided _) -> ()
      | Some (Wire.Err { code; text; txn_open; _ }) ->
          raise (Server_error { code; text; txn_open })
      | Some (Wire.Busy { retry_ticks }) -> raise (Server_busy { retry_ticks })
      | Some Wire.Bye -> broken t "server closed the session"
      | Some _ -> broken t "protocol violation from server"
      | None -> broken t "connection closed"
      | exception Transport.Corrupt m -> broken t m)

let metrics t = msg_request t (fun seq -> Wire.Metrics_req { seq })
let promote t = msg_request t (fun seq -> Wire.Promote { seq })
let drop_slot t name = msg_request t (fun seq -> Wire.DropSlot { seq; name })

(* Failover: aim this client at a different server (e.g. a freshly
   promoted primary). Any server-side transaction died with the old
   primary anyway, so the session is simply re-established. *)
let repoint t dialer =
  drop t;
  t.dialer <- dialer;
  t.session <- 0;
  establish t

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match t.io with
    | Some io -> ( try Frame_io.send io Wire.Bye with _ -> ())
    | None -> ());
    drop t
  end
