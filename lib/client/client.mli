(** Blocking ivdb client: connect / exec / close over any
    {!Ivdb_transport.Transport.dialer}.

    The client is transport-agnostic: [connect dialer] takes a named
    connection factory ({!Ivdb_transport.Transport.dialer}), so the same
    code drives the deterministic loopback (from inside a scheduler run)
    and real TCP (from a standalone process such as the REPL).
    "Blocking" follows the transport's discipline — fiber-suspending
    under the scheduler, thread-blocking outside.

    Connection failures ({!Ivdb_transport.Transport.Refused}, a [Busy] shed
    frame) are retried with doubling, capped backoff up to [attempts]
    times. A connection that dies mid-use is re-dialed automatically on
    the failing {!exec}, which then raises {!Disconnected} so the caller
    knows any open transaction was lost; the next [exec] uses the fresh
    connection. *)

exception Server_busy of { retry_ticks : int }
(** Admission control shed the connection and reconnection attempts ran
    out. *)

exception
  Server_error of {
    code : Ivdb_wire.Wire.error_code;
    text : string;
    txn_open : bool;
  }
(** The server answered [Err]. [txn_open] tells whether the session's
    open transaction survived (e.g. a SQL error keeps it, a deadlock
    rollback does not). *)

exception Disconnected of string
(** The connection died (EOF, corrupt stream, server [Bye]). If a
    reconnect succeeded, the next {!exec} works — on a fresh session. *)

type t

val connect :
  ?client:string -> ?attempts:int -> Ivdb_transport.Transport.dialer -> t
(** Dial and handshake. [client] is the identity sent in [Hello]
    (default ["ivdb-client"]); [attempts] bounds dial/handshake retries
    (default 8). Raises {!Server_busy}, {!Disconnected}, or
    {!Server_error} when the handshake itself is refused. *)

val peer_addr : t -> string
(** The dialer's [addr] — the peer this client targets. *)

val session_id : t -> int
(** Server-assigned session id from the latest [Welcome]. *)

val server_name : t -> string
val reconnects : t -> int
(** Successful re-dials performed since [connect]. *)

val exec : ?rid:int -> t -> string -> Ivdb_sql.Sql.result
(** Ship one statement, wait for its response frame. Raises
    {!Server_error} on [Err], {!Server_busy} on [Busy],
    {!Disconnected} on a dead connection (after attempting reconnect).
    Every statement carries a correlation id
    ([session * 65536 + (seq land 0xffff)] by default) echoed into the
    server's trace events and slow-query log; see {!last_rid}. [?rid]
    overrides it — the shard coordinator stamps its own per-statement id
    on fanned-out statements so every shard-side record of one
    distributed statement shares a single correlation id. *)

val last_rid : t -> int
(** Correlation id of the most recent {!exec} — join it against
    [sys.slow_queries.rid] or the [rid] field of [net.request] /
    [net.response] / [net.slow_query] trace events. *)

val prepare_2pc :
  ?rid:int ->
  t ->
  gtxn:string ->
  deltas:string ->
  [ `Prepared | `Already_decided of bool ]
(** 2PC phase 1: ask the server to prepare its session's open transaction
    under global id [gtxn], carrying [deltas]
    ({!Ivdb.Database.Deltas}-encoded escrow deltas owned by that shard).
    [`Already_decided c] means the shard had already decided this gtxn —
    the coordinator's retransmit after a reconnect was answered from the
    dedupe tables, not re-executed. Raises {!Server_error} on a no vote
    (the participant rolled back) and {!Disconnected} on a dead
    connection; there is no transparent retry — re-sending is the
    coordinator's call, and is safe because the server dedupes by
    gtxn. *)

val decide_2pc : ?rid:int -> t -> gtxn:string -> committed:bool -> unit
(** 2PC phase 2: deliver the coordinator's logged decision. Idempotent on
    the server (retransmits re-ack; unknown abort is presumed-abort).
    [?rid] (default 0) correlates the participant's [Twopc_decide] trace
    event back to the coordinator statement. *)

val metrics : t -> string
(** Fetch the server's metrics registry as Prometheus text exposition
    (a [Metrics_req] frame answered with [Msg]). *)

val promote : t -> string
(** Admin: ask a follower server to promote itself to primary (a
    [Promote] frame). Returns the server's [Msg] text describing the
    promotion (losers rolled back, undo records, buffered tail applied).
    Raises {!Server_error} with [E_repl] if the server is not a
    follower. *)

val drop_slot : t -> string -> string
(** Admin: [drop_slot t name] asks the server to forget the detached
    replication slot [name] so its acked horizon stops pinning WAL
    retention (a [DropSlot] frame). Raises {!Server_error} with [E_repl]
    if the slot is unknown or still has a live subscription. *)

val repoint : t -> Ivdb_transport.Transport.dialer -> unit
(** Failover: drop the current connection and re-establish against a
    different server — typically a promoted primary. Any server-side
    transaction was already lost with the old server; a fresh session is
    negotiated. Raises like {!connect} if the new server is
    unreachable. *)

val close : t -> unit
(** Send [Bye] and close; idempotent. *)
