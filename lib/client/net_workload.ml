module Sched = Ivdb_sched.Sched
module Rng = Ivdb_util.Rng
module Zipf = Ivdb_util.Zipf
module Workload = Ivdb.Workload
module Database = Ivdb.Database
module Server = Ivdb_server.Server
module Replica = Ivdb_server.Replica
module Transport = Ivdb_transport.Transport
module Unix_transport = Ivdb_transport.Unix_transport
module Wire = Ivdb_wire.Wire
module Wal = Ivdb_wal.Wal

type transport = Loopback | Tcp

type repl_report = {
  lag_max : int;
  lag_mean : float;
  ship_batches : int;
  reconnects : int;
  catchup_ticks : int;
}

let insert_sql ~id ~product ~qty ~amount =
  Printf.sprintf "INSERT INTO sales VALUES (%d, %d, %d, %.4f)" id product qty
    amount

(* One writer transaction: BEGIN, ops, COMMIT. Returns [true] on commit.
   Deadlock victims lose their server-side transaction (the Err frame
   carries [txn_open = false]) and retry from BEGIN with capped backoff;
   a died-and-reconnected session likewise restarts from scratch. *)
let writer_txn cl spec rng zipf next_id my_rows =
  let max_tries = 10 in
  let rec attempt tries delay =
    let rolled_back = ref [] in
    match
      ignore (Client.exec cl "BEGIN");
      for _ = 1 to spec.Workload.ops_per_txn do
        let do_delete =
          Rng.float rng < spec.Workload.delete_fraction && !my_rows <> []
        in
        if do_delete then begin
          match !my_rows with
          | id :: rest ->
              my_rows := rest;
              rolled_back := id :: !rolled_back;
              ignore
                (Client.exec cl
                   (Printf.sprintf "DELETE FROM sales WHERE id = %d" id))
          | [] -> ()
        end
        else begin
          incr next_id;
          let id = !next_id in
          ignore
            (Client.exec cl
               (insert_sql ~id ~product:(Zipf.draw zipf rng)
                  ~qty:(1 + Rng.int rng 10)
                  ~amount:(Rng.float rng *. 100.)));
          my_rows := id :: !my_rows
        end
      done;
      ignore (Client.exec cl "COMMIT")
    with
    | () -> true
    | exception Client.Server_error { code = Wire.E_deadlock; _ } ->
        (* rows deleted inside the lost transaction are back *)
        my_rows := !rolled_back @ !my_rows;
        if tries >= max_tries then false
        else begin
          for _ = 1 to delay do
            Sched.yield ()
          done;
          attempt (tries + 1) (min (2 * delay) 32)
        end
    | exception Client.Server_error { txn_open; _ } ->
        my_rows := !rolled_back @ !my_rows;
        if txn_open then ignore (Client.exec cl "ROLLBACK");
        false
    | exception Client.Disconnected _ ->
        (* reconnected on a fresh session: the open transaction is gone *)
        my_rows := !rolled_back @ !my_rows;
        if tries >= max_tries then false else attempt (tries + 1) delay
  in
  attempt 0 1

let reader_txn cl _spec =
  match ignore (Client.exec cl "SELECT * FROM sales_by_product_0") with
  | () -> true
  | exception Client.Server_error _ -> false
  | exception Client.Disconnected _ -> false

(* Spawn [spec.mpl] closed-loop client fibers against [dialer]. Returns
   [(wait, running)]: [wait ()] suspends the calling fiber until the last
   client exits, [running ()] reports whether any is still going. *)
let spawn_clients spec phase dialer =
  let next_id = ref 0 in
  let client_fiber widx =
    let rng = Rng.create ((spec.Workload.seed * 7919) + widx) in
    let zipf =
      Zipf.create ~n:spec.Workload.n_groups ~theta:spec.Workload.theta
    in
    let my_rows = ref [] in
    match
      Client.connect ~client:(Printf.sprintf "wl-%d" widx) ~attempts:64 dialer
    with
    | cl ->
        for _ = 1 to spec.Workload.txns_per_worker do
          let is_reader =
            Rng.float rng < spec.Workload.read_fraction
            && spec.Workload.n_views > 0
          in
          let t_begin = Sched.now () in
          let ok =
            if is_reader then reader_txn cl spec
            else writer_txn cl spec rng zipf next_id my_rows
          in
          if ok then
            Workload.phase_commit phase ~reader:is_reader
              ~latency:(float_of_int (Sched.now () - t_begin))
              ()
          else Workload.phase_give_up phase;
          Sched.yield ()
        done;
        Client.close cl
    | exception (Client.Server_busy _ | Client.Disconnected _) ->
        (* admission never let this client in: all its transactions
           count as abandoned *)
        for _ = 1 to spec.Workload.txns_per_worker do
          Workload.phase_give_up phase
        done
  in
  let remaining = ref spec.Workload.mpl in
  let wake_main = ref (fun () -> ()) in
  for w = 1 to spec.Workload.mpl do
    ignore
      (Sched.spawn (fun () ->
           Fun.protect
             ~finally:(fun () ->
               decr remaining;
               if !remaining = 0 then !wake_main ())
             (fun () -> client_fiber w)))
  done;
  let wait () =
    if !remaining > 0 then
      Sched.suspend (fun wake _cancel -> wake_main := wake)
  in
  (wait, fun () -> !remaining > 0)

let run_net ?(transport = Loopback) ?(server_config = Server.default_config)
    spec =
  let db, _sales, _views = Workload.setup spec in
  let phase = Workload.phase_start db in
  let start_ticks = ref 0 and end_ticks = ref 0 in
  Sched.run ~seed:spec.Workload.seed (fun () ->
      start_ticks := Sched.now ();
      let listener, dialer =
        match transport with
        | Loopback ->
            (* backlog well above mpl so the admission-control cap in
               [server_config], not the transport queue, is the limiter *)
            let net =
              Transport.Loopback.create
                ~backlog:(max 64 (2 * spec.Workload.mpl))
                ()
            in
            (Transport.Loopback.listener net, Transport.Loopback.dialer net)
        | Tcp ->
            let listener, port = Unix_transport.listen ~port:0 () in
            (listener, Unix_transport.dialer ~port ())
      in
      let srv = Server.create ~config:server_config db listener in
      Server.serve srv;
      let wait, running = spawn_clients spec phase dialer in
      (match spec.Workload.stats_interval with
      | Some n when n > 0 -> Workload.spawn_reporter db ~interval:n ~running
      | Some _ | None -> ());
      wait ();
      Server.drain srv;
      end_ticks := Sched.now ());
  (Workload.phase_finish phase ~ticks:(!end_ticks - !start_ticks) (), db)

(* The same closed-loop run with a follower attached over a second
   loopback connection: primary serves clients and ships its WAL; the
   replica driver applies continuously while the workload runs. After
   the last client commits, the run waits for the follower to reach the
   primary's flushed horizon (that wait is [catchup_ticks]) before
   draining, so the returned follower is always converged. *)
let run_replicated ?(server_config = Server.default_config) spec =
  let db, _sales, _views = Workload.setup spec in
  let fdb = Database.create_follower () in
  let phase = Workload.phase_start db in
  let start_ticks = ref 0 and end_ticks = ref 0 in
  let lag_sum = ref 0 and lag_n = ref 0 and lag_max = ref 0 in
  let catchup = ref 0 in
  let ship_batches = ref 0 and reconnects = ref 0 in
  Sched.run ~seed:spec.Workload.seed (fun () ->
      start_ticks := Sched.now ();
      let net =
        Transport.Loopback.create
          ~backlog:(max 64 ((2 * spec.Workload.mpl) + 2))
          ()
      in
      let srv =
        Server.create ~config:server_config db (Transport.Loopback.listener net)
      in
      Server.serve srv;
      let repl =
        Replica.create ~name:"wl-follower" fdb (Transport.Loopback.dialer net)
      in
      Replica.spawn repl;
      let wait, running = spawn_clients spec phase (Transport.Loopback.dialer net) in
      ignore
        (Sched.spawn (fun () ->
             (* sample replication lag while the workload runs *)
             while running () do
               let lag =
                 Wal.flushed_lsn (Database.wal db)
                 - Database.replicated_lsn fdb
               in
               lag_sum := !lag_sum + lag;
               incr lag_n;
               if lag > !lag_max then lag_max := lag;
               for _ = 1 to 32 do
                 Sched.yield ()
               done
             done));
      (match spec.Workload.stats_interval with
      | Some n when n > 0 -> Workload.spawn_reporter db ~interval:n ~running
      | Some _ | None -> ());
      wait ();
      (* aborts (e.g. deadlock victims) append CLRs without forcing:
         flush the tail so the follower can converge on the full log *)
      let pwal = Database.wal db in
      Wal.force pwal (Wal.last_lsn pwal);
      let done_tick = Sched.now () in
      while
        Database.replicated_lsn fdb < Wal.flushed_lsn (Database.wal db)
      do
        Sched.yield ()
      done;
      catchup := Sched.now () - done_tick;
      ship_batches := Replica.batches repl;
      reconnects := Replica.reconnects repl;
      Replica.stop repl;
      Server.drain srv;
      end_ticks := Sched.now ());
  let report =
    {
      lag_max = !lag_max;
      lag_mean =
        (if !lag_n = 0 then 0. else float_of_int !lag_sum /. float_of_int !lag_n);
      ship_batches = !ship_batches;
      reconnects = !reconnects;
      catchup_ticks = !catchup;
    }
  in
  (Workload.phase_finish phase ~ticks:(!end_ticks - !start_ticks) (), db, fdb, report)
