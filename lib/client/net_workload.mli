(** Closed-loop network workload: the {!Ivdb.Workload} order-entry mix
    driven through the wire protocol instead of in-process calls.

    One scheduler run hosts everything: the server's accept fiber, a
    session fiber per admitted connection, and [spec.mpl] client fibers
    each owning one {!Client.t}. Writers wrap [ops_per_txn] INSERT/DELETE
    statements in [BEGIN]/[COMMIT] (retrying deadlock victims client-side
    with capped backoff); readers issue autocommitted view SELECTs. The
    measured phase is bracketed with {!Ivdb.Workload.phase_start} /
    [phase_finish], so the returned {!Ivdb.Workload.result} is directly
    comparable with in-process runs — server counters ([server.accepted],
    [server.shed], …) ride along in [result.metrics].

    Over [Loopback] the run is fully deterministic in [spec.seed]; over
    [Tcp] byte timing comes from the kernel and only aggregate invariants
    hold. *)

type transport = Loopback | Tcp

type repl_report = {
  lag_max : int;  (** worst sampled records-behind during the run *)
  lag_mean : float;  (** mean of the periodic lag samples *)
  ship_batches : int;  (** ReplRecords batches the follower applied *)
  reconnects : int;  (** times the replica driver redialed *)
  catchup_ticks : int;
      (** ticks from the last client commit until the follower reached the
          primary's flushed horizon *)
}

val run_net :
  ?transport:transport ->
  ?server_config:Ivdb_server.Server.config ->
  Ivdb.Workload.spec ->
  Ivdb.Workload.result * Ivdb.Database.t
(** [spec.mpl] is the client-connection count. The server drains after
    the last client closes, so the run exits with zero live fibers.
    Deliberately under-provisioned [server_config.max_inflight] turns
    this into the overload/shed experiment: refused clients back off and
    retry, and the shed count lands in [result.metrics]. The database is
    returned so callers can check view consistency after the run. *)

val run_replicated :
  ?server_config:Ivdb_server.Server.config ->
  Ivdb.Workload.spec ->
  Ivdb.Workload.result * Ivdb.Database.t * Ivdb.Database.t * repl_report
(** [run_net] over loopback with a follower attached: a fresh
    {!Ivdb.Database.create_follower} instance driven by a
    {!Ivdb_server.Replica} connection to the same server, applying the
    primary's WAL while the clients run. Returns
    [(result, primary, follower, report)]; the follower has fully caught
    up to the primary's flushed horizon by the time the call returns, so
    callers can compare {!Ivdb.Database.state_digest} directly. *)
