(* Multi-phase soak: the engine survives — and stays consistent through —
   a long life: concurrent workload, checkpoint + log truncation, more
   workload, crash, recovery, GC, SQL access over the recovered state,
   another crash. Each phase asserts V1 and basic accounting. *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Workload = Ivdb.Workload
module Maintain = Ivdb_core.Maintain
module Sql = Ivdb_sql.Sql
module Wal = Ivdb_wal.Wal
module Value = Ivdb_relation.Value

let check = Alcotest.check

let spec strategy seed =
  {
    Workload.default with
    seed;
    strategy;
    mpl = 6;
    txns_per_worker = 30;
    ops_per_txn = 3;
    delete_fraction = 0.2;
    n_groups = 12;
    theta = 0.9;
    n_views = 2;
    gc_every = Some 25;
  }

let consistent db v =
  (match Database.view_strategy db v with
  | Maintain.Deferred -> Database.transact db (fun tx -> ignore (Query.refresh db tx v))
  | Maintain.Exclusive | Maintain.Escrow -> ());
  Workload.check_consistency db v

let all_consistent db =
  List.for_all
    (fun (name, _) -> consistent db (Database.view db name))
    (Database.list_views db)

let test_soak strategy () =
  (* phase 1: concurrent workload *)
  let sp = spec strategy 1001 in
  let db, sales, views = Workload.setup sp in
  let r1 = Workload.run_on db sales views sp in
  Alcotest.(check bool) "phase1 commits" true (r1.Workload.committed > 100);
  Alcotest.(check bool) "phase1 V1" true (all_consistent db);

  (* phase 2: checkpoint truncates the log, then more workload *)
  Database.checkpoint db;
  Alcotest.(check bool) "log truncated" true (Wal.first_lsn (Database.wal db) > 1);
  let r2 = Workload.run_on db sales views { sp with seed = 1002 } in
  Alcotest.(check bool) "phase2 commits" true (r2.Workload.committed > 100);
  Alcotest.(check bool) "phase2 V1" true (all_consistent db);

  (* phase 3: crash and recover; everything still consistent and usable *)
  let rows_before = Table.row_count db sales in
  let db = Database.crash db in
  let sales = Database.table db "sales" in
  check Alcotest.int "rows preserved" rows_before (Table.row_count db sales);
  Alcotest.(check bool) "phase3 V1" true (all_consistent db);
  ignore (Database.gc db);

  (* phase 4: SQL over the recovered engine *)
  let s = Sql.session db in
  (match Sql.exec s "SELECT COUNT(*) FROM sales GROUP BY product LIMIT 1" with
  | Sql.Rows _ -> ()
  | _ -> Alcotest.fail "sql over recovered db");
  (match
     Sql.exec s "SELECT * FROM sales_by_product_0 ORDER BY product LIMIT 3"
   with
  | Sql.Rows { rows; _ } -> Alcotest.(check bool) "view rows" true (rows <> [])
  | _ -> Alcotest.fail "view readable via sql");

  (* phase 5: more concurrent work on the recovered instance, then a final
     crash + double-check *)
  let views = List.map (fun i -> Database.view db (Printf.sprintf "sales_by_product_%d" i)) [ 0; 1 ] in
  let r5 = Workload.run_on db sales views { sp with seed = 1005 } in
  Alcotest.(check bool) "phase5 commits" true (r5.Workload.committed > 100);
  let db = Database.crash db in
  Alcotest.(check bool) "final V1" true (all_consistent db)

let () =
  Alcotest.run "soak"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "escrow" `Quick (test_soak Maintain.Escrow);
          Alcotest.test_case "exclusive" `Quick (test_soak Maintain.Exclusive);
          Alcotest.test_case "deferred" `Quick (test_soak Maintain.Deferred);
        ] );
    ]
