module Btree = Ivdb_btree.Btree
module Bt_node = Ivdb_btree.Bt_node
module Txn = Ivdb_txn.Txn
module Key_codec = Ivdb_relation.Key_codec
module Value = Ivdb_relation.Value
module Rng = Ivdb_util.Rng
module Harness = Ivdb_test_support.Harness

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let make_tree () =
  let h = Harness.make ~pool_capacity:256 () in
  (h, Btree.create h.Harness.mgr ~index_id:1)

let ikey i = Key_codec.encode [| Value.Int i |]

(* --- basics ---------------------------------------------------------------- *)

let test_empty_tree () =
  let _, t = make_tree () in
  check Alcotest.(option string) "search empty" None (Btree.search t (ikey 1));
  Alcotest.(check bool) "no min" true (Btree.min_entry t = None);
  check Alcotest.int "count" 0 (Btree.entry_count t);
  check Alcotest.int "height" 1 (Btree.height t)

let test_insert_search_delete () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  Btree.insert tx t ~key:(ikey 5) ~value:"five";
  Btree.insert tx t ~key:(ikey 3) ~value:"three";
  Btree.insert tx t ~key:(ikey 7) ~value:"seven";
  check Alcotest.(option string) "find 3" (Some "three") (Btree.search t (ikey 3));
  check Alcotest.(option string) "find 7" (Some "seven") (Btree.search t (ikey 7));
  check Alcotest.(option string) "miss" None (Btree.search t (ikey 4));
  Btree.delete tx t ~key:(ikey 3);
  check Alcotest.(option string) "deleted" None (Btree.search t (ikey 3));
  Alcotest.check_raises "delete missing" Not_found (fun () ->
      Btree.delete tx t ~key:(ikey 3));
  Txn.commit h.Harness.mgr tx

let test_duplicate_key () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  Btree.insert tx t ~key:(ikey 1) ~value:"a";
  Alcotest.check_raises "dup" (Btree.Duplicate_key (ikey 1)) (fun () ->
      Btree.insert tx t ~key:(ikey 1) ~value:"b");
  Txn.commit h.Harness.mgr tx

let test_update_in_place () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  Btree.insert tx t ~key:(ikey 1) ~value:"aaaa";
  Btree.update tx t ~key:(ikey 1) ~value:"bbbb";
  check Alcotest.(option string) "same size" (Some "bbbb") (Btree.search t (ikey 1));
  Btree.update tx t ~key:(ikey 1) ~value:"a-much-longer-value";
  check Alcotest.(option string) "resized" (Some "a-much-longer-value")
    (Btree.search t (ikey 1));
  Alcotest.check_raises "update missing" Not_found (fun () ->
      Btree.update tx t ~key:(ikey 9) ~value:"x");
  Txn.commit h.Harness.mgr tx

let test_entry_too_large () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  Alcotest.check_raises "oversize" (Invalid_argument "Btree: entry exceeds max size")
    (fun () -> Btree.insert tx t ~key:(ikey 1) ~value:(String.make Bt_node.max_entry 'v'));
  Txn.commit h.Harness.mgr tx

(* --- volume / splits -------------------------------------------------------- *)

let test_bulk_ascending () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  let n = 5000 in
  for i = 1 to n do
    Btree.insert tx t ~key:(ikey i) ~value:(Printf.sprintf "v%d" i)
  done;
  Txn.commit h.Harness.mgr tx;
  check Alcotest.int "count" n (Btree.entry_count t);
  Alcotest.(check bool) "tree grew" true (Btree.height t >= 2);
  check Alcotest.(option string) "first" (Some "v1") (Btree.search t (ikey 1));
  check Alcotest.(option string) "last" (Some ("v" ^ string_of_int n))
    (Btree.search t (ikey n));
  (* ordered iteration *)
  let prev = ref "" in
  Btree.iter t (fun k _ ->
      assert (String.compare !prev k < 0);
      prev := k)

let test_bulk_random_with_deletes () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  let rng = Rng.create 2024 in
  let keys = Array.init 3000 (fun i -> i * 2) in
  Rng.shuffle rng keys;
  Array.iter (fun i -> Btree.insert tx t ~key:(ikey i) ~value:(string_of_int i)) keys;
  (* delete one third *)
  Array.iteri (fun idx i -> if idx mod 3 = 0 then Btree.delete tx t ~key:(ikey i)) keys;
  Txn.commit h.Harness.mgr tx;
  check Alcotest.int "count" 2000 (Btree.entry_count t);
  Array.iteri
    (fun idx i ->
      let expect = if idx mod 3 = 0 then None else Some (string_of_int i) in
      assert (Btree.search t (ikey i) = expect))
    keys

let test_variable_size_entries () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  let rng = Rng.create 77 in
  let payload i = String.make (1 + Rng.int rng 1500) (Char.chr (65 + (i mod 26))) in
  let entries = List.init 300 (fun i -> (ikey i, payload i)) in
  List.iter (fun (k, v) -> Btree.insert tx t ~key:k ~value:v) entries;
  Txn.commit h.Harness.mgr tx;
  List.iter (fun (k, v) -> assert (Btree.search t k = Some v)) entries

(* --- ordered access ---------------------------------------------------------- *)

let test_next_key () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  List.iter (fun i -> Btree.insert tx t ~key:(ikey i) ~value:(string_of_int i)) [ 10; 20; 30 ];
  Txn.commit h.Harness.mgr tx;
  let next k = Option.map fst (Btree.next_key t k) in
  check Alcotest.(option string) "after 10" (Some (ikey 20)) (next (ikey 10));
  check Alcotest.(option string) "after 15" (Some (ikey 20)) (next (ikey 15));
  check Alcotest.(option string) "after 30" None (next (ikey 30));
  check Alcotest.(option string) "before all" (Some (ikey 10)) (next (ikey 0))

let test_cursor_scan () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  for i = 1 to 500 do
    Btree.insert tx t ~key:(ikey i) ~value:(string_of_int i)
  done;
  Txn.commit h.Harness.mgr tx;
  let rec collect acc = function
    | None -> List.rev acc
    | Some (k, _, c) -> collect (k :: acc) (Btree.cursor_next t c)
  in
  let keys = collect [] (Btree.seek t (ikey 100)) in
  check Alcotest.int "scan length" 401 (List.length keys);
  check Alcotest.string "starts at 100" (ikey 100) (List.hd keys)

let test_cursor_survives_modification () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  for i = 1 to 100 do
    Btree.insert tx t ~key:(ikey (2 * i)) ~value:"x"
  done;
  (* start scanning, then mutate the tree, then continue *)
  let first = Btree.seek t (ikey 0) in
  let _, _, c = Option.get first in
  for i = 0 to 100 do
    (* odd keys inserted mid-scan *)
    Btree.insert tx t ~key:(ikey ((2 * i) + 1)) ~value:"y"
  done;
  let rec count acc cur =
    match Btree.cursor_next t cur with None -> acc | Some (_, _, c') -> count (acc + 1) c'
  in
  (* every original key after the first must still be visited *)
  Alcotest.(check bool) "sees at least the original tail" true (count 0 c >= 99);
  Txn.commit h.Harness.mgr tx

(* --- vacuum -------------------------------------------------------------------- *)

let test_vacuum_reclaims_empty_tree () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  for i = 1 to 4000 do
    Btree.insert tx t ~key:(ikey i) ~value:(Printf.sprintf "%08d" i)
  done;
  Txn.commit h.Harness.mgr tx;
  Alcotest.(check bool) "grew" true (Btree.height t >= 2);
  let tx = Txn.begin_txn h.Harness.mgr in
  for i = 1 to 4000 do
    Btree.delete tx t ~key:(ikey i)
  done;
  Txn.commit h.Harness.mgr tx;
  let freed = Btree.vacuum t in
  Alcotest.(check bool) "freed pages" true (freed > 5);
  check Alcotest.int "collapsed to a single leaf" 1 (Btree.height t);
  check Alcotest.int "empty" 0 (Btree.entry_count t);
  (* the tree is still fully usable *)
  let tx = Txn.begin_txn h.Harness.mgr in
  for i = 1 to 100 do
    Btree.insert tx t ~key:(ikey i) ~value:"again"
  done;
  Txn.commit h.Harness.mgr tx;
  check Alcotest.int "works after vacuum" 100 (Btree.entry_count t)

let test_vacuum_preserves_contents () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  let rng = Rng.create 31 in
  let keep = Hashtbl.create 64 in
  for i = 1 to 3000 do
    Btree.insert tx t ~key:(ikey i) ~value:(string_of_int i)
  done;
  for i = 1 to 3000 do
    if Rng.float rng < 0.9 then Btree.delete tx t ~key:(ikey i)
    else Hashtbl.replace keep i ()
  done;
  Txn.commit h.Harness.mgr tx;
  ignore (Btree.vacuum t);
  check Alcotest.int "survivors" (Hashtbl.length keep) (Btree.entry_count t);
  Hashtbl.iter
    (fun i () -> assert (Btree.search t (ikey i) = Some (string_of_int i)))
    keep;
  (* ordered iteration (the leaf chain was re-linked) *)
  let prev = ref "" in
  Btree.iter t (fun k _ ->
      assert (String.compare !prev k < 0);
      prev := k);
  (* vacuum is idempotent *)
  check Alcotest.int "second vacuum frees nothing" 0 (Btree.vacuum t)

let test_vacuum_survives_crash () =
  let h, t = make_tree () in
  let tx = Txn.begin_txn h.Harness.mgr in
  for i = 1 to 2000 do
    Btree.insert tx t ~key:(ikey i) ~value:"x"
  done;
  for i = 1 to 1990 do
    Btree.delete tx t ~key:(ikey i)
  done;
  Txn.commit h.Harness.mgr tx;
  ignore (Btree.vacuum t);
  (* redo must rebuild the vacuumed structure *)
  Ivdb_wal.Wal.force h.Harness.wal (Ivdb_wal.Wal.last_lsn h.Harness.wal);
  let h' = Ivdb_test_support.Harness.crash h ~pool_capacity:256 in
  let analysis = Ivdb_recovery.Recovery.analyze h'.Harness.wal in
  ignore (Ivdb_recovery.Recovery.redo h'.Harness.wal h'.Harness.pool analysis);
  let t' = Btree.attach h'.Harness.mgr ~index_id:1 ~root:(Btree.root t) in
  check Alcotest.int "entries after crash" 10 (Btree.entry_count t');
  assert (Btree.search t' (ikey 1995) = Some "x")

(* --- model-based property ----------------------------------------------------- *)

module SM = Map.Make (String)

let prop_model =
  QCheck.Test.make ~name:"btree vs Map model" ~count:60 QCheck.small_int (fun seed ->
      let h, t = make_tree () in
      let tx = Txn.begin_txn h.Harness.mgr in
      let rng = Rng.create seed in
      let model = ref SM.empty in
      for _ = 1 to 400 do
        let k = ikey (Rng.int rng 120) in
        match Rng.int rng 4 with
        | 0 -> (
            let v = string_of_int (Rng.int rng 1000) in
            match SM.find_opt k !model with
            | Some _ -> (
                try
                  Btree.insert tx t ~key:k ~value:v;
                  assert false
                with Btree.Duplicate_key _ -> ())
            | None ->
                Btree.insert tx t ~key:k ~value:v;
                model := SM.add k v !model)
        | 1 -> (
            match SM.find_opt k !model with
            | Some _ ->
                Btree.delete tx t ~key:k;
                model := SM.remove k !model
            | None -> ( try Btree.delete tx t ~key:k with Not_found -> ()))
        | 2 -> (
            let v = string_of_int (Rng.int rng 1000) in
            match SM.find_opt k !model with
            | Some _ ->
                Btree.update tx t ~key:k ~value:v;
                model := SM.add k v !model
            | None -> ( try Btree.update tx t ~key:k ~value:v with Not_found -> ()))
        | _ -> assert (Btree.search t k = SM.find_opt k !model)
      done;
      Txn.commit h.Harness.mgr tx;
      (* final: full contents equal, in order *)
      let actual = ref [] in
      Btree.iter t (fun k v -> actual := (k, v) :: !actual);
      List.rev !actual = SM.bindings !model)

let () =
  Alcotest.run "btree"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_empty_tree;
          Alcotest.test_case "insert/search/delete" `Quick test_insert_search_delete;
          Alcotest.test_case "duplicate key" `Quick test_duplicate_key;
          Alcotest.test_case "update" `Quick test_update_in_place;
          Alcotest.test_case "entry too large" `Quick test_entry_too_large;
        ] );
      ( "volume",
        [
          Alcotest.test_case "bulk ascending" `Quick test_bulk_ascending;
          Alcotest.test_case "random with deletes" `Quick test_bulk_random_with_deletes;
          Alcotest.test_case "variable-size entries" `Quick test_variable_size_entries;
        ] );
      ( "ordered",
        [
          Alcotest.test_case "next_key" `Quick test_next_key;
          Alcotest.test_case "cursor scan" `Quick test_cursor_scan;
          Alcotest.test_case "cursor survives modification" `Quick
            test_cursor_survives_modification;
        ] );
      ( "vacuum",
        [
          Alcotest.test_case "reclaims empty tree" `Quick test_vacuum_reclaims_empty_tree;
          Alcotest.test_case "preserves contents" `Quick test_vacuum_preserves_contents;
          Alcotest.test_case "survives crash" `Quick test_vacuum_survives_crash;
        ] );
      ("model", [ qtest prop_model ]);
    ]
