(* Concurrency semantics of indexed-view maintenance: escrow commutativity,
   logical undo under concurrent increments, phantom protection, deferred
   maintenance, and workload-level invariants. *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Workload = Ivdb.Workload
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain
module Txn = Ivdb_txn.Txn
module Sched = Ivdb_sched.Sched
module Metrics = Ivdb_util.Metrics

let check = Alcotest.check

let config = { Database.default_config with read_cost = 0; write_cost = 0 }

let cols =
  [
    { Schema.name = "id"; ty = Value.TInt; nullable = false };
    { Schema.name = "product"; ty = Value.TInt; nullable = false };
    { Schema.name = "qty"; ty = Value.TInt; nullable = false };
  ]

let row id product qty = [| Value.Int id; Value.Int product; Value.Int qty |]

let make ~strategy =
  let db = Database.create ~config () in
  let t = Database.create_table db ~name:"sales" ~cols in
  let v =
    Database.create_view db ~name:"by_product" ~group_by:[ "product" ]
      ~aggs:[ View_def.Sum (Expr.col (Database.schema db t) "qty") ]
      ~source:(Database.From (t, None))
      ~strategy ()
  in
  (db, t, v)

let group_sum db v g =
  match Query.view_lookup db None v [| Value.Int g |] with
  | Some r -> Value.to_int r.(1)
  | None -> 0

(* --- escrow commutativity ---------------------------------------------------- *)

let test_escrow_concurrent_increments () =
  let db, t, v = make ~strategy:Maintain.Escrow in
  let id = ref 0 in
  Sched.run ~seed:1 (fun () ->
      for _ = 1 to 8 do
        ignore
          (Sched.spawn (fun () ->
               Database.transact db (fun tx ->
                   for _ = 1 to 5 do
                     incr id;
                     ignore (Table.insert db tx t (row !id 1 1));
                     Sched.yield ()
                   done)))
      done);
  check Alcotest.int "all increments applied" 40 (group_sum db v 1);
  Alcotest.(check bool) "V1" true (Workload.check_consistency db v)

let test_escrow_no_waits_between_incrementers () =
  (* pure incrementers on one hot group: escrow never blocks, exclusive must *)
  let run strategy =
    let db, t, _ = make ~strategy in
    let id = ref 0 in
    Sched.run ~seed:3 (fun () ->
        for _ = 1 to 6 do
          ignore
            (Sched.spawn (fun () ->
                 Database.transact db (fun tx ->
                     incr id;
                     ignore (Table.insert db tx t (row !id 1 1));
                     (* stay in the transaction across yields so lock
                        lifetimes overlap *)
                     Sched.yield ();
                     Sched.yield ())))
        done);
    Metrics.get (Database.metrics db) "lock.wait"
  in
  let escrow_waits = run Maintain.Escrow in
  let exclusive_waits = run Maintain.Exclusive in
  check Alcotest.int "escrow writers never wait" 0 escrow_waits;
  Alcotest.(check bool) "exclusive writers serialize" true (exclusive_waits > 0)

let test_reader_blocks_until_escrow_commit () =
  let db, t, v = make ~strategy:Maintain.Escrow in
  Database.transact db (fun tx -> ignore (Table.insert db tx t (row 1 1 10)));
  let observed = ref (-1) in
  let order = ref [] in
  Sched.run ~policy:Sched.Fifo (fun () ->
      ignore
        (Sched.spawn (fun () ->
             Database.transact db (fun tx ->
                 ignore (Table.insert db tx t (row 2 1 5));
                 order := `Writer_applied :: !order;
                 Sched.yield ();
                 Sched.yield ();
                 order := `Writer_committing :: !order)));
      ignore
        (Sched.spawn (fun () ->
             Sched.yield ();
             Database.transact db (fun tx ->
                 match Query.view_lookup db (Some tx) v [| Value.Int 1 |] with
                 | Some r ->
                     observed := Value.to_int r.(1);
                     order := `Reader_read :: !order
                 | None -> Alcotest.fail "group missing"))));
  (* the reader's S lock waited for the E lock: it saw the committed 15,
     never the in-flight intermediate *)
  check Alcotest.int "reader sees committed value" 15 !observed;
  check
    Alcotest.(list string)
    "reader ran after commit"
    [ "applied"; "committing"; "read" ]
    (List.rev_map
       (function
         | `Writer_applied -> "applied"
         | `Writer_committing -> "committing"
         | `Reader_read -> "read")
       !order)

let test_escrow_abort_preserves_concurrent_increments () =
  (* The decisive test for logical undo (D2): T1 increments, T2 increments
     and commits, T1 aborts. Physical before-image undo would wipe T2's
     increment; logical undo must keep it. *)
  let db, t, v = make ~strategy:Maintain.Escrow in
  Database.transact db (fun tx -> ignore (Table.insert db tx t (row 1 1 100)));
  Sched.run ~policy:Sched.Fifo (fun () ->
      ignore
        (Sched.spawn (fun () ->
             let mgr = Database.mgr db in
             let tx = Txn.begin_txn mgr in
             ignore (Table.insert db tx t (row 2 1 30));
             Sched.yield ();
             Sched.yield ();
             (* T2 has committed its +7 by now; abort T1 *)
             Txn.abort mgr tx));
      ignore
        (Sched.spawn (fun () ->
             Database.transact db (fun tx ->
                 ignore (Table.insert db tx t (row 3 1 7))))));
  check Alcotest.int "T2's increment survives T1's abort" 107 (group_sum db v 1);
  Alcotest.(check bool) "V1" true (Workload.check_consistency db v)

let test_concurrent_group_birth () =
  (* several transactions contribute the first rows of the same new group *)
  let db, t, v = make ~strategy:Maintain.Escrow in
  let id = ref 0 in
  Sched.run ~seed:9 (fun () ->
      for _ = 1 to 5 do
        ignore
          (Sched.spawn (fun () ->
               Database.transact db (fun tx ->
                   incr id;
                   ignore (Table.insert db tx t (row !id 77 2));
                   Sched.yield ())))
      done);
  check Alcotest.int "all births merged" 10 (group_sum db v 77);
  check Alcotest.int "single group row" 1
    (Seq.length (Query.view_scan db None v Query.Dirty))

let test_bounds_reads () =
  let db, t, v = make ~strategy:Maintain.Escrow in
  Database.transact db (fun tx -> ignore (Table.insert db tx t (row 1 1 10)));
  (* no writers in flight: the interval is a point *)
  (match Query.view_lookup_bounds db v [| Value.Int 1 |] with
  | Some (lo, hi) ->
      check Alcotest.int "point lo" 10 (Value.to_int lo.(1));
      check Alcotest.int "point hi" 10 (Value.to_int hi.(1))
  | None -> Alcotest.fail "group missing");
  (* a writer holds an uncommitted +5 *)
  let mgr = Database.mgr db in
  let tx = Txn.begin_txn mgr in
  ignore (Table.insert db tx t (row 2 1 5));
  (match Query.view_lookup_bounds db v [| Value.Int 1 |] with
  | Some (lo, hi) ->
      check Alcotest.int "lo count" 1 (Value.to_int lo.(0));
      check Alcotest.int "hi count" 2 (Value.to_int hi.(0));
      check Alcotest.int "lo sum" 10 (Value.to_int lo.(1));
      check Alcotest.int "hi sum" 15 (Value.to_int hi.(1))
  | None -> Alcotest.fail "group missing");
  Txn.abort mgr tx;
  (* after the abort the interval collapses back to the committed value *)
  (match Query.view_lookup_bounds db v [| Value.Int 1 |] with
  | Some (lo, hi) ->
      check Alcotest.int "abort lo" 10 (Value.to_int lo.(1));
      check Alcotest.int "abort hi" 10 (Value.to_int hi.(1))
  | None -> Alcotest.fail "group missing")

let test_bounds_mixed_signs () =
  let db, t, v = make ~strategy:Maintain.Escrow in
  let keep =
    Database.transact db (fun tx ->
        ignore (Table.insert db tx t (row 1 1 7));
        Table.insert db tx t (row 2 1 4))
  in
  (* committed: count 2, sum 11. In flight: +3 (insert) and -4 (delete) *)
  let mgr = Database.mgr db in
  let tx1 = Txn.begin_txn mgr in
  ignore (Table.insert db tx1 t (row 3 1 3));
  let tx2 = Txn.begin_txn mgr in
  Table.delete db tx2 t keep;
  (match Query.view_lookup_bounds db v [| Value.Int 1 |] with
  | Some (lo, hi) ->
      (* outcomes: both commit 10; +3 aborts 7; delete aborts 14; both abort 11 *)
      check Alcotest.int "lo sum" 7 (Value.to_int lo.(1));
      check Alcotest.int "hi sum" 14 (Value.to_int hi.(1));
      check Alcotest.int "lo count" 1 (Value.to_int lo.(0));
      check Alcotest.int "hi count" 3 (Value.to_int hi.(0))
  | None -> Alcotest.fail "group missing");
  Txn.commit mgr tx1;
  Txn.commit mgr tx2;
  match Query.view_lookup_bounds db v [| Value.Int 1 |] with
  | Some (lo, hi) ->
      check Alcotest.int "final point" 10 (Value.to_int lo.(1));
      check Alcotest.int "final point hi" 10 (Value.to_int hi.(1))
  | None -> Alcotest.fail "group missing"

let test_bounds_never_blocks () =
  (* the bounds read proceeds while an E lock is held — unlike view_lookup,
     which would wait for commit *)
  let db, t, v = make ~strategy:Maintain.Escrow in
  Database.transact db (fun tx -> ignore (Table.insert db tx t (row 1 1 1)));
  let read_during_write = ref None in
  Sched.run ~policy:Sched.Fifo (fun () ->
      ignore
        (Sched.spawn (fun () ->
             Database.transact db (fun tx ->
                 ignore (Table.insert db tx t (row 2 1 1));
                 Sched.yield ();
                 Sched.yield ())));
      ignore
        (Sched.spawn (fun () ->
             Sched.yield ();
             (* no transaction, no locks: cannot block *)
             read_during_write := Query.view_lookup_bounds db v [| Value.Int 1 |])));
  match !read_during_write with
  | Some (lo, hi) ->
      check Alcotest.int "lo during write" 1 (Value.to_int lo.(1));
      check Alcotest.int "hi during write" 2 (Value.to_int hi.(1))
  | None -> Alcotest.fail "bounds read failed"

(* --- phantom protection --------------------------------------------------------- *)

let test_serializable_scan_blocks_group_creation () =
  let db, t, v = make ~strategy:Maintain.Escrow in
  Database.transact db (fun tx -> ignore (Table.insert db tx t (row 1 1 1)));
  let events = ref [] in
  Sched.run ~policy:Sched.Fifo (fun () ->
      ignore
        (Sched.spawn (fun () ->
             Database.transact db (fun tx ->
                 (* serializable scan: RangeS_S on every key and EOF *)
                 Seq.iter (fun _ -> ())
                   (Query.view_scan db (Some tx) v Query.Serializable);
                 events := `Scanned :: !events;
                 Sched.yield ();
                 Sched.yield ();
                 Sched.yield ();
                 events := `Scanner_done :: !events)));
      ignore
        (Sched.spawn (fun () ->
             Sched.yield ();
             Database.transact db (fun tx ->
                 (* new group 2: its RangeI_N on the scanned gap must wait *)
                 ignore (Table.insert db tx t (row 2 2 1));
                 events := `Created :: !events))));
  check
    Alcotest.(list string)
    "creation blocked until scanner committed"
    [ "scanned"; "scanner-done"; "created" ]
    (List.rev_map
       (function
         | `Scanned -> "scanned"
         | `Scanner_done -> "scanner-done"
         | `Created -> "created")
       !events)

let test_inserts_into_existing_groups_do_not_conflict () =
  (* two inserts into two *existing* groups: no waits at all under escrow *)
  let db, t, _ = make ~strategy:Maintain.Escrow in
  Database.transact db (fun tx ->
      ignore (Table.insert db tx t (row 1 1 1));
      ignore (Table.insert db tx t (row 2 2 1)));
  let before = Metrics.get (Database.metrics db) "lock.wait" in
  Sched.run ~seed:4 (fun () ->
      ignore
        (Sched.spawn (fun () ->
             Database.transact db (fun tx ->
                 ignore (Table.insert db tx t (row 3 1 1));
                 Sched.yield ())));
      ignore
        (Sched.spawn (fun () ->
             Database.transact db (fun tx ->
                 ignore (Table.insert db tx t (row 4 2 1));
                 Sched.yield ()))));
  check Alcotest.int "no lock waits" before
    (Metrics.get (Database.metrics db) "lock.wait")

let test_range_scan_contents () =
  let db, t, v = make ~strategy:Maintain.Escrow in
  Database.transact db (fun tx ->
      List.iter
        (fun (g, q) -> ignore (Table.insert db tx t (row g g q)))
        [ (1, 10); (3, 30); (5, 50); (7, 70); (9, 90) ]);
  let got =
    List.of_seq
      (Query.view_scan_range db None v ~lo:[| Value.Int 3 |] ~hi:[| Value.Int 8 |]
         Query.Dirty)
    |> List.map (fun (g, r) -> (Value.to_int g.(0), Value.to_int r.(1)))
  in
  check Alcotest.(list (pair int int)) "half-open range" [ (3, 30); (5, 50); (7, 70) ] got

let test_range_scan_phantom_precision () =
  (* a serializable range scan of [3, 8) blocks group creation INSIDE the
     range but not outside it *)
  let db, t, v = make ~strategy:Maintain.Escrow in
  Database.transact db (fun tx ->
      List.iter (fun g -> ignore (Table.insert db tx t (row g g 1))) [ 3; 5; 9 ]);
  let events = ref [] in
  Sched.run ~policy:Sched.Fifo (fun () ->
      ignore
        (Sched.spawn (fun () ->
             Database.transact db (fun tx ->
                 Seq.iter (fun _ -> ())
                   (Query.view_scan_range db (Some tx) v ~lo:[| Value.Int 3 |]
                      ~hi:[| Value.Int 8 |] Query.Serializable);
                 events := `Scanned :: !events;
                 for _ = 1 to 6 do
                   Sched.yield ()
                 done;
                 events := `Scanner_commit :: !events)));
      (* creation outside the scanned range proceeds immediately *)
      ignore
        (Sched.spawn (fun () ->
             Sched.yield ();
             Database.transact db (fun tx ->
                 ignore (Table.insert db tx t (row 100 20 1));
                 events := `Outside_created :: !events)));
      (* creation inside the range must wait for the scanner *)
      ignore
        (Sched.spawn (fun () ->
             Sched.yield ();
             Sched.yield ();
             Database.transact db (fun tx ->
                 ignore (Table.insert db tx t (row 101 6 1));
                 events := `Inside_created :: !events))));
  let names =
    List.rev_map
      (function
        | `Scanned -> "scan"
        | `Scanner_commit -> "scan-commit"
        | `Outside_created -> "outside"
        | `Inside_created -> "inside")
      !events
  in
  (* outside insert finished while the scanner still held its range locks *)
  Alcotest.(check bool) "outside before scanner commit" true
    (let rec idx n = function
       | [] -> -1
       | x :: rest -> if x = n then 0 else 1 + idx n rest
     in
     idx "outside" names < idx "scan-commit" names
     && idx "inside" names > idx "scan-commit" names)

(* --- deferred ---------------------------------------------------------------------- *)

let test_deferred_appends_dont_touch_view () =
  let db, t, v = make ~strategy:Maintain.Deferred in
  Database.transact db (fun tx ->
      for i = 1 to 6 do
        ignore (Table.insert db tx t (row i 1 2))
      done);
  Alcotest.(check bool) "view still empty" true
    (Query.view_lookup db None v [| Value.Int 1 |] = None);
  check Alcotest.int "staleness" 6 (Query.staleness db v);
  Database.transact db (fun tx ->
      check Alcotest.int "drained" 6 (Query.refresh db tx v));
  check Alcotest.int "view caught up" 12 (group_sum db v 1);
  check Alcotest.int "queue empty" 0 (Query.staleness db v)

let test_deferred_abort_removes_queued_deltas () =
  let db, t, v = make ~strategy:Maintain.Deferred in
  let mgr = Database.mgr db in
  let tx = Txn.begin_txn mgr in
  ignore (Table.insert db tx t (row 1 1 2));
  check Alcotest.int "queued" 1 (Query.staleness db v);
  Txn.abort mgr tx;
  check Alcotest.int "rolled back with txn" 0 (Query.staleness db v)

let test_deferred_writers_never_conflict_on_view () =
  let db, t, _ = make ~strategy:Maintain.Deferred in
  let id = ref 0 in
  Sched.run ~seed:5 (fun () ->
      for _ = 1 to 8 do
        ignore
          (Sched.spawn (fun () ->
               Database.transact db (fun tx ->
                   incr id;
                   ignore (Table.insert db tx t (row !id 1 1));
                   Sched.yield ())))
      done);
  check Alcotest.int "no waits" 0 (Metrics.get (Database.metrics db) "lock.wait")

let test_deferred_refresh_is_transactional () =
  let db, t, v = make ~strategy:Maintain.Deferred in
  Database.transact db (fun tx ->
      for i = 1 to 4 do
        ignore (Table.insert db tx t (row i 1 5))
      done);
  (* refresh, then abort the refreshing transaction: queue must be intact *)
  let mgr = Database.mgr db in
  let tx = Txn.begin_txn mgr in
  ignore (Query.refresh db tx v);
  check Alcotest.int "drained inside txn" 0 (Query.staleness db v);
  Txn.abort mgr tx;
  check Alcotest.int "queue restored on abort" 4 (Query.staleness db v);
  Alcotest.(check bool) "view restored on abort" true
    (Query.view_lookup db None v [| Value.Int 1 |] = None);
  Database.transact db (fun tx -> ignore (Query.refresh db tx v));
  check Alcotest.int "final sum" 20 (group_sum db v 1)

let test_deferred_auto_refresh_threshold () =
  let db = Database.create ~config () in
  let t = Database.create_table db ~name:"sales" ~cols in
  let v =
    Database.create_view db ~name:"v" ~refresh_threshold:5 ~group_by:[ "product" ]
      ~aggs:[ View_def.Sum (Expr.col (Database.schema db t) "qty") ]
      ~source:(Database.From (t, None))
      ~strategy:Maintain.Deferred ()
  in
  Database.transact db (fun tx ->
      for i = 1 to 4 do
        ignore (Table.insert db tx t (row i 1 1))
      done);
  (* below the threshold: a transactional reader sees the stale view *)
  Database.transact db (fun tx ->
      Alcotest.(check bool) "stale below threshold" true
        (Query.view_lookup db (Some tx) v [| Value.Int 1 |] = None));
  check Alcotest.int "still queued" 4 (Query.staleness db v);
  Database.transact db (fun tx ->
      for i = 5 to 8 do
        ignore (Table.insert db tx t (row i 1 1))
      done);
  (* now 8 > 5: the next transactional reader drains the queue first *)
  Database.transact db (fun tx ->
      match Query.view_lookup db (Some tx) v [| Value.Int 1 |] with
      | Some r -> check Alcotest.int "fresh after auto-refresh" 8 (Value.to_int r.(1))
      | None -> Alcotest.fail "auto-refresh did not run");
  check Alcotest.int "queue drained" 0 (Query.staleness db v);
  Alcotest.(check bool) "counted" true
    (Metrics.get (Database.metrics db) "view.auto_refresh" >= 1)

(* --- join views under concurrency ----------------------------------------------------- *)

let test_join_view_concurrent () =
  let db = Database.create ~config () in
  let orders =
    Database.create_table db ~name:"orders"
      ~cols:
        [
          { Schema.name = "oid"; ty = Value.TInt; nullable = false };
          { Schema.name = "customer"; ty = Value.TInt; nullable = false };
        ]
  in
  let items =
    Database.create_table db ~name:"items"
      ~cols:
        [
          { Schema.name = "order_id"; ty = Value.TInt; nullable = false };
          { Schema.name = "amount"; ty = Value.TInt; nullable = false };
        ]
  in
  Database.create_index db orders ~col:"oid" ~name:"ix_o";
  Database.create_index db items ~col:"order_id" ~name:"ix_i";
  let js = Database.join_schema db orders items in
  let v =
    Database.create_view db ~name:"cust" ~group_by:[ "customer" ]
      ~aggs:[ View_def.Sum (Expr.col js "amount") ]
      ~source:
        (Database.From_join
           { left = orders; right = items; left_col = "oid"; right_col = "order_id";
             where = None })
      ~strategy:Maintain.Escrow ()
  in
  let next_oid = ref 0 in
  Sched.run ~seed:21 (fun () ->
      for w = 1 to 5 do
        ignore
          (Sched.spawn (fun () ->
               let rng = Ivdb_util.Rng.create (w * 7) in
               for _ = 1 to 10 do
                 (try
                    Database.transact db (fun tx ->
                        incr next_oid;
                        let oid = !next_oid in
                        ignore
                          (Table.insert db tx orders
                             [| Value.Int oid; Value.Int (Ivdb_util.Rng.int rng 4) |]);
                        Sched.yield ();
                        for _ = 1 to 1 + Ivdb_util.Rng.int rng 2 do
                          ignore
                            (Table.insert db tx items
                               [| Value.Int oid; Value.Int (1 + Ivdb_util.Rng.int rng 9) |]);
                          Sched.yield ()
                        done)
                  with Txn.Conflict _ -> ());
                 Sched.yield ()
               done))
      done);
  Alcotest.(check bool) "join view V1 under concurrency" true
    (Workload.check_consistency db v)

(* --- workload-level invariants ------------------------------------------------------- *)

let consistency_spec strategy =
  {
    Workload.default with
    seed = 11;
    mpl = 6;
    txns_per_worker = 25;
    ops_per_txn = 3;
    delete_fraction = 0.2;
    n_groups = 10;
    theta = 0.9;
    strategy;
  }

let test_workload_consistency_all_strategies () =
  List.iter
    (fun strategy ->
      let spec = consistency_spec strategy in
      let db, sales, views = Workload.setup spec in
      let res = Workload.run_on db sales views spec in
      Alcotest.(check bool) "some commits" true (res.Workload.committed > 0);
      let v = List.hd views in
      (match strategy with
      | Maintain.Deferred ->
          Database.transact db (fun tx -> ignore (Query.refresh db tx v))
      | Maintain.Escrow | Maintain.Exclusive -> ());
      Alcotest.(check bool)
        (Printf.sprintf "V1 under concurrency (%s)"
           (Maintain.strategy_to_string strategy))
        true
        (Workload.check_consistency db v))
    [ Maintain.Exclusive; Maintain.Escrow; Maintain.Deferred ]

let test_workload_deterministic () =
  let spec = consistency_spec Maintain.Escrow in
  let r1 = Workload.run spec and r2 = Workload.run spec in
  check Alcotest.int "same commits" r1.Workload.committed r2.Workload.committed;
  check Alcotest.int "same ticks" r1.Workload.ticks r2.Workload.ticks;
  Alcotest.(check bool) "same metric diffs" true
    (r1.Workload.metrics = r2.Workload.metrics)

let test_checkpoint_under_concurrency () =
  (* sharp checkpoints interleave with active transactions: stealing
     uncommitted pages is fine (undo is logical), truncation respects
     active transactions, and the final state is consistent and
     crash-recoverable *)
  let spec =
    {
      (consistency_spec Maintain.Escrow) with
      checkpoint_every = Some 15;
      txns_per_worker = 30;
    }
  in
  let db, sales, views = Workload.setup spec in
  let r = Workload.run_on db sales views spec in
  Alcotest.(check bool) "commits" true (r.Workload.committed > 100);
  Alcotest.(check bool) "checkpoints ran" true
    (Metrics.get (Database.metrics db) "txn.checkpoint" >= 5);
  Alcotest.(check bool) "log truncated" true
    (Ivdb_wal.Wal.first_lsn (Database.wal db) > 1);
  Alcotest.(check bool) "V1" true (Workload.check_consistency db (List.hd views));
  let db' = Database.crash db in
  Alcotest.(check bool) "V1 after crash" true
    (Workload.check_consistency db' (Database.view db' "sales_by_product_0"))

let test_workload_gc_under_churn () =
  let spec =
    {
      (consistency_spec Maintain.Escrow) with
      delete_fraction = 0.45;
      n_groups = 40;
      gc_every = Some 10;
      txns_per_worker = 30;
    }
  in
  let db, sales, views = Workload.setup spec in
  let _ = Workload.run_on db sales views spec in
  ignore (Database.gc db);
  Alcotest.(check bool) "V1 with churn + gc" true
    (Workload.check_consistency db (List.hd views))

let test_user_create_mode_contends () =
  (* D3 ablation: user-transaction group creation holds X to commit, so
     concurrent writers to a newborn group must wait *)
  let run create_mode =
    let db = Database.create ~config () in
    let t = Database.create_table db ~name:"sales" ~cols in
    let _ =
      Database.create_view db ~create_mode ~name:"v" ~group_by:[ "product" ]
        ~aggs:[]
        ~source:(Database.From (t, None))
        ~strategy:Maintain.Escrow ()
    in
    let id = ref 0 in
    Sched.run ~policy:Sched.Fifo (fun () ->
        for _ = 1 to 4 do
          ignore
            (Sched.spawn (fun () ->
                 Database.transact db (fun tx ->
                     incr id;
                     ignore (Table.insert db tx t (row !id 500 1));
                     Sched.yield ();
                     Sched.yield ())))
        done);
    Metrics.get (Database.metrics db) "lock.wait"
  in
  check Alcotest.int "system-txn creation: no waits" 0 (run Maintain.System_txn);
  Alcotest.(check bool) "user-txn creation: waits" true (run Maintain.User_txn > 0)

let () =
  Alcotest.run "view"
    [
      ( "escrow",
        [
          Alcotest.test_case "concurrent increments" `Quick
            test_escrow_concurrent_increments;
          Alcotest.test_case "no waits between incrementers" `Quick
            test_escrow_no_waits_between_incrementers;
          Alcotest.test_case "reader blocks until commit" `Quick
            test_reader_blocks_until_escrow_commit;
          Alcotest.test_case "abort preserves concurrent increments" `Quick
            test_escrow_abort_preserves_concurrent_increments;
          Alcotest.test_case "concurrent group birth" `Quick test_concurrent_group_birth;
        ] );
      ( "bounds-reads",
        [
          Alcotest.test_case "point and interval" `Quick test_bounds_reads;
          Alcotest.test_case "mixed signs" `Quick test_bounds_mixed_signs;
          Alcotest.test_case "never blocks" `Quick test_bounds_never_blocks;
        ] );
      ( "phantoms",
        [
          Alcotest.test_case "serializable scan blocks creation" `Quick
            test_serializable_scan_blocks_group_creation;
          Alcotest.test_case "existing groups don't conflict" `Quick
            test_inserts_into_existing_groups_do_not_conflict;
          Alcotest.test_case "range scan contents" `Quick test_range_scan_contents;
          Alcotest.test_case "range scan phantom precision" `Quick
            test_range_scan_phantom_precision;
        ] );
      ( "deferred",
        [
          Alcotest.test_case "appends don't touch view" `Quick
            test_deferred_appends_dont_touch_view;
          Alcotest.test_case "abort removes queued deltas" `Quick
            test_deferred_abort_removes_queued_deltas;
          Alcotest.test_case "writers never conflict" `Quick
            test_deferred_writers_never_conflict_on_view;
          Alcotest.test_case "refresh is transactional" `Quick
            test_deferred_refresh_is_transactional;
          Alcotest.test_case "auto-refresh threshold" `Quick
            test_deferred_auto_refresh_threshold;
        ] );
      ( "join-concurrency",
        [ Alcotest.test_case "V1 under concurrent order entry" `Quick
            test_join_view_concurrent ] );
      ( "workload",
        [
          Alcotest.test_case "V1 under concurrency, all strategies" `Quick
            test_workload_consistency_all_strategies;
          Alcotest.test_case "deterministic by seed" `Quick test_workload_deterministic;
          Alcotest.test_case "gc under churn" `Quick test_workload_gc_under_churn;
          Alcotest.test_case "checkpoint under concurrency" `Quick
            test_checkpoint_under_concurrency;
          Alcotest.test_case "create-mode ablation" `Quick test_user_create_mode_contends;
        ] );
    ]
