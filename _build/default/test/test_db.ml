module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Workload = Ivdb.Workload
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Row = Ivdb_relation.Row
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain
module Txn = Ivdb_txn.Txn

let check = Alcotest.check

let config =
  { Database.default_config with read_cost = 0; write_cost = 0 }

let cols =
  [
    { Schema.name = "id"; ty = Value.TInt; nullable = false };
    { Schema.name = "product"; ty = Value.TInt; nullable = false };
    { Schema.name = "qty"; ty = Value.TInt; nullable = false };
  ]

let row id product qty = [| Value.Int id; Value.Int product; Value.Int qty |]

let make_db () =
  let db = Database.create ~config () in
  let t = Database.create_table db ~name:"sales" ~cols in
  (db, t)

let sum_qty db t ~strategy () =
  Database.create_view db ~name:"by_product" ~group_by:[ "product" ]
    ~aggs:[ View_def.Sum (Expr.col (Database.schema db t) "qty") ]
    ~source:(Database.From (t, None))
    ~strategy ()

(* --- tables ------------------------------------------------------------- *)

let test_table_crud () =
  let db, t = make_db () in
  let rid =
    Database.transact db (fun tx -> Table.insert db tx t (row 1 10 5))
  in
  Alcotest.(check bool) "get" true
    (Option.is_some (Table.get db None t rid));
  Database.transact db (fun tx -> Table.delete db tx t rid);
  Alcotest.(check bool) "gone" true (Table.get db None t rid = None);
  check Alcotest.int "count" 0 (Table.row_count db t)

let test_table_validation () =
  let db, t = make_db () in
  Database.transact db (fun tx ->
      Alcotest.check_raises "arity"
        (Invalid_argument "Table.insert: arity mismatch: expected 3, got 1")
        (fun () -> ignore (Table.insert db tx t [| Value.Int 1 |]));
      Alcotest.check_raises "type"
        (Invalid_argument "Table.insert: product: expected INT, got STR")
        (fun () -> ignore (Table.insert db tx t [| Value.Int 1; Value.Str "x"; Value.Int 2 |])))

let test_table_scan_where () =
  let db, t = make_db () in
  Database.transact db (fun tx ->
      for i = 1 to 20 do
        ignore (Table.insert db tx t (row i (i mod 4) i))
      done);
  let schema = Database.schema db t in
  let pred = Expr.Cmp (Expr.Eq, Expr.col schema "product", Expr.int 2) in
  let n = Seq.length (Query.table_scan db None t ~where:pred Query.Dirty) in
  check Alcotest.int "filtered" 5 n

let test_update_moves_row () =
  let db, t = make_db () in
  let rid = Database.transact db (fun tx -> Table.insert db tx t (row 1 1 1)) in
  let rid' =
    Database.transact db (fun tx -> Table.update db tx t rid (row 1 1 99))
  in
  Alcotest.(check bool) "old rid gone" true (Table.get db None t rid = None);
  (match Table.get db None t rid' with
  | Some r -> Alcotest.(check bool) "new value" true (Value.to_int r.(2) = 99)
  | None -> Alcotest.fail "row missing");
  check Alcotest.int "still one row" 1 (Table.row_count db t)

let test_secondary_index_probe () =
  let db, t = make_db () in
  Database.create_index db t ~col:"product" ~name:"ix_product";
  Database.transact db (fun tx ->
      for i = 1 to 30 do
        ignore (Table.insert db tx t (row i (i mod 3) i))
      done);
  let rows =
    Database.Internal.index_probe db None
      ~table:(Database.Internal.table_id t) ~col:1 (Value.Int 1)
  in
  check Alcotest.int "probe hits" 10 (Seq.length rows);
  (* index maintained under deletes *)
  let schema = Database.schema db t in
  let n =
    Database.transact db (fun tx ->
        Table.delete_where db tx t (Expr.Cmp (Expr.Eq, Expr.col schema "product", Expr.int 1)))
  in
  check Alcotest.int "deleted" 10 n;
  let rows =
    Database.Internal.index_probe db None
      ~table:(Database.Internal.table_id t) ~col:1 (Value.Int 1)
  in
  check Alcotest.int "probe empty" 0 (Seq.length rows)

let test_lock_escalation () =
  let config = { config with Database.escalation_threshold = Some 5 } in
  let db = Database.create ~config () in
  let t = Database.create_table db ~name:"sales" ~cols in
  let mgr = Database.mgr db in
  let tx = Txn.begin_txn mgr in
  for i = 1 to 20 do
    ignore (Table.insert db tx t (row i 1 1))
  done;
  (* after the 5th row lock the whole table is X-locked and later rows take
     no individual locks *)
  Alcotest.(check bool) "escalated" true
    (Ivdb_util.Metrics.get (Database.metrics db) "lock.escalation" = 1);
  let held = Ivdb_lock.Lock_mgr.lock_count (Database.locks db)
      ~txn:(Txn.id tx) in
  Alcotest.(check bool) "far fewer locks than rows" true (held < 15);
  Alcotest.(check bool) "table X held" true
    (Ivdb_lock.Lock_mgr.held_mode (Database.locks db) ~txn:(Txn.id tx)
       (Ivdb_lock.Lock_name.Table (Database.Internal.table_id t))
    = Some Ivdb_lock.Lock_mode.X);
  Txn.commit mgr tx;
  (* counters are per-transaction: a fresh txn starts from zero *)
  let tx2 = Txn.begin_txn mgr in
  for i = 21 to 23 do
    ignore (Table.insert db tx2 t (row i 1 1))
  done;
  Alcotest.(check bool) "no new escalation" true
    (Ivdb_util.Metrics.get (Database.metrics db) "lock.escalation" = 1);
  Txn.commit mgr tx2

let test_escalated_table_blocks_writers () =
  let config = { config with Database.escalation_threshold = Some 3 } in
  let db = Database.create ~config () in
  let t = Database.create_table db ~name:"sales" ~cols in
  let order = ref [] in
  Ivdb_sched.Sched.run ~policy:Ivdb_sched.Sched.Fifo (fun () ->
      ignore
        (Ivdb_sched.Sched.spawn (fun () ->
             Database.transact db (fun tx ->
                 for i = 1 to 6 do
                   ignore (Table.insert db tx t (row i 1 1))
                 done;
                 order := `Bulk_loaded :: !order;
                 Ivdb_sched.Sched.yield ();
                 Ivdb_sched.Sched.yield ())));
      ignore
        (Ivdb_sched.Sched.spawn (fun () ->
             Ivdb_sched.Sched.yield ();
             Database.transact db (fun tx ->
                 ignore (Table.insert db tx t (row 100 2 1));
                 order := `Late_writer :: !order))));
  check
    Alcotest.(list string)
    "late writer blocked behind escalated X"
    [ "bulk"; "late" ]
    (List.rev_map (function `Bulk_loaded -> "bulk" | `Late_writer -> "late") !order)

let test_index_range_scan () =
  let db, t = make_db () in
  Database.create_index db t ~col:"qty" ~name:"ix_qty";
  Database.transact db (fun tx ->
      for i = 1 to 20 do
        ignore (Table.insert db tx t (row i (i mod 3) i))
      done);
  let range ~lo ~hi =
    Database.Internal.index_range_rids db None
      ~table:(Database.Internal.table_id t) ~col:2 ~lo ~hi
    |> Seq.map (fun (_, r) -> Value.to_int r.(2))
    |> List.of_seq |> List.sort compare
  in
  check Alcotest.(list int) "closed-open" [ 5; 6; 7 ]
    (range ~lo:(Some (Value.Int 5, true)) ~hi:(Some (Value.Int 8, false)));
  check Alcotest.(list int) "open-closed" [ 6; 7; 8 ]
    (range ~lo:(Some (Value.Int 5, false)) ~hi:(Some (Value.Int 8, true)));
  check Alcotest.(list int) "unbounded below" [ 1; 2 ]
    (range ~lo:None ~hi:(Some (Value.Int 2, true)));
  check Alcotest.int "unbounded above" 3
    (List.length (range ~lo:(Some (Value.Int 18, true)) ~hi:None));
  (* fallback without an index behaves identically *)
  let range_noix ~lo ~hi =
    Database.Internal.index_range_rids db None
      ~table:(Database.Internal.table_id t) ~col:0 ~lo ~hi
    |> Seq.map (fun (_, r) -> Value.to_int r.(0))
    |> List.of_seq |> List.sort compare
  in
  check Alcotest.(list int) "scan fallback" [ 3; 4 ]
    (range_noix ~lo:(Some (Value.Int 3, true)) ~hi:(Some (Value.Int 4, true)))

(* --- unique indexes ---------------------------------------------------------- *)

let test_unique_index_enforced () =
  let db, t = make_db () in
  Database.create_index db ~unique:true t ~col:"id" ~name:"pk_id";
  Database.transact db (fun tx -> ignore (Table.insert db tx t (row 1 1 1)));
  (* duplicate rejected, and the failed transaction leaves nothing behind *)
  (match
     Database.transact db (fun tx ->
         ignore (Table.insert db tx t (row 2 2 2));
         ignore (Table.insert db tx t (row 1 9 9)))
   with
  | exception Database.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "duplicate id accepted");
  check Alcotest.int "atomicity: partial txn rolled back" 1 (Table.row_count db t);
  (* delete + reinsert of the same value works (ghost revived with new rid) *)
  Database.transact db (fun tx ->
      match Table.find db (Some tx) t ~col:"id" (Value.Int 1) with
      | [ (rid, _) ] -> Table.delete db tx t rid
      | _ -> Alcotest.fail "row missing");
  Database.transact db (fun tx -> ignore (Table.insert db tx t (row 1 5 5)));
  (match Table.find db None t ~col:"id" (Value.Int 1) with
  | [ (_, r) ] -> check Alcotest.int "reinserted row" 5 (Value.to_int r.(1))
  | l -> Alcotest.failf "expected 1 row, got %d" (List.length l))

let test_unique_backfill_rejects_duplicates () =
  let db, t = make_db () in
  Database.transact db (fun tx ->
      ignore (Table.insert db tx t (row 1 1 1));
      ignore (Table.insert db tx t (row 1 2 2)));
  match Database.create_index db ~unique:true t ~col:"id" ~name:"pk" with
  | exception Database.Constraint_violation _ -> ()
  | () -> Alcotest.fail "backfill should reject duplicates"

let test_unique_insert_blocks_on_inflight_delete () =
  (* T1 deletes id=1 but has not committed; T2 inserts id=1: it must block
     on the key lock and succeed only because T1 commits. Then the reverse:
     if the deleter aborts, the blocked inserter gets the violation. *)
  let run ~deleter_commits =
    let db, t = make_db () in
    Database.create_index db ~unique:true t ~col:"id" ~name:"pk";
    Database.transact db (fun tx -> ignore (Table.insert db tx t (row 1 1 1)));
    let outcome = ref `Pending in
    Ivdb_sched.Sched.run ~policy:Ivdb_sched.Sched.Fifo (fun () ->
        ignore
          (Ivdb_sched.Sched.spawn (fun () ->
               let mgr = Database.mgr db in
               let tx = Txn.begin_txn mgr in
               (match Table.find db (Some tx) t ~col:"id" (Value.Int 1) with
               | [ (rid, _) ] -> Table.delete db tx t rid
               | _ -> Alcotest.fail "row missing");
               Ivdb_sched.Sched.yield ();
               Ivdb_sched.Sched.yield ();
               if deleter_commits then Txn.commit mgr tx else Txn.abort mgr tx));
        ignore
          (Ivdb_sched.Sched.spawn (fun () ->
               Ivdb_sched.Sched.yield ();
               match
                 Database.transact db ~retries:0 (fun tx ->
                     ignore (Table.insert db tx t (row 1 7 7)))
               with
               | () -> outcome := `Inserted
               | exception Database.Constraint_violation _ -> outcome := `Violation)));
    !outcome
  in
  Alcotest.(check bool) "deleter commits -> insert succeeds" true
    (run ~deleter_commits:true = `Inserted);
  Alcotest.(check bool) "deleter aborts -> violation" true
    (run ~deleter_commits:false = `Violation)

(* --- views: correctness ---------------------------------------------------- *)

let view_contents db v =
  List.of_seq (Query.view_scan db None v Query.Dirty)
  |> List.map (fun (g, r) -> (Value.to_int g.(0), Array.to_list r))

let test_view_initial_materialization () =
  let db, t = make_db () in
  Database.transact db (fun tx ->
      for i = 1 to 10 do
        ignore (Table.insert db tx t (row i (i mod 2) i))
      done);
  (* view created after the data exists *)
  let v = sum_qty db t ~strategy:Maintain.Exclusive () in
  (* group 0: ids 2,4,6,8,10 -> qty sum 30; group 1: 1,3,5,7,9 -> 25 *)
  check
    Alcotest.(list (pair int (list string)))
    "materialized"
    [
      (0, [ "5"; "30" ]);
      (1, [ "5"; "25" ]);
    ]
    (List.map (fun (g, r) -> (g, List.map Value.to_string r)) (view_contents db v))

let test_view_incremental_all_strategies () =
  List.iter
    (fun strategy ->
      let db, t = make_db () in
      let v = sum_qty db t ~strategy () in
      Database.transact db (fun tx ->
          for i = 1 to 12 do
            ignore (Table.insert db tx t (row i (i mod 3) 2))
          done);
      Database.transact db (fun tx ->
          ignore (Query.staleness db v);
          if Database.view_strategy db v = Maintain.Deferred then
            ignore (Query.refresh db tx v));
      Alcotest.(check bool)
        (Printf.sprintf "V1 holds under %s" (Maintain.strategy_to_string strategy))
        true
        (Workload.check_consistency db v))
    [ Maintain.Exclusive; Maintain.Escrow; Maintain.Deferred ]

let test_view_lookup_and_absent_groups () =
  let db, t = make_db () in
  let v = sum_qty db t ~strategy:Maintain.Escrow () in
  Database.transact db (fun tx -> ignore (Table.insert db tx t (row 1 7 3)));
  (match Query.view_lookup db None v [| Value.Int 7 |] with
  | Some r -> check Alcotest.int "sum" 3 (Value.to_int r.(1))
  | None -> Alcotest.fail "group 7 missing");
  Alcotest.(check bool) "absent group" true
    (Query.view_lookup db None v [| Value.Int 99 |] = None)

let test_view_zero_count_invisible_then_gc () =
  let db, t = make_db () in
  let v = sum_qty db t ~strategy:Maintain.Escrow () in
  let rid = Database.transact db (fun tx -> Table.insert db tx t (row 1 5 2)) in
  Database.transact db (fun tx -> Table.delete db tx t rid);
  (* escrow leaves the zero-count row physically present but invisible *)
  Alcotest.(check bool) "invisible" true
    (Query.view_lookup db None v [| Value.Int 5 |] = None);
  check Alcotest.int "one ghost group" 1
    (Ivdb_core.Group_gc.zero_count_rows (Database.Internal.view_rt db (Database.Internal.view_id v)));
  let removed = Database.gc db in
  Alcotest.(check bool) "gc removed it" true (removed >= 1);
  check Alcotest.int "no ghost groups" 0
    (Ivdb_core.Group_gc.zero_count_rows (Database.Internal.view_rt db (Database.Internal.view_id v)));
  (* the group can be reborn *)
  Database.transact db (fun tx -> ignore (Table.insert db tx t (row 2 5 9)));
  match Query.view_lookup db None v [| Value.Int 5 |] with
  | Some r -> check Alcotest.int "reborn sum" 9 (Value.to_int r.(1))
  | None -> Alcotest.fail "group not reborn"

let test_view_minmax_recompute () =
  let db, t = make_db () in
  let schema = Database.schema db t in
  let v =
    Database.create_view db ~name:"minmax" ~group_by:[ "product" ]
      ~aggs:
        [ View_def.Min (Expr.col schema "qty"); View_def.Max (Expr.col schema "qty") ]
      ~source:(Database.From (t, None))
      ~strategy:Maintain.Exclusive ()
  in
  let rids =
    Database.transact db (fun tx ->
        List.map (fun q -> Table.insert db tx t (row q 1 q)) [ 5; 2; 9; 7 ])
  in
  let get () = Option.get (Query.view_lookup db None v [| Value.Int 1 |]) in
  check Alcotest.int "min" 2 (Value.to_int (get ()).(1));
  check Alcotest.int "max" 9 (Value.to_int (get ()).(2));
  (* deleting the max (qty 9, third rid) forces a group recompute *)
  Database.transact db (fun tx -> Table.delete db tx t (List.nth rids 2));
  check Alcotest.int "max recomputed" 7 (Value.to_int (get ()).(2));
  check Alcotest.int "min unchanged" 2 (Value.to_int (get ()).(1));
  Alcotest.(check bool) "recompute counted" true
    (Ivdb_util.Metrics.get (Database.metrics db) "view.recompute" >= 1)

let test_view_escrow_rejects_minmax () =
  let db, t = make_db () in
  let schema = Database.schema db t in
  Alcotest.check_raises "escrow minmax"
    (Invalid_argument
       "Database.create_view: escrow/deferred strategies require COUNT/SUM-only \
        views (MIN/MAX needs exclusive maintenance)") (fun () ->
      ignore
        (Database.create_view db ~name:"bad" ~group_by:[ "product" ]
           ~aggs:[ View_def.Min (Expr.col schema "qty") ]
           ~source:(Database.From (t, None))
           ~strategy:Maintain.Escrow ()))

let test_view_where_filter () =
  let db, t = make_db () in
  let schema = Database.schema db t in
  let big = Expr.Cmp (Expr.Gt, Expr.col schema "qty", Expr.int 5) in
  let v =
    Database.create_view db ~name:"big_sales" ~group_by:[ "product" ]
      ~aggs:[]
      ~source:(Database.From (t, Some big))
      ~strategy:Maintain.Escrow ()
  in
  Database.transact db (fun tx ->
      ignore (Table.insert db tx t (row 1 1 3));
      ignore (Table.insert db tx t (row 2 1 7));
      ignore (Table.insert db tx t (row 3 1 9)));
  match Query.view_lookup db None v [| Value.Int 1 |] with
  | Some r -> check Alcotest.int "only qualifying rows" 2 (Value.to_int r.(0))
  | None -> Alcotest.fail "group missing"

let test_multi_column_string_groups () =
  let db = Database.create ~config () in
  let t =
    Database.create_table db ~name:"orders"
      ~cols:
        [
          { Schema.name = "region"; ty = Value.TStr; nullable = false };
          { Schema.name = "product"; ty = Value.TStr; nullable = true };
          { Schema.name = "qty"; ty = Value.TInt; nullable = false };
        ]
  in
  let schema = Database.schema db t in
  let v =
    Database.create_view db ~name:"by_region_product"
      ~group_by:[ "region"; "product" ]
      ~aggs:[ View_def.Sum (Expr.col schema "qty") ]
      ~source:(Database.From (t, None))
      ~strategy:Maintain.Escrow ()
  in
  Database.transact db (fun tx ->
      List.iter
        (fun (r, p, q) ->
          ignore (Table.insert db tx t [| Value.Str r; p; Value.Int q |]))
        [
          ("eu", Value.Str "ore", 5);
          ("eu", Value.Str "ore", 7);
          ("eu", Value.Str "wood", 1);
          ("us", Value.Str "ore", 2);
          ("us", Value.Null, 9);
          (* NULL groups with NULL *)
          ("us", Value.Null, 1);
        ]);
  (match Query.view_lookup db None v [| Value.Str "eu"; Value.Str "ore" |] with
  | Some r ->
      check Alcotest.int "count" 2 (Value.to_int r.(0));
      check Alcotest.int "sum" 12 (Value.to_int r.(1))
  | None -> Alcotest.fail "group (eu, ore) missing");
  (match Query.view_lookup db None v [| Value.Str "us"; Value.Null |] with
  | Some r -> check Alcotest.int "null group sum" 10 (Value.to_int r.(1))
  | None -> Alcotest.fail "NULL group missing");
  check Alcotest.int "distinct groups" 4 (Query.view_count db v);
  Alcotest.(check bool) "V1" true (Workload.check_consistency db v);
  (* groups scan in lexicographic (region, product) order; NULL first *)
  let keys =
    List.of_seq (Query.view_scan db None v Query.Dirty)
    |> List.map (fun (g, _) -> Array.to_list (Array.map Value.to_string g))
  in
  check
    Alcotest.(list (list string))
    "ordered groups"
    [
      [ "\"eu\""; "\"ore\"" ];
      [ "\"eu\""; "\"wood\"" ];
      [ "\"us\""; "NULL" ];
      [ "\"us\""; "\"ore\"" ];
    ]
    keys

let test_null_aggregation_semantics () =
  let db = Database.create ~config () in
  let t =
    Database.create_table db ~name:"t"
      ~cols:
        [
          { Schema.name = "g"; ty = Value.TInt; nullable = false };
          { Schema.name = "x"; ty = Value.TInt; nullable = true };
        ]
  in
  let schema = Database.schema db t in
  let v =
    Database.create_view db ~name:"v" ~group_by:[ "g" ]
      ~aggs:
        [ View_def.Count (Expr.col schema "x"); View_def.Sum (Expr.col schema "x") ]
      ~source:(Database.From (t, None))
      ~strategy:Maintain.Escrow ()
  in
  Database.transact db (fun tx ->
      ignore (Table.insert db tx t [| Value.Int 1; Value.Int 5 |]);
      ignore (Table.insert db tx t [| Value.Int 1; Value.Null |]);
      ignore (Table.insert db tx t [| Value.Int 1; Value.Int 3 |]));
  match Query.view_lookup db None v [| Value.Int 1 |] with
  | Some r ->
      check Alcotest.int "count(*) counts NULL rows" 3 (Value.to_int r.(0));
      check Alcotest.int "count(x) skips NULLs" 2 (Value.to_int r.(1));
      check Alcotest.int "sum skips NULLs" 8 (Value.to_int r.(2))
  | None -> Alcotest.fail "group missing"

(* --- join views --------------------------------------------------------------- *)

let make_join_db () =
  let db = Database.create ~config () in
  let orders =
    Database.create_table db ~name:"orders"
      ~cols:
        [
          { Schema.name = "oid"; ty = Value.TInt; nullable = false };
          { Schema.name = "customer"; ty = Value.TInt; nullable = false };
        ]
  in
  let items =
    Database.create_table db ~name:"items"
      ~cols:
        [
          { Schema.name = "order_id"; ty = Value.TInt; nullable = false };
          { Schema.name = "amount"; ty = Value.TInt; nullable = false };
        ]
  in
  Database.create_index db orders ~col:"oid" ~name:"ix_orders_oid";
  Database.create_index db items ~col:"order_id" ~name:"ix_items_order";
  (db, orders, items)

let join_view db orders items strategy =
  let js = Database.join_schema db orders items in
  Database.create_view db ~name:"cust_totals" ~group_by:[ "customer" ]
    ~aggs:[ View_def.Sum (Expr.col js "amount") ]
    ~source:
      (Database.From_join
         { left = orders; right = items; left_col = "oid"; right_col = "order_id"; where = None })
    ~strategy ()

let test_join_view_maintenance () =
  let db, orders, items = make_join_db () in
  let v = join_view db orders items Maintain.Escrow in
  Database.transact db (fun tx ->
      ignore (Table.insert db tx orders [| Value.Int 1; Value.Int 100 |]);
      ignore (Table.insert db tx orders [| Value.Int 2; Value.Int 100 |]);
      ignore (Table.insert db tx orders [| Value.Int 3; Value.Int 200 |]));
  Database.transact db (fun tx ->
      ignore (Table.insert db tx items [| Value.Int 1; Value.Int 10 |]);
      ignore (Table.insert db tx items [| Value.Int 1; Value.Int 20 |]);
      ignore (Table.insert db tx items [| Value.Int 2; Value.Int 5 |]);
      ignore (Table.insert db tx items [| Value.Int 3; Value.Int 7 |]));
  (match Query.view_lookup db None v [| Value.Int 100 |] with
  | Some r ->
      check Alcotest.int "join rows" 3 (Value.to_int r.(0));
      check Alcotest.int "sum" 35 (Value.to_int r.(1))
  | None -> Alcotest.fail "customer 100 missing");
  Alcotest.(check bool) "V1 join" true (Workload.check_consistency db v);
  (* deleting an order retracts its joined items *)
  let schema = Database.schema db orders in
  Database.transact db (fun tx ->
      ignore
        (Table.delete_where db tx orders
           (Expr.Cmp (Expr.Eq, Expr.col schema "oid", Expr.int 1))));
  (match Query.view_lookup db None v [| Value.Int 100 |] with
  | Some r -> check Alcotest.int "sum after retract" 5 (Value.to_int r.(1))
  | None -> Alcotest.fail "customer 100 missing after delete");
  Alcotest.(check bool) "V1 join after delete" true (Workload.check_consistency db v)

(* --- baseline ------------------------------------------------------------------ *)

let test_on_demand_matches_view () =
  let db, t = make_db () in
  let v = sum_qty db t ~strategy:Maintain.Exclusive () in
  Database.transact db (fun tx ->
      for i = 1 to 50 do
        ignore (Table.insert db tx t (row i (i mod 7) (i * 2)))
      done);
  let baseline = Query.on_demand_aggregate db None (Database.view_def db v) in
  let actual = List.of_seq (Query.view_scan db None v Query.Dirty) in
  check Alcotest.int "same group count" (List.length baseline) (List.length actual);
  List.iter2
    (fun (g1, r1) (g2, r2) ->
      Alcotest.(check bool) "group" true (Row.equal g1 g2);
      Alcotest.(check bool) "aggs" true (Row.equal r1 r2))
    baseline actual

(* --- crash / recovery across the full engine ------------------------------------- *)

let test_crash_preserves_catalog_and_views () =
  let db, t = make_db () in
  let _v = sum_qty db t ~strategy:Maintain.Escrow () in
  Database.transact db (fun tx ->
      for i = 1 to 10 do
        ignore (Table.insert db tx t (row i (i mod 2) 1))
      done);
  let db' = Database.crash db in
  let t' = Database.table db' "sales" in
  let v' = Database.view db' "by_product" in
  check Alcotest.int "rows recovered" 10 (Table.row_count db' t');
  Alcotest.(check bool) "view consistent" true (Workload.check_consistency db' v');
  (* maintenance still works after recovery *)
  Database.transact db' (fun tx -> ignore (Table.insert db' tx t' (row 11 0 5)));
  match Query.view_lookup db' None v' [| Value.Int 0 |] with
  | Some r -> check Alcotest.int "post-recovery sum" 10 (Value.to_int r.(1))
  | None -> Alcotest.fail "group missing after recovery"

let test_crash_rolls_back_inflight_escrow () =
  let db, t = make_db () in
  let v = sum_qty db t ~strategy:Maintain.Escrow () in
  Database.transact db (fun tx -> ignore (Table.insert db tx t (row 1 3 10)));
  (* an in-flight transaction increments the same group, then the log is
     forced (as a page flush would) and the system crashes *)
  let mgr = Database.mgr db in
  let tx = Txn.begin_txn mgr in
  ignore (Table.insert db tx t (row 2 3 100));
  Ivdb_wal.Wal.force (Database.wal db) (Ivdb_wal.Wal.last_lsn (Database.wal db));
  let db' = Database.crash db in
  let v' = Database.view db' "by_product" in
  (match Query.view_lookup db' None v' [| Value.Int 3 |] with
  | Some r ->
      check Alcotest.int "count excludes loser" 1 (Value.to_int r.(0));
      check Alcotest.int "sum excludes loser" 10 (Value.to_int r.(1))
  | None -> Alcotest.fail "group missing");
  ignore v;
  Alcotest.(check bool) "V1 after recovery" true (Workload.check_consistency db' v')

let test_crash_deferred_queue_recovered () =
  let db, t = make_db () in
  let v = sum_qty db t ~strategy:Maintain.Deferred () in
  Database.transact db (fun tx ->
      for i = 1 to 5 do
        ignore (Table.insert db tx t (row i 1 2))
      done);
  check Alcotest.int "pending before crash" 5 (Query.staleness db v);
  let db' = Database.crash db in
  let v' = Database.view db' "by_product" in
  check Alcotest.int "pending after crash" 5 (Query.staleness db' v');
  Database.transact db' (fun tx -> ignore (Query.refresh db' tx v'));
  Alcotest.(check bool) "V1 after refresh" true (Workload.check_consistency db' v')

let test_checkpoint_truncates_log () =
  let db, t = make_db () in
  let _v = sum_qty db t ~strategy:Maintain.Escrow () in
  Database.transact db (fun tx ->
      for i = 1 to 50 do
        ignore (Table.insert db tx t (row i (i mod 3) 1))
      done);
  let before = Ivdb_wal.Wal.record_count (Database.wal db) in
  Database.checkpoint db;
  let after = Ivdb_wal.Wal.record_count (Database.wal db) in
  Alcotest.(check bool) "log shrank" true (after < before / 2);
  Alcotest.(check bool) "first lsn advanced" true
    (Ivdb_wal.Wal.first_lsn (Database.wal db) > 1);
  (* the truncated log still recovers the full state *)
  let db' = Database.crash db in
  check Alcotest.int "rows survive" 50 (Table.row_count db' (Database.table db' "sales"));
  Alcotest.(check bool) "view consistent" true
    (Workload.check_consistency db' (Database.view db' "by_product"))

let test_checkpoint_respects_active_txn () =
  let db, t = make_db () in
  let mgr = Database.mgr db in
  let tx = Txn.begin_txn mgr in
  ignore (Table.insert db tx t (row 1 1 1));
  let first = Txn.first_lsn tx in
  (* lots of committed work after the long-running transaction began *)
  Database.transact db (fun tx2 ->
      for i = 2 to 40 do
        ignore (Table.insert db tx2 t (row i 2 1))
      done);
  Database.checkpoint db;
  Alcotest.(check bool) "truncation held back by active txn" true
    (Ivdb_wal.Wal.first_lsn (Database.wal db) <= first);
  (* the long transaction can still abort: its undo chain is intact *)
  Txn.abort mgr tx;
  check Alcotest.int "rolled back" 39 (Table.row_count db t)

let test_double_crash () =
  let db, t = make_db () in
  let _ = sum_qty db t ~strategy:Maintain.Escrow () in
  Database.transact db (fun tx -> ignore (Table.insert db tx t (row 1 1 1)));
  let db' = Database.crash db in
  let db'' = Database.crash db' in
  check Alcotest.int "rows stable" 1 (Table.row_count db'' (Database.table db'' "sales"))

let () =
  Alcotest.run "db"
    [
      ( "table",
        [
          Alcotest.test_case "crud" `Quick test_table_crud;
          Alcotest.test_case "validation" `Quick test_table_validation;
          Alcotest.test_case "scan where" `Quick test_table_scan_where;
          Alcotest.test_case "update moves row" `Quick test_update_moves_row;
          Alcotest.test_case "secondary index" `Quick test_secondary_index_probe;
          Alcotest.test_case "lock escalation" `Quick test_lock_escalation;
          Alcotest.test_case "escalated lock blocks writers" `Quick
            test_escalated_table_blocks_writers;
        ] );
      ( "index-ranges",
        [ Alcotest.test_case "range scans" `Quick test_index_range_scan ] );
      ( "unique-indexes",
        [
          Alcotest.test_case "enforced + ghost revive" `Quick test_unique_index_enforced;
          Alcotest.test_case "backfill rejects duplicates" `Quick
            test_unique_backfill_rejects_duplicates;
          Alcotest.test_case "blocks on in-flight delete" `Quick
            test_unique_insert_blocks_on_inflight_delete;
        ] );
      ( "views",
        [
          Alcotest.test_case "initial materialization" `Quick
            test_view_initial_materialization;
          Alcotest.test_case "incremental, all strategies" `Quick
            test_view_incremental_all_strategies;
          Alcotest.test_case "lookup and absent groups" `Quick
            test_view_lookup_and_absent_groups;
          Alcotest.test_case "zero-count lifecycle + gc" `Quick
            test_view_zero_count_invisible_then_gc;
          Alcotest.test_case "min/max recompute" `Quick test_view_minmax_recompute;
          Alcotest.test_case "escrow rejects minmax" `Quick
            test_view_escrow_rejects_minmax;
          Alcotest.test_case "where filter" `Quick test_view_where_filter;
          Alcotest.test_case "multi-column / string / NULL groups" `Quick
            test_multi_column_string_groups;
          Alcotest.test_case "NULL aggregation semantics" `Quick
            test_null_aggregation_semantics;
        ] );
      ("join-views", [ Alcotest.test_case "maintenance" `Quick test_join_view_maintenance ]);
      ("baseline", [ Alcotest.test_case "on-demand matches view" `Quick test_on_demand_matches_view ]);
      ( "crash",
        [
          Alcotest.test_case "catalog and views survive" `Quick
            test_crash_preserves_catalog_and_views;
          Alcotest.test_case "in-flight escrow rolled back" `Quick
            test_crash_rolls_back_inflight_escrow;
          Alcotest.test_case "deferred queue recovered" `Quick
            test_crash_deferred_queue_recovered;
          Alcotest.test_case "double crash" `Quick test_double_crash;
          Alcotest.test_case "checkpoint truncates log" `Quick
            test_checkpoint_truncates_log;
          Alcotest.test_case "truncation respects active txn" `Quick
            test_checkpoint_respects_active_txn;
        ] );
    ]
