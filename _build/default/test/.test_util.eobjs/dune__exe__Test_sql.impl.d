test/test_sql.ml: Alcotest Array Ivdb Ivdb_relation Ivdb_sched Ivdb_sql Ivdb_util List String
