test/test_txn.ml: Alcotest Ivdb_btree Ivdb_lock Ivdb_recovery Ivdb_sched Ivdb_storage Ivdb_test_support Ivdb_txn Ivdb_util Ivdb_wal List Printf
