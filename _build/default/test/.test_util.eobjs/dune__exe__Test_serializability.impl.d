test/test_serializability.ml: Alcotest Array Hashtbl Ivdb Ivdb_core Ivdb_relation Ivdb_sched Ivdb_txn Ivdb_util List Printf
