test/test_lock.ml: Alcotest Ivdb_lock Ivdb_sched Ivdb_util List
