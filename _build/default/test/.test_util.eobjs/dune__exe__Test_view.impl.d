test/test_view.ml: Alcotest Array Ivdb Ivdb_core Ivdb_relation Ivdb_sched Ivdb_txn Ivdb_util Ivdb_wal List Printf Seq
