test/test_wal.ml: Alcotest Format Ivdb_storage Ivdb_util Ivdb_wal List QCheck QCheck_alcotest String
