test/test_relation.ml: Alcotest Array Format Ivdb_relation List QCheck QCheck_alcotest Result String
