test/test_crash_props.ml: Alcotest Array Ivdb Ivdb_core Ivdb_relation Ivdb_txn Ivdb_wal QCheck QCheck_alcotest
