test/test_core.ml: Alcotest Array Ivdb_core Ivdb_relation List Option QCheck QCheck_alcotest String
