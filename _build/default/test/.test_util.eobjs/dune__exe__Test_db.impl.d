test/test_db.ml: Alcotest Array Ivdb Ivdb_core Ivdb_lock Ivdb_relation Ivdb_sched Ivdb_txn Ivdb_util Ivdb_wal List Option Printf Seq
