test/test_exec.ml: Alcotest Array Ivdb_btree Ivdb_exec Ivdb_relation Ivdb_test_support Ivdb_txn Ivdb_util List QCheck QCheck_alcotest
