test/test_sched.ml: Alcotest Ivdb_sched List
