test/test_btree.ml: Alcotest Array Char Hashtbl Ivdb_btree Ivdb_recovery Ivdb_relation Ivdb_test_support Ivdb_txn Ivdb_util Ivdb_wal List Map Option Printf QCheck QCheck_alcotest String
