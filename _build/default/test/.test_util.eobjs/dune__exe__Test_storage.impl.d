test/test_storage.ml: Alcotest Bytes Char Hashtbl Ivdb_storage Ivdb_util List QCheck QCheck_alcotest String
