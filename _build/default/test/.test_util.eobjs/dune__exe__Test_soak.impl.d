test/test_soak.ml: Alcotest Ivdb Ivdb_core Ivdb_relation Ivdb_sql Ivdb_wal List Printf
