test/test_util.ml: Alcotest Array Bytes Fun Ivdb_util List QCheck QCheck_alcotest
