test/test_crash_props.mli:
