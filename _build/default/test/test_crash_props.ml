(* V3 as a property: whatever the interleaving, a crash at a stable-log
   point recovers to a state where every indexed view equals a from-scratch
   recomputation, and the engine keeps working afterwards. *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Workload = Ivdb.Workload
module Maintain = Ivdb_core.Maintain
module Txn = Ivdb_txn.Txn
module Wal = Ivdb_wal.Wal
module Value = Ivdb_relation.Value

let qtest = QCheck_alcotest.to_alcotest

let spec_of seed strategy =
  {
    Workload.default with
    seed;
    strategy;
    mpl = 4;
    txns_per_worker = 15;
    ops_per_txn = 3;
    delete_fraction = 0.25;
    n_groups = 8;
    theta = 0.8;
    initial_rows = 30;
  }

let strategies = [| Maintain.Exclusive; Maintain.Escrow; Maintain.Deferred |]

let consistent_after db v =
  (match Database.view_strategy db v with
  | Maintain.Deferred -> Database.transact db (fun tx -> ignore (Query.refresh db tx v))
  | Maintain.Exclusive | Maintain.Escrow -> ());
  Workload.check_consistency db v

(* crash with the full log forced (in-flight txns become losers) *)
let prop_crash_forced =
  QCheck.Test.make ~name:"crash with forced log: V1 after recovery" ~count:15
    QCheck.(int_bound 10000)
    (fun seed ->
      let strategy = strategies.(seed mod 3) in
      let spec = spec_of seed strategy in
      let db, sales, views = Workload.setup spec in
      let _ = Workload.run_on db sales views spec in
      (* leave losers in flight *)
      let mgr = Database.mgr db in
      (* distinct groups per loser: they run sequentially outside the
         scheduler, so they must not block on one another *)
      for k = 1 to 3 do
        let tx = Txn.begin_txn mgr in
        ignore
          (Table.insert db tx sales
             [| Value.Int (-900 - k); Value.Int (900 + k); Value.Int 5; Value.Float 1. |])
      done;
      Wal.force (Database.wal db) (Wal.last_lsn (Database.wal db));
      let db' = Database.crash db in
      let v' = Database.view db' "sales_by_product_0" in
      consistent_after db' v')

(* crash losing the unforced tail (only committed work survives) *)
let prop_crash_unforced_tail =
  QCheck.Test.make ~name:"crash losing unforced tail: V1 after recovery" ~count:15
    QCheck.(int_bound 10000)
    (fun seed ->
      let strategy = strategies.(seed mod 3) in
      let spec = spec_of (seed + 77) strategy in
      let db, sales, views = Workload.setup spec in
      let _ = Workload.run_on db sales views spec in
      (* unforced in-flight work simply evaporates *)
      let mgr = Database.mgr db in
      let tx = Txn.begin_txn mgr in
      ignore
        (Table.insert db tx sales
           [| Value.Int (-999); Value.Int 1; Value.Int 5; Value.Float 1. |]);
      let db' = Database.crash db in
      let v' = Database.view db' "sales_by_product_0" in
      consistent_after db' v')

(* double crash with work in between *)
let prop_crash_twice =
  QCheck.Test.make ~name:"crash, work, crash again: still consistent" ~count:10
    QCheck.(int_bound 10000)
    (fun seed ->
      let strategy = strategies.(seed mod 3) in
      let spec = spec_of (seed + 313) strategy in
      let db, sales, views = Workload.setup spec in
      let _ = Workload.run_on db sales views spec in
      let db' = Database.crash db in
      let sales' = Database.table db' "sales" in
      ignore (Database.gc db');
      Database.transact db' (fun tx ->
          for k = 1 to 5 do
            ignore
              (Table.insert db' tx sales'
                 [| Value.Int (1000 + k); Value.Int 2; Value.Int 1; Value.Float 2. |])
          done);
      let db'' = Database.crash db' in
      let v'' = Database.view db'' "sales_by_product_0" in
      consistent_after db'' v'')

let () =
  Alcotest.run "crash-props"
    [
      ( "properties",
        [ qtest prop_crash_forced; qtest prop_crash_unforced_tail; qtest prop_crash_twice ]
      );
    ]
