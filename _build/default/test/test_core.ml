(* Unit tests for the core aggregate delta algebra, view definitions and
   the in-flight delta registry — the paper's arithmetic, isolated. *)

module View_def = Ivdb_core.View_def
module Aggregate = Ivdb_core.Aggregate
module Inflight = Ivdb_core.Inflight
module Value = Ivdb_relation.Value
module Expr = Ivdb_relation.Expr
module Row = Ivdb_relation.Row

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* source rows: (group, x nullable, y float) *)
let def ?(aggs = [| View_def.Sum (Expr.Col 1) |]) ?where () =
  {
    View_def.name = "t";
    group_cols = [| 0 |];
    aggs;
    source = View_def.Single { table = 1; where };
  }

let row g x = [| Value.Int g; x; Value.Float 1.5 |]

(* --- View_def --------------------------------------------------------------- *)

let test_view_def_basics () =
  let d = def () in
  Alcotest.(check bool) "escrow ok" true (View_def.escrow_compatible d);
  let dm = def ~aggs:[| View_def.Min (Expr.Col 1) |] () in
  Alcotest.(check bool) "min not escrow" false (View_def.escrow_compatible dm);
  check Alcotest.int "stored arity" 2 (View_def.stored_arity d);
  check Alcotest.(list int) "tables" [ 1 ] (View_def.tables_of d);
  (* group keys are the memcomparable encoding of the group columns *)
  Alcotest.(check bool) "group key ordering" true
    (String.compare
       (View_def.group_key d (row 1 (Value.Int 0)))
       (View_def.group_key d (row 2 (Value.Int 0)))
    < 0)

(* --- delta computation --------------------------------------------------------- *)

let test_delta_signs () =
  let d = def () in
  let key_pos, plus = Option.get (Aggregate.delta_of_row d ~sign:1 (row 3 (Value.Int 7))) in
  let key_neg, minus = Option.get (Aggregate.delta_of_row d ~sign:(-1) (row 3 (Value.Int 7))) in
  check Alcotest.string "same group key" key_pos key_neg;
  check Alcotest.int "insert count" 1 plus.Aggregate.dcount;
  check Alcotest.int "delete count" (-1) minus.Aggregate.dcount;
  (match (plus.Aggregate.daggs.(0), minus.Aggregate.daggs.(0)) with
  | Aggregate.Add (Value.Int 7), Aggregate.Add (Value.Int -7) -> ()
  | _ -> Alcotest.fail "sum deltas wrong");
  (* negation is the inverse *)
  Alcotest.(check bool) "negate" true (Aggregate.negate plus = minus)

let test_delta_where_filter () =
  let pred = Expr.Cmp (Expr.Gt, Expr.Col 1, Expr.int 5) in
  let d = def ~where:pred () in
  Alcotest.(check bool) "rejected row contributes nothing" true
    (Aggregate.delta_of_row d ~sign:1 (row 1 (Value.Int 3)) = None);
  Alcotest.(check bool) "accepted row contributes" true
    (Aggregate.delta_of_row d ~sign:1 (row 1 (Value.Int 9)) <> None)

let test_null_deltas () =
  let d =
    def ~aggs:[| View_def.Count (Expr.Col 1); View_def.Sum (Expr.Col 1) |] ()
  in
  let _, delta = Option.get (Aggregate.delta_of_row d ~sign:1 (row 1 Value.Null)) in
  (* NULL: row counted by the star count, ignored by COUNT(x) and SUM(x) *)
  check Alcotest.int "count(*)" 1 delta.Aggregate.dcount;
  (match delta.Aggregate.daggs with
  | [| Aggregate.Add (Value.Int 0); Aggregate.Add (Value.Int 0) |] -> ()
  | _ -> Alcotest.fail "NULL handling wrong")

let test_apply_and_zero () =
  let d = def () in
  let z = Aggregate.zero_row d in
  check Alcotest.int "zero count" 0 (Aggregate.count_of z);
  let _, delta = Option.get (Aggregate.delta_of_row d ~sign:1 (row 1 (Value.Int 4))) in
  (match Aggregate.apply d z delta with
  | `Ok r ->
      check Alcotest.int "count" 1 (Aggregate.count_of r);
      check Alcotest.int "sum" 4 (Value.to_int r.(1))
  | `Recompute -> Alcotest.fail "additive never recomputes");
  (* shape mismatch is rejected *)
  let bad = { delta with Aggregate.daggs = [||] } in
  Alcotest.(check bool) "shape mismatch" true
    (match Aggregate.apply d z bad with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_minmax_retire () =
  let d = def ~aggs:[| View_def.Min (Expr.Col 1) |] () in
  let stored = [| Value.Int 2; Value.Int 5 |] in
  (* retiring a non-extremum is absorbed *)
  let retire v = { Aggregate.dcount = -1; daggs = [| Aggregate.Retire v |] } in
  (match Aggregate.apply d stored (retire (Value.Int 9)) with
  | `Ok r -> check Alcotest.int "min unchanged" 5 (Value.to_int r.(1))
  | `Recompute -> Alcotest.fail "non-extremum should not recompute");
  (* retiring the minimum forces recomputation *)
  (match Aggregate.apply d stored (retire (Value.Int 5)) with
  | `Recompute -> ()
  | `Ok _ -> Alcotest.fail "extremum retirement must recompute");
  (* considering a smaller candidate lowers the minimum *)
  let consider v = { Aggregate.dcount = 1; daggs = [| Aggregate.Consider v |] } in
  match Aggregate.apply d stored (consider (Value.Int 1)) with
  | `Ok r -> check Alcotest.int "new min" 1 (Value.to_int r.(1))
  | `Recompute -> Alcotest.fail "consider never recomputes"

let test_combine () =
  let d = def () in
  let delta v =
    snd (Option.get (Aggregate.delta_of_row d ~sign:1 (row 1 (Value.Int v))))
  in
  (match Aggregate.combine (delta 3) (delta 4) with
  | Some c -> (
      check Alcotest.int "count" 2 c.Aggregate.dcount;
      match c.Aggregate.daggs.(0) with
      | Aggregate.Add (Value.Int 7) -> ()
      | _ -> Alcotest.fail "sum combine")
  | None -> Alcotest.fail "additive should combine");
  let non_add = { Aggregate.dcount = 1; daggs = [| Aggregate.Consider (Value.Int 1) |] } in
  Alcotest.(check bool) "non-additive refuses" true
    (Aggregate.combine (delta 1) non_add = None)

let prop_delta_codec_roundtrip =
  QCheck.Test.make ~name:"additive delta encode/decode roundtrip" ~count:300
    QCheck.(pair small_signed_int (list_of_size (QCheck.Gen.int_bound 4) small_signed_int))
    (fun (c, sums) ->
      let delta =
        {
          Aggregate.dcount = c;
          daggs = Array.of_list (List.map (fun v -> Aggregate.Add (Value.Int v)) sums);
        }
      in
      Aggregate.decode (Aggregate.encode delta) = delta)

let prop_apply_negate_identity =
  QCheck.Test.make ~name:"apply then apply-negated restores" ~count:300
    QCheck.(pair small_signed_int small_signed_int)
    (fun (a, b) ->
      let d = def () in
      let base = [| Value.Int (abs a); Value.Int b |] in
      let delta =
        snd (Option.get (Aggregate.delta_of_row d ~sign:1 (row 1 (Value.Int a))))
      in
      match Aggregate.apply d base delta with
      | `Ok mid -> (
          match Aggregate.apply d mid (Aggregate.negate delta) with
          | `Ok r -> Row.equal r base
          | `Recompute -> false)
      | `Recompute -> false)

let test_fold_rows () =
  let d = def () in
  let rows = List.to_seq [ row 1 (Value.Int 2); row 1 (Value.Int 5); row 1 Value.Null ] in
  let r = Aggregate.fold_rows d rows in
  check Alcotest.int "count" 3 (Aggregate.count_of r);
  check Alcotest.int "sum skips null" 7 (Value.to_int r.(1))

(* --- Inflight registry ----------------------------------------------------------- *)

let test_inflight_registry () =
  let reg = Inflight.create () in
  let delta c = { Aggregate.dcount = c; daggs = [| Aggregate.Add (Value.Int c) |] } in
  Inflight.record reg ~txn:1 ~vid:10 ~key:"a" (delta 1);
  Inflight.record reg ~txn:2 ~vid:10 ~key:"a" (delta 2);
  Inflight.record reg ~txn:1 ~vid:10 ~key:"b" (delta 3);
  check Alcotest.int "two pending on a" 2 (List.length (Inflight.pending reg ~vid:10 ~key:"a"));
  check Alcotest.int "total" 3 (Inflight.pending_count reg);
  Inflight.drop_txn reg ~txn:1;
  check Alcotest.int "one left on a" 1 (List.length (Inflight.pending reg ~vid:10 ~key:"a"));
  check Alcotest.int "b cleared" 0 (List.length (Inflight.pending reg ~vid:10 ~key:"b"));
  Inflight.drop_txn reg ~txn:2;
  check Alcotest.int "empty" 0 (Inflight.pending_count reg)

let test_inflight_bounds_math () =
  let d = def () in
  let stored = [| Value.Int 3; Value.Int 30 |] in
  let delta c s = { Aggregate.dcount = c; daggs = [| Aggregate.Add (Value.Int s) |] } in
  let lo, hi = Inflight.bounds d stored [ delta 1 10; delta (-1) (-5) ] in
  (* stored already includes both deltas; outcomes over abort subsets *)
  check Alcotest.int "lo sum" 20 (Value.to_int lo.(1));
  check Alcotest.int "hi sum" 35 (Value.to_int hi.(1));
  check Alcotest.int "lo count" 2 (Value.to_int lo.(0));
  check Alcotest.int "hi count" 4 (Value.to_int hi.(0));
  (* no pending: point interval *)
  let lo, hi = Inflight.bounds d stored [] in
  Alcotest.(check bool) "point" true (Row.equal lo stored && Row.equal hi stored)

let () =
  Alcotest.run "core"
    [
      ("view-def", [ Alcotest.test_case "basics" `Quick test_view_def_basics ]);
      ( "deltas",
        [
          Alcotest.test_case "signs and negate" `Quick test_delta_signs;
          Alcotest.test_case "where filter" `Quick test_delta_where_filter;
          Alcotest.test_case "NULL handling" `Quick test_null_deltas;
          Alcotest.test_case "apply and zero" `Quick test_apply_and_zero;
          Alcotest.test_case "min/max retire" `Quick test_minmax_retire;
          Alcotest.test_case "combine" `Quick test_combine;
          Alcotest.test_case "fold_rows" `Quick test_fold_rows;
          qtest prop_delta_codec_roundtrip;
          qtest prop_apply_negate_identity;
        ] );
      ( "inflight",
        [
          Alcotest.test_case "registry" `Quick test_inflight_registry;
          Alcotest.test_case "bounds math" `Quick test_inflight_bounds_math;
        ] );
    ]
