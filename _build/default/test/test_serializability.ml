(* V4: committed histories are conflict-serializable.

   A concurrent banking workload is run through wrappers that record every
   logical operation (read / write / increment) with a global sequence
   number; only committed attempts contribute. The conflict graph is then
   checked for acyclicity.

   The increment kind encodes the paper's theory: escrow increments
   commute, so I-I pairs on the same item do NOT conflict (they take
   compatible E locks and their order is immaterial), while I-R and I-W
   pairs do. Treating increments as plain writes would be the classical —
   and here too strong — model. *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Sched = Ivdb_sched.Sched
module Txn = Ivdb_txn.Txn
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain
module Rng = Ivdb_util.Rng



type kind = R | W | I

type event = { seq : int; etxn : int; kind : kind; item : string }

let conflicts a b =
  a.item = b.item
  && a.etxn <> b.etxn
  &&
  match (a.kind, b.kind) with
  | R, R -> false
  | I, I -> false (* increments commute *)
  | _ -> true

(* Edges t1 -> t2 for conflicting ops with a.seq < b.seq; cycle check by
   depth-first search. *)
let acyclic events =
  let events = List.sort (fun a b -> compare a.seq b.seq) events in
  let edges = Hashtbl.create 64 in
  let nodes = Hashtbl.create 64 in
  let rec pairs = function
    | [] -> ()
    | e :: rest ->
        Hashtbl.replace nodes e.etxn ();
        List.iter
          (fun e' -> if conflicts e e' then Hashtbl.replace edges (e.etxn, e'.etxn) ())
          rest;
        pairs rest
  in
  pairs events;
  let succs t =
    Hashtbl.fold (fun (a, b) () acc -> if a = t then b :: acc else acc) edges []
  in
  let color = Hashtbl.create 64 in
  let rec dfs t =
    match Hashtbl.find_opt color t with
    | Some `Done -> true
    | Some `Active -> false (* back edge: cycle *)
    | None ->
        Hashtbl.replace color t `Active;
        let ok = List.for_all dfs (succs t) in
        Hashtbl.replace color t `Done;
        ok
  in
  Hashtbl.fold (fun t () ok -> ok && dfs t) nodes true

(* --- the instrumented workload ---------------------------------------------- *)

let run_history ~seed ~strategy =
  let config = { Database.default_config with read_cost = 0; write_cost = 0 } in
  let db = Database.create ~config () in
  let accounts =
    Database.create_table db ~name:"accounts"
      ~cols:
        [
          { Schema.name = "acct"; ty = Value.TInt; nullable = false };
          { Schema.name = "branch"; ty = Value.TInt; nullable = false };
          { Schema.name = "balance"; ty = Value.TInt; nullable = false };
        ]
  in
  Database.create_index db accounts ~col:"acct" ~name:"ix_acct";
  let schema = Database.schema db accounts in
  let totals =
    Database.create_view db ~name:"totals" ~group_by:[ "branch" ]
      ~aggs:[ View_def.Sum (Expr.col schema "balance") ]
      ~source:(Database.From (accounts, None))
      ~strategy ()
  in
  let n_accounts = 8 and n_branches = 3 in
  Database.transact db (fun tx ->
      for a = 0 to n_accounts - 1 do
        ignore
          (Table.insert db tx accounts
             [| Value.Int a; Value.Int (a mod n_branches); Value.Int 100 |])
      done);
  let seq = ref 0 in
  let history = ref [] in
  let next_seq () =
    incr seq;
    !seq
  in
  Sched.run ~seed (fun () ->
      for w = 1 to 6 do
        ignore
          (Sched.spawn (fun () ->
               let rng = Rng.create ((seed * 131) + w) in
               for _ = 1 to 12 do
                 (try
                    (* buffer this attempt's ops; keep them only on commit *)
                    let attempt = ref [] in
                    let note kind item =
                      attempt :=
                        { seq = next_seq (); etxn = 0; kind; item } :: !attempt
                    in
                    let tid = ref 0 in
                    Database.transact db ~retries:0 (fun tx ->
                        tid := Txn.id tx;
                        (* ops are recorded immediately AFTER they complete,
                           while their locks are still held: for conflicting
                           (lock-ordered) operations the sequence numbers
                           then reflect the true execution order *)
                        if Rng.float rng < 0.3 then begin
                          (* reader: branch total *)
                          let b = Rng.int rng n_branches in
                          ignore (Query.view_lookup db (Some tx) totals [| Value.Int b |]);
                          note R (Printf.sprintf "group:%d" b);
                          Sched.yield ()
                        end
                        else begin
                          (* deposit: read-modify-write one account *)
                          let a = Rng.int rng n_accounts in
                          match Table.find db (Some tx) accounts ~col:"acct" (Value.Int a) with
                          | [ (rid, row) ] ->
                              note R (Printf.sprintf "acct:%d" a);
                              Sched.yield ();
                              let bal = Value.to_int row.(2) + 1 in
                              ignore
                                (Table.update db tx accounts rid
                                   [| row.(0); row.(1); Value.Int bal |]);
                              note W (Printf.sprintf "acct:%d" a);
                              note I
                                (Printf.sprintf "group:%d" (Value.to_int row.(1)));
                              Sched.yield ()
                          | _ -> failwith "account missing"
                        end);
                    history :=
                      List.map (fun e -> { e with etxn = !tid }) !attempt @ !history
                  with Txn.Conflict _ -> ());
                 Sched.yield ()
               done))
      done);
  (db, totals, !history)

let test_histories_serializable () =
  List.iter
    (fun strategy ->
      for seed = 1 to 5 do
        let db, totals, history = run_history ~seed ~strategy in
        Alcotest.(check bool)
          (Printf.sprintf "conflict graph acyclic (%s, seed %d)"
             (Maintain.strategy_to_string strategy) seed)
          true (acyclic history);
        Alcotest.(check bool) "V1 too" true (Ivdb.Workload.check_consistency db totals)
      done)
    [ Maintain.Exclusive; Maintain.Escrow ]

(* The checker itself must be able to see cycles. *)
let test_checker_detects_cycles () =
  let h =
    [
      { seq = 1; etxn = 1; kind = R; item = "x" };
      { seq = 2; etxn = 2; kind = W; item = "x" };
      (* t1 -> t2 on x *)
      { seq = 3; etxn = 2; kind = R; item = "y" };
      { seq = 4; etxn = 1; kind = W; item = "y" };
      (* t2 -> t1 on y: cycle *)
    ]
  in
  Alcotest.(check bool) "cycle found" false (acyclic h)

let test_increments_commute_in_checker () =
  let h =
    [
      { seq = 1; etxn = 1; kind = I; item = "g" };
      { seq = 2; etxn = 2; kind = I; item = "g" };
      { seq = 3; etxn = 2; kind = W; item = "a" };
      { seq = 4; etxn = 1; kind = R; item = "a" };
      (* with I-I conflicting this would be a cycle; increments commute, so
         the only edge is t2 -> t1 on a *)
    ]
  in
  Alcotest.(check bool) "no cycle thanks to commutativity" true (acyclic h);
  (* sanity: replacing I by W does create the cycle *)
  let h' = List.map (fun e -> if e.kind = I then { e with kind = W } else e) h in
  Alcotest.(check bool) "naive model rejects it" false (acyclic h')

let () =
  Alcotest.run "serializability"
    [
      ( "checker",
        [
          Alcotest.test_case "detects cycles" `Quick test_checker_detects_cycles;
          Alcotest.test_case "increment commutativity" `Quick
            test_increments_commute_in_checker;
        ] );
      ( "histories",
        [
          Alcotest.test_case "concurrent histories are serializable" `Quick
            test_histories_serializable;
        ] );
    ]
