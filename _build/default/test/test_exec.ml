module Iter = Ivdb_exec.Iter
module Row = Ivdb_relation.Row
module Value = Ivdb_relation.Value
module Expr = Ivdb_relation.Expr
module Key_codec = Ivdb_relation.Key_codec
module Btree = Ivdb_btree.Btree
module Txn = Ivdb_txn.Txn
module Harness = Ivdb_test_support.Harness
module Rng = Ivdb_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let r2 a b = [| Value.Int a; Value.Int b |]
let rows l = List.to_seq (List.map (fun (a, b) -> r2 a b) l)
let ints seq = List.map (fun r -> (Value.to_int r.(0), Value.to_int r.(1))) (List.of_seq seq)

let test_filter_project_map_limit () =
  let input () = rows [ (1, 10); (2, 20); (3, 30); (4, 40) ] in
  let big = Expr.Cmp (Expr.Ge, Expr.Col 1, Expr.int 20) in
  check
    Alcotest.(list (pair int int))
    "filter" [ (2, 20); (3, 30); (4, 40) ]
    (ints (Iter.filter big (input ())));
  let projected = Iter.project [| 1 |] (input ()) in
  check Alcotest.int "project arity" 1 (Array.length (List.hd (Iter.to_list projected)));
  check
    Alcotest.(list (pair int int))
    "map" [ (2, 10); (3, 20); (4, 30); (5, 40) ]
    (ints (Iter.map (fun r -> r2 (Value.to_int r.(0) + 1) (Value.to_int r.(1))) (input ())));
  check Alcotest.int "limit" 2 (Iter.count (Iter.limit 2 (input ())))

let test_nested_loop_join () =
  let outer = rows [ (1, 0); (2, 0) ] in
  let inner () = rows [ (1, 100); (2, 200); (3, 300) ] in
  (* join on outer.col0 = inner.col0 (inner cols shifted by 2) *)
  let on = Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Col 2) in
  let out = Iter.to_list (Iter.nested_loop_join ~on outer inner) in
  check Alcotest.int "matches" 2 (List.length out);
  check Alcotest.int "joined arity" 4 (Array.length (List.hd out))

let test_hash_join () =
  let left = rows [ (1, 11); (2, 22); (2, 23); (9, 99) ] in
  let right = rows [ (1, 100); (2, 200) ] in
  let out =
    Iter.to_list (Iter.hash_join ~left_key:[| 0 |] ~right_key:[| 0 |] left right)
  in
  (* 1 match for key 1, two left dups for key 2, none for 9 *)
  check Alcotest.int "matches" 3 (List.length out);
  List.iter
    (fun r -> check Alcotest.int "keys equal" (Value.to_int r.(0)) (Value.to_int r.(2)))
    out

let test_merge_join_matches_hash_join () =
  let rng = Rng.create 7 in
  for _ = 1 to 50 do
    let mk n = List.init n (fun _ -> (Rng.int rng 8, Rng.int rng 100)) in
    let l = List.sort compare (mk 20) and r = List.sort compare (mk 15) in
    let left () = rows l and right () = rows r in
    let normalize out =
      List.sort compare
        (List.map
           (fun row -> Array.to_list (Array.map (fun v -> Value.to_int v) row))
           (Iter.to_list out))
    in
    let mj =
      normalize (Iter.merge_join ~left_key:[| 0 |] ~right_key:[| 0 |] (left ()) (right ()))
    in
    let hj =
      normalize (Iter.hash_join ~left_key:[| 0 |] ~right_key:[| 0 |] (left ()) (right ()))
    in
    assert (mj = hj)
  done

let test_distinct () =
  let input = rows [ (1, 1); (2, 2); (1, 1); (3, 3); (2, 2) ] in
  check
    Alcotest.(list (pair int int))
    "dedup" [ (1, 1); (2, 2); (3, 3) ]
    (ints (Iter.distinct input))

let test_union_all () =
  let a = rows [ (1, 1) ] and b = rows [ (2, 2) ] and c = rows [] in
  check Alcotest.int "concat" 2 (Iter.count (Iter.union_all [ a; c; b ]))

let test_sort_and_top_k () =
  let input () = rows [ (3, 1); (1, 2); (2, 3); (5, 4); (4, 5) ] in
  check
    Alcotest.(list (pair int int))
    "sort asc" [ (1, 2); (2, 3); (3, 1); (4, 5); (5, 4) ]
    (ints (Iter.sort ~by:[| 0 |] (input ())));
  check
    Alcotest.(list (pair int int))
    "top 2 desc" [ (5, 4); (4, 5) ]
    (ints (Iter.top_k ~by:[| 0 |] ~desc:true 2 (input ())))

let test_sort_stability () =
  let input = rows [ (1, 3); (1, 1); (1, 2) ] in
  check
    Alcotest.(list (pair int int))
    "stable" [ (1, 3); (1, 1); (1, 2) ]
    (ints (Iter.sort ~by:[| 0 |] input))

(* --- index_scan over a real B-tree ------------------------------------------- *)

let make_tree_with n =
  let h = Harness.make ~pool_capacity:128 () in
  let t = Btree.create h.Harness.mgr ~index_id:1 in
  let tx = Txn.begin_txn h.Harness.mgr in
  for i = 1 to n do
    Btree.insert tx t
      ~key:(Key_codec.encode [| Value.Int i |])
      ~value:(Row.encode (r2 i (i * 10)))
  done;
  Txn.commit h.Harness.mgr tx;
  t

let decode _k v = Row.decode v

let test_index_scan_range () =
  let t = make_tree_with 100 in
  let lo = Key_codec.encode [| Value.Int 10 |] in
  let hi = Key_codec.encode [| Value.Int 20 |] in
  let out = Iter.to_list (Iter.index_scan t ~lo ~hi ~decode ()) in
  check Alcotest.int "half-open range" 10 (List.length out);
  check Alcotest.int "first" 10 (Value.to_int (List.hd out).(0));
  (* unbounded *)
  check Alcotest.int "full scan" 100 (Iter.count (Iter.index_scan t ~decode ()))

let test_index_scan_lazy () =
  let t = make_tree_with 100 in
  let touched = ref 0 in
  let scan =
    Iter.index_scan t ~on_entry:(fun _ _ -> incr touched) ~decode ()
  in
  check Alcotest.int "nothing touched before demand" 0 !touched;
  ignore (Iter.to_list (Iter.limit 5 scan));
  check Alcotest.int "only demanded entries touched" 5 !touched

let prop_pipeline_equivalence =
  (* filter-then-sort equals sort-then-filter *)
  QCheck.Test.make ~name:"operator commutation" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let data = List.init 40 (fun _ -> (Rng.int rng 20, Rng.int rng 100)) in
      let pred = Expr.Cmp (Expr.Lt, Expr.Col 0, Expr.int 10) in
      let a = ints (Iter.sort ~by:[| 0 |] (Iter.filter pred (rows data))) in
      let b = ints (Iter.filter pred (Iter.sort ~by:[| 0 |] (rows data))) in
      a = b)

let () =
  Alcotest.run "exec"
    [
      ( "basics",
        [
          Alcotest.test_case "filter/project/map/limit" `Quick
            test_filter_project_map_limit;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "union_all" `Quick test_union_all;
          Alcotest.test_case "sort and top_k" `Quick test_sort_and_top_k;
          Alcotest.test_case "sort stability" `Quick test_sort_stability;
        ] );
      ( "joins",
        [
          Alcotest.test_case "nested loop" `Quick test_nested_loop_join;
          Alcotest.test_case "hash join" `Quick test_hash_join;
          Alcotest.test_case "merge join = hash join" `Quick
            test_merge_join_matches_hash_join;
        ] );
      ( "index-scan",
        [
          Alcotest.test_case "range" `Quick test_index_scan_range;
          Alcotest.test_case "lazy" `Quick test_index_scan_lazy;
        ] );
      ("properties", [ qtest prop_pipeline_equivalence ]);
    ]
