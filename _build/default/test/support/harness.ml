(* Shared wiring for engine-level tests: a disk, a pool honouring the WAL
   rule, a log, a lock manager, and a transaction manager. *)

module Metrics = Ivdb_util.Metrics
module Disk = Ivdb_storage.Disk
module Bufpool = Ivdb_storage.Bufpool
module Wal = Ivdb_wal.Wal
module Lock_mgr = Ivdb_lock.Lock_mgr
module Txn = Ivdb_txn.Txn

type t = {
  metrics : Metrics.t;
  disk : Disk.t;
  pool : Bufpool.t;
  wal : Wal.t;
  locks : Lock_mgr.t;
  mgr : Txn.mgr;
}

let wire ~metrics ~disk ~pool_capacity =
  let pool = Bufpool.create disk ~capacity:pool_capacity metrics in
  let wal = Wal.create metrics in
  Bufpool.set_wal_force pool (fun lsn -> Wal.force wal (Int64.to_int lsn));
  let locks = Lock_mgr.create metrics in
  let mgr = Txn.create_mgr ~wal ~locks ~pool metrics in
  { metrics; disk; pool; wal; locks; mgr }

let make ?(pool_capacity = 64) ?(read_cost = 0) ?(write_cost = 0) () =
  let metrics = Metrics.create () in
  let disk = Disk.create ~read_cost ~write_cost metrics in
  wire ~metrics ~disk ~pool_capacity

(* Simulated crash: keep the disk and the stable log, lose the pool. *)
let crash t ~pool_capacity =
  let metrics = Metrics.create () in
  let pool = Bufpool.create t.disk ~capacity:pool_capacity metrics in
  let wal = Wal.crash t.wal metrics in
  Bufpool.set_wal_force pool (fun lsn -> Wal.force wal (Int64.to_int lsn));
  let locks = Lock_mgr.create metrics in
  let mgr = Txn.create_mgr ~wal ~locks ~pool metrics in
  { metrics; disk = t.disk; pool; wal; locks; mgr }
