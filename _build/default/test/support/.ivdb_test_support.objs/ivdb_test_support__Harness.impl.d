test/support/harness.ml: Int64 Ivdb_lock Ivdb_storage Ivdb_txn Ivdb_util Ivdb_wal
