module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Row = Ivdb_relation.Row
module Key_codec = Ivdb_relation.Key_codec
module Expr = Ivdb_relation.Expr

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Value --------------------------------------------------------------- *)

let test_value_compare () =
  Alcotest.(check bool) "null smallest" true (Value.compare Value.Null (Value.Int min_int) < 0);
  Alcotest.(check bool) "int/float mix" true (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
  Alcotest.(check bool) "strings" true (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  Alcotest.check_raises "cross-type" (Invalid_argument "Value.compare: incompatible types")
    (fun () -> ignore (Value.compare (Value.Int 1) (Value.Str "x")))

let test_value_arith () =
  check Alcotest.int "int add" 7 (Value.to_int (Value.add (Value.Int 3) (Value.Int 4)));
  Alcotest.(check bool) "null absorbs" true (Value.add Value.Null (Value.Int 1) = Value.Null);
  check (Alcotest.float 1e-9) "mixed add" 4.5 (Value.to_float (Value.add (Value.Int 2) (Value.Float 2.5)));
  check Alcotest.int "neg" (-3) (Value.to_int (Value.neg (Value.Int 3)))

(* --- Schema -------------------------------------------------------------- *)

let sample_schema =
  Schema.make
    [
      { Schema.name = "id"; ty = Value.TInt; nullable = false };
      { Schema.name = "name"; ty = Value.TStr; nullable = false };
      { Schema.name = "score"; ty = Value.TFloat; nullable = true };
    ]

let test_schema_basic () =
  check Alcotest.int "arity" 3 (Schema.arity sample_schema);
  check Alcotest.int "index_of" 1 (Schema.index_of sample_schema "name");
  Alcotest.check_raises "dup column" (Invalid_argument "Schema.make: duplicate column a")
    (fun () ->
      ignore
        (Schema.make
           [
             { Schema.name = "a"; ty = Value.TInt; nullable = false };
             { Schema.name = "a"; ty = Value.TInt; nullable = false };
           ]))

let test_schema_validate () =
  let ok = Schema.validate sample_schema [| Value.Int 1; Value.Str "x"; Value.Null |] in
  Alcotest.(check bool) "valid row" true (ok = Ok ());
  let bad_null = Schema.validate sample_schema [| Value.Null; Value.Str "x"; Value.Null |] in
  Alcotest.(check bool) "null rejected" true (Result.is_error bad_null);
  let bad_ty = Schema.validate sample_schema [| Value.Int 1; Value.Int 2; Value.Null |] in
  Alcotest.(check bool) "type rejected" true (Result.is_error bad_ty);
  let bad_arity = Schema.validate sample_schema [| Value.Int 1 |] in
  Alcotest.(check bool) "arity rejected" true (Result.is_error bad_arity)

let test_schema_concat_renames () =
  let s2 =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.TInt; nullable = false };
        { Schema.name = "qty"; ty = Value.TInt; nullable = false };
      ]
  in
  let j = Schema.concat sample_schema s2 in
  check Alcotest.int "arity" 5 (Schema.arity j);
  check Alcotest.int "renamed right id" 3 (Schema.index_of j "r.id")

(* --- Row codec ------------------------------------------------------------ *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1e6);
        map (fun s -> Value.Str s) (string_size (int_bound 40));
        map (fun b -> Value.Bool b) bool;
        return Value.Null;
      ])

let row_gen = QCheck.Gen.(map Array.of_list (list_size (int_bound 8) value_gen))

let row_arb =
  QCheck.make ~print:(fun r -> Format.asprintf "%a" Row.pp r) row_gen

let prop_row_roundtrip =
  QCheck.Test.make ~name:"row encode/decode roundtrip" ~count:500 row_arb
    (fun row -> Row.equal row (Row.decode (Row.encode row)))

let test_row_project () =
  let r = [| Value.Int 1; Value.Str "a"; Value.Bool true |] in
  Alcotest.(check bool) "projection" true
    (Row.equal (Row.project r [| 2; 0 |]) [| Value.Bool true; Value.Int 1 |])

let test_row_decode_garbage () =
  Alcotest.check_raises "garbage" (Invalid_argument "Row.decode: malformed row")
    (fun () -> ignore (Row.decode "\001\002zzz"))

(* --- Key codec ------------------------------------------------------------ *)

(* rows with matching cell types per position, as schemas guarantee *)
let typed_pair_gen =
  QCheck.Gen.(
    let cell_pair =
      oneof
        [
          map2 (fun a b -> (Value.Int a, Value.Int b)) small_signed_int small_signed_int;
          map2
            (fun a b -> (Value.Float a, Value.Float b))
            (float_bound_inclusive 1e6) (float_bound_inclusive 1e6);
          map2
            (fun a b -> (Value.Str a, Value.Str b))
            (string_size (int_bound 20))
            (string_size (int_bound 20));
          map2 (fun a b -> (Value.Bool a, Value.Bool b)) bool bool;
          return (Value.Null, Value.Null);
        ]
    in
    map
      (fun l -> (Array.of_list (List.map fst l), Array.of_list (List.map snd l)))
      (list_size (int_range 1 5) cell_pair))

let typed_pair_arb =
  QCheck.make
    ~print:(fun (a, b) -> Format.asprintf "%a / %a" Row.pp a Row.pp b)
    typed_pair_gen

let sign x = if x < 0 then -1 else if x > 0 then 1 else 0

let prop_key_order_preserving =
  QCheck.Test.make ~name:"key encoding preserves order" ~count:1000 typed_pair_arb
    (fun (a, b) ->
      sign (String.compare (Key_codec.encode a) (Key_codec.encode b))
      = sign (Row.compare a b))

let prop_key_roundtrip =
  QCheck.Test.make ~name:"key encode/decode roundtrip" ~count:500 typed_pair_arb
    (fun (a, _) -> Row.equal a (Key_codec.decode (Key_codec.encode a)))

let test_key_nul_strings () =
  let a = [| Value.Str "a\000b" |] and b = [| Value.Str "a\000c" |] in
  Alcotest.(check bool) "embedded NUL ordering" true
    (String.compare (Key_codec.encode a) (Key_codec.encode b) < 0);
  Alcotest.(check bool) "roundtrip" true
    (Row.equal a (Key_codec.decode (Key_codec.encode a)))

let test_key_prefix_vs_longer () =
  (* "ab" < "ab\000" in value space; encoding must agree *)
  let a = [| Value.Str "ab" |] and b = [| Value.Str "ab\000" |] in
  Alcotest.(check bool) "prefix sorts first" true
    (String.compare (Key_codec.encode a) (Key_codec.encode b) < 0)

let test_key_successor () =
  let k = Key_codec.encode [| Value.Int 5 |] in
  let s = Key_codec.successor k in
  Alcotest.(check bool) "successor greater" true (String.compare s k > 0);
  let k6 = Key_codec.encode [| Value.Int 6 |] in
  Alcotest.(check bool) "successor below next int" true (String.compare s k6 <= 0)

(* --- Expr ------------------------------------------------------------------ *)

let row = [| Value.Int 10; Value.Str "abc"; Value.Float 2.5; Value.Null |]

let test_expr_eval_arith () =
  let e = Expr.Add (Expr.Col 0, Expr.Mul (Expr.int 2, Expr.int 3)) in
  check Alcotest.int "10+2*3" 16 (Value.to_int (Expr.eval e row))

let test_expr_cmp_and_3vl () =
  let lt = Expr.Cmp (Expr.Lt, Expr.Col 0, Expr.int 20) in
  Alcotest.(check bool) "10<20" true (Expr.eval_bool lt row);
  let with_null = Expr.Cmp (Expr.Eq, Expr.Col 3, Expr.int 1) in
  Alcotest.(check bool) "NULL = 1 is not true" false (Expr.eval_bool with_null row);
  let or_true = Expr.Or (with_null, Expr.bool true) in
  Alcotest.(check bool) "NULL OR true" true (Expr.eval_bool or_true row);
  let and_null = Expr.And (with_null, Expr.bool true) in
  Alcotest.(check bool) "NULL AND true not true" false (Expr.eval_bool and_null row);
  let isn = Expr.Is_null (Expr.Col 3) in
  Alcotest.(check bool) "is null" true (Expr.eval_bool isn row)

let test_expr_columns_shift () =
  let e = Expr.And (Expr.Cmp (Expr.Eq, Expr.Col 2, Expr.Col 0), Expr.Is_null (Expr.Col 2)) in
  check Alcotest.(list int) "columns" [ 0; 2 ] (Expr.columns e);
  check Alcotest.(list int) "shifted" [ 3; 5 ] (Expr.columns (Expr.shift e 3))

let test_expr_col_by_name () =
  let e = Expr.col sample_schema "score" in
  check (Alcotest.float 1e-9) "resolved" 2.5 (Value.to_float (Expr.eval e row))

let () =
  Alcotest.run "relation"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "arith" `Quick test_value_arith;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basic" `Quick test_schema_basic;
          Alcotest.test_case "validate" `Quick test_schema_validate;
          Alcotest.test_case "concat renames" `Quick test_schema_concat_renames;
        ] );
      ( "row",
        [
          qtest prop_row_roundtrip;
          Alcotest.test_case "project" `Quick test_row_project;
          Alcotest.test_case "decode garbage" `Quick test_row_decode_garbage;
        ] );
      ( "key-codec",
        [
          qtest prop_key_order_preserving;
          qtest prop_key_roundtrip;
          Alcotest.test_case "NUL strings" `Quick test_key_nul_strings;
          Alcotest.test_case "prefix order" `Quick test_key_prefix_vs_longer;
          Alcotest.test_case "successor" `Quick test_key_successor;
        ] );
      ( "expr",
        [
          Alcotest.test_case "arith" `Quick test_expr_eval_arith;
          Alcotest.test_case "3VL" `Quick test_expr_cmp_and_3vl;
          Alcotest.test_case "columns/shift" `Quick test_expr_columns_shift;
          Alcotest.test_case "col by name" `Quick test_expr_col_by_name;
        ] );
    ]
