module Sched = Ivdb_sched.Sched
module Mode = Ivdb_lock.Lock_mode
module Name = Ivdb_lock.Lock_name
module Mgr = Ivdb_lock.Lock_mgr
module Metrics = Ivdb_util.Metrics

let check = Alcotest.check
let table1 = Name.Table 1
let key k = Name.Key (1, k)

(* --- compatibility matrix ------------------------------------------------- *)

let compat r g = Mode.compat ~requested:r ~granted:g

let test_escrow_compat () =
  Alcotest.(check bool) "E with E" true (compat Mode.E Mode.E);
  Alcotest.(check bool) "E vs S" false (compat Mode.E Mode.S);
  Alcotest.(check bool) "S vs E" false (compat Mode.S Mode.E);
  Alcotest.(check bool) "E vs X" false (compat Mode.E Mode.X);
  Alcotest.(check bool) "E vs U" false (compat Mode.E Mode.U);
  (* an insert below an escrow-locked key is fine: gap-only vs key-only *)
  Alcotest.(check bool) "RangeI_N vs E" true (compat Mode.RangeI_N Mode.E)

let test_classic_matrix () =
  Alcotest.(check bool) "S-S" true (compat Mode.S Mode.S);
  Alcotest.(check bool) "S-X" false (compat Mode.S Mode.X);
  Alcotest.(check bool) "IS-IX" true (compat Mode.IS Mode.IX);
  Alcotest.(check bool) "IX-IX" true (compat Mode.IX Mode.IX);
  Alcotest.(check bool) "IX-S" false (compat Mode.IX Mode.S);
  Alcotest.(check bool) "SIX-IS" true (compat Mode.SIX Mode.IS);
  Alcotest.(check bool) "SIX-IX" false (compat Mode.SIX Mode.IX);
  (* U asymmetry: U joins granted S, but S may not join granted U *)
  Alcotest.(check bool) "U vs granted S" true (compat Mode.U Mode.S);
  Alcotest.(check bool) "S vs granted U" false (compat Mode.S Mode.U);
  Alcotest.(check bool) "U-U" false (compat Mode.U Mode.U)

let test_range_matrix () =
  Alcotest.(check bool) "RangeS_S vs RangeS_S" true (compat Mode.RangeS_S Mode.RangeS_S);
  Alcotest.(check bool) "RangeI_N vs RangeS_S" false (compat Mode.RangeI_N Mode.RangeS_S);
  Alcotest.(check bool) "RangeI_N vs RangeI_N" true (compat Mode.RangeI_N Mode.RangeI_N);
  (* RangeI_N locks only the gap: key locks on the next key are unaffected *)
  Alcotest.(check bool) "RangeI_N vs X" true (compat Mode.RangeI_N Mode.X);
  Alcotest.(check bool) "X vs RangeI_N" true (compat Mode.X Mode.RangeI_N);
  Alcotest.(check bool) "RangeX_X vs anything" false (compat Mode.RangeX_X Mode.S);
  Alcotest.(check bool) "S vs RangeX_X" false (compat Mode.S Mode.RangeX_X);
  Alcotest.(check bool) "S vs RangeS_S" true (compat Mode.S Mode.RangeS_S)

let test_sup () =
  Alcotest.(check string) "S+IX" "SIX" (Mode.to_string (Mode.sup Mode.S Mode.IX));
  Alcotest.(check string) "S+X" "X" (Mode.to_string (Mode.sup Mode.S Mode.X));
  Alcotest.(check string) "E+E" "E" (Mode.to_string (Mode.sup Mode.E Mode.E));
  Alcotest.(check string) "E+S escalates" "X" (Mode.to_string (Mode.sup Mode.E Mode.S));
  Alcotest.(check string) "RangeS_S+X" "RangeX-X"
    (Mode.to_string (Mode.sup Mode.RangeS_S Mode.X));
  Alcotest.(check bool) "covers reflexive" true (Mode.covers ~held:Mode.X ~req:Mode.S);
  Alcotest.(check bool) "S does not cover X" false (Mode.covers ~held:Mode.S ~req:Mode.X)

(* --- manager behaviour ----------------------------------------------------- *)

let with_mgr f =
  let m = Metrics.create () in
  let mgr = Mgr.create m in
  f mgr m

let test_grant_and_release () =
  with_mgr (fun mgr _ ->
      Mgr.acquire mgr ~txn:1 table1 Mode.S;
      Mgr.acquire mgr ~txn:2 table1 Mode.S;
      check Alcotest.int "two holders" 2 (List.length (Mgr.holders mgr table1));
      Mgr.release_all mgr ~txn:1;
      check Alcotest.int "one holder" 1 (List.length (Mgr.holders mgr table1));
      Mgr.release_all mgr ~txn:2;
      Alcotest.(check bool) "unlocked" true (Mgr.unlocked mgr table1))

let test_reentrant () =
  with_mgr (fun mgr _ ->
      Mgr.acquire mgr ~txn:1 table1 Mode.X;
      Mgr.acquire mgr ~txn:1 table1 Mode.S;
      (* covered *)
      check Alcotest.int "single entry" 1 (List.length (Mgr.holders mgr table1)))

let test_escrow_group () =
  with_mgr (fun mgr _ ->
      let k = key "g1" in
      Mgr.acquire mgr ~txn:1 k Mode.E;
      Mgr.acquire mgr ~txn:2 k Mode.E;
      Mgr.acquire mgr ~txn:3 k Mode.E;
      check Alcotest.int "three concurrent escrow holders" 3
        (List.length (Mgr.holders mgr k));
      Alcotest.(check bool) "reader would block" false
        (Mgr.try_acquire mgr ~txn:4 k Mode.S))

let test_blocking_and_wakeup () =
  with_mgr (fun mgr m ->
      let order = ref [] in
      Sched.run ~policy:Sched.Fifo (fun () ->
          ignore
            (Sched.spawn (fun () ->
                 Mgr.acquire mgr ~txn:1 table1 Mode.X;
                 order := "t1-got" :: !order;
                 Sched.yield ();
                 Sched.yield ();
                 Mgr.release_all mgr ~txn:1;
                 order := "t1-released" :: !order));
          ignore
            (Sched.spawn (fun () ->
                 Sched.yield ();
                 Mgr.acquire mgr ~txn:2 table1 Mode.S;
                 order := "t2-got" :: !order;
                 Mgr.release_all mgr ~txn:2)));
      check
        Alcotest.(list string)
        "blocked until release"
        [ "t1-got"; "t1-released"; "t2-got" ]
        (List.rev !order);
      Alcotest.(check bool) "wait counted" true (Metrics.get m "lock.wait" >= 1))

let test_fifo_fairness_no_starvation () =
  (* S held; X waits; later S must queue behind X, not starve it *)
  with_mgr (fun mgr _ ->
      let order = ref [] in
      Sched.run ~policy:Sched.Fifo (fun () ->
          Mgr.acquire mgr ~txn:1 table1 Mode.S;
          ignore
            (Sched.spawn (fun () ->
                 Mgr.acquire mgr ~txn:2 table1 Mode.X;
                 order := "x" :: !order;
                 Mgr.release_all mgr ~txn:2));
          ignore
            (Sched.spawn (fun () ->
                 Sched.yield ();
                 Mgr.acquire mgr ~txn:3 table1 Mode.S;
                 order := "s" :: !order;
                 Mgr.release_all mgr ~txn:3));
          Sched.yield ();
          Sched.yield ();
          Mgr.release_all mgr ~txn:1);
      check Alcotest.(list string) "x granted before late s" [ "x"; "s" ] (List.rev !order))

let test_deadlock_detection () =
  with_mgr (fun mgr m ->
      let a = Name.Table 1 and b = Name.Table 2 in
      let victims = ref [] in
      Sched.run ~policy:Sched.Fifo (fun () ->
          ignore
            (Sched.spawn (fun () ->
                 try
                   Mgr.acquire mgr ~txn:1 a Mode.X;
                   Sched.yield ();
                   Sched.yield ();
                   Mgr.acquire mgr ~txn:1 b Mode.X;
                   Mgr.release_all mgr ~txn:1
                 with Mgr.Deadlock v ->
                   victims := v :: !victims;
                   Mgr.release_all mgr ~txn:1));
          ignore
            (Sched.spawn (fun () ->
                 try
                   Mgr.acquire mgr ~txn:2 b Mode.X;
                   Sched.yield ();
                   Sched.yield ();
                   Mgr.acquire mgr ~txn:2 a Mode.X;
                   Mgr.release_all mgr ~txn:2
                 with Mgr.Deadlock v ->
                   victims := v :: !victims;
                   Mgr.release_all mgr ~txn:2)));
      check Alcotest.(list int) "youngest is the victim" [ 2 ] !victims;
      Alcotest.(check bool) "counted" true (Metrics.get m "lock.deadlock" >= 1))

let test_conversion_deadlock () =
  (* two S holders both upgrading to X *)
  with_mgr (fun mgr _ ->
      let victims = ref [] and successes = ref 0 in
      Sched.run ~policy:Sched.Fifo (fun () ->
          let worker txn =
            try
              Mgr.acquire mgr ~txn table1 Mode.S;
              Sched.yield ();
              Sched.yield ();
              Mgr.acquire mgr ~txn table1 Mode.X;
              incr successes;
              Mgr.release_all mgr ~txn
            with Mgr.Deadlock v ->
              victims := v :: !victims;
              Mgr.release_all mgr ~txn
          in
          ignore (Sched.spawn (fun () -> worker 1));
          ignore (Sched.spawn (fun () -> worker 2)));
      check Alcotest.(list int) "one victim, the youngest" [ 2 ] !victims;
      check Alcotest.int "other converts" 1 !successes)

let test_victim_removal_unblocks_queue () =
  (* T1 holds E on K; reader T2 (holding S on L) waits for S on K; T3's E
     queues behind T2. T1 then requests X on L, closing a T1-T2 cycle. T2
     is the victim: removing its queued request must let the sweep grant
     T3's E (compatible with T1's E) immediately — before T2's abort. *)
  with_mgr (fun mgr _ ->
      let k = key "K" and l = key "L" in
      let events = ref [] in
      Sched.run ~policy:Sched.Fifo (fun () ->
          Mgr.acquire mgr ~txn:1 k Mode.E;
          ignore
            (Sched.spawn (fun () ->
                 Mgr.acquire mgr ~txn:2 l Mode.S;
                 try
                   Mgr.acquire mgr ~txn:2 k Mode.S;
                   Alcotest.fail "reader should be the deadlock victim"
                 with Mgr.Deadlock _ ->
                   events := `Victim :: !events;
                   Mgr.release_all mgr ~txn:2));
          ignore
            (Sched.spawn (fun () ->
                 Sched.yield ();
                 Mgr.acquire mgr ~txn:3 k Mode.E;
                 events := `E3_granted :: !events;
                 Mgr.release_all mgr ~txn:3));
          Sched.yield ();
          Sched.yield ();
          Sched.yield ();
          (* closes the cycle: T1 -> T2 (S on L), T2 -> T1 (E on K) *)
          Mgr.acquire mgr ~txn:1 l Mode.X;
          events := `T1_got_l :: !events;
          Mgr.release_all mgr ~txn:1);
      let names =
        List.rev_map
          (function `Victim -> "victim" | `E3_granted -> "e3" | `T1_got_l -> "t1-l")
          !events
      in
      (* the essential property: e3 was granted at all (the victim-removal
         sweep woke it; without the sweep the run deadlocks with Stuck),
         and T1 eventually acquired L after the victim aborted *)
      Alcotest.(check bool) "e3 granted" true (List.mem "e3" names);
      Alcotest.(check bool) "victim aborted" true (List.mem "victim" names);
      check Alcotest.(option string) "t1 finishes last" (Some "t1-l")
        (List.nth_opt names (List.length names - 1)))

let test_skip_ahead_grant () =
  (* holder X; an S waits; an instant RangeI_N — compatible with both the
     holder (gap vs key) and the queued S — must be granted immediately
     instead of queueing behind the S (the positional-blocking deadlock
     this policy exists to prevent) *)
  with_mgr (fun mgr _ ->
      let k = key "hot" in
      let got_gap = ref false in
      Sched.run ~policy:Sched.Fifo (fun () ->
          Mgr.acquire mgr ~txn:1 k Mode.X;
          ignore
            (Sched.spawn (fun () ->
                 Mgr.acquire mgr ~txn:2 k Mode.S;
                 Mgr.release_all mgr ~txn:2));
          ignore
            (Sched.spawn (fun () ->
                 Sched.yield ();
                 Mgr.acquire_instant mgr ~txn:3 k Mode.RangeI_N;
                 got_gap := true));
          Sched.yield ();
          Sched.yield ();
          Sched.yield ();
          Alcotest.(check bool) "granted while X held and S waiting" true !got_gap;
          Mgr.release_all mgr ~txn:1))

let test_instant_lock_not_retained () =
  with_mgr (fun mgr _ ->
      Sched.run (fun () ->
          Mgr.acquire_instant mgr ~txn:1 (key "k") Mode.RangeI_N;
          Alcotest.(check bool) "nothing retained" true (Mgr.unlocked mgr (key "k"))))

let test_instant_lock_waits () =
  with_mgr (fun mgr _ ->
      let got = ref false in
      Sched.run ~policy:Sched.Fifo (fun () ->
          Mgr.acquire mgr ~txn:1 (key "k") Mode.RangeS_S;
          ignore
            (Sched.spawn (fun () ->
                 (* RangeI_N conflicts with the range lock: must wait *)
                 Mgr.acquire_instant mgr ~txn:2 (key "k") Mode.RangeI_N;
                 got := true));
          Sched.yield ();
          Alcotest.(check bool) "still waiting" false !got;
          Mgr.release_all mgr ~txn:1);
      Alcotest.(check bool) "granted after release" true !got)

let test_held_reporting () =
  with_mgr (fun mgr _ ->
      Mgr.acquire mgr ~txn:7 table1 Mode.IX;
      Mgr.acquire mgr ~txn:7 (key "a") Mode.E;
      check Alcotest.int "lock count" 2 (Mgr.lock_count mgr ~txn:7);
      let held = Mgr.held mgr ~txn:7 in
      Alcotest.(check bool) "holds E" true
        (List.exists (fun (n, m) -> n = key "a" && m = Mode.E) held))

let () =
  Alcotest.run "lock"
    [
      ( "matrix",
        [
          Alcotest.test_case "escrow" `Quick test_escrow_compat;
          Alcotest.test_case "classic" `Quick test_classic_matrix;
          Alcotest.test_case "key-range" `Quick test_range_matrix;
          Alcotest.test_case "sup/covers" `Quick test_sup;
        ] );
      ( "manager",
        [
          Alcotest.test_case "grant and release" `Quick test_grant_and_release;
          Alcotest.test_case "reentrant" `Quick test_reentrant;
          Alcotest.test_case "escrow group" `Quick test_escrow_group;
          Alcotest.test_case "blocking/wakeup" `Quick test_blocking_and_wakeup;
          Alcotest.test_case "fifo fairness" `Quick test_fifo_fairness_no_starvation;
          Alcotest.test_case "held reporting" `Quick test_held_reporting;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "detection" `Quick test_deadlock_detection;
          Alcotest.test_case "conversion deadlock" `Quick test_conversion_deadlock;
          Alcotest.test_case "victim removal unblocks queue" `Quick
            test_victim_removal_unblocks_queue;
          Alcotest.test_case "skip-ahead grant" `Quick test_skip_ahead_grant;
        ] );
      ( "instant",
        [
          Alcotest.test_case "not retained" `Quick test_instant_lock_not_retained;
          Alcotest.test_case "waits for conflicts" `Quick test_instant_lock_waits;
        ] );
    ]
