(* Interactive SQL shell over an in-memory ivdb instance.

   Extra dot-commands beyond SQL:
     .crash    simulate a crash and recover
     .gc       run garbage collection (ghosts, zero-count groups, vacuum)
     .help     this text
     .quit     exit

   Run with: dune exec bin/ivdb_repl.exe
   or pipe a script: dune exec bin/ivdb_repl.exe < script.sql *)

module Sql = Ivdb_sql.Sql
module Database = Ivdb.Database

let help =
  {|statements: CREATE TABLE/INDEX/VIEW, INSERT, DELETE, UPDATE, SELECT,
            BEGIN, COMMIT, ROLLBACK, CHECKPOINT, SHOW TABLES/VIEWS/METRICS
dot commands: .crash .gc .help .quit|}

let () =
  let interactive = Unix.isatty Unix.stdin in
  if interactive then
    print_endline "ivdb SQL shell — .help for help, .quit to exit";
  let session = ref (Sql.session (Database.create ())) in
  let rec loop () =
    if interactive then begin
      print_string (if Sql.in_transaction !session then "ivdb*> " else "ivdb> ");
      flush stdout
    end;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
        let line = String.trim line in
        (if line = "" then ()
         else if line = ".quit" || line = ".exit" then exit 0
         else if line = ".help" then print_endline help
         else if line = ".gc" then
           Printf.printf "gc reclaimed %d item(s)\n" (Database.gc (Sql.db !session))
         else if line = ".crash" then begin
           let db' = Database.crash (Sql.db !session) in
           session := Sql.session db';
           print_endline "crashed and recovered"
         end
         else if Ivdb_sql.Sql_lexer.tokenize line = [ Ivdb_sql.Sql_lexer.Eof ] then
           () (* comment-only line *)
         else
           try print_endline (Sql.render (Sql.exec !session line)) with
           | Sql.Sql_error m -> Printf.printf "error: %s\n" m
           | Ivdb_sql.Sql_parser.Parse_error m -> Printf.printf "parse error: %s\n" m
           | Ivdb_sql.Sql_lexer.Lex_error m -> Printf.printf "lex error: %s\n" m
           | Database.Constraint_violation m -> Printf.printf "constraint violation: %s\n" m
           | Ivdb_txn.Txn.Conflict _ -> print_endline "error: deadlock victim, retry");
        loop ()
  in
  loop ()
