(* Bank branch totals: the classic escrow scenario. Transfers move money
   between accounts; an indexed view maintains per-branch totals. The sum
   over the view is an invariant (money is conserved), checked live, after
   an abort, and after a crash.

   Run with: dune exec examples/bank_branch_totals.exe *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Txn = Ivdb_txn.Txn
module Sched = Ivdb_sched.Sched
module Rng = Ivdb_util.Rng
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain

let n_branches = 4
let accounts_per_branch = 5
let initial_balance = 1000

let () =
  let db =
    Database.create
      ~config:{ Database.default_config with read_cost = 0; write_cost = 0 }
      ()
  in
  let accounts =
    Database.create_table db ~name:"accounts"
      ~cols:
        [
          { Schema.name = "acct"; ty = Value.TInt; nullable = false };
          { Schema.name = "branch"; ty = Value.TInt; nullable = false };
          { Schema.name = "balance"; ty = Value.TInt; nullable = false };
        ]
  in
  let schema = Database.schema db accounts in
  let totals =
    Database.create_view db ~name:"branch_totals" ~group_by:[ "branch" ]
      ~aggs:[ View_def.Sum (Expr.col schema "balance") ]
      ~source:(Database.From (accounts, None))
      ~strategy:Maintain.Escrow ()
  in
  (* an index on the account number lets transfers find a row's current
     rid even after updates have relocated it *)
  Database.create_index db accounts ~col:"acct" ~name:"ix_accounts_acct";
  Database.transact db (fun tx ->
      for b = 0 to n_branches - 1 do
        for a = 0 to accounts_per_branch - 1 do
          let acct = (b * 100) + a in
          ignore
            (Table.insert db tx accounts
               [| Value.Int acct; Value.Int b; Value.Int initial_balance |])
        done
      done);
  let grand_total () =
    Seq.fold_left
      (fun acc (_, aggs) -> acc + Value.to_int aggs.(1))
      0
      (Query.view_scan db None totals Query.Dirty)
  in
  let expected = n_branches * accounts_per_branch * initial_balance in
  Printf.printf "opened %d accounts, grand total %d (expected %d)\n"
    (Table.row_count db accounts) (grand_total ()) expected;

  (* A transfer debits one account and credits another: the base rows move
     (delete + insert), and the branch totals follow transactionally. *)
  let transfer tx ~from_acct ~to_acct ~amount =
    let move acct delta =
      match Table.find db (Some tx) accounts ~col:"acct" (Value.Int acct) with
      | [ (rid, row) ] ->
          let balance = Value.to_int row.(2) + delta in
          ignore
            (Table.update db tx accounts rid [| row.(0); row.(1); Value.Int balance |])
      | _ -> failwith "account row missing"
    in
    move from_acct (-amount);
    Sched.yield ();
    move to_acct amount
  in

  (* concurrent random transfers, some crossing branches *)
  Sched.run ~seed:7 (fun () ->
      for w = 1 to 6 do
        ignore
          (Sched.spawn (fun () ->
               let rng = Rng.create (w * 17) in
               for _ = 1 to 20 do
                 let a = ((Rng.int rng n_branches) * 100) + Rng.int rng accounts_per_branch in
                 let b = ((Rng.int rng n_branches) * 100) + Rng.int rng accounts_per_branch in
                 if a <> b then
                   Database.transact db (fun tx ->
                       transfer tx ~from_acct:a ~to_acct:b ~amount:(1 + Rng.int rng 50));
                 Sched.yield ()
               done))
      done);
  Printf.printf "after 120 concurrent transfers: grand total %d (conserved: %b)\n"
    (grand_total ()) (grand_total () = expected);

  (* an abort half-way through a transfer leaves totals intact *)
  let mgr = Database.mgr db in
  let tx = Txn.begin_txn mgr in
  transfer tx ~from_acct:0 ~to_acct:101 ~amount:500;
  Txn.abort mgr tx;
  Printf.printf "after aborted transfer:        grand total %d (conserved: %b)\n"
    (grand_total ()) (grand_total () = expected);

  (* a crash in the middle of a transfer: recovery rolls the loser back *)
  let tx = Txn.begin_txn mgr in
  transfer tx ~from_acct:0 ~to_acct:301 ~amount:999;
  Ivdb_wal.Wal.force (Database.wal db) (Ivdb_wal.Wal.last_lsn (Database.wal db));
  let db = Database.crash db in
  let totals = Database.view db "branch_totals" in
  let grand_total () =
    Seq.fold_left
      (fun acc (_, aggs) -> acc + Value.to_int aggs.(1))
      0
      (Query.view_scan db None totals Query.Dirty)
  in
  Printf.printf "after crash mid-transfer:      grand total %d (conserved: %b)\n"
    (grand_total ()) (grand_total () = expected);
  Printf.printf "branch totals:\n";
  Seq.iter
    (fun (group, aggs) ->
      Printf.printf "  branch %s: %s\n"
        (Value.to_string group.(0))
        (Value.to_string aggs.(1)))
    (Query.view_scan db None totals Query.Dirty)
