(* Quickstart: create a table and an indexed view, run transactions, query
   the view, then crash the engine and recover.

   Run with: dune exec examples/quickstart.exe *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain

let () =
  (* 1. An empty database (simulated disk + buffer pool + WAL). *)
  let db = Database.create () in

  (* 2. A base table. *)
  let sales =
    Database.create_table db ~name:"sales"
      ~cols:
        [
          { Schema.name = "id"; ty = Value.TInt; nullable = false };
          { Schema.name = "product"; ty = Value.TStr; nullable = false };
          { Schema.name = "qty"; ty = Value.TInt; nullable = false };
        ]
  in
  let schema = Database.schema db sales in

  (* 3. An indexed view: SELECT product, COUNT( * ), SUM(qty) FROM sales
        GROUP BY product — maintained with escrow (increment) locking, so
        concurrent writers to the same product never block each other. *)
  let by_product =
    Database.create_view db ~name:"sales_by_product" ~group_by:[ "product" ]
      ~aggs:[ View_def.Sum (Expr.col schema "qty") ]
      ~source:(Database.From (sales, None))
      ~strategy:Maintain.Escrow ()
  in

  (* 4. Transactions: each [transact] commits atomically (and retries
        automatically if chosen as a deadlock victim). *)
  Database.transact db (fun tx ->
      ignore (Table.insert db tx sales [| Value.Int 1; Value.Str "apple"; Value.Int 3 |]);
      ignore (Table.insert db tx sales [| Value.Int 2; Value.Str "pear"; Value.Int 2 |]);
      ignore (Table.insert db tx sales [| Value.Int 3; Value.Str "apple"; Value.Int 4 |]));

  (* An aborted transaction leaves no trace, in the view either. *)
  (try
     Database.transact db (fun tx ->
         ignore
           (Table.insert db tx sales [| Value.Int 4; Value.Str "apple"; Value.Int 100 |]);
         failwith "changed my mind")
   with Failure _ -> ());

  (* 5. Query the view: a point lookup instead of a scan-and-aggregate. *)
  let show label =
    Printf.printf "%s:\n" label;
    Seq.iter
      (fun (group, aggs) ->
        Printf.printf "  %-8s count=%s sum(qty)=%s\n"
          (Value.to_string group.(0))
          (Value.to_string aggs.(0))
          (Value.to_string aggs.(1)))
      (Query.view_scan db None by_product Query.Dirty)
  in
  show "sales_by_product after 3 inserts (+1 aborted)";

  (* 6. Crash and recover: committed state survives, the view included. *)
  let db = Database.crash db in
  let by_product = Database.view db "sales_by_product" in
  let sales = Database.table db "sales" in
  Printf.printf "\nafter crash + recovery: %d rows in sales\n"
    (Table.row_count db sales);
  Seq.iter
    (fun (group, aggs) ->
      Printf.printf "  %-8s count=%s sum(qty)=%s\n"
        (Value.to_string group.(0))
        (Value.to_string aggs.(0))
        (Value.to_string aggs.(1)))
    (Query.view_scan db None by_product Query.Dirty);

  (* 7. Maintenance still works on the recovered engine. *)
  Database.transact db (fun tx ->
      ignore (Table.insert db tx sales [| Value.Int 5; Value.Str "pear"; Value.Int 8 |]));
  match Query.view_lookup db None by_product [| Value.Str "pear" |] with
  | Some aggs ->
      Printf.printf "\npear after one more sale: count=%s sum(qty)=%s\n"
        (Value.to_string aggs.(0))
        (Value.to_string aggs.(1))
  | None -> print_endline "pear group missing!?"
