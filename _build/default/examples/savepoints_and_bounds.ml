(* Two of the engine's finer transactional features in one scenario:

   - savepoints: a multi-leg order books legs one by one; a failing leg
     rolls back to the savepoint instead of aborting the whole order;
   - escrow bounds reads: a monitoring fiber reads revenue intervals
     without ever blocking behind the in-flight writers.

   Run with: dune exec examples/savepoints_and_bounds.exe *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Txn = Ivdb_txn.Txn
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain

let () =
  let db =
    Database.create
      ~config:{ Database.default_config with read_cost = 0; write_cost = 0 }
      ()
  in
  let legs =
    Database.create_table db ~name:"legs"
      ~cols:
        [
          { Schema.name = "order_id"; ty = Value.TInt; nullable = false };
          { Schema.name = "desk"; ty = Value.TStr; nullable = false };
          { Schema.name = "notional"; ty = Value.TInt; nullable = false };
        ]
  in
  let schema = Database.schema db legs in
  let by_desk =
    Database.create_view db ~name:"notional_by_desk" ~group_by:[ "desk" ]
      ~aggs:[ View_def.Sum (Expr.col schema "notional") ]
      ~source:(Database.From (legs, None))
      ~strategy:Maintain.Escrow ()
  in
  let show_desk label desk =
    match Query.view_lookup db None by_desk [| Value.Str desk |] with
    | Some r ->
        Printf.printf "%-28s %-6s legs=%-3s notional=%s\n" label desk
          (Value.to_string r.(0))
          (Value.to_string r.(1))
    | None -> Printf.printf "%-28s %-6s (empty)\n" label desk
  in

  (* an order with three legs; the third violates a risk limit and only it
     is rolled back, thanks to the savepoint *)
  let mgr = Database.mgr db in
  let tx = Txn.begin_txn mgr in
  ignore (Table.insert db tx legs [| Value.Int 1; Value.Str "rates"; Value.Int 100 |]);
  ignore (Table.insert db tx legs [| Value.Int 1; Value.Str "fx"; Value.Int 250 |]);
  let sp = Txn.savepoint tx in
  ignore (Table.insert db tx legs [| Value.Int 1; Value.Str "fx"; Value.Int 9000 |]);
  Printf.printf "third leg booked (uncommitted): fx notional inside txn is 9250\n";
  (* risk check fails: 9250 > limit. Roll the leg back, keep the order. *)
  Txn.rollback_to mgr tx sp;
  Txn.commit mgr tx;
  show_desk "after savepoint rollback:" "fx";
  show_desk "" "rates";

  (* the monitoring fiber reads bounds while writers are mid-flight *)
  let w1 = Txn.begin_txn mgr in
  ignore (Table.insert db w1 legs [| Value.Int 2; Value.Str "fx"; Value.Int 40 |]);
  let w2 = Txn.begin_txn mgr in
  ignore (Table.insert db w2 legs [| Value.Int 3; Value.Str "fx"; Value.Int 60 |]);
  (match Query.view_lookup_bounds db by_desk [| Value.Str "fx" |] with
  | Some (lo, hi) ->
      Printf.printf
        "\nwith two writers in flight, fx notional is somewhere in [%s, %s]\n"
        (Value.to_string lo.(1))
        (Value.to_string hi.(1))
  | None -> print_endline "fx group missing");
  Txn.commit mgr w1;
  Txn.abort mgr w2;
  (match Query.view_lookup_bounds db by_desk [| Value.Str "fx" |] with
  | Some (lo, hi) ->
      Printf.printf "after one commit and one abort, the interval collapses: [%s, %s]\n"
        (Value.to_string lo.(1))
        (Value.to_string hi.(1))
  | None -> print_endline "fx group missing");
  show_desk "final:" "fx"
