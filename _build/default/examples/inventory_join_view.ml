(* Join views and deferred maintenance: per-supplier outstanding value over
   orders JOIN line items, refreshed on demand instead of per-write.

   Run with: dune exec examples/inventory_join_view.exe *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain
module Rng = Ivdb_util.Rng

let () =
  let db =
    Database.create
      ~config:{ Database.default_config with read_cost = 0; write_cost = 0 }
      ()
  in
  let orders =
    Database.create_table db ~name:"orders"
      ~cols:
        [
          { Schema.name = "oid"; ty = Value.TInt; nullable = false };
          { Schema.name = "supplier"; ty = Value.TStr; nullable = false };
        ]
  in
  let items =
    Database.create_table db ~name:"items"
      ~cols:
        [
          { Schema.name = "order_id"; ty = Value.TInt; nullable = false };
          { Schema.name = "value"; ty = Value.TInt; nullable = false };
        ]
  in
  (* join-column indexes make view maintenance probe instead of scan *)
  Database.create_index db orders ~col:"oid" ~name:"ix_orders_oid";
  Database.create_index db items ~col:"order_id" ~name:"ix_items_order";

  (* an immediate escrow join view and a deferred twin over the same data *)
  let js = Database.join_schema db orders items in
  let mk name strategy =
    Database.create_view db ~name ~group_by:[ "supplier" ]
      ~aggs:[ View_def.Sum (Expr.col js "value") ]
      ~source:
        (Database.From_join
           {
             left = orders;
             right = items;
             left_col = "oid";
             right_col = "order_id";
             where = None;
           })
      ~strategy ()
  in
  let live = mk "supplier_value_live" Maintain.Escrow in
  let lazy_v = mk "supplier_value_lazy" Maintain.Deferred in

  let suppliers = [| "acme"; "globex"; "initech" |] in
  let rng = Rng.create 5 in
  let next_oid = ref 0 in
  for _ = 1 to 30 do
    Database.transact db (fun tx ->
        incr next_oid;
        let supplier = suppliers.(Rng.int rng (Array.length suppliers)) in
        ignore
          (Table.insert db tx orders [| Value.Int !next_oid; Value.Str supplier |]);
        (* each order gets 1-3 line items *)
        for _ = 1 to 1 + Rng.int rng 3 do
          ignore
            (Table.insert db tx items
               [| Value.Int !next_oid; Value.Int (10 + Rng.int rng 90) |])
        done)
  done;

  let show name v =
    Printf.printf "%s:\n" name;
    Seq.iter
      (fun (group, aggs) ->
        Printf.printf "  %-10s rows=%-4s value=%s\n"
          (match group.(0) with Value.Str s -> s | _ -> "?")
          (Value.to_string aggs.(0))
          (Value.to_string aggs.(1)))
      (Query.view_scan db None v Query.Dirty)
  in
  show "live view (escrow, maintained per write)" live;
  Printf.printf "\nlazy view before refresh: %d groups visible, %d deltas pending\n"
    (Query.view_count db lazy_v)
    (Query.staleness db lazy_v);
  let applied = Database.transact db (fun tx -> Query.refresh db tx lazy_v) in
  Printf.printf "refresh applied %d deltas\n\n" applied;
  show "lazy view after refresh" lazy_v;

  (* retracting an order updates the join view through the item index *)
  let oschema = Database.schema db orders in
  Database.transact db (fun tx ->
      ignore
        (Table.delete_where db tx orders
           (Expr.Cmp (Expr.Eq, Expr.col oschema "oid", Expr.int 1))));
  Printf.printf "\nafter cancelling order 1:\n";
  show "live view" live
