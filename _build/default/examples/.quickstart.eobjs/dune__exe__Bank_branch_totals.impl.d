examples/bank_branch_totals.ml: Array Ivdb Ivdb_core Ivdb_relation Ivdb_sched Ivdb_txn Ivdb_util Ivdb_wal Printf Seq
