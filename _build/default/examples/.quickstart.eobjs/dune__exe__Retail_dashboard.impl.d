examples/retail_dashboard.ml: Array Ivdb Ivdb_core Ivdb_relation Ivdb_sched Ivdb_util List Printf Seq
