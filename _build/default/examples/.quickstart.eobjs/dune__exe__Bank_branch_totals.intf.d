examples/bank_branch_totals.mli:
