examples/retail_dashboard.mli:
