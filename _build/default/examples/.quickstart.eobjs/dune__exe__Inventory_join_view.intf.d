examples/inventory_join_view.mli:
