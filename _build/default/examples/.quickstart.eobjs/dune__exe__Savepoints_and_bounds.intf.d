examples/savepoints_and_bounds.mli:
