examples/savepoints_and_bounds.ml: Array Ivdb Ivdb_core Ivdb_relation Ivdb_txn Printf
