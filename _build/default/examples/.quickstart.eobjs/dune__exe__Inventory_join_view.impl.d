examples/inventory_join_view.ml: Array Ivdb Ivdb_core Ivdb_relation Ivdb_util Printf Seq
