examples/quickstart.ml: Array Ivdb Ivdb_core Ivdb_relation Printf Seq
