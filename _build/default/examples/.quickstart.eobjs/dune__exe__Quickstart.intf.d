examples/quickstart.mli:
