(* Retail dashboard: many concurrent cashiers post sales while a dashboard
   fiber reads live per-product totals from an indexed view.

   Demonstrates the paper's headline trade-off by running the same workload
   twice — once with exclusive locking on the view rows, once with escrow
   (increment) locking — and printing the contention each produced.

   Run with: dune exec examples/retail_dashboard.exe *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Sched = Ivdb_sched.Sched
module Metrics = Ivdb_util.Metrics
module Rng = Ivdb_util.Rng
module Zipf = Ivdb_util.Zipf
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain

let products = [| "espresso"; "latte"; "flat-white"; "mocha"; "drip" |]
let cashiers = 8
let sales_per_cashier = 40

let run strategy =
  let db =
    Database.create
      ~config:{ Database.default_config with read_cost = 0; write_cost = 0 }
      ()
  in
  let sales =
    Database.create_table db ~name:"sales"
      ~cols:
        [
          { Schema.name = "id"; ty = Value.TInt; nullable = false };
          { Schema.name = "product"; ty = Value.TStr; nullable = false };
          { Schema.name = "amount"; ty = Value.TFloat; nullable = false };
        ]
  in
  let schema = Database.schema db sales in
  let v =
    Database.create_view db ~name:"revenue_by_product" ~group_by:[ "product" ]
      ~aggs:[ View_def.Sum (Expr.col schema "amount") ]
      ~source:(Database.From (sales, None))
      ~strategy ()
  in
  let next_id = ref 0 in
  Sched.run ~seed:2024 (fun () ->
      (* cashiers: skewed product mix (espresso is hot) *)
      for c = 1 to cashiers do
        ignore
          (Sched.spawn (fun () ->
               let rng = Rng.create (c * 131) in
               let zipf = Zipf.create ~n:(Array.length products) ~theta:1.1 in
               for _ = 1 to sales_per_cashier do
                 Database.transact db (fun tx ->
                     incr next_id;
                     let p = products.(Zipf.draw zipf rng) in
                     ignore
                       (Table.insert db tx sales
                          [|
                            Value.Int !next_id;
                            Value.Str p;
                            Value.Float (2.5 +. Rng.float rng);
                          |]);
                     (* keep the transaction open across a yield so lock
                        lifetimes overlap, as under preemptive threads *)
                     Sched.yield ());
                 Sched.yield ()
               done));
      done;
      (* the dashboard polls totals while cashiers are selling *)
      ignore
        (Sched.spawn (fun () ->
             for _ = 1 to 5 do
               for _ = 1 to 60 do
                 Sched.yield ()
               done;
               let total =
                 Seq.fold_left
                   (fun acc (_, aggs) -> acc +. Value.to_float aggs.(1))
                   0.
                   (Query.view_scan db None v Query.Dirty)
               in
               Printf.printf "  [dashboard] running total: %.2f\n" total
             done)));
  let m = Database.metrics db in
  (db, v, Metrics.get m "lock.wait", Metrics.get m "lock.deadlock")

let () =
  List.iter
    (fun strategy ->
      Printf.printf "--- %s maintenance ---\n" (Maintain.strategy_to_string strategy);
      let db, v, waits, deadlocks = run strategy in
      Printf.printf "final revenue by product:\n";
      Seq.iter
        (fun (group, aggs) ->
          Printf.printf "  %-12s %.2f\n"
            (match group.(0) with Value.Str s -> s | _ -> "?")
            (Value.to_float aggs.(1)))
        (Query.view_scan db None v Query.Dirty);
      Printf.printf "writer lock waits: %d, deadlocks: %d\n\n" waits deadlocks)
    [ Maintain.Exclusive; Maintain.Escrow ]
