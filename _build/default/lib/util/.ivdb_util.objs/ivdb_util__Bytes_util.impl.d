lib/util/bytes_util.ml: Buffer Bytes Char Printf String
