lib/util/rng.mli:
