lib/util/stats.mli:
