(** Named event counters.

    Every subsystem reports into a [Metrics.t] owned by the database
    instance (no global state, so concurrent engines in one process —
    e.g. the crash-recovery tests — do not interfere). *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 for counters never bumped. *)

val reset : t -> unit
val snapshot : t -> (string * int) list
(** Sorted by counter name. *)

val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter [after - before]; counters absent on one side count as 0. *)

val pp : Format.formatter -> t -> unit
