type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 64

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let add t name n = cell t name := !(cell t name) + n
let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0
let reset t = Hashtbl.reset t

let snapshot t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~before ~after =
  let names =
    List.sort_uniq String.compare (List.map fst before @ List.map fst after)
  in
  let find l n = match List.assoc_opt n l with Some v -> v | None -> 0 in
  List.map (fun n -> (n, find after n - find before n)) names

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s=%d@ " k v) (snapshot t)
