type t = {
  mutable samples : float list; (* retained for percentiles *)
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
}

let create () =
  { samples = []; n = 0; sum = 0.; sumsq = 0.; mn = infinity; mx = neg_infinity }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.
  else
    let n = float_of_int t.n in
    let var = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.) in
    if var <= 0. then 0. else sqrt var

let min t = if t.n = 0 then invalid_arg "Stats.min: empty" else t.mn
let max t = if t.n = 0 then invalid_arg "Stats.max: empty" else t.mx

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  let a = Array.of_list t.samples in
  Array.sort compare a;
  let rank = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
  let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)) in
  a.(idx)

let merge a b =
  {
    samples = a.samples @ b.samples;
    n = a.n + b.n;
    sum = a.sum +. b.sum;
    sumsq = a.sumsq +. b.sumsq;
    mn = Float.min a.mn b.mn;
    mx = Float.max a.mx b.mx;
  }
