(** Zipf-distributed integer generator.

    Used by workloads to model skewed access to view groups: a high [theta]
    concentrates updates on a few hot groups, which is the contention regime
    that motivates escrow locking. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] draws values in [\[0, n)] with P(k) ∝ 1/(k+1)^theta.
    [theta = 0.] is uniform. Requires [n > 0] and [theta >= 0.]. *)

val draw : t -> Rng.t -> int

val n : t -> int
val theta : t -> float
