(** Online summary statistics and percentile estimation for benchmarks. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0. when empty. *)

val stddev : t -> float
(** Sample standard deviation; 0. for fewer than two samples. *)

val min : t -> float
val max : t -> float
(** [min]/[max] raise [Invalid_argument] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]; nearest-rank on retained
    samples. Raises [Invalid_argument] when empty. *)

val merge : t -> t -> t
(** Combined statistics of two populations (percentiles use both sample
    sets). *)
