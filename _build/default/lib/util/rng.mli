(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of ivdb (scheduler interleaving, workload
    generation, crash injection) draws from an explicit [Rng.t] so that a
    seed fully determines an execution. *)

type t

val create : int -> t
(** [create seed] returns a generator; equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (advances [t]). *)
