(* Inverse-CDF sampling over the precomputed cumulative distribution.
   O(log n) per draw via binary search; exact (no rejection). *)

type t = { n : int; theta : float; cdf : float array }

let create ~n ~theta =
  assert (n > 0 && theta >= 0.);
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for k = 0 to n - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (k + 1)) theta);
    cdf.(k) <- !total
  done;
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. !total
  done;
  { n; theta; cdf }

let draw t rng =
  let u = Rng.float rng in
  (* smallest k with cdf.(k) >= u *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1)

let n t = t.n
let theta t = t.theta
