(** B+-tree node layout on a page.

    Both node kinds share the header:
    {v
      0..7   pageLSN        8      type (Bt_leaf | Bt_interior)
      9..12  aux: next-leaf page (leaf) / leftmost child (interior)
      13..14 nkeys           15..16 free_end
      17..   slot directory (u16 cell offsets, in key order)
    v}
    Leaf cell: klen u16 | vlen u16 | key | value.
    Interior cell: klen u16 | child u32 | key — the child holds keys
    [>= key]; keys below the first separator live under the aux child. *)

val init_leaf : bytes -> unit
val init_interior : bytes -> unit

val is_leaf : bytes -> bool
val nkeys : bytes -> int

val get_aux : bytes -> int
val set_aux : bytes -> int -> unit

val key_at : bytes -> int -> string
val leaf_value_at : bytes -> int -> string

val child_at : bytes -> int -> int
(** [child_at p i] for [i] in [0..nkeys]: child 0 is the aux child. *)

val search : bytes -> string -> [ `Found of int | `Gap of int ]
(** Binary search: [`Found i] when slot [i] holds the key, [`Gap i] when the
    key would be inserted at slot [i]. *)

val child_for : bytes -> string -> int
(** Interior: page id of the subtree that covers the key. *)

val leaf_insert : bytes -> int -> string -> string -> bool
(** [leaf_insert p i key value] inserts at slot [i]; [false] if it cannot
    fit even after compaction. *)

val leaf_delete : bytes -> int -> unit

val leaf_replace : bytes -> int -> string -> bool
(** Replace the value of slot [i]; in place when sizes match, re-inserted
    within the page otherwise; [false] when it cannot fit. *)

val interior_insert : bytes -> int -> string -> int -> bool
(** [interior_insert p i key child]: separator at slot [i] pointing at
    [child]. *)

val free_space : bytes -> int
val max_entry : int
(** Maximum encoded key + value size accepted by the tree (fits a page
    quarter, guaranteeing splits always succeed). *)

val leaf_cells : bytes -> (string * string) list
val leaf_rebuild : bytes -> (string * string) list -> next:int -> unit

val interior_cells : bytes -> int * (string * int) list
(** [(child0, separators)] in key order. *)

val interior_rebuild : bytes -> int -> (string * int) list -> unit

val interior_delete : bytes -> int -> unit
(** Remove separator slot [i] (its subtree pointer goes with it). *)
