(** B+-trees over the buffer pool.

    Keys are unique, memcomparable byte strings (see
    {!Ivdb_relation.Key_codec}); values are opaque byte strings. The root
    page id is fixed for the lifetime of the tree (root splits move contents
    into fresh children), so the catalog entry never changes.

    Structure modifications (splits) run as *system transactions*: they
    commit immediately and independently of the invoking user transaction,
    log redo-only records, and hold no locks — the cooperative scheduler
    makes their body atomic. User-level insert/delete/update log physical
    redo plus logical undo under the user's transaction.

    Concurrency note: cursors survive yields (lock waits) by key-based
    repositioning — a cursor remembers its last key and re-descends when the
    leaf changed under it. *)

exception Duplicate_key of string

type t

val create : Ivdb_txn.Txn.mgr -> index_id:int -> t
(** Allocates and formats the root (as an empty leaf) in a system
    transaction. *)

val attach : Ivdb_txn.Txn.mgr -> index_id:int -> root:int -> t
val root : t -> int
val index_id : t -> int

val search : t -> string -> string option

val insert : Ivdb_txn.Txn.t -> t -> key:string -> value:string -> unit
(** Logged under the transaction with logical undo (delete). Raises
    {!Duplicate_key}. Raises [Invalid_argument] when the entry exceeds
    {!Bt_node.max_entry}. *)

val delete : Ivdb_txn.Txn.t -> t -> key:string -> unit
(** Logical undo: re-insert the deleted value. Raises [Not_found]. *)

val update :
  ?undo:Ivdb_wal.Log_record.logical_undo ->
  Ivdb_txn.Txn.t ->
  t ->
  key:string ->
  value:string ->
  unit
(** Replace the value under [key]. Default undo restores the previous
    value; escrow maintenance overrides [undo] with an inverse-delta
    record. Raises [Not_found]. *)

val insert_raw : t -> key:string -> value:string -> Ivdb_wal.Log_record.page_diffs
val delete_raw : t -> key:string -> Ivdb_wal.Log_record.page_diffs
val update_raw : t -> key:string -> value:string -> Ivdb_wal.Log_record.page_diffs
(** Unlogged variants used by the logical-undo executor: they perform the
    change and return the diffs for the caller's compensation record.
    Splits they trigger still run (and log) as system transactions. *)

val next_key : t -> string -> (string * string) option
(** Smallest entry with key strictly greater — the next-key probe of
    key-range locking. *)

val min_entry : t -> (string * string) option

type cursor

val seek : t -> string -> (string * string * cursor) option
(** First entry with key [>=] the argument. *)

val cursor_next : t -> cursor -> (string * string * cursor) option

val iter : t -> (string -> string -> unit) -> unit
(** Full ascending scan (no locking — callers lock). *)

val height : t -> int
val entry_count : t -> int

val vacuum : t -> int
(** Reclaim empty leaves and collapse empty interior levels, as a system
    transaction: lazy deletion leaves empty pages behind; this removes them
    from their parents, re-links the leaf chain, frees the pages, and
    collapses a separator-less root into its only child. Returns pages
    freed. The tree always keeps at least its root. *)
