lib/btree/bt_node.ml: Bytes Ivdb_storage Ivdb_util List String
