lib/btree/btree.mli: Ivdb_txn Ivdb_wal
