lib/btree/bt_node.mli:
