lib/btree/btree.ml: Bt_node Ivdb_storage Ivdb_txn Ivdb_util Ivdb_wal List String
