(** Rows and their storage serialization.

    The row codec is self-describing (each cell carries a tag), so heap
    records and B-tree payloads can be decoded without the schema. *)

type t = Value.t array

val encode : t -> string
val decode : string -> t
(** Raises [Invalid_argument] on malformed input. *)

val project : t -> int array -> t
(** [project row positions] picks cells by position. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic by {!Value.compare}. *)

val pp : Format.formatter -> t -> unit
