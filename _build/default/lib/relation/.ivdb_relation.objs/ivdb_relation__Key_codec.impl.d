lib/relation/key_codec.ml: Array Buffer Bytes Char Int64 List String Value
