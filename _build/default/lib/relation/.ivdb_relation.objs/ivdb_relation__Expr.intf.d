lib/relation/expr.mli: Format Row Schema Value
