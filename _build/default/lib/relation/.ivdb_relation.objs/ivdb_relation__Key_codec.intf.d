lib/relation/key_codec.mli: Value
