lib/relation/row.ml: Array Buffer Bytes Char Format Int64 Stdlib String Value
