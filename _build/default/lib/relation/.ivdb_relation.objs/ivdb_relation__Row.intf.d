lib/relation/row.mli: Format Value
