lib/relation/value.ml: Format Stdlib String
