type col = { name : string; ty : Value.ty; nullable : bool }
type t = { cols : col array }

let make cols_list =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.name then
        invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add seen c.name ())
    cols_list;
  { cols = Array.of_list cols_list }

let cols t = t.cols
let arity t = Array.length t.cols

let index_of t name =
  let n = Array.length t.cols in
  let rec go i =
    if i >= n then raise Not_found
    else if t.cols.(i).name = name then i
    else go (i + 1)
  in
  go 0

let col_at t i = t.cols.(i)

let validate t row =
  if Array.length row <> arity t then
    Error
      (Printf.sprintf "arity mismatch: expected %d, got %d" (arity t)
         (Array.length row))
  else
    let rec go i =
      if i = arity t then Ok ()
      else
        let c = t.cols.(i) in
        match Value.type_of row.(i) with
        | None -> if c.nullable then go (i + 1) else Error (c.name ^ ": NULL not allowed")
        | Some ty ->
            if ty = c.ty then go (i + 1)
            else
              Error
                (Format.asprintf "%s: expected %a, got %a" c.name Value.pp_ty
                   c.ty Value.pp_ty ty)
    in
    go 0

let concat a b =
  let names = Hashtbl.create 8 in
  Array.iter (fun c -> Hashtbl.add names c.name ()) a.cols;
  let rename c =
    if Hashtbl.mem names c.name then { c with name = "r." ^ c.name } else c
  in
  { cols = Array.append a.cols (Array.map rename b.cols) }

let pp ppf t =
  Format.fprintf ppf "(";
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%s %a%s" c.name Value.pp_ty c.ty
        (if c.nullable then "" else " NOT NULL"))
    t.cols;
  Format.fprintf ppf ")"
