(** Typed scalar values: the cell type of rows, keys, and expressions. *)

type ty = TInt | TFloat | TStr | TBool

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null

val type_of : t -> ty option
(** [None] for [Null]. *)

val compare : t -> t -> int
(** SQL-flavoured total order with [Null] smallest; [Int] and [Float]
    compare numerically against each other; comparing other cross-type pairs
    raises [Invalid_argument] — it indicates a schema violation upstream. *)

val equal : t -> t -> bool

val add : t -> t -> t
(** Numeric addition; [Null] absorbs. Raises [Invalid_argument] on
    non-numeric operands. *)

val neg : t -> t
(** Numeric negation; [Null] maps to [Null]. *)

val div : t -> t -> t
(** Numeric division; always yields [Float] (or [Null] when either operand
    is [Null] or the divisor is zero — SQL-style rather than raising). *)

val zero_of : ty -> t
(** Additive identity for numeric types; raises on [TStr]/[TBool]. *)

val to_int : t -> int
(** Raises [Invalid_argument] unless [Int]. *)

val to_float : t -> float
(** Numeric coercion of [Int]/[Float]; raises otherwise. *)

val pp : Format.formatter -> t -> unit
val pp_ty : Format.formatter -> ty -> unit
val to_string : t -> string
