(** Scalar expressions over rows: the language of view definitions
    (aggregate arguments, WHERE predicates) and query filters. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Col of int  (** resolved column position *)
  | Const of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (** always float; NULL on division by zero *)
  | Neg of t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t

val col : Schema.t -> string -> t
(** Column reference by name; raises [Not_found]. *)

val int : int -> t
val str : string -> t
val float : float -> t
val bool : bool -> t

val eval : t -> Row.t -> Value.t
(** Comparisons involving NULL yield NULL (three-valued logic); [And]/[Or]
    follow Kleene semantics. *)

val eval_bool : t -> Row.t -> bool
(** Predicate evaluation: NULL counts as false (SQL WHERE semantics). *)

val columns : t -> int list
(** Distinct referenced column positions, ascending. *)

val shift : t -> int -> t
(** Add an offset to every column reference (for the right side of a
    join's concatenated row). *)

val pp : Format.formatter -> t -> unit
