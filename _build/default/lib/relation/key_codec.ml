(* Tags chosen so that, within a column of consistent type, byte order equals
   value order, and NULL sorts below everything. Mixed int/float columns are
   rejected by schema validation upstream, so the Int/Float tag gap is never
   observed. *)

let tag_null = '\005'
let tag_bool = '\016'
let tag_int = '\032'
let tag_float = '\033'
let tag_str = '\048'

let add_int64_key buf v =
  (* flip the sign bit: two's complement order becomes unsigned byte order *)
  let v = Int64.logxor v Int64.min_int in
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Buffer.add_bytes buf b

let float_key_bits x =
  let bits = Int64.bits_of_float x in
  if Int64.compare bits 0L >= 0 then Int64.logxor bits Int64.min_int
  else Int64.lognot bits

let float_of_key_bits bits =
  if Int64.compare bits 0L < 0 then Int64.float_of_bits (Int64.logxor bits Int64.min_int)
  else Int64.float_of_bits (Int64.lognot bits)

let encode_cell buf v =
  match v with
  | Value.Null -> Buffer.add_char buf tag_null
  | Value.Bool b ->
      Buffer.add_char buf tag_bool;
      Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Int x ->
      Buffer.add_char buf tag_int;
      add_int64_key buf (Int64.of_int x)
  | Value.Float x ->
      Buffer.add_char buf tag_float;
      let b = Bytes.create 8 in
      Bytes.set_int64_be b 0 (float_key_bits x);
      Buffer.add_bytes buf b
  | Value.Str s ->
      Buffer.add_char buf tag_str;
      String.iter
        (fun c ->
          if c = '\000' then Buffer.add_string buf "\000\255"
          else Buffer.add_char buf c)
        s;
      Buffer.add_string buf "\000\001"

let encode row =
  let buf = Buffer.create 32 in
  Array.iter (encode_cell buf) row;
  Buffer.contents buf

let encode_one v = encode [| v |]

let decode s =
  let fail () = invalid_arg "Key_codec.decode: malformed key" in
  let len = String.length s in
  let pos = ref 0 in
  let need k = if !pos + k > len then fail () in
  let cells = ref [] in
  while !pos < len do
    let tag = s.[!pos] in
    incr pos;
    let v =
      if tag = tag_null then Value.Null
      else if tag = tag_bool then begin
        need 1;
        let b = s.[!pos] = '\001' in
        incr pos;
        Value.Bool b
      end
      else if tag = tag_int then begin
        need 8;
        let raw = String.get_int64_be s !pos in
        pos := !pos + 8;
        Value.Int (Int64.to_int (Int64.logxor raw Int64.min_int))
      end
      else if tag = tag_float then begin
        need 8;
        let raw = String.get_int64_be s !pos in
        pos := !pos + 8;
        Value.Float (float_of_key_bits raw)
      end
      else if tag = tag_str then begin
        let buf = Buffer.create 16 in
        let rec go () =
          need 1;
          let c = s.[!pos] in
          incr pos;
          if c = '\000' then begin
            need 1;
            let e = s.[!pos] in
            incr pos;
            if e = '\001' then () (* terminator *)
            else if e = '\255' then begin
              Buffer.add_char buf '\000';
              go ()
            end
            else fail ()
          end
          else begin
            Buffer.add_char buf c;
            go ()
          end
        in
        go ();
        Value.Str (Buffer.contents buf)
      end
      else fail ()
    in
    cells := v :: !cells
  done;
  Array.of_list (List.rev !cells)

let successor prefix =
  let n = String.length prefix in
  let rec last_incrementable i =
    if i < 0 then invalid_arg "Key_codec.successor: all-0xFF prefix"
    else if prefix.[i] <> '\255' then i
    else last_incrementable (i - 1)
  in
  let i = last_incrementable (n - 1) in
  let b = Bytes.of_string (String.sub prefix 0 (i + 1)) in
  Bytes.set b i (Char.chr (Char.code prefix.[i] + 1));
  Bytes.to_string b
