type t = Value.t array

(* Cell encoding: tag byte, then
   'i' : 8-byte big-endian int
   'f' : 8-byte IEEE754 bits
   's' : u16 length + bytes
   'b' : 1 byte
   'n' : nothing *)

let encode row =
  let buf = Buffer.create 64 in
  let b8 = Bytes.create 8 in
  Buffer.add_uint16_be buf (Array.length row);
  Array.iter
    (fun v ->
      match v with
      | Value.Int x ->
          Buffer.add_char buf 'i';
          Bytes.set_int64_be b8 0 (Int64.of_int x);
          Buffer.add_bytes buf b8
      | Value.Float x ->
          Buffer.add_char buf 'f';
          Bytes.set_int64_be b8 0 (Int64.bits_of_float x);
          Buffer.add_bytes buf b8
      | Value.Str s ->
          Buffer.add_char buf 's';
          Buffer.add_uint16_be buf (String.length s);
          Buffer.add_string buf s
      | Value.Bool b ->
          Buffer.add_char buf 'b';
          Buffer.add_char buf (if b then '\001' else '\000')
      | Value.Null -> Buffer.add_char buf 'n')
    row;
  Buffer.contents buf

let decode s =
  let fail () = invalid_arg "Row.decode: malformed row" in
  let len = String.length s in
  if len < 2 then fail ();
  let n = (Char.code s.[0] lsl 8) lor Char.code s.[1] in
  let pos = ref 2 in
  let need k = if !pos + k > len then fail () in
  let row =
    Array.init n (fun _ ->
        need 1;
        let tag = s.[!pos] in
        incr pos;
        match tag with
        | 'i' ->
            need 8;
            let v = Int64.to_int (String.get_int64_be s !pos) in
            pos := !pos + 8;
            Value.Int v
        | 'f' ->
            need 8;
            let v = Int64.float_of_bits (String.get_int64_be s !pos) in
            pos := !pos + 8;
            Value.Float v
        | 's' ->
            need 2;
            let l = (Char.code s.[!pos] lsl 8) lor Char.code s.[!pos + 1] in
            pos := !pos + 2;
            need l;
            let v = String.sub s !pos l in
            pos := !pos + l;
            Value.Str v
        | 'b' ->
            need 1;
            let v = s.[!pos] = '\001' in
            incr pos;
            Value.Bool v
        | 'n' -> Value.Null
        | _ -> fail ())
  in
  if !pos <> len then fail ();
  row

let project row positions = Array.map (fun i -> row.(i)) positions

let compare a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then Stdlib.compare (Array.length a) (Array.length b)
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = Array.length a = Array.length b && compare a b = 0

let pp ppf row =
  Format.fprintf ppf "[";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf "; ";
      Value.pp ppf v)
    row;
  Format.fprintf ppf "]"
