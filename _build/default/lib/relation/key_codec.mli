(** Order-preserving ("memcomparable") key encoding.

    B-tree keys are raw byte strings compared lexicographically; this codec
    guarantees [String.compare (encode a) (encode b) = Row.compare a b] for
    rows of identical shape, which property tests verify. Encoding:

    - each cell starts with a type tag chosen so NULL < bool < number < string;
    - ints: sign-bit-flipped 8-byte big-endian;
    - floats: IEEE bits, sign-flipped for positives, fully inverted for
      negatives (total order, -0.0 = 0.0 excepted);
    - strings: 0x00 escaped as 0x00 0xFF, terminated by 0x00 0x01. *)

val encode : Value.t array -> string

val decode : string -> Value.t array
(** Inverse of [encode]; raises [Invalid_argument] on malformed input. *)

val encode_one : Value.t -> string

val successor : string -> string
(** Smallest key strictly greater than every key having the argument as a
    prefix — used as an exclusive upper bound for prefix scans. *)
