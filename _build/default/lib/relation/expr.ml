type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Col of int
  | Const of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t

let col schema name = Col (Schema.index_of schema name)
let int i = Const (Value.Int i)
let str s = Const (Value.Str s)
let float f = Const (Value.Float f)
let bool b = Const (Value.Bool b)

let arith name fi ff a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> Value.Int (fi x y)
  | Value.Float x, Value.Float y -> Value.Float (ff x y)
  | Value.Int x, Value.Float y -> Value.Float (ff (float_of_int x) y)
  | Value.Float x, Value.Int y -> Value.Float (ff x (float_of_int y))
  | _ -> invalid_arg ("Expr: non-numeric operand to " ^ name)

let rec eval e row =
  match e with
  | Col i -> row.(i)
  | Const v -> v
  | Add (a, b) -> arith "+" ( + ) ( +. ) (eval a row) (eval b row)
  | Sub (a, b) -> arith "-" ( - ) ( -. ) (eval a row) (eval b row)
  | Mul (a, b) -> arith "*" ( * ) ( *. ) (eval a row) (eval b row)
  | Div (a, b) -> Value.div (eval a row) (eval b row)
  | Neg a -> Value.neg (eval a row)
  | Cmp (op, a, b) -> (
      match (eval a row, eval b row) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | va, vb ->
          let c = Value.compare va vb in
          let r =
            match op with
            | Eq -> c = 0
            | Ne -> c <> 0
            | Lt -> c < 0
            | Le -> c <= 0
            | Gt -> c > 0
            | Ge -> c >= 0
          in
          Value.Bool r)
  | And (a, b) -> (
      match (eval a row, eval b row) with
      | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
      | Value.Bool true, Value.Bool true -> Value.Bool true
      | (Value.Bool _ | Value.Null), (Value.Bool _ | Value.Null) -> Value.Null
      | _ -> invalid_arg "Expr: non-boolean operand to AND")
  | Or (a, b) -> (
      match (eval a row, eval b row) with
      | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
      | Value.Bool false, Value.Bool false -> Value.Bool false
      | (Value.Bool _ | Value.Null), (Value.Bool _ | Value.Null) -> Value.Null
      | _ -> invalid_arg "Expr: non-boolean operand to OR")
  | Not a -> (
      match eval a row with
      | Value.Bool b -> Value.Bool (not b)
      | Value.Null -> Value.Null
      | _ -> invalid_arg "Expr: non-boolean operand to NOT")
  | Is_null a -> Value.Bool (eval a row = Value.Null)

let eval_bool e row = match eval e row with Value.Bool b -> b | _ -> false

let columns e =
  let rec go acc = function
    | Col i -> i :: acc
    | Const _ -> acc
    | Neg a | Not a | Is_null a -> go acc a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Cmp (_, a, b)
    | And (a, b) | Or (a, b) ->
        go (go acc a) b
  in
  List.sort_uniq Stdlib.compare (go [] e)

let rec shift e off =
  match e with
  | Col i -> Col (i + off)
  | Const _ -> e
  | Add (a, b) -> Add (shift a off, shift b off)
  | Sub (a, b) -> Sub (shift a off, shift b off)
  | Mul (a, b) -> Mul (shift a off, shift b off)
  | Div (a, b) -> Div (shift a off, shift b off)
  | Neg a -> Neg (shift a off)
  | Cmp (op, a, b) -> Cmp (op, shift a off, shift b off)
  | And (a, b) -> And (shift a off, shift b off)
  | Or (a, b) -> Or (shift a off, shift b off)
  | Not a -> Not (shift a off)
  | Is_null a -> Is_null (shift a off)

let rec pp ppf = function
  | Col i -> Format.fprintf ppf "$%d" i
  | Const v -> Value.pp ppf v
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Neg a -> Format.fprintf ppf "(-%a)" pp a
  | Cmp (op, a, b) ->
      let s =
        match op with
        | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
      in
      Format.fprintf ppf "(%a %s %a)" pp a s pp b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp a
  | Is_null a -> Format.fprintf ppf "(%a IS NULL)" pp a
