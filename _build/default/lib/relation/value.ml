type ty = TInt | TFloat | TStr | TBool

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null

let type_of = function
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr
  | Bool _ -> Some TBool
  | Null -> None

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | (Int _ | Float _ | Str _ | Bool _), _ ->
      invalid_arg "Value.compare: incompatible types"

let equal a b = compare a b = 0

let add a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (x +. y)
  | Int x, Float y -> Float (float_of_int x +. y)
  | Float x, Int y -> Float (x +. float_of_int y)
  | _ -> invalid_arg "Value.add: non-numeric operand"

let neg = function
  | Null -> Null
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | _ -> invalid_arg "Value.neg: non-numeric operand"

let zero_of = function
  | TInt -> Int 0
  | TFloat -> Float 0.
  | TStr | TBool -> invalid_arg "Value.zero_of: non-numeric type"

let to_int = function Int x -> x | _ -> invalid_arg "Value.to_int"

let to_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | _ -> invalid_arg "Value.to_float"

let div a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _ ->
      let x = to_float a and y = to_float b in
      if y = 0. then Null else Float (x /. y)

let pp ppf = function
  | Int x -> Format.fprintf ppf "%d" x
  | Float x -> Format.fprintf ppf "%g" x
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.fprintf ppf "%b" b
  | Null -> Format.fprintf ppf "NULL"

let pp_ty ppf = function
  | TInt -> Format.fprintf ppf "INT"
  | TFloat -> Format.fprintf ppf "FLOAT"
  | TStr -> Format.fprintf ppf "STR"
  | TBool -> Format.fprintf ppf "BOOL"

let to_string v = Format.asprintf "%a" pp v
