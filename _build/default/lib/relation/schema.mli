(** Column layout of a table, index, or view. *)

type col = { name : string; ty : Value.ty; nullable : bool }

type t

val make : col list -> t
(** Raises [Invalid_argument] on duplicate column names. *)

val cols : t -> col array
val arity : t -> int

val index_of : t -> string -> int
(** Position of a column by name; raises [Not_found]. *)

val col_at : t -> int -> col

val validate : t -> Value.t array -> (unit, string) result
(** Checks arity, types, and null constraints of a candidate row. *)

val concat : t -> t -> t
(** Schema of the concatenation of two rows (for joins); duplicate names get
    a ["r."] prefix on the right side. *)

val pp : Format.formatter -> t -> unit
