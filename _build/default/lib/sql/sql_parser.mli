(** Recursive-descent parser for the SQL dialect (see {!Sql_ast}). *)

exception Parse_error of string

val parse : string -> Sql_ast.stmt
(** Parse one statement. Raises {!Parse_error} or
    {!Sql_lexer.Lex_error}. *)

val parse_expr : string -> Sql_ast.expr
(** Parse a bare expression (tests). *)
