(** Tokenizer for the SQL dialect. Keywords are case-insensitive;
    identifiers are lower-cased. *)

type token =
  | Kw of string  (** upper-cased keyword *)
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Sym of string  (** punctuation / operators: ( ) , * = <> <= >= < > + - . *)
  | Eof

exception Lex_error of string

val tokenize : string -> token list
val pp_token : Format.formatter -> token -> unit
