lib/sql/sql_ast.mli: Format Ivdb_relation
