lib/sql/sql.mli: Ivdb Ivdb_relation
