lib/sql/sql.ml: Array Buffer Format Ivdb Ivdb_core Ivdb_relation Ivdb_txn Ivdb_util List Option Printf Seq Sql_ast Sql_parser String
