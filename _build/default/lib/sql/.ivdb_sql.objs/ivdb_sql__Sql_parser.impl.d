lib/sql/sql_parser.ml: Format Ivdb_relation List Sql_ast Sql_lexer
