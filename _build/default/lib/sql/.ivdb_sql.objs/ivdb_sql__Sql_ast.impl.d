lib/sql/sql_ast.ml: Format Ivdb_relation List
