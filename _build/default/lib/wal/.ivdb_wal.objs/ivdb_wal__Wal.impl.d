lib/wal/wal.ml: Array Ivdb_sched Ivdb_util Log_record
