lib/wal/wal.mli: Ivdb_util Log_record
