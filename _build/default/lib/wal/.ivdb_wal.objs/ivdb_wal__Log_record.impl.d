lib/wal/log_record.ml: Buffer Bytes Char Format Ivdb_storage Ivdb_util List String
