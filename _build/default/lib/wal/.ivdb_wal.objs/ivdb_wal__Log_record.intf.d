lib/wal/log_record.mli: Format Ivdb_storage
