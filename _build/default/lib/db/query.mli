(** Reading tables and indexed views, plus the on-demand aggregation
    baseline that indexed views exist to beat. *)

type locking =
  | Serializable
      (** views: key-range locks (RangeS_S per key + end of range); tables:
          IS + S row locks *)
  | Read_committed
      (** short read locks modelled as instant-duration: the read still
          blocks behind uncommitted writers (E/X) but retains nothing *)
  | Dirty  (** no locks at all (internal tooling, statistics) *)

val table_scan :
  Database.t ->
  Ivdb_txn.Txn.t option ->
  Database.table ->
  ?where:Ivdb_relation.Expr.t ->
  locking ->
  Ivdb_relation.Row.t Seq.t

(** {1 Indexed views}

    View rows are returned as (group values, aggregate row); the aggregate
    row is [COUNT( * ) :: aggs] in definition order. Zero-count groups are
    logically absent and never returned. *)

val view_lookup :
  Database.t ->
  Ivdb_txn.Txn.t option ->
  Database.view ->
  Ivdb_relation.Value.t array ->
  Ivdb_relation.Row.t option
(** Point lookup by group values. Blocks behind in-flight escrow updates of
    the group (transactional callers). *)

val view_scan :
  Database.t ->
  Ivdb_txn.Txn.t option ->
  Database.view ->
  locking ->
  (Ivdb_relation.Row.t * Ivdb_relation.Row.t) Seq.t
(** Full ascending scan. Under [Serializable] the scan is phantom-protected:
    RangeS_S on every key (zero-count ghosts included) and on the index
    EOF. *)

val view_scan_range :
  Database.t ->
  Ivdb_txn.Txn.t option ->
  Database.view ->
  lo:Ivdb_relation.Value.t array ->
  hi:Ivdb_relation.Value.t array ->
  locking ->
  (Ivdb_relation.Row.t * Ivdb_relation.Row.t) Seq.t
(** Groups with [lo <= group < hi]. Under [Serializable] the range — and
    only the range — is phantom-protected: RangeS_S on every key inside
    plus the first key at-or-past [hi] (or EOF), so concurrent group
    creation inside the range blocks while creation outside proceeds. *)

val view_count : Database.t -> Database.view -> int
(** Unlocked count of visible (non-zero) groups. *)

val on_demand_aggregate :
  Database.t ->
  Ivdb_txn.Txn.t option ->
  Ivdb_core.View_def.t ->
  (Ivdb_relation.Row.t * Ivdb_relation.Row.t) list
(** Compute what an indexed view with this definition would contain by
    scanning the base tables — the no-view baseline of experiment E1.
    Results sorted by group key; zero-count groups omitted. Use
    {!Database.view_def} to aggregate "as if" an existing view. *)

val refresh : Database.t -> Ivdb_txn.Txn.t -> Database.view -> int
(** Drain a deferred view's delta queue into the view (exclusive protocol),
    under the caller's transaction. Returns deltas applied. Raises
    [Invalid_argument] for non-deferred views. *)

val staleness : Database.t -> Database.view -> int
(** Pending deltas of a deferred view (0 for immediate views). *)

val view_lookup_bounds :
  Database.t ->
  Database.view ->
  Ivdb_relation.Value.t array ->
  (Ivdb_relation.Row.t * Ivdb_relation.Row.t) option
(** Non-blocking escrow bounds read: the (low, high) interval the group's
    aggregate row can take across every commit/abort outcome of the
    in-flight escrow transactions — no locks, no waiting behind [E]
    holders. With no writers in flight the interval is a point. [None]
    when the group row does not physically exist; a zero-count row is
    returned as-is (its count bounds tell the caller whether the group may
    exist). Only meaningful for escrow-compatible views. *)
