(** The system catalog: tables, secondary indexes, and indexed views.

    The catalog is volatile state rebuilt on restart: every DDL statement
    logs an opaque {!op} payload, and each checkpoint embeds a full
    {!encode_snapshot}. Recovery restores the snapshot from the governing
    checkpoint and replays the DDL records that follow it. *)

type table_meta = {
  tb_id : int;
  tb_name : string;
  tb_cols : (string * Ivdb_relation.Value.ty * bool) array;
      (** (name, type, nullable) *)
  tb_first_page : int;
}

type index_meta = {
  ix_id : int;
  ix_name : string;
  ix_table : int;
  ix_col : int;  (** indexed column position *)
  ix_unique : bool;
  ix_root : int;
}

type view_meta = {
  vw_id : int;
  vw_name : string;
  vw_def : Ivdb_core.View_def.t;
  vw_root : int;
  vw_strategy : Ivdb_core.Maintain.strategy;
  vw_create_mode : Ivdb_core.Maintain.create_mode;
  vw_refresh_threshold : int option;
      (** deferred views: transactional readers drain the queue first when
          staleness exceeds this *)
  vw_queue : (int * int) option;  (** (queue id, queue first page) if deferred *)
}

type op = Add_table of table_meta | Add_index of index_meta | Add_view of view_meta

type t

val create : unit -> t
val fresh_id : t -> int
val apply_op : t -> op -> unit

val tables : t -> table_meta list
val indexes : t -> index_meta list
val views : t -> view_meta list

val table_named : t -> string -> table_meta option
val view_named : t -> string -> view_meta option
val indexes_of_table : t -> int -> index_meta list
val index_on : t -> table:int -> col:int -> index_meta option

val encode_op : op -> string
val decode_op : string -> op
val encode_snapshot : t -> string
val decode_snapshot : string -> t

val schema_of : table_meta -> Ivdb_relation.Schema.t
