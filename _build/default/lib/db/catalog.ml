module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema

type table_meta = {
  tb_id : int;
  tb_name : string;
  tb_cols : (string * Value.ty * bool) array;
  tb_first_page : int;
}

type index_meta = {
  ix_id : int;
  ix_name : string;
  ix_table : int;
  ix_col : int;
  ix_unique : bool;
  ix_root : int;
}

type view_meta = {
  vw_id : int;
  vw_name : string;
  vw_def : Ivdb_core.View_def.t;
  vw_root : int;
  vw_strategy : Ivdb_core.Maintain.strategy;
  vw_create_mode : Ivdb_core.Maintain.create_mode;
  vw_refresh_threshold : int option;
      (* deferred views: transactional readers drain the queue first when
         staleness exceeds this *)
  vw_queue : (int * int) option;
}

type op = Add_table of table_meta | Add_index of index_meta | Add_view of view_meta

type t = {
  mutable next_id : int;
  mutable tbls : table_meta list;
  mutable idxs : index_meta list;
  mutable vws : view_meta list;
}

let create () = { next_id = 1; tbls = []; idxs = []; vws = [] }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let bump t id = if id >= t.next_id then t.next_id <- id + 1

let apply_op t = function
  | Add_table m ->
      t.tbls <- t.tbls @ [ m ];
      bump t m.tb_id
  | Add_index m ->
      t.idxs <- t.idxs @ [ m ];
      bump t m.ix_id
  | Add_view m ->
      t.vws <- t.vws @ [ m ];
      bump t m.vw_id;
      (match m.vw_queue with Some (qid, _) -> bump t qid | None -> ())

let tables t = t.tbls
let indexes t = t.idxs
let views t = t.vws
let table_named t name = List.find_opt (fun m -> m.tb_name = name) t.tbls
let view_named t name = List.find_opt (fun m -> m.vw_name = name) t.vws
let indexes_of_table t tid = List.filter (fun m -> m.ix_table = tid) t.idxs

let index_on t ~table ~col =
  List.find_opt (fun m -> m.ix_table = table && m.ix_col = col) t.idxs

(* The catalog payloads travel only between a process and its own log, so
   Marshal (on plain data constructors: ints, strings, expression ASTs) is a
   safe, compact representation. A version byte guards future layouts. *)
let version = '\001'

let encode_op op = Printf.sprintf "%c%s" version (Marshal.to_string (op : op) [])

let decode_op s =
  if String.length s < 1 || s.[0] <> version then
    invalid_arg "Catalog.decode_op: bad version";
  (Marshal.from_string (String.sub s 1 (String.length s - 1)) 0 : op)

type snapshot = {
  s_next_id : int;
  s_tbls : table_meta list;
  s_idxs : index_meta list;
  s_vws : view_meta list;
}

let encode_snapshot t =
  let s =
    { s_next_id = t.next_id; s_tbls = t.tbls; s_idxs = t.idxs; s_vws = t.vws }
  in
  Printf.sprintf "%c%s" version (Marshal.to_string (s : snapshot) [])

let decode_snapshot str =
  if String.length str < 1 || str.[0] <> version then
    invalid_arg "Catalog.decode_snapshot: bad version";
  let s = (Marshal.from_string (String.sub str 1 (String.length str - 1)) 0 : snapshot) in
  { next_id = s.s_next_id; tbls = s.s_tbls; idxs = s.s_idxs; vws = s.s_vws }

let schema_of m =
  Schema.make
    (Array.to_list
       (Array.map
          (fun (name, ty, nullable) -> { Schema.name; ty; nullable })
          m.tb_cols))
