(** DML over base tables, with secondary-index maintenance and immediate
    (or deferred) propagation to every dependent indexed view — all inside
    the caller's transaction.

    Locking: writers take IX on the table and X on the touched row; index
    maintenance takes X on the affected index keys, with an instant
    RangeI_N on the gap for inserts. View maintenance locking is the
    strategy's business ({!Ivdb_core.Maintain}). *)

val insert :
  Database.t ->
  Ivdb_txn.Txn.t ->
  Database.table ->
  Ivdb_relation.Row.t ->
  Ivdb_storage.Heap_file.rid
(** Validates against the schema ([Invalid_argument] on mismatch). *)

val delete :
  Database.t -> Ivdb_txn.Txn.t -> Database.table -> Ivdb_storage.Heap_file.rid -> unit
(** Ghost-marks the row; the slot is physically reclaimed after commit.
    Raises [Not_found] if the rid is not live. *)

val update :
  Database.t ->
  Ivdb_txn.Txn.t ->
  Database.table ->
  Ivdb_storage.Heap_file.rid ->
  Ivdb_relation.Row.t ->
  Ivdb_storage.Heap_file.rid
(** Delete + insert; returns the row's new rid. *)

val get :
  Database.t ->
  Ivdb_txn.Txn.t option ->
  Database.table ->
  Ivdb_storage.Heap_file.rid ->
  Ivdb_relation.Row.t option
(** With a transaction: IS on the table, S on the row. *)

val delete_where :
  Database.t -> Ivdb_txn.Txn.t -> Database.table -> Ivdb_relation.Expr.t -> int
(** Delete every row satisfying the predicate; returns the count. *)

val row_count : Database.t -> Database.table -> int
(** Unlocked count of live rows. *)

val find :
  Database.t ->
  Ivdb_txn.Txn.t option ->
  Database.table ->
  col:string ->
  Ivdb_relation.Value.t ->
  (Ivdb_storage.Heap_file.rid * Ivdb_relation.Row.t) list
(** Rows whose column equals the value, with their current rids — through
    the column's index under key-range locking when one exists, a locked
    scan otherwise. The idiomatic way to address rows whose rid may have
    moved (updates relocate rows). *)
