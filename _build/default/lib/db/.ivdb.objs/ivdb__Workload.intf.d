lib/db/workload.mli: Database Ivdb_core
