lib/db/catalog.mli: Ivdb_core Ivdb_relation
