lib/db/workload.ml: Array Database Float Fun Ivdb_core Ivdb_lock Ivdb_relation Ivdb_sched Ivdb_txn Ivdb_util List Printf Query Seq Table Unix
