lib/db/query.ml: Database Hashtbl Ivdb_btree Ivdb_core Ivdb_lock Ivdb_relation Ivdb_storage Ivdb_txn Ivdb_util List Option Seq String
