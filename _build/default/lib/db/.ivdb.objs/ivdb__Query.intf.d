lib/db/query.mli: Database Ivdb_core Ivdb_relation Ivdb_txn Seq
