lib/db/table.ml: Array Database Ivdb_btree Ivdb_core Ivdb_lock Ivdb_relation Ivdb_storage Ivdb_txn Ivdb_util Ivdb_wal List Option Printf Seq
