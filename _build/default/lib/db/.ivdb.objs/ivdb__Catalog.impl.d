lib/db/catalog.ml: Array Ivdb_core Ivdb_relation List Marshal Printf String
