lib/db/table.mli: Database Ivdb_relation Ivdb_storage Ivdb_txn
