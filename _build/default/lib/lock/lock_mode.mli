(** Lock modes and their compatibility.

    Beyond the classical multi-granularity modes, two families carry the
    paper's contribution:

    - [E] (escrow / increment): taken on an aggregate view row to apply a
      commutative delta. [E] is compatible with [E] — many writers may
      increment the same group concurrently — but incompatible with [S],
      [U], and [X]: a reader must not observe an in-flight escrow value,
      and an exclusive writer must not race increments.

    - key-range modes [Range*_*] (after SQL Server's KRL): a lock on key
      [k] in an index also speaks for the open gap below [k]. The first
      component is the gap lock, the second the key lock; [RangeI_N] locks
      only the gap (insert protection) and is *instant-duration*. *)

type t =
  | N  (** no lock; identity for {!sup}, never stored *)
  | IS
  | IX
  | S
  | SIX
  | U
  | X
  | E
  | RangeS_S
  | RangeS_U
  | RangeI_N
  | RangeX_X

val compat : requested:t -> granted:t -> bool
(** Asymmetric in general (e.g. [U] may join granted [S], but [S] may not
    join granted [U]). *)

val sup : t -> t -> t
(** Least mode covering both, used for lock conversion (e.g.
    [sup S IX = SIX], [sup RangeS_S X = RangeX_X]). Combinations that never
    arise from the engine's protocols (e.g. [E] with [S]) escalate to a
    safe upper bound ([X] / [RangeX_X]). *)

val covers : held:t -> req:t -> bool
(** [true] iff holding [held] already grants [req]. *)

val is_range : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
