lib/lock/lock_mgr.ml: Hashtbl Ivdb_sched Ivdb_util List Lock_mode Lock_name Map Option
