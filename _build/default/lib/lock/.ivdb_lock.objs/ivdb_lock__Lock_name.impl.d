lib/lock/lock_name.ml: Format Ivdb_storage Ivdb_util Stdlib
