lib/lock/lock_name.mli: Format Ivdb_storage
