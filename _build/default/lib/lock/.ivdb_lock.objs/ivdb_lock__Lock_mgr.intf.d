lib/lock/lock_mgr.mli: Ivdb_util Lock_mode Lock_name
