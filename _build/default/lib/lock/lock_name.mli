(** Names of lockable resources, forming the granularity hierarchy
    database → table/index → row/key. *)

type t =
  | Database
  | Table of int  (** heap table or indexed view, by catalog id *)
  | Row of int * Ivdb_storage.Heap_file.rid  (** table id, record id *)
  | Key of int * string  (** index id, encoded key *)
  | Eof of int  (** the virtual +infinity key of an index: range locks past
                    the last real key attach here *)

val parent : t -> t option
(** The next coarser granule ([Database] has none). *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
