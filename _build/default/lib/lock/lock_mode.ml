type t =
  | N
  | IS
  | IX
  | S
  | SIX
  | U
  | X
  | E
  | RangeS_S
  | RangeS_U
  | RangeI_N
  | RangeX_X

(* Every mode decomposes into a (gap, key) pair; plain modes have gap GN.
   Compatibility and conversion are computed componentwise, which keeps the
   full 12x12 matrix consistent by construction. *)

type gap = GN | GS | GI | GX
type key = KN | KIS | KIX | KS | KSIX | KU | KX | KE

let decompose = function
  | N -> (GN, KN)
  | IS -> (GN, KIS)
  | IX -> (GN, KIX)
  | S -> (GN, KS)
  | SIX -> (GN, KSIX)
  | U -> (GN, KU)
  | X -> (GN, KX)
  | E -> (GN, KE)
  | RangeS_S -> (GS, KS)
  | RangeS_U -> (GS, KU)
  | RangeI_N -> (GI, KN)
  | RangeX_X -> (GX, KX)

let gap_compat ~requested ~granted =
  match (requested, granted) with
  | GN, _ | _, GN -> true
  | GS, GS -> true
  | GI, GI -> true
  | GS, GI | GI, GS -> false
  | GX, _ | _, GX -> false

(* requested (rows) vs granted (columns); asymmetric for U. *)
let key_compat ~requested ~granted =
  match (requested, granted) with
  | KN, _ | _, KN -> true
  | KE, KE -> true
  | KE, _ | _, KE -> false
  | KIS, KX -> false
  | KIS, _ -> true
  | KIX, (KIS | KIX) -> true
  | KIX, _ -> false
  | KS, (KIS | KS) -> true
  | KS, _ -> false
  | KSIX, KIS -> true
  | KSIX, _ -> false
  | KU, (KIS | KS) -> true
  | KU, _ -> false
  | KX, _ -> false

let compat ~requested ~granted =
  let rg, rk = decompose requested and gg, gk = decompose granted in
  gap_compat ~requested:rg ~granted:gg && key_compat ~requested:rk ~granted:gk

let gap_sup a b =
  match (a, b) with
  | GN, g | g, GN -> g
  | GS, GS -> GS
  | GI, GI -> GI
  | _ -> GX

let key_sup a b =
  match (a, b) with
  | KN, k | k, KN -> k
  | a, b when a = b -> a
  | KIS, k | k, KIS -> k
  | KIX, KS | KS, KIX -> KSIX
  | KSIX, (KS | KIX) | (KS | KIX), KSIX -> KSIX
  | KU, KS | KS, KU -> KU
  | _ -> KX (* incl. any combination with KE other than KE/KE *)

let recompose (g, k) =
  match (g, k) with
  | GN, KN -> N
  | GN, KIS -> IS
  | GN, KIX -> IX
  | GN, KS -> S
  | GN, KSIX -> SIX
  | GN, KU -> U
  | GN, KX -> X
  | GN, KE -> E
  | GS, KS -> RangeS_S
  | GS, KU -> RangeS_U
  | GI, KN -> RangeI_N
  | GX, KX -> RangeX_X
  (* combinations outside the named set escalate to a safe upper bound *)
  | GS, KN -> RangeS_S
  | (GS | GI | GX), _ -> RangeX_X

let sup a b =
  if a = b then a
  else
    let ag, ak = decompose a and bg, bk = decompose b in
    recompose (gap_sup ag bg, key_sup ak bk)

let covers ~held ~req = sup held req = held
let is_range m = match m with RangeS_S | RangeS_U | RangeI_N | RangeX_X -> true | _ -> false

let to_string = function
  | N -> "N"
  | IS -> "IS"
  | IX -> "IX"
  | S -> "S"
  | SIX -> "SIX"
  | U -> "U"
  | X -> "X"
  | E -> "E"
  | RangeS_S -> "RangeS-S"
  | RangeS_U -> "RangeS-U"
  | RangeI_N -> "RangeI-N"
  | RangeX_X -> "RangeX-X"

let pp ppf m = Format.pp_print_string ppf (to_string m)
