type t =
  | Database
  | Table of int
  | Row of int * Ivdb_storage.Heap_file.rid
  | Key of int * string
  | Eof of int

let parent = function
  | Database -> None
  | Table _ -> Some Database
  | Row (t, _) -> Some (Table t)
  | Key (i, _) | Eof i -> Some (Table i)

let compare = Stdlib.compare

let pp ppf = function
  | Database -> Format.fprintf ppf "db"
  | Table t -> Format.fprintf ppf "table:%d" t
  | Row (t, rid) -> Format.fprintf ppf "row:%d%a" t Ivdb_storage.Heap_file.pp_rid rid
  | Key (i, k) -> Format.fprintf ppf "key:%d/%s" i (Ivdb_util.Bytes_util.hex k)
  | Eof i -> Format.fprintf ppf "eof:%d" i
