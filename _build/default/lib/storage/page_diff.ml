type t = (int * string) list

(* Merge changed runs closer than this gap into one range: fewer, slightly
   larger ranges compress the framing overhead. *)
let merge_gap = 8

let compute ~before ~after =
  assert (Bytes.length before = Bytes.length after);
  let n = Bytes.length before in
  let ranges = ref [] in
  let i = ref 8 (* skip the LSN field, compare from the type byte on *) in
  while !i < n do
    if Bytes.get before !i <> Bytes.get after !i then begin
      let start = !i in
      let last_diff = ref !i in
      incr i;
      let continue = ref true in
      while !continue && !i < n do
        if Bytes.get before !i <> Bytes.get after !i then begin
          last_diff := !i;
          incr i
        end
        else if !i - !last_diff < merge_gap then incr i
        else continue := false
      done;
      let len = !last_diff - start + 1 in
      ranges := (start, Bytes.sub_string after start len) :: !ranges
    end
    else incr i
  done;
  List.rev !ranges

let apply page t =
  List.iter
    (fun (off, s) -> Bytes.blit_string s 0 page off (String.length s))
    t

let is_empty t = t = []
let byte_size t = List.fold_left (fun acc (_, s) -> acc + 6 + String.length s) 0 t

let encode t =
  let buf = Buffer.create 64 in
  Buffer.add_uint16_be buf (List.length t);
  List.iter
    (fun (off, s) ->
      Buffer.add_uint16_be buf off;
      Buffer.add_uint16_be buf (String.length s);
      Buffer.add_string buf s)
    t;
  Buffer.contents buf

let decode s =
  let fail () = invalid_arg "Page_diff.decode: malformed diff" in
  let len = String.length s in
  if len < 2 then fail ();
  let n = (Char.code s.[0] lsl 8) lor Char.code s.[1] in
  let pos = ref 2 in
  let ranges =
    List.init n (fun _ ->
        if !pos + 4 > len then fail ();
        let off = (Char.code s.[!pos] lsl 8) lor Char.code s.[!pos + 1] in
        let l = (Char.code s.[!pos + 2] lsl 8) lor Char.code s.[!pos + 3] in
        pos := !pos + 4;
        if !pos + l > len then fail ();
        let bytes = String.sub s !pos l in
        pos := !pos + l;
        (off, bytes))
  in
  if !pos <> len then fail ();
  ranges
