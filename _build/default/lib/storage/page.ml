let size = 8192
let header_size = 9

type ty = Free | Heap | Bt_leaf | Bt_interior

let alloc () = Bytes.make size '\000'
let get_lsn p = Bytes.get_int64_be p 0
let set_lsn p lsn = Bytes.set_int64_be p 0 lsn

let ty_code = function Free -> 0 | Heap -> 1 | Bt_leaf -> 2 | Bt_interior -> 3

let get_ty p =
  match Bytes.get_uint8 p 8 with
  | 0 -> Free
  | 1 -> Heap
  | 2 -> Bt_leaf
  | 3 -> Bt_interior
  | n -> invalid_arg (Printf.sprintf "Page.get_ty: corrupt type byte %d" n)

let set_ty p ty = Bytes.set_uint8 p 8 (ty_code ty)
