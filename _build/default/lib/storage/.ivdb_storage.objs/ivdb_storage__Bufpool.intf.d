lib/storage/bufpool.mli: Disk Ivdb_util Page_diff
