lib/storage/page.mli:
