lib/storage/heap_file.ml: Bufpool Disk Format Heap_page List Page_diff Stdlib String
