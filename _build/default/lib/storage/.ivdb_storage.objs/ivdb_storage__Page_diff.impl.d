lib/storage/page_diff.ml: Buffer Bytes Char List String
