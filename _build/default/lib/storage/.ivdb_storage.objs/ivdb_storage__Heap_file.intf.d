lib/storage/heap_file.mli: Bufpool Disk Format Page_diff
