lib/storage/disk.ml: Bytes Hashtbl Ivdb_sched Ivdb_util Page
