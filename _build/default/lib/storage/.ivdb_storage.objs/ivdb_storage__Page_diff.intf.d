lib/storage/page_diff.mli:
