lib/storage/heap_page.mli:
