lib/storage/heap_page.ml: Bytes Fun Ivdb_util List Page String
