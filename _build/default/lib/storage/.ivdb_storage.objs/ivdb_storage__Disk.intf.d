lib/storage/disk.mli: Ivdb_util
