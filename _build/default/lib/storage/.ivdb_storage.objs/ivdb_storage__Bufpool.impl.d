lib/storage/bufpool.ml: Bytes Disk Fun Hashtbl Ivdb_util List Page Page_diff
