type frame = {
  page_id : int;
  data : bytes;
  mutable dirty : bool;
  mutable rec_lsn : int64; (* meaningful when dirty *)
  mutable pins : int;
  mutable referenced : bool; (* clock hand hint *)
  mutable no_steal : bool;
      (* modified but the log record is not yet appended: unevictable *)
}

type t = {
  disk : Disk.t;
  cap : int;
  metrics : Ivdb_util.Metrics.t;
  frames : (int, frame) Hashtbl.t;
  mutable order : frame list; (* clock order, oldest first *)
  mutable wal_force : int64 -> unit;
}

let create disk ~capacity metrics =
  {
    disk;
    cap = capacity;
    metrics;
    frames = Hashtbl.create capacity;
    order = [];
    wal_force = (fun _ -> failwith "Bufpool: wal_force not set");
  }

let set_wal_force t f = t.wal_force <- f
let capacity t = t.cap
let disk t = t.disk

let write_back t fr =
  if fr.dirty then begin
    t.wal_force (Page.get_lsn fr.data);
    Disk.write t.disk fr.page_id fr.data;
    fr.dirty <- false;
    fr.rec_lsn <- 0L;
    Ivdb_util.Metrics.incr t.metrics "buffer.writeback"
  end

(* Clock eviction: sweep in insertion order, clearing reference bits; evict
   the first unpinned, unreferenced frame. Two sweeps suffice; if every
   frame is pinned we overflow rather than deadlock the cooperative
   scheduler. *)
let evict_one t =
  let victim = ref None in
  let rec sweep l passes =
    match (l, passes) with
    | [], 0 -> ()
    | [], n -> sweep t.order (n - 1)
    | fr :: rest, n ->
        if !victim = None then
          if fr.pins > 0 || fr.no_steal then sweep rest n
          else if fr.referenced then begin
            fr.referenced <- false;
            sweep rest n
          end
          else victim := Some fr
  in
  sweep t.order 2;
  match !victim with
  | None -> Ivdb_util.Metrics.incr t.metrics "buffer.overflow"
  | Some fr ->
      write_back t fr;
      Hashtbl.remove t.frames fr.page_id;
      t.order <- List.filter (fun f -> f.page_id <> fr.page_id) t.order;
      Ivdb_util.Metrics.incr t.metrics "buffer.evict"

let get_frame t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some fr ->
      fr.referenced <- true;
      Ivdb_util.Metrics.incr t.metrics "buffer.hit";
      fr
  | None ->
      Ivdb_util.Metrics.incr t.metrics "buffer.miss";
      if Hashtbl.length t.frames >= t.cap then evict_one t;
      let data = Disk.read t.disk page_id in
      let fr =
        {
          page_id;
          data;
          dirty = false;
          rec_lsn = 0L;
          pins = 0;
          referenced = true;
          no_steal = false;
        }
      in
      Hashtbl.add t.frames page_id fr;
      t.order <- t.order @ [ fr ];
      fr

let with_pin t page_id f =
  let fr = get_frame t page_id in
  fr.pins <- fr.pins + 1;
  Fun.protect ~finally:(fun () -> fr.pins <- fr.pins - 1) (fun () -> f fr)

let read t page_id f = with_pin t page_id (fun fr -> f fr.data)

let update t page_id f =
  with_pin t page_id (fun fr ->
      let before = Bytes.copy fr.data in
      let result = f fr.data in
      let diff = Page_diff.compute ~before ~after:fr.data in
      (* a real change opens a no-steal window until the caller logs the
         diff and stamps the page; an empty diff leaves the frame as-is *)
      if not (Page_diff.is_empty diff) then begin
        fr.dirty <- true;
        fr.no_steal <- true
      end;
      (result, diff))

let stamp t page_id lsn =
  match Hashtbl.find_opt t.frames page_id with
  | None -> invalid_arg "Bufpool.stamp: page not resident"
  | Some fr ->
      Page.set_lsn fr.data lsn;
      fr.no_steal <- false;
      if fr.rec_lsn = 0L then fr.rec_lsn <- lsn

let flush_page t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | None -> ()
  | Some fr -> write_back t fr

let flush_all t = List.iter (write_back t) t.order

let dirty_page_table t =
  List.filter_map
    (fun fr -> if fr.dirty then Some (fr.page_id, fr.rec_lsn) else None)
    t.order

let drop_all t =
  Hashtbl.reset t.frames;
  t.order <- []
