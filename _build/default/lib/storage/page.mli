(** Fixed-size page frames and the common page header.

    Every on-disk page starts with the same header:
    {v
      offset 0..7   pageLSN (i64, big-endian)
      offset 8      page type
    v}
    Layout beyond offset 9 belongs to the page's owner (heap page, B-tree
    node). *)

val size : int
(** 8192 bytes. *)

val header_size : int
(** 9: first byte available to owners. *)

type ty = Free | Heap | Bt_leaf | Bt_interior

val alloc : unit -> bytes
(** Fresh zeroed page ([Free], LSN 0). *)

val get_lsn : bytes -> int64
val set_lsn : bytes -> int64 -> unit

val get_ty : bytes -> ty
val set_ty : bytes -> ty -> unit
