(** Slotted heap-page layout (record storage with stable slot numbers).

    {v
      0..7    pageLSN        8     type (Heap)
      9..12   next_page      13..14 nslots      15..16 free_end
      17..    slot directory (u16 per slot: 0 = empty, else cell offset,
              high bit set = ghost)
      cells grow downward from the page end: u16 length + record bytes
    v}

    Deletion turns a record into a {e ghost}: invisible to readers but
    still occupying its slot and bytes, so that transaction rollback can
    revive exactly the same rid. Ghosts are physically reclaimed later by a
    system transaction ({!free_ghost}). *)

val init : bytes -> unit
(** Format a fresh page as an empty heap page. *)

val get_next : bytes -> int
val set_next : bytes -> int -> unit

val nslots : bytes -> int

val max_record : int
(** Largest record this layout can store in an empty page. *)

val insert : bytes -> string -> int option
(** [insert page record] returns the slot, or [None] if the record does not
    fit even after compaction. Ghost slots are not reused. Raises
    [Invalid_argument] if the record can never fit a page. *)

val delete : bytes -> int -> bool
(** Mark the slot as a ghost; [false] if not live. *)

val revive : bytes -> int -> bool
(** Undo a deletion: clear the ghost flag; [false] if the slot is not a
    ghost. *)

val free_ghost : bytes -> int -> bool
(** Physically reclaim a ghost slot; [false] if the slot is not a ghost. *)

val is_ghost : bytes -> int -> bool

val get : bytes -> int -> string option
(** Live records only. *)

val get_any : bytes -> int -> string option
(** Live or ghost. *)

val set : bytes -> int -> string -> bool
(** In-place overwrite of a live record of the same length. *)

val free_space : bytes -> int
(** Usable bytes for one more record, counting dead (not ghost) cell space
    reclaimable by compaction. *)

val iter : bytes -> (int -> string -> unit) -> unit
(** Live records, ascending slot order. *)

val iter_ghosts : bytes -> (int -> unit) -> unit
