(** Simulated stable storage for pages.

    A page store with I/O accounting and a logical-time cost model. Contents
    survive a simulated crash (the buffer pool does not), which is what the
    crash-recovery tests exploit. *)

type t

val create : ?read_cost:int -> ?write_cost:int -> Ivdb_util.Metrics.t -> t
(** Costs are logical ticks charged to the scheduler clock per I/O
    (defaults 100/100, the classic 100:1 I/O-to-CPU-step ratio). *)

val alloc_page : t -> int
(** Fresh page id (ids start at 1; 0 is "nil"). Allocation itself performs
    no I/O. *)

val read : t -> int -> bytes
(** Copy of the page's stable image; a never-written page reads as zeroes.
    Counts [disk.read]. *)

val write : t -> int -> bytes -> unit
(** Stores a copy. Counts [disk.write]. *)

val page_count : t -> int
(** Number of pages ever written. *)

val max_page_id : t -> int

val bump_alloc : t -> int -> unit
(** Raise the allocation cursor to at least [id + 1]; recovery calls this
    with the largest page id seen in the log so redo never collides with
    fresh allocations. *)
