(** Byte-range diffs between two images of the same page.

    The engine logs *physiological* redo information: after mutating a page
    in the buffer pool, the changed byte ranges (computed against a
    pre-image copy) become the redo payload of the log record. Redo is then
    a pure page-level byte patch, independent of record semantics — it works
    uniformly for heap pages, B-tree nodes, and structure modifications.
    The pageLSN range at offsets 0..7 is excluded; the logger stamps it. *)

type t = (int * string) list
(** [(offset, replacement bytes)] ranges, ascending, non-overlapping. *)

val compute : before:bytes -> after:bytes -> t
(** Ranges where the images differ (offsets >= {!Page.header_size} minus the
    type byte are compared from offset 8 on; the LSN field is ignored). *)

val apply : bytes -> t -> unit

val is_empty : t -> bool
val byte_size : t -> int
(** Log-volume accounting: payload bytes plus per-range framing. *)

val encode : t -> string
val decode : string -> t
