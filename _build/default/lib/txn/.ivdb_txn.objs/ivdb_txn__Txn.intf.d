lib/txn/txn.mli: Ivdb_lock Ivdb_storage Ivdb_util Ivdb_wal
