lib/txn/txn.ml: Hashtbl Int64 Ivdb_lock Ivdb_storage Ivdb_util Ivdb_wal List Printf
