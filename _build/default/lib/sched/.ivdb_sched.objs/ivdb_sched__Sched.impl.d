lib/sched/sched.ml: Array Effect Ivdb_util
