lib/sched/sched.mli:
