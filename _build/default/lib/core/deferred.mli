(** Deferred maintenance: writers append deltas to a side queue instead of
    touching the view; a refresh transaction folds the queue into the view.

    The queue is an ordinary logged heap file, so delta appends are
    transactional: an aborting writer's deltas are rolled back with it, and
    recovery preserves exactly the committed tail. Appends take no view
    locks at all — that is the point of the strategy. *)

type t

val create :
  Ivdb_txn.Txn.mgr -> queue_id:int -> t * Ivdb_wal.Log_record.page_diffs
(** [queue_id] names the queue in the lock and undo spaces (a catalog id).
    The returned diffs are the queue heap's initialization (caller logs them
    under its DDL transaction). *)

val attach : Ivdb_txn.Txn.mgr -> queue_id:int -> first_page:int -> t
val first_page : t -> int
val queue_id : t -> int

val append : Ivdb_txn.Txn.t -> t -> key:string -> Aggregate.delta -> unit
(** Logged under the writer's transaction; additive deltas only. *)

val pending : t -> int
(** Number of queued deltas — the view's staleness measure. *)

val drain :
  Ivdb_txn.Txn.t ->
  t ->
  apply:(key:string -> Aggregate.delta -> unit) ->
  int
(** Fold all queued deltas (combined per group) through [apply] and delete
    them from the queue, all under the caller's transaction. Returns the
    number of raw deltas consumed. *)

val vacuum : t -> int
(** Physically reclaim ghost queue entries left by committed drains, as a
    system transaction. Returns slots reclaimed. *)

val heap : t -> Ivdb_storage.Heap_file.t
