lib/core/maintain.mli: Aggregate Deferred Inflight Ivdb_btree Ivdb_relation Ivdb_txn Ivdb_wal View_def
