lib/core/group_gc.mli: Ivdb_txn Maintain
