lib/core/view_def.mli: Format Ivdb_relation
