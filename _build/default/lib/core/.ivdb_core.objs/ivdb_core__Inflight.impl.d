lib/core/inflight.ml: Aggregate Array Hashtbl Ivdb_relation List
