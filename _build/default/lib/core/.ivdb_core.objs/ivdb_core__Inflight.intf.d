lib/core/inflight.mli: Aggregate Ivdb_relation View_def
