lib/core/maintain.ml: Aggregate Deferred Inflight Ivdb_btree Ivdb_lock Ivdb_relation Ivdb_txn Ivdb_util Ivdb_wal View_def
