lib/core/group_gc.ml: Aggregate Ivdb_btree Ivdb_lock Ivdb_relation Ivdb_txn Ivdb_util List Maintain
