lib/core/aggregate.ml: Array Ivdb_relation Seq View_def
