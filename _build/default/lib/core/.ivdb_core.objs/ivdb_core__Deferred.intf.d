lib/core/deferred.mli: Aggregate Ivdb_storage Ivdb_txn Ivdb_wal
