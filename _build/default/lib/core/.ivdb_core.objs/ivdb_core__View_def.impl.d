lib/core/view_def.ml: Array Format Ivdb_relation
