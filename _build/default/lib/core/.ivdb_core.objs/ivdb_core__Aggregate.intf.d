lib/core/aggregate.mli: Ivdb_relation Seq View_def
