lib/core/deferred.ml: Aggregate Buffer Char Hashtbl Ivdb_lock Ivdb_storage Ivdb_txn Ivdb_wal List String
