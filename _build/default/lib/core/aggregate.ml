module Value = Ivdb_relation.Value
module Row = Ivdb_relation.Row
module Expr = Ivdb_relation.Expr

type agg_delta =
  | Add of Value.t
  | Consider of Value.t
  | Retire of Value.t

type delta = { dcount : int; daggs : agg_delta array }

let agg_delta_of def sign row =
  match def with
  | View_def.Count_star -> Add (Value.Int sign)
  | View_def.Count e ->
      Add (if Expr.eval e row = Value.Null then Value.Int 0 else Value.Int sign)
  | View_def.Sum e -> (
      match Expr.eval e row with
      | Value.Null -> Add (Value.Int 0)
      | v -> Add (if sign >= 0 then v else Value.neg v))
  | View_def.Min e | View_def.Max e ->
      let v = Expr.eval e row in
      if sign >= 0 then Consider v else Retire v

let delta_of_row def ~sign row =
  let passes =
    match View_def.where_of def with
    | None -> true
    | Some pred -> Expr.eval_bool pred row
  in
  if not passes then None
  else
    let key = View_def.group_key def row in
    let daggs = Array.map (fun a -> agg_delta_of a sign row) def.View_def.aggs in
    Some (key, { dcount = sign; daggs })

let zero_of_agg = function
  | View_def.Count_star | View_def.Count _ -> Value.Int 0
  | View_def.Sum _ -> Value.Int 0
  | View_def.Min _ | View_def.Max _ -> Value.Null

let zero_row def =
  Array.append [| Value.Int 0 |] (Array.map zero_of_agg def.View_def.aggs)

let min_merge cur v =
  match (cur, v) with
  | Value.Null, v -> v
  | cur, Value.Null -> cur
  | cur, v -> if Value.compare v cur < 0 then v else cur

let max_merge cur v =
  match (cur, v) with
  | Value.Null, v -> v
  | cur, Value.Null -> cur
  | cur, v -> if Value.compare v cur > 0 then v else cur

let apply def stored delta =
  let n = Array.length def.View_def.aggs in
  if Array.length stored <> n + 1 then
    invalid_arg "Aggregate.apply: stored row arity does not match view";
  if Array.length delta.daggs <> n then
    invalid_arg "Aggregate.apply: delta shape does not match view";
  let out = Array.copy stored in
  out.(0) <- Value.Int (Value.to_int stored.(0) + delta.dcount);
  let needs_recompute = ref false in
  Array.iteri
    (fun i agg ->
      let cur = stored.(i + 1) in
      match (agg, delta.daggs.(i)) with
      | (View_def.Count_star | View_def.Count _ | View_def.Sum _), Add d ->
          out.(i + 1) <- Value.add cur d
      | View_def.Min _, Consider v -> out.(i + 1) <- min_merge cur v
      | View_def.Max _, Consider v -> out.(i + 1) <- max_merge cur v
      | (View_def.Min _ | View_def.Max _), Retire v ->
          (* removing a non-extremum is a no-op; removing the extremum (or a
             tie for it) requires recomputation from the base *)
          if v <> Value.Null && Value.compare v cur = 0 then needs_recompute := true
      | _, (Add _ | Consider _ | Retire _) ->
          invalid_arg "Aggregate.apply: delta shape does not match view"
    )
    def.View_def.aggs;
  if !needs_recompute then `Recompute else `Ok out

let is_additive delta =
  Array.for_all (function Add _ -> true | Consider _ | Retire _ -> false) delta.daggs

let negate delta =
  {
    dcount = -delta.dcount;
    daggs =
      Array.map
        (function
          | Add v -> Add (Value.neg v)
          | Consider _ | Retire _ -> invalid_arg "Aggregate.negate: not additive")
        delta.daggs;
  }

let combine a b =
  if not (is_additive a && is_additive b) then None
  else
    Some
      {
        dcount = a.dcount + b.dcount;
        daggs =
          Array.map2
            (fun x y ->
              match (x, y) with
              | Add u, Add v -> Add (Value.add u v)
              | _ -> assert false)
            a.daggs b.daggs;
      }

let encode delta =
  if not (is_additive delta) then invalid_arg "Aggregate.encode: not additive";
  let cells =
    Array.append
      [| Value.Int delta.dcount |]
      (Array.map (function Add v -> v | _ -> assert false) delta.daggs)
  in
  Row.encode cells

let decode s =
  let cells = Row.decode s in
  if Array.length cells < 1 then invalid_arg "Aggregate.decode: empty delta";
  {
    dcount = Value.to_int cells.(0);
    daggs = Array.map (fun v -> Add v) (Array.sub cells 1 (Array.length cells - 1));
  }

let fold_rows def rows =
  Seq.fold_left
    (fun acc row ->
      match delta_of_row def ~sign:1 row with
      | None -> acc
      | Some (_, delta) -> (
          match apply def acc delta with
          | `Ok acc' -> acc'
          | `Recompute -> assert false (* inserts never retire *)))
    (zero_row def) rows

let count_of stored = Value.to_int stored.(0)
