(** The aggregate delta algebra of incremental view maintenance.

    A base-table change contributes a {!delta} per affected group: a row
    count delta plus one entry per aggregate. COUNT/SUM deltas are additive
    (they commute — the basis of escrow locking); MIN/MAX contribute a
    candidate on insert and a removal on delete, where removing the current
    extremum forces a group recompute. *)

type agg_delta =
  | Add of Ivdb_relation.Value.t  (** additive contribution (COUNT/SUM) *)
  | Consider of Ivdb_relation.Value.t  (** MIN/MAX candidate from an insert *)
  | Retire of Ivdb_relation.Value.t  (** MIN/MAX value leaving on a delete *)

type delta = { dcount : int; daggs : agg_delta array }

val delta_of_row :
  View_def.t -> sign:int -> Ivdb_relation.Row.t -> (string * delta) option
(** The (group key, delta) a source row contributes with [sign] +1 (insert)
    or -1 (delete); [None] when the view's WHERE rejects the row. *)

val zero_row : View_def.t -> Ivdb_relation.Row.t
(** Stored aggregate row of an empty group: COUNT( * ) 0, sums 0, MIN/MAX
    NULL. This is what the group-creating system transaction inserts. *)

val apply :
  View_def.t ->
  Ivdb_relation.Row.t ->
  delta ->
  [ `Ok of Ivdb_relation.Row.t | `Recompute ]
(** Fold a delta into a stored aggregate row. [`Recompute] when a MIN/MAX
    retirement hits the current extremum (the caller recomputes the group
    from base data). *)

val is_additive : delta -> bool
val negate : delta -> delta
(** Inverse of an additive delta (logical undo of an escrow update). Raises
    [Invalid_argument] on non-additive deltas. *)

val combine : delta -> delta -> delta option
(** Sum of two additive deltas on the same group; [None] when either is not
    additive. Used by deferred maintenance to fold the delta queue. *)

val encode : delta -> string
val decode : string -> delta
(** Additive deltas only (escrow log records, deferred queues). *)

val fold_rows : View_def.t -> Ivdb_relation.Row.t Seq.t -> Ivdb_relation.Row.t
(** Aggregate a group's source rows from scratch: initial materialization,
    MIN/MAX recompute, and the no-view query baseline. *)

val count_of : Ivdb_relation.Row.t -> int
(** COUNT( * ) cell of a stored aggregate row. *)
