module Expr = Ivdb_relation.Expr
module Row = Ivdb_relation.Row
module Key_codec = Ivdb_relation.Key_codec

type agg =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type source =
  | Single of { table : int; where : Expr.t option }
  | Join of {
      left : int;
      right : int;
      left_col : int;
      right_col : int;
      where : Expr.t option;
    }

type t = {
  name : string;
  group_cols : int array;
  aggs : agg array;
  source : source;
}

let escrow_compatible t =
  Array.for_all
    (function Count_star | Count _ | Sum _ -> true | Min _ | Max _ -> false)
    t.aggs

let tables_of t =
  match t.source with
  | Single { table; _ } -> [ table ]
  | Join { left; right; _ } -> [ left; right ]

let where_of t =
  match t.source with Single { where; _ } -> where | Join { where; _ } -> where

let group_key t row = Key_codec.encode (Row.project row t.group_cols)
let stored_arity t = 1 + Array.length t.aggs

let pp_agg ppf = function
  | Count_star -> Format.fprintf ppf "COUNT( * )"
  | Count e -> Format.fprintf ppf "COUNT(%a)" Expr.pp e
  | Sum e -> Format.fprintf ppf "SUM(%a)" Expr.pp e
  | Min e -> Format.fprintf ppf "MIN(%a)" Expr.pp e
  | Max e -> Format.fprintf ppf "MAX(%a)" Expr.pp e

let pp ppf t =
  let src ppf = function
    | Single { table; _ } -> Format.fprintf ppf "table %d" table
    | Join { left; right; left_col; right_col; _ } ->
        Format.fprintf ppf "table %d JOIN table %d ON $%d = $%d" left right
          left_col right_col
  in
  Format.fprintf ppf "VIEW %s: GROUP BY %a, aggs [%a] FROM %a" t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (Array.to_list t.group_cols)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_agg)
    (Array.to_list t.aggs) src t.source
