(** Definitions of indexed views: grouped aggregates over one base table or
    a two-table equi-join.

    An indexed view is stored as a clustered B-tree: the key is the
    memcomparable encoding of the GROUP BY columns, the value the encoded
    aggregate row. Following the SQL Server rule that motivated it, every
    indexed view implicitly maintains COUNT( * ) — the row count is what
    decides when a group logically appears and disappears. *)

type agg =
  | Count_star
  | Count of Ivdb_relation.Expr.t  (** non-null count of the expression *)
  | Sum of Ivdb_relation.Expr.t
  | Min of Ivdb_relation.Expr.t
  | Max of Ivdb_relation.Expr.t

type source =
  | Single of { table : int; where : Ivdb_relation.Expr.t option }
  | Join of {
      left : int;
      right : int;
      left_col : int;  (** equi-join column position in the left schema *)
      right_col : int;
      where : Ivdb_relation.Expr.t option;
          (** residual predicate over the concatenated (left @ right) row *)
    }
      (** expressions and [group_cols] address the concatenated row *)

type t = {
  name : string;
  group_cols : int array;  (** positions into the source row *)
  aggs : agg array;
  source : source;
}

val escrow_compatible : t -> bool
(** True iff every aggregate is commutative (COUNT/SUM): MIN/MAX cannot be
    maintained under increment locks because deletions need a group
    recompute. *)

val tables_of : t -> int list
val where_of : t -> Ivdb_relation.Expr.t option

val group_key : t -> Ivdb_relation.Row.t -> string
(** Encoded GROUP BY key of a source row. *)

val stored_arity : t -> int
(** Arity of the stored aggregate row: 1 (COUNT( * )) + number of
    aggregates. *)

val pp : Format.formatter -> t -> unit
