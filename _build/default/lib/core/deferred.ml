module Txn = Ivdb_txn.Txn
module Heap_file = Ivdb_storage.Heap_file
module Log_record = Ivdb_wal.Log_record
module Lock_name = Ivdb_lock.Lock_name
module Lock_mode = Ivdb_lock.Lock_mode

type t = { mgr : Txn.mgr; qid : int; qheap : Heap_file.t }

let create mgr ~queue_id =
  let qheap, diffs = Heap_file.create (Txn.pool mgr) (Txn.disk mgr) in
  ({ mgr; qid = queue_id; qheap }, diffs)

let attach mgr ~queue_id ~first_page =
  { mgr; qid = queue_id; qheap = Heap_file.attach (Txn.pool mgr) (Txn.disk mgr) ~first_page }

let first_page t = Heap_file.first_page t.qheap
let queue_id t = t.qid
let heap t = t.qheap

let encode_entry ~key delta =
  let d = Aggregate.encode delta in
  let b = Buffer.create (4 + String.length key + String.length d) in
  Buffer.add_uint16_be b (String.length key);
  Buffer.add_string b key;
  Buffer.add_string b d;
  Buffer.contents b

let decode_entry s =
  let klen = (Char.code s.[0] lsl 8) lor Char.code s.[1] in
  let key = String.sub s 2 klen in
  let delta = Aggregate.decode (String.sub s (2 + klen) (String.length s - 2 - klen)) in
  (key, delta)

let append txn t ~key delta =
  if not (Aggregate.is_additive delta) then
    invalid_arg "Deferred.append: deferred maintenance requires additive deltas";
  Txn.lock t.mgr txn (Lock_name.Table t.qid) Lock_mode.IX;
  let rid, diffs = Heap_file.insert t.qheap (encode_entry ~key delta) in
  Txn.lock t.mgr txn (Lock_name.Row (t.qid, rid)) Lock_mode.X;
  Txn.log_update t.mgr txn
    ~undo:(Log_record.Undo_heap_insert { table = t.qid; rid })
    diffs

let pending t =
  let n = ref 0 in
  Heap_file.iter t.qheap (fun _ _ -> incr n);
  !n

let drain txn t ~apply =
  (* exclude concurrent appends and other drains for the duration *)
  Txn.lock t.mgr txn (Lock_name.Table t.qid) Lock_mode.X;
  let entries = ref [] in
  Heap_file.iter t.qheap (fun rid r -> entries := (rid, decode_entry r) :: !entries);
  let entries = List.rev !entries in
  (* combine per group so each view row is touched once *)
  let combined : (string, Aggregate.delta) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (_, (key, delta)) ->
      match Hashtbl.find_opt combined key with
      | None -> Hashtbl.replace combined key delta
      | Some acc -> (
          match Aggregate.combine acc delta with
          | Some s -> Hashtbl.replace combined key s
          | None -> assert false))
    entries;
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) combined []) in
  List.iter (fun key -> apply ~key (Hashtbl.find combined key)) keys;
  List.iter
    (fun (rid, _) ->
      let diffs = Heap_file.delete t.qheap rid in
      Txn.log_update t.mgr txn
        ~undo:(Log_record.Undo_heap_delete { table = t.qid; rid })
        diffs)
    entries;
  List.length entries

let vacuum t =
  (* a ghost may belong to an in-flight drain or appender: reclaim only when
     nobody holds any lock on the queue table *)
  if not (Ivdb_lock.Lock_mgr.unlocked (Txn.locks t.mgr) (Lock_name.Table t.qid)) then 0
  else begin
  let ghosts = ref [] in
  List.iter
    (fun pid ->
      Ivdb_storage.Bufpool.read (Txn.pool t.mgr) pid (fun p ->
          Ivdb_storage.Heap_page.iter_ghosts p (fun slot ->
              ghosts := { Heap_file.rpage = pid; rslot = slot } :: !ghosts)))
    (Heap_file.page_ids t.qheap);
  let reclaimed = ref 0 in
  if !ghosts <> [] then begin
    let stx = Txn.begin_system t.mgr in
    List.iter
      (fun rid ->
        match Heap_file.free_ghost t.qheap rid with
        | [] -> ()
        | diffs ->
            incr reclaimed;
            Txn.log_update t.mgr stx ~undo:Log_record.No_undo diffs)
      !ghosts;
    Txn.commit t.mgr stx
  end;
  !reclaimed
  end
