(** Garbage collection of logically-deleted view groups.

    Under escrow maintenance, a group whose COUNT( * ) returns to zero is not
    deleted by the decrementing transaction (that would need an X lock and
    reintroduce the hot spot). The row stays — invisible to readers — until
    this collector removes it in a system transaction, and only when no
    transaction holds or awaits a lock on it. *)

val run : Ivdb_txn.Txn.mgr -> Maintain.runtime -> int
(** Remove every reclaimable zero-count row; returns how many were removed.
    Counts [view.gc_removed]. *)

val zero_count_rows : Maintain.runtime -> int
(** Zero-count rows currently present (reclaimable or not). *)
