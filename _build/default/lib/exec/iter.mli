(** Volcano-style query operators over row streams.

    Streams are [Row.t Seq.t]: demand-driven, so operators compose like the
    iterator trees of a conventional executor. Sources (table scans, index
    scans with their locking protocol) are constructed by the database
    layer; this module supplies the algebra. *)

type row = Ivdb_relation.Row.t
type source = unit -> row Seq.t

val filter : Ivdb_relation.Expr.t -> row Seq.t -> row Seq.t
val project : int array -> row Seq.t -> row Seq.t
val map : (row -> row) -> row Seq.t -> row Seq.t
val limit : int -> row Seq.t -> row Seq.t

val nested_loop_join :
  on:Ivdb_relation.Expr.t -> row Seq.t -> source -> row Seq.t
(** [nested_loop_join ~on outer inner] concatenates each outer row with each
    inner row and keeps pairs satisfying [on] (evaluated over the
    concatenated row). The inner source is re-opened per outer row. *)

val hash_join :
  left_key:int array -> right_key:int array -> row Seq.t -> row Seq.t -> row Seq.t
(** Equi-join: builds a hash table on the (fully consumed) right input,
    probes with the left; output is left-row @ right-row. *)

val sort : by:int array -> ?desc:bool -> row Seq.t -> row Seq.t
(** Materializing sort by the given column positions. *)

val index_scan :
  Ivdb_btree.Btree.t ->
  ?lo:string ->
  ?hi:string ->
  ?on_entry:(string -> string -> unit) ->
  decode:(string -> string -> row) ->
  unit ->
  row Seq.t
(** Ascending scan of an index: keys in [\[lo, hi)] ([lo] inclusive, [hi]
    exclusive; both optional). [on_entry] is the locking hook, called with
    each (key, value) before it is yielded. *)

val to_list : row Seq.t -> row list
val count : row Seq.t -> int

val distinct : row Seq.t -> row Seq.t
(** Hash-based duplicate elimination (first occurrence wins). *)

val union_all : row Seq.t list -> row Seq.t

val merge_join :
  left_key:int array -> right_key:int array -> row Seq.t -> row Seq.t -> row Seq.t
(** Equi-join of inputs already sorted on their keys; handles duplicate
    keys on both sides (cross product within a key group). Output is
    left-row @ right-row in key order. *)

val top_k : by:int array -> ?desc:bool -> int -> row Seq.t -> row Seq.t
(** The k smallest (or largest) rows by the sort key. *)
