module Row = Ivdb_relation.Row
module Expr = Ivdb_relation.Expr
module Btree = Ivdb_btree.Btree

type row = Row.t
type source = unit -> row Seq.t

let filter pred rows = Seq.filter (fun r -> Expr.eval_bool pred r) rows
let project positions rows = Seq.map (fun r -> Row.project r positions) rows
let map f rows = Seq.map f rows
let limit n rows = Seq.take n rows

let nested_loop_join ~on outer inner =
  Seq.concat_map
    (fun l ->
      Seq.filter_map
        (fun r ->
          let joined = Array.append l r in
          if Expr.eval_bool on joined then Some joined else None)
        (inner ()))
    outer

let hash_join ~left_key ~right_key left right =
  let tbl = Hashtbl.create 256 in
  Seq.iter
    (fun r ->
      let k = Row.encode (Row.project r right_key) in
      Hashtbl.add tbl k r)
    right;
  Seq.concat_map
    (fun l ->
      let k = Row.encode (Row.project l left_key) in
      (* Hashtbl.find_all returns matches newest-first; order is not part of
         the operator contract *)
      List.to_seq (List.map (fun r -> Array.append l r) (Hashtbl.find_all tbl k)))
    left

let sort ~by ?(desc = false) rows =
  let arr = Array.of_seq rows in
  let cmp a b =
    let c = Row.compare (Row.project a by) (Row.project b by) in
    if desc then -c else c
  in
  Array.stable_sort cmp arr;
  Array.to_seq arr

let index_scan tree ?lo ?hi ?(on_entry = fun _ _ -> ()) ~decode () =
  let start = match lo with Some k -> k | None -> "" in
  let in_range k = match hi with Some h -> String.compare k h < 0 | None -> true in
  let rec step cur () =
    match cur with
    | None -> Seq.Nil
    | Some (k, v, c) ->
        if in_range k then begin
          on_entry k v;
          Seq.Cons (decode k v, step (Btree.cursor_next tree c))
        end
        else Seq.Nil
  in
  fun () -> step (Btree.seek tree start) ()

let to_list rows = List.of_seq rows
let count rows = Seq.fold_left (fun n _ -> n + 1) 0 rows

let distinct rows =
  let seen = Hashtbl.create 64 in
  Seq.filter
    (fun r ->
      let k = Row.encode r in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    rows

let union_all seqs = Seq.concat (List.to_seq seqs)

let merge_join ~left_key ~right_key left right =
  (* materialize the right side lazily group by group *)
  let key_of ks r = Row.project r ks in
  let rec advance_right cur rrest target =
    (* returns (group rows equal to target, rest) skipping smaller keys *)
    match cur with
    | None -> ([], None, rrest)
    | Some r ->
        let c = Row.compare (key_of right_key r) target in
        if c < 0 then begin
          match rrest () with
          | Seq.Nil -> ([], None, Seq.empty)
          | Seq.Cons (r', rest') -> advance_right (Some r') rest' target
        end
        else if c = 0 then begin
          (* collect the whole right group *)
          let rec collect acc rest =
            match rest () with
            | Seq.Cons (r', rest') when Row.compare (key_of right_key r') target = 0 ->
                collect (r' :: acc) rest'
            | Seq.Cons (r', rest') -> (List.rev acc, Some r', rest')
            | Seq.Nil -> (List.rev acc, None, Seq.empty)
          in
          let group, nxt, rest = collect [ r ] rrest in
          (group, nxt, rest)
        end
        else ([], cur, rrest)
  in
  let rec go lseq rcur rrest last_group last_key () =
    match lseq () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (l, lrest) ->
        let lk = key_of left_key l in
        let group, rcur, rrest, last_group, last_key =
          match last_key with
          | Some k when Row.compare k lk = 0 -> (last_group, rcur, rrest, last_group, last_key)
          | _ ->
              let g, c, rest = advance_right rcur rrest lk in
              (g, c, rest, g, Some lk)
        in
        let matches = List.map (fun r -> Array.append l r) group in
        Seq.append (List.to_seq matches) (go lrest rcur rrest last_group last_key) ()
  in
  fun () ->
    match right () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (r0, rrest) -> go left (Some r0) rrest [] None ()

let top_k ~by ?(desc = false) k rows =
  Seq.take k (sort ~by ~desc rows)
