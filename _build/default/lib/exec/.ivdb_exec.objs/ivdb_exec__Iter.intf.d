lib/exec/iter.mli: Ivdb_btree Ivdb_relation Seq
