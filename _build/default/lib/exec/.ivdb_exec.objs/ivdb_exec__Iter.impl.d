lib/exec/iter.ml: Array Hashtbl Ivdb_btree Ivdb_relation List Seq String
