lib/recovery/recovery.mli: Ivdb_storage Ivdb_wal
