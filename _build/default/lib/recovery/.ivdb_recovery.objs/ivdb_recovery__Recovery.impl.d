lib/recovery/recovery.ml: Hashtbl Int64 Ivdb_storage Ivdb_wal List
