(* Benchmark harness: regenerates every experiment table/figure of the
   reproduction (E1-E8, see DESIGN.md / EXPERIMENTS.md) plus the bechamel
   micro-benchmarks (M0).

   Usage: main.exe [e1|e2|...|e8|micro]...; no arguments runs everything. *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Workload = Ivdb.Workload
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Row = Ivdb_relation.Row
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain
module Group_gc = Ivdb_core.Group_gc
module Txn = Ivdb_txn.Txn
module Wal = Ivdb_wal.Wal
module Metrics = Ivdb_util.Metrics
module Rng = Ivdb_util.Rng
module Zipf = Ivdb_util.Zipf
module Fault = Ivdb_storage.Fault
module Sched = Ivdb_sched.Sched

(* --- table printing -------------------------------------------------------- *)

let print_table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun i cell -> Printf.sprintf "%*s" (List.nth widths i) cell)
         row)
  in
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=');
  print_endline (line header);
  print_endline (String.make (String.length (line header)) '-');
  List.iter (fun r -> print_endline (line r)) rows;
  flush stdout

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let i = string_of_int

let strategy_name = Maintain.strategy_to_string

(* --- E1: read benefit of indexed views -------------------------------------- *)

(* Query latency: indexed-view point lookup vs aggregation on demand,
   growing the base table. The paper's motivation: the view turns an O(N)
   aggregation into an O(log N) lookup. *)
let e1 () =
  let rows_of n =
    let config =
      { Database.default_config with read_cost = 0; write_cost = 0; pool_capacity = 4096 }
    in
    let db = Database.create ~config () in
    let t =
      Database.create_table db ~name:"sales"
        ~cols:
          [
            { Schema.name = "id"; ty = Value.TInt; nullable = false };
            { Schema.name = "product"; ty = Value.TInt; nullable = false };
            { Schema.name = "qty"; ty = Value.TInt; nullable = false };
          ]
    in
    let rng = Rng.create 7 in
    Database.transact db (fun tx ->
        for k = 1 to n do
          ignore
            (Table.insert db tx t
               [| Value.Int k; Value.Int (Rng.int rng 100); Value.Int (1 + Rng.int rng 9) |])
        done);
    let v =
      Database.create_view db ~name:"by_product" ~group_by:[ "product" ]
        ~aggs:[ View_def.Sum (Expr.col (Database.schema db t) "qty") ]
        ~source:(Database.From (t, None))
        ~strategy:Maintain.Escrow ()
    in
    let time_it iters f =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        f ()
      done;
      (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e6
    in
    let lookup_us =
      time_it 2000 (fun () ->
          ignore (Query.view_lookup db None v [| Value.Int (Rng.int rng 100) |]))
    in
    let ondemand_us =
      time_it (max 3 (20000 / n)) (fun () ->
          ignore (Query.on_demand_aggregate db None (Database.view_def db v)))
    in
    [ i n; f2 lookup_us; f2 ondemand_us; f1 (ondemand_us /. lookup_us) ]
  in
  print_table
    ~title:"E1  Indexed view vs on-demand aggregation (100 groups, point query)"
    ~header:[ "base rows"; "view lookup (us)"; "on-demand agg (us)"; "speedup" ]
    (List.map rows_of [ 1_000; 5_000; 20_000; 50_000 ])

(* --- E2: writer throughput under contention ---------------------------------- *)

let e2 () =
  let cell strategy mpl =
    let spec =
      {
        Workload.default with
        seed = 2;
        strategy;
        mpl;
        txns_per_worker = max 1 (256 / mpl);
        n_groups = 20;
        theta = 0.99;
        delete_fraction = 0.1;
      }
    in
    let r = Workload.run spec in
    let per_txn x = float_of_int x /. float_of_int (max 1 r.Workload.committed) in
    [
      strategy_name strategy;
      i mpl;
      i r.Workload.committed;
      f2 r.Workload.throughput;
      f2 (per_txn r.Workload.lock_waits);
      i r.Workload.deadlocks;
      i r.Workload.retries;
      f1 r.Workload.mean_latency;
      f1 r.Workload.p95_latency;
    ]
  in
  let mpls = [ 1; 2; 4; 8; 16; 32 ] in
  print_table
    ~title:
      "E2  Writer scalability on a hot skewed view (zipf 0.99 over 20 groups, ~256 txns)"
    ~header:
      [ "strategy"; "mpl"; "commits"; "tput/1k ticks"; "waits/txn"; "deadlocks";
        "retries"; "lat mean"; "lat p95" ]
    (List.concat_map
       (fun s -> List.map (cell s) mpls)
       [ Maintain.Exclusive; Maintain.Escrow ])

(* --- E3: conflicts vs skew ----------------------------------------------------- *)

let e3 () =
  let cell strategy theta =
    let spec =
      {
        Workload.default with
        seed = 3;
        strategy;
        mpl = 16;
        txns_per_worker = 16;
        n_groups = 50;
        theta;
        delete_fraction = 0.1;
      }
    in
    let r = Workload.run spec in
    let per100 x = 100. *. float_of_int x /. float_of_int (max 1 r.Workload.committed) in
    [
      strategy_name strategy;
      f2 theta;
      i r.Workload.committed;
      f2 (per100 r.Workload.deadlocks);
      f2 (per100 r.Workload.retries);
      f2 (per100 r.Workload.lock_waits);
      f1 r.Workload.p95_latency;
    ]
  in
  let thetas = [ 0.0; 0.5; 0.9; 0.99; 1.2 ] in
  print_table
    ~title:"E3  Conflict rate vs access skew (mpl 16, 50 groups)"
    ~header:
      [ "strategy"; "theta"; "commits"; "deadlocks/100"; "retries/100";
        "waits/100"; "lat p95" ]
    (List.concat_map
       (fun s -> List.map (cell s) thetas)
       [ Maintain.Exclusive; Maintain.Escrow ])

(* --- E4: maintenance overhead per view ------------------------------------------ *)

let e4 () =
  let cell strategy n_views =
    let spec =
      {
        Workload.default with
        seed = 4;
        strategy;
        mpl = 1;
        txns_per_worker = 200;
        ops_per_txn = 4;
        delete_fraction = 0.;
        n_views;
        initial_rows = 100;
        config = Database.default_config (* real I/O costs *);
      }
    in
    let r = Workload.run spec in
    let per_txn x = float_of_int x /. float_of_int (max 1 r.Workload.committed) in
    let get n = match List.assoc_opt n r.Workload.metrics with Some v -> v | None -> 0 in
    [
      (if n_views = 0 then "none" else strategy_name strategy);
      i n_views;
      i r.Workload.committed;
      f1 (float_of_int r.Workload.ticks /. float_of_int (max 1 r.Workload.committed));
      f1 (per_txn (get "log.bytes"));
      f2 (per_txn (get "disk.read" + get "disk.write"));
    ]
  in
  let rows =
    cell Maintain.Escrow 0
    :: List.concat_map
         (fun s -> List.map (cell s) [ 1; 2; 4 ])
         [ Maintain.Escrow; Maintain.Deferred ]
  in
  print_table
    ~title:"E4  Writer-side cost of immediate vs deferred maintenance (mpl 1, 200 txns)"
    ~header:[ "strategy"; "views"; "commits"; "ticks/txn"; "log B/txn"; "IOs/txn" ]
    rows

(* --- E5: deferred refresh amortization -------------------------------------------- *)

let e5 () =
  let cell batch =
    let config = { Database.default_config with read_cost = 0; write_cost = 0 } in
    let spec =
      { Workload.default with seed = 5; strategy = Maintain.Deferred; config }
    in
    let db, sales, views = Workload.setup spec in
    let v = List.hd views in
    (* fold the preload's deltas away so only the batch is measured *)
    Database.transact db (fun tx -> ignore (Query.refresh db tx v));
    let rng = Rng.create 55 in
    for k = 1 to batch do
      Database.transact db (fun tx ->
          ignore
            (Table.insert db tx sales
               [|
                 Value.Int (1000 + k);
                 Value.Int (Rng.int rng 20);
                 Value.Int 1;
                 Value.Float 1.0;
               |]))
    done;
    let pending = Query.staleness db v in
    let m = Database.metrics db in
    let touched_before = Metrics.get m "view.exclusive_update" in
    let t0 = Unix.gettimeofday () in
    let applied = Database.transact db (fun tx -> Query.refresh db tx v) in
    let us = (Unix.gettimeofday () -. t0) *. 1e6 in
    let touched = Metrics.get m "view.exclusive_update" - touched_before in
    [
      i batch;
      i pending;
      i applied;
      i touched;
      f1 us;
      f2 (us /. float_of_int (max 1 applied));
    ]
  in
  print_table
    ~title:"E5  Deferred maintenance: refresh cost amortizes with batch size (20 groups)"
    ~header:
      [ "batch"; "staleness"; "deltas applied"; "view rows touched"; "refresh us";
        "us/delta" ]
    (List.map cell [ 1; 10; 100; 1000 ])

(* --- E6: recovery ------------------------------------------------------------------- *)

let e6 () =
  let cell ?(ckpt = false) txns =
    let spec =
      {
        Workload.default with
        seed = 6;
        strategy = Maintain.Escrow;
        mpl = 4;
        txns_per_worker = txns / 4;
        delete_fraction = 0.15;
      }
    in
    let db, sales, views = Workload.setup spec in
    let _ = Workload.run_on db sales views spec in
    if ckpt then Database.checkpoint db (* sharp checkpoint + log truncation *);
    (* leave some losers in flight, force their records, crash *)
    let mgr = Database.mgr db in
    let losers =
      List.init 5 (fun k ->
          let tx = Txn.begin_txn mgr in
          ignore
            (Table.insert db tx sales
               [| Value.Int (-k - 1); Value.Int 1; Value.Int 1; Value.Float 1. |]);
          tx)
    in
    ignore losers;
    Wal.force (Database.wal db) (Wal.last_lsn (Database.wal db));
    let t0 = Unix.gettimeofday () in
    let db' = Database.crash db in
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let m = Database.metrics db' in
    let rows_after = Table.row_count db' (Database.table db' "sales") in
    [
      (if ckpt then i txns ^ " +ckpt" else i txns);
      i (Metrics.get m "recovery.stable_records");
      i (Metrics.get m "recovery.redo_applied");
      i (Metrics.get m "recovery.losers");
      f2 ms;
      i rows_after;
      string_of_bool
        (Workload.check_consistency db' (Database.view db' "sales_by_product_0"));
    ]
  in
  print_table
    ~title:"E6  Restart recovery vs log length (crash with 5 in-flight losers)"
    ~header:
      [ "txns"; "stable log recs"; "redo applied"; "losers undone"; "recovery ms";
        "rows after"; "view consistent" ]
    (List.concat_map (fun n -> [ cell n; cell ~ckpt:true n ]) [ 200; 1000; 3000 ])

(* --- E7: reader locking granularity -------------------------------------------------- *)

let e7 () =
  let cell locking =
    let spec =
      {
        Workload.default with
        seed = 7;
        strategy = Maintain.Escrow;
        mpl = 8;
        txns_per_worker = 40;
        read_fraction = 0.5;
        reader_scan = false;
        reader_locking = locking;
        n_groups = 50;
        theta = 0.5;
      }
    in
    let r = Workload.run spec in
    let writers = r.Workload.committed - r.Workload.committed_readers in
    [
      (match locking with
      | Workload.Key_range -> "key-range"
      | Workload.Coarse_table -> "table S lock"
      | Workload.Snapshot -> "mvcc snapshot");
      i r.Workload.committed;
      i r.Workload.committed_readers;
      i writers;
      i r.Workload.lock_waits;
      i r.Workload.deadlocks;
      f1 r.Workload.mean_latency;
      f1 r.Workload.p95_latency;
    ]
  in
  print_table
    ~title:
      "E7  Serializable view readers vs writers: key-range locks vs coarse table locks"
    ~header:
      [ "reader locking"; "commits"; "readers"; "writers"; "lock waits";
        "deadlocks"; "lat mean"; "lat p95" ]
    (List.map cell [ Workload.Key_range; Workload.Coarse_table ])

(* --- E8: group lifecycle churn --------------------------------------------------------- *)

let e8 () =
  let cell create_mode =
    let spec =
      {
        Workload.default with
        seed = 8;
        strategy = Maintain.Escrow;
        create_mode;
        mpl = 12;
        txns_per_worker = 40;
        ops_per_txn = 3;
        delete_fraction = 0.5;
        n_groups = 24;
        theta = 0.0;
        initial_rows = 0;
        gc_every = Some 5;
      }
    in
    let db, sales, views = Workload.setup spec in
    let r = Workload.run_on db sales views spec in
    let removed = Database.gc db in
    let zero_left =
      Group_gc.zero_count_rows
        (Database.Internal.view_rt db (Database.Internal.view_id (List.hd views)))
    in
    let get n = match List.assoc_opt n r.Workload.metrics with Some v -> v | None -> 0 in
    [
      (match create_mode with
      | Maintain.System_txn -> "system txn"
      | Maintain.User_txn -> "user txn");
      i r.Workload.committed;
      i (get "view.group_create" + get "view.group_create_user");
      i (get "view.gc_removed" + removed);
      i zero_left;
      i r.Workload.lock_waits;
      i r.Workload.deadlocks;
      f1 r.Workload.p95_latency;
    ]
  in
  print_table
    ~title:"E8  Group create/delete churn: system-transaction vs user-transaction creation"
    ~header:
      [ "creation"; "commits"; "creates"; "gc removed"; "zero rows left";
        "lock waits"; "deadlocks"; "lat p95" ]
    (List.map cell [ Maintain.System_txn; Maintain.User_txn ])

(* --- E9: lock escalation --------------------------------------------------------------- *)

let e9 () =
  let cell threshold rows_n =
    let config =
      {
        Database.default_config with
        read_cost = 0;
        write_cost = 0;
        pool_capacity = 2048;
        escalation_threshold = threshold;
      }
    in
    let db = Database.create ~config () in
    let t =
      Database.create_table db ~name:"bulk"
        ~cols:
          [
            { Schema.name = "id"; ty = Value.TInt; nullable = false };
            { Schema.name = "v"; ty = Value.TInt; nullable = false };
          ]
    in
    let t0 = Unix.gettimeofday () in
    Database.transact db (fun tx ->
        for k = 1 to rows_n do
          ignore (Table.insert db tx t [| Value.Int k; Value.Int k |])
        done);
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let m = Database.metrics db in
    [
      (match threshold with None -> "off" | Some n -> string_of_int n);
      i rows_n;
      i (Metrics.get m "lock.acquire");
      i (Metrics.get m "lock.escalation");
      f2 ms;
    ]
  in
  print_table
    ~title:"E9  Lock escalation: bulk-load lock footprint (single transaction)"
    ~header:[ "threshold"; "rows"; "lock acquisitions"; "escalations"; "wall ms" ]
    (List.concat_map
       (fun n -> [ cell None n; cell (Some 100) n ])
       [ 1_000; 5_000; 20_000 ])

(* --- E10: bounds reads vs blocking reads ------------------------------------------------- *)

let e10 () =
  let run mode =
    let config = { Database.default_config with read_cost = 0; write_cost = 0 } in
    let db = Database.create ~config () in
    let t =
      Database.create_table db ~name:"sales"
        ~cols:
          [
            { Schema.name = "id"; ty = Value.TInt; nullable = false };
            { Schema.name = "product"; ty = Value.TInt; nullable = false };
            { Schema.name = "qty"; ty = Value.TInt; nullable = false };
          ]
    in
    let v =
      Database.create_view db ~name:"v" ~group_by:[ "product" ]
        ~aggs:[ View_def.Sum (Expr.col (Database.schema db t) "qty") ]
        ~source:(Database.From (t, None))
        ~strategy:Maintain.Escrow ()
    in
    Database.transact db (fun tx ->
        ignore (Table.insert db tx t [| Value.Int 0; Value.Int 1; Value.Int 1 |]));
    let lat = Ivdb_util.Stats.create () in
    let widths = Ivdb_util.Stats.create () in
    let reads = 60 in
    Ivdb_sched.Sched.run ~seed:10 (fun () ->
        (* writers hammer group 1, holding E locks across yields *)
        for w = 1 to 6 do
          ignore
            (Ivdb_sched.Sched.spawn (fun () ->
                 for k = 1 to 40 do
                   Database.transact db (fun tx ->
                       ignore
                         (Table.insert db tx t
                            [| Value.Int ((w * 1000) + k); Value.Int 1; Value.Int 1 |]);
                       Ivdb_sched.Sched.yield ();
                       Ivdb_sched.Sched.yield ())
                 done))
        done;
        (* one reader samples the hot group *)
        ignore
          (Ivdb_sched.Sched.spawn (fun () ->
               for _ = 1 to reads do
                 let t0 = Ivdb_sched.Sched.now () in
                 (match mode with
                 | `Blocking ->
                     Database.transact db (fun tx ->
                         ignore (Query.view_lookup db (Some tx) v [| Value.Int 1 |]))
                 | `Bounds -> (
                     match Query.view_lookup_bounds db v [| Value.Int 1 |] with
                     | Some (lo, hi) ->
                         Ivdb_util.Stats.add widths
                           (Value.to_float hi.(1) -. Value.to_float lo.(1))
                     | None -> ()));
                 Ivdb_util.Stats.add lat (float_of_int (Ivdb_sched.Sched.now () - t0));
                 Ivdb_sched.Sched.yield ()
               done)))
    ;
    let mean = Ivdb_util.Stats.mean lat in
    let p95 = if Ivdb_util.Stats.count lat = 0 then 0. else Ivdb_util.Stats.percentile lat 95. in
    let width = if Ivdb_util.Stats.count widths = 0 then 0. else Ivdb_util.Stats.mean widths in
    [
      (match mode with `Blocking -> "serializable lookup" | `Bounds -> "escrow bounds");
      i reads;
      f1 mean;
      f1 p95;
      f2 width;
    ]
  in
  print_table
    ~title:"E10  Reading a hot escrow group: blocking lookup vs bounds read"
    ~header:[ "reader mode"; "reads"; "lat mean (ticks)"; "lat p95"; "avg interval width" ]
    [ run `Blocking; run `Bounds ]

(* --- E12: recovery under injected faults ------------------------------------------------ *)

(* Run the workload under each fault mode, recover from the (injected or
   end-of-run) crash, and measure what recovery had to do. "rate" is the
   transient-error probability for the error rows, 0 for the crash rows;
   recovery time is wall clock. Every cell also re-checks invariant V1. *)
let fault_cells ~quick =
  let budget = if quick then 96 else 384 in
  let mpl = 8 in
  let spec =
    {
      Workload.default with
      seed = 23;
      strategy = Maintain.Escrow;
      mpl;
      txns_per_worker = max 1 (budget / mpl);
      delete_fraction = 0.1;
      checkpoint_every = Some 10;
      config =
        { Workload.default.Workload.config with Database.pool_capacity = 64 };
    }
  in
  let cell (name, rate, fcfg) =
    let db, sales, views = Workload.setup spec in
    (* armed after setup: the preload is never the victim *)
    if Fault.enabled_in fcfg then Database.install_fault db fcfg;
    let r = Workload.run_on db sales views spec in
    let t0 = Unix.gettimeofday () in
    let db' = Database.crash db in
    let recov_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let get n = Metrics.get (Database.metrics db') n in
    let consistent =
      Workload.check_consistency db' (Database.view db' "sales_by_product_0")
    in
    let retries =
      match List.assoc_opt "buffer.io_retry" r.Workload.metrics with
      | Some v -> v
      | None -> 0
    in
    let row =
      [
        name;
        f2 rate;
        i r.Workload.committed;
        (if r.Workload.crashed then "yes" else "no");
        f2 recov_ms;
        i (get "recovery.redo_applied");
        i (get "recovery.torn_pages");
        i (get "wal.torn_tail_dropped");
        i (get "recovery.losers");
        i retries;
        string_of_bool consistent;
      ]
    in
    let json =
      Printf.sprintf
        {|    {"fault": "%s", "rate": %.2f, "committed": %d, "crashed": %b, "recovery_ms": %.3f, "redo_applied": %d, "torn_pages": %d, "torn_tail_dropped": %d, "losers": %d, "io_retries": %d, "consistent": %b}|}
        name rate r.Workload.committed r.Workload.crashed recov_ms
        (get "recovery.redo_applied") (get "recovery.torn_pages")
        (get "wal.torn_tail_dropped") (get "recovery.losers") retries consistent
    in
    (row, json)
  in
  let n = Fault.no_faults in
  List.map cell
    [
      ("none", 0., n);
      ( "err-0.05", 0.05,
        { n with fault_seed = 3; read_error_p = 0.05; write_error_p = 0.05 } );
      ( "err-0.20", 0.2,
        { n with fault_seed = 3; read_error_p = 0.2; write_error_p = 0.2 } );
      ("crash-write", 0., { n with crash_at_write = Some 5 });
      ( "torn-write", 0.,
        { n with fault_seed = 1; crash_at_write = Some 5; torn_writes = true } );
      ( "torn-tail", 0.,
        { n with fault_seed = 9; crash_at_force = Some 25; torn_tail = true } );
    ]

let e12_title = "E12  Recovery under injected faults (escrow, mpl 8, ckpt every 10)"

let e12_header =
  [ "fault"; "rate"; "commits"; "crashed"; "recov ms"; "redo"; "torn pg";
    "tail drop"; "losers"; "io retry"; "consistent" ]

let e12 () =
  let cells = fault_cells ~quick:false in
  print_table ~title:e12_title ~header:e12_header (List.map fst cells)

(* --- E11: commit path — per-commit force vs group commit vs async ----------------------- *)

(* Escrow removes the lock bottleneck on the hot aggregate rows, so with a
   private force per commit the 100-tick log force is the throughput
   ceiling; batching commits behind the coordinator amortizes it. Also
   emits machine-readable BENCH_commit.json for trend tracking. *)
(* --- E13: network serving layer ---------------------------------------------------------- *)

(* Throughput/latency of the wire-protocol server under a closed loop of
   client connections: loopback (deterministic) vs real TCP sockets, sync
   vs group commit, plus an overloaded cell where admission control sheds
   with Busy frames. Group commit finally earns its keep here: the batches
   come from genuinely independent client connections. *)
let e13_title =
  "E13  Network serving: transport x commit mode x connections (escrow, zipf 0.99)"

let e13_header =
  [ "transport"; "commit mode"; "clients"; "cap"; "commits"; "tput/1k ticks";
    "p95 lat"; "forces/commit"; "mean batch"; "shed" ]

let e13_cells ~quick =
  let module Server = Ivdb_server.Server in
  let module Net_workload = Ivdb_client.Net_workload in
  let budget = if quick then 64 else 256 in
  let cell (tname, transport) (mode_name, mode) ~mpl ~max_inflight =
    let spec =
      {
        Workload.default with
        seed = 11;
        strategy = Maintain.Escrow;
        mpl;
        txns_per_worker = max 1 (budget / mpl);
        n_groups = 20;
        theta = 0.99;
        delete_fraction = 0.1;
        config = { Workload.default.Workload.config with commit_mode = mode };
      }
    in
    let server_config =
      { Server.default_config with max_inflight; busy_retry_ticks = 50 }
    in
    let r, _db = Net_workload.run_net ~transport ~server_config spec in
    let get n =
      match List.assoc_opt n r.Workload.metrics with Some v -> v | None -> 0
    in
    let per_commit x =
      float_of_int x /. float_of_int (max 1 r.Workload.committed)
    in
    let row =
      [
        tname; mode_name; i mpl; i max_inflight; i r.Workload.committed;
        f2 r.Workload.throughput; f1 r.Workload.p95_latency;
        f2 (per_commit r.Workload.forces); f2 r.Workload.mean_batch;
        i (get "server.shed");
      ]
    in
    let json =
      Printf.sprintf
        {|    {"transport": "%s", "mode": "%s", "clients": %d, "max_inflight": %d, "committed": %d, "throughput_per_1k_ticks": %.3f, "p95_latency_ticks": %.1f, "forces_per_commit": %.4f, "mean_batch": %.2f, "shed": %d, "accepted": %d, "requests": %d, "wall_s": %.4f}|}
        tname mode_name mpl max_inflight r.Workload.committed
        r.Workload.throughput r.Workload.p95_latency
        (per_commit r.Workload.forces)
        r.Workload.mean_batch (get "server.shed") (get "server.accepted")
        (get "server.requests") r.Workload.wall_s
    in
    (row, json)
  in
  let sync = ("sync", Txn.Sync) in
  let group = ("group", Txn.Group { max_batch = 32; max_wait_ticks = 50 }) in
  let loopback = ("loopback", Net_workload.Loopback) in
  let tcp = ("tcp", Net_workload.Tcp) in
  let mpls = if quick then [ 4; 8 ] else [ 2; 4; 8; 16 ] in
  let scaling =
    List.concat_map
      (fun mpl ->
        [
          cell loopback sync ~mpl ~max_inflight:64;
          cell loopback group ~mpl ~max_inflight:64;
        ])
      mpls
  in
  let tcp_mpl = if quick then 4 else 8 in
  let tcp_cells =
    [
      cell tcp sync ~mpl:tcp_mpl ~max_inflight:64;
      cell tcp group ~mpl:tcp_mpl ~max_inflight:64;
    ]
  in
  (* overload: twice as many clients as admission slots; shed > 0 and the
     run still completes because refused clients back off and retry *)
  let overload = [ cell loopback group ~mpl:16 ~max_inflight:4 ] in
  scaling @ tcp_cells @ overload

let e13 () =
  let cells = e13_cells ~quick:false in
  print_table ~title:e13_title ~header:e13_header (List.map fst cells)

(* --- E14: introspection overhead --------------------------------------------------------- *)

(* Cost of the live-introspection plumbing on the E13 closed loop: the rid
   correlation ids ride in every Exec frame unconditionally (wire v2), so
   the measurable knob is the slow-query log. threshold = None turns it
   off entirely; Some 0 is the worst case (every request is "slow": a
   bounded-queue push + a Slow_query trace event per statement). The
   interesting result is the ticks column: the log does no yields, so the
   simulated schedule is identical and the overhead is wall-clock only. *)
let e14_title =
  "E14  Introspection overhead: slow-query log on the E13 closed loop (loopback, group commit, escrow)"

let e14_header =
  [ "slow log"; "threshold"; "clients"; "commits"; "ticks"; "tput/1k ticks";
    "slow entries"; "wall_s" ]

let e14_cells ~quick =
  let module Server = Ivdb_server.Server in
  let module Net_workload = Ivdb_client.Net_workload in
  let budget = if quick then 64 else 256 in
  let cell name threshold ~mpl =
    let spec =
      {
        Workload.default with
        seed = 11;
        strategy = Maintain.Escrow;
        mpl;
        txns_per_worker = max 1 (budget / mpl);
        n_groups = 20;
        theta = 0.99;
        delete_fraction = 0.1;
        config =
          {
            Workload.default.Workload.config with
            commit_mode = Txn.Group { max_batch = 32; max_wait_ticks = 50 };
          };
      }
    in
    let server_config =
      { Server.default_config with slow_query_ticks = threshold }
    in
    let r, db = Net_workload.run_net ~server_config spec in
    let slow = Metrics.get (Database.metrics db) "server.slow_queries" in
    let row =
      [
        name;
        (match threshold with None -> "-" | Some t -> string_of_int t);
        i mpl; i r.Workload.committed; i r.Workload.ticks;
        f2 r.Workload.throughput; i slow; Printf.sprintf "%.4f" r.Workload.wall_s;
      ]
    in
    let json =
      Printf.sprintf
        {|    {"slow_log": "%s", "threshold": %s, "clients": %d, "committed": %d, "ticks": %d, "throughput_per_1k_ticks": %.3f, "slow_entries": %d, "wall_s": %.4f}|}
        name
        (match threshold with None -> "null" | Some t -> string_of_int t)
        mpl r.Workload.committed r.Workload.ticks r.Workload.throughput slow
        r.Workload.wall_s
    in
    (row, json)
  in
  let mpl = if quick then 4 else 8 in
  [
    cell "off" None ~mpl;
    cell "on (idle)" (Some 1_000_000) ~mpl;
    cell "on (worst)" (Some 0) ~mpl;
  ]

let e14 () =
  let cells = e14_cells ~quick:false in
  print_table ~title:e14_title ~header:e14_header (List.map fst cells)

(* --- E15: MVCC snapshot readers vs S-lock readers ---------------------------------------- *)

(* The D14 payoff: at high MPL a read-heavy mix over a hot escrow view,
   with readers either taking the paper's per-key RangeS_S locks or running
   as lock-free MVCC snapshots. Snapshot readers never enter the lock
   manager, so reader throughput climbs with MPL instead of queueing
   behind writers' E locks, while writer commit throughput stays within
   noise of the locked baseline. *)
let e15_title =
  "E15  Snapshot readers vs key-range S-lock readers (escrow writers, zipf 0.99, 60% reads)"

let e15_header =
  [ "reader mode"; "mpl"; "commits"; "readers"; "writers"; "reader tput";
    "writer tput"; "lock waits"; "lat mean"; "lat p95" ]

let e15_cells ~quick =
  let budget = if quick then 128 else 768 in
  let cell locking mpl =
    let spec =
      {
        Workload.default with
        seed = 15;
        strategy = Maintain.Escrow;
        mpl;
        txns_per_worker = max 1 (budget / mpl);
        read_fraction = 0.6;
        reader_scan = false;
        reader_locking = locking;
        n_groups = 20;
        theta = 0.99;
        delete_fraction = 0.1;
      }
    in
    let r = Workload.run spec in
    let writers = r.Workload.committed - r.Workload.committed_readers in
    let per_1k x = 1000. *. float_of_int x /. float_of_int (max 1 r.Workload.ticks) in
    let name =
      match locking with
      | Workload.Key_range -> "s-lock key-range"
      | Workload.Coarse_table -> "table S lock"
      | Workload.Snapshot -> "mvcc snapshot"
    in
    let get n = match List.assoc_opt n r.Workload.metrics with Some v -> v | None -> 0 in
    let row =
      [
        name; i mpl; i r.Workload.committed; i r.Workload.committed_readers;
        i writers;
        f2 (per_1k r.Workload.committed_readers);
        f2 (per_1k writers);
        i r.Workload.lock_waits;
        f1 r.Workload.mean_latency;
        f1 r.Workload.p95_latency;
      ]
    in
    let json =
      Printf.sprintf
        {|    {"reader_mode": "%s", "mpl": %d, "committed": %d, "readers": %d, "writers": %d, "reader_tput_per_1k_ticks": %.3f, "writer_tput_per_1k_ticks": %.3f, "lock_waits": %d, "snapshot_begins": %d, "versions_pruned": %d, "mean_latency_ticks": %.1f, "p95_latency_ticks": %.1f}|}
        name mpl r.Workload.committed r.Workload.committed_readers writers
        (per_1k r.Workload.committed_readers)
        (per_1k writers) r.Workload.lock_waits
        (get "txn.snapshot_begin")
        (get "mvcc.versions_pruned")
        r.Workload.mean_latency r.Workload.p95_latency
    in
    (row, json)
  in
  let mpls = if quick then [ 8; 16 ] else [ 8; 16; 32 ] in
  List.concat_map
    (fun mpl -> [ cell Workload.Key_range mpl; cell Workload.Snapshot mpl ])
    mpls

let e15 () =
  let cells = e15_cells ~quick:false in
  print_table ~title:e15_title ~header:e15_header (List.map fst cells)

(* --- E16: read replicas via WAL shipping ------------------------------------------------ *)

(* A follower attached over a second loopback connection streams the
   primary's WAL while the closed-loop workload runs. The interesting
   numbers: how far the replica trails the primary under write pressure
   (lag, in log records), what the attached follower costs the primary
   (commit throughput with vs without it), and how long after the last
   commit the replica takes to drain the residual lag. Every replicated
   cell ends with a bit-identical state-digest comparison against the
   primary — divergence is a correctness bug and kills the run. *)
let e16_title =
  "E16  Read replica via WAL shipping: lag and primary overhead (escrow, group commit, zipf 0.99)"

let e16_header =
  [ "follower"; "mpl"; "commits"; "tput/1k ticks"; "lag max"; "lag mean";
    "batches"; "reconnects"; "catchup"; "digest" ]

let e16_cells ~quick =
  let module Net_workload = Ivdb_client.Net_workload in
  let budget = if quick then 64 else 256 in
  let spec_for mpl =
    {
      Workload.default with
      seed = 16;
      strategy = Maintain.Escrow;
      mpl;
      txns_per_worker = max 1 (budget / mpl);
      n_groups = 20;
      theta = 0.99;
      delete_fraction = 0.1;
      config =
        {
          Workload.default.Workload.config with
          commit_mode = Txn.Group { max_batch = 32; max_wait_ticks = 50 };
        };
    }
  in
  let solo mpl =
    let r, _db =
      Net_workload.run_net ~transport:Net_workload.Loopback (spec_for mpl)
    in
    let row =
      [ "no"; i mpl; i r.Workload.committed; f2 r.Workload.throughput;
        "-"; "-"; "-"; "-"; "-"; "-" ]
    in
    let json =
      Printf.sprintf
        {|    {"follower": false, "mpl": %d, "committed": %d, "throughput_per_1k_ticks": %.3f}|}
        mpl r.Workload.committed r.Workload.throughput
    in
    (row, json)
  in
  let replicated mpl =
    let r, db, fdb, rep = Net_workload.run_replicated (spec_for mpl) in
    if
      Database.state_digest db <> Database.state_digest fdb
      || Database.replicated_lsn db <> Database.replicated_lsn fdb
    then begin
      Printf.eprintf
        "FATAL: replica diverged from primary (mpl %d): lsn %d vs %d, digest %s vs %s\n"
        mpl (Database.replicated_lsn db) (Database.replicated_lsn fdb)
        (Database.state_digest db) (Database.state_digest fdb);
      exit 1
    end;
    let row =
      [ "yes"; i mpl; i r.Workload.committed; f2 r.Workload.throughput;
        i rep.Net_workload.lag_max; f2 rep.Net_workload.lag_mean;
        i rep.Net_workload.ship_batches; i rep.Net_workload.reconnects;
        i rep.Net_workload.catchup_ticks; "match" ]
    in
    let json =
      Printf.sprintf
        {|    {"follower": true, "mpl": %d, "committed": %d, "throughput_per_1k_ticks": %.3f, "lag_max_records": %d, "lag_mean_records": %.2f, "ship_batches": %d, "reconnects": %d, "catchup_ticks": %d, "digest_match": true}|}
        mpl r.Workload.committed r.Workload.throughput
        rep.Net_workload.lag_max rep.Net_workload.lag_mean
        rep.Net_workload.ship_batches rep.Net_workload.reconnects
        rep.Net_workload.catchup_ticks
    in
    (row, json)
  in
  let mpls = if quick then [ 8 ] else [ 8; 16 ] in
  List.concat_map (fun mpl -> [ solo mpl; replicated mpl ]) mpls

let e16 () =
  let cells = e16_cells ~quick:false in
  print_table ~title:e16_title ~header:e16_header (List.map fst cells)

(* --- E17: failover — follower promotion under a primary crash --------------------------- *)

(* The replicated workload crashed at a chosen force point: the follower
   final-ships the dead primary's SURVIVING log image (Wal.crash applies
   any pending tear first), then promotes. Reported per crash point: the
   log suffix past the follower's commit horizon, the buffered in-flight
   tail the promotion drained, losers rolled back, undo records appended,
   and the promotion latency in simulated ticks. Every cell ends with the
   zero-loss check — the promoted digest must equal single-node recovery
   of the same log — and a mismatch kills the run. *)
let e17_title =
  "E17  Failover: follower promotion under primary crash (escrow, mpl 3, zipf 0.8)"

let e17_header =
  [ "crash"; "commits"; "suffix"; "tail"; "losers"; "undo"; "promote ticks";
    "digest" ]

let e17_ship ?(batch = 64) wal follower =
  let upto = Wal.flushed_lsn wal in
  let shipped = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let from = Database.received_lsn follower + 1 in
    let hi = min upto (from + batch - 1) in
    if hi < from then continue_ := false
    else begin
      let records =
        Wal.decode_frames ~first_lsn:from (Wal.serialize_range wal ~from ~upto:hi)
      in
      Database.apply_replicated follower records;
      shipped := !shipped + List.length records
    end
  done;
  !shipped

(* The streaming-follower deployment from the crash sweep: a shipper
   fiber pumps the stable tail and advances the slot's retention floor
   while MPL workers commit, until the armed force point fires. *)
let e17_run_until_crash spec fcfg =
  let db, sales, _views = Workload.setup spec in
  let f = Database.create_follower ~config:spec.Workload.config () in
  Wal.set_retain_floor (Database.wal db) (Some 1);
  (* installed even for no_faults: the counting run needs forces_seen *)
  Database.install_fault db fcfg;
  let seed = spec.Workload.seed in
  let committed = ref 0 in
  let crashed = ref false in
  (try
     Sched.run ~seed (fun () ->
         let remaining = ref spec.Workload.mpl in
         let running = ref true in
         let wake_main = ref (fun () -> ()) in
         ignore
           (Sched.spawn (fun () ->
                while !running do
                  ignore (e17_ship ~batch:16 (Database.wal db) f);
                  Wal.set_retain_floor (Database.wal db)
                    (Some (Database.replicated_lsn f + 1));
                  Sched.yield ()
                done));
         for w = 1 to spec.Workload.mpl do
           ignore
             (Sched.spawn (fun () ->
                  Fun.protect
                    ~finally:(fun () ->
                      decr remaining;
                      if !remaining = 0 then begin
                        running := false;
                        !wake_main ()
                      end)
                    (fun () ->
                      let rng = Rng.create ((seed * 131) + w) in
                      let next = ref (1000 * w) in
                      for _ = 1 to spec.Workload.txns_per_worker do
                        (try
                           Database.transact db (fun tx ->
                               for _ = 1 to spec.Workload.ops_per_txn do
                                 incr next;
                                 ignore
                                   (Table.insert db tx sales
                                      [|
                                        Value.Int !next;
                                        Value.Int (1 + Rng.int rng 5);
                                        Value.Int (1 + Rng.int rng 10);
                                        Value.Float 1.;
                                      |]);
                                 Sched.yield ()
                               done);
                           incr committed;
                           if !committed mod 3 = 0 then Database.checkpoint db
                         with Txn.Conflict _ -> ());
                        Sched.yield ()
                      done)))
         done;
         if !remaining > 0 then
           Sched.suspend (fun wake _cancel -> wake_main := wake))
   with Fault.Crash_point _ -> crashed := true);
  (db, f, !committed, !crashed)

let e17_cells ~quick =
  let spec =
    {
      Workload.default with
      seed = 7;
      strategy = Maintain.Escrow;
      mpl = 3;
      txns_per_worker = (if quick then 3 else 6);
      ops_per_txn = 3;
      delete_fraction = 0.;
      n_groups = 5;
      theta = 0.8;
      initial_rows = 20;
      n_views = 1;
      config =
        { Workload.default.Workload.config with Database.pool_capacity = 8 };
    }
  in
  let n_forces =
    let db, _f, _committed, crashed = e17_run_until_crash spec Fault.no_faults in
    if crashed then begin
      Printf.eprintf "FATAL: e17 counting run crashed\n";
      exit 1
    end;
    Fault.forces_seen (Database.fault_plan db)
  in
  let cell (name, fcfg) =
    let db, f, committed, crashed = e17_run_until_crash spec fcfg in
    if not crashed then begin
      Printf.eprintf "FATAL: e17 %s: armed crash trigger did not fire\n" name;
      exit 1
    end;
    let dead = Wal.crash (Database.wal db) (Metrics.create ()) in
    let suffix = Wal.flushed_lsn dead - Database.replicated_lsn f in
    let ticks = ref 0 in
    let promo = ref None in
    Sched.run ~seed:1 (fun () ->
        ignore (e17_ship dead f);
        let t0 = Sched.now () in
        let p = Database.promote f in
        ticks := Sched.now () - t0;
        promo := Some p);
    let p = Option.get !promo in
    (* zero-loss: the promoted follower must equal single-node recovery
       over the same surviving log *)
    let db' = Database.crash db in
    if Database.state_digest db' <> Database.state_digest f then begin
      Printf.eprintf
        "FATAL: e17 %s: promoted follower diverged from single-node recovery\n"
        name;
      exit 1
    end;
    let row =
      [
        name; i committed; i suffix; i p.Database.tail_records;
        i p.Database.losers_undone; i p.Database.undo_records; i !ticks;
        "match";
      ]
    in
    let json =
      Printf.sprintf
        {|    {"crash": "%s", "committed": %d, "suffix_records": %d, "tail_records": %d, "losers_undone": %d, "undo_records": %d, "promote_ticks": %d, "digest_match": true}|}
        name committed suffix p.Database.tail_records p.Database.losers_undone
        p.Database.undo_records !ticks
    in
    (row, json)
  in
  let n = Fault.no_faults in
  let mid = max 1 (n_forces / 2) in
  let points =
    if quick then [ ("clean-mid", { n with crash_at_force = Some mid }) ]
    else
      [
        ("clean-early", { n with crash_at_force = Some 1 });
        ("clean-mid", { n with crash_at_force = Some mid });
        ("clean-late", { n with crash_at_force = Some n_forces });
        ("torn-mid",
         { n with crash_at_force = Some mid; torn_tail = true });
      ]
  in
  List.map cell points

let e17 () =
  let cells = e17_cells ~quick:false in
  print_table ~title:e17_title ~header:e17_header (List.map fst cells)

(* --- E18: hash-partitioned shards, 2PC cross-shard commit ------------------- *)

(* Closed-loop scripted transactions through one coordinator over N
   loopback engine shards: per cell, throughput, prepare round-trips and
   the 2PC/local commit split; plus the commit-quick crash smoke — crash
   the coordinator mid-protocol, power-cycle the cluster, recover, and
   fail the build if any transaction is left in doubt or any decision is
   lost or applied twice. *)

let e18_title =
  "E18  Sharding: 2PC cross-shard commit over hash partitions (escrow view, loopback)"

let e18_header =
  [ "shards"; "mix"; "commits"; "tput/1k ticks"; "prepares"; "2pc"; "local";
    "in-doubt" ]

module Coord = Ivdb_coord.Coord

let e18_mk_cluster shards =
  Array.init shards (fun i ->
      let db = Database.create () in
      Coord.configure_shard db ~shard:i ~shards;
      db)

let e18_keys ~shards shard n =
  let rec go k acc remaining =
    if remaining = 0 then Array.of_list (List.rev acc)
    else if Coord.route_value ~shards (Value.Int k) = shard then
      go (k + 1) (k :: acc) (remaining - 1)
    else go (k + 1) acc remaining
  in
  go 0 [] n

(* [cross i] decides whether scripted transaction [i] spans two shards
   (an insert on each) or stays a single pinned insert. Every
   transaction that reaches COMMIT gets global id [i+1], and the keys it
   inserts are recorded so the crash smoke can audit decisions. *)
let e18_script ~shards ~txns cross =
  let per_shard = Array.init shards (fun s -> e18_keys ~shards s (2 * txns)) in
  List.init txns (fun i ->
      let a = i mod shards in
      let stmt s slot qty =
        let k = per_shard.(s).((2 * i) + slot) in
        ( k,
          Printf.sprintf "INSERT INTO t VALUES (%d, 'g%d', %d)" k (i mod 5) qty
        )
      in
      if cross i && shards > 1 then
        [ stmt a 0 (i + 1); stmt ((a + 1) mod shards) 1 (10 * (i + 1)) ]
      else [ stmt a 0 (i + 1) ])

let e18_setup c =
  List.iter
    (fun s -> ignore (Coord.exec c s))
    [
      "CREATE TABLE t (k INT NOT NULL, grp TEXT NOT NULL, qty INT NOT NULL)";
      "CREATE VIEW v AS SELECT grp, COUNT(*), SUM(qty) FROM t GROUP BY grp \
       USING ESCROW";
      (* DDL doesn't force the log on its own; make the schema durable
         before any armed crash point *)
      "CHECKPOINT";
    ]

(* One cluster phase: loopback nets and servers over [dbs], a coordinator
   over [cwal], run [f]. Fault.Crash_point escaping [f] models the whole
   machine dying mid-run. *)
let e18_phase ?(seed = 11) ?(crash_at = None) ?metrics ?trace dbs cwal f =
  Sched.run ~seed (fun () ->
      let module Server = Ivdb_server.Server in
      let module Transport = Ivdb_transport.Transport in
      let nets =
        Array.map (fun _ -> Transport.Loopback.create ~backlog:64 ()) dbs
      in
      let servers =
        Array.mapi
          (fun i net ->
            let s = Server.create dbs.(i) (Transport.Loopback.listener net) in
            Server.serve s;
            s)
          nets
      in
      let c =
        Coord.create ?metrics ?trace ~wal:cwal
          (Array.map Transport.Loopback.dialer nets)
      in
      Coord.set_crash_at_action c crash_at;
      let r = f c in
      Coord.close c;
      Array.iter Server.drain servers;
      r)

let e18_cell ~quick shards mix =
  let txns = if quick then 12 else 60 in
  let cross = match mix with "cross" -> fun _ -> true | _ -> fun _ -> false in
  let script = e18_script ~shards ~txns cross in
  let dbs = e18_mk_cluster shards in
  let cwal = Wal.create (Metrics.create ()) in
  let committed, ticks, stats =
    e18_phase dbs cwal (fun c ->
        e18_setup c;
        let t0 = Sched.now () in
        let committed = ref 0 in
        List.iter
          (fun stmts ->
            ignore (Coord.exec c "BEGIN");
            List.iter (fun (_, s) -> ignore (Coord.exec c s)) stmts;
            ignore (Coord.exec c "COMMIT");
            incr committed)
          script;
        (!committed, Sched.now () - t0, Coord.stats c))
  in
  let indoubt =
    Array.fold_left (fun acc db -> acc + Database.indoubt_count db) 0 dbs
  in
  let tput = 1000. *. float_of_int committed /. float_of_int (max 1 ticks) in
  let row =
    [
      i shards; mix; i committed; f2 tput; i stats.Coord.prepares_sent;
      i stats.Coord.cross_shard_commits; i stats.Coord.single_shard_commits;
      i indoubt;
    ]
  in
  let json =
    Printf.sprintf
      {|    {"shards": %d, "mix": "%s", "committed": %d, "throughput_per_1k_ticks": %.3f, "prepares_sent": %d, "cross_shard_commits": %d, "single_shard_commits": %d, "indoubt": %d}|}
      shards mix committed tput stats.Coord.prepares_sent
      stats.Coord.cross_shard_commits stats.Coord.single_shard_commits indoubt
  in
  (row, json)

(* The commit-quick decision audit: arm a coordinator crash mid-2PC on a
   2-shard cluster, power-cycle, recover, then check every scripted
   transaction against the coordinator's logged decisions — a committed
   transaction's keys must each exist exactly once, an aborted or
   undecided one's not at all. Any in-doubt leftover, lost decision or
   double apply kills the run. *)
let e18_crash_smoke () =
  let shards = 2 in
  let txns = 6 in
  let script = e18_script ~shards ~txns (fun _ -> true) in
  let run_workload ?(crash_at = None) dbs cwal =
    e18_phase ~crash_at dbs cwal (fun c ->
        e18_setup c;
        List.iter
          (fun stmts ->
            ignore (Coord.exec c "BEGIN");
            List.iter (fun (_, s) -> ignore (Coord.exec c s)) stmts;
            ignore (Coord.exec c "COMMIT"))
          script;
        Coord.actions c)
  in
  let total =
    run_workload (e18_mk_cluster shards) (Wal.create (Metrics.create ()))
  in
  let crash_action = max 1 (total / 2) in
  let dbs = e18_mk_cluster shards in
  let cwal = Wal.create (Metrics.create ()) in
  let crashed =
    try
      ignore (run_workload ~crash_at:(Some crash_action) dbs cwal);
      false
    with Fault.Crash_point _ -> true
  in
  if not crashed then begin
    Printf.eprintf "FATAL: e18 smoke: armed coordinator crash did not fire\n";
    exit 1
  end;
  (* power loss: every shard recovers from its WAL, the coordinator from
     its decision log *)
  let dbs = Array.map Database.crash dbs in
  Array.iteri (fun s db -> Coord.configure_shard db ~shard:s ~shards) dbs;
  let cwal = Wal.crash cwal (Metrics.create ()) in
  let indoubt_at_crash =
    Array.fold_left (fun acc db -> acc + Database.indoubt_count db) 0 dbs
  in
  e18_phase dbs cwal (fun c -> ignore (Coord.recover c));
  let indoubt_after =
    Array.fold_left (fun acc db -> acc + Database.indoubt_count db) 0 dbs
  in
  if indoubt_after <> 0 then begin
    Printf.eprintf "FATAL: e18 smoke: %d transaction(s) left in doubt\n"
      indoubt_after;
    exit 1
  end;
  let decided = Hashtbl.create 8 in
  Wal.iter_stable cwal (fun r ->
      match r.Ivdb_wal.Log_record.body with
      | Ivdb_wal.Log_record.Decision { gtxn; committed } ->
          Hashtbl.replace decided gtxn committed
      | _ -> ());
  (* one multiset of surviving keys across the cluster *)
  let count k =
    Array.fold_left
      (fun acc db ->
        let s = Ivdb_sql.Sql.session db in
        match Ivdb_sql.Sql.exec s (Printf.sprintf "SELECT k FROM t WHERE k = %d" k) with
        | Ivdb_sql.Sql.Rows { rows; _ } -> acc + List.length rows
        | _ -> acc)
      0 dbs
  in
  let lost = ref 0 and duplicated = ref 0 and committed_txns = ref 0 in
  List.iteri
    (fun idx stmts ->
      let gtxn = Printf.sprintf "coord:%d" (idx + 1) in
      let want =
        match Hashtbl.find_opt decided gtxn with Some true -> 1 | _ -> 0
      in
      if want = 1 then incr committed_txns;
      List.iter
        (fun (k, _) ->
          let n = count k in
          if n > want then incr duplicated else if n < want then incr lost)
        stmts)
    script;
  if !lost > 0 || !duplicated > 0 then begin
    Printf.eprintf "FATAL: e18 smoke: %d lost, %d duplicated decision(s)\n"
      !lost !duplicated;
    exit 1
  end;
  Printf.printf
    "e18 coordinator-crash smoke: crash at action %d/%d, %d committed, %d \
     in-doubt at crash, all resolved, 0 lost / 0 duplicated\n"
    crash_action total !committed_txns indoubt_at_crash;
  Printf.sprintf
    {|    {"smoke": "coord-crash", "crash_action": %d, "actions": %d, "txns": %d, "committed": %d, "indoubt_at_crash": %d, "indoubt_after_recovery": 0, "lost": 0, "duplicated": 0}|}
    crash_action total txns !committed_txns indoubt_at_crash

let e18_cells ~quick =
  let shard_counts = [ 1; 2; 4 ] in
  List.concat_map
    (fun s ->
      if s = 1 then [ e18_cell ~quick s "single" ]
      else [ e18_cell ~quick s "single"; e18_cell ~quick s "cross" ])
    shard_counts

let e18 () =
  let cells = e18_cells ~quick:false in
  print_table ~title:e18_title ~header:e18_header (List.map fst cells);
  ignore (e18_crash_smoke ())

(* --- E19: cluster observability ----------------------------------------------------------- *)

(* The e18 cross-shard closed loop again, now with the coordinator's
   typed 2PC registry attached and — in the "on" cells — the
   gtxn-correlated trace streams (coordinator + every shard engine)
   enabled into a counting sink. Simulated-tick throughput must be
   identical off/on (tracing never touches the virtual clock), so the
   interesting columns are event volume, wall-time delta, and the
   per-phase tick histograms the registry collected. *)

let e19_title =
  "E19  Cluster observability: per-phase 2PC metrics, trace on/off (loopback)"

let e19_header =
  [ "shards"; "trace"; "commits"; "tput/1k ticks"; "events";
    "prepare p50/p95"; "decide p50/p95"; "wall s" ]

let e19_cell ~quick shards traced =
  let txns = if quick then 12 else 60 in
  let cross = if shards > 1 then fun _ -> true else fun _ -> false in
  let script = e18_script ~shards ~txns cross in
  let dbs = e18_mk_cluster shards in
  let metrics = Metrics.create () in
  let cwal = Wal.create metrics in
  let events = ref 0 in
  let trace = Ivdb_util.Trace.create ~clock:Sched.now ~fiber:Sched.self () in
  if traced then begin
    Ivdb_util.Trace.add_sink trace (fun _ -> incr events);
    Ivdb_util.Trace.set_enabled trace true;
    Array.iter
      (fun db ->
        let tr = Database.trace db in
        Ivdb_util.Trace.add_sink tr (fun _ -> incr events);
        Ivdb_util.Trace.set_enabled tr true)
      dbs
  end;
  let wall0 = Unix.gettimeofday () in
  let committed, ticks =
    e18_phase ~metrics ~trace dbs cwal (fun c ->
        e18_setup c;
        let t0 = Sched.now () in
        let n = ref 0 in
        List.iter
          (fun stmts ->
            ignore (Coord.exec c "BEGIN");
            List.iter (fun (_, s) -> ignore (Coord.exec c s)) stmts;
            ignore (Coord.exec c "COMMIT");
            incr n)
          script;
        (!n, Sched.now () - t0))
  in
  let wall = Unix.gettimeofday () -. wall0 in
  let pcts name =
    let cells = Metrics.hist_snapshot metrics name in
    (Metrics.percentile_cells cells 50., Metrics.percentile_cells cells 95.)
  in
  let prep50, prep95 = pcts "coord.prepare.ticks" in
  let dec50, dec95 = pcts "coord.decide.ticks" in
  let tput = 1000. *. float_of_int committed /. float_of_int (max 1 ticks) in
  let onoff = if traced then "on" else "off" in
  let row =
    [
      i shards; onoff; i committed; f2 tput; i !events;
      Printf.sprintf "%d/%d" prep50 prep95;
      Printf.sprintf "%d/%d" dec50 dec95; Printf.sprintf "%.4f" wall;
    ]
  in
  let json =
    Printf.sprintf
      {|    {"shards": %d, "trace": "%s", "committed": %d, "throughput_per_1k_ticks": %.3f, "events": %d, "prepare_ticks_p50": %d, "prepare_ticks_p95": %d, "decide_ticks_p50": %d, "decide_ticks_p95": %d, "wall_s": %.4f}|}
      shards onoff committed tput !events prep50 prep95 dec50 dec95 wall
  in
  (row, json)

let e19_cells ~quick =
  List.concat_map
    (fun s -> [ e19_cell ~quick s false; e19_cell ~quick s true ])
    [ 1; 2; 4 ]

let e19_contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Build-breaking exporter smoke for the dune-runtest run: drive a small
   cross-shard workload, scrape the coordinator's Metrics_http endpoint
   over a loopback HTTP round trip, and fail the build if any of the 2PC
   metric families is missing from the exposition. *)
let e19_exporter_smoke () =
  let shards = 2 in
  let txns = 4 in
  let script = e18_script ~shards ~txns (fun _ -> true) in
  let dbs = e18_mk_cluster shards in
  let metrics = Metrics.create () in
  let cwal = Wal.create metrics in
  let body =
    e18_phase ~metrics dbs cwal (fun c ->
        e18_setup c;
        List.iter
          (fun stmts ->
            ignore (Coord.exec c "BEGIN");
            List.iter (fun (_, s) -> ignore (Coord.exec c s)) stmts;
            ignore (Coord.exec c "COMMIT"))
          script;
        let module Transport = Ivdb_transport.Transport in
        let net = Transport.Loopback.create () in
        let mlistener = Transport.Loopback.listener net in
        Ivdb_server.Metrics_http.serve metrics mlistener;
        let conn = Transport.Loopback.connect net in
        conn.Transport.write "GET /metrics HTTP/1.0\r\n\r\n";
        let chunk = Bytes.create 4096 in
        let acc = Buffer.create 4096 in
        let rec drain () =
          let n = conn.Transport.read chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            Buffer.add_subbytes acc chunk 0 n;
            drain ()
          end
        in
        drain ();
        conn.Transport.close ();
        mlistener.Transport.stop ();
        Buffer.contents acc)
  in
  let required =
    [
      "ivdb_coord_votes_yes"; "ivdb_coord_commit_2pc";
      "ivdb_coord_commit_fast_path"; "ivdb_coord_prepare_ticks";
      "ivdb_coord_decision_force_ticks"; "ivdb_coord_decide_ticks";
      "ivdb_coord_indoubt"; "ivdb_log_force";
    ]
  in
  let missing = List.filter (fun f -> not (e19_contains body f)) required in
  if missing <> [] then begin
    Printf.eprintf "FATAL: e19 smoke: exporter is missing %s\n"
      (String.concat ", " missing);
    exit 1
  end;
  if not (e19_contains body "200 OK") then begin
    Printf.eprintf "FATAL: e19 smoke: exporter did not answer 200\n";
    exit 1
  end;
  Printf.printf
    "e19 exporter smoke: scraped %d bytes, all %d 2PC metric families \
     present\n"
    (String.length body) (List.length required);
  Printf.sprintf
    {|    {"smoke": "metrics-exporter", "txns": %d, "scraped_bytes": %d, "families_checked": %d, "missing": 0}|}
    txns (String.length body) (List.length required)

let e19 () =
  let cells = e19_cells ~quick:false in
  print_table ~title:e19_title ~header:e19_header (List.map fst cells);
  ignore (e19_exporter_smoke ())

(* Build-breaking guard for the dune-runtest smoke: a read-only transaction
   must never enter the lock manager or the WAL. Asserted on metric deltas
   across a snapshot that exercises every read path. *)
let assert_snapshot_lock_free () =
  let config = { Database.default_config with read_cost = 0; write_cost = 0 } in
  let db = Database.create ~config () in
  let t =
    Database.create_table db ~name:"sales"
      ~cols:
        [
          { Schema.name = "id"; ty = Value.TInt; nullable = false };
          { Schema.name = "product"; ty = Value.TInt; nullable = false };
          { Schema.name = "qty"; ty = Value.TInt; nullable = false };
        ]
  in
  let v =
    Database.create_view db ~name:"by_product" ~group_by:[ "product" ]
      ~aggs:[ View_def.Sum (Expr.col (Database.schema db t) "qty") ]
      ~source:(Database.From (t, None))
      ~strategy:Maintain.Escrow ()
  in
  Database.transact db (fun tx ->
      for k = 1 to 20 do
        ignore
          (Table.insert db tx t
             [| Value.Int k; Value.Int (k mod 5); Value.Int k |])
      done);
  let m = Database.metrics db in
  let locks0 = Metrics.get m "lock.acquire" in
  let wal0 = Metrics.get m "log.append" in
  Database.transact db ~read_only:true (fun tx ->
      ignore (Query.view_lookup db (Some tx) v [| Value.Int 1 |]);
      Seq.iter (fun _ -> ()) (Query.table_scan db (Some tx) t Query.Serializable);
      Seq.iter (fun _ -> ()) (Query.view_scan db (Some tx) v Query.Serializable));
  let locks = Metrics.get m "lock.acquire" - locks0 in
  let wal = Metrics.get m "log.append" - wal0 in
  if locks <> 0 || wal <> 0 then begin
    Printf.eprintf
      "FATAL: read-only transaction touched the lock manager or WAL (lock.acquire +%d, log.append +%d)\n"
      locks wal;
    exit 1
  end;
  Printf.printf "snapshot lock-free guard: ok (0 lock acquisitions, 0 WAL appends)\n%!"

let commit_bench ~quick () =
  let modes =
    [
      ("sync", Txn.Sync);
      ("group", Txn.Group { max_batch = 32; max_wait_ticks = 50 });
      ("async", Txn.Async);
    ]
  in
  let mpls = if quick then [ 8; 16 ] else [ 1; 4; 8; 16; 32 ] in
  let budget = if quick then 128 else 512 in
  let cell (mode_name, mode) mpl =
    let spec =
      {
        Workload.default with
        seed = 11;
        strategy = Maintain.Escrow;
        mpl;
        txns_per_worker = max 1 (budget / mpl);
        n_groups = 20;
        theta = 0.99;
        delete_fraction = 0.1;
        config = { Workload.default.Workload.config with commit_mode = mode };
      }
    in
    let r = Workload.run spec in
    let get n = match List.assoc_opt n r.Workload.metrics with Some v -> v | None -> 0 in
    let per_commit x = float_of_int x /. float_of_int (max 1 r.Workload.committed) in
    let row =
      [
        mode_name;
        i mpl;
        i r.Workload.committed;
        f2 r.Workload.throughput;
        i r.Workload.forces;
        f2 (per_commit r.Workload.forces);
        f2 r.Workload.mean_batch;
        f1 (per_commit (get "commit.stall_ticks"));
      ]
    in
    let json =
      Printf.sprintf
        {|    {"mode": "%s", "mpl": %d, "committed": %d, "throughput_per_1k_ticks": %.3f, "forces": %d, "forces_per_commit": %.4f, "mean_batch": %.2f, "stall_ticks_per_commit": %.2f}|}
        mode_name mpl r.Workload.committed r.Workload.throughput
        r.Workload.forces
        (per_commit r.Workload.forces)
        r.Workload.mean_batch
        (per_commit (get "commit.stall_ticks"))
    in
    (row, json)
  in
  let cells = List.concat_map (fun m -> List.map (cell m) mpls) modes in
  (* tracing overhead: the group-commit cell at the highest mpl, structured
     trace off vs on (events counted, then discarded). Tick throughput is
     deterministic and must be identical either way — tracing never touches
     the simulated clock — so the interesting deltas are event volume and
     wall time. *)
  let trace_cell enabled =
    let mpl = List.fold_left max 1 mpls in
    let spec =
      {
        Workload.default with
        seed = 11;
        strategy = Maintain.Escrow;
        mpl;
        txns_per_worker = max 1 (budget / mpl);
        n_groups = 20;
        theta = 0.99;
        delete_fraction = 0.1;
        config =
          {
            Workload.default.Workload.config with
            commit_mode = Txn.Group { max_batch = 32; max_wait_ticks = 50 };
          };
      }
    in
    let db, sales, views = Workload.setup spec in
    let events = ref 0 in
    if enabled then begin
      let tr = Database.trace db in
      Ivdb_util.Trace.add_sink tr (fun _ -> incr events);
      Ivdb_util.Trace.set_enabled tr true
    end;
    let r = Workload.run_on db sales views spec in
    (mpl, r, !events)
  in
  let mpl_off, r_off, _ = trace_cell false in
  let _, r_on, events = trace_cell true in
  let trace_json =
    [
      Printf.sprintf
        {|    {"mode": "group", "mpl": %d, "trace": "off", "committed": %d, "throughput_per_1k_ticks": %.3f, "events": 0, "wall_s": %.4f}|}
        mpl_off r_off.Workload.committed r_off.Workload.throughput
        r_off.Workload.wall_s;
      Printf.sprintf
        {|    {"mode": "group", "mpl": %d, "trace": "on", "committed": %d, "throughput_per_1k_ticks": %.3f, "events": %d, "wall_s": %.4f}|}
        mpl_off r_on.Workload.committed r_on.Workload.throughput events
        r_on.Workload.wall_s;
    ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E11  Commit path: per-commit force vs group commit vs async (escrow, zipf 0.99, ~%d txns)"
         budget)
    ~header:
      [ "commit mode"; "mpl"; "commits"; "tput/1k ticks"; "forces";
        "forces/commit"; "mean batch"; "stall/commit" ]
    (List.map fst cells);
  Printf.printf
    "\ntracing overhead (group, mpl %d): off %.2f tput / %.3fs wall, on %.2f tput / %.3fs wall (%d events)\n"
    mpl_off r_off.Workload.throughput r_off.Workload.wall_s
    r_on.Workload.throughput r_on.Workload.wall_s events;
  (* the fault-recovery cells ride along: quick mode doubles as the
     fault-enabled smoke run invoked from the dune test runner *)
  let e12_cells = fault_cells ~quick in
  print_table ~title:e12_title ~header:e12_header (List.map fst e12_cells);
  (* the network-serving cells ride along too: quick mode doubles as the
     loopback+tcp server smoke run invoked from the dune test runner *)
  let e13_cells = e13_cells ~quick in
  print_table ~title:e13_title ~header:e13_header (List.map fst e13_cells);
  (* and the introspection-overhead cells: slow-query log off/idle/worst
     over the same loopback closed loop *)
  let e14_cells = e14_cells ~quick in
  print_table ~title:e14_title ~header:e14_header (List.map fst e14_cells);
  (* and the MVCC snapshot-reader cells, preceded by the build-breaking
     zero-lock guard for read-only transactions *)
  assert_snapshot_lock_free ();
  let e15_cells = e15_cells ~quick in
  print_table ~title:e15_title ~header:e15_header (List.map fst e15_cells);
  (* and the replication cells: quick mode doubles as the zero-divergence
     WAL-shipping smoke run (any digest mismatch exits non-zero) *)
  let e16_cells = e16_cells ~quick in
  print_table ~title:e16_title ~header:e16_header (List.map fst e16_cells);
  (* and the failover cells: quick mode doubles as the promote-under-crash
     zero-loss smoke run (digest divergence exits non-zero) *)
  let e17_cells = e17_cells ~quick in
  print_table ~title:e17_title ~header:e17_header (List.map fst e17_cells);
  (* and the sharding cells: quick mode doubles as the coordinator-crash
     decision-audit smoke run (lost/duplicated decisions exit non-zero) *)
  let e18_cells = e18_cells ~quick in
  print_table ~title:e18_title ~header:e18_header (List.map fst e18_cells);
  let e18_smoke_json = e18_crash_smoke () in
  (* and the cluster-observability cells: quick mode doubles as the
     coordinator-exporter smoke run (a missing 2PC metric family exits
     non-zero) *)
  let e19_cells = e19_cells ~quick in
  print_table ~title:e19_title ~header:e19_header (List.map fst e19_cells);
  let e19_smoke_json = e19_exporter_smoke () in
  let oc = open_out "BENCH_commit.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"commit\",\n  \"quick\": %b,\n  \"cells\": [\n%s\n  ],\n  \"e12_fault_recovery\": [\n%s\n  ],\n  \"e13_network\": [\n%s\n  ],\n  \"e14_introspection\": [\n%s\n  ],\n  \"e15_mvcc\": [\n%s\n  ],\n  \"e16_replication\": [\n%s\n  ],\n  \"e17_failover\": [\n%s\n  ],\n  \"e18_sharding\": [\n%s\n  ],\n  \"e19_cluster_observability\": [\n%s\n  ]\n}\n"
    quick
    (String.concat ",\n" (List.map snd cells @ trace_json))
    (String.concat ",\n" (List.map snd e12_cells))
    (String.concat ",\n" (List.map snd e13_cells))
    (String.concat ",\n" (List.map snd e14_cells))
    (String.concat ",\n" (List.map snd e15_cells))
    (String.concat ",\n" (List.map snd e16_cells))
    (String.concat ",\n" (List.map snd e17_cells))
    (String.concat ",\n" (List.map snd e18_cells @ [ e18_smoke_json ]))
    (String.concat ",\n" (List.map snd e19_cells @ [ e19_smoke_json ]));
  close_out oc;
  Printf.printf "wrote BENCH_commit.json (%d cells)\n%!"
    (List.length cells + List.length trace_json + List.length e12_cells
   + List.length e13_cells + List.length e14_cells + List.length e15_cells
   + List.length e16_cells + List.length e17_cells + List.length e18_cells
   + List.length e19_cells + 2)

let e11 () = commit_bench ~quick:false ()

(* --- M0: bechamel micro-benchmarks ------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  (* shared fixtures, built once *)
  let h_metrics = Metrics.create () in
  let disk = Ivdb_storage.Disk.create ~read_cost:0 ~write_cost:0 h_metrics in
  let pool = Ivdb_storage.Bufpool.create disk ~capacity:1024 h_metrics in
  let wal = Wal.create h_metrics in
  Ivdb_storage.Bufpool.set_wal_force pool (fun lsn -> Wal.force wal (Int64.to_int lsn));
  let locks = Ivdb_lock.Lock_mgr.create h_metrics in
  let mgr = Txn.create_mgr ~wal ~locks ~pool h_metrics in
  let tree = Ivdb_btree.Btree.create mgr ~index_id:1 in
  let stx = Txn.begin_system mgr in
  let key k = Ivdb_relation.Key_codec.encode [| Value.Int k |] in
  for k = 1 to 10_000 do
    Ivdb_btree.Btree.insert stx tree ~key:(key k) ~value:(Printf.sprintf "v%06d" k)
  done;
  Txn.commit mgr stx;
  let rng = Rng.create 99 in
  let sample_row =
    [| Value.Int 42; Value.Str "payload"; Value.Float 3.14; Value.Bool true |]
  in
  let sample_encoded = Row.encode sample_row in
  let def =
    {
      View_def.name = "m";
      group_cols = [| 0 |];
      aggs = [| View_def.Sum (Expr.Col 1) |];
      source = View_def.Single { table = 1; where = None };
    }
  in
  let stored = Ivdb_core.Aggregate.zero_row def in
  let delta =
    match Ivdb_core.Aggregate.delta_of_row def ~sign:1 [| Value.Int 1; Value.Int 5 |] with
    | Some (_, d) -> d
    | None -> assert false
  in
  let counter = ref 100_000 in
  let tests =
    [
      Test.make ~name:"btree.search (10k)"
        (Staged.stage (fun () ->
             ignore (Ivdb_btree.Btree.search tree (key (1 + Rng.int rng 10_000)))));
      Test.make ~name:"btree.insert+delete"
        (Staged.stage (fun () ->
             incr counter;
             let k = key !counter in
             Ivdb_btree.Btree.insert_raw tree ~key:k ~value:"x" |> ignore;
             Ivdb_btree.Btree.delete_raw tree ~key:k |> ignore));
      Test.make ~name:"btree.next_key"
        (Staged.stage (fun () ->
             ignore (Ivdb_btree.Btree.next_key tree (key (Rng.int rng 10_000)))));
      Test.make ~name:"row.encode"
        (Staged.stage (fun () -> ignore (Row.encode sample_row)));
      Test.make ~name:"row.decode"
        (Staged.stage (fun () -> ignore (Row.decode sample_encoded)));
      Test.make ~name:"key_codec.encode"
        (Staged.stage (fun () ->
             ignore (Ivdb_relation.Key_codec.encode sample_row)));
      Test.make ~name:"lock.acquire+release"
        (Staged.stage (fun () ->
             Ivdb_lock.Lock_mgr.acquire locks ~txn:1 (Ivdb_lock.Lock_name.Table 9)
               Ivdb_lock.Lock_mode.S;
             Ivdb_lock.Lock_mgr.release_all locks ~txn:1));
      Test.make ~name:"escrow.apply_delta"
        (Staged.stage (fun () ->
             ignore (Ivdb_core.Aggregate.apply def stored delta)));
      Test.make ~name:"wal.append"
        (Staged.stage (fun () ->
             ignore (Wal.append wal ~txn:1 ~prev:0 Ivdb_wal.Log_record.Commit)));
      Test.make ~name:"sql.parse select"
        (Staged.stage (fun () ->
             ignore
               (Ivdb_sql.Sql_parser.parse
                  "SELECT a, b FROM t WHERE a = 1 AND b > 2 ORDER BY b DESC LIMIT 3")));
      Test.make ~name:"log_record.encode"
        (Staged.stage
           (let r =
              {
                Ivdb_wal.Log_record.lsn = 1;
                txn = 7;
                prev = 0;
                body =
                  Ivdb_wal.Log_record.Update
                    {
                      redo = [ (3, [ (100, "0123456789abcdef") ]) ];
                      undo =
                        Ivdb_wal.Log_record.Undo_escrow
                          { view = 9; key = "k"; inverse = "xyz" };
                    };
              }
            in
            fun () -> ignore (Ivdb_wal.Log_record.encode r)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  let rows =
    List.map
      (fun test ->
        let results =
          Benchmark.all cfg Instance.[ monotonic_clock ] (Test.make_grouped ~name:"g" [ test ])
        in
        Hashtbl.fold
          (fun name bench acc ->
            let ols =
              Analyze.one
                (Analyze.ols ~r_square:false ~bootstrap:0
                   ~predictors:[| Measure.run |])
                Instance.monotonic_clock bench
            in
            let ns =
              match Analyze.OLS.estimates ols with
              | Some (x :: _) -> x
              | _ -> nan
            in
            [ name; f1 ns ] :: acc)
          results []
        |> List.hd)
      tests
  in
  print_table ~title:"M0  Substrate micro-benchmarks (bechamel)"
    ~header:[ "operation"; "ns/op" ] rows

(* --- driver ------------------------------------------------------------------------------- *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e19", e19); ("micro", micro);
  ]

(* "commit-quick" is a cheap smoke variant of e11 invoked from the dune
   test runner; it is not part of the run-everything default. *)
let extra = [ ("commit-quick", fun () -> commit_bench ~quick:true ()) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let chosen =
    match args with
    | [] -> experiments
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n (experiments @ extra) with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %s (known: %s)\n" n
                  (String.concat ", "
                     (List.map fst experiments @ List.map fst extra));
                exit 2)
          names
  in
  List.iter (fun (_, f) -> f ()) chosen
