-- A guided tour of ivdb's SQL surface. Run with:
--   dune exec bin/ivdb_repl.exe < examples/tour.sql

-- Schema: an order-entry table with a secondary index and a uniqueness
-- constraint.
CREATE TABLE sales (id INT NOT NULL, product TEXT NOT NULL, qty INT NOT NULL)
CREATE UNIQUE INDEX pk_sales ON sales (id)
CREATE INDEX ix_qty ON sales (qty)

-- The paper's core object: an indexed view, maintained with escrow
-- (increment) locks so concurrent writers to the same product never block.
CREATE VIEW by_product AS SELECT product, COUNT(*), SUM(qty) FROM sales GROUP BY product USING ESCROW

INSERT INTO sales VALUES (1, 'apple', 3), (2, 'pear', 2), (3, 'apple', 4), (4, 'fig', 9)

-- The view is read directly: no aggregation at query time.
SELECT * FROM by_product

-- The optimizer also answers matching ad-hoc aggregations from the view:
EXPLAIN SELECT product, SUM(qty) FROM sales GROUP BY product
SELECT product, SUM(qty) FROM sales GROUP BY product

-- Aggregates the view cannot store fall back to on-demand aggregation:
EXPLAIN SELECT product, MIN(qty) FROM sales GROUP BY product
SELECT product, AVG(qty) FROM sales GROUP BY product HAVING COUNT(*) > 1

-- Predicates use indexes where they can:
EXPLAIN SELECT id FROM sales WHERE qty > 2 AND qty <= 5
SELECT id, qty FROM sales WHERE qty > 2 AND qty <= 5 ORDER BY qty DESC

-- Transactions, savepoints, and rollback — the view follows along.
BEGIN
INSERT INTO sales VALUES (5, 'apple', 100)
SAVEPOINT before_fig
INSERT INTO sales VALUES (6, 'fig', 50)
ROLLBACK TO before_fig
COMMIT
SELECT * FROM by_product

-- Uniqueness is enforced transactionally:
INSERT INTO sales VALUES (1, 'dup', 1)

-- Crash the engine; committed state (view included) survives recovery.
.crash
SELECT * FROM by_product

CHECKPOINT
SHOW TABLES
SHOW VIEWS
.quit
