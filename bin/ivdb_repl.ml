(* Interactive SQL shell over an in-memory ivdb instance, or — with
   --connect HOST:PORT or the .connect dot-command — a network client of
   a running ivdb_server.

   Extra dot-commands beyond SQL:
     .crash            simulate a crash and recover        (local only)
     .gc               run garbage collection              (local only)
     .trace on|off|show engine trace ring                  (local only)
     .stats            engine counters (sys.metrics)
     .locks            lock table and wait queue (sys.locks, sys.lock_waits)
     .sessions         server sessions (sys.server_sessions)
     .shards           shard identity and 2PC state (sys.shards)
     .gtxns            live/recent global transactions (sys.gtxns)
     .cluster          coordinator cluster view (sys.coord_shards,
                       sys.cluster_metrics) — needs a coordinator backend
     .replicas         replication slots / follower link (sys.replication)
     .promote          promote a follower server to primary (remote only)
     .drop-replica N   forget a detached replication slot  (remote only)
     .connect H:P      switch to a remote server
     .local            switch back to a fresh local instance
     .help             this text
     .quit             exit

   Run with: dune exec bin/ivdb_repl.exe
   or pipe a script: dune exec bin/ivdb_repl.exe < script.sql *)

module Sql = Ivdb_sql.Sql
module Database = Ivdb.Database
module Trace = Ivdb_util.Trace
module Wire = Ivdb_wire.Wire
module Client = Ivdb_client.Client

let help =
  {|statements: CREATE TABLE/INDEX/VIEW, INSERT, DELETE, UPDATE, SELECT,
            EXPLAIN [ANALYZE] SELECT, BEGIN, COMMIT, ROLLBACK, CHECKPOINT,
            SHOW TABLES/VIEWS/METRICS,
            SELECT * FROM sys.transactions|locks|lock_waits|views|bufpool|
                          wal|metrics|metrics_hist|server_sessions|
                          slow_queries|replication|shards
dot commands: .crash .gc .trace on|off|show .stats .locks .sessions .shards
              .gtxns .cluster .replicas .promote .drop-replica NAME
              .connect HOST:PORT .local .help .quit|}

(* the trace ring survives statements but not .crash (new instance, new trace) *)
let ring_capacity = 4096

type backend = Local of Sql.session | Remote of string * Client.t

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port when port >= 0 -> Some (host, port)
      | _ -> None)

let connect_remote addr =
  match parse_host_port addr with
  | None ->
      Printf.printf "bad address %S (want HOST:PORT)\n" addr;
      None
  | Some (host, port) -> (
      match
        Client.connect ~client:"ivdb_repl"
          (Ivdb_transport.Unix_transport.dialer ~host ~port ())
      with
      | cl ->
          Printf.printf "connected to %s (session %d)\n"
            (Client.server_name cl) (Client.session_id cl);
          Some (Remote (addr, cl))
      | exception Ivdb_transport.Transport.Refused ->
          Printf.printf "connection refused by %s\n" addr;
          None
      | exception Client.Server_busy _ ->
          Printf.printf "server at %s is at capacity, try again\n" addr;
          None
      | exception (Client.Disconnected m | Failure m) ->
          Printf.printf "connect failed: %s\n" m;
          None)

let () =
  let interactive = Unix.isatty Unix.stdin in
  let initial_backend =
    (* --connect HOST:PORT / --connect=HOST:PORT *)
    let argv = Array.to_list Sys.argv in
    let addr =
      let rec find = function
        | "--connect" :: a :: _ -> Some a
        | a :: rest ->
            let p = "--connect=" in
            if String.length a > String.length p
               && String.sub a 0 (String.length p) = p
            then Some (String.sub a (String.length p) (String.length a - String.length p))
            else find rest
        | [] -> None
      in
      find (List.tl argv)
    in
    match addr with
    | None -> Local (Sql.session (Database.create ()))
    | Some a -> (
        match connect_remote a with
        | Some b -> b
        | None -> exit 1)
  in
  if interactive then
    print_endline "ivdb SQL shell — .help for help, .quit to exit";
  let backend = ref initial_backend in
  let ring = ref None in
  let local_only name =
    match !backend with
    | Local _ -> true
    | Remote _ ->
        Printf.printf "%s works only on a local instance (.local to switch)\n"
          name;
        false
  in
  let session_of_local () =
    match !backend with Local s -> s | Remote _ -> assert false
  in
  let trace_cmd arg =
    if local_only ".trace" then begin
      let tr = Database.trace (Sql.db (session_of_local ())) in
      match arg with
      | "on" ->
          let r = Trace.Ring.create ~capacity:ring_capacity in
          ring := Some r;
          Trace.clear_sinks tr;
          Trace.add_sink tr (Trace.Ring.sink r);
          Trace.set_enabled tr true;
          Printf.printf "tracing on (last %d events kept)\n" ring_capacity
      | "off" ->
          Trace.set_enabled tr false;
          print_endline "tracing off"
      | "show" -> (
          match !ring with
          | None -> print_endline "tracing has not been turned on"
          | Some r ->
              List.iter
                (fun rec_ -> print_endline (Trace.to_json rec_))
                (Trace.Ring.contents r);
              Printf.printf "(%d of %d event(s))\n" (Trace.Ring.length r)
                (Trace.Ring.seen r))
      | _ -> print_endline "usage: .trace on|off|show"
    end
  in
  let switch_backend b =
    (match !backend with Remote (_, cl) -> Client.close cl | Local _ -> ());
    ring := None;
    backend := b
  in
  let exec_line line =
    match !backend with
    | Local s -> (
        try print_endline (Sql.render (Sql.exec s line)) with
        | Sql.Sql_error m -> Printf.printf "error: %s\n" m
        | Ivdb_sql.Sql_parser.Parse_error m -> Printf.printf "parse error: %s\n" m
        | Ivdb_sql.Sql_lexer.Lex_error m -> Printf.printf "lex error: %s\n" m
        | Database.Constraint_violation m ->
            Printf.printf "constraint violation: %s\n" m
        | Ivdb_txn.Txn.Conflict _ -> print_endline "error: deadlock victim, retry")
    | Remote (_, cl) -> (
        (* the server ships results as Sql.result frames, so rendering is
           byte-identical with the local path *)
        try print_endline (Sql.render (Client.exec cl line)) with
        | Client.Server_error { code; text; txn_open } ->
            Printf.printf "server error (%s%s): %s\n"
              (Wire.error_code_name code)
              (if txn_open then ", transaction still open" else "")
              text
        | Client.Server_busy { retry_ticks } ->
            Printf.printf "server busy, retry in ~%d ticks\n" retry_ticks
        | Client.Disconnected m -> Printf.printf "disconnected: %s\n" m)
  in
  let rec loop () =
    if interactive then begin
      (match !backend with
      | Local s ->
          print_string (if Sql.in_transaction s then "ivdb*> " else "ivdb> ")
      | Remote (addr, _) -> Printf.printf "ivdb@%s> " addr);
      flush stdout
    end;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
        let line = String.trim line in
        (if line = "" then ()
         else if line = ".quit" || line = ".exit" then begin
           (match !backend with Remote (_, cl) -> Client.close cl | Local _ -> ());
           exit 0
         end
         else if line = ".help" then print_endline help
         else if line = ".gc" then begin
           if local_only ".gc" then
             Printf.printf "gc reclaimed %d item(s)\n"
               (Database.gc (Sql.db (session_of_local ())))
         end
         else if line = ".crash" then begin
           if local_only ".crash" then begin
             let db' = Database.crash (Sql.db (session_of_local ())) in
             switch_backend (Local (Sql.session db'));
             print_endline "crashed and recovered"
           end
         end
         else if line = ".local" then begin
           switch_backend (Local (Sql.session (Database.create ())));
           print_endline "switched to a fresh local instance"
         end
         else if String.length line >= 8 && String.sub line 0 8 = ".connect" then begin
           let addr = String.trim (String.sub line 8 (String.length line - 8)) in
           if addr = "" then print_endline "usage: .connect HOST:PORT"
           else
             match connect_remote addr with
             | Some b -> switch_backend b
             | None -> ()
         end
         else if String.length line >= 6 && String.sub line 0 6 = ".trace" then
           trace_cmd (String.trim (String.sub line 6 (String.length line - 6)))
         (* introspection shortcuts: plain sys.* queries, so they work
            identically on a local instance and over .connect *)
         else if line = ".stats" then
           exec_line "SELECT * FROM sys.metrics"
         else if line = ".locks" then begin
           exec_line "SELECT * FROM sys.locks";
           exec_line "SELECT * FROM sys.lock_waits"
         end
         else if line = ".sessions" then
           exec_line "SELECT * FROM sys.server_sessions"
         else if line = ".shards" then
           exec_line "SELECT * FROM sys.shards"
         else if line = ".gtxns" then
           exec_line "SELECT * FROM sys.gtxns"
         else if line = ".cluster" then begin
           exec_line "SELECT * FROM sys.coord_shards";
           exec_line "SELECT * FROM sys.cluster_metrics"
         end
         else if line = ".replicas" then
           exec_line "SELECT * FROM sys.replication"
         else if line = ".promote" then begin
           match !backend with
           | Local _ ->
               print_endline
                 ".promote works only over .connect (a local instance is \
                  already a primary)"
           | Remote (_, cl) -> (
               try print_endline (Client.promote cl) with
               | Client.Server_error { code; text; _ } ->
                   Printf.printf "server error (%s): %s\n"
                     (Wire.error_code_name code) text
               | Client.Disconnected m -> Printf.printf "disconnected: %s\n" m)
         end
         else if String.length line >= 13 && String.sub line 0 13 = ".drop-replica"
         then begin
           let name =
             String.trim (String.sub line 13 (String.length line - 13))
           in
           if name = "" then print_endline "usage: .drop-replica NAME"
           else
             match !backend with
             | Local _ ->
                 print_endline
                   ".drop-replica works only over .connect (.local instances \
                    have no slots)"
             | Remote (_, cl) -> (
                 try print_endline (Client.drop_slot cl name) with
                 | Client.Server_error { code; text; _ } ->
                     Printf.printf "server error (%s): %s\n"
                       (Wire.error_code_name code) text
                 | Client.Disconnected m -> Printf.printf "disconnected: %s\n" m)
         end
         else if Ivdb_sql.Sql_lexer.tokenize line = [ Ivdb_sql.Sql_lexer.Eof ] then
           () (* comment-only line *)
         else exec_line line);
        loop ()
  in
  loop ()
