(* Interactive SQL shell over an in-memory ivdb instance.

   Extra dot-commands beyond SQL:
     .crash        simulate a crash and recover
     .gc           run garbage collection (ghosts, zero-count groups, vacuum)
     .trace on     start recording engine trace events (bounded ring)
     .trace off    stop recording
     .trace show   print the recorded events, oldest first
     .help         this text
     .quit         exit

   Run with: dune exec bin/ivdb_repl.exe
   or pipe a script: dune exec bin/ivdb_repl.exe < script.sql *)

module Sql = Ivdb_sql.Sql
module Database = Ivdb.Database
module Trace = Ivdb_util.Trace

let help =
  {|statements: CREATE TABLE/INDEX/VIEW, INSERT, DELETE, UPDATE, SELECT,
            EXPLAIN [ANALYZE] SELECT, BEGIN, COMMIT, ROLLBACK, CHECKPOINT,
            SHOW TABLES/VIEWS/METRICS
dot commands: .crash .gc .trace on|off|show .help .quit|}

(* the trace ring survives statements but not .crash (new instance, new trace) *)
let ring_capacity = 4096

let () =
  let interactive = Unix.isatty Unix.stdin in
  if interactive then
    print_endline "ivdb SQL shell — .help for help, .quit to exit";
  let session = ref (Sql.session (Database.create ())) in
  let ring = ref None in
  let trace_cmd arg =
    let tr = Database.trace (Sql.db !session) in
    match arg with
    | "on" ->
        let r = Trace.Ring.create ~capacity:ring_capacity in
        ring := Some r;
        Trace.clear_sinks tr;
        Trace.add_sink tr (Trace.Ring.sink r);
        Trace.set_enabled tr true;
        Printf.printf "tracing on (last %d events kept)\n" ring_capacity
    | "off" ->
        Trace.set_enabled tr false;
        print_endline "tracing off"
    | "show" -> (
        match !ring with
        | None -> print_endline "tracing has not been turned on"
        | Some r ->
            List.iter
              (fun rec_ -> print_endline (Trace.to_json rec_))
              (Trace.Ring.contents r);
            Printf.printf "(%d of %d event(s))\n" (Trace.Ring.length r)
              (Trace.Ring.seen r))
    | _ -> print_endline "usage: .trace on|off|show"
  in
  let rec loop () =
    if interactive then begin
      print_string (if Sql.in_transaction !session then "ivdb*> " else "ivdb> ");
      flush stdout
    end;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
        let line = String.trim line in
        (if line = "" then ()
         else if line = ".quit" || line = ".exit" then exit 0
         else if line = ".help" then print_endline help
         else if line = ".gc" then
           Printf.printf "gc reclaimed %d item(s)\n" (Database.gc (Sql.db !session))
         else if line = ".crash" then begin
           let db' = Database.crash (Sql.db !session) in
           session := Sql.session db';
           ring := None;
           print_endline "crashed and recovered"
         end
         else if String.length line >= 6 && String.sub line 0 6 = ".trace" then
           trace_cmd (String.trim (String.sub line 6 (String.length line - 6)))
         else if Ivdb_sql.Sql_lexer.tokenize line = [ Ivdb_sql.Sql_lexer.Eof ] then
           () (* comment-only line *)
         else
           try print_endline (Sql.render (Sql.exec !session line)) with
           | Sql.Sql_error m -> Printf.printf "error: %s\n" m
           | Ivdb_sql.Sql_parser.Parse_error m -> Printf.printf "parse error: %s\n" m
           | Ivdb_sql.Sql_lexer.Lex_error m -> Printf.printf "lex error: %s\n" m
           | Database.Constraint_violation m -> Printf.printf "constraint violation: %s\n" m
           | Ivdb_txn.Txn.Conflict _ -> print_endline "error: deadlock victim, retry");
        loop ()
  in
  loop ()
