(* Standalone sharding coordinator: the wire protocol on a TCP port in
   front of N ivdb_server --shard i/N processes.

   Example (a 2-shard cluster on one machine):
     ivdb_server --port 5434 --shard 0/2 &
     ivdb_server --port 5435 --shard 1/2 &
     ivdb_coord --port 5433 --shards 127.0.0.1:5434,127.0.0.1:5435 \
       --metrics-port 9433
     ivdb_repl --connect 127.0.0.1:5433     # .gtxns / .cluster work here

   Any wire client connected to the coordinator sees the whole cluster:
   DDL broadcasts, INSERTs split by partition, cross-shard COMMITs run
   presumed-abort 2PC, and the coordinator-resident catalogs
   (sys.gtxns, sys.coord_shards, sys.cluster_metrics) answer locally.
   --metrics-port serves the coordinator registry's Prometheus
   exposition (per-phase 2PC tick histograms, vote and abort-cause
   counters, fast-path vs 2PC commits, in-doubt gauge); --trace-out
   streams the gtxn-correlated coordinator trace as JSONL. Stop with
   Ctrl-C: the listener drains, then decision re-delivery state is
   reported. *)

module Sched = Ivdb_sched.Sched
module Coord = Ivdb_coord.Coord
module Coord_server = Ivdb_coord.Coord_server
module Unix_transport = Ivdb_transport.Unix_transport
module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace

open Cmdliner

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      match
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      with
      | Some port when port >= 0 -> Some (host, port)
      | _ -> None)

let run port shards name metrics_port trace_out =
  let addrs =
    String.split_on_char ',' shards
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if addrs = [] then begin
    prerr_endline "--shards is required (comma-separated HOST:PORT list)";
    exit 2
  end;
  let dialers =
    addrs
    |> List.map (fun addr ->
           match parse_host_port addr with
           | Some (host, p) -> Unix_transport.dialer ~host ~port:p ()
           | None ->
               prerr_endline
                 (Printf.sprintf "bad shard address %S (want HOST:PORT)" addr);
               exit 2)
    |> Array.of_list
  in
  let stop = ref false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  let coord = ref None in
  Sched.run (fun () ->
      let c = Coord.create ~name dialers in
      coord := Some c;
      let close_trace =
        match trace_out with
        | None -> fun () -> ()
        | Some path ->
            let tr = Coord.trace c in
            let oc = open_out path in
            Trace.add_sink tr (fun r ->
                output_string oc (Trace.to_json r ^ "\n"));
            Trace.set_enabled tr true;
            fun () ->
              Trace.set_enabled tr false;
              close_out oc
      in
      let listener, actual_port = Unix_transport.listen ~port () in
      let srv = Coord_server.create ~name c listener in
      Coord_server.serve srv;
      Printf.printf "ivdb_coord %S listening on 127.0.0.1:%d (%d shard(s))\n"
        name actual_port (Coord.shard_count c);
      let stop_metrics =
        match metrics_port with
        | None -> fun () -> ()
        | Some p ->
            let mlistener, mport = Unix_transport.listen ~port:p () in
            Ivdb_server.Metrics_http.serve (Coord.metrics c) mlistener;
            Printf.printf "metrics exposition on http://127.0.0.1:%d/metrics\n"
              mport;
            mlistener.Ivdb_transport.Transport.stop
      in
      flush stdout;
      while not !stop do
        Unix.sleepf 0.001;
        Sched.yield ()
      done;
      print_endline "draining...";
      flush stdout;
      (* the exporter's accept fiber would otherwise outlive the drain
         and keep the scheduler running forever *)
      stop_metrics ();
      close_trace ();
      Coord_server.drain srv;
      Coord.close c);
  match !coord with
  | None -> ()
  | Some c ->
      let s = Coord.stats c in
      Printf.printf
        "%d single-shard commit(s), %d cross-shard commit(s), %d abort(s), \
         %d prepare(s), %d decide(s)\n"
        s.Coord.single_shard_commits s.Coord.cross_shard_commits s.Coord.aborts
        s.Coord.prepares_sent s.Coord.decides_sent

let cmd =
  let open Term in
  let port =
    Arg.(
      value & opt int 5433
      & info [ "port" ] ~doc:"TCP port on 127.0.0.1 (0 = kernel-assigned).")
  in
  let shards =
    Arg.(
      value & opt string ""
      & info [ "shards" ] ~docv:"ADDRS"
          ~doc:
            "Comma-separated HOST:PORT list of the shard servers, in shard-id \
             order; each must run ivdb_server --shard i/N with i matching its \
             position here.")
  in
  let name =
    Arg.(
      value & opt string "coord"
      & info [ "name" ]
          ~doc:
            "Coordinator name: prefixes global transaction ids (NAME:n) and \
             is the server string in Welcome.")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ]
          ~doc:
            "Also serve the Prometheus text exposition of the coordinator's \
             metrics registry (2PC phase histograms, vote/abort counters) \
             over HTTP on this 127.0.0.1 port (0 = kernel-assigned).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Stream the coordinator's gtxn-correlated trace (coord.route, \
             coord.prepare, coord.vote, coord.decision, coord.decide, \
             coord.fast_path) to $(docv) as JSONL.")
  in
  Cmd.v
    (Cmd.info "ivdb_coord"
       ~doc:"Serve a hash-partitioned ivdb cluster's coordinator over the wire")
    (const run $ port $ shards $ name $ metrics_port $ trace_out)

let () = exit (Cmd.eval cmd)
