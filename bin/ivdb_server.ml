(* Standalone ivdb network server: an in-memory engine behind the wire
   protocol on a TCP port, one cooperative session fiber per connection.

   Examples:
     ivdb_server --port 5433
     ivdb_server --port 0 --max-inflight 16 --commit-mode group
     ivdb_server --port 5434 --follow 127.0.0.1:5433
     ivdb_server --port 5433 --shard 0/2
   With --shard i/N the engine serves as shard i of an N-way
   hash-partitioned cluster: escrow view deltas for remote groups are
   diverted to the transaction's outbound buffer, and the 2PC
   Prepare/Decide frames a sharding coordinator sends are honoured
   (sys.shards / the REPL .shards command show the identity).
   With --follow the engine starts as a read-only follower: a replica
   driver subscribes to the primary at HOST:PORT and applies its WAL
   continuously, while this server answers snapshot SELECTs (writes get
   E_read_only) at the commit horizon. A follower is promoted to primary
   either by SIGUSR1 or by a Promote admin frame over the wire (the REPL
   .promote command): the driver stops, the replayed in-flight suffix is
   rolled back, and writes open. Stop with Ctrl-C (SIGINT): the server
   drains — open transactions may finish, new work is refused — then
   exits once every session closes. *)

module Sched = Ivdb_sched.Sched
module Database = Ivdb.Database
module Server = Ivdb_server.Server
module Replica = Ivdb_server.Replica
module Unix_transport = Ivdb_transport.Unix_transport
module Txn = Ivdb_txn.Txn
module Metrics = Ivdb_util.Metrics

open Cmdliner

let commit_mode_conv =
  let parse = function
    | "sync" -> Ok Txn.Sync
    | "async" -> Ok Txn.Async
    | "group" -> Ok (Txn.Group { max_batch = 32; max_wait_ticks = 50 })
    | s -> Error (`Msg (Printf.sprintf "unknown commit mode %S" s))
  in
  let print ppf = function
    | Txn.Sync -> Format.pp_print_string ppf "sync"
    | Txn.Async -> Format.pp_print_string ppf "async"
    | Txn.Group _ -> Format.pp_print_string ppf "group"
  in
  Arg.conv (parse, print)

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      match
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      with
      | Some port when port >= 0 -> Some (host, port)
      | _ -> None)

let parse_shard_spec s =
  (* "i/N": this server is shard i of an N-shard cluster *)
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      match
        ( int_of_string_opt (String.sub s 0 i),
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some shard, Some shards when shards > 0 && shard >= 0 && shard < shards
        ->
          Some (shard, shards)
      | _ -> None)

let run port max_inflight busy_retry commit_mode slow_query_ticks metrics_port
    init follow follow_name shard_spec =
  let upstream =
    match follow with
    | None -> None
    | Some addr -> (
        match parse_host_port addr with
        | Some hp -> Some hp
        | None ->
            prerr_endline
              (Printf.sprintf "bad --follow address %S (want HOST:PORT)" addr);
            exit 2)
  in
  let shard =
    match shard_spec with
    | None -> None
    | Some spec -> (
        match parse_shard_spec spec with
        | Some _ when upstream <> None ->
            prerr_endline "--shard and --follow are mutually exclusive";
            exit 2
        | Some sp -> Some sp
        | None ->
            prerr_endline
              (Printf.sprintf "bad --shard spec %S (want I/N with 0 <= I < N)"
                 spec);
            exit 2)
  in
  let db =
    match upstream with
    | None -> Database.create ~config:{ Database.default_config with commit_mode } ()
    | Some _ -> Database.create_follower ()
  in
  (match shard with
  | None -> ()
  | Some (i, n) ->
      Ivdb_coord.Coord.configure_shard db ~shard:i ~shards:n;
      Printf.printf "serving as shard %d/%d (hash-partitioned cluster)\n" i n);
  (* optional schema/preload script, executed before the port opens *)
  (match init with
  | None -> ()
  | Some _ when upstream <> None ->
      prerr_endline "--init is meaningless on a follower (schema replicates)";
      exit 2
  | Some path ->
      let session = Ivdb_sql.Sql.session db in
      In_channel.with_open_text path (fun ic ->
          In_channel.input_lines ic
          |> List.iter (fun line ->
                 let line = String.trim line in
                 if line <> "" then ignore (Ivdb_sql.Sql.exec session line))));
  let stop = ref false in
  let promote_req = ref false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> promote_req := true));
  Sched.run (fun () ->
      let listener, actual_port = Unix_transport.listen ~port () in
      let srv =
        Server.create
          ~config:
            {
              Server.default_config with
              max_inflight;
              busy_retry_ticks = busy_retry;
              slow_query_ticks;
            }
          db listener
      in
      let repl =
        match upstream with
        | None -> None
        | Some (host, uport) ->
            let r =
              Replica.create ~name:follow_name db
                (Unix_transport.dialer ~host ~port:uport ())
            in
            (* sys.replication serves the driver's follower row until
               promotion, the primary-shaped slot rows after; attaching
               also lets the Promote wire frame stop the driver *)
            Server.attach_replica srv r;
            Replica.spawn r;
            Printf.printf "following %s:%d as %S (read-only)\n" host uport
              follow_name;
            Some r
      in
      Server.serve srv;
      Printf.printf "ivdb_server listening on 127.0.0.1:%d (max %d sessions)\n"
        actual_port max_inflight;
      let stop_metrics =
        match metrics_port with
        | None -> fun () -> ()
        | Some p ->
            let mlistener, mport = Unix_transport.listen ~port:p () in
            Ivdb_server.Metrics_http.serve (Database.metrics db) mlistener;
            Printf.printf "metrics exposition on http://127.0.0.1:%d/metrics\n"
              mport;
            mlistener.Ivdb_transport.Transport.stop
      in
      flush stdout;
      (* supervise: sleep only when idle so an unloaded server does not
         spin, pure yields when sessions are active *)
      while not !stop do
        if !promote_req then begin
          promote_req := false;
          match repl with
          | Some r when Database.is_follower db ->
              Replica.stop r;
              while Replica.status r <> Replica.Stopped do
                Sched.yield ()
              done;
              let p = Database.promote db in
              Printf.printf
                "promoted to primary: %d in-flight transaction(s) rolled \
                 back (%d undo record(s)), %d buffered record(s) applied\n"
                p.Database.losers_undone p.Database.undo_records
                p.Database.tail_records;
              flush stdout
          | _ ->
              prerr_endline "SIGUSR1 ignored: not a follower";
              flush stderr
        end;
        if Server.inflight srv = 0 then Unix.sleepf 0.001;
        Sched.yield ()
      done;
      print_endline "draining...";
      flush stdout;
      (* the exporter's accept fiber would otherwise outlive the drain
         and keep the scheduler running forever *)
      stop_metrics ();
      (match repl with Some r -> Replica.stop r | None -> ());
      Server.drain srv);
  let m = Database.metrics db in
  Printf.printf "served %d session(s), %d request(s), shed %d\n"
    (Metrics.get m "server.accepted")
    (Metrics.get m "server.requests")
    (Metrics.get m "server.shed");
  if upstream <> None then begin
    Printf.printf "replicated to LSN %d (%d batch(es), %d reconnect(s))\n"
      (Database.replicated_lsn db)
      (Metrics.get m "replica.batches")
      (Metrics.get m "replica.reconnects");
    if not (Database.is_follower db) then
      print_endline "exited as promoted primary"
  end

let cmd =
  let open Term in
  let port =
    Arg.(
      value & opt int 5433
      & info [ "port" ] ~doc:"TCP port on 127.0.0.1 (0 = kernel-assigned).")
  in
  let max_inflight =
    Arg.(
      value & opt int 32
      & info [ "max-inflight" ]
          ~doc:"Concurrent sessions before shedding with Busy.")
  in
  let busy_retry =
    Arg.(
      value & opt int 100
      & info [ "busy-retry" ] ~doc:"Backoff hint carried in Busy frames.")
  in
  let commit_mode =
    Arg.(
      value
      & opt commit_mode_conv Txn.Sync
      & info [ "commit-mode" ] ~doc:"Commit durability: sync | group | async.")
  in
  let slow_query_ticks =
    Arg.(
      value
      & opt (some int) None
      & info [ "slow-query-ticks" ]
          ~doc:"Record statements taking at least N simulated ticks in \
                sys.slow_queries (and as net.slow_query trace events).")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ]
          ~doc:"Also serve the Prometheus text exposition of the metrics \
                registry over HTTP on this 127.0.0.1 port (0 = \
                kernel-assigned).")
  in
  let init =
    Arg.(
      value
      & opt (some string) None
      & info [ "init" ] ~docv:"FILE"
          ~doc:"SQL script (one statement per line) run before serving.")
  in
  let follow =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"HOST:PORT"
          ~doc:
            "Start as a read-only follower of the ivdb_server at \
             $(docv): subscribe to its WAL stream and apply it \
             continuously. Writes to this server are refused with \
             E_read_only; SELECTs run as snapshots at the replicated \
             horizon.")
  in
  let follow_name =
    Arg.(
      value & opt string "replica"
      & info [ "follow-name" ] ~docv:"NAME"
          ~doc:
            "Replication slot name on the primary. Keep it stable across \
             restarts so the primary retains exactly the log this \
             follower still needs.")
  in
  let shard_spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard" ] ~docv:"I/N"
          ~doc:
            "Serve as shard $(docv) of an N-way hash-partitioned cluster: \
             install the shared partition maps so escrow view deltas owned \
             by remote shards are diverted to the coordinator, and accept \
             2PC Prepare/Decide frames. All N servers must use the same N.")
  in
  Cmd.v
    (Cmd.info "ivdb_server" ~doc:"Serve ivdb over the wire protocol")
    (const run $ port $ max_inflight $ busy_retry $ commit_mode
   $ slow_query_ticks $ metrics_port $ init $ follow $ follow_name
   $ shard_spec)

let () = exit (Cmd.eval cmd)
