(* Command-line driver for the order-entry workload: explore the
   contention behaviour of the three maintenance strategies without
   writing any code.

   Examples:
     ivdb_workload --strategy exclusive --mpl 16 --theta 0.99
     ivdb_workload --strategy escrow --mpl 16 --theta 0.99 --verbose
     ivdb_workload --strategy deferred --reads 0.3 --check *)

module Workload = Ivdb.Workload
module Database = Ivdb.Database
module Query = Ivdb.Query
module Maintain = Ivdb_core.Maintain
module Txn = Ivdb_txn.Txn
module Trace = Ivdb_util.Trace
module Metrics = Ivdb_util.Metrics
module Fault = Ivdb_storage.Fault
module Sched = Ivdb_sched.Sched
module Server = Ivdb_server.Server
module Transport = Ivdb_transport.Transport
module Client = Ivdb_client.Client
module Coord = Ivdb_coord.Coord
module Value = Ivdb_relation.Value

open Cmdliner

let strategy_conv =
  let parse = function
    | "exclusive" -> Ok Maintain.Exclusive
    | "escrow" -> Ok Maintain.Escrow
    | "deferred" -> Ok Maintain.Deferred
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Maintain.strategy_to_string s))

let create_mode_conv =
  let parse = function
    | "system" -> Ok Maintain.System_txn
    | "user" -> Ok Maintain.User_txn
    | s -> Error (`Msg (Printf.sprintf "unknown create mode %S" s))
  in
  Arg.conv
    ( parse,
      fun ppf m ->
        Format.pp_print_string ppf
          (match m with Maintain.System_txn -> "system" | Maintain.User_txn -> "user") )

let commit_mode_conv =
  (* group[:BATCH[:WAIT]] exposes the coordinator's knobs *)
  let parse s =
    match String.split_on_char ':' s with
    | [ "sync" ] -> Ok Txn.Sync
    | [ "async" ] -> Ok Txn.Async
    | "group" :: rest -> (
        match rest with
        | [] -> Ok (Txn.Group { max_batch = 32; max_wait_ticks = 50 })
        | [ b ] -> (
            match int_of_string_opt b with
            | Some b -> Ok (Txn.Group { max_batch = b; max_wait_ticks = 50 })
            | None -> Error (`Msg (Printf.sprintf "bad batch size %S" b)))
        | [ b; w ] -> (
            match (int_of_string_opt b, int_of_string_opt w) with
            | Some b, Some w -> Ok (Txn.Group { max_batch = b; max_wait_ticks = w })
            | _ -> Error (`Msg (Printf.sprintf "bad group parameters %S" s)))
        | _ -> Error (`Msg (Printf.sprintf "bad group parameters %S" s)))
    | _ -> Error (`Msg (Printf.sprintf "unknown commit mode %S" s))
  in
  let print ppf = function
    | Txn.Sync -> Format.pp_print_string ppf "sync"
    | Txn.Async -> Format.pp_print_string ppf "async"
    | Txn.Group { max_batch; max_wait_ticks } ->
        Format.fprintf ppf "group:%d:%d" max_batch max_wait_ticks
  in
  Arg.conv (parse, print)

let net_conv =
  let parse = function
    | "loopback" -> Ok Ivdb_client.Net_workload.Loopback
    | "tcp" -> Ok Ivdb_client.Net_workload.Tcp
    | s -> Error (`Msg (Printf.sprintf "unknown transport %S" s))
  in
  Arg.conv
    ( parse,
      fun ppf t ->
        Format.pp_print_string ppf
          (match t with
          | Ivdb_client.Net_workload.Loopback -> "loopback"
          | Ivdb_client.Net_workload.Tcp -> "tcp") )

let print_result strategy create_mode r =
  Printf.printf "strategy          %s (create: %s)\n"
    (Maintain.strategy_to_string strategy)
    (match create_mode with Maintain.System_txn -> "system txn" | Maintain.User_txn -> "user txn");
  Printf.printf "committed         %d (%d readers)\n" r.Workload.committed
    r.Workload.committed_readers;
  Printf.printf "gave up           %d\n" r.Workload.given_up;
  Printf.printf "retries           %d\n" r.Workload.retries;
  Printf.printf "deadlocks         %d\n" r.Workload.deadlocks;
  Printf.printf "lock waits        %d\n" r.Workload.lock_waits;
  Printf.printf "simulated ticks   %d\n" r.Workload.ticks;
  Printf.printf "throughput        %.2f txns / 1k ticks\n" r.Workload.throughput;
  Printf.printf "log forces        %d (%.2f per commit)\n" r.Workload.forces
    (if r.Workload.committed = 0 then 0.
     else float_of_int r.Workload.forces /. float_of_int r.Workload.committed);
  if r.Workload.mean_batch > 0. then
    Printf.printf "mean batch        %.2f commits per group force\n" r.Workload.mean_batch;
  Printf.printf "latency           mean %.1f, p95 %.1f ticks\n" r.Workload.mean_latency
    r.Workload.p95_latency;
  Printf.printf "wall time         %.3f s\n" r.Workload.wall_s

(* The sharded path: a loopback cluster of [shards] engines behind
   servers, [mpl] coordinator sessions driving a closed-loop mix of
   single-shard and cross-shard writer transactions (plus readers per
   --reads). Base keys are pre-partitioned per worker so the only
   contention is on the escrow view groups — the part 2PC has to get
   right — and the run ends with a global consistency check: the view
   recomputed from the base rows, both read through coordinator
   fan-out. *)
let run_sharded ~shards ~cross_pct ~seed ~mpl ~txns ~ops ~groups
    ~read_fraction ~verbose =
  if shards < 1 then begin
    prerr_endline "--shards must be >= 1";
    exit 2
  end;
  let dbs =
    Array.init shards (fun i ->
        let db = Database.create () in
        Coord.configure_shard db ~shard:i ~shards;
        db)
  in
  (* per-shard pools of keys hashing to that shard, sliced per worker *)
  let per_worker = txns * ops in
  let pool =
    Array.init shards (fun s ->
        let rec go k acc remaining =
          if remaining = 0 then Array.of_list (List.rev acc)
          else if Coord.route_value ~shards (Value.Int k) = s then
            go (k + 1) (k :: acc) (remaining - 1)
          else go (k + 1) acc remaining
        in
        go 0 [] (mpl * per_worker))
  in
  let committed = ref 0
  and readers = ref 0
  and aborted = ref 0
  and ticks = ref 0
  and diverged = ref 0 in
  let tot =
    ref
      {
        Coord.single_shard_commits = 0;
        cross_shard_commits = 0;
        aborts = 0;
        prepares_sent = 0;
        decides_sent = 0;
      }
  in
  let wall0 = Unix.gettimeofday () in
  Sched.run ~seed (fun () ->
      let nets =
        Array.map (fun _ -> Transport.Loopback.create ~backlog:64 ()) dbs
      in
      let servers =
        Array.mapi
          (fun i net ->
            let s = Server.create dbs.(i) (Transport.Loopback.listener net) in
            Server.serve s;
            s)
          nets
      in
      let dialers = Array.map Transport.Loopback.dialer nets in
      let c0 = Coord.create ~name:"setup" dialers in
      List.iter
        (fun s -> ignore (Coord.exec c0 s))
        [
          "CREATE TABLE t (k INT NOT NULL, grp TEXT NOT NULL, qty INT NOT \
           NULL)";
          "CREATE VIEW v AS SELECT grp, COUNT(*), SUM(qty) FROM t GROUP BY \
           grp USING ESCROW";
        ];
      let t0 = Sched.now () in
      let live = ref mpl in
      let worker_coords = ref [] in
      for w = 0 to mpl - 1 do
        ignore
          (Sched.spawn (fun () ->
               let c = Coord.create ~name:(Printf.sprintf "w%d" w) dialers in
               worker_coords := c :: !worker_coords;
               let rng = Random.State.make [| seed; w; 0x5eed |] in
               let idx = Array.make shards 0 in
               let take s =
                 let k = pool.(s).((w * per_worker) + idx.(s)) in
                 idx.(s) <- idx.(s) + 1;
                 k
               in
               for _ = 1 to txns do
                 if Random.State.float rng 1.0 < read_fraction then begin
                   (try ignore (Coord.exec c "SELECT * FROM v")
                    with Coord.Coord_error _ -> ());
                   incr readers
                 end
                 else begin
                   let home = Random.State.int rng shards in
                   let cross =
                     shards > 1 && Random.State.int rng 100 < cross_pct
                   in
                   let legs =
                     List.init ops (fun i ->
                         let s =
                           if cross && i land 1 = 1 then (home + 1) mod shards
                           else home
                         in
                         ( s,
                           take s,
                           1 + Random.State.int rng 9,
                           Random.State.int rng groups ))
                     (* visit shards in ascending order so cross-engine
                        lock waits cannot form a cycle no local deadlock
                        detector sees *)
                     |> List.sort (fun (a, _, _, _) (b, _, _, _) ->
                            compare a b)
                   in
                   match
                     ignore (Coord.exec c "BEGIN");
                     List.iter
                       (fun (_, k, q, g) ->
                         ignore
                           (Coord.exec c
                              (Printf.sprintf
                                 "INSERT INTO t VALUES (%d, 'g%d', %d)" k g q)))
                       legs;
                     ignore (Coord.exec c "COMMIT")
                   with
                   | () -> incr committed
                   | exception (Coord.Coord_error _ | Client.Server_error _)
                     ->
                       incr aborted;
                       if Coord.in_transaction c then
                         try ignore (Coord.exec c "ROLLBACK") with _ -> ()
                 end
               done;
               decr live))
      done;
      while !live > 0 do
        Sched.yield ()
      done;
      ticks := Sched.now () - t0;
      (* global consistency: fold the base rows into per-group (count,
         sum) and require the escrow view to agree, modulo empty groups
         a gc would reclaim *)
      let rows_of = function
        | Ivdb_sql.Sql.Rows { rows; _ } -> rows
        | _ -> []
      in
      let base = Hashtbl.create 64 in
      List.iter
        (fun (r : Value.t array) ->
          match (r.(1), r.(2)) with
          | Value.Str g, Value.Int q ->
              let n, s =
                match Hashtbl.find_opt base g with
                | Some ns -> ns
                | None -> (0, 0)
              in
              Hashtbl.replace base g (n + 1, s + q)
          | _ -> ())
        (rows_of (Coord.exec c0 "SELECT * FROM t"));
      List.iter
        (fun (r : Value.t array) ->
          match r with
          | [| Value.Str g; Value.Int n; sum |] ->
              let s = match sum with Value.Int s -> s | _ -> 0 in
              let expect = Hashtbl.find_opt base g in
              if expect <> Some (n, s) && not (n = 0 && expect = None) then
                incr diverged;
              Hashtbl.remove base g
          | _ -> incr diverged)
        (rows_of (Coord.exec c0 "SELECT * FROM v"));
      (* groups present in the base but missing from the view *)
      diverged := !diverged + Hashtbl.length base;
      List.iter
        (fun c ->
          let s = Coord.stats c in
          tot :=
            {
              Coord.single_shard_commits =
                !tot.Coord.single_shard_commits + s.Coord.single_shard_commits;
              cross_shard_commits =
                !tot.Coord.cross_shard_commits + s.Coord.cross_shard_commits;
              aborts = !tot.Coord.aborts + s.Coord.aborts;
              prepares_sent = !tot.Coord.prepares_sent + s.Coord.prepares_sent;
              decides_sent = !tot.Coord.decides_sent + s.Coord.decides_sent;
            };
          Coord.close c)
        !worker_coords;
      Coord.close c0;
      Array.iter Server.drain servers);
  let wall_s = Unix.gettimeofday () -. wall0 in
  let indoubt =
    Array.fold_left (fun acc db -> acc + Database.indoubt_count db) 0 dbs
  in
  Printf.printf "shards            %d (loopback cluster, %d coordinator \
                 sessions)\n"
    shards mpl;
  Printf.printf "cross-shard mix   %d%% of writer transactions\n" cross_pct;
  Printf.printf "committed         %d writers (%d readers), %d aborted\n"
    !committed !readers !aborted;
  Printf.printf "2pc               %d cross-shard, %d local fast path; %d \
                 prepares, %d decides\n"
    !tot.Coord.cross_shard_commits !tot.Coord.single_shard_commits
    !tot.Coord.prepares_sent !tot.Coord.decides_sent;
  Printf.printf "simulated ticks   %d\n" !ticks;
  Printf.printf "throughput        %.2f txns / 1k ticks\n"
    (if !ticks = 0 then 0.
     else float_of_int !committed *. 1000. /. float_of_int !ticks);
  Printf.printf "in-doubt          %d\n" indoubt;
  Printf.printf "wall time         %.3f s\n" wall_s;
  if verbose then
    Array.iteri
      (fun i db ->
        let m = Database.metrics db in
        Printf.printf "  shard %d: %d request(s), %d prepared, %d commit(s)\n"
          i
          (Metrics.get m "server.requests")
          (Metrics.get m "shard.prepared")
          (Metrics.get m "txn.commit"))
      dbs;
  Printf.printf "consistency       view v vs base across shards: %s\n"
    (if !diverged = 0 then "MATCHES" else Printf.sprintf "DIVERGED (%d group(s))" !diverged);
  if !diverged > 0 || indoubt > 0 then exit 1

(* The closed-loop network path: same spec, but [mpl] client connections
   drive a server over the wire instead of in-process fibers. *)
let run_net net max_inflight spec strategy create_mode verbose check =
  let server_config = { Ivdb_server.Server.default_config with max_inflight } in
  let r, db = Ivdb_client.Net_workload.run_net ~transport:net ~server_config spec in
  let get name =
    match List.assoc_opt name r.Workload.metrics with Some v -> v | None -> 0
  in
  Printf.printf "transport         %s (%d client connections)\n"
    (match net with
    | Ivdb_client.Net_workload.Loopback -> "loopback"
    | Ivdb_client.Net_workload.Tcp -> "tcp")
    spec.Workload.mpl;
  print_result strategy create_mode r;
  Printf.printf "server            accepted %d, shed %d, requests %d\n"
    (get "server.accepted") (get "server.shed") (get "server.requests");
  if verbose then begin
    Printf.printf "\ncounters:\n";
    List.iter
      (fun (k, v) -> if v <> 0 then Printf.printf "  %-28s %d\n" k v)
      r.Workload.metrics
  end;
  if check then
    List.iter
      (fun (name, _) ->
        let v = Database.view db name in
        (match Database.view_strategy db v with
        | Maintain.Deferred ->
            Database.transact db (fun tx -> ignore (Query.refresh db tx v))
        | Maintain.Exclusive | Maintain.Escrow -> ());
        Printf.printf "consistency %-22s %b\n" name
          (Workload.check_consistency db v))
      (Database.list_views db)

(* The replicated network path: loopback clients against a primary with a
   follower applying the shipped WAL for the whole run. *)
let run_replicated max_inflight spec strategy create_mode verbose =
  let server_config = { Ivdb_server.Server.default_config with max_inflight } in
  let r, db, fdb, rr =
    Ivdb_client.Net_workload.run_replicated ~server_config spec
  in
  let get name =
    match List.assoc_opt name r.Workload.metrics with Some v -> v | None -> 0
  in
  Printf.printf "transport         loopback + follower (%d client connections)\n"
    spec.Workload.mpl;
  print_result strategy create_mode r;
  Printf.printf "server            accepted %d, shed %d, requests %d\n"
    (get "server.accepted") (get "server.shed") (get "server.requests");
  Printf.printf "replication       %d batch(es), %d record(s) shipped, %d reconnect(s)\n"
    (get "server.repl.batches") (get "server.repl.records") rr.Ivdb_client.Net_workload.reconnects;
  Printf.printf "replica lag       max %d, mean %.1f records; catch-up %d ticks\n"
    rr.Ivdb_client.Net_workload.lag_max rr.Ivdb_client.Net_workload.lag_mean
    rr.Ivdb_client.Net_workload.catchup_ticks;
  let dp = Database.state_digest db and df = Database.state_digest fdb in
  Printf.printf "follower          lsn %d, state digest %s\n"
    (Database.replicated_lsn fdb)
    (if dp = df then "MATCHES primary" else "DIVERGED from primary");
  if verbose then begin
    Printf.printf "\ncounters:\n";
    List.iter
      (fun (k, v) -> if v <> 0 then Printf.printf "  %-28s %d\n" k v)
      r.Workload.metrics
  end;
  if dp <> df then exit 1

let run seed groups theta mpl txns ops deletes reads read_pct scan coarse
    snapshot strategy create_mode commit_mode views initial gc_every
    checkpoint_every stats_interval trace_out verbose check net replica
    max_inflight shards cross_shard_pct fault_seed fault_read_p fault_write_p
    fault_crash_write fault_crash_force fault_torn_writes fault_torn_tail =
  (* --read-pct is the integer-percent spelling of --reads; it wins when
     both are given *)
  let read_fraction =
    match read_pct with
    | Some p -> float_of_int p /. 100.
    | None -> reads
  in
  match shards with
  | Some n ->
      run_sharded ~shards:n ~cross_pct:cross_shard_pct ~seed ~mpl ~txns ~ops
        ~groups ~read_fraction ~verbose
  | None ->
  let spec =
    {
      Workload.config = { Workload.default.Workload.config with Database.commit_mode };
      seed;
      n_groups = groups;
      theta;
      mpl;
      txns_per_worker = txns;
      ops_per_txn = ops;
      delete_fraction = deletes;
      read_fraction;
      reader_scan = scan;
      reader_locking =
        (if snapshot then Workload.Snapshot
         else if coarse then Workload.Coarse_table
         else Workload.Key_range);
      strategy;
      create_mode;
      n_views = views;
      initial_rows = initial;
      gc_every;
      checkpoint_every;
      stats_interval;
    }
  in
  if replica then run_replicated max_inflight spec strategy create_mode verbose
  else
  match net with
  | Some n -> run_net n max_inflight spec strategy create_mode verbose check
  | None ->
  let fcfg =
    {
      Fault.no_faults with
      fault_seed;
      read_error_p = fault_read_p;
      write_error_p = fault_write_p;
      crash_at_write = fault_crash_write;
      crash_at_force = fault_crash_force;
      torn_writes = fault_torn_writes;
      torn_tail = fault_torn_tail;
    }
  in
  let db, sales, views_l = Workload.setup spec in
  (* faults are armed after setup so the preload is never the victim:
     injection covers the measured phase only, like tracing *)
  if Fault.enabled_in fcfg then Database.install_fault db fcfg;
  (* tracing covers the measured phase only: enabled after setup/preload *)
  let profile = Trace.Profile.create () in
  let close_trace =
    match trace_out with
    | None -> fun () -> ()
    | Some path ->
        let tr = Database.trace db in
        let oc = open_out path in
        Trace.add_sink tr (fun r -> output_string oc (Trace.to_json r ^ "\n"));
        Trace.add_sink tr (Trace.Profile.sink profile);
        Trace.set_enabled tr true;
        fun () ->
          Trace.set_enabled tr false;
          close_out oc
  in
  let r = Workload.run_on db sales views_l spec in
  close_trace ();
  (* an injected crash point stopped the run: recover before reporting, as
     an operator would restart the server *)
  let db, views_l =
    if not r.Workload.crashed then (db, views_l)
    else begin
      let names = List.map (Database.view_name db) views_l in
      let t0 = Unix.gettimeofday () in
      let db' = Database.crash db in
      let recov_s = Unix.gettimeofday () -. t0 in
      let m = Database.metrics db' in
      Printf.printf "injected crash fired; recovered in %.3f ms\n" (recov_s *. 1000.);
      Printf.printf "  stable records     %d\n" (Metrics.get m "recovery.stable_records");
      Printf.printf "  redo applied       %d\n" (Metrics.get m "recovery.redo_applied");
      Printf.printf "  torn pages reset   %d\n" (Metrics.get m "recovery.torn_pages");
      Printf.printf "  torn tail dropped  %d\n" (Metrics.get m "wal.torn_tail_dropped");
      Printf.printf "  losers rolled back %d\n" (Metrics.get m "recovery.losers");
      (db', List.map (Database.view db') names)
    end
  in
  print_result strategy create_mode r;
  (match trace_out with
  | None -> ()
  | Some path ->
      Printf.printf "\ntrace written to %s\n%s\n" path (Trace.Profile.render profile));
  if verbose then begin
    Printf.printf "\ncounters:\n";
    List.iter
      (fun (k, v) -> if v <> 0 then Printf.printf "  %-28s %d\n" k v)
      r.Workload.metrics
  end;
  if check then begin
    List.iter
      (fun v ->
        (match Database.view_strategy db v with
        | Maintain.Deferred ->
            Database.transact db (fun tx -> ignore (Query.refresh db tx v))
        | Maintain.Exclusive | Maintain.Escrow -> ());
        Printf.printf "consistency %-22s %b\n" (Database.view_name db v)
          (Workload.check_consistency db v))
      views_l
  end

let cmd =
  let open Term in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let groups = Arg.(value & opt int 20 & info [ "groups" ] ~doc:"Distinct view groups.") in
  let theta = Arg.(value & opt float 0.99 & info [ "theta" ] ~doc:"Zipf skew (0 = uniform).") in
  let mpl = Arg.(value & opt int 8 & info [ "mpl" ] ~doc:"Concurrent workers.") in
  let txns = Arg.(value & opt int 50 & info [ "txns" ] ~doc:"Transactions per worker.") in
  let ops = Arg.(value & opt int 4 & info [ "ops" ] ~doc:"Operations per transaction.") in
  let deletes =
    Arg.(value & opt float 0.1 & info [ "deletes" ] ~doc:"Per-op delete probability.")
  in
  let reads =
    Arg.(value & opt float 0. & info [ "reads" ] ~doc:"Per-txn reader probability.")
  in
  let read_pct =
    Arg.(
      value
      & opt (some int) None
      & info [ "read-pct" ]
          ~doc:"Percent of transactions that are readers (overrides --reads).")
  in
  let scan = Arg.(value & flag & info [ "scan" ] ~doc:"Readers scan the view.") in
  let coarse =
    Arg.(value & flag & info [ "coarse" ] ~doc:"Readers use a table S lock (D4 ablation).")
  in
  let snapshot =
    Arg.(
      value & flag
      & info [ "snapshot" ]
          ~doc:"Readers use lock-free MVCC snapshot transactions.")
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv Maintain.Escrow
      & info [ "strategy" ] ~doc:"View maintenance: exclusive | escrow | deferred.")
  in
  let create_mode =
    Arg.(
      value
      & opt create_mode_conv Maintain.System_txn
      & info [ "create-mode" ] ~doc:"Group creation: system | user (D3 ablation).")
  in
  let commit_mode =
    Arg.(
      value
      & opt commit_mode_conv Txn.Sync
      & info [ "commit-mode" ]
          ~doc:"Commit durability: sync | group[:BATCH[:WAIT]] | async (D9 ablation).")
  in
  let views = Arg.(value & opt int 1 & info [ "views" ] ~doc:"Indexed views on the table.") in
  let initial = Arg.(value & opt int 200 & info [ "initial" ] ~doc:"Preloaded rows.") in
  let gc_every =
    Arg.(value & opt (some int) None & info [ "gc-every" ] ~doc:"Run GC every N commits.")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-every" ] ~doc:"Sharp checkpoint every N commits.")
  in
  let stats_interval =
    Arg.(
      value
      & opt (some int) None
      & info [ "stats-interval" ]
          ~doc:"Print a one-line throughput / commit-p95 / lock-wait-p95 \
                summary every N simulated ticks during the measured phase \
                (works with and without --net).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ]
          ~doc:"Write the JSONL trace of the measured phase to $(docv) and \
                print a lock-wait / maintenance profile."
          ~docv:"FILE")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Dump all counters.") in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Verify view consistency afterwards.")
  in
  let net =
    Arg.(
      value
      & opt (some net_conv) None
      & info [ "net" ]
          ~doc:"Drive the workload through the network server instead of \
                in-process: loopback (deterministic in-memory transport) or \
                tcp (real sockets on 127.0.0.1). --mpl becomes the client \
                connection count; fault injection and --trace-out are \
                in-process features and do not apply.")
  in
  let replica =
    Arg.(
      value & flag
      & info [ "replica" ]
          ~doc:"Run the loopback network workload with a read replica \
                attached: a follower instance subscribes to the primary's \
                WAL stream and applies it while the clients run. Reports \
                replication lag and checks the follower's state digest \
                against the primary (non-zero exit on divergence).")
  in
  let max_inflight =
    Arg.(
      value & opt int 32
      & info [ "max-inflight" ]
          ~doc:"With --net: concurrent sessions the server admits before \
                shedding with Busy frames.")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ]
          ~doc:"Run the closed-loop workload against a hash-partitioned \
                loopback cluster of N engines behind a sharding \
                coordinator: --mpl coordinator sessions each run --txns \
                transactions of --ops INSERTs (single- or cross-shard per \
                --cross-shard-pct, readers per --reads), then the escrow \
                view is checked against the base rows globally. The \
                strategy/fault/trace knobs of the in-process path do not \
                apply.")
  in
  let cross_shard_pct =
    Arg.(
      value & opt int 30
      & info [ "cross-shard-pct" ]
          ~doc:"With --shards: percent of writer transactions that spread \
                their INSERTs over two shards (two-phase commit); the rest \
                stay on one shard and may still 2PC when their view groups \
                hash elsewhere.")
  in
  let fault_seed =
    Arg.(value & opt int 1 & info [ "fault-seed" ] ~doc:"Fault-injection RNG seed.")
  in
  let fault_read_p =
    Arg.(
      value
      & opt float 0.
      & info [ "fault-read-error-p" ]
          ~doc:"Per-read transient I/O error probability (retried by the pool).")
  in
  let fault_write_p =
    Arg.(
      value
      & opt float 0.
      & info [ "fault-write-error-p" ]
          ~doc:"Per-write transient I/O error probability (retried by the pool).")
  in
  let fault_crash_write =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-crash-at-write" ]
          ~doc:"Crash on the N-th disk write of the measured phase, then recover.")
  in
  let fault_crash_force =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-crash-at-force" ]
          ~doc:"Crash on the N-th WAL force of the measured phase, then recover.")
  in
  let fault_torn_writes =
    Arg.(
      value & flag
      & info [ "fault-torn-writes" ]
          ~doc:"The crashing disk write persists only a prefix of the page.")
  in
  let fault_torn_tail =
    Arg.(
      value & flag
      & info [ "fault-torn-tail" ]
          ~doc:"The crashing WAL force persists only a byte prefix of the new \
                log region.")
  in
  Cmd.v
    (Cmd.info "ivdb_workload" ~doc:"Drive the ivdb order-entry workload")
    (const run $ seed $ groups $ theta $ mpl $ txns $ ops $ deletes $ reads
   $ read_pct $ scan $ coarse $ snapshot $ strategy $ create_mode
   $ commit_mode $ views $ initial
   $ gc_every $ checkpoint_every $ stats_interval $ trace_out $ verbose
   $ check $ net $ replica $ max_inflight $ shards $ cross_shard_pct
   $ fault_seed $ fault_read_p $ fault_write_p
   $ fault_crash_write $ fault_crash_force $ fault_torn_writes
   $ fault_torn_tail)

let () = exit (Cmd.eval cmd)
